module batsched

go 1.22
