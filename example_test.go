package batsched_test

import (
	"fmt"

	"batsched"
)

// The paper's Figure 1 transaction T1 and its due(s) values.
func ExampleNewTransaction() {
	t1 := batsched.NewTransaction(1, []batsched.Step{
		{Mode: batsched.Read, Part: 0, Cost: 1},
		{Mode: batsched.Read, Part: 1, Cost: 3},
		{Mode: batsched.Write, Part: 0, Cost: 1},
	})
	fmt.Println(t1)
	for i := range t1.Steps {
		fmt.Printf("due(s%d) = %g\n", i, t1.Due(i))
	}
	// Output:
	// T1: r(P0:1) -> r(P1:3) -> w(P0:1)
	// due(s0) = 5
	// due(s1) = 4
	// due(s2) = 1
}

// Workload patterns use the paper's arrow notation.
func ExampleParsePattern() {
	p, err := batsched.ParsePattern("Pattern1", "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Vars())
	t, err := p.Bind(7, map[string]batsched.PartitionID{"F1": 3, "F2": 9})
	if err != nil {
		panic(err)
	}
	fmt.Println(t)
	// Output:
	// [F1 F2]
	// T7: r(P3:1) -> r(P9:5) -> w(P3:0.2) -> w(P9:1)
}

// Conflicting-edge weights of the paper's worked example (§3.1): the
// conflicting-edge (T2,T3) is a pair of edges T2→T3 of weight 4 and
// T3→T2 of weight 2.
func ExampleConflictWeights() {
	t2 := batsched.NewTransaction(2, []batsched.Step{
		{Mode: batsched.Read, Part: 2, Cost: 1},
		{Mode: batsched.Write, Part: 0, Cost: 1},
	})
	t3 := batsched.NewTransaction(3, []batsched.Step{
		{Mode: batsched.Write, Part: 2, Cost: 1},
		{Mode: batsched.Read, Part: 3, Cost: 3},
	})
	w23, w32, ok := batsched.ConflictWeights(t2, t3)
	fmt.Println(w23, w32, ok)
	// Output:
	// 4 2 true
}

// The optimal serialization order of the paper's Figure 2 chain: W =
// {T1→T2, T3→T2} with critical path 6 (Example 3.2).
func ExampleSolveChain() {
	sol, err := batsched.SolveChain(batsched.ChainProblem{
		R:    []float64{5, 2, 4}, // live w(T0→Ti)
		Down: []float64{1, 4},    // w(T1→T2), w(T2→T3)
		Up:   []float64{5, 2},    // w(T2→T1), w(T3→T2)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Length, sol.Orient)
	// Output:
	// 6 [down up]
}

// Critical paths of a resolved WTPG (Example 3.2): the order
// {T1→T2→T3} creates a chain of blocking with critical path 10.
func ExampleWTPG() {
	g := batsched.NewWTPG()
	for id, w0 := range map[batsched.TxnID]float64{1: 5, 2: 2, 3: 4} {
		if err := g.AddNode(id, w0); err != nil {
			panic(err)
		}
	}
	if err := g.AddConflict(1, 2, 1, 5); err != nil {
		panic(err)
	}
	if err := g.AddConflict(2, 3, 4, 2); err != nil {
		panic(err)
	}
	for _, r := range [][2]batsched.TxnID{{1, 2}, {2, 3}} {
		if err := g.Resolve(r[0], r[1]); err != nil {
			panic(err)
		}
	}
	cp, err := g.CriticalPath()
	if err != nil {
		panic(err)
	}
	fmt.Println(cp)
	// Output:
	// 10
}

// E(q) of the paper's Example 3.4: granting T5's request (ordering T5
// before T6) yields an estimated contention of 10.
func ExampleEstimateE() {
	g := batsched.NewWTPG()
	for _, id := range []batsched.TxnID{4, 5, 6} {
		if err := g.AddNode(id, 0); err != nil {
			panic(err)
		}
	}
	if err := g.AddConflict(4, 5, 1, 7); err != nil {
		panic(err)
	}
	if err := g.AddConflict(5, 6, 4, 1); err != nil {
		panic(err)
	}
	if err := g.AddConflict(4, 6, 10, 2); err != nil {
		panic(err)
	}
	if err := g.Resolve(4, 5); err != nil {
		panic(err)
	}
	fmt.Println(batsched.EstimateE(g, 5, []batsched.TxnID{6}))
	fmt.Println(batsched.EstimateE(g, 6, []batsched.TxnID{5}))
	// Output:
	// 10
	// 1
}

// A complete simulation run on the default Table 1 machine.
func ExampleSimulate() {
	res, err := batsched.Simulate(batsched.SimConfig{
		Machine:              batsched.DefaultMachine(),
		Scheduler:            batsched.KWTPG(2),
		Workload:             batsched.WorkloadExperiment1(16),
		ArrivalRate:          0.3,
		Horizon:              200_000,
		Seed:                 1,
		CheckSerializability: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scheduler, res.Completed > 0, res.SerializabilityChecked)
	// Output:
	// K2 true true
}
