// Command batbench regenerates the paper's evaluation section: every
// figure (6–10) and the Table 1 parameter listing.
//
// Examples:
//
//	batbench -table1
//	batbench -fig 6                 # Experiment 1, response-time curves
//	batbench -all                   # everything (the full grid; slow)
//	batbench -all -parallel 8       # same bytes, 8 grid cells at a time
//	batbench -fig 8 -quick          # reduced horizon for a fast preview
//	batbench -fig 7 -csv out.csv    # also dump the sweep as CSV
//	batbench -fig 6 -trace t.jsonl -metrics   # structured trace + summary
//	batbench -epoch                 # EPOCH batch-window sweep (makespan/p99 vs window)
//	batbench -epoch -windows 0,1000,4000 -json BENCH_PR6.json
//
// Grid cells fan out across -parallel workers (default: every core);
// results land in pre-indexed slots and trace/metrics sinks are merged
// in grid order, so stdout, CSV and JSONL output are byte-identical
// regardless of parallelism. Progress and ETA go to stderr only.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"batsched/internal/event"
	"batsched/internal/experiments"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/storage"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 6, 7, 8, 9, 10 (comma separated)")
		all      = flag.Bool("all", false, "regenerate every figure")
		ablation = flag.String("ablation", "", "ablation to run: ksweep, placement, controlcost, keeptime, retrydelay, all")
		mixed    = flag.Bool("mixed", false, "run the mixed short-transaction/BAT experiment")
		epoch    = flag.Bool("epoch", false, "run the epoch batch-window sweep (EPOCH scheduler, makespan and latency vs window)")
		windows  = flag.String("windows", "", "comma-separated batch windows in clocks for -epoch (default 0,500,1000,2000,5000,10000)")
		maxTxns  = flag.Int("maxtxns", 0, "arrivals per -epoch cell (0 = default 300)")
		jsonOut  = flag.String("json", "", "write the -epoch sweep as JSON to this file (the BENCH_PR6.json document)")
		shards   = flag.Int("shards", 0, "compare live-controller throughput: single-mutex vs this many shards (DESIGN.md §13); txn count from -maxtxns")
		table1   = flag.Bool("table1", false, "print the effective Table 1 parameters")
		horizon  = flag.Int64("horizon", 2_000_000, "simulated clocks per run (paper: 2,000,000)")
		seed     = flag.Int64("seed", 1990, "base random seed")
		parallel = flag.Int("parallel", 0, "grid-cell worker pool size (0 = NumCPU); output is byte-identical at every setting")
		workers  = flag.Int("workers", 0, "deprecated alias for -parallel")
		rt       = flag.Float64("rt", 70, "response-time comparison target in seconds")
		quick    = flag.Bool("quick", false, "reduced horizon (400k clocks) and sparser sweep")
		lambdas  = flag.String("lambdas", "", "comma-separated arrival-rate sweep override")
		csvOut   = flag.String("csv", "", "write raw sweep data as CSV to this file (single-figure mode)")
		reps     = flag.Int("reps", 1, "replicate seeds per grid cell (metrics averaged)")
		quiet    = flag.Bool("q", false, "suppress progress output")
		trace    = flag.String("trace", "", "write a structured JSONL trace of every run to this file ('-' = stdout)")
		metrics  = flag.Bool("metrics", false, "print per-scheduler decision counts and latency histograms after the runs")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with `go tool pprof`)")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		storageDir = flag.String("storage", "", "back the -shards comparison with heap files under this directory (docs/STORAGE.md) and report page-traffic bytes/sec")
		pageSize   = flag.Int("pagesize", storage.DefaultPageSize, "heap-file page size in bytes (requires -storage)")
		poolFrames = flag.Int("pool", 256, "buffer-pool frames per store (requires -storage)")

		abortRate   = flag.Float64("abortrate", 0, "fraction of transactions killed mid-run by the fault injector")
		crashNodes  = flag.Int("crashnodes", 0, "crash this many data nodes per run (deterministic in -faultseed; at least one node survives)")
		crashWindow = flag.Int64("crashwindow", 0, "clocks within which injected node crashes land (0 = the horizon)")
		faultSeed   = flag.Uint64("faultseed", 0, "fault-injection seed (0 = derive from -seed); parity with batsim")
	)
	flag.Parse()

	defer startProfiles(*cpuprof, *memprof)()

	if *shards > 0 {
		if err := runLiveComparison(*shards, *maxTxns, *storageDir, *pageSize, *poolFrames); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *table1 {
		printTable1()
		if *fig == "" && !*all {
			return
		}
	}
	poolSize := *parallel
	if poolSize <= 0 {
		poolSize = *workers
	}
	opts := experiments.Options{
		Machine:         machine.DefaultConfig(),
		Horizon:         event.Time(*horizon),
		Seed:            *seed,
		Workers:         poolSize,
		RTTargetSeconds: *rt,
		Replications:    *reps,
	}
	if *quick {
		opts.Horizon = 400_000
		opts.Lambdas = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if *lambdas != "" {
		opts.Lambdas = nil
		for _, tok := range strings.Split(*lambdas, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -lambdas entry %q: %v\n", tok, err)
				os.Exit(2)
			}
			opts.Lambdas = append(opts.Lambdas, v)
		}
	}
	if !*quiet {
		opts.Progress = progressReporter()
	}

	// Observability: one JSONL sink and/or one metrics aggregate shared
	// by every run of the grid (events carry their scheduler label).
	// Each run emits into private buffers that the harness merges in
	// grid order, so the trace is deterministic at any -parallel value.
	var expOpts []experiments.Option
	if poolSize > 0 {
		expOpts = append(expOpts, experiments.WithParallelism(poolSize))
	}
	if *abortRate > 0 || *crashNodes > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = uint64(*seed)
		}
		inj, err := fault.New(fseed, fault.Config{
			AbortRate:       *abortRate,
			NodeCrashes:     *crashNodes,
			NodeCrashWindow: event.Time(*crashWindow),
		})
		must(err)
		expOpts = append(expOpts, experiments.WithFaults(inj))
	}
	var traceSink *obs.JSONL
	var agg *obs.Metrics
	var observers []obs.Observer
	if *trace == "-" {
		traceSink = obs.NewJSONL(os.Stdout)
	} else if *trace != "" {
		var err error
		traceSink, err = obs.CreateJSONL(*trace)
		must(err)
	}
	if traceSink != nil {
		observers = append(observers, traceSink)
	}
	if *metrics {
		agg = obs.NewMetrics()
		observers = append(observers, agg)
	}
	if len(observers) > 0 {
		expOpts = append(expOpts, experiments.WithTrace(obs.Multi(observers...)))
	}
	finishObs := func() {
		if traceSink != nil {
			must(traceSink.Close())
			if *trace != "-" && !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *trace)
			}
		}
		if agg != nil {
			fmt.Println(agg.Summary())
		}
	}

	if *ablation != "" {
		runAblations(*ablation, opts, expOpts)
		if !*mixed {
			finishObs()
			return
		}
	}
	if *mixed {
		r, err := experiments.RunMixedWorkload(opts, 2.0, 0.8, expOpts...)
		must(err)
		fmt.Println(r.Render())
		finishObs()
		return
	}
	if *epoch {
		ws, err := parseWindows(*windows)
		must(err)
		lambda := 0.0 // 0 = the sweep's default
		if len(opts.Lambdas) > 0 {
			lambda = opts.Lambdas[0]
		}
		r, err := experiments.RunEpochSweep(opts, ws, lambda, *maxTxns, expOpts...)
		must(err)
		fmt.Println(r.Render())
		writeCSV(*csvOut, r.CSV())
		if *jsonOut != "" {
			data, err := r.JSON()
			must(err)
			must(os.WriteFile(*jsonOut, data, 0o644))
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
			}
		}
		finishObs()
		return
	}

	var figs []string
	if *all {
		figs = []string{"6", "7", "8", "9", "10"}
	} else if *fig != "" {
		figs = strings.Split(*fig, ",")
	}
	if len(figs) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -fig N, -all, -ablation NAME or -table1 (see -help)")
		os.Exit(2)
	}

	// Figures 6 and 7 share Experiment 1's sweep; run it once.
	var exp1 *experiments.Experiment1Result
	needExp1 := false
	for _, f := range figs {
		if f == "6" || f == "7" {
			needExp1 = true
		}
	}
	start := time.Now()
	if needExp1 {
		var err error
		exp1, err = experiments.RunExperiment1(opts, expOpts...)
		must(err)
	}
	for _, f := range figs {
		switch strings.TrimSpace(f) {
		case "6":
			fmt.Println(exp1.RenderFigure6())
			writeCSV(*csvOut, experiments.CSV(exp1.Sweeps))
		case "7":
			fmt.Println(exp1.RenderFigure7())
			writeCSV(*csvOut, experiments.CSV(exp1.Sweeps))
		case "8":
			r, err := experiments.RunExperiment2(opts, expOpts...)
			must(err)
			fmt.Println(r.RenderFigure8())
			variants := make([]string, len(r.NumHots))
			for i, nh := range r.NumHots {
				variants[i] = fmt.Sprintf("hots=%d", nh)
			}
			writeCSV(*csvOut, experiments.GroupedCSV(variants, r.Sweeps))
		case "9":
			r, err := experiments.RunExperiment3(opts, expOpts...)
			must(err)
			fmt.Println(r.RenderFigure9())
			writeCSV(*csvOut, experiments.CSV(r.Sweeps))
		case "10":
			r, err := experiments.RunExperiment4(opts, nil, expOpts...)
			must(err)
			fmt.Println(r.RenderFigure10())
			variants := make([]string, len(r.Sigmas))
			for i, sg := range r.Sigmas {
				variants[i] = fmt.Sprintf("sigma=%g", sg)
			}
			writeCSV(*csvOut, experiments.GroupedCSV(variants, r.Sweeps))
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", f)
			os.Exit(2)
		}
	}
	finishObs()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "total wall time %.1fs\n", time.Since(start).Seconds())
	}
}

func runAblations(which string, opts experiments.Options, expOpts []experiments.Option) {
	type ab struct {
		name string
		run  func() (*experiments.AblationResult, error)
	}
	abs := []ab{
		{"ksweep", func() (*experiments.AblationResult, error) { return experiments.RunKSweep(opts, nil, expOpts...) }},
		{"placement", func() (*experiments.AblationResult, error) { return experiments.RunPlacementAblation(opts, expOpts...) }},
		{"controlcost", func() (*experiments.AblationResult, error) {
			return experiments.RunControlCostAblation(opts, nil, expOpts...)
		}},
		{"keeptime", func() (*experiments.AblationResult, error) {
			return experiments.RunKeepTimeAblation(opts, nil, expOpts...)
		}},
		{"retrydelay", func() (*experiments.AblationResult, error) {
			return experiments.RunRetryDelayAblation(opts, nil, expOpts...)
		}},
	}
	ran := false
	for _, a := range abs {
		if which != "all" && which != a.name {
			continue
		}
		ran = true
		r, err := a.run()
		must(err)
		fmt.Println(r.Render())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown ablation %q (want ksweep, placement, controlcost, keeptime, retrydelay, all)\n", which)
		os.Exit(2)
	}
}

func printTable1() {
	c := machine.DefaultConfig()
	fmt.Println("Table 1. Simulation parameters (✓ = verbatim from the paper; see DESIGN.md §4)")
	rows := [][2]string{
		{"NumNodes ✓", fmt.Sprintf("%d data-processing nodes", c.NumNodes)},
		{"NumParts ✓", "16 (Exp1/4); 8 read-only + NumHots (Exp2/3)"},
		{"NumHots ✓", "4/8/16/32 (Exp2); 8 (Exp3)"},
		{"ObjTime ✓", fmt.Sprintf("%v per object (≈60 tracks per disk)", c.ObjTime)},
		{"simulation length ✓", "2,000,000 clocks (1 clock = 1 ms)"},
		{"keeptime ✓", fmt.Sprintf("%v (period of control-saving)", c.Control.KeepTime)},
		{"multiprogramming ✓", "infinite (no admission cap)"},
		{"startuptime", fmt.Sprintf("%v", c.StartupTime)},
		{"committime", fmt.Sprintf("%v", c.CommitTime)},
		{"ddtime", fmt.Sprintf("%v (deadlock/consistency test)", c.Control.DDTime)},
		{"chaintime", fmt.Sprintf("%v (one W recomputation)", c.Control.ChainTime)},
		{"kwtpgtime", fmt.Sprintf("%v (one E(q) evaluation)", c.Control.KWTPGTime)},
		{"retry delay", fmt.Sprintf("%v (delayed/aborted resubmission)", c.RetryDelay)},
	}
	for _, r := range rows {
		fmt.Printf("  %-22s %s\n", r[0], r[1])
	}
	fmt.Println()
}

// progressReporter returns a Progress callback printing per-cell
// progress lines with an ETA on stderr — stdout stays byte-identical
// for goldens. A long -all regeneration runs several grids back to
// back; the completion counter restarting signals a new grid, which
// resets the rate estimate.
func progressReporter() func(done, total int) {
	start := time.Now()
	last := 0
	return func(done, total int) {
		if done < last {
			start = time.Now()
		}
		last = done
		if done == total {
			fmt.Fprintf(os.Stderr, "\r  %d/%d cells done (%.1fs)      \n",
				done, total, time.Since(start).Seconds())
			return
		}
		eta := ""
		if elapsed := time.Since(start); done > 0 && elapsed > 0 {
			rem := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			eta = fmt.Sprintf(", ETA %s", rem.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "\r  %d/%d cells done%s      ", done, total, eta)
	}
}

// startProfiles begins CPU profiling (if requested) and returns a
// function that stops it and writes the heap profile (if requested).
// Profiles are dropped on error exits — os.Exit skips the deferred stop
// — which matches the usual net/http/pprof-less CLI convention.
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		must(err)
		must(pprof.StartCPUProfile(f))
		stop := func() {
			pprof.StopCPUProfile()
			must(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", cpuPath)
			writeHeapProfile(memPath)
		}
		return stop
	}
	return func() { writeHeapProfile(memPath) }
}

func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	must(err)
	runtime.GC() // settle live objects so the profile reflects steady state
	must(pprof.WriteHeapProfile(f))
	must(f.Close())
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// parseWindows parses the -windows flag into clock values; an empty
// flag means the sweep's default axis.
func parseWindows(s string) ([]event.Time, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []event.Time
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -windows entry %q: %v", tok, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative -windows entry %d", v)
		}
		out = append(out, event.Time(v))
	}
	return out, nil
}

func writeCSV(path, data string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
