package main

// The -shards flag routes batsim's workload through the live controller
// (internal/live) with real goroutines instead of the discrete-event
// simulator: the same generator produces -livetxns transactions, every
// one runs to commit through the sharded hot path, and the run reports
// wall-clock throughput. This is the CLI face of the PR 8 sharding work
// (DESIGN.md §13); the simulator path is untouched when -shards is 0.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/live"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

// runLiveMode drives n generated transactions through a live controller
// with the given shard count, a bounded in-flight window of
// 8×GOMAXPROCS arrivals, and prints the committed count and throughput.
func runLiveMode(factory sched.Factory, gen workload.Generator, shards, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]*txn.T, n)
	for i := range ts {
		ts[i] = gen.Next(txn.ID(i+1), rng)
	}
	ctl := live.New(factory, sched.Costs{KeepTime: 50},
		live.WithShards(shards), live.WithRetryDelay(time.Millisecond))
	defer ctl.Close()

	window := make(chan struct{}, 8*runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	failed := 0
	start := time.Now()
	for _, t := range ts {
		window <- struct{}{}
		wg.Add(1)
		go func(t *txn.T) {
			defer wg.Done()
			defer func() { <-window }()
			err := ctl.Run(context.Background(), t, func(step int, p live.Progress) error {
				p(1)
				return nil
			})
			if err != nil {
				mu.Lock()
				failed++
				if firstErr == nil {
					firstErr = fmt.Errorf("txn %v: %w", t.ID, err)
				}
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctl.CheckInvariants(); err != nil {
		return err
	}
	st := ctl.Stats()
	fmt.Printf("mode        live controller (real goroutines)\n")
	fmt.Printf("scheduler   %s\n", factory.Label)
	fmt.Printf("workload    %s\n", gen.Name())
	fmt.Printf("shards      %d\n", ctl.Shards())
	fmt.Printf("txns        %d (committed %d, failed %d)\n", n, st.Committed, failed)
	fmt.Printf("wall        %.3fs\n", elapsed.Seconds())
	fmt.Printf("throughput  %.0f txn/s\n", float64(st.Committed)/elapsed.Seconds())
	return firstErr
}
