// Command batsim runs a single simulation of the paper's shared-nothing
// machine under one scheduler and one workload, printing the run metrics.
//
// Examples:
//
//	batsim -sched CHAIN -workload exp1 -lambda 0.6
//	batsim -sched K2 -workload exp2 -numhots 4 -lambda 0.8 -horizon 500000
//	batsim -sched CHAIN -workload exp4 -sigma 0.5 -lambda 0.6
//	batsim -sched K2 -workload exp1 -crashnodes 1 -crashwindow 100000
//	batsim -sched K2 -workload exp1 -wal /tmp/batwal     # dependency-log the run
//	batsim -recoverwal /tmp/batwal                       # replay + recovery report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/modelcheck"
	"batsched/internal/obs"
	"batsched/internal/sim"
	"batsched/internal/storage"
	"batsched/internal/textplot"
	"batsched/internal/txn"
	"batsched/internal/wal"
	"batsched/internal/workload"
)

func main() {
	var (
		schedName = flag.String("sched", "K2", "scheduler name; any registered scheduler: "+strings.Join(sched.Names(), ", ")+", K<k>, K<k>-C2PL")
		window    = flag.Int64("window", 0, "epoch batch-admission window in clocks (requires -sched EPOCH; 0 = per-arrival)")
		wl        = flag.String("workload", "exp1", "workload: exp1, exp2, exp3, exp4, custom")
		pattern   = flag.String("pattern", "", "custom pattern for -workload custom, e.g. \"r(F1:2) -> w(F2:1)\"")
		lambda    = flag.Float64("lambda", 0.5, "arrival rate (transactions per second)")
		horizon   = flag.Int64("horizon", 2_000_000, "simulated clocks (1 clock = 1 ms)")
		seed      = flag.Int64("seed", 1990, "random seed")
		numParts  = flag.Int("numparts", 16, "partitions (exp1/exp4)")
		numHots   = flag.Int("numhots", 8, "hot partitions (exp2/exp3)")
		sigma     = flag.Float64("sigma", 0.5, "declaration error std-dev (exp4)")
		warmup    = flag.Int64("warmup", 0, "measurement warmup clocks")
		nocheck   = flag.Bool("nocheck", false, "skip the serializability check")
		verbose   = flag.Bool("v", false, "print per-node utilization")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		traceOut  = flag.String("trace", "", "write a structured JSONL trace to this file ('-' for stdout)")
		textTrace = flag.String("texttrace", "", "write the legacy human-readable event log to this file ('-' for stdout)")
		metrics   = flag.Bool("metrics", false, "print decision counts and latency histograms after the run")
		selfCheck = flag.Bool("selfcheck", false, "verify lock-table invariants after every commit")
		plotLive  = flag.Bool("plotlive", false, "chart live transactions over time (DC-thrashing view)")
		jsonOut   = flag.String("json", "", "also write the full result as JSON to this file ('-' for stdout)")

		crashNodes  = flag.Int("crashnodes", 0, "crash this many data nodes mid-run (deterministic in -faultseed; at least one node survives)")
		crashWindow = flag.Int64("crashwindow", 0, "clocks within which injected node crashes land (0 = the horizon)")
		faultSeed   = flag.Uint64("faultseed", 0, "fault-injection seed (0 = derive from -seed)")

		shards   = flag.Int("shards", 0, "run the workload through the sharded live controller (real goroutines, DESIGN.md §13) instead of the simulator; 0 = simulator")
		liveTxns = flag.Int("livetxns", 1000, "transactions to drive in -shards live mode")

		walDir     = flag.String("wal", "", "write per-node dependency logs under this directory (docs/ROBUSTNESS.md §9)")
		recoverWAL = flag.String("recoverwal", "", "scan + parallel-replay the dependency logs under this directory, print the recovery report, and exit")

		storageDir = flag.String("storage", "", "back the run with heap files under this directory (docs/STORAGE.md); empty = pure model")
		pageSize   = flag.Int("pagesize", storage.DefaultPageSize, "heap-file page size in bytes (requires -storage)")
		poolFrames = flag.Int("pool", 64, "buffer-pool frames per store (requires -storage)")
	)
	flag.Parse()

	if *recoverWAL != "" {
		if err := recoverReport(*recoverWAL); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	factory, err := sched.Lookup(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mc := machine.DefaultConfig()
	var gen workload.Generator
	switch *wl {
	case "exp1":
		mc.NumParts = *numParts
		gen = workload.Experiment1(*numParts)
	case "exp2":
		l := workload.HotSetLayout{NumReadOnly: 8, NumHots: *numHots}
		mc.NumParts = l.NumParts()
		gen = workload.Experiment2(l)
	case "exp3":
		l := workload.HotSetLayout{NumReadOnly: 8, NumHots: *numHots}
		mc.NumParts = l.NumParts()
		gen = workload.Experiment3(l)
	case "exp4":
		mc.NumParts = *numParts
		gen = workload.WithDeclarationError(workload.Experiment1(*numParts), *sigma)
	case "custom":
		if *pattern == "" {
			fmt.Fprintln(os.Stderr, "-workload custom needs -pattern")
			os.Exit(2)
		}
		pat, err := txn.ParsePattern("custom", *pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		mc.NumParts = *numParts
		gen = workload.UniformPattern(pat, *numParts)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	if *shards > 0 {
		if err := runLiveMode(factory, gen, *shards, *liveTxns, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "live run failed:", err)
			os.Exit(1)
		}
		return
	}

	cfg := sim.Config{
		Machine:              mc,
		Scheduler:            factory,
		Workload:             gen,
		ArrivalRate:          *lambda,
		Horizon:              event.Time(*horizon),
		Warmup:               event.Time(*warmup),
		Seed:                 *seed,
		CheckSerializability: !*nocheck && factory.Label != "NODC",
		SelfCheck:            *selfCheck,
		BatchWindow:          event.Time(*window),
	}
	if *plotLive {
		cfg.SampleEvery = cfg.Horizon / 60
		if cfg.SampleEvery < 1 {
			cfg.SampleEvery = 1
		}
	}
	if *textTrace == "-" {
		cfg.Trace = os.Stdout
	} else if *textTrace != "" {
		f, err := os.Create(*textTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		cfg.Trace = f
	}
	var simOpts []sim.Option
	var observers []obs.Observer
	var jsonl *obs.JSONL
	if *traceOut == "-" {
		jsonl = obs.NewJSONL(os.Stdout)
	} else if *traceOut != "" {
		var err error
		jsonl, err = obs.CreateJSONL(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if jsonl != nil {
		observers = append(observers, jsonl)
	}
	var agg *obs.Metrics
	if *metrics {
		agg = obs.NewMetrics()
		observers = append(observers, agg)
	}
	if len(observers) > 0 {
		simOpts = append(simOpts, sim.WithTrace(obs.Multi(observers...)))
	}
	if *crashNodes > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = uint64(*seed)
		}
		inj, err := fault.New(fseed, fault.Config{
			NodeCrashes:     *crashNodes,
			NodeCrashWindow: event.Time(*crashWindow),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		simOpts = append(simOpts, sim.WithFaults(inj))
	}
	var walLog *wal.Log
	if *walDir != "" {
		var err error
		walLog, err = wal.Open(*walDir, mc.NumNodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		simOpts = append(simOpts, sim.WithWAL(walLog))
	}
	var store *storage.Store
	if *storageDir != "" {
		var err error
		store, err = storage.Open(*storageDir, mc.NumParts,
			storage.WithPageSize(*pageSize),
			storage.WithPoolFrames(*poolFrames),
			storage.WithNodes(mc.NumNodes))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		simOpts = append(simOpts, sim.WithStorage(store))
	}
	start := time.Now()
	res, err := sim.Run(cfg, simOpts...)
	elapsed := time.Since(start)
	if jsonl != nil {
		if cerr := jsonl.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "trace:", cerr)
			os.Exit(1)
		}
	}
	if walLog != nil {
		if cerr := walLog.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "wal:", cerr)
			os.Exit(1)
		}
	}
	var poolStats storage.PoolStats
	if store != nil {
		poolStats = store.Stats()
		if cerr := store.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "storage:", cerr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	fmt.Printf("scheduler   %s\n", res.Scheduler)
	fmt.Printf("workload    %s\n", res.Workload)
	fmt.Printf("lambda      %.3f TPS\n", res.ArrivalRate)
	fmt.Printf("horizon     %v (wall %.2fs)\n", res.Horizon, elapsed.Seconds())
	fmt.Printf("arrived     %d\n", res.Arrived)
	fmt.Printf("admitted    %d (delays %d, aborts %d)\n", res.Admitted, res.AdmissionDelays, res.AdmissionAborts)
	fmt.Printf("completed   %d\n", res.Completed)
	fmt.Printf("mean RT     %.2f s (std %.2f)\n", res.MeanRT, res.StdRT)
	fmt.Printf("throughput  %.4f TPS\n", res.Throughput)
	fmt.Printf("blocks      %d, delays %d\n", res.RequestBlocks, res.RequestDelays)
	fmt.Printf("CN util     %.3f\n", res.CNUtilization)
	fmt.Printf("DN util     %.3f (mean)\n", res.MeanNodeUtil)
	fmt.Printf("max live    %d\n", res.MaxLive)
	if res.NodeCrashes > 0 {
		fmt.Printf("node crashes %d (%d partitions re-homed, %d jobs requeued, %d txns crash-aborted)\n",
			res.NodeCrashes, res.RehomedParts, res.RequeuedJobs, res.CrashAborts)
	}
	if res.SerializabilityChecked {
		fmt.Printf("serializable: yes\n")
	}
	if walLog != nil {
		st := walLog.Stats()
		fmt.Printf("wal         %d records appended, %d fsync passes (max batch %d), logs under %s\n",
			st.Appends, st.Syncs, st.MaxBatch, *walDir)
	}
	if store != nil {
		total := poolStats.BytesRead + poolStats.BytesWritten
		fmt.Printf("storage     %d page reads (%.1f%% pool hits), %d writes, %d evictions, %.2f MB/s wall, heap under %s\n",
			poolStats.Hits+poolStats.Misses, 100*poolStats.HitRate(),
			poolStats.BytesWritten/uint64(*pageSize), poolStats.Evictions,
			float64(total)/1e6/elapsed.Seconds(), *storageDir)
	}
	if agg != nil {
		fmt.Println()
		fmt.Println(agg.Summary())
	}
	if *verbose {
		for i, u := range res.NodeUtilization {
			fmt.Printf("  node %d util %.3f\n", i, u)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	}
	if *plotLive && len(res.Samples) > 0 {
		live := textplot.Series{Label: "live txns", Marker: 'o'}
		busy := textplot.Series{Label: "busy nodes", Marker: '#'}
		for _, smp := range res.Samples {
			at := smp.At.Seconds()
			live.X = append(live.X, at)
			live.Y = append(live.Y, float64(smp.Live))
			busy.X = append(busy.X, at)
			busy.Y = append(busy.Y, float64(smp.BusyNodes))
		}
		chart := textplot.Chart{
			Title:  "Live transactions over time (rising line = DC thrashing)",
			XLabel: "time (s)", YLabel: "count",
		}
		if out, err := chart.Render([]textplot.Series{live, busy}); err == nil {
			fmt.Println()
			fmt.Print(out)
		}
	}
}

// recoverReport scans the per-node dependency logs under dir, replays
// the committed history wave-parallel, audits the result with
// modelcheck.VerifyRecovery, and prints what a restart would rebuild.
func recoverReport(dir string) error {
	scans, err := wal.Scan(dir)
	if err != nil {
		return err
	}
	rec, err := wal.Replay(scans, 0, nil)
	if err != nil {
		return err
	}
	if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
		return err
	}
	var torn int64
	for _, ns := range scans {
		torn += ns.TruncatedBytes
		fmt.Printf("node %-4d %d records, %d valid bytes, %d torn bytes\n",
			ns.Node, len(ns.Records), ns.ValidBytes, ns.TruncatedBytes)
	}
	fmt.Printf("records    %d across %d node logs (%d torn bytes truncated)\n", rec.Records, len(scans), torn)
	fmt.Printf("committed  %d replayed in %d waves (max %d in parallel)\n", len(rec.Committed), rec.Waves, rec.MaxParallel)
	fmt.Printf("aborted    %d\n", len(rec.Aborted))
	fmt.Printf("re-aborted %d in-flight transactions (begin without completion)\n", len(rec.Incomplete))
	for _, b := range rec.Incomplete {
		fmt.Printf("  %v (node %d, %d steps declared)\n", b.Txn, b.Node, len(b.Steps))
	}
	fmt.Printf("replay     %.2fms wall; invariants: ok\n", float64(rec.Elapsed.Nanoseconds())/1e6)
	return nil
}
