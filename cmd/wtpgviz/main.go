// Command wtpgviz analyzes a set of declared transactions: it builds
// their Weighted Transaction Precedence Graph, reports conflicts, chain
// decomposition and the optimal full SR-order W (when the graph is
// chain-form), evaluates E(q) for every opening request, and can emit the
// graph in Graphviz DOT format.
//
// Input is one transaction per line in the paper's notation, read from a
// file argument or stdin. Partition names are arbitrary identifiers:
//
//	T1: r(A:1) -> r(B:3) -> w(A:1)
//	T2: r(C:1) -> w(A:1)
//	T3: w(C:1) -> r(D:3)
//
// Examples:
//
//	wtpgviz txns.txt
//	wtpgviz -dot txns.txt | dot -Tpng > wtpg.png
//	echo "T1: w(A:2)
//	T2: r(A:1)" | wtpgviz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"batsched"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the analysis report")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	txns, err := parseTransactions(in)
	if err != nil {
		fail(err)
	}
	if len(txns) == 0 {
		fail(fmt.Errorf("no transactions in input"))
	}

	g := batsched.NewWTPG()
	for _, t := range txns {
		if err := g.AddNode(t.ID, t.DeclaredTotal()); err != nil {
			fail(err)
		}
	}
	for i := 0; i < len(txns); i++ {
		for j := i + 1; j < len(txns); j++ {
			wab, wba, ok := batsched.ConflictWeights(txns[i], txns[j])
			if !ok {
				continue
			}
			if err := g.AddConflict(txns[i].ID, txns[j].ID, wab, wba); err != nil {
				fail(err)
			}
		}
	}

	if *dot {
		fmt.Print(g.DOT("wtpg"))
		return
	}

	fmt.Println("Transactions:")
	for _, t := range txns {
		fmt.Printf("  %v  (declared total %g)\n", t, t.DeclaredTotal())
	}
	fmt.Println("\nConflicting-edges:")
	edges := g.Edges()
	if len(edges) == 0 {
		fmt.Println("  none")
	}
	for _, e := range edges {
		fmt.Printf("  (%v,%v): w(%v->%v)=%g  w(%v->%v)=%g\n",
			e.A, e.B, e.A, e.B, e.WAB, e.B, e.A, e.WBA)
	}

	chains, ok := g.Chains()
	if !ok {
		fmt.Println("\nThe conflict graph is NOT chain-form: the CHAIN scheduler")
		fmt.Println("would reject the last-admitted transaction; K-WTPG still applies.")
	} else {
		fmt.Printf("\nChain decomposition: %v\n", chains)
		fmt.Println("Optimal full SR-order W (shortest critical path per chain):")
		for _, ch := range chains {
			if len(ch) < 2 {
				fmt.Printf("  %v: isolated (critical path %g)\n", ch, g.W0(ch[0]))
				continue
			}
			prob, err := chainProblem(g, ch)
			if err != nil {
				fail(err)
			}
			sol, err := batsched.SolveChain(prob)
			if err != nil {
				fail(err)
			}
			var order []string
			for k := 0; k+1 < len(ch); k++ {
				if sol.Orient[k] == batsched.Down {
					order = append(order, fmt.Sprintf("%v->%v", ch[k], ch[k+1]))
				} else {
					order = append(order, fmt.Sprintf("%v->%v", ch[k+1], ch[k]))
				}
			}
			fmt.Printf("  %v: {%s}, critical path %g\n", ch, strings.Join(order, ", "), sol.Length)
		}
	}

	// Show the longest path of the current (unresolved) graph: only the
	// T0→Ti edges count until orders are fixed.
	if path, length, err := g.CriticalPathTrace(); err == nil {
		fmt.Printf("\nCurrent critical path (unresolved edges ignored): %s\n",
			batsched.FormatWTPGPath(path, length))
	}

	fmt.Println("\nE(q) for each transaction's opening request (lower grants first):")
	for _, t := range txns {
		if len(t.Steps) == 0 {
			continue
		}
		s := t.Steps[0]
		var targets []batsched.TxnID
		for _, u := range txns {
			if u.ID == t.ID {
				continue
			}
			for _, us := range u.Steps {
				if us.Conflicts(s) {
					targets = append(targets, u.ID)
					break
				}
			}
		}
		e := batsched.EstimateE(g, t.ID, targets)
		fmt.Printf("  %v %v: E = %g\n", t.ID, s, e)
	}
}

// parseTransactions reads the Figure-1 notation: "T<n>: step -> step".
// Partition names are assigned ids in first-appearance order.
func parseTransactions(r io.Reader) ([]*batsched.Transaction, error) {
	parts := map[string]batsched.PartitionID{}
	nextPart := batsched.PartitionID(0)
	var out []*batsched.Transaction
	seen := map[batsched.TxnID]bool{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("line %d: want \"T<n>: steps\", got %q", lineNo, line)
		}
		name := strings.TrimSpace(line[:colon])
		var id batsched.TxnID
		if strings.HasPrefix(name, "T") {
			n, err := strconv.Atoi(name[1:])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad transaction name %q", lineNo, name)
			}
			id = batsched.TxnID(n)
		} else {
			return nil, fmt.Errorf("line %d: transaction name %q must look like T1", lineNo, name)
		}
		if seen[id] {
			return nil, fmt.Errorf("line %d: duplicate transaction %v", lineNo, id)
		}
		seen[id] = true
		pat, err := batsched.ParsePattern(name, line[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		binding := map[string]batsched.PartitionID{}
		for _, v := range pat.Vars() {
			if _, ok := parts[v]; !ok {
				parts[v] = nextPart
				nextPart++
			}
			binding[v] = parts[v]
		}
		t, err := pat.Bind(id, binding)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func chainProblem(g *batsched.WTPG, ch batsched.Chain) (batsched.ChainProblem, error) {
	n := len(ch)
	prob := batsched.ChainProblem{
		R:    make([]float64, n),
		Down: make([]float64, n-1),
		Up:   make([]float64, n-1),
	}
	for k, id := range ch {
		prob.R[k] = g.W0(id)
	}
	for k := 0; k+1 < n; k++ {
		e, ok := g.EdgeBetween(ch[k], ch[k+1])
		if !ok {
			return prob, fmt.Errorf("missing edge (%v,%v)", ch[k], ch[k+1])
		}
		down, up := e.WAB, e.WBA
		if e.A != ch[k] {
			down, up = up, down
		}
		prob.Down[k], prob.Up[k] = down, up
	}
	return prob, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wtpgviz:", err)
	os.Exit(1)
}
