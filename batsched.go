// Package batsched is a library for scheduling Bulk Access Transactions
// (BATs) on shared-nothing parallel database machines, reproducing
// Ohmori, Kitsuregawa and Tanaka, "Concurrency Control of Bulk Access
// Transactions on Shared Nothing Parallel Database Machines" (ICDE 1990).
//
// A BAT reads and updates whole file partitions; scheduling many of them
// concurrently suffers from extreme data contention (partition-level
// locks, chains of blocking) and resource contention (bulk operations
// saturate a node). The paper's answer — and this library's core — is the
// Weighted Transaction Precedence Graph (WTPG): conflicting transactions
// are connected by weighted candidate precedence edges whose weights are
// remaining I/O demands, so the critical path from the virtual initial
// transaction T0 to the virtual final transaction Tf estimates the
// earliest possible completion time of any serialization order. Two
// schedulers exploit it:
//
//   - CHAIN (Chain-WTPG) computes the globally optimal serialization
//     order W on chain-form WTPGs in O(N²) and grants only W-consistent
//     lock requests.
//   - K-WTPG grants a request q only when its locally estimated
//     contention E(q) is minimal among the conflicting declarations,
//     under a K-conflict admission bound.
//
// The package also provides the paper's baselines (ASL, C2PL, NODC and
// the CHAIN-C2PL / K-C2PL hybrids), a deterministic discrete-event
// simulator of the machine model, the four workloads of the evaluation
// section, and harnesses that regenerate every figure of the paper.
//
// # Quick start
//
//	t1 := batsched.NewTransaction(1, []batsched.Step{
//		{Mode: batsched.Read, Part: 0, Cost: 1},
//		{Mode: batsched.Write, Part: 0, Cost: 1},
//	})
//	... build a WTPG, run a scheduler, or simulate a whole machine; see
//	the examples/ directory.
package batsched

import (
	"fmt"
	"io"
	"time"

	"batsched/internal/core/chainopt"
	"batsched/internal/core/estimate"
	"batsched/internal/core/sched"
	"batsched/internal/core/wtpg"
	"batsched/internal/event"
	"batsched/internal/experiments"
	"batsched/internal/fault"
	"batsched/internal/live"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/planner"
	"batsched/internal/sim"
	"batsched/internal/storage"
	"batsched/internal/txn"
	"batsched/internal/wal"
	"batsched/internal/workload"
)

// Transaction model (§2.2 of the paper).
type (
	// Transaction is a declared sequence of read/write steps.
	Transaction = txn.T
	// Step is one read or write of a partition with an I/O demand in
	// objects.
	Step = txn.Step
	// Mode is Read (shared lock) or Write (exclusive lock).
	Mode = txn.Mode
	// TxnID identifies a transaction.
	TxnID = txn.ID
	// PartitionID identifies a partition locking-granule.
	PartitionID = txn.PartitionID
	// Pattern is a reusable transaction template over symbolic partition
	// variables, in the paper's "r(F1:1) -> w(F2:0.2)" notation.
	Pattern = txn.Pattern
)

// Access modes.
const (
	Read  = txn.Read
	Write = txn.Write
)

// NewTransaction builds a transaction whose declared demands equal its
// true demands.
func NewTransaction(id TxnID, steps []Step) *Transaction { return txn.New(id, steps) }

// NewTransactionDeclared builds a transaction with explicit (possibly
// erroneous) declared demands, as in the paper's Experiment 4.
func NewTransactionDeclared(id TxnID, steps []Step, declared []float64) *Transaction {
	return txn.NewDeclared(id, steps, declared)
}

// ParsePattern parses the paper's arrow notation, e.g.
// "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)".
func ParsePattern(name, src string) (*Pattern, error) { return txn.ParsePattern(name, src) }

// WTPG core (§3 of the paper).
type (
	// WTPG is the Weighted Transaction Precedence Graph.
	WTPG = wtpg.Graph
	// WTPGEdge is a conflicting- or precedence-edge of the graph.
	WTPGEdge = wtpg.Edge
	// Chain is a maximal path of the conflict graph.
	Chain = wtpg.Chain
	// ChainProblem is the chain-optimization input (w(T0→n[k]) and the
	// per-direction edge weights).
	ChainProblem = chainopt.Chain
	// ChainSolution is an optimal orientation and its critical path.
	ChainSolution = chainopt.Solution
	// Orientation orients one chain edge (Down, Up or Free).
	Orientation = chainopt.Orientation
)

// Chain edge orientations.
const (
	Free = chainopt.Free
	Down = chainopt.Down
	Up   = chainopt.Up
)

// NewWTPG returns an empty graph.
func NewWTPG() *WTPG { return wtpg.New() }

// FormatWTPGPath renders a critical path as "T0 -> T1 -> Tf (length 6)".
func FormatWTPGPath(path []TxnID, length float64) string {
	return wtpg.FormatPath(path, length)
}

// ConflictWeights computes the §3.1 conflicting-edge weights between two
// declared transactions.
func ConflictWeights(a, b *Transaction) (wab, wba float64, ok bool) {
	return wtpg.ConflictWeights(a, b)
}

// SolveChain computes the full serialization order with the shortest
// critical path on a chain-form WTPG in O(N²), honouring already-resolved
// edges (the production algorithm behind the CHAIN scheduler).
func SolveChain(c ChainProblem) (ChainSolution, error) { return chainopt.Solve(c) }

// SolveChainPaper runs the appendix's literal Lcomp/Rcomp algorithm
// (free chains only).
func SolveChainPaper(c ChainProblem) (ChainSolution, error) { return chainopt.SolvePaper(c) }

// SolveChainExhaustive enumerates all orientations — the test oracle.
func SolveChainExhaustive(c ChainProblem) (ChainSolution, error) {
	return chainopt.SolveExhaustive(c)
}

// EstimateE evaluates the K-WTPG scheduler's E(q) on a graph: the
// contention of the present schedule if transaction t's request — which
// would order t before every target — were granted now (§3.3).
func EstimateE(g *WTPG, t TxnID, targets []TxnID) float64 {
	return estimate.E(g, t, targets)
}

// Schedulers (§3 and §4.1 of the paper).
type (
	// Scheduler is the control-node concurrency-control policy.
	Scheduler = sched.Scheduler
	// SchedulerFactory builds scheduler instances for simulation runs.
	SchedulerFactory = sched.Factory
	// ControlCosts carries ddtime/chaintime/kwtpgtime and the §3.4
	// control-saving period.
	ControlCosts = sched.Costs
	// Decision classifies an admit/request outcome.
	Decision = sched.Decision
	// Outcome is a decision plus its control-node CPU cost.
	Outcome = sched.Outcome
	// BatchAdmitter is the optional scheduler surface for epoch-batch
	// admission: deciding a whole window of arrivals in one pass.
	BatchAdmitter = sched.BatchAdmitter
	// BatchOutcome reports one batched admission pass.
	BatchOutcome = sched.BatchOutcome
	// SchedulerRegistry maps scheduler names to factories; the default
	// registry backs LookupScheduler and the CLIs' -sched flags.
	SchedulerRegistry = sched.Registry
)

// Scheduler decisions.
const (
	Granted = sched.Granted
	Blocked = sched.Blocked
	Delayed = sched.Delayed
	Aborted = sched.Aborted
)

// Scheduler factories, named as in the paper. Each is a thin wrapper
// over the registry — the one place that constructs schedulers by name —
// so these constructors and LookupScheduler always agree.
func NODC() SchedulerFactory       { return sched.MustLookup("NODC") }
func ASL() SchedulerFactory        { return sched.MustLookup("ASL") }
func C2PL() SchedulerFactory       { return sched.MustLookup("C2PL") }
func CHAIN() SchedulerFactory      { return sched.MustLookup("CHAIN") }
func KWTPG(k int) SchedulerFactory { return sched.MustLookup(fmt.Sprintf("K%d", k)) }
func ChainC2PL() SchedulerFactory  { return sched.MustLookup("CHAIN-C2PL") }
func KConflictC2PL(k int) SchedulerFactory {
	return sched.MustLookup(fmt.Sprintf("K%d-C2PL", k))
}

// EPOCH returns the epoch-batch scheduler: CHAIN per decision, plus the
// BatchAdmitter surface that admits a whole arrival window in one pass
// (one W recomputation for the batch) and reports its conflict-free
// cluster count.
func EPOCH() SchedulerFactory { return sched.MustLookup("EPOCH") }

// LookupScheduler resolves a scheduler by name ("CHAIN", "K2",
// "K3-C2PL", "EPOCH", case-insensitive) through the default registry;
// unknown names error with the registered set.
func LookupScheduler(name string) (SchedulerFactory, error) { return sched.Lookup(name) }

// SchedulerNames lists the registered scheduler names (sorted), plus
// the parameterized families K<k> and K<k>-C2PL accepted by
// LookupScheduler.
func SchedulerNames() []string { return sched.Names() }

// NewSchedulerRegistry returns an empty registry for callers that bring
// their own schedulers.
func NewSchedulerRegistry() *SchedulerRegistry { return sched.NewRegistry() }

// ConflictClusters partitions declared transactions into conflict-free
// clusters (indices into ts): members of one cluster conflict
// transitively, distinct clusters share no conflicting pair and can run
// in parallel. This is the partition an epoch dispatcher executes.
func ConflictClusters(ts []*Transaction) [][]int { return sched.ConflictClusters(ts) }

// Machine and simulation (§4.1 of the paper).
type (
	// Time is a simulation timestamp in clocks (1 clock = 1 ms).
	Time = event.Time
	// MachineConfig is the Table 1 machine configuration.
	MachineConfig = machine.Config
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult reports one run's metrics.
	SimResult = sim.Result
	// Workload generates arriving transactions.
	Workload = workload.Generator
	// PatternWorkload instantiates a pattern with random bindings.
	PatternWorkload = workload.PatternGenerator
	// HotSetLayout describes the Experiment 2/3 database layout.
	HotSetLayout = workload.HotSetLayout
)

// DefaultMachine returns the Table 1 defaults (see DESIGN.md §4).
func DefaultMachine() MachineConfig { return machine.DefaultConfig() }

// Simulate executes one deterministic simulation run; options attach
// observability without touching the Config struct:
//
//	res, err := batsched.Simulate(cfg, batsched.WithSimTrace(sink))
func Simulate(cfg SimConfig, opts ...SimOption) (*SimResult, error) { return sim.Run(cfg, opts...) }

// SimOption configures a simulation run (see WithSimTrace).
type SimOption = sim.Option

// WithSimTrace attaches a structured observer to a simulation run: the
// simulator emits timeline events and wraps its scheduler so decisions,
// WTPG edge resolutions and critical-path changes are reported too.
func WithSimTrace(o Observer) SimOption { return sim.WithTrace(o) }

// Fault injection (docs/ROBUSTNESS.md): deterministic, seedable faults
// for the simulator and the live controller.
type (
	// FaultConfig sets per-kind fault rates (zero value = no faults).
	FaultConfig = fault.Config
	// FaultInjector makes deterministic fault decisions from a seed; nil
	// injects nothing.
	FaultInjector = fault.Injector
)

// Sentinel errors reported for injected faults.
var (
	ErrInjectedAbort = fault.ErrInjectedAbort
	ErrInjectedCrash = fault.ErrInjectedCrash
)

// NewFaultInjector builds an injector whose decisions are pure
// functions of (seed, transaction/partition id) — the same seed replays
// the same fault schedule.
func NewFaultInjector(seed uint64, cfg FaultConfig) (*FaultInjector, error) {
	return fault.New(seed, cfg)
}

// WithSimFaults injects faults into a simulation run; every injected
// fault is followed by a scheduler invariant check.
func WithSimFaults(in *FaultInjector) SimOption { return sim.WithFaults(in) }

// WithControllerFaults injects faults into a live controller.
func WithControllerFaults(in *FaultInjector) ControllerOption { return live.WithFaults(in) }

// Durable recovery (docs/ROBUSTNESS.md §9): a per-node dependency-logging
// write-ahead log. Each record carries a transaction's partition
// footprint and its resolved WTPG predecessor set, so recovery replays
// the committed history in parallel waves constrained only by true
// precedence.
type (
	// WAL is the per-node write-ahead log.
	WAL = wal.Log
	// WALRecord is one logged record (begin, commit or abort).
	WALRecord = wal.Record
	// WALStats counts appends, fsync passes and group-commit batching.
	WALStats = wal.Stats
	// WALNodeScan is one node file's decoded records plus its torn tail.
	WALNodeScan = wal.NodeScan
	// WALRecovery is the outcome of a replay: committed/aborted/
	// incomplete transactions and the parallel replay schedule.
	WALRecovery = wal.Recovery
)

// OpenWAL creates or reopens a write-ahead log with one file per node
// under dir, truncating any torn tail left by a crash.
func OpenWAL(dir string, numNodes int) (*WAL, error) { return wal.Open(dir, numNodes) }

// ScanWAL decodes every node file under dir without replaying it.
func ScanWAL(dir string) ([]WALNodeScan, error) { return wal.Scan(dir) }

// ReplayWAL rebuilds the committed history from scanned node files,
// applying committed transactions in dependency-ordered parallel waves
// (workers <= 0 means one goroutine per transaction per wave; apply may
// be nil to only classify).
func ReplayWAL(scans []WALNodeScan, workers int, apply func(begin WALRecord, wave int)) (*WALRecovery, error) {
	return wal.Replay(scans, workers, apply)
}

// WithSimWAL attaches a write-ahead log to a simulation run: admissions
// append begin records, completions append commit/abort records, and the
// durable committed set equals the run's committed set exactly.
func WithSimWAL(l *WAL) SimOption { return sim.WithWAL(l) }

// WithControllerWAL attaches a write-ahead log under dir to a live
// controller: begins are forced durable before the first grant and
// commits are forced durable before they apply. A commit that cannot be
// logged is an abort.
func WithControllerWAL(dir string) ControllerOption { return live.WithWAL(dir) }

// WithControllerWALLog is WithControllerWAL over an already-open log.
func WithControllerWALLog(l *WAL) ControllerOption { return live.WithWALLog(l) }

// RecoverController rebuilds a controller from the log under dir:
// committed transactions are replayed (wave-parallel) into a fresh
// scheduler, incomplete ones are re-aborted, and the returned controller
// continues logging to the same directory.
func RecoverController(dir string, f SchedulerFactory, costs ControlCosts, opts ...ControllerOption) (*Controller, *WALRecovery, error) {
	return live.Recover(dir, f, costs, opts...)
}

// Storage (docs/STORAGE.md): slotted-page heap files under the
// schedulers. Each partition is one checksummed heap file accessed
// through a per-node buffer pool; committed write steps apply
// deterministic effect tuples, so the final partition contents are a
// pure function of the committed set — the property the differential
// and crash-recovery batteries check.
type (
	// Store is a partitioned heap-file store (one file per partition).
	Store = storage.Store
	// StorageOption configures OpenStorage.
	StorageOption = storage.Option
	// StoragePage is one slotted page over a caller-owned buffer.
	StoragePage = storage.Page
	// StorageRecordID locates a tuple (page number, slot).
	StorageRecordID = storage.RecordID
	// StorageIterator walks one partition's live tuples in (page, slot)
	// order through the buffer pool.
	StorageIterator = storage.Iterator
	// StoragePoolStats snapshots the buffer pool's counters.
	StoragePoolStats = storage.PoolStats
	// StorageEffectKey identifies a committed write step's effect tuple.
	StorageEffectKey = storage.EffectKey
)

// DefaultPageSize is the heap-file page size unless WithPageSize says
// otherwise.
const DefaultPageSize = storage.DefaultPageSize

// OpenStorage creates or reopens a heap-file store with one file per
// partition under dir, recovering torn pages left by a crash (partial
// tails are truncated, corrupt interior pages reinitialized — the WAL
// replay re-applies their committed effects).
func OpenStorage(dir string, numParts int, opts ...StorageOption) (*Store, error) {
	return storage.Open(dir, numParts, opts...)
}

// Storage options.
func WithPageSize(n int) StorageOption     { return storage.WithPageSize(n) }
func WithPoolFrames(n int) StorageOption   { return storage.WithPoolFrames(n) }
func WithStorageNodes(n int) StorageOption { return storage.WithNodes(n) }

// EncodeEffect builds the deterministic effect tuple committed write
// steps insert: a (txn, step, partition) header padded to size bytes.
func EncodeEffect(id TxnID, step int, part PartitionID, size int) []byte {
	return storage.EncodeEffect(id, step, part, size)
}

// DecodeEffect parses an effect tuple's header.
func DecodeEffect(b []byte) (StorageEffectKey, PartitionID, bool) {
	return storage.DecodeEffect(b)
}

// WithSimStorage backs a simulation run with a caller-owned store:
// every scheduled quantum touches a real page, write steps stage their
// effect tuple, and commits apply staged effects after the WAL force.
// Storage is driven by the timeline and feeds nothing back, so the
// simulation Result is byte-identical with storage on or off.
func WithSimStorage(st *Store) SimOption { return sim.WithStorage(st) }

// WithControllerStorage backs a live controller with a caller-owned
// store: every granted step scans its partition through the buffer
// pool, and commit applies the staged effects strictly after the WAL
// commit force while the transaction still holds its locks.
func WithControllerStorage(st *Store) ControllerOption { return live.WithStorage(st) }

// Observability (docs/OBSERVABILITY.md): structured trace events,
// counters and histograms over every layer — schedulers, the simulator,
// the live controller and the experiment harness.
type (
	// TraceEvent is one structured observation.
	TraceEvent = obs.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = obs.Kind
	// Observer consumes trace events; Sink is a closable Observer.
	Observer = obs.Observer
	Sink     = obs.Sink
	// RingSink keeps the last N events in memory.
	RingSink = obs.Ring
	// JSONLSink streams events as JSON Lines.
	JSONLSink = obs.JSONL
	// Metrics aggregates events into per-scheduler counters/histograms.
	Metrics = obs.Metrics
	// SchedulerMetrics is one scheduler's aggregate.
	SchedulerMetrics = obs.SchedMetrics
)

// Trace event kinds.
const (
	TraceAdmit              = obs.KindAdmit
	TraceRequest            = obs.KindRequest
	TraceDecision           = obs.KindDecision
	TraceObjectDone         = obs.KindObjectDone
	TraceCommit             = obs.KindCommit
	TraceResolve            = obs.KindResolve
	TraceCriticalPathChange = obs.KindCriticalPathChange
	TraceEpochFlush         = obs.KindEpochFlush
)

// Sink constructors.
func NewRingSink(capacity int) *RingSink              { return obs.NewRing(capacity) }
func NewJSONLSink(w io.Writer) *JSONLSink             { return obs.NewJSONL(w) }
func CreateJSONLSink(path string) (*JSONLSink, error) { return obs.CreateJSONL(path) }
func NewMetrics() *Metrics                            { return obs.NewMetrics() }

// MultiObserver fans events out to several observers (nils skipped).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// ObserveScheduler wraps a scheduler (or a whole factory) so every
// decision is reported to o; a nil observer is the identity.
func ObserveScheduler(s Scheduler, o Observer) Scheduler { return sched.Observed(s, o) }
func ObserveSchedulerFactory(f SchedulerFactory, o Observer) SchedulerFactory {
	return sched.ObservedFactory(f, o)
}

// The paper's workloads.
func WorkloadExperiment1(numParts int) Workload { return workload.Experiment1(numParts) }
func WorkloadExperiment2(l HotSetLayout) Workload {
	return workload.Experiment2(l)
}
func WorkloadExperiment3(l HotSetLayout) Workload {
	return workload.Experiment3(l)
}

// WithDeclarationError wraps a workload with Experiment 4's erroneous
// I/O-demand model (declared = true × (1 + x), x ~ N(0, σ²), clamped ≥0).
func WithDeclarationError(w Workload, sigma float64) Workload {
	return workload.WithDeclarationError(w, sigma)
}

// Experiment harness (§4 of the paper).
type (
	// ExperimentOptions configures a figure regeneration.
	ExperimentOptions = experiments.Options
	// ExperimentOption attaches observability to an experiment run (see
	// WithExperimentTrace and WithExperimentMetrics).
	ExperimentOption = experiments.Option
	// Experiment results, one per paper experiment.
	Experiment1Result = experiments.Experiment1Result
	Experiment2Result = experiments.Experiment2Result
	Experiment3Result = experiments.Experiment3Result
	Experiment4Result = experiments.Experiment4Result
	// SweepPoint and Sweep expose raw sweep data.
	Sweep = experiments.Sweep
)

// Live execution: the schedulers as an in-process lock manager for real
// goroutines (package sim *models* the machine; Controller schedules
// actual work).
type (
	// Controller is a live lock manager driven by one of the schedulers.
	Controller = live.Controller
	// ControllerOption configures a Controller at construction.
	ControllerOption = live.Option
	// ControllerOptions is the legacy controller configuration struct.
	//
	// Deprecated: pass ControllerOption values to NewController instead.
	ControllerOptions = live.Options
	// ControllerStats is a snapshot of a Controller's lifetime counters.
	ControllerStats = live.Stats
	// Progress reports completed objects from inside a running step.
	Progress = live.Progress
)

// ErrControllerClosed is returned by a closed Controller.
var ErrControllerClosed = live.ErrClosed

// ErrWatchdogAborted is returned when the controller's no-progress
// watchdog (WithWatchdog) force-aborted a blocked transaction to break
// a stall. The transaction may be resubmitted.
var ErrWatchdogAborted = live.ErrWatchdogAborted

// NewController builds a live controller around a scheduler:
//
//	ctl := batsched.NewController(batsched.KWTPG(2),
//		batsched.ControlCosts{KeepTime: 100},
//		batsched.WithControllerObserver(sink))
func NewController(f SchedulerFactory, costs ControlCosts, opts ...ControllerOption) *Controller {
	return live.New(f, costs, opts...)
}

// NewControllerWithOptions builds a controller from the legacy struct.
//
// Deprecated: use NewController with functional options.
func NewControllerWithOptions(f SchedulerFactory, costs ControlCosts, opts ControllerOptions) *Controller {
	return live.NewWithOptions(f, costs, opts)
}

// Controller options.
func WithRetryDelay(d time.Duration) ControllerOption { return live.WithRetryDelay(d) }
func WithControllerObserver(o Observer) ControllerOption {
	return live.WithObserver(o)
}

// WithBackoff replaces the fixed retry delay with jittered exponential
// backoff in [d/2, d], d = min(base·2ⁿ, max) for the n-th consecutive
// refusal (docs/ROBUSTNESS.md).
func WithBackoff(base, max time.Duration) ControllerOption { return live.WithBackoff(base, max) }

// WithWatchdog enables the controller's no-progress watchdog: after one
// silent period it re-broadcasts the wake channel, after two it
// force-aborts the youngest blocked transaction (docs/ROBUSTNESS.md).
func WithWatchdog(d time.Duration) ControllerOption { return live.WithWatchdog(d) }

// WithShards partitions the controller's hot path — lock table, WTPG,
// scheduler state, wake channels, retry-jitter RNGs, counters — into n
// shards by partition-ownership hashing (n rounded up to a power of
// two, capped at 64). Single-shard transactions never touch another
// shard's lock; spanning transactions acquire all their locks
// atomically at admission (DESIGN.md §13). n ≤ 1 keeps the historical
// single-mutex behavior.
func WithShards(n int) ControllerOption { return live.WithShards(n) }

// WithBatchWindow enables the controller's epoch-batch admission:
// transactions handed to Controller.Submit are collected for wall-clock
// windows of d, admitted as one batch through the scheduler's
// BatchAdmitter surface (EPOCH), and dispatched conflict-free cluster
// by cluster to the epoch worker pool.
func WithBatchWindow(d time.Duration) ControllerOption { return live.WithBatchWindow(d) }

// WithEpochWorkers bounds the worker pool that executes one epoch's
// clusters (default: GOMAXPROCS).
func WithEpochWorkers(n int) ControllerOption { return live.WithEpochWorkers(n) }

// Batch planning (the off-line window's makespan problem, §1).
type (
	// PlanStrategy orders and times the release of a fixed batch.
	PlanStrategy = planner.Strategy
	// PlanEvaluation is one (strategy, scheduler) outcome.
	PlanEvaluation = planner.Evaluation
	// Flood releases the whole batch at t = 0.
	Flood = planner.Flood
	// Stagger releases one transaction per fixed gap.
	Stagger = planner.Stagger
	// ByDemand floods in declared-demand order (LPT-style).
	ByDemand = planner.ByDemand
)

// EvaluatePlan simulates one release plan of a fixed batch and reports
// its makespan.
func EvaluatePlan(batch []*Transaction, mc MachineConfig, f SchedulerFactory, s PlanStrategy) (*PlanEvaluation, error) {
	return planner.Evaluate(batch, mc, f, s)
}

// ComparePlans evaluates every (strategy × scheduler) combination,
// sorted by makespan.
func ComparePlans(batch []*Transaction, mc MachineConfig, factories []SchedulerFactory, strategies []PlanStrategy) ([]*PlanEvaluation, error) {
	return planner.Compare(batch, mc, factories, strategies)
}

// RandomBatch draws a reproducible fixed batch from a workload.
func RandomBatch(gen Workload, n int, seed int64) []*Transaction {
	return planner.RandomBatch(gen, n, seed)
}

// RenderPlanTable formats plan evaluations as a report.
func RenderPlanTable(evals []*PlanEvaluation) string { return planner.RenderTable(evals) }

// Extensions beyond the paper's figures.
type (
	// AblationResult is a (variant × scheduler) throughput table.
	AblationResult = experiments.AblationResult
	// MixedResult reports the mixed short-transaction/BAT experiment.
	MixedResult = experiments.MixedResult
	// EpochSweepResult reports the batch-window sweep (makespan and
	// latency vs. window size under the EPOCH scheduler).
	EpochSweepResult = experiments.EpochSweepResult
	// MixtureWorkload mixes several transaction classes.
	MixtureWorkload = workload.Mixture
	// WorkloadComponent is one class of a mixture.
	WorkloadComponent = workload.Component
)

// NewMixture builds a mixed workload of weighted components.
func NewMixture(label string, components ...WorkloadComponent) (*MixtureWorkload, error) {
	return workload.NewMixture(label, components...)
}

// ShortTransactions builds a debit-credit-style short-transaction
// generator (tiny demands, whole-partition locks).
func ShortTransactions(numParts int, stepCost float64) Workload {
	return workload.ShortTransactions(numParts, stepCost)
}

// Ablations of design choices and the paper's suggested extensions.
func RunKSweep(o ExperimentOptions, ks []int, opts ...ExperimentOption) (*AblationResult, error) {
	return experiments.RunKSweep(o, ks, opts...)
}
func RunPlacementAblation(o ExperimentOptions, opts ...ExperimentOption) (*AblationResult, error) {
	return experiments.RunPlacementAblation(o, opts...)
}
func RunMixedWorkload(o ExperimentOptions, lambda, shortShare float64, opts ...ExperimentOption) (*MixedResult, error) {
	return experiments.RunMixedWorkload(o, lambda, shortShare, opts...)
}

// RunEpochSweep runs the batch-window sweep: a fixed Pattern1 arrival
// stream under EPOCH at each window size (0 = the per-arrival CHAIN
// baseline), reporting makespan, mean/p99 latency and batch statistics
// per window. Zero windows/lambda/maxTxns select the defaults.
func RunEpochSweep(o ExperimentOptions, windows []Time, lambda float64, maxTxns int, opts ...ExperimentOption) (*EpochSweepResult, error) {
	return experiments.RunEpochSweep(o, windows, lambda, maxTxns, opts...)
}

// The paper's experiments; each result renders its figure(s) as text.
func RunExperiment1(o ExperimentOptions, opts ...ExperimentOption) (*Experiment1Result, error) {
	return experiments.RunExperiment1(o, opts...)
}
func RunExperiment2(o ExperimentOptions, opts ...ExperimentOption) (*Experiment2Result, error) {
	return experiments.RunExperiment2(o, opts...)
}
func RunExperiment3(o ExperimentOptions, opts ...ExperimentOption) (*Experiment3Result, error) {
	return experiments.RunExperiment3(o, opts...)
}
func RunExperiment4(o ExperimentOptions, sigmas []float64, opts ...ExperimentOption) (*Experiment4Result, error) {
	return experiments.RunExperiment4(o, sigmas, opts...)
}

// WithExperimentTrace streams every simulation's structured events to o
// (shared across the parallel grid; each run buffers privately and the
// harness replays buffers into o in deterministic grid order, so the
// stream is identical at every parallelism level).
func WithExperimentTrace(o Observer) ExperimentOption { return experiments.WithTrace(o) }

// WithExperimentMetrics aggregates per-sweep-point metrics into each
// resulting point.
func WithExperimentMetrics() ExperimentOption { return experiments.WithMetrics() }

// WithExperimentParallelism bounds the experiment worker pool to n
// concurrent simulations (default: Options.Workers, then
// runtime.NumCPU()). Output is byte-identical at every n.
func WithExperimentParallelism(n int) ExperimentOption { return experiments.WithParallelism(n) }
