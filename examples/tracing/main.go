// Observability walkthrough: run one short simulation with every sink
// attached, then peek inside the scheduler three ways.
//
//   - a ring buffer holds the most recent structured events for
//     programmatic inspection (here: the last transaction's lifecycle),
//   - a JSONL sink streams every event to a file for offline analysis
//     (one JSON object per line; jq-friendly),
//   - a metrics aggregate turns the same stream into per-scheduler
//     decision counts and latency histograms.
//
// The same sinks plug into the live Controller
// (batsched.WithControllerObserver) and the experiment harness
// (batsched.WithExperimentTrace / WithExperimentMetrics); see
// docs/OBSERVABILITY.md for the event schema.
//
// Run with: go run ./examples/tracing
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"batsched"
)

func main() {
	dir, err := os.MkdirTemp("", "batsched-tracing")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := filepath.Join(dir, "trace.jsonl")

	ring := batsched.NewRingSink(1 << 12)
	jsonl, err := batsched.CreateJSONLSink(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	metrics := batsched.NewMetrics()

	cfg := batsched.SimConfig{
		Machine:     batsched.DefaultMachine(),
		Scheduler:   batsched.KWTPG(2),
		Workload:    batsched.WorkloadExperiment1(16),
		ArrivalRate: 0.6,
		Horizon:     200_000, // 200 simulated seconds
		Seed:        1990,
	}
	res, err := batsched.Simulate(cfg,
		batsched.WithSimTrace(batsched.MultiObserver(ring, jsonl, metrics)))
	if err != nil {
		log.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %s: %d arrived, %d completed, mean RT %.1f s\n\n",
		res.Scheduler, res.Arrived, res.Completed, res.MeanRT)

	// 1. Ring buffer: walk the last committed transaction's lifecycle.
	events := ring.Events()
	var lastCommit batsched.TraceEvent
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind == batsched.TraceCommit {
			lastCommit = events[i]
			break
		}
	}
	fmt.Printf("lifecycle of the last committed transaction (T%d):\n", lastCommit.Txn)
	for _, e := range events {
		if e.Txn == lastCommit.Txn {
			fmt.Printf("  %s\n", e)
		}
	}

	// 2. JSONL file: show the first lines of the machine-readable trace.
	f, err := os.Open(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Printf("\nfirst lines of %s:\n", filepath.Base(tracePath))
	sc := bufio.NewScanner(f)
	for i := 0; i < 3 && sc.Scan(); i++ {
		fmt.Printf("  %s\n", sc.Text())
	}

	// 3. Metrics: the human-readable summary table.
	fmt.Println()
	fmt.Println(metrics.Summary())
}
