// Quickstart: the paper's Figure 1/2 worked example, end to end.
//
// Builds the three transactions of Figure 1, assembles their Weighted
// Transaction Precedence Graph, compares serialization orders by critical
// path, solves for the optimal full SR-order W with the O(N²) chain
// algorithm, and shows the grant decision CHAIN makes in Example 3.3.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	// Figure 1 (partitions: A=0, B=1, C=2, D=3):
	//   T1: r1(A:1) -> r1(B:3) -> w1(A:1)
	//   T2: r2(C:1) -> w2(A:1)
	//   T3: w3(C:1) -> r3(D:3)
	const (
		A batsched.PartitionID = iota
		B
		C
		D
	)
	t1 := batsched.NewTransaction(1, []batsched.Step{
		{Mode: batsched.Read, Part: A, Cost: 1},
		{Mode: batsched.Read, Part: B, Cost: 3},
		{Mode: batsched.Write, Part: A, Cost: 1},
	})
	t2 := batsched.NewTransaction(2, []batsched.Step{
		{Mode: batsched.Read, Part: C, Cost: 1},
		{Mode: batsched.Write, Part: A, Cost: 1},
	})
	t3 := batsched.NewTransaction(3, []batsched.Step{
		{Mode: batsched.Write, Part: C, Cost: 1},
		{Mode: batsched.Read, Part: D, Cost: 3},
	})
	fmt.Println("Transactions (Figure 1):")
	for _, tx := range []*batsched.Transaction{t1, t2, t3} {
		fmt.Printf("  %v   (declared total %g objects)\n", tx, tx.DeclaredTotal())
	}

	// Build the WTPG of Figure 2-(a): every transaction has just started.
	g := batsched.NewWTPG()
	txns := []*batsched.Transaction{t1, t2, t3}
	for _, tx := range txns {
		if err := g.AddNode(tx.ID, tx.DeclaredTotal()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nConflicting-edges and their weights (§3.1):")
	for i := 0; i < len(txns); i++ {
		for j := i + 1; j < len(txns); j++ {
			a, b := txns[i], txns[j]
			wab, wba, ok := batsched.ConflictWeights(a, b)
			if !ok {
				continue
			}
			if err := g.AddConflict(a.ID, b.ID, wab, wba); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  (%v,%v): w(%v->%v)=%g  w(%v->%v)=%g\n",
				a.ID, b.ID, a.ID, b.ID, wab, b.ID, a.ID, wba)
		}
	}

	// Compare two full SR-orders by critical path (Example 3.2).
	good := g.Clone()
	for _, r := range [][2]batsched.TxnID{{1, 2}, {3, 2}} {
		if err := good.Resolve(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}
	cpGood, err := good.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	bad := g.Clone()
	for _, r := range [][2]batsched.TxnID{{1, 2}, {2, 3}} {
		if err := bad.Resolve(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}
	cpBad, err := bad.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCritical paths of two serialization orders:\n")
	fmt.Printf("  W = {T1->T2, T3->T2}: %g  (no chain of blocking)\n", cpGood)
	fmt.Printf("  W = {T1->T2->T3}:     %g  (T1->T2->T3 blocking chain)\n", cpBad)

	// Solve for the optimum directly (the CHAIN scheduler's step 2).
	chains, ok := g.Chains()
	if !ok {
		log.Fatal("WTPG is not chain-form")
	}
	fmt.Printf("\nChain decomposition: %v\n", chains)
	prob := batsched.ChainProblem{
		R:    []float64{g.W0(1), g.W0(2), g.W0(3)},
		Down: []float64{1, 4},
		Up:   []float64{5, 2},
	}
	sol, err := batsched.SolveChain(prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Optimal W has critical path %g with orientations %v\n", sol.Length, sol.Orient)
	paper, err := batsched.SolveChainPaper(prob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Appendix Lcomp/Rcomp agrees: %g\n", paper.Length)

	// The CHAIN grant decision of Example 3.3: with W = {T1->T2, T3->T2},
	// granting T2's first step r2(C:1) would resolve (T2,T3) into T2->T3
	// — inconsistent with W, so CHAIN delays it.
	sch := batsched.CHAIN().New(batsched.DefaultMachine().Control)
	for _, tx := range txns {
		if out := sch.Admit(tx, 0); out.Decision != batsched.Granted {
			log.Fatalf("admit %v: %v", tx.ID, out.Decision)
		}
	}
	fmt.Println("\nCHAIN grant decisions (Example 3.3):")
	for _, req := range []struct {
		tx   *batsched.Transaction
		step int
		desc string
	}{
		{t2, 0, "r2(C:1)"},
		{t1, 0, "r1(A:1)"},
		{t3, 0, "w3(C:1)"},
	} {
		out := sch.Request(req.tx, req.step, 0)
		fmt.Printf("  %-8s -> %v\n", req.desc, out.Decision)
	}

	fmt.Println("\nGraphviz rendering of the WTPG (paste into dot):")
	fmt.Println(g.DOT("figure2a"))
}
