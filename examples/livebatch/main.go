// Live batch execution: the schedulers as a real in-process lock manager.
//
// Everything else in this repository simulates the machine; this example
// schedules *actual work* with real goroutines. Sixteen partitioned
// in-memory "files" hold integers; a fleet of analyse-then-update jobs
// (read two partitions, then rewrite them — the paper's Pattern1 shape)
// runs concurrently under the K-WTPG scheduler. The controller guarantees
// what the paper's scheduler guarantees: conflicting jobs never overlap,
// the overall schedule is conflict serializable, and no running job is
// ever aborted by the scheduler. The final checksum proves updates were
// never lost to races.
//
// Run with: go run ./examples/livebatch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"batsched"
)

const (
	numParts = 16
	partSize = 4096
	numJobs  = 48
)

func main() {
	// The "database": numParts partitions of integers.
	db := make([][]int64, numParts)
	for i := range db {
		db[i] = make([]int64, partSize)
		for j := range db[i] {
			db[i][j] = int64(i + j)
		}
	}

	ctl := batsched.NewController(batsched.KWTPG(2),
		batsched.ControlCosts{KeepTime: 100})
	defer ctl.Close()

	var grants int
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for j := 0; j < numJobs; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(j)))
			a := batsched.PartitionID(rng.Intn(numParts))
			b := batsched.PartitionID((int(a) + 1 + rng.Intn(numParts-1)) % numParts)
			// Declare the job in the paper's model: read both partitions,
			// then update both (update = read-before-write, cost 2a|P|).
			tx := batsched.NewTransaction(batsched.TxnID(j+1), []batsched.Step{
				{Mode: batsched.Read, Part: a, Cost: 1},
				{Mode: batsched.Read, Part: b, Cost: 1},
				{Mode: batsched.Write, Part: a, Cost: 2},
				{Mode: batsched.Write, Part: b, Cost: 2},
			})
			var sum int64
			err := ctl.Run(context.Background(), tx, func(step int, p batsched.Progress) error {
				mu.Lock()
				grants++
				mu.Unlock()
				// A dash of latency stands in for the disk scan a real bulk
				// step performs.
				time.Sleep(2 * time.Millisecond)
				switch step {
				case 0: // analyse partition a
					for _, v := range db[a] {
						sum += v
					}
				case 1: // analyse partition b
					for _, v := range db[b] {
						sum += v
					}
				case 2: // update a: a read-modify-write of every element.
					// A lost update (two jobs interleaving) would drop
					// increments and break the final checksum.
					for i := range db[a] {
						db[a][i]++
					}
				case 3: // update b
					for i := range db[b] {
						db[b][i]++
					}
				}
				_ = sum // the analysis result would drive a real update
				p(tx.Steps[step].Cost)
				return nil
			})
			if err != nil {
				log.Fatalf("job %d: %v", j, err)
			}
		}()
	}
	wg.Wait()

	var checksum int64
	for _, part := range db {
		for _, v := range part {
			checksum += v
		}
	}
	// Initial contents were db[i][j] = i+j; every job increments every
	// element of exactly two partitions once.
	var initial int64
	for i := 0; i < numParts; i++ {
		for j := 0; j < partSize; j++ {
			initial += int64(i + j)
		}
	}
	want := initial + int64(numJobs)*2*partSize
	st := ctl.Stats()
	fmt.Printf("ran %d jobs over %d partitions in %v\n", numJobs, numParts, time.Since(start).Round(time.Millisecond))
	fmt.Printf("admitted %d, committed %d, lock grants %d, retry waits %d\n",
		st.Admitted, st.Committed, grants, st.Retries)
	if checksum != want {
		log.Fatalf("LOST UPDATES: checksum %d, want %d", checksum, want)
	}
	fmt.Printf("checksum %d matches the exact expected value: every read-modify-write\n", checksum)
	fmt.Println("ran under an exclusive partition lock — no update was lost")
}
