// Banking night batch: the paper's motivating scenario (§1).
//
// "A BAT in a banking system reads history-files for statistic analysis,
// and then updates master-files according to this analysis." This example
// models an off-line service window on an 8-node shared-nothing machine:
// a stream of such analyse-then-update BATs must finish in a short time,
// so they run concurrently under each scheduler and we compare how many
// the window completes, the mean response time, and whether chains of
// blocking appear.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"batsched"
)

func main() {
	// Database layout on 8 nodes: 8 history partitions (one per node,
	// large, read-mostly) and 8 master partitions (hot, updated).
	// A batch job reads two history partitions, then applies the analysis
	// to two master partitions: r(H1:4) -> r(H2:4) -> w(M1:1) -> w(M2:1).
	pattern, err := batsched.ParsePattern("NightBatch",
		"r(H1:4) -> r(H2:4) -> w(M1:1) -> w(M2:1)")
	if err != nil {
		log.Fatal(err)
	}
	const numHistory, numMaster = 8, 8
	gen := &batsched.PatternWorkload{
		Label:   "banking-night-batch",
		Pattern: pattern,
		BindVars: func(rng *rand.Rand) map[string]batsched.PartitionID {
			h := rng.Perm(numHistory)
			m := rng.Perm(numMaster)
			return map[string]batsched.PartitionID{
				"H1": batsched.PartitionID(h[0]),
				"H2": batsched.PartitionID(h[1]),
				"M1": batsched.PartitionID(numHistory + m[0]),
				"M2": batsched.PartitionID(numHistory + m[1]),
			}
		},
	}

	mc := batsched.DefaultMachine()
	mc.NumParts = numHistory + numMaster

	// A 30-minute off-line window, jobs arriving at 0.5 TPS.
	const window = 30 * 60 * 1000 // clocks (ms)
	fmt.Println("Night-batch window: 30 simulated minutes, λ = 0.5 jobs/s, 8 nodes")
	fmt.Printf("Job pattern: %v\n\n", pattern)
	fmt.Printf("%-12s %10s %10s %10s %12s %10s\n",
		"scheduler", "completed", "meanRT(s)", "aborts", "blocks+delays", "DN util")

	for _, f := range []batsched.SchedulerFactory{
		batsched.NODC(), batsched.ASL(), batsched.CHAIN(),
		batsched.KWTPG(2), batsched.C2PL(),
	} {
		cfg := batsched.SimConfig{
			Machine:              mc,
			Scheduler:            f,
			Workload:             gen,
			ArrivalRate:          0.5,
			Horizon:              window,
			Seed:                 2026,
			CheckSerializability: f.Label != "NODC",
		}
		res, err := batsched.Simulate(cfg)
		if err != nil {
			log.Fatalf("%s: %v", f.Label, err)
		}
		fmt.Printf("%-12s %10d %10.1f %10d %12d %9.0f%%\n",
			res.Scheduler, res.Completed, res.MeanRT,
			res.AdmissionAborts, res.RequestBlocks+res.RequestDelays,
			100*res.MeanNodeUtil)
	}

	fmt.Println(`
Reading the table: NODC is the contention-free upper bound. With updates
concentrated on hot master files this window behaves like the paper's
Experiment 2: ASL's all-or-nothing lock acquisition starves (fewest jobs,
worst response time), CHAIN pays for its chain-form admission constraint
(the abort column counts rejected start attempts, each retried later),
and K2 — which accepts any WTPG shape and grants by smallest E(q) —
tracks the upper bound almost exactly. Push the arrival rate or the
read sizes up (Experiment 1's regime) and the ordering flips in ASL's
favour; see cmd/batbench for both sweeps.`)
}
