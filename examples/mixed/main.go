// Mixed on-line/off-line processing: the paper's closing discussion.
//
// "In mixed transaction processing, different schedulers are necessary
// for different classes of jobs." This example shares one 8-node machine
// between short debit-credit-style transactions (80% of arrivals, ~20 ms
// of node work each) and Pattern1 BATs (20%, seconds of work), and shows
// what each BAT scheduler does to the short transactions' response time:
// partition-level locks make every short transaction wait behind any BAT
// holding its partitions.
//
// Run with: go run ./examples/mixed
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	opts := batsched.ExperimentOptions{
		Horizon: 600_000, // 10 simulated minutes
		Seed:    31,
	}
	res, err := batsched.RunMixedWorkload(opts, 2.0, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())
	fmt.Println(`
NODC shows the machine could serve the shorts almost instantly; every
real scheduler makes them queue behind bulk partition locks for seconds.
That gap — orders of magnitude above a short transaction's service time —
is why the paper concludes that BAT scheduling (this library) belongs in
the off-line service window, with a different scheduler class handling
the on-line stream.`)
}
