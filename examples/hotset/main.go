// Hot-set study: how each scheduler copes with a shrinking hot set.
//
// Master files are the paper's canonical "hot" data: every BAT updates
// them, so the smaller the hot set, the higher the data contention. This
// example sweeps the Experiment 2 workload (r(B:5) -> w(F1:1) -> w(F2:1))
// over hot-set sizes at a fixed arrival rate and prints throughput and
// response time per scheduler — a single-λ slice of the paper's Figure 8.
//
// Run with: go run ./examples/hotset
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	const lambda = 0.5
	fmt.Printf("Experiment-2 workload at λ = %.1f TPS, 8 read-only partitions + hot set\n\n", lambda)
	schedulers := []batsched.SchedulerFactory{
		batsched.ASL(), batsched.CHAIN(), batsched.KWTPG(2), batsched.C2PL(),
	}
	fmt.Printf("%-8s", "hots")
	for _, f := range schedulers {
		fmt.Printf(" %18s", f.Label+" tps/rt(s)")
	}
	fmt.Println()

	for _, numHots := range []int{4, 8, 16, 32} {
		layout := batsched.HotSetLayout{NumReadOnly: 8, NumHots: numHots}
		mc := batsched.DefaultMachine()
		mc.NumParts = layout.NumParts()
		fmt.Printf("%-8d", numHots)
		for _, f := range schedulers {
			cfg := batsched.SimConfig{
				Machine:              mc,
				Scheduler:            f,
				Workload:             batsched.WorkloadExperiment2(layout),
				ArrivalRate:          lambda,
				Horizon:              600_000,
				Seed:                 11,
				CheckSerializability: true,
			}
			res, err := batsched.Simulate(cfg)
			if err != nil {
				log.Fatalf("%s hots=%d: %v", f.Label, numHots, err)
			}
			fmt.Printf(" %10.3f/%-7.1f", res.Throughput, res.MeanRT)
		}
		fmt.Println()
	}

	fmt.Println(`
With 4 hot partitions nearly every pair of live BATs conflicts: ASL can
rarely take all locks at once, and CHAIN's chain-form test rejects most
admissions. K2 keeps admitting (its K-conflict bound is per declaration,
not per transaction) and uses the WTPG weights to order grants, which is
exactly why the paper finds K-WTPG best on hot sets. As the hot set
grows, contention fades and all four schedulers converge.`)
}
