// Sensitivity to erroneous I/O declarations (the paper's Experiment 4).
//
// WTPG schedulers need each transaction to pre-declare its I/O demands,
// but real estimates are wrong: a selection's selectivity is misjudged,
// an index is unexpectedly unusable. This example perturbs every declared
// demand by C = C0·(1+x), x ~ N(0, σ²), and shows how CHAIN and K2
// degrade as σ grows, against the weight-free C2PL reference.
//
// Run with: go run ./examples/errors
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	const lambda = 0.6
	sigmas := []float64{0, 0.25, 0.5, 1.0}
	schedulers := []batsched.SchedulerFactory{
		batsched.CHAIN(), batsched.KWTPG(2), batsched.C2PL(),
	}
	fmt.Printf("Pattern1 workload at λ = %.1f TPS; declared demands perturbed by N(0,σ²)\n\n", lambda)
	fmt.Printf("%-8s", "sigma")
	for _, f := range schedulers {
		fmt.Printf(" %16s", f.Label+" tps")
	}
	fmt.Println()

	base := map[string]float64{}
	for _, sigma := range sigmas {
		fmt.Printf("%-8.2f", sigma)
		for _, f := range schedulers {
			cfg := batsched.SimConfig{
				Machine:              batsched.DefaultMachine(),
				Scheduler:            f,
				Workload:             batsched.WithDeclarationError(batsched.WorkloadExperiment1(16), sigma),
				ArrivalRate:          lambda,
				Horizon:              600_000,
				Seed:                 21,
				CheckSerializability: true,
			}
			res, err := batsched.Simulate(cfg)
			if err != nil {
				log.Fatalf("%s σ=%g: %v", f.Label, sigma, err)
			}
			if sigma == 0 {
				base[f.Label] = res.Throughput
			}
			pct := ""
			if b := base[f.Label]; b > 0 && sigma > 0 {
				pct = fmt.Sprintf(" (%+.0f%%)", 100*(res.Throughput/b-1))
			}
			fmt.Printf(" %9.3f%-7s", res.Throughput, pct)
		}
		fmt.Println()
	}

	fmt.Println(`
C2PL ignores declared demands entirely, so its column is flat: any drift
there is pure simulation noise. CHAIN and K2 schedule *by* the declared
weights, yet even σ = 1 — a standard deviation as large as the demand
itself — costs them only a modest slice of throughput, because wrong
weights still mostly preserve the *relative* order of long and short
work. That robustness (paper: -4.6% for CHAIN, -13.8% for K2 at σ = 1)
is what makes predeclared-demand scheduling practical.`)
}
