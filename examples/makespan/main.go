// Makespan planning: finish a fixed night batch as fast as possible.
//
// The paper's off-line service has a *deadline*: a known set of BATs must
// all finish before the on-line window reopens (§1). That is a makespan
// problem, not a steady-state throughput problem. This example takes a
// fixed batch of 40 Pattern1 BATs and compares release strategies (flood,
// stagger, demand-ordered) under each scheduler, reporting when the last
// transaction commits.
//
// Run with: go run ./examples/makespan
package main

import (
	"fmt"
	"log"

	"batsched"
)

func main() {
	batch := batsched.RandomBatch(batsched.WorkloadExperiment1(16), 40, 42)
	var total float64
	for _, t := range batch {
		total += t.TrueTotal()
	}
	mc := batsched.DefaultMachine()
	fmt.Printf("Batch: 40 Pattern1 BATs, %.0f objects total (~%.0f s of pure node work on %d nodes)\n\n",
		total, total*float64(mc.ObjTime)/1000/float64(mc.NumNodes), mc.NumNodes)

	evals, err := batsched.ComparePlans(batch, mc,
		[]batsched.SchedulerFactory{
			batsched.ASL(), batsched.CHAIN(), batsched.KWTPG(2), batsched.C2PL(),
		},
		[]batsched.PlanStrategy{
			batsched.Flood{},
			batsched.Stagger{Gap: 2000},
			batsched.ByDemand{LongestFirst: true, Gap: 2000},
			batsched.ByDemand{LongestFirst: false, Gap: 2000},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(batsched.RenderPlanTable(evals))
	best := evals[0]
	fmt.Printf("Best plan: %s under %s — makespan %v.\n",
		best.Strategy, best.Scheduler, best.Makespan)
	fmt.Println(`
Two lessons. First, for pure makespan, flooding wins under every
scheduler that controls admission (CHAIN, K2, ASL): the retries are
cheap compared to keeping all nodes busy, and CHAIN's globally optimized
serialization order finishes the batch first. C2PL is the exception —
flooding it builds exactly the chains of blocking the paper warns about,
and it finishes last by a wide margin. Second, staggering trades
makespan for response time: the release window stretches the finish line
but halves the mean RT, which matters when partial results are consumed
as they commit.`)
}
