package lock

import (
	"math/rand"
	"testing"

	"batsched/internal/txn"
)

func mk(id txn.ID, ss ...txn.Step) *txn.T { return txn.New(id, ss) }

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

func TestDeclareAndDueAttachment(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, r(0, 1), r(1, 3), w(0, 1)) // Figure 1's T1
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	decls := tb.PendingDecls(1)
	if len(decls) != 3 {
		t.Fatalf("got %d decls, want 3", len(decls))
	}
	wantDue := []float64{5, 4, 1}
	for i, d := range decls {
		if d.Step != i || d.Due != wantDue[i] {
			t.Errorf("decl %d = %+v, want step %d due %g", i, d, i, wantDue[i])
		}
	}
	if err := tb.Declare(t1); err == nil {
		t.Fatal("double Declare succeeded")
	}
}

func TestBlockedAndGrant(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, w(0, 1))
	t2 := mk(2, r(0, 1))
	t3 := mk(3, r(0, 1))
	for _, tx := range []*txn.T{t1, t2, t3} {
		if err := tb.Declare(tx); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.Blocked(2, 0, txn.Read); len(got) != 0 {
		t.Fatalf("read blocked with no holders: %v", got)
	}
	if err := tb.Grant(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Second reader is compatible.
	if got := tb.Blocked(3, 0, txn.Read); len(got) != 0 {
		t.Fatalf("read blocked by S holder: %v", got)
	}
	if err := tb.Grant(3, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Writer is blocked by both readers.
	if got := tb.Blocked(1, 0, txn.Write); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Blocked = %v, want [2 3]", got)
	}
	if err := tb.Grant(1, 0, 0); err == nil {
		t.Fatal("Grant of conflicting write succeeded")
	}
	tb.Release(2)
	tb.Release(3)
	if got := tb.Blocked(1, 0, txn.Write); len(got) != 0 {
		t.Fatalf("still blocked after release: %v", got)
	}
	if err := tb.Grant(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if m, ok := tb.HeldMode(1, 0); !ok || m != txn.Write {
		t.Errorf("HeldMode = %v,%v want Write,true", m, ok)
	}
}

func TestUpgrade(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, r(0, 1), w(0, 1))
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if m, _ := tb.HeldMode(1, 0); m != txn.Read {
		t.Fatalf("held %v after S grant", m)
	}
	// Own S hold does not block own X request.
	if got := tb.Blocked(1, 0, txn.Write); len(got) != 0 {
		t.Fatalf("self-blocked: %v", got)
	}
	if err := tb.Grant(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if m, _ := tb.HeldMode(1, 0); m != txn.Write {
		t.Fatalf("held %v after upgrade, want Write", m)
	}
	if len(tb.PendingDecls(1)) != 0 {
		t.Errorf("pending decls remain: %v", tb.PendingDecls(1))
	}
}

func TestConflictingDecls(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, r(0, 2), w(0, 1)) // dues 3,1
	t2 := mk(2, w(0, 4))          // due 4
	t3 := mk(3, r(0, 1))          // due 1
	for _, tx := range []*txn.T{t1, t2, t3} {
		if err := tb.Declare(tx); err != nil {
			t.Fatal(err)
		}
	}
	// C(q) for T3's read on partition 0: conflicts with T1's write decl and
	// T2's write decl, not with T1's read decl.
	c := tb.ConflictingDecls(3, 0, txn.Read)
	if len(c) != 2 {
		t.Fatalf("C(q) = %v, want 2 decls", c)
	}
	for _, d := range c {
		if d.Mode != txn.Write {
			t.Errorf("read-read counted as conflict: %v", d)
		}
	}
	// C(q) for T2's write: conflicts with everything of T1 and T3 (3 decls).
	if c := tb.ConflictingDecls(2, 0, txn.Write); len(c) != 3 {
		t.Fatalf("C(q) for write = %v, want 3 decls", c)
	}
	// Granting T3's read removes its declaration from others' C(q).
	if err := tb.Grant(3, 0, 0); err != nil {
		t.Fatal(err)
	}
	if c := tb.ConflictingDecls(2, 0, txn.Write); len(c) != 2 {
		t.Fatalf("C(q) after grant = %v, want 2 decls", c)
	}
}

func TestReleaseReturnsFreedPartitions(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, r(2, 1), w(5, 1), r(7, 1))
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 5, 1); err != nil {
		t.Fatal(err)
	}
	freed := tb.Release(1)
	if len(freed) != 2 || freed[0] != 2 || freed[1] != 5 {
		t.Fatalf("freed = %v, want [2 5]", freed)
	}
	if tb.Known(1) {
		t.Error("transaction still known after Release")
	}
	if len(tb.PendingDecls(1)) != 0 {
		t.Error("declarations survive Release")
	}
}

func TestDeclConflictDegree(t *testing.T) {
	tb := NewTable()
	// T1 writes A; T2 reads A and writes A; T3 reads A.
	t1 := mk(1, w(0, 1))
	t2 := mk(2, r(0, 1), w(0, 1))
	t3 := mk(3, r(0, 1))
	for _, tx := range []*txn.T{t1, t2, t3} {
		if err := tb.Declare(tx); err != nil {
			t.Fatal(err)
		}
	}
	// T1's w(A) conflicts with T2's r, T2's w, T3's r => 3.
	if d := tb.DeclConflictDegree(1); d[0] != 3 {
		t.Errorf("T1 degree = %v, want step0:3", d)
	}
	// T2's r(A) conflicts with T1's w => 1; T2's w(A) with T1's w and T3's r => 2.
	if d := tb.DeclConflictDegree(2); d[0] != 1 || d[1] != 2 {
		t.Errorf("T2 degrees = %v, want {0:1 1:2}", d)
	}
	// T3's r(A) conflicts with T1's w and T2's w => 2.
	if d := tb.DeclConflictDegree(3); d[0] != 2 {
		t.Errorf("T3 degree = %v, want step0:2", d)
	}
}

func TestWouldExceedK(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, w(0, 1))
	if tb.WouldExceedK(t1, 0) {
		t.Error("first transaction exceeds K=0 on empty table")
	}
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	t2 := mk(2, r(0, 1))
	if tb.WouldExceedK(t2, 1) {
		t.Error("one conflict exceeds K=1")
	}
	if !tb.WouldExceedK(t2, 0) {
		t.Error("one conflict does not exceed K=0")
	}
	if err := tb.Declare(t2); err != nil {
		t.Fatal(err)
	}
	// T3 reads A: its own decl conflicts only with T1's w (1), but T1's w
	// would then conflict with 2 declarations.
	t3 := mk(3, r(0, 1))
	if tb.WouldExceedK(t3, 1) == false {
		t.Error("existing declaration pushed past K=1 not detected")
	}
	if tb.WouldExceedK(t3, 2) {
		t.Error("K=2 should admit T3")
	}
}

func TestWouldExceedKCountsPerDeclaration(t *testing.T) {
	tb := NewTable()
	// Hub with three separate partitions: each declaration has degree 1
	// even though the hub conflicts with three transactions (the paper:
	// "Even K-WTPG of K=1 accepts a WTPG which is not a chain-form").
	hub := mk(1, w(0, 1), w(1, 1), w(2, 1))
	if err := tb.Declare(hub); err != nil {
		t.Fatal(err)
	}
	for i, p := range []txn.PartitionID{0, 1, 2} {
		leaf := mk(txn.ID(10+i), r(p, 1))
		if tb.WouldExceedK(leaf, 1) {
			t.Fatalf("leaf %d rejected at K=1", i)
		}
		if err := tb.Declare(leaf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckInvariants(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, r(0, 1))
	t2 := mk(2, r(0, 1))
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Declare(t2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Errorf("two readers flagged: %v", err)
	}
}

// Randomized workload: declarations, legal grants, releases — the table
// must never hold conflicting locks and Grant must refuse illegal grants.
func TestRandomizedNoConflictingHolders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		tb := NewTable()
		type pending struct {
			id   txn.ID
			step int
			part txn.PartitionID
			mode txn.Mode
		}
		var reqs []pending
		live := map[txn.ID]bool{}
		for id := txn.ID(1); id <= 20; id++ {
			n := 1 + rng.Intn(4)
			var ss []txn.Step
			for j := 0; j < n; j++ {
				m := txn.Mode(rng.Intn(2))
				ss = append(ss, txn.Step{Mode: m, Part: txn.PartitionID(rng.Intn(4)), Cost: 1})
			}
			tx := txn.New(id, ss)
			if err := tb.Declare(tx); err != nil {
				t.Fatal(err)
			}
			live[id] = true
			for j, s := range ss {
				reqs = append(reqs, pending{id, j, s.Part, s.Mode})
			}
		}
		for step := 0; step < 400 && len(reqs) > 0; step++ {
			i := rng.Intn(len(reqs))
			q := reqs[i]
			if !live[q.id] {
				reqs = append(reqs[:i], reqs[i+1:]...)
				continue
			}
			if len(tb.Blocked(q.id, q.part, q.mode)) == 0 {
				if err := tb.Grant(q.id, q.part, q.step); err != nil {
					t.Fatalf("legal grant failed: %v", err)
				}
				reqs = append(reqs[:i], reqs[i+1:]...)
			} else if err := tb.Grant(q.id, q.part, q.step); err == nil {
				t.Fatal("blocked grant succeeded")
			}
			if err := tb.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(10) == 0 {
				for id := range live {
					tb.Release(id)
					delete(live, id)
					break
				}
			}
		}
	}
}

func TestDeclString(t *testing.T) {
	d := Decl{Txn: 3, Step: 1, Mode: txn.Write, Due: 2.5}
	if got := d.String(); got != "T3/step1:w(due=2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestGrantErrorPaths(t *testing.T) {
	tb := NewTable()
	if err := tb.Grant(1, 0, 0); err == nil {
		t.Error("grant on unknown partition succeeded")
	}
	t1 := mk(1, r(0, 1))
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 0, 5); err == nil {
		t.Error("grant of unknown step succeeded")
	}
	if err := tb.Grant(2, 0, 0); err == nil {
		t.Error("grant by undeclared transaction succeeded")
	}
}

func TestHoldersAndHeldMode(t *testing.T) {
	tb := NewTable()
	if got := tb.Holders(0); got != nil {
		t.Errorf("Holders on empty table = %v", got)
	}
	if _, ok := tb.HeldMode(1, 0); ok {
		t.Error("HeldMode found phantom lock")
	}
	t1 := mk(1, r(0, 1))
	t2 := mk(2, r(0, 1))
	for _, tx := range []*txn.T{t1, t2} {
		if err := tb.Declare(tx); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Grant(2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Grant(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	got := tb.Holders(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Holders = %v, want [1 2] sorted", got)
	}
}

func TestIsBlockedMatchesBlocked(t *testing.T) {
	tb := NewTable()
	t1 := mk(1, w(0, 1))
	t2 := mk(2, w(0, 1))
	if err := tb.Declare(t1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Declare(t2); err != nil {
		t.Fatal(err)
	}
	if tb.IsBlocked(2, 0, txn.Write) != (len(tb.Blocked(2, 0, txn.Write)) > 0) {
		t.Error("IsBlocked disagrees with Blocked before grant")
	}
	if err := tb.Grant(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !tb.IsBlocked(2, 0, txn.Write) {
		t.Error("IsBlocked missed the holder")
	}
	if tb.IsBlocked(1, 0, txn.Write) {
		t.Error("holder blocked by itself")
	}
	if tb.IsBlocked(2, 9, txn.Write) {
		t.Error("blocked on untouched partition")
	}
}

func TestEachConflictingDeclMatchesSlice(t *testing.T) {
	tb := NewTable()
	for id := txn.ID(1); id <= 5; id++ {
		m := txn.Read
		if id%2 == 0 {
			m = txn.Write
		}
		tx := txn.New(id, []txn.Step{{Mode: m, Part: 0, Cost: float64(id)}})
		if err := tb.Declare(tx); err != nil {
			t.Fatal(err)
		}
	}
	want := tb.ConflictingDecls(1, 0, txn.Write)
	var got []Decl
	tb.EachConflictingDecl(1, 0, txn.Write, func(d Decl) { got = append(got, d) })
	if len(got) != len(want) {
		t.Fatalf("EachConflictingDecl %v != ConflictingDecls %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %v != %v", i, got[i], want[i])
		}
	}
	tb.EachConflictingDecl(1, 42, txn.Write, func(Decl) { t.Fatal("decl on empty partition") })
}
