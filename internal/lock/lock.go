// Package lock implements the centralized partition-granule lock table of
// the paper's control node (§2.2).
//
// Locking granules are partitions. A read step needs a shared (S) lock, a
// write step an exclusive (X) lock; X conflicts with both S and X. Every
// transaction registers *lock-declarations* for all of its steps at start;
// a declaration carries the step's due(s) value ("due(sj) is attached to
// the lock-declaration of sj in the lock table"). When the transaction
// reaches a step, the declaration is replaced by a lock-request and, once
// granted, by a held lock. All locks are held until commitment (strict
// locking for recovery) and released together at commit.
//
// The table is pure bookkeeping: granting policy (blocking, cautious
// tests, WTPG optimization) lives in the schedulers.
package lock

import (
	"fmt"
	"sort"

	"batsched/internal/txn"
)

// Decl is a pending lock-declaration: transaction id, the step it belongs
// to, the access mode, and the declared due(s) value of the step.
type Decl struct {
	Txn  txn.ID
	Step int
	Mode txn.Mode
	Due  float64
}

// String renders the declaration for diagnostics.
func (d Decl) String() string {
	return fmt.Sprintf("%v/step%d:%v(due=%g)", d.Txn, d.Step, d.Mode, d.Due)
}

type entry struct {
	holders map[txn.ID]txn.Mode // strongest granted mode per transaction
	decls   []Decl              // pending declarations in registration order
}

// Table is the control node's lock table. The zero value is not usable;
// use NewTable.
type Table struct {
	parts map[txn.PartitionID]*entry
	// touched tracks which partitions each live transaction has holds or
	// declarations on, so Release is O(own partitions).
	touched map[txn.ID]map[txn.PartitionID]bool
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{
		parts:   make(map[txn.PartitionID]*entry),
		touched: make(map[txn.ID]map[txn.PartitionID]bool),
	}
}

func (tb *Table) entry(p txn.PartitionID) *entry {
	e := tb.parts[p]
	if e == nil {
		e = &entry{holders: make(map[txn.ID]txn.Mode)}
		tb.parts[p] = e
	}
	return e
}

func (tb *Table) touch(id txn.ID, p txn.PartitionID) {
	m := tb.touched[id]
	if m == nil {
		m = make(map[txn.PartitionID]bool)
		tb.touched[id] = m
	}
	m[p] = true
}

// Declare registers lock-declarations for every step of t, using t's
// declared I/O demands for the due values. It returns an error if t is
// already known to the table.
func (tb *Table) Declare(t *txn.T) error {
	if _, ok := tb.touched[t.ID]; ok {
		return fmt.Errorf("lock: %v already declared", t.ID)
	}
	for i, s := range t.Steps {
		e := tb.entry(s.Part)
		e.decls = append(e.decls, Decl{Txn: t.ID, Step: i, Mode: s.Mode, Due: t.Due(i)})
		tb.touch(t.ID, s.Part)
	}
	if _, ok := tb.touched[t.ID]; !ok {
		// Zero-step transaction: still record it so Release/Known work.
		tb.touched[t.ID] = make(map[txn.PartitionID]bool)
	}
	return nil
}

// Known reports whether id currently has declarations or holds.
func (tb *Table) Known(id txn.ID) bool {
	_, ok := tb.touched[id]
	return ok
}

// Blocked returns the transactions (other than id) holding locks on p that
// conflict with mode. An empty result means the request is not blocked.
func (tb *Table) Blocked(id txn.ID, p txn.PartitionID, mode txn.Mode) []txn.ID {
	e := tb.parts[p]
	if e == nil {
		return nil
	}
	var out []txn.ID
	for h, m := range e.holders {
		if h != id && mode.Conflicts(m) {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsBlocked reports whether a request by id on p in the given mode
// conflicts with any held lock of another transaction. Unlike Blocked it
// allocates nothing.
func (tb *Table) IsBlocked(id txn.ID, p txn.PartitionID, mode txn.Mode) bool {
	e := tb.parts[p]
	if e == nil {
		return false
	}
	for h, m := range e.holders {
		if h != id && mode.Conflicts(m) {
			return true
		}
	}
	return false
}

// EachConflictingDecl visits the pending declarations of other
// transactions on p that conflict with mode, in registration order,
// without allocating.
func (tb *Table) EachConflictingDecl(id txn.ID, p txn.PartitionID, mode txn.Mode, fn func(Decl)) {
	e := tb.parts[p]
	if e == nil {
		return
	}
	for _, d := range e.decls {
		if d.Txn != id && mode.Conflicts(d.Mode) {
			fn(d)
		}
	}
}

// ConflictingDecls returns the pending declarations of other transactions
// on p that conflict with mode — the paper's C(q) for a request q of
// transaction id in the given mode. Results are in registration order.
func (tb *Table) ConflictingDecls(id txn.ID, p txn.PartitionID, mode txn.Mode) []Decl {
	e := tb.parts[p]
	if e == nil {
		return nil
	}
	var out []Decl
	for _, d := range e.decls {
		if d.Txn != id && mode.Conflicts(d.Mode) {
			out = append(out, d)
		}
	}
	return out
}

// Grant converts the declaration of (id, step) on p into a held lock,
// upgrading the holder's mode if the transaction already holds a weaker
// lock on p. It returns an error if the declaration does not exist or the
// grant would conflict with another holder (the caller must check Blocked
// first).
func (tb *Table) Grant(id txn.ID, p txn.PartitionID, step int) error {
	e := tb.parts[p]
	if e == nil {
		return fmt.Errorf("lock: grant %v on unknown partition %v", id, p)
	}
	idx := -1
	var mode txn.Mode
	for i, d := range e.decls {
		if d.Txn == id && d.Step == step {
			idx = i
			mode = d.Mode
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("lock: no declaration for %v step %d on %v", id, step, p)
	}
	if blocked := tb.Blocked(id, p, mode); len(blocked) > 0 {
		return fmt.Errorf("lock: grant %v %v on %v conflicts with holders %v", id, mode, p, blocked)
	}
	e.decls = append(e.decls[:idx], e.decls[idx+1:]...)
	if held, ok := e.holders[id]; !ok || mode == txn.Write && held == txn.Read {
		e.holders[id] = mode
	}
	return nil
}

// HeldMode returns the mode id holds on p, if any.
func (tb *Table) HeldMode(id txn.ID, p txn.PartitionID) (txn.Mode, bool) {
	e := tb.parts[p]
	if e == nil {
		return 0, false
	}
	m, ok := e.holders[id]
	return m, ok
}

// Release drops all holds and remaining declarations of id (commit, or
// abort before start). It returns the partitions on which id held locks,
// sorted — the partitions whose waiters may now be grantable.
func (tb *Table) Release(id txn.ID) []txn.PartitionID {
	var freed []txn.PartitionID
	for p := range tb.touched[id] {
		e := tb.parts[p]
		if e == nil {
			continue
		}
		if _, held := e.holders[id]; held {
			delete(e.holders, id)
			freed = append(freed, p)
		}
		kept := e.decls[:0]
		for _, d := range e.decls {
			if d.Txn != id {
				kept = append(kept, d)
			}
		}
		e.decls = kept
		if len(e.holders) == 0 && len(e.decls) == 0 {
			delete(tb.parts, p)
		}
	}
	delete(tb.touched, id)
	sort.Slice(freed, func(i, j int) bool { return freed[i] < freed[j] })
	return freed
}

// DeclConflictDegree returns, for each pending declaration of t (by step
// index), how many pending declarations of other transactions it conflicts
// with. Used for the K-conflict admission test of the K-WTPG scheduler.
func (tb *Table) DeclConflictDegree(id txn.ID) map[int]int {
	out := make(map[int]int)
	for p := range tb.touched[id] {
		e := tb.parts[p]
		if e == nil {
			continue
		}
		for _, d := range e.decls {
			if d.Txn != id {
				continue
			}
			n := 0
			for _, o := range e.decls {
				if o.Txn != id && d.Mode.Conflicts(o.Mode) {
					n++
				}
			}
			out[d.Step] += n
		}
	}
	return out
}

// WouldExceedK reports whether registering t's declarations would cause
// any pending declaration (t's own or an existing transaction's) to
// conflict with more than k declarations. It must be called before
// Declare(t).
func (tb *Table) WouldExceedK(t *txn.T, k int) bool {
	// Conflicts gained by each existing declaration, keyed per declaration
	// identity (txn, step).
	type key struct {
		id   txn.ID
		step int
	}
	gained := make(map[key]int)
	for _, s := range t.Steps {
		e := tb.parts[s.Part]
		if e == nil {
			continue
		}
		mine := 0
		for _, o := range e.decls {
			if o.Txn == t.ID {
				continue
			}
			if s.Mode.Conflicts(o.Mode) {
				mine++
				gained[key{o.Txn, o.Step}]++
			}
		}
		if mine > k {
			return true
		}
	}
	if len(gained) == 0 {
		return false
	}
	existing := make(map[txn.ID]map[int]int)
	for kk := range gained {
		if _, ok := existing[kk.id]; !ok {
			existing[kk.id] = tb.DeclConflictDegree(kk.id)
		}
	}
	for kk, g := range gained {
		if existing[kk.id][kk.step]+g > k {
			return true
		}
	}
	return false
}

// PendingDecls returns the pending declarations of id in step order.
func (tb *Table) PendingDecls(id txn.ID) []Decl {
	var out []Decl
	for p := range tb.touched[id] {
		e := tb.parts[p]
		if e == nil {
			continue
		}
		for _, d := range e.decls {
			if d.Txn == id {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// Holders returns the transactions holding locks on p, sorted by id.
func (tb *Table) Holders(p txn.PartitionID) []txn.ID {
	e := tb.parts[p]
	if e == nil {
		return nil
	}
	out := make([]txn.ID, 0, len(e.holders))
	for id := range e.holders {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariants verifies that no two conflicting locks are held
// simultaneously on any partition. It returns the first violation found.
// Intended for tests and the simulator's self-checking mode.
func (tb *Table) CheckInvariants() error {
	for p, e := range tb.parts {
		writers := 0
		for _, m := range e.holders {
			if m == txn.Write {
				writers++
			}
		}
		if writers > 1 || (writers == 1 && len(e.holders) > 1) {
			return fmt.Errorf("lock: conflicting holders on %v: %v", p, e.holders)
		}
	}
	return nil
}
