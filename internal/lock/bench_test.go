package lock

import (
	"testing"

	"batsched/internal/txn"
)

// benchTable registers n transactions of Pattern1 shape over 16
// partitions.
func benchTable(n int) *Table {
	tb := NewTable()
	for i := 0; i < n; i++ {
		f1 := txn.PartitionID(i % 16)
		f2 := txn.PartitionID((i + 7) % 16)
		t := txn.New(txn.ID(i+1), []txn.Step{
			{Mode: txn.Read, Part: f1, Cost: 1},
			{Mode: txn.Read, Part: f2, Cost: 5},
			{Mode: txn.Write, Part: f1, Cost: 0.2},
			{Mode: txn.Write, Part: f2, Cost: 1},
		})
		if err := tb.Declare(t); err != nil {
			panic(err)
		}
	}
	return tb
}

func BenchmarkEachConflictingDecl500(b *testing.B) {
	tb := benchTable(500)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		tb.EachConflictingDecl(1, 0, txn.Write, func(Decl) { n++ })
	}
	_ = n
}

func BenchmarkIsBlocked500(b *testing.B) {
	tb := benchTable(500)
	_ = tb.Grant(1, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.IsBlocked(2, 0, txn.Write)
	}
}

func BenchmarkDeclareRelease(b *testing.B) {
	tb := benchTable(200)
	t := txn.New(9999, []txn.Step{
		{Mode: txn.Read, Part: 0, Cost: 1},
		{Mode: txn.Write, Part: 5, Cost: 1},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.Declare(t); err != nil {
			b.Fatal(err)
		}
		tb.Release(t.ID)
	}
}

func BenchmarkWouldExceedK500(b *testing.B) {
	tb := benchTable(500)
	t := txn.New(9999, []txn.Step{
		{Mode: txn.Read, Part: 3, Cost: 1},
		{Mode: txn.Write, Part: 11, Cost: 1},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.WouldExceedK(t, 2)
	}
}
