// Package event provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer clocks; the paper's simulation uses
// 1 clock = 1 ms, and the rest of this repository follows that convention.
// Events scheduled for the same clock fire in scheduling order, which makes
// every simulation run a pure function of its inputs and seed.
package event

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in clocks (milliseconds in this repo).
type Time int64

// String formats the time as milliseconds.
func (t Time) String() string { return fmt.Sprintf("%dms", int64(t)) }

// Seconds converts the timestamp to seconds.
func (t Time) Seconds() float64 { return float64(t) / 1000.0 }

// Handler is a callback invoked when an event fires.
type Handler func(now Time)

// Handle identifies a scheduled event so it can be cancelled.
// The zero Handle is invalid.
type Handle struct {
	seq uint64
}

type item struct {
	at        Time
	seq       uint64 // global scheduling order; breaks ties deterministically
	fn        Handler
	cancelled bool
	index     int // heap index, -1 when popped
}

type itemHeap []*item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Queue is a discrete-event calendar. The zero value is ready to use.
// Queue is not safe for concurrent use; a simulation is single-threaded.
type Queue struct {
	heap    itemHeap
	now     Time
	nextSeq uint64
	byID    map[uint64]*item
	fired   uint64
	// free recycles popped items so steady-state scheduling allocates
	// nothing: a 2,000,000-clock run schedules millions of events, and
	// before the free-list every one heap-allocated an *item.
	free []*item
}

// alloc returns a recycled item or a fresh one.
func (q *Queue) alloc() *item {
	if n := len(q.free); n > 0 {
		it := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return it
	}
	return &item{}
}

// recycle returns a popped item to the free-list. Safe against stale
// Handles: a Handle resolves through byID, keyed by the seq the item
// carried when it was scheduled; that key is deleted before the item is
// recycled, and reuse stamps a fresh seq (the generation check — see
// TestCancelHandleSurvivesReuse). The handler reference is dropped so
// the free-list never pins closures.
func (q *Queue) recycle(it *item) {
	it.fn = nil
	it.cancelled = false
	it.index = -1
	q.free = append(q.free, it)
}

// NewQueue returns an empty event queue at time 0.
func NewQueue() *Queue {
	return &Queue{byID: make(map[uint64]*item)}
}

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending (non-cancelled) events.
func (q *Queue) Len() int {
	n := 0
	for _, it := range q.heap {
		if !it.cancelled {
			n++
		}
	}
	return n
}

// Fired returns the number of events that have fired so far.
func (q *Queue) Fired() uint64 { return q.fired }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would violate causality.
func (q *Queue) At(at Time, fn Handler) Handle {
	if fn == nil {
		panic("event: nil handler")
	}
	if at < q.now {
		panic(fmt.Sprintf("event: schedule at %v before now %v", at, q.now))
	}
	if q.byID == nil {
		q.byID = make(map[uint64]*item)
	}
	q.nextSeq++
	it := q.alloc()
	it.at, it.seq, it.fn = at, q.nextSeq, fn
	heap.Push(&q.heap, it)
	q.byID[it.seq] = it
	return Handle{seq: it.seq}
}

// After schedules fn to run delay clocks from now.
func (q *Queue) After(delay Time, fn Handler) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("event: negative delay %v", delay))
	}
	return q.At(q.now+delay, fn)
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending (false if it already fired or was cancelled before).
func (q *Queue) Cancel(h Handle) bool {
	it, ok := q.byID[h.seq]
	if !ok || it.cancelled {
		return false
	}
	it.cancelled = true
	delete(q.byID, h.seq)
	return true
}

// Step fires the next event. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	for len(q.heap) > 0 {
		it := heap.Pop(&q.heap).(*item)
		if it.cancelled {
			q.recycle(it)
			continue
		}
		delete(q.byID, it.seq)
		// Copy what the dispatch needs and recycle before calling the
		// handler: the handler may schedule new events, which are then
		// free to reuse this item.
		fn := it.fn
		q.now = it.at
		q.fired++
		q.recycle(it)
		fn(q.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the queue is empty or the next
// event would fire strictly after horizon. The clock is left at the time
// of the last fired event (or horizon if nothing remained to fire at or
// before it and advance is true).
func (q *Queue) RunUntil(horizon Time) {
	for {
		it := q.peek()
		if it == nil || it.at > horizon {
			if q.now < horizon {
				q.now = horizon
			}
			return
		}
		q.Step()
	}
}

// Run fires every event until the queue drains.
func (q *Queue) Run() {
	for q.Step() {
	}
}

func (q *Queue) peek() *item {
	for len(q.heap) > 0 {
		it := q.heap[0]
		if it.cancelled {
			heap.Pop(&q.heap)
			q.recycle(it)
			continue
		}
		return it
	}
	return nil
}
