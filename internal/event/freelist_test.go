package event

import "testing"

// TestCancelHandleSurvivesReuse is the generation-check regression
// test: a Handle whose event already fired or was cancelled must stay
// dead even after its backing item is recycled for a new event. The
// generation is the seq a Handle carries — byID is keyed by it, the key
// is deleted before the item is recycled, and reuse stamps a fresh seq,
// so a stale Handle can never reach the recycled item's new event.
func TestCancelHandleSurvivesReuse(t *testing.T) {
	q := NewQueue()
	var fired []string
	h1 := q.After(1, func(Time) { fired = append(fired, "a") })
	if !q.Cancel(h1) {
		t.Fatal("first cancel failed")
	}
	if q.Step() {
		t.Fatal("fired a cancelled event")
	}
	if len(q.free) == 0 {
		t.Fatal("cancelled item was not recycled")
	}
	recycled := q.free[len(q.free)-1]

	// The next schedule must reuse the recycled item.
	h2 := q.After(1, func(Time) { fired = append(fired, "b") })
	if len(q.heap) != 1 || q.heap[0] != recycled {
		t.Fatal("free-list item not reused")
	}
	if h2 == h1 {
		t.Fatal("recycled item kept its old seq — generations collide")
	}
	// The stale handle must not cancel the recycled item's new event.
	if q.Cancel(h1) {
		t.Error("stale handle cancelled a recycled event")
	}
	if q.Cancel(Handle{}) {
		t.Error("zero handle cancelled something")
	}
	if !q.Step() || len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("recycled event did not fire correctly: %v", fired)
	}
	// After firing, its handle is dead too — even though the item is
	// back on the free-list.
	if q.Cancel(h2) {
		t.Error("cancelled an already-fired event")
	}
}

// TestReuseAfterFire: items recycled by a normal fire are reused and
// the handler reference is dropped (no closure pinning).
func TestReuseAfterFire(t *testing.T) {
	q := NewQueue()
	n := 0
	for i := 0; i < 100; i++ {
		q.After(1, func(Time) { n++ })
		if !q.Step() {
			t.Fatal("step failed")
		}
	}
	if n != 100 {
		t.Fatalf("fired %d, want 100", n)
	}
	if len(q.free) != 1 {
		t.Errorf("free-list holds %d items, want 1 (steady-state reuse)", len(q.free))
	}
	if q.free[0].fn != nil {
		t.Error("recycled item still pins its handler")
	}
}

// TestReuseInsideHandler: an item recycled at dispatch may be reused by
// events the running handler schedules — the dispatch must have copied
// everything it needs first.
func TestReuseInsideHandler(t *testing.T) {
	q := NewQueue()
	var order []string
	q.After(1, func(now Time) {
		order = append(order, "outer")
		q.After(1, func(Time) { order = append(order, "inner") })
	})
	q.Run()
	if len(order) != 2 || order[0] != "outer" || order[1] != "inner" {
		t.Fatalf("order = %v", order)
	}
}

// BenchmarkQueueChurn measures steady-state schedule/cancel/fire churn:
// each iteration schedules two events, cancels one and fires the other,
// so the queue stays near-empty and every allocation is per-event
// overhead. The free-list keeps this at zero allocs/op (BENCH_PR5.json
// pins the before/after numbers).
func BenchmarkQueueChurn(b *testing.B) {
	q := NewQueue()
	nop := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(1, nop)
		h := q.After(2, nop)
		q.Cancel(h)
		q.Step()
	}
}
