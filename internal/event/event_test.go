package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	var got []int
	q.At(30, func(Time) { got = append(got, 3) })
	q.At(10, func(Time) { got = append(got, 1) })
	q.At(20, func(Time) { got = append(got, 2) })
	q.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Errorf("Now() = %v, want 30", q.Now())
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	q := NewQueue()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(5, func(Time) { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order at %d: %v", i, v)
		}
	}
}

func TestQueueAfter(t *testing.T) {
	q := NewQueue()
	var at Time
	q.At(100, func(now Time) {
		q.After(50, func(now2 Time) { at = now2 })
	})
	q.Run()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	fired := false
	h := q.At(10, func(Time) { fired = true })
	if !q.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if q.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	q.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
}

func TestQueueCancelAfterFire(t *testing.T) {
	q := NewQueue()
	h := q.At(10, func(Time) {})
	q.Run()
	if q.Cancel(h) {
		t.Fatal("Cancel returned true after event fired")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	q := NewQueue()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		q.At(at, func(now Time) { fired = append(fired, now) })
	}
	q.RunUntil(12)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired %v, want [5 10]", fired)
	}
	if q.Now() != 12 {
		t.Errorf("Now = %v, want horizon 12", q.Now())
	}
	q.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("after second RunUntil fired %v", fired)
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	q := NewQueue()
	q.RunUntil(42)
	if q.Now() != 42 {
		t.Errorf("Now = %v, want 42", q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewQueue()
	q.At(10, func(Time) {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(5, func(Time) {})
}

func TestNilHandlerPanics(t *testing.T) {
	q := NewQueue()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	q.At(5, nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	q := NewQueue()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	q.After(-1, func(Time) {})
}

func TestFiredCounter(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 7; i++ {
		q.At(Time(i), func(Time) {})
	}
	q.Run()
	if q.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", q.Fired())
	}
}

// Property: for any set of timestamps, events fire in nondecreasing time
// order and equal times fire in insertion order.
func TestQuickOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		type rec struct {
			at  Time
			ord int
		}
		var fired []rec
		for i, raw := range times {
			at := Time(raw % 500)
			i := i
			q.At(at, func(now Time) { fired = append(fired, rec{now, i}) })
		}
		q.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].ord < fired[b].ord
		}) {
			return false
		}
		// And the slice as fired must already be in that exact order.
		for i := 1; i < len(fired); i++ {
			if fired[i-1].at > fired[i].at {
				return false
			}
			if fired[i-1].at == fired[i].at && fired[i-1].ord > fired[i].ord {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset prevents exactly that subset.
func TestQuickCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		q := NewQueue()
		n := 50
		fired := make([]bool, n)
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = q.At(Time(rng.Intn(100)), func(Time) { fired[i] = true })
		}
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				cancelled[i] = true
				if !q.Cancel(handles[i]) {
					t.Fatal("Cancel failed for pending event")
				}
			}
		}
		q.Run()
		for i := 0; i < n; i++ {
			if fired[i] == cancelled[i] {
				t.Fatalf("event %d: fired=%v cancelled=%v", i, fired[i], cancelled[i])
			}
		}
	}
}

func BenchmarkQueueScheduleFire(b *testing.B) {
	q := NewQueue()
	fn := func(Time) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.At(q.Now()+Time(i%64), fn)
		if i%8 == 7 {
			for j := 0; j < 8; j++ {
				q.Step()
			}
		}
	}
}
