package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Title: "demo", XLabel: "x", YLabel: "y", Width: 20, Height: 5}
	out, err := c.Render([]Series{
		{Label: "up", Marker: 'u', X: []float64{0, 1, 2}, Y: []float64{0, 5, 10}},
		{Label: "down", Marker: 'd', X: []float64{0, 1, 2}, Y: []float64{10, 5, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "u=up", "d=down", "x: x   y: y", "10", "0", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// title + 5 grid rows + axis + xlabels + labels line + legend.
	if len(lines) < 9 {
		t.Errorf("too few lines: %d\n%s", len(lines), out)
	}
}

func TestRenderMarkerPlacement(t *testing.T) {
	c := Chart{Width: 11, Height: 3}
	out, err := c.Render([]Series{{Label: "s", Marker: '#', X: []float64{0, 10}, Y: []float64{0, 10}}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// Top row must contain the high point at the right edge, bottom row
	// the low point at the left edge.
	if !strings.HasSuffix(strings.TrimRight(lines[0], " "), "#") {
		t.Errorf("top row %q lacks right-edge marker", lines[0])
	}
	bottom := lines[2]
	idx := strings.Index(bottom, "|")
	if idx < 0 || idx+1 >= len(bottom) || bottom[idx+1] != '#' {
		t.Errorf("bottom row %q lacks left-edge marker", bottom)
	}
}

func TestRenderErrors(t *testing.T) {
	c := Chart{}
	if _, err := c.Render([]Series{{Label: "bad", X: []float64{1}, Y: []float64{1, 2}}}); err == nil {
		t.Error("mismatched series accepted")
	}
	if _, err := c.Render(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := c.Render([]Series{{Label: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}); err == nil {
		t.Error("all-NaN input accepted")
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	c := Chart{Width: 10, Height: 3}
	out, err := c.Render([]Series{{
		Label: "s",
		X:     []float64{0, 1, 2},
		Y:     []float64{1, math.Inf(1), 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	plotted := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			plotted += strings.Count(line, "*")
		}
	}
	if plotted != 2 {
		t.Errorf("want 2 plotted points, got %d:\n%s", plotted, out)
	}
}

func TestYMaxClamp(t *testing.T) {
	c := Chart{Width: 10, Height: 4, YMax: 100}
	out, err := c.Render([]Series{{
		Label: "s",
		X:     []float64{0, 1},
		Y:     []float64{10, 1e9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "100") {
		t.Errorf("clamped axis label missing:\n%s", out)
	}
	if strings.Contains(out, "1e+09") {
		t.Errorf("unclamped label present:\n%s", out)
	}
}

func TestDefaultMarker(t *testing.T) {
	c := Chart{Width: 5, Height: 3}
	out, err := c.Render([]Series{{Label: "s", X: []float64{0}, Y: []float64{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Errorf("default marker missing:\n%s", out)
	}
}
