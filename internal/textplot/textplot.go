// Package textplot renders small multi-series line charts as plain text,
// used by cmd/batbench to draw the paper's figures in a terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve. X and Y must have equal lengths. Marker
// is the character plotted at each data point.
type Series struct {
	Label  string
	Marker byte
	X, Y   []float64
}

// Chart is a fixed-size character-grid chart. Zero values get sensible
// defaults (60×20 plot area).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (excluding axes)
	Height int // plot rows (excluding axes)
	// YMax optionally clamps the y axis (values above are drawn at the
	// top edge); zero means autoscale. Useful for response-time curves
	// that explode past saturation.
	YMax float64
}

// Render draws the series onto the grid and returns the chart text.
func (c Chart) Render(series []Series) (string, error) {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 20
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("textplot: series %q has %d x vs %d y", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if first {
		return "", fmt.Errorf("textplot: no finite data")
	}
	if c.YMax > 0 && ymax > c.YMax {
		ymax = c.YMax
	}
	if ymin > 0 {
		ymin = 0 // charts in the paper are zero-based
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		f := (x - xmin) / (xmax - xmin)
		i := int(math.Round(f * float64(w-1)))
		return clamp(i, 0, w-1)
	}
	row := func(y float64) int {
		f := (y - ymin) / (ymax - ymin)
		i := int(math.Round(f * float64(h-1)))
		return clamp(h-1-i, 0, h-1)
	}
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			grid[row(y)][col(x)] = m
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.3g", ymax)
	yBot := fmt.Sprintf("%.3g", ymin)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", pad)
		if i == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		}
		if i == h-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", w))
	xl := fmt.Sprintf("%.3g", xmin)
	xr := fmt.Sprintf("%.3g", xmax)
	gap := w - len(xl) - len(xr)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xl, strings.Repeat(" ", gap), xr)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), c.XLabel, c.YLabel)
	}
	var legend []string
	for _, s := range series {
		m := s.Marker
		if m == 0 {
			m = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", m, s.Label))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", pad), strings.Join(legend, "  "))
	return b.String(), nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
