package estimate

import (
	"math/rand"
	"testing"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
)

// benchGraph builds a mid-size WTPG: nHolders transactions with resolved
// out-edges to nWaiters pending transactions, plus a band of unresolved
// conflicts among the waiters.
func benchGraph(nHolders, nWaiters int) (*wtpg.Graph, txn.ID) {
	g := wtpg.New()
	rng := rand.New(rand.NewSource(2))
	id := txn.ID(1)
	var holders, waiters []txn.ID
	for i := 0; i < nHolders; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		holders = append(holders, id)
		id++
	}
	for i := 0; i < nWaiters; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		waiters = append(waiters, id)
		id++
	}
	for _, h := range holders {
		for _, w := range waiters {
			_ = g.AddConflict(h, w, float64(rng.Intn(10)), float64(rng.Intn(10)))
			_ = g.Resolve(h, w)
		}
	}
	for i := 0; i+1 < len(waiters); i += 2 {
		_ = g.AddConflict(waiters[i], waiters[i+1], float64(rng.Intn(10)), float64(rng.Intn(10)))
	}
	return g, waiters[0]
}

func BenchmarkESmall(b *testing.B) {
	g, q := benchGraph(4, 12)
	targets := []txn.ID{q + 1, q + 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		E(g, q, targets)
	}
}

func BenchmarkELarge(b *testing.B) {
	g, q := benchGraph(16, 300)
	targets := []txn.ID{q + 1, q + 3, q + 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		E(g, q, targets)
	}
}

// BenchmarkEstimateE is the headline E(q) benchmark: a mid-size graph,
// one request with implied targets, evaluated over the live graph's
// overlay. Steady state must allocate nothing.
func BenchmarkEstimateE(b *testing.B) {
	g, q := benchGraph(8, 64)
	targets := []txn.ID{q + 1, q + 2, q + 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		E(g, q, targets)
	}
}
