package estimate

import (
	"math"
	"testing"
	"testing/quick"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
)

// refE is the original clone-based E(q) (§3.3), run against the map-based
// reference engine. The overlay-based production E must agree with it
// exactly, including every ∞ case.
func refE(g *wtpg.Ref, t txn.ID, targets []txn.ID) float64 {
	if g.WouldCycleFrom(t, targets) {
		return Infinite()
	}
	h := g.Clone()
	for _, to := range targets {
		if _, ok := h.EdgeBetween(t, to); !ok {
			if err := h.AddConflict(t, to, 0, 0); err != nil {
				return Infinite()
			}
		}
		if err := h.Resolve(t, to); err != nil {
			return Infinite()
		}
	}
	before := h.Before(t)
	after := h.After(t)
	for _, e := range h.Edges() {
		if e.Dir != wtpg.Unresolved {
			continue
		}
		switch {
		case before[e.A] && after[e.B]:
			if err := h.Resolve(e.A, e.B); err != nil {
				return Infinite()
			}
		case before[e.B] && after[e.A]:
			if err := h.Resolve(e.B, e.A); err != nil {
				return Infinite()
			}
		}
	}
	cp, err := h.CriticalPath()
	if err != nil {
		return Infinite()
	}
	return cp
}

// buildPairGraphs decodes a byte string into the same WTPG twice: once in
// the slot engine and once in the reference engine.
func buildPairGraphs(data []byte) (*wtpg.Graph, *wtpg.Ref) {
	g := wtpg.New()
	r := wtpg.NewRef()
	n := 2 + len(data)%9
	for id := txn.ID(1); id <= txn.ID(n); id++ {
		w0 := float64(id % 7)
		_ = g.AddNode(id, w0)
		_ = r.AddNode(id, w0)
	}
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b + byte(k)
	}
	for a := txn.ID(1); a <= txn.ID(n); a++ {
		for b := a + 1; b <= txn.ID(n); b++ {
			v := next()
			if v%3 != 0 {
				continue
			}
			_ = g.AddConflict(a, b, float64(v%11), float64(v%13))
			_ = r.AddConflict(a, b, float64(v%11), float64(v%13))
			if v%2 == 0 {
				from, to := a, b
				if v%4 == 0 {
					from, to = b, a
				}
				if !r.WouldCycle([]wtpg.Resolution{{From: from, To: to}}) {
					_ = g.Resolve(from, to)
					_ = r.Resolve(from, to)
				}
			}
		}
	}
	return g, r
}

// Property: the overlay E(q) equals the clone-based reference E(q) on the
// same graph and leaves the live graph untouched.
func TestQuickEDifferential(t *testing.T) {
	f := func(data []byte, srcRaw uint8, mask uint16) bool {
		g, r := buildPairGraphs(data)
		nodes := r.Nodes()
		src := nodes[int(srcRaw)%len(nodes)]
		var targets []txn.ID
		for i, id := range nodes {
			if id != src && mask&(1<<uint(i%16)) != 0 {
				targets = append(targets, id)
			}
		}
		cpBefore, errBefore := g.CriticalPath()
		got := E(g, src, targets)
		want := refE(r, src, targets)
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Logf("E(%d,%v): engine=%g ref=%g", src, targets, got, want)
			return false
		}
		// The overlay must roll back: the live graph is unchanged.
		cpAfter, errAfter := g.CriticalPath()
		if (errBefore == nil) != (errAfter == nil) || (errBefore == nil && cpBefore != cpAfter) {
			t.Logf("E mutated the graph: cp %g -> %g", cpBefore, cpAfter)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
