// Package estimate implements the paper's E(q) function (§3.3): the
// estimated degree of data/resource contention of the present schedule if
// a lock-request q were granted now.
//
// Given the WTPG and the resolutions granting q would imply, E(q) is
// computed as:
//
//	Step 1: hypothetically grant q; if that creates a precedence cycle
//	        (a predicted deadlock) E(q) = ∞. Otherwise identify
//	        before(T) and after(T) of q's transaction T.
//	Step 2: resolve every conflicting-edge (Ti,Tj) with Ti ∈ before(T)
//	        and Tj ∈ after(T) into Ti→Tj.
//	Step 3: delete the remaining conflicting-edges; E(q) is the length of
//	        the critical path from T0 to Tf.
//
// The computation is O(max(n, e)) — one cycle test, two graph traversals
// and one topological longest-path pass — and, crucially for §3.4's
// argument that the decision cost must stay small, allocation-free in the
// steady state: the hypothetical resolutions are applied to a scratch
// overlay owned by the live graph (wtpg.Overlay) and rolled back, never
// to a copy.
package estimate

import (
	"math"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
)

// Infinite is the E(q) value of a request whose grant would deadlock.
func Infinite() float64 { return math.Inf(1) }

// E evaluates E(q) for a lock-request of transaction t whose grant would
// resolve t→target for every target. The graph g is not modified (the
// overlay it lends out is rolled back before returning).
func E(g *wtpg.Graph, t txn.ID, targets []txn.ID) float64 {
	if g.WouldCycleFrom(t, targets) {
		return Infinite()
	}
	o := g.BeginOverlay()
	defer o.End()
	// Step 1: the hypothetical grant's own resolutions.
	for _, to := range targets {
		if err := o.Resolve(t, to); err != nil {
			return Infinite()
		}
	}
	// Step 2: orient straddling conflicting-edges forward.
	o.ResolveStraddling(t)
	// Step 3: remaining conflicting-edges are ignored by the overlay
	// critical path.
	cp, err := o.CriticalPath()
	if err != nil {
		return Infinite()
	}
	return cp
}
