// Package estimate implements the paper's E(q) function (§3.3): the
// estimated degree of data/resource contention of the present schedule if
// a lock-request q were granted now.
//
// Given the WTPG and the resolutions granting q would imply, E(q) is
// computed as:
//
//	Step 1: hypothetically grant q; if that creates a precedence cycle
//	        (a predicted deadlock) E(q) = ∞. Otherwise identify
//	        before(T) and after(T) of q's transaction T.
//	Step 2: resolve every conflicting-edge (Ti,Tj) with Ti ∈ before(T)
//	        and Tj ∈ after(T) into Ti→Tj.
//	Step 3: delete the remaining conflicting-edges; E(q) is the length of
//	        the critical path from T0 to Tf.
//
// The computation is O(max(n, e)) — one cycle test, two graph traversals
// and one topological longest-path pass.
package estimate

import (
	"math"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
)

// Infinite is the E(q) value of a request whose grant would deadlock.
func Infinite() float64 { return math.Inf(1) }

// E evaluates E(q) for a lock-request of transaction t whose grant would
// resolve t→target for every target. The graph g is not modified.
func E(g *wtpg.Graph, t txn.ID, targets []txn.ID) float64 {
	if g.WouldCycleFrom(t, targets) {
		return Infinite()
	}
	h := g.Clone()
	for _, to := range targets {
		if _, ok := h.EdgeBetween(t, to); !ok {
			// A grant can imply an ordering against a transaction it has
			// no conflicting-edge with only if the caller passed junk;
			// tolerate it by adding a zero-weight conflict so the order
			// still constrains the path structure.
			if err := h.AddConflict(t, to, 0, 0); err != nil {
				return Infinite()
			}
		}
		if err := h.Resolve(t, to); err != nil {
			return Infinite()
		}
	}
	before := h.Before(t)
	after := h.After(t)
	// Step 2: orient straddling conflicting-edges forward.
	for _, e := range h.Edges() {
		if e.Dir != wtpg.Unresolved {
			continue
		}
		switch {
		case before[e.A] && after[e.B]:
			if err := h.Resolve(e.A, e.B); err != nil {
				return Infinite()
			}
		case before[e.B] && after[e.A]:
			if err := h.Resolve(e.B, e.A); err != nil {
				return Infinite()
			}
		}
	}
	// Step 3: remaining conflicting-edges are ignored by CriticalPath.
	cp, err := h.CriticalPath()
	if err != nil {
		return Infinite()
	}
	return cp
}
