package estimate

import (
	"math"
	"math/rand"
	"testing"

	"batsched/internal/core/wtpg"
	"batsched/internal/txn"
)

// figure4 builds a WTPG matching the paper's Figure 4 worked example
// (Examples 3.4 and 3.5). Transactions T4, T5, T6 with w(T0→Ti) = 0;
// (T4,T5) already resolved T4→T5; (T5,T6) and (T4,T6) conflicting. The
// weights are chosen to reproduce the paper's E values exactly:
// E(q of T5) = 10 via the resolved path T4→T6, E(q' of T6) = 1.
func figure4(t *testing.T) *wtpg.Graph {
	t.Helper()
	g := wtpg.New()
	for _, id := range []txn.ID{4, 5, 6} {
		if err := g.AddNode(id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddConflict(4, 5, 1, 7); err != nil { // w(T4→T5)=1
		t.Fatal(err)
	}
	if err := g.AddConflict(5, 6, 4, 1); err != nil { // w(T5→T6)=4, w(T6→T5)=1
		t.Fatal(err)
	}
	if err := g.AddConflict(4, 6, 10, 2); err != nil { // w(T4→T6)=10
		t.Fatal(err)
	}
	if err := g.Resolve(4, 5); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExample34(t *testing.T) {
	g := figure4(t)
	// q of T5 conflicts with T6: granting implies T5→T6.
	got := E(g, 5, []txn.ID{6})
	if got != 10 {
		t.Errorf("E(q) = %g, want 10", got)
	}
	// The original graph must be untouched.
	if _, _, resolved := g.Resolved(5, 6); resolved {
		t.Error("E mutated the input graph")
	}
}

func TestExample35(t *testing.T) {
	g := figure4(t)
	// q' of T6 conflicts with q of T5: granting implies T6→T5. before(T6)
	// is empty, so (T4,T6) is simply deleted; critical path is 1.
	got := E(g, 6, []txn.ID{5})
	if got != 1 {
		t.Errorf("E(q') = %g, want 1", got)
	}
	// CC2 grants the request with the smaller E: q' wins (Example 3.5).
	if eq := E(g, 5, []txn.ID{6}); !(got < eq) {
		t.Errorf("E(q')=%g should beat E(q)=%g", got, eq)
	}
}

func TestDeadlockIsInfinite(t *testing.T) {
	g := figure4(t)
	// T5→T4 contradicts the resolved T4→T5: predicted deadlock.
	if got := E(g, 5, []txn.ID{4}); !math.IsInf(got, 1) {
		t.Errorf("E on deadlock = %g, want +Inf", got)
	}
}

func TestNoImpliedResolutions(t *testing.T) {
	g := figure4(t)
	// A request with no conflicts: E is just the current critical path
	// with unresolved edges deleted: only T4→T5 (weight 1) remains.
	if got := E(g, 5, nil); got != 1 {
		t.Errorf("E with no implied resolutions = %g, want 1", got)
	}
}

func TestW0Participates(t *testing.T) {
	g := figure4(t)
	g.SetW0(6, 20)
	// T6's own remaining demand dominates every precedence path:
	// max(w0(T6)=20, T4→T6=10, T4→T5→T6=5) = 20.
	if got := E(g, 5, []txn.ID{6}); got != 20 {
		t.Errorf("E with w0(T6)=20 = %g, want 20", got)
	}
}

// Property: E never mutates the graph, is >= the current resolved-only
// critical path (adding resolutions cannot shorten the longest path), and
// equals +Inf exactly when WouldCycle holds.
func TestQuickEProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		g := wtpg.New()
		n := 3 + rng.Intn(6)
		for id := txn.ID(1); id <= txn.ID(n); id++ {
			if err := g.AddNode(id, float64(rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		for a := txn.ID(1); a <= txn.ID(n); a++ {
			for b := a + 1; b <= txn.ID(n); b++ {
				if rng.Intn(3) == 0 {
					if err := g.AddConflict(a, b, float64(rng.Intn(8)), float64(rng.Intn(8))); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		// Resolve a random acyclic subset.
		for _, e := range g.Edges() {
			if rng.Intn(2) == 0 {
				from, to := e.A, e.B
				if rng.Intn(2) == 0 {
					from, to = to, from
				}
				if !g.WouldCycle([]wtpg.Resolution{{From: from, To: to}}) {
					if err := g.Resolve(from, to); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		tid := txn.ID(1 + rng.Intn(n))
		var implied []txn.ID
		for _, e := range g.Edges() {
			if e.Dir != wtpg.Unresolved {
				continue
			}
			if e.A == tid && rng.Intn(2) == 0 {
				implied = append(implied, e.B)
			} else if e.B == tid && rng.Intn(2) == 0 {
				implied = append(implied, e.A)
			}
		}
		base, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		edgesBefore := len(g.Edges())
		got := E(g, tid, implied)
		if len(g.Edges()) != edgesBefore {
			t.Fatal("E mutated the graph")
		}
		if g.WouldCycleFrom(tid, implied) {
			if !math.IsInf(got, 1) {
				t.Fatalf("cycle but E = %g", got)
			}
			continue
		}
		if got < base-1e-9 {
			t.Fatalf("E = %g below resolved-only critical path %g", got, base)
		}
	}
}

// TestJunkTargetTolerated: a target with no conflicting-edge to t gets a
// synthetic zero-weight ordering rather than corrupting the estimate.
func TestJunkTargetTolerated(t *testing.T) {
	g := wtpg.New()
	if err := g.AddNode(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(2, 5); err != nil {
		t.Fatal(err)
	}
	// No edge between 1 and 2; ordering 1→2 adds only the structural
	// constraint, so E = max(w0) = 5.
	if got := E(g, 1, []txn.ID{2}); got != 5 {
		t.Errorf("E with junk target = %g, want 5", got)
	}
}

// TestSelfTargetIsDeadlock: ordering t before itself is nonsense and must
// come back infinite rather than panicking.
func TestSelfTargetIsDeadlock(t *testing.T) {
	g := wtpg.New()
	if err := g.AddNode(1, 3); err != nil {
		t.Fatal(err)
	}
	if got := E(g, 1, []txn.ID{1}); !math.IsInf(got, 1) {
		t.Errorf("E(self target) = %g, want +Inf", got)
	}
}
