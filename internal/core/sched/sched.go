// Package sched implements the concurrency-control schedulers evaluated
// in the paper: the two WTPG schedulers (CHAIN, §3.2; K-WTPG, §3.3), the
// baselines ASL (Atomic Static Lock), C2PL (Cautious Two-Phase Lock) and
// NODC (NO Data Contention), and Experiment 4's lower-bound hybrids
// CHAIN-C2PL and K-C2PL.
//
// A scheduler is a decision oracle driven by the simulated control node:
// the simulator calls Admit when a transaction arrives (or is resubmitted
// after an admission rejection), Request when a transaction reaches a
// step, ObjectDone as bulk processing progresses (the WTPG weight
// messages of §3.1), and Commit at commitment. Every decision reports the
// control-node CPU it consumed, following Table 1's ddtime / chaintime /
// kwtpgtime parameters and §3.4's control-saving rules.
//
// No scheduler in this package ever *decides* to abort a running
// transaction: bulk operations are too expensive to redo, so all of them
// are deadlock-free by construction (atomic acquisition, cautious cycle
// tests, or W consistency). External failures are another matter — a
// caller may abandon an admitted transaction, a fault may be injected,
// or the live controller's watchdog may force one out. For those the
// schedulers expose an abort-recovery path (see Aborter and AbortTxn):
// locks are released, unresolved conflicting-edges retracted, resolved
// precedence spliced past the dead transaction (wtpg.Splice), and cached
// plans/estimates invalidated; CHAIN additionally degrades to a safe
// fallback mode if its chain-form invariant is ever broken
// (docs/ROBUSTNESS.md).
package sched

import (
	"fmt"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// Decision is the outcome class of an Admit or Request call.
type Decision int

const (
	// Granted: the lock was granted (Request) or the transaction was
	// admitted (Admit).
	Granted Decision = iota
	// Blocked: the request conflicts with a held lock. The simulator
	// resubmits it when a lock on that partition is released.
	Blocked
	// Delayed: the scheduler's policy refuses the request for now (W
	// inconsistency, predicted deadlock, non-minimal E(q), failed atomic
	// acquisition). Resubmitted after the fixed retry delay (§3.2).
	Delayed
	// Aborted: admission rejected (chain-form or K-conflict violation).
	// The whole transaction is resubmitted after the fixed retry delay; no
	// work is lost because nothing has executed yet.
	Aborted
)

func (d Decision) String() string {
	switch d {
	case Granted:
		return "granted"
	case Blocked:
		return "blocked"
	case Delayed:
		return "delayed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Outcome is a decision plus the control-node CPU time it consumed.
type Outcome struct {
	Decision Decision
	CPU      event.Time
}

// Costs models the control-node CPU demands of Table 1 plus §3.4's
// control-saving period.
type Costs struct {
	// DDTime: one deadlock-prediction / graph-consistency test.
	DDTime event.Time
	// ChainTime: one recomputation of the optimal full SR-order W.
	ChainTime event.Time
	// KWTPGTime: one evaluation of E(q).
	KWTPGTime event.Time
	// KeepTime: period during which cached W / E values stay valid if no
	// invalidating event occurs (§3.4).
	KeepTime event.Time
}

// Scheduler is the control-node concurrency-control policy.
type Scheduler interface {
	// Name returns the paper's name for the scheduler (e.g. "CHAIN").
	Name() string
	// Admit registers an arriving transaction. Granted admits it;
	// Delayed/Aborted reject it (retry later) leaving no state behind.
	Admit(t *txn.T, now event.Time) Outcome
	// Request asks for the lock needed by step of t. Valid only for
	// admitted transactions.
	Request(t *txn.T, step int, now event.Time) Outcome
	// ObjectDone reports that t finished bulk processing of `objects`
	// objects (usually 1, possibly fractional at the tail of a step).
	ObjectDone(t *txn.T, objects float64, now event.Time)
	// Commit releases t's locks and removes it from control state,
	// returning the partitions whose waiters may now be grantable.
	Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time)
}

// Factory builds a fresh scheduler instance for one simulation run.
type Factory struct {
	// Label is the display name used in result tables ("K2", "CHAIN"...).
	Label string
	New   func(costs Costs) Scheduler
}

// Standard factories for the paper's evaluated schedulers. K is the
// K-conflict bound; the paper evaluates K = 2 ("K2").
func NODCFactory() Factory {
	return Factory{Label: "NODC", New: func(Costs) Scheduler { return NewNODC() }}
}

// ASLFactory builds Atomic Static Lock schedulers.
func ASLFactory() Factory {
	return Factory{Label: "ASL", New: func(c Costs) Scheduler { return NewASL(c) }}
}

// C2PLFactory builds Cautious Two-Phase Lock schedulers.
func C2PLFactory() Factory {
	return Factory{Label: "C2PL", New: func(c Costs) Scheduler { return NewC2PL(c) }}
}

// ChainFactory builds Chain-WTPG schedulers.
func ChainFactory() Factory {
	return Factory{Label: "CHAIN", New: func(c Costs) Scheduler { return NewChain(c) }}
}

// KWTPGFactory builds K-conflict WTPG schedulers.
func KWTPGFactory(k int) Factory {
	return Factory{
		Label: fmt.Sprintf("K%d", k),
		New:   func(c Costs) Scheduler { return NewKWTPG(c, k) },
	}
}

// ChainC2PLFactory builds the CHAIN-C2PL lower-bound hybrid.
func ChainC2PLFactory() Factory {
	return Factory{Label: "CHAIN-C2PL", New: func(c Costs) Scheduler { return NewChainC2PL(c) }}
}

// KC2PLFactory builds the K-C2PL lower-bound hybrid.
func KC2PLFactory(k int) Factory {
	return Factory{
		Label: fmt.Sprintf("K%d-C2PL", k),
		New:   func(c Costs) Scheduler { return NewKC2PL(c, k) },
	}
}

// ByName resolves a scheduler factory from the default registry: NODC,
// ASL, C2PL, CHAIN, CHAIN-C2PL, EPOCH, K<k> (e.g. K2), and K<k>-C2PL.
// Matching is case-insensitive.
//
// Deprecated: use Lookup (or a custom Registry). Retained as a thin
// wrapper so existing callers keep compiling.
func ByName(name string) (Factory, error) { return Lookup(name) }
