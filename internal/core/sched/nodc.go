package sched

import (
	"batsched/internal/event"
	"batsched/internal/txn"
)

// nodc is the NODC ("NO Data Contention") scheduler: it grants any lock
// at any time, ignoring conflicts entirely. The paper uses it to expose
// the resource-contention-only upper bound of throughput; its schedules
// are not serializable by design.
type nodc struct{}

// NewNODC returns the NODC upper-bound scheduler.
func NewNODC() Scheduler { return nodc{} }

func (nodc) Name() string { return "NODC" }

func (nodc) Admit(*txn.T, event.Time) Outcome { return Outcome{Decision: Granted} }

func (nodc) Request(*txn.T, int, event.Time) Outcome { return Outcome{Decision: Granted} }

func (nodc) ObjectDone(*txn.T, float64, event.Time) {}

func (nodc) Commit(*txn.T, event.Time) ([]txn.PartitionID, event.Time) { return nil, 0 }
