package sched

import (
	"batsched/internal/event"
	"batsched/internal/lock"
	"batsched/internal/txn"
)

// asl is Atomic Static Lock (Tay's ASL, [9]): a transaction starts if and
// only if it can hold every lock it needs at its start; otherwise the
// start is refused and retried later. ASL transactions never block
// mid-flight and the WTPG stays a set of isolated points, which avoids
// every chain of blocking at the price of admitting few transactions.
type asl struct {
	costs Costs
	locks *lock.Table
}

// NewASL returns an Atomic Static Lock scheduler.
func NewASL(costs Costs) Scheduler {
	return &asl{costs: costs, locks: lock.NewTable()}
}

func (a *asl) Name() string { return "ASL" }

func (a *asl) Admit(t *txn.T, now event.Time) Outcome {
	// All-or-nothing: every partition must be acquirable in the
	// transaction's strongest declared mode.
	for _, p := range t.Partitions() {
		mode, _ := t.LockMode(p)
		if len(a.locks.Blocked(t.ID, p, mode)) > 0 {
			return Outcome{Decision: Delayed, CPU: a.costs.DDTime}
		}
	}
	if err := a.locks.Declare(t); err != nil {
		return Outcome{Decision: Delayed, CPU: a.costs.DDTime}
	}
	for i := range t.Steps {
		if err := a.locks.Grant(t.ID, t.Steps[i].Part, i); err != nil {
			// Cannot happen: acquirability was just checked and the
			// control node is single-threaded. Roll back defensively.
			a.locks.Release(t.ID)
			return Outcome{Decision: Delayed, CPU: a.costs.DDTime}
		}
	}
	return Outcome{Decision: Granted, CPU: a.costs.DDTime}
}

func (a *asl) Request(t *txn.T, step int, now event.Time) Outcome {
	// Locks were acquired atomically at start.
	return Outcome{Decision: Granted}
}

func (a *asl) ObjectDone(*txn.T, float64, event.Time) {}

func (a *asl) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	return a.locks.Release(t.ID), 0
}

// Abort releases everything the transaction acquired atomically at
// start; ASL keeps no graph state to repair.
func (a *asl) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	return a.locks.Release(t.ID), 0
}

// CheckInvariants verifies the lock table holds no conflicting locks.
func (a *asl) CheckInvariants() error { return a.locks.CheckInvariants() }

// LockHolders returns the transactions holding a granted lock on p (see
// wtpgBase.LockHolders).
func (a *asl) LockHolders(p txn.PartitionID) []txn.ID { return a.locks.Holders(p) }
