package sched

import (
	"math"
	"strconv"

	"batsched/internal/core/estimate"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// kwtpg is the K-conflict WTPG scheduler CC2 (§3.3, "K-WTPG"; the paper
// evaluates K=2 as "K2"). It grants a lock-request q only when q's
// estimated contention E(q) is the smallest among the conflicting
// declarations C(q); requests that would deadlock are delayed. The
// K-conflict admission constraint — each lock-declaration may conflict
// with at most K others — bounds |C(q)| and thus the decision cost.
//
// Per §3.4, E values are cached and recomputed only when a transaction
// starts or commits, a new precedence-edge is generated, or KeepTime has
// elapsed since the last computation. The cache is invalidated by
// bumping a generation counter — entries stamped with an older
// generation simply miss — rather than by reallocating the map, so the
// steady state reuses both the map's storage and its entries' slots.
// Entries for a transaction are deleted when it leaves (commit/abort),
// which bounds the map at the live-transaction working set.
type kwtpg struct {
	wtpgBase
	k          int
	cache      map[reqKey]cachedE
	cacheGen   uint64
	cacheAt    event.Time
	cacheDirty bool
}

type reqKey struct {
	id   txn.ID
	step int
}

// cachedE is a generation-stamped E(q) value: valid only while its gen
// matches the scheduler's current cache generation.
type cachedE struct {
	val float64
	gen uint64
}

// NewKWTPG returns a K-conflict WTPG scheduler with bound k.
func NewKWTPG(costs Costs, k int) Scheduler {
	return &kwtpg{wtpgBase: newWTPGBase(costs), k: k, cache: make(map[reqKey]cachedE)}
}

func (s *kwtpg) Name() string {
	return "K" + strconv.Itoa(s.k)
}

func (s *kwtpg) Admit(t *txn.T, now event.Time) Outcome {
	// K-conflict admission test (§3.3): abort the start when any
	// declaration would conflict with more than K declarations.
	if s.locks.WouldExceedK(t, s.k) {
		return Outcome{Decision: Aborted, CPU: s.costs.DDTime}
	}
	if err := s.register(t); err != nil {
		return Outcome{Decision: Delayed, CPU: s.costs.DDTime}
	}
	s.cacheDirty = true
	return Outcome{Decision: Granted, CPU: s.costs.DDTime}
}

// maybeInvalidate applies §3.4's cache-invalidation conditions.
func (s *kwtpg) maybeInvalidate(now event.Time) {
	if s.cacheDirty || now-s.cacheAt >= s.costs.KeepTime {
		s.cacheGen++
		s.cacheAt = now
		s.cacheDirty = false
	}
}

// estimateE returns E for the hypothetical grant of (t, step), using the
// cache. The second result reports whether a fresh computation ran.
func (s *kwtpg) estimateE(t *txn.T, step int) (float64, bool) {
	key := reqKey{t.ID, step}
	if c, ok := s.cache[key]; ok && c.gen == s.cacheGen {
		return c.val, false
	}
	v := estimate.E(s.graph, t.ID, s.impliedTargets(t, step))
	s.cache[key] = cachedE{val: v, gen: s.cacheGen}
	return v, true
}

// dropCached removes t's cache entries so departed transactions do not
// accumulate in the map.
func (s *kwtpg) dropCached(t *txn.T) {
	for step := range t.Steps {
		delete(s.cache, reqKey{t.ID, step})
	}
}

func (s *kwtpg) Request(t *txn.T, step int, now event.Time) Outcome {
	cpu := s.costs.DDTime
	// Step 1 of CC2.
	if s.blocked(t, step) {
		return Outcome{Decision: Blocked, CPU: cpu}
	}
	s.maybeInvalidate(now)
	// Step 2 of CC2: E(q); a predicted deadlock delays q.
	eq, fresh := s.estimateE(t, step)
	if fresh {
		cpu += s.costs.KWTPGTime
	}
	if math.IsInf(eq, 1) {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	// Step 3 of CC2: grant only if E(q) is minimal over C(q).
	st := t.Steps[step]
	for _, d := range s.locks.ConflictingDecls(t.ID, st.Part, st.Mode) {
		other, ok := s.live[d.Txn]
		if !ok {
			continue
		}
		ep, fresh := s.estimateE(other, d.Step)
		if fresh {
			cpu += s.costs.KWTPGTime
		}
		if eq > ep {
			return Outcome{Decision: Delayed, CPU: cpu}
		}
	}
	targets := s.impliedTargets(t, step)
	if err := s.grant(t, step, targets); err != nil {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	if len(targets) > 0 {
		// New precedence-edges invalidate cached estimates (§3.4 rule 3).
		s.cacheDirty = true
	}
	return Outcome{Decision: Granted, CPU: cpu}
}

func (s *kwtpg) ObjectDone(t *txn.T, objects float64, now event.Time) {
	s.objectDone(t, objects)
}

func (s *kwtpg) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := s.commit(t)
	s.dropCached(t)
	s.cacheDirty = true
	return freed, 0
}

// Abort recovers from an external abort: base splice plus invalidating
// every cached E value (the graph changed exactly like on a commit, and
// splice resolutions add precedence-edges — §3.4 rule 3).
func (s *kwtpg) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := s.abort(t)
	s.dropCached(t)
	s.cacheDirty = true
	return freed, s.costs.DDTime
}
