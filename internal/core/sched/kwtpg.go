package sched

import (
	"math"

	"batsched/internal/core/estimate"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// kwtpg is the K-conflict WTPG scheduler CC2 (§3.3, "K-WTPG"; the paper
// evaluates K=2 as "K2"). It grants a lock-request q only when q's
// estimated contention E(q) is the smallest among the conflicting
// declarations C(q); requests that would deadlock are delayed. The
// K-conflict admission constraint — each lock-declaration may conflict
// with at most K others — bounds |C(q)| and thus the decision cost.
//
// Per §3.4, E values are cached and recomputed only when a transaction
// starts or commits, a new precedence-edge is generated, or KeepTime has
// elapsed since the last computation.
type kwtpg struct {
	wtpgBase
	k          int
	cache      map[reqKey]float64
	cacheAt    event.Time
	cacheDirty bool
}

type reqKey struct {
	id   txn.ID
	step int
}

// NewKWTPG returns a K-conflict WTPG scheduler with bound k.
func NewKWTPG(costs Costs, k int) Scheduler {
	return &kwtpg{wtpgBase: newWTPGBase(costs), k: k, cache: make(map[reqKey]float64)}
}

func (s *kwtpg) Name() string {
	return "K" + itoa(s.k)
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	neg := k < 0
	if neg {
		k = -k
	}
	var buf [20]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = byte('0' + k%10)
		k /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func (s *kwtpg) Admit(t *txn.T, now event.Time) Outcome {
	// K-conflict admission test (§3.3): abort the start when any
	// declaration would conflict with more than K declarations.
	if s.locks.WouldExceedK(t, s.k) {
		return Outcome{Decision: Aborted, CPU: s.costs.DDTime}
	}
	if err := s.register(t); err != nil {
		return Outcome{Decision: Delayed, CPU: s.costs.DDTime}
	}
	s.cacheDirty = true
	return Outcome{Decision: Granted, CPU: s.costs.DDTime}
}

// maybeInvalidate applies §3.4's cache-invalidation conditions.
func (s *kwtpg) maybeInvalidate(now event.Time) {
	if s.cacheDirty || now-s.cacheAt >= s.costs.KeepTime {
		s.cache = make(map[reqKey]float64)
		s.cacheAt = now
		s.cacheDirty = false
	}
}

// estimateE returns E for the hypothetical grant of (t, step), using the
// cache. The second result reports whether a fresh computation ran.
func (s *kwtpg) estimateE(t *txn.T, step int) (float64, bool) {
	key := reqKey{t.ID, step}
	if v, ok := s.cache[key]; ok {
		return v, false
	}
	v := estimate.E(s.graph, t.ID, s.impliedTargets(t, step))
	s.cache[key] = v
	return v, true
}

func (s *kwtpg) Request(t *txn.T, step int, now event.Time) Outcome {
	cpu := s.costs.DDTime
	// Step 1 of CC2.
	if s.blocked(t, step) {
		return Outcome{Decision: Blocked, CPU: cpu}
	}
	s.maybeInvalidate(now)
	// Step 2 of CC2: E(q); a predicted deadlock delays q.
	eq, fresh := s.estimateE(t, step)
	if fresh {
		cpu += s.costs.KWTPGTime
	}
	if math.IsInf(eq, 1) {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	// Step 3 of CC2: grant only if E(q) is minimal over C(q).
	st := t.Steps[step]
	for _, d := range s.locks.ConflictingDecls(t.ID, st.Part, st.Mode) {
		other, ok := s.live[d.Txn]
		if !ok {
			continue
		}
		ep, fresh := s.estimateE(other, d.Step)
		if fresh {
			cpu += s.costs.KWTPGTime
		}
		if eq > ep {
			return Outcome{Decision: Delayed, CPU: cpu}
		}
	}
	targets := s.impliedTargets(t, step)
	if err := s.grant(t, step, targets); err != nil {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	if len(targets) > 0 {
		// New precedence-edges invalidate cached estimates (§3.4 rule 3).
		s.cacheDirty = true
	}
	return Outcome{Decision: Granted, CPU: cpu}
}

func (s *kwtpg) ObjectDone(t *txn.T, objects float64, now event.Time) {
	s.objectDone(t, objects)
}

func (s *kwtpg) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := s.commit(t)
	s.cacheDirty = true
	return freed, 0
}

// Abort recovers from an external abort: base splice plus invalidating
// every cached E value (the graph changed exactly like on a commit, and
// splice resolutions add precedence-edges — §3.4 rule 3).
func (s *kwtpg) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := s.abort(t)
	s.cacheDirty = true
	return freed, s.costs.DDTime
}
