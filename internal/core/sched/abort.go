package sched

import (
	"batsched/internal/event"
	"batsched/internal/txn"
)

// Aborter is implemented by schedulers with a dedicated abort-recovery
// path for an admitted, possibly mid-flight transaction: release its
// locks, retract its unresolved conflicting-edges, splice resolved
// precedence past it, and repair any scheduler-specific cached state
// (CHAIN's plan, K-WTPG's E cache). Like Commit, Abort returns the
// partitions whose waiters may now be grantable plus the control-CPU
// cost of the recovery.
//
// Schedulers never *decide* to abort running work themselves (the
// package's deadlock-freedom promise stands); Abort exists for external
// failures — a caller abandoning a live transaction, an injected fault,
// or the live controller's stall watchdog.
type Aborter interface {
	Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time)
}

// AbortTxn aborts t on s: schedulers implementing Aborter run their
// recovery path; for the rest (NODC, plain lock-droppers) Commit doubles
// as the release path, which is exactly what their abort must do.
func AbortTxn(s Scheduler, t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	if a, ok := s.(Aborter); ok {
		return a.Abort(t, now)
	}
	return s.Commit(t, now)
}

// abort is wtpgBase's recovery path: release locks and declarations,
// splice the WTPG past the dead transaction (see wtpg.Splice), and drop
// it from the live registry. Schedulers layer their cache invalidation
// on top.
func (b *wtpgBase) abort(t *txn.T) []txn.PartitionID {
	freed := b.locks.Release(t.ID)
	b.graph.Splice(t.ID)
	delete(b.live, t.ID)
	return freed
}

// Degradable is implemented by schedulers that can fall back to a
// degraded-but-safe mode when their structural invariant breaks (CHAIN's
// chain form). The observability wrapper polls it to emit degrade /
// restore events on transitions.
type Degradable interface {
	Degraded() bool
}
