package sched

import (
	"testing"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// fuzzTxnPool builds the fixed transaction pool used by the
// interleaving fuzzer: six transactions over four partitions with
// overlapping access sets, so conflicting-edges, precedence chains and
// blocking all occur.
func fuzzTxnPool() []*txn.T {
	mk := func(id txn.ID, steps ...txn.Step) *txn.T { return txn.New(id, steps) }
	return []*txn.T{
		mk(1, wstep(0, 2), wstep(1, 2)),
		mk(2, wstep(1, 2), wstep(2, 2)),
		mk(3, wstep(2, 2), wstep(3, 2)),
		mk(4, wstep(3, 2), wstep(0, 2)),
		mk(5, wstep(0, 1), wstep(2, 1)),
		mk(6, wstep(1, 1), wstep(3, 1)),
	}
}

// fuzzState tracks one transaction's lifecycle against the scheduler
// under test.
type fuzzState struct {
	admitted bool
	step     int // next step to request
	granted  int // steps already granted
}

// FuzzAbortCommitInterleavings drives arbitrary interleavings of
// admit / request / commit / abort over a fixed transaction pool and
// asserts that after every operation the scheduler's lock-table
// invariants hold and the WTPG stays acyclic (CriticalPath computes).
// Aborted transactions may be re-admitted — their second life must be
// indistinguishable from a fresh arrival.
func FuzzAbortCommitInterleavings(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 16, 17, 18, 19, 20, 21, 32, 33})
	f.Add([]byte{0, 16, 48, 0, 16, 32, 1, 17, 17, 33})
	f.Add([]byte{5, 4, 3, 2, 1, 0, 53, 52, 51, 50, 49, 48})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		factories := []Factory{C2PLFactory(), ChainFactory(), KWTPGFactory(2)}
		for _, fac := range factories {
			s := fac.New(Costs{DDTime: 1, ChainTime: 2, KWTPGTime: 2, KeepTime: 50})
			pool := fuzzTxnPool()
			states := make([]fuzzState, len(pool))
			now := event.Time(0)
			check := func(opName string) {
				t.Helper()
				if err := s.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
					t.Fatalf("%s: after %s: invariants: %v", fac.Label, opName, err)
				}
				if gh, ok := s.(GraphHolder); ok {
					if _, err := gh.Graph().CriticalPath(); err != nil {
						t.Fatalf("%s: after %s: critical path: %v", fac.Label, opName, err)
					}
				}
			}
			for _, b := range ops {
				now++
				idx := int(b) % len(pool)
				tx, st := pool[idx], &states[idx]
				switch (int(b) / len(pool)) % 4 {
				case 0: // admit
					if st.admitted {
						continue
					}
					if out := s.Admit(tx, now); out.Decision == Granted {
						*st = fuzzState{admitted: true}
					}
					check("admit")
				case 1: // request next step
					if !st.admitted || st.step >= len(tx.Steps) {
						continue
					}
					out := s.Request(tx, st.step, now)
					if out.Decision == Granted {
						s.ObjectDone(tx, tx.Steps[st.step].Cost, now)
						st.step++
						st.granted++
					}
					check("request")
				case 2: // commit once every step is granted
					if !st.admitted || st.granted < len(tx.Steps) {
						continue
					}
					s.Commit(tx, now)
					*st = fuzzState{}
					check("commit")
				case 3: // abort at any point after admission
					if !st.admitted {
						continue
					}
					AbortTxn(s, tx, now)
					*st = fuzzState{}
					check("abort")
				}
			}
			// Drain: abort every survivor; the graph and lock table must
			// come back empty.
			for i := range states {
				if states[i].admitted {
					now++
					AbortTxn(s, pool[i], now)
					check("drain-abort")
				}
			}
			if gh, ok := s.(GraphHolder); ok {
				if n := gh.Graph().Len(); n != 0 {
					t.Fatalf("%s: %d nodes left in WTPG after drain", fac.Label, n)
				}
			}
		}
	})
}
