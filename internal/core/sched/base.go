package sched

import (
	"fmt"

	"batsched/internal/core/wtpg"
	"batsched/internal/lock"
	"batsched/internal/txn"
)

// wtpgBase is the machinery shared by every declaration-aware scheduler
// (C2PL, CHAIN, K-WTPG and the hybrids): the lock table, the WTPG and the
// live-transaction registry, with the paper's registration and resolution
// rules.
type wtpgBase struct {
	costs Costs
	locks *lock.Table
	graph *wtpg.Graph
	live  map[txn.ID]*txn.T

	// Scratch buffers for the request hot path (the control node is
	// single-threaded, so plain reuse is safe).
	targetBuf []txn.ID
	seenBuf   map[txn.ID]bool
}

func newWTPGBase(costs Costs) wtpgBase {
	return wtpgBase{
		costs:   costs,
		locks:   lock.NewTable(),
		graph:   wtpg.New(),
		live:    make(map[txn.ID]*txn.T),
		seenBuf: make(map[txn.ID]bool),
	}
}

// register adds t to the lock table and the WTPG: its declarations with
// due values, its node with w(T0→Ti) = due(s0), a conflicting-edge to
// every live transaction it conflicts with, and immediate resolutions
// u→t for every u already holding a lock that conflicts with one of t's
// declarations (u's access necessarily precedes t's).
func (b *wtpgBase) register(t *txn.T) error {
	if err := b.locks.Declare(t); err != nil {
		return err
	}
	if err := b.graph.AddNode(t.ID, t.DeclaredTotal()); err != nil {
		b.locks.Release(t.ID)
		return err
	}
	for id, u := range b.live {
		wtu, wut, ok := wtpg.ConflictWeights(t, u)
		if !ok {
			continue
		}
		if err := b.graph.AddConflict(t.ID, id, wtu, wut); err != nil {
			b.unregister(t)
			return err
		}
	}
	// Immediate resolutions against current holders.
	for _, s := range t.Steps {
		for _, h := range b.locks.Blocked(t.ID, s.Part, s.Mode) {
			if !b.graph.Has(h) {
				continue // holder not live (should not happen: strict locks)
			}
			if err := b.graph.Resolve(h, t.ID); err != nil {
				b.unregister(t)
				return fmt.Errorf("sched: register %v: %w", t.ID, err)
			}
		}
	}
	b.live[t.ID] = t
	return nil
}

// unregister rolls back a failed or rejected admission.
func (b *wtpgBase) unregister(t *txn.T) {
	b.graph.Remove(t.ID)
	b.locks.Release(t.ID)
	delete(b.live, t.ID)
}

// impliedTargets returns the transactions that granting step of t would
// order after t: every transaction with a pending conflicting declaration
// on the step's partition (deduplicated, in declaration order). The
// returned slice is reused across calls; callers must not retain it.
func (b *wtpgBase) impliedTargets(t *txn.T, step int) []txn.ID {
	s := t.Steps[step]
	b.targetBuf = b.targetBuf[:0]
	for id := range b.seenBuf {
		delete(b.seenBuf, id)
	}
	b.locks.EachConflictingDecl(t.ID, s.Part, s.Mode, func(d lock.Decl) {
		if !b.seenBuf[d.Txn] {
			b.seenBuf[d.Txn] = true
			b.targetBuf = append(b.targetBuf, d.Txn)
		}
	})
	return b.targetBuf
}

// grant applies the resolutions t→target and converts the declaration
// into a held lock. The caller must have verified the grant is legal (not
// blocked, no cycle / consistent with W).
func (b *wtpgBase) grant(t *txn.T, step int, targets []txn.ID) error {
	for _, to := range targets {
		if err := b.graph.Resolve(t.ID, to); err != nil {
			return err
		}
	}
	return b.locks.Grant(t.ID, t.Steps[step].Part, step)
}

// objectDone applies the weight-adjustment message of §3.1.
func (b *wtpgBase) objectDone(t *txn.T, objects float64) {
	if b.graph.Has(t.ID) {
		b.graph.AddW0(t.ID, -objects)
	}
}

// commit releases t's locks and removes it from the WTPG.
func (b *wtpgBase) commit(t *txn.T) []txn.PartitionID {
	freed := b.locks.Release(t.ID)
	b.graph.Remove(t.ID)
	delete(b.live, t.ID)
	return freed
}

// blocked reports whether step of t conflicts with a held lock.
func (b *wtpgBase) blocked(t *txn.T, step int) bool {
	s := t.Steps[step]
	return b.locks.IsBlocked(t.ID, s.Part, s.Mode)
}

// Graph exposes the scheduler's WTPG. Promoted by every wtpgBase
// scheduler so the observability wrapper (Observed) can report graph
// size, critical-path length and edge resolutions. Callers must not
// mutate the graph.
func (b *wtpgBase) Graph() *wtpg.Graph { return b.graph }

// CheckInvariants verifies the lock table holds no conflicting locks.
// Promoted by every wtpgBase scheduler; the simulator's SelfCheck mode
// calls it after each commit.
func (b *wtpgBase) CheckInvariants() error {
	return b.locks.CheckInvariants()
}

// LockHolders returns the transactions holding a granted lock on p.
// Promoted by every wtpgBase scheduler for diagnostics: the model
// checker asserts no aborted transaction ever appears here.
func (b *wtpgBase) LockHolders(p txn.PartitionID) []txn.ID {
	return b.locks.Holders(p)
}
