package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry resolves scheduler names to factories. It is the single
// place in the repository that constructs schedulers by name: the CLIs
// (batsim, batbench), the experiment harness and the facade all go
// through a registry lookup instead of hand-rolled switches, so adding
// a scheduler means registering it once.
//
// Two kinds of entries exist:
//
//   - exact names ("CHAIN", "EPOCH", …), registered with Register;
//   - parameterized families ("K<k>", "K<k>-C2PL"), registered with
//     RegisterFamily, whose parse function extracts the parameters from
//     the canonical name.
//
// Lookup is case-insensitive and trims surrounding space. Unknown names
// error with the full list of registered names and family patterns, so
// a typo on a command line is self-documenting.
type Registry struct {
	mu       sync.RWMutex
	order    []string
	exact    map[string]func() Factory
	families []family
}

type family struct {
	pattern string
	parse   func(canonical string) (Factory, bool)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{exact: make(map[string]func() Factory)}
}

// canonical is the lookup key form of a scheduler name.
func canonical(name string) string {
	return strings.ToUpper(strings.TrimSpace(name))
}

// Register adds an exact scheduler name (case-insensitive). The factory
// constructor runs once per lookup, so registered schedulers stay
// stateless between runs. Registering a duplicate name errors.
func (r *Registry) Register(name string, factory func() Factory) error {
	key := canonical(name)
	if key == "" {
		return fmt.Errorf("sched: cannot register an empty scheduler name")
	}
	if factory == nil {
		return fmt.Errorf("sched: cannot register %q with a nil factory", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.exact[key]; dup {
		return fmt.Errorf("sched: scheduler %q already registered", key)
	}
	r.exact[key] = factory
	r.order = append(r.order, key)
	return nil
}

// MustRegister is Register that panics on error — for package init
// blocks, where a duplicate registration is a programming bug.
func (r *Registry) MustRegister(name string, factory func() Factory) {
	if err := r.Register(name, factory); err != nil {
		panic(err)
	}
}

// RegisterFamily adds a parameterized name family. pattern is the
// human-readable form listed in error messages and Names (e.g. "K<k>");
// parse receives the canonical (upper-case, trimmed) name and reports
// whether it belongs to the family, returning the parameterized factory
// when it does. Families are tried in registration order after exact
// names.
func (r *Registry) RegisterFamily(pattern string, parse func(canonical string) (Factory, bool)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families = append(r.families, family{pattern: pattern, parse: parse})
}

// Lookup resolves a scheduler factory by name. Unknown names error,
// listing every registered name and family pattern.
func (r *Registry) Lookup(name string) (Factory, error) {
	key := canonical(name)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f, ok := r.exact[key]; ok {
		return f(), nil
	}
	for _, fam := range r.families {
		if f, ok := fam.parse(key); ok {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("sched: unknown scheduler %q (registered: %s)",
		name, strings.Join(r.namesLocked(), ", "))
}

// Names returns every registered exact name (sorted) followed by the
// family patterns in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, fam := range r.families {
		names = append(names, fam.pattern)
	}
	return names
}

// DefaultRegistry holds every built-in scheduler: the paper's five
// (NODC, ASL, C2PL, CHAIN, K<k>), the Experiment 4 hybrids (CHAIN-C2PL,
// K<k>-C2PL), and the epoch-batch mode (EPOCH).
var DefaultRegistry = newDefaultRegistry()

func newDefaultRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister("NODC", NODCFactory)
	r.MustRegister("ASL", ASLFactory)
	r.MustRegister("C2PL", C2PLFactory)
	r.MustRegister("CHAIN", ChainFactory)
	r.MustRegister("CHAIN-C2PL", ChainC2PLFactory)
	r.MustRegister("EPOCH", EpochFactory)
	r.RegisterFamily("K<k>", func(name string) (Factory, bool) {
		var k int
		if strings.HasSuffix(name, "-C2PL") {
			return Factory{}, false
		}
		if n, err := fmt.Sscanf(name, "K%d", &k); n == 1 && err == nil && k >= 0 && name == fmt.Sprintf("K%d", k) {
			return KWTPGFactory(k), true
		}
		return Factory{}, false
	})
	r.RegisterFamily("K<k>-C2PL", func(name string) (Factory, bool) {
		var k int
		if n, err := fmt.Sscanf(name, "K%d-C2PL", &k); n == 1 && err == nil && k >= 0 && name == fmt.Sprintf("K%d-C2PL", k) {
			return KC2PLFactory(k), true
		}
		return Factory{}, false
	})
	return r
}

// Lookup resolves a scheduler factory from the default registry.
func Lookup(name string) (Factory, error) { return DefaultRegistry.Lookup(name) }

// MustLookup is Lookup that panics on unknown names — for call sites
// naming built-in schedulers, where a miss is a programming bug.
func MustLookup(name string) Factory {
	f, err := DefaultRegistry.Lookup(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Names lists the default registry's scheduler names and patterns.
func Names() []string { return DefaultRegistry.Names() }
