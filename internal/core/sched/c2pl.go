package sched

import (
	"fmt"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// c2pl is Cautious Two-Phase Lock (Nishio et al. [10]): strict 2PL plus a
// transaction precedence graph used to *predict* deadlocks. A request is
// granted iff it is not blocked and granting it would not create a
// precedence cycle; a deadlock-inducing request is delayed instead of
// aborting anything.
//
// Optional admission constraints turn c2pl into the Experiment 4
// lower-bound hybrids: CHAIN-C2PL (chain-form WTPG required) and K-C2PL
// (K-conflict bound required). Per the paper, those hybrids delay the
// start of violating transactions.
type c2pl struct {
	wtpgBase
	name string
	// preAdmit runs before registration (sees the table without t).
	preAdmit func(b *wtpgBase, t *txn.T) bool
	// postAdmit runs after registration (sees the graph with t).
	postAdmit func(b *wtpgBase, t *txn.T) bool
}

// NewC2PL returns a Cautious Two-Phase Lock scheduler.
func NewC2PL(costs Costs) Scheduler {
	return &c2pl{wtpgBase: newWTPGBase(costs), name: "C2PL"}
}

// NewChainC2PL returns C2PL restricted to chain-form WTPGs — the lower
// bound isolating the benefit of CHAIN's structural constraint from its
// weight-based optimization (Experiment 4).
func NewChainC2PL(costs Costs) Scheduler {
	return &c2pl{
		wtpgBase: newWTPGBase(costs),
		name:     "CHAIN-C2PL",
		postAdmit: func(b *wtpgBase, t *txn.T) bool {
			_, ok := b.graph.Chains()
			return ok
		},
	}
}

// NewKC2PL returns C2PL restricted to K-conflict WTPGs — the lower bound
// isolating the benefit of K-WTPG's admission constraint from its use of
// weights (Experiment 4).
func NewKC2PL(costs Costs, k int) Scheduler {
	return &c2pl{
		wtpgBase: newWTPGBase(costs),
		name:     fmt.Sprintf("K%d-C2PL", k),
		preAdmit: func(b *wtpgBase, t *txn.T) bool {
			return !b.locks.WouldExceedK(t, k)
		},
	}
}

func (c *c2pl) Name() string { return c.name }

func (c *c2pl) Admit(t *txn.T, now event.Time) Outcome {
	if c.preAdmit != nil && !c.preAdmit(&c.wtpgBase, t) {
		return Outcome{Decision: Aborted, CPU: c.costs.DDTime}
	}
	if err := c.register(t); err != nil {
		return Outcome{Decision: Delayed, CPU: c.costs.DDTime}
	}
	if c.postAdmit != nil && !c.postAdmit(&c.wtpgBase, t) {
		c.unregister(t)
		return Outcome{Decision: Aborted, CPU: c.costs.DDTime}
	}
	return Outcome{Decision: Granted, CPU: c.costs.DDTime}
}

func (c *c2pl) Request(t *txn.T, step int, now event.Time) Outcome {
	cpu := c.costs.DDTime
	if c.blocked(t, step) {
		return Outcome{Decision: Blocked, CPU: cpu}
	}
	targets := c.impliedTargets(t, step)
	if c.graph.WouldCycleFrom(t.ID, targets) {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	if err := c.grant(t, step, targets); err != nil {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	return Outcome{Decision: Granted, CPU: cpu}
}

func (c *c2pl) ObjectDone(t *txn.T, objects float64, now event.Time) {
	c.objectDone(t, objects)
}

func (c *c2pl) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	return c.commit(t), 0
}

// Abort recovers from an external abort of an admitted transaction: the
// precedence test needs no extra repair beyond the base splice because
// c2pl keeps no cached plan.
func (c *c2pl) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	return c.abort(t), c.costs.DDTime
}
