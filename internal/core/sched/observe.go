package sched

import (
	"time"

	"batsched/internal/core/wtpg"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// GraphHolder is implemented by schedulers that maintain a WTPG (every
// wtpgBase scheduler: C2PL, CHAIN, K-WTPG and the hybrids).
type GraphHolder interface {
	Graph() *wtpg.Graph
}

// observed decorates a Scheduler with trace emission: every Admit and
// Request outcome becomes an obs Decision event carrying the decision,
// its control-CPU cost, its wall duration, and the WTPG size; edge
// resolutions become Resolve events; and critical-path length changes
// after granted admissions, granted requests and commits become
// CriticalPathChange events.
//
// The wrapper is only installed when an observer is configured, so the
// default path pays nothing.
type observed struct {
	inner Scheduler
	sink  obs.Observer
	graph *wtpg.Graph // nil for graph-free schedulers (NODC, ASL)
	label string
	// lastNow lets the graph's OnResolve hook (which has no clock)
	// timestamp its events with the current decision's time.
	lastNow  event.Time
	lastPath float64
	// lastDegraded tracks the inner scheduler's Degradable flag so mode
	// transitions become degrade/restore events.
	lastDegraded bool
}

// Observed wraps s so every decision is reported to o. If s maintains a
// WTPG its edge resolutions and critical-path changes are reported too.
// A nil observer returns s unchanged.
func Observed(s Scheduler, o obs.Observer) Scheduler {
	if o == nil {
		return s
	}
	w := &observed{inner: s, sink: o, label: s.Name()}
	if gh, ok := s.(GraphHolder); ok {
		w.graph = gh.Graph()
		w.graph.OnResolve = func(from, to txn.ID) {
			o.Observe(obs.Event{
				Kind:  obs.KindResolve,
				At:    w.lastNow,
				Sched: w.label,
				From:  from,
				To:    to,
				Graph: w.graph.Len(),
			})
		}
	}
	if _, ok := s.(BatchAdmitter); ok {
		// Only batch-capable schedulers may look batch-capable after
		// wrapping: a plain *observed forwarding AdmitBatch would make
		// every scheduler satisfy the BatchAdmitter type assertion.
		return &observedBatch{observed: w}
	}
	return w
}

// observedBatch extends observed with AdmitBatch forwarding, returned
// only when the wrapped scheduler is itself a BatchAdmitter so the
// optional-interface type assertion stays truthful through the wrapper.
type observedBatch struct {
	*observed
}

// AdmitBatch forwards the batch and reports it: one Decision event per
// member (op "admit", as the per-arrival path would emit, with the wall
// duration of the whole batch attributed to its first member), then the
// critical-path and degraded-mode checks once for the batch.
func (w *observedBatch) AdmitBatch(ts []*txn.T, now event.Time) BatchOutcome {
	w.lastNow = now
	start := time.Now()
	out := w.inner.(BatchAdmitter).AdmitBatch(ts, now)
	dur := time.Since(start)
	for i, t := range ts {
		w.emitDecision("admit", t.ID, -1, -1, out.Outcomes[i], now, dur)
		dur = 0
	}
	if out.Admitted > 0 {
		w.checkCriticalPath(now)
	}
	w.checkDegraded(now)
	return out
}

// ObservedFactory wraps a factory so every scheduler it builds reports
// to o. A nil observer returns f unchanged.
func ObservedFactory(f Factory, o obs.Observer) Factory {
	if o == nil {
		return f
	}
	inner := f.New
	f.New = func(c Costs) Scheduler { return Observed(inner(c), o) }
	return f
}

func (w *observed) Name() string { return w.inner.Name() }

func (w *observed) Admit(t *txn.T, now event.Time) Outcome {
	w.lastNow = now
	start := time.Now()
	out := w.inner.Admit(t, now)
	w.emitDecision("admit", t.ID, -1, -1, out, now, time.Since(start))
	if out.Decision == Granted {
		w.checkCriticalPath(now)
	}
	w.checkDegraded(now)
	return out
}

func (w *observed) Request(t *txn.T, step int, now event.Time) Outcome {
	w.lastNow = now
	start := time.Now()
	out := w.inner.Request(t, step, now)
	w.emitDecision("request", t.ID, step, t.Steps[step].Part, out, now, time.Since(start))
	if out.Decision == Granted {
		w.checkCriticalPath(now)
	}
	w.checkDegraded(now)
	return out
}

func (w *observed) ObjectDone(t *txn.T, objects float64, now event.Time) {
	w.lastNow = now
	w.inner.ObjectDone(t, objects, now)
}

func (w *observed) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	w.lastNow = now
	freed, cpu := w.inner.Commit(t, now)
	w.checkCriticalPath(now)
	w.checkDegraded(now)
	return freed, cpu
}

// Abort forwards the recovery path and reports it: one Abort event
// (splice resolutions arrive through OnResolve as usual), then the
// critical-path and degraded-mode checks.
func (w *observed) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	w.lastNow = now
	freed, cpu := AbortTxn(w.inner, t, now)
	e := obs.Event{Kind: obs.KindAbort, At: now, Sched: w.label, Txn: t.ID}
	if w.graph != nil {
		e.Graph = w.graph.Len()
	}
	w.sink.Observe(e)
	w.checkCriticalPath(now)
	w.checkDegraded(now)
	return freed, cpu
}

// CheckInvariants forwards the simulator's SelfCheck hook to the inner
// scheduler when it supports it.
func (w *observed) CheckInvariants() error {
	if c, ok := w.inner.(interface{ CheckInvariants() error }); ok {
		return c.CheckInvariants()
	}
	return nil
}

// Graph forwards GraphHolder so nested wrapping keeps working.
func (w *observed) Graph() *wtpg.Graph { return w.graph }

func (w *observed) emitDecision(op string, id txn.ID, step int, part txn.PartitionID, out Outcome, now event.Time, dur time.Duration) {
	e := obs.Event{
		Kind:     obs.KindDecision,
		At:       now,
		Sched:    w.label,
		Txn:      id,
		Step:     step,
		Part:     part,
		Op:       op,
		Decision: out.Decision.String(),
		CPU:      out.CPU,
		DurNS:    dur.Nanoseconds(),
	}
	if w.graph != nil {
		e.Graph = w.graph.Len()
	}
	w.sink.Observe(e)
}

// checkDegraded emits a Degrade or Restore event when the inner
// scheduler's Degradable flag transitions.
func (w *observed) checkDegraded(now event.Time) {
	d, ok := w.inner.(Degradable)
	if !ok {
		return
	}
	cur := d.Degraded()
	if cur == w.lastDegraded {
		return
	}
	w.lastDegraded = cur
	kind := obs.KindRestore
	if cur {
		kind = obs.KindDegrade
	}
	e := obs.Event{Kind: kind, At: now, Sched: w.label}
	if w.graph != nil {
		e.Graph = w.graph.Len()
	}
	w.sink.Observe(e)
}

// Degraded forwards Degradable so nested wrapping keeps working.
func (w *observed) Degraded() bool {
	if d, ok := w.inner.(Degradable); ok {
		return d.Degraded()
	}
	return false
}

// checkCriticalPath reads the WTPG critical path and emits a
// CriticalPathChange event when its length moved. Only runs with an
// observer attached; the graph caches the critical path per epoch, so
// this is O(1) unless the graph mutated since the last read (then one
// O(V+E) recomputation over resolved edges).
func (w *observed) checkCriticalPath(now event.Time) {
	if w.graph == nil {
		return
	}
	length, err := w.graph.CriticalPath()
	if err != nil || length == w.lastPath {
		return
	}
	w.lastPath = length
	w.sink.Observe(obs.Event{
		Kind:     obs.KindCriticalPathChange,
		At:       now,
		Sched:    w.label,
		CritPath: length,
		Graph:    w.graph.Len(),
	})
}
