package sched

import (
	"batsched/internal/core/wtpg"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// BatchOutcome reports one epoch flush: the per-transaction admission
// outcomes (aligned with the input slice), the batch-level control CPU
// consumed beyond the per-transaction costs (the single W recomputation
// the epoch mode exists to amortize), and the shape of the admitted set.
type BatchOutcome struct {
	// Outcomes[i] is the admission outcome of ts[i]; its CPU field
	// carries that transaction's own cost (one DDTime graph test).
	Outcomes []Outcome
	// CPU is the batch-level extra cost: one ChainTime when the whole
	// batch triggered a single plan recomputation, zero when the cached
	// W was still valid.
	CPU event.Time
	// Admitted counts Granted outcomes.
	Admitted int
	// Clusters is the number of conflict-free clusters among the
	// admitted batch members: connected components of their conflict
	// graph. Clusters can execute concurrently without ever contending
	// with each other, so this is the batch's available parallelism.
	Clusters int
}

// BatchAdmitter is the optional batch-aware surface of a Scheduler.
// Drivers that collect arrivals into epochs (package sim with
// Config.BatchWindow, the live controller with WithBatchWindow) detect
// it with a type assertion and admit whole batches through it;
// schedulers that do not implement it are driven per-arrival exactly as
// before, so the base Scheduler contract is untouched.
//
// AdmitBatch must be equivalent to calling Admit once per transaction
// in slice order — same decisions, same resulting graph state — except
// that scheduler-internal caches may be refreshed once for the whole
// batch instead of per call (that amortization is the point). Rejected
// transactions (Delayed/Aborted) leave no state behind and are the
// caller's to resubmit, normally into the next epoch.
type BatchAdmitter interface {
	AdmitBatch(ts []*txn.T, now event.Time) BatchOutcome
}

// epoch is the EPOCH scheduler: CHAIN's optimal-order concurrency
// control driven in batch-admission mode, after Prasaad et al.'s
// epoch-based transaction scheduling (PAPERS.md) — group arrivals into
// batches, build the conflict graph for the whole batch at once,
// compute the serialization order once, and hand conflict-free clusters
// to parallel executors.
//
// Per-call behavior (Admit, Request, ObjectDone, Commit, Abort) is
// CHAIN's, inherited verbatim — with a zero batch window the EPOCH
// scheduler *is* CHAIN under another name, which the differential tests
// pin. The value added is AdmitBatch: admitting N transactions as one
// batch runs N chain-form tests but at most one W recomputation
// (chainopt.Solve over the slot-engine WTPG), where per-arrival CHAIN
// interleaves admissions with requests and recomputes W once per
// started-or-committed transaction (§3.4). CHAIN's O(N²) global
// optimum finally amortizes across the batch it orders.
type epoch struct {
	chain
}

// NewEpoch returns an EPOCH scheduler.
func NewEpoch(costs Costs) Scheduler {
	return &epoch{chain: chain{wtpgBase: newWTPGBase(costs), plan: make(map[pairKey]txn.ID)}}
}

// EpochFactory builds EPOCH schedulers.
func EpochFactory() Factory {
	return Factory{Label: "EPOCH", New: func(c Costs) Scheduler { return NewEpoch(c) }}
}

func (e *epoch) Name() string { return "EPOCH" }

// AdmitBatch admits a whole epoch's arrivals in slice order: each
// transaction pays one DDTime chain-form test (exactly Admit's cost and
// decision), then one ChainTime recomputes the optimal order W for the
// entire batch — instead of the per-started-transaction recomputes the
// interleaved per-arrival driver causes. The returned BatchOutcome also
// reports the admitted members' conflict-free clusters.
func (e *epoch) AdmitBatch(ts []*txn.T, now event.Time) BatchOutcome {
	out := BatchOutcome{Outcomes: make([]Outcome, len(ts))}
	admitted := make([]*txn.T, 0, len(ts))
	for i, t := range ts {
		o := e.chain.Admit(t, now)
		out.Outcomes[i] = o
		if o.Decision == Granted {
			admitted = append(admitted, t)
		}
	}
	out.Admitted = len(admitted)
	if len(admitted) > 0 && !e.degraded {
		// One W recomputation for the whole batch. Forcing it here (the
		// admissions above marked the plan dirty) means the batch's lock
		// requests find a fresh cached W and reuse it until the next
		// invalidating event, charging the batch a single ChainTime.
		if recomputed, err := e.refreshPlan(now); err != nil {
			e.degrade()
		} else if recomputed {
			out.CPU += e.costs.ChainTime
		}
	}
	out.Clusters = len(ConflictClusters(admitted))
	return out
}

// ConflictClusters partitions a batch into conflict-free clusters:
// connected components of the batch's conflict graph (two transactions
// are connected when wtpg.ConflictWeights finds any conflicting step
// pair). Transactions in different clusters never contend with each
// other, so clusters are the unit of parallel dispatch — the live
// controller hands them to epoch workers, the simulator reports them
// per flush. Returned clusters hold indices into ts, each cluster in
// ascending index order, clusters ordered by their smallest member, so
// the output is deterministic.
func ConflictClusters(ts []*txn.T) [][]int {
	n := len(ts)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if _, _, ok := wtpg.ConflictWeights(ts[i], ts[j]); ok {
				union(i, j)
			}
		}
	}
	byRoot := make(map[int][]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, seen := byRoot[r]; !seen {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], i)
	}
	// Roots are discovered in ascending index order (find(i) ≤ i and the
	// loop walks i upward), so clusters come out ordered by smallest
	// member without an extra sort.
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
