package sched

import (
	"testing"

	"batsched/internal/obs"
	"batsched/internal/txn"
)

// TestObservedEmitsDecisionsAndGraphEvents drives a small conflicting
// pair through an observed C2PL scheduler and checks the event stream:
// decisions for every Admit/Request, Resolve for the fixed precedence,
// and CriticalPathChange as the graph grows and drains.
func TestObservedEmitsDecisionsAndGraphEvents(t *testing.T) {
	ring := obs.NewRing(128)
	s := Observed(NewC2PL(Costs{}), ring)
	if s.Name() != "C2PL" {
		t.Fatalf("name %q", s.Name())
	}

	t1 := txn.New(1, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 2}})
	t2 := txn.New(2, []txn.Step{{Mode: txn.Write, Part: 0, Cost: 3}})
	if out := s.Admit(t1, 10); out.Decision != Granted {
		t.Fatalf("admit t1: %v", out.Decision)
	}
	if out := s.Admit(t2, 11); out.Decision != Granted {
		t.Fatalf("admit t2: %v", out.Decision)
	}
	if out := s.Request(t1, 0, 12); out.Decision != Granted {
		t.Fatalf("request t1: %v", out.Decision)
	}
	if out := s.Request(t2, 0, 13); out.Decision != Blocked {
		t.Fatalf("request t2: %v", out.Decision)
	}
	s.ObjectDone(t1, 2, 14)
	s.Commit(t1, 15)
	if out := s.Request(t2, 0, 16); out.Decision != Granted {
		t.Fatalf("request t2 after commit: %v", out.Decision)
	}
	s.Commit(t2, 20)

	counts := map[obs.Kind]int{}
	decisions := map[string]int{}
	var sawResolve bool
	for _, e := range ring.Events() {
		counts[e.Kind]++
		if e.Sched != "C2PL" {
			t.Errorf("event %v has sched %q", e.Kind, e.Sched)
		}
		if e.Kind == obs.KindDecision {
			decisions[e.Op+"/"+e.Decision]++
		}
		if e.Kind == obs.KindResolve && e.From == 1 && e.To == 2 {
			sawResolve = true
		}
	}
	if counts[obs.KindDecision] != 5 {
		t.Errorf("decision events %d, want 5", counts[obs.KindDecision])
	}
	if decisions["admit/granted"] != 2 || decisions["request/granted"] != 2 || decisions["request/blocked"] != 1 {
		t.Errorf("decision breakdown %v", decisions)
	}
	if !sawResolve {
		t.Error("no Resolve event for the T1→T2 precedence")
	}
	if counts[obs.KindCriticalPathChange] == 0 {
		t.Error("no CriticalPathChange events")
	}
	if counts[obs.KindAdmit] != 0 || counts[obs.KindCommit] != 0 {
		t.Errorf("wrapper must not emit timeline events, got %v", counts)
	}
}

// TestObservedNilObserver: a nil observer is the identity.
func TestObservedNilObserver(t *testing.T) {
	inner := NewChain(Costs{})
	if got := Observed(inner, nil); got != inner {
		t.Error("Observed(s, nil) should return s")
	}
	f := ChainFactory()
	if got := ObservedFactory(f, nil); got.New(Costs{}).Name() != "CHAIN" {
		t.Errorf("ObservedFactory(f, nil) broken: %v", got)
	}
}

// TestObservedFactoryWrapsEveryInstance: factories built via
// ObservedFactory emit events and keep the graph accessible.
func TestObservedFactoryWrapsEveryInstance(t *testing.T) {
	ring := obs.NewRing(64)
	f := ObservedFactory(KWTPGFactory(2), ring)
	s := f.New(Costs{})
	if _, ok := s.(GraphHolder); !ok {
		t.Fatal("observed K-WTPG should still expose its graph")
	}
	t1 := txn.New(1, []txn.Step{{Mode: txn.Read, Part: 1, Cost: 1}})
	s.Admit(t1, 0)
	s.Request(t1, 0, 1)
	s.Commit(t1, 2)
	if ring.Total() == 0 {
		t.Error("factory-built scheduler emitted nothing")
	}
	// NODC has no graph; the wrapper must still work.
	ring2 := obs.NewRing(8)
	n := Observed(NewNODC(), ring2)
	n.Admit(t1, 0)
	n.Request(t1, 0, 1)
	n.Commit(t1, 2)
	if ring2.Total() != 2 {
		t.Errorf("NODC observed events = %d, want 2 decisions", ring2.Total())
	}
}
