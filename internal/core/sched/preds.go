package sched

import (
	"sort"

	"batsched/internal/txn"
)

// Predecessors returns id's direct resolved WTPG predecessors under s —
// the transactions id must wait for, as currently resolved — or nil when
// s maintains no WTPG (NODC, ASL) or id is unknown to it. This is the
// stable accessor the WAL uses to build dependency records; callers must
// not reach into scheduler internals. The slice is freshly allocated and
// sorted by transaction id (see wtpg.Graph.Predecessors).
//
// Decorated schedulers work transparently: sched.Observed forwards
// GraphHolder, so the accessor sees through the tracing wrapper.
func Predecessors(s Scheduler, id txn.ID) []txn.ID {
	gh, ok := s.(GraphHolder)
	if !ok {
		return nil
	}
	g := gh.Graph()
	if g == nil {
		return nil
	}
	return g.Predecessors(id)
}

// PredecessorsUnion returns the union of id's direct resolved WTPG
// predecessors across several schedulers, sorted by transaction id with
// duplicates removed. The sharded live controller registers a
// cross-shard transaction in every shard its footprint touches, so its
// full dependency set — what the WAL Begin/Commit records must carry —
// is the union of what each shard's graph resolved. Schedulers without
// a WTPG contribute nothing; the caller must hold whatever locks make
// the individual graphs stable (the shard locks, in canonical order).
func PredecessorsUnion(ss []Scheduler, id txn.ID) []txn.ID {
	var out []txn.ID
	for _, s := range ss {
		gh, ok := s.(GraphHolder)
		if !ok {
			continue
		}
		g := gh.Graph()
		if g == nil {
			continue
		}
		out = g.AppendPredecessors(out, id)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}
