package sched

import "batsched/internal/txn"

// Predecessors returns id's direct resolved WTPG predecessors under s —
// the transactions id must wait for, as currently resolved — or nil when
// s maintains no WTPG (NODC, ASL) or id is unknown to it. This is the
// stable accessor the WAL uses to build dependency records; callers must
// not reach into scheduler internals. The slice is freshly allocated and
// sorted by transaction id (see wtpg.Graph.Predecessors).
//
// Decorated schedulers work transparently: sched.Observed forwards
// GraphHolder, so the accessor sees through the tracing wrapper.
func Predecessors(s Scheduler, id txn.ID) []txn.ID {
	gh, ok := s.(GraphHolder)
	if !ok {
		return nil
	}
	g := gh.Graph()
	if g == nil {
		return nil
	}
	return g.Predecessors(id)
}
