package sched

import (
	"testing"

	"batsched/internal/txn"
)

var testCosts = Costs{DDTime: 1, ChainTime: 5, KWTPGTime: 3, KeepTime: 5000}

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

// figure1 returns the paper's Figure 1 transactions (A=0,B=1,C=2,D=3).
func figure1() (t1, t2, t3 *txn.T) {
	t1 = txn.New(1, []txn.Step{r(0, 1), r(1, 3), w(0, 1)})
	t2 = txn.New(2, []txn.Step{r(2, 1), w(0, 1)})
	t3 = txn.New(3, []txn.Step{w(2, 1), r(3, 3)})
	return
}

func admitAll(t *testing.T, s Scheduler, txns ...*txn.T) {
	t.Helper()
	for _, tx := range txns {
		if out := s.Admit(tx, 0); out.Decision != Granted {
			t.Fatalf("%s: Admit(%v) = %v, want granted", s.Name(), tx.ID, out.Decision)
		}
	}
}

// TestChainExample33 reproduces Example 3.3: with W = {T1→T2, T3→T2},
// CHAIN delays T2's first step r2(C:1) because granting it would resolve
// (T2,T3) into T2→T3, inconsistent with W.
func TestChainExample33(t *testing.T) {
	s := NewChain(testCosts)
	t1, t2, t3 := figure1()
	admitAll(t, s, t1, t2, t3)
	if out := s.Request(t2, 0, 0); out.Decision != Delayed {
		t.Errorf("CHAIN Request(r2(C:1)) = %v, want delayed", out.Decision)
	}
	// Requests consistent with W are granted.
	if out := s.Request(t1, 0, 0); out.Decision != Granted {
		t.Errorf("CHAIN Request(r1(A:1)) = %v, want granted", out.Decision)
	}
	if out := s.Request(t3, 0, 0); out.Decision != Granted {
		t.Errorf("CHAIN Request(w3(C:1)) = %v, want granted", out.Decision)
	}
	// Once T3 holds X(C), T2's request is blocked outright.
	if out := s.Request(t2, 0, 0); out.Decision != Blocked {
		t.Errorf("CHAIN Request(r2(C:1)) after grant to T3 = %v, want blocked", out.Decision)
	}
}

func TestChainAbortsNonChainForm(t *testing.T) {
	s := NewChain(testCosts)
	// Three writers of partition 0 form a triangle (each pair conflicts).
	a := txn.New(1, []txn.Step{w(0, 1)})
	b := txn.New(2, []txn.Step{w(0, 1)})
	c := txn.New(3, []txn.Step{w(0, 1)})
	admitAll(t, s, a, b)
	if out := s.Admit(c, 0); out.Decision != Aborted {
		t.Fatalf("Admit of triangle-forming txn = %v, want aborted", out.Decision)
	}
	// The rejected transaction left no state behind: admitting a
	// non-conflicting transaction still works and the graph is unchanged.
	d := txn.New(4, []txn.Step{w(9, 1)})
	admitAll(t, s, d)
	// After B commits the chain shrinks and C becomes admissible.
	if out := s.Request(a, 0, 0); out.Decision != Granted {
		t.Fatalf("request = %v, want granted", out.Decision)
	}
	if freed, _ := s.Commit(a, 10); len(freed) != 1 || freed[0] != 0 {
		t.Fatalf("freed = %v, want [0]", freed)
	}
	if out := s.Admit(c, 11); out.Decision != Granted {
		t.Errorf("Admit(c) after commit = %v, want granted", out.Decision)
	}
}

func TestChainRecomputeCharging(t *testing.T) {
	s := NewChain(testCosts).(*chain)
	t1, t2, _ := figure1()
	admitAll(t, s, t1, t2)
	out := s.Request(t1, 0, 0)
	if out.Decision != Granted {
		t.Fatalf("request = %v", out.Decision)
	}
	if out.CPU != testCosts.DDTime+testCosts.ChainTime {
		t.Errorf("first request CPU = %v, want ddtime+chaintime", out.CPU)
	}
	// Second request inside KeepTime with no start/commit: cached W.
	out = s.Request(t1, 1, 10)
	if out.Decision != Granted {
		t.Fatalf("request = %v", out.Decision)
	}
	if out.CPU != testCosts.DDTime {
		t.Errorf("cached request CPU = %v, want ddtime only", out.CPU)
	}
	// After KeepTime elapses W is recomputed.
	out = s.Request(t1, 2, 10+testCosts.KeepTime)
	if out.CPU != testCosts.DDTime+testCosts.ChainTime {
		t.Errorf("post-keeptime CPU = %v, want ddtime+chaintime", out.CPU)
	}
	if s.recomputes != 2 {
		t.Errorf("recomputes = %d, want 2", s.recomputes)
	}
}

// TestKWTPGPrefersSmallerE: T1 = r(B:5)→w(A:1) (total 6), T2 = w(A:1).
// E(T2's request) = 6 < E(T1's hypothetical w(A)) = 7, so K2 grants T2
// and would delay T1's write.
func TestKWTPGPrefersSmallerE(t *testing.T) {
	s := NewKWTPG(testCosts, 2)
	t1 := txn.New(1, []txn.Step{r(1, 5), w(0, 1)})
	t2 := txn.New(2, []txn.Step{w(0, 1)})
	admitAll(t, s, t1, t2)
	if out := s.Request(t1, 1, 0); out.Decision != Delayed {
		t.Errorf("K2 Request(T1 w(A)) = %v, want delayed (E=7 > E'=6)", out.Decision)
	}
	if out := s.Request(t2, 0, 0); out.Decision != Granted {
		t.Errorf("K2 Request(T2 w(A)) = %v, want granted (E=6 minimal)", out.Decision)
	}
}

func TestKWTPGAdmissionBound(t *testing.T) {
	s := NewKWTPG(testCosts, 1)
	a := txn.New(1, []txn.Step{w(0, 1)})
	b := txn.New(2, []txn.Step{r(0, 1)})
	c := txn.New(3, []txn.Step{r(0, 1)})
	admitAll(t, s, a, b)
	// c's read would make a's write-declaration conflict with 2 > K=1.
	if out := s.Admit(c, 0); out.Decision != Aborted {
		t.Errorf("Admit over K bound = %v, want aborted", out.Decision)
	}
	// A hub over distinct partitions is fine even at K=1 (not chain form).
	s2 := NewKWTPG(testCosts, 1)
	hub := txn.New(1, []txn.Step{w(0, 1), w(1, 1), w(2, 1)})
	l1 := txn.New(2, []txn.Step{r(0, 1)})
	l2 := txn.New(3, []txn.Step{r(1, 1)})
	l3 := txn.New(4, []txn.Step{r(2, 1)})
	admitAll(t, s2, hub, l1, l2, l3)
}

func TestKWTPGDelaysDeadlock(t *testing.T) {
	s := NewKWTPG(testCosts, 2)
	t1 := txn.New(1, []txn.Step{r(0, 1), w(1, 1)})
	t2 := txn.New(2, []txn.Step{r(1, 1), w(0, 1)})
	admitAll(t, s, t1, t2)
	if out := s.Request(t1, 0, 0); out.Decision != Granted {
		t.Fatalf("T1 r(A) = %v", out.Decision)
	}
	// T2's r(B) would resolve T2→T1, contradicting T1→T2: E = ∞ → delayed.
	if out := s.Request(t2, 0, 0); out.Decision != Delayed {
		t.Errorf("K2 deadlock-inducing request = %v, want delayed", out.Decision)
	}
}

func TestC2PLPredictsDeadlock(t *testing.T) {
	s := NewC2PL(testCosts)
	t1 := txn.New(1, []txn.Step{r(0, 1), w(1, 1)})
	t2 := txn.New(2, []txn.Step{r(1, 1), w(0, 1)})
	admitAll(t, s, t1, t2)
	if out := s.Request(t1, 0, 0); out.Decision != Granted {
		t.Fatalf("T1 r(A) = %v", out.Decision)
	}
	if out := s.Request(t2, 0, 0); out.Decision != Delayed {
		t.Errorf("C2PL cycle-inducing request = %v, want delayed", out.Decision)
	}
	// T1 may proceed; after its commit, T2 can run.
	if out := s.Request(t1, 1, 0); out.Decision != Granted {
		t.Fatalf("T1 w(B) = %v", out.Decision)
	}
	freed, _ := s.Commit(t1, 5)
	if len(freed) != 2 {
		t.Fatalf("freed = %v, want two partitions", freed)
	}
	if out := s.Request(t2, 0, 6); out.Decision != Granted {
		t.Errorf("T2 r(B) after T1 commit = %v, want granted", out.Decision)
	}
}

func TestC2PLUpgradeDeadlockAvoided(t *testing.T) {
	s := NewC2PL(testCosts)
	t1 := txn.New(1, []txn.Step{r(0, 2), w(0, 1)})
	t2 := txn.New(2, []txn.Step{r(0, 2), w(0, 1)})
	admitAll(t, s, t1, t2)
	if out := s.Request(t1, 0, 0); out.Decision != Granted {
		t.Fatalf("T1 r(A) = %v", out.Decision)
	}
	// T2's S(A) is compatible with T1's S(A) but would resolve T2→T1
	// against the existing T1→T2: the classic S-S upgrade deadlock is
	// predicted and avoided.
	if out := s.Request(t2, 0, 0); out.Decision != Delayed {
		t.Errorf("T2 r(A) = %v, want delayed (upgrade deadlock)", out.Decision)
	}
	if out := s.Request(t1, 1, 0); out.Decision != Granted {
		t.Errorf("T1 upgrade w(A) = %v, want granted", out.Decision)
	}
	s.Commit(t1, 5)
	if out := s.Request(t2, 0, 6); out.Decision != Granted {
		t.Errorf("T2 r(A) after commit = %v, want granted", out.Decision)
	}
}

func TestASLAtomicAcquisition(t *testing.T) {
	s := NewASL(testCosts)
	t1 := txn.New(1, []txn.Step{r(0, 1), w(1, 1)})
	t2 := txn.New(2, []txn.Step{r(1, 1), w(2, 1)})
	if out := s.Admit(t1, 0); out.Decision != Granted {
		t.Fatalf("Admit(t1) = %v", out.Decision)
	}
	// t2 needs S(1) but t1 holds X(1): start refused.
	if out := s.Admit(t2, 0); out.Decision != Delayed {
		t.Errorf("Admit(t2) = %v, want delayed", out.Decision)
	}
	// All requests of an admitted ASL transaction are free grants.
	if out := s.Request(t1, 0, 0); out.Decision != Granted || out.CPU != 0 {
		t.Errorf("Request = %+v, want free grant", out)
	}
	freed, _ := s.Commit(t1, 5)
	if len(freed) != 2 {
		t.Fatalf("freed = %v", freed)
	}
	if out := s.Admit(t2, 6); out.Decision != Granted {
		t.Errorf("Admit(t2) after commit = %v, want granted", out.Decision)
	}
}

func TestNODCGrantsEverything(t *testing.T) {
	s := NewNODC()
	t1 := txn.New(1, []txn.Step{w(0, 1)})
	t2 := txn.New(2, []txn.Step{w(0, 1)})
	for _, tx := range []*txn.T{t1, t2} {
		if out := s.Admit(tx, 0); out.Decision != Granted {
			t.Fatalf("NODC Admit = %v", out.Decision)
		}
		if out := s.Request(tx, 0, 0); out.Decision != Granted {
			t.Fatalf("NODC Request = %v", out.Decision)
		}
	}
}

func TestHybridAdmission(t *testing.T) {
	// CHAIN-C2PL rejects non-chain WTPGs but schedules like C2PL.
	s := NewChainC2PL(testCosts)
	if s.Name() != "CHAIN-C2PL" {
		t.Errorf("name = %q", s.Name())
	}
	a := txn.New(1, []txn.Step{w(0, 1)})
	b := txn.New(2, []txn.Step{w(0, 1)})
	c := txn.New(3, []txn.Step{w(0, 1)})
	admitAll(t, s, a, b)
	if out := s.Admit(c, 0); out.Decision != Aborted {
		t.Errorf("CHAIN-C2PL Admit(triangle) = %v, want aborted", out.Decision)
	}
	// Unlike CHAIN, CHAIN-C2PL ignores weights: first-come grants win.
	if out := s.Request(b, 0, 0); out.Decision != Granted {
		t.Errorf("CHAIN-C2PL Request = %v, want granted", out.Decision)
	}

	k := NewKC2PL(testCosts, 1)
	if k.Name() != "K1-C2PL" {
		t.Errorf("name = %q", k.Name())
	}
	a2 := txn.New(1, []txn.Step{w(0, 1)})
	b2 := txn.New(2, []txn.Step{r(0, 1)})
	c2 := txn.New(3, []txn.Step{r(0, 1)})
	admitAll(t, k, a2, b2)
	if out := k.Admit(c2, 0); out.Decision != Aborted {
		t.Errorf("K1-C2PL Admit over bound = %v, want aborted", out.Decision)
	}
}

func TestObjectDoneAdjustsWeights(t *testing.T) {
	s := NewKWTPG(testCosts, 2).(*kwtpg)
	t1 := txn.New(1, []txn.Step{r(0, 3)})
	admitAll(t, s, t1)
	if got := s.graph.W0(1); got != 3 {
		t.Fatalf("initial w0 = %g", got)
	}
	s.ObjectDone(t1, 1, 0)
	s.ObjectDone(t1, 0.5, 0)
	if got := s.graph.W0(1); got != 1.5 {
		t.Errorf("w0 after 1.5 objects = %g, want 1.5", got)
	}
}

func TestFactories(t *testing.T) {
	for _, f := range []Factory{
		NODCFactory(), ASLFactory(), C2PLFactory(), ChainFactory(),
		KWTPGFactory(2), ChainC2PLFactory(), KC2PLFactory(2),
	} {
		s := f.New(testCosts)
		if s == nil {
			t.Fatalf("factory %s returned nil", f.Label)
		}
		if f.Label == "K2" && s.Name() != "K2" {
			t.Errorf("K2 name = %q", s.Name())
		}
	}
}
