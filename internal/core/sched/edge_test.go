package sched

import (
	"testing"

	"batsched/internal/txn"
)

// TestKWTPGCacheAccounting verifies §3.4's control saving: repeated
// evaluations inside KeepTime with no start/commit/new-edge reuse cached
// E values and pay no kwtpgtime.
func TestKWTPGCacheAccounting(t *testing.T) {
	s := NewKWTPG(testCosts, 2).(*kwtpg)
	t1 := txn.New(1, []txn.Step{r(1, 5), w(0, 1)})
	t2 := txn.New(2, []txn.Step{w(0, 1)})
	admitAll(t, s, t1, t2)
	// First evaluation of T1's write: fresh E(q) and E(q') → 2×kwtpgtime.
	out := s.Request(t1, 1, 0)
	if out.Decision != Delayed {
		t.Fatalf("decision = %v", out.Decision)
	}
	if want := testCosts.DDTime + 2*testCosts.KWTPGTime; out.CPU != want {
		t.Errorf("first eval CPU = %v, want %v", out.CPU, want)
	}
	// Immediate re-evaluation: both E values cached.
	out = s.Request(t1, 1, 1)
	if out.CPU != testCosts.DDTime {
		t.Errorf("cached eval CPU = %v, want ddtime", out.CPU)
	}
	// After KeepTime, the cache expires.
	out = s.Request(t1, 1, 1+testCosts.KeepTime)
	if want := testCosts.DDTime + 2*testCosts.KWTPGTime; out.CPU != want {
		t.Errorf("post-keeptime CPU = %v, want %v", out.CPU, want)
	}
	// A commit invalidates the cache even within KeepTime.
	out2 := s.Request(t2, 0, 2+testCosts.KeepTime)
	if out2.Decision != Granted {
		t.Fatalf("T2 grant = %v", out2.Decision)
	}
	if _, cpu := s.Commit(t2, 3+testCosts.KeepTime); cpu != 0 {
		t.Fatalf("commit cpu = %v", cpu)
	}
	out = s.Request(t1, 1, 4+testCosts.KeepTime)
	if out.Decision != Granted {
		t.Fatalf("post-commit decision = %v", out.Decision)
	}
	if want := testCosts.DDTime + testCosts.KWTPGTime; out.CPU != want {
		t.Errorf("post-commit CPU = %v, want %v (one fresh E, empty C(q))", out.CPU, want)
	}
}

// TestKZeroAdmitsOnlyConflictFree: K = 0 admits a transaction only when
// none of its declarations conflicts with any pending declaration —
// ASL-like admission but with incremental locking afterwards.
func TestKZeroAdmitsOnlyConflictFree(t *testing.T) {
	s := NewKWTPG(testCosts, 0)
	a := txn.New(1, []txn.Step{w(0, 1)})
	b := txn.New(2, []txn.Step{w(0, 1)})
	c := txn.New(3, []txn.Step{w(5, 1)})
	admitAll(t, s, a)
	if out := s.Admit(b, 0); out.Decision != Aborted {
		t.Errorf("conflicting admit at K=0 = %v, want aborted", out.Decision)
	}
	admitAll(t, s, c) // disjoint partitions are fine
}

// TestZeroStepTransaction: a transaction with no steps admits, holds
// nothing and commits cleanly under every scheduler.
func TestZeroStepTransaction(t *testing.T) {
	for _, s := range []Scheduler{
		NewNODC(), NewASL(testCosts), NewC2PL(testCosts),
		NewChain(testCosts), NewKWTPG(testCosts, 2),
	} {
		empty := txn.New(1, nil)
		if out := s.Admit(empty, 0); out.Decision != Granted {
			t.Fatalf("%s: Admit(empty) = %v", s.Name(), out.Decision)
		}
		freed, _ := s.Commit(empty, 1)
		if len(freed) != 0 {
			t.Errorf("%s: empty txn freed %v", s.Name(), freed)
		}
	}
}

// TestChainIsolatedNodesAlwaysGrantable: transactions with no conflicts
// never consult W and are granted immediately.
func TestChainIsolatedNodesAlwaysGrantable(t *testing.T) {
	s := NewChain(testCosts)
	a := txn.New(1, []txn.Step{w(0, 3)})
	b := txn.New(2, []txn.Step{w(1, 3)})
	admitAll(t, s, a, b)
	for _, tx := range []*txn.T{a, b} {
		if out := s.Request(tx, 0, 0); out.Decision != Granted {
			t.Errorf("isolated request %v = %v", tx.ID, out.Decision)
		}
	}
}

// TestASLFailedAdmitLeavesNoState: a refused ASL start must hold no locks
// and leave no declarations.
func TestASLFailedAdmitLeavesNoState(t *testing.T) {
	s := NewASL(testCosts).(*asl)
	a := txn.New(1, []txn.Step{w(0, 1)})
	b := txn.New(2, []txn.Step{r(0, 1), w(7, 2)})
	admitAll(t, s, a)
	if out := s.Admit(b, 0); out.Decision != Delayed {
		t.Fatalf("Admit(b) = %v", out.Decision)
	}
	if s.locks.Known(2) {
		t.Error("refused ASL admission left declarations behind")
	}
	if got := s.locks.Holders(7); len(got) != 0 {
		t.Errorf("refused ASL admission holds locks: %v", got)
	}
}

// TestCommitUnknownTransaction: committing a transaction the scheduler
// never admitted must not corrupt state (the simulator never does this,
// but the API should be robust).
func TestCommitUnknownTransaction(t *testing.T) {
	for _, s := range []Scheduler{
		NewASL(testCosts), NewC2PL(testCosts), NewChain(testCosts), NewKWTPG(testCosts, 2),
	} {
		ghost := txn.New(99, []txn.Step{r(0, 1)})
		freed, _ := s.Commit(ghost, 0)
		if len(freed) != 0 {
			t.Errorf("%s: ghost commit freed %v", s.Name(), freed)
		}
	}
}

// TestRequestAfterPartnerCommit: delayed requests become grantable once
// the conflicting transaction commits, across all schedulers.
func TestRequestAfterPartnerCommit(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewC2PL(testCosts) },
		func() Scheduler { return NewChain(testCosts) },
		func() Scheduler { return NewKWTPG(testCosts, 2) },
	} {
		s := mk()
		long := txn.New(1, []txn.Step{w(0, 9)})
		short := txn.New(2, []txn.Step{w(0, 1)})
		admitAll(t, s, long, short)
		if out := s.Request(long, 0, 0); out.Decision != Granted {
			t.Fatalf("%s: long grant = %v", s.Name(), out.Decision)
		}
		if out := s.Request(short, 0, 1); out.Decision != Blocked {
			t.Fatalf("%s: short = %v, want blocked", s.Name(), out.Decision)
		}
		freed, _ := s.Commit(long, 100)
		if len(freed) != 1 || freed[0] != 0 {
			t.Fatalf("%s: freed = %v", s.Name(), freed)
		}
		if out := s.Request(short, 0, 101); out.Decision != Granted {
			t.Errorf("%s: short after commit = %v", s.Name(), out.Decision)
		}
	}
}

// TestSchedulerNames pins the paper's names.
func TestSchedulerNames(t *testing.T) {
	cases := map[string]Scheduler{
		"NODC":       NewNODC(),
		"ASL":        NewASL(testCosts),
		"C2PL":       NewC2PL(testCosts),
		"CHAIN":      NewChain(testCosts),
		"K2":         NewKWTPG(testCosts, 2),
		"K7":         NewKWTPG(testCosts, 7),
		"CHAIN-C2PL": NewChainC2PL(testCosts),
		"K2-C2PL":    NewKC2PL(testCosts, 2),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestByName(t *testing.T) {
	good := map[string]string{
		"NODC": "NODC", "nodc": "NODC", "ASL": "ASL", "c2pl": "C2PL",
		"CHAIN": "CHAIN", "chain-c2pl": "CHAIN-C2PL",
		"K2": "K2", "k5": "K5", "K3-C2PL": "K3-C2PL", " K2 ": "K2",
	}
	for in, want := range good {
		f, err := ByName(in)
		if err != nil {
			t.Errorf("ByName(%q): %v", in, err)
			continue
		}
		if f.Label != want {
			t.Errorf("ByName(%q).Label = %q, want %q", in, f.Label, want)
		}
		if s := f.New(testCosts); s == nil {
			t.Errorf("ByName(%q) factory returned nil", in)
		}
	}
	for _, bad := range []string{"", "2PL", "Kx", "K-C2PL", "CHAINX", "K-2"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) succeeded", bad)
		}
	}
}
