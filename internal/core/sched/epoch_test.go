package sched

import (
	"reflect"
	"strings"
	"testing"

	"batsched/internal/obs"
	"batsched/internal/txn"
)

// disjoint returns n transactions each writing its own partition — no
// pair conflicts, so CHAIN admits all and every cluster is a singleton.
func disjoint(n int) []*txn.T {
	out := make([]*txn.T, n)
	for i := range out {
		out[i] = txn.New(txn.ID(i+1), []txn.Step{w(txn.PartitionID(i), 1)})
	}
	return out
}

// TestEpochAdmitBatchMatchesSequentialAdmit pins the BatchAdmitter
// contract: AdmitBatch decides exactly as per-transaction Admit calls
// in slice order, and leaves the scheduler in a state that grants the
// same subsequent requests.
func TestEpochAdmitBatchMatchesSequentialAdmit(t *testing.T) {
	mk := func() (t1, t2, t3 *txn.T) { return figure1() }

	seq := NewEpoch(testCosts)
	s1, s2, s3 := mk()
	var seqDecisions []Decision
	for _, tx := range []*txn.T{s1, s2, s3} {
		seqDecisions = append(seqDecisions, seq.Admit(tx, 0).Decision)
	}

	bat := NewEpoch(testCosts).(*epoch)
	b1, b2, b3 := mk()
	out := bat.AdmitBatch([]*txn.T{b1, b2, b3}, 0)
	var batDecisions []Decision
	for _, o := range out.Outcomes {
		batDecisions = append(batDecisions, o.Decision)
	}
	if !reflect.DeepEqual(seqDecisions, batDecisions) {
		t.Fatalf("decisions diverged: sequential %v, batch %v", seqDecisions, batDecisions)
	}
	if out.Admitted != 3 {
		t.Fatalf("admitted %d of 3", out.Admitted)
	}
	// Figure 1: T1–T2 and T2–T3 conflict, T1–T3 do not → one cluster.
	if out.Clusters != 1 {
		t.Fatalf("clusters = %d, want 1", out.Clusters)
	}
	// Example 3.3 must still hold against the batch-admitted state.
	if o := bat.Request(b2, 0, 0); o.Decision != Delayed {
		t.Errorf("Request(r2) after batch admit = %v, want delayed", o.Decision)
	}
	if o := bat.Request(b1, 0, 0); o.Decision != Granted {
		t.Errorf("Request(r1) after batch admit = %v, want granted", o.Decision)
	}
}

// TestEpochBatchAmortizesRecomputes is the mode's reason to exist, in
// miniature: N conflict-free transactions admitted one-by-one with
// their first requests interleaved force one W recomputation per
// transaction (each admission invalidates the plan the next request
// must rebuild), while the same N admitted as one batch recompute W
// exactly once.
func TestEpochBatchAmortizesRecomputes(t *testing.T) {
	const n = 8

	drip := NewEpoch(testCosts).(*epoch)
	for _, tx := range disjoint(n) {
		if o := drip.Admit(tx, 0); o.Decision != Granted {
			t.Fatalf("drip admit %v: %v", tx.ID, o.Decision)
		}
		if o := drip.Request(tx, 0, 0); o.Decision != Granted {
			t.Fatalf("drip request %v: %v", tx.ID, o.Decision)
		}
	}
	if drip.recomputes != n {
		t.Fatalf("drip recomputes = %d, want %d", drip.recomputes, n)
	}

	bat := NewEpoch(testCosts).(*epoch)
	ts := disjoint(n)
	out := bat.AdmitBatch(ts, 0)
	if out.Admitted != n {
		t.Fatalf("batch admitted %d of %d", out.Admitted, n)
	}
	if out.CPU != testCosts.ChainTime {
		t.Fatalf("batch CPU = %v, want one ChainTime (%v)", out.CPU, testCosts.ChainTime)
	}
	for i, o := range out.Outcomes {
		if o.CPU != testCosts.DDTime {
			t.Fatalf("outcome %d CPU = %v, want DDTime", i, o.CPU)
		}
	}
	if out.Clusters != n {
		t.Fatalf("clusters = %d, want %d singletons", out.Clusters, n)
	}
	for _, tx := range ts {
		if o := bat.Request(tx, 0, 0); o.Decision != Granted {
			t.Fatalf("batch request %v: %v", tx.ID, o.Decision)
		}
	}
	if bat.recomputes != 1 {
		t.Errorf("batch recomputes = %d, want 1", bat.recomputes)
	}
}

// TestConflictClusters checks the union-find partition on a known
// shape: {0,1} conflict, {2,3} conflict, 4 is alone.
func TestConflictClusters(t *testing.T) {
	ts := []*txn.T{
		txn.New(1, []txn.Step{w(0, 1)}),
		txn.New(2, []txn.Step{r(0, 1), w(5, 1)}),
		txn.New(3, []txn.Step{w(1, 1)}),
		txn.New(4, []txn.Step{w(1, 2)}),
		txn.New(5, []txn.Step{r(9, 1)}),
	}
	got := ConflictClusters(ts)
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ConflictClusters = %v, want %v", got, want)
	}
	if ConflictClusters(nil) != nil {
		t.Error("ConflictClusters(nil) != nil")
	}
}

// TestObservedKeepsBatchSurface pins the decorator rule: wrapping a
// batch-capable scheduler preserves the BatchAdmitter surface, wrapping
// any other scheduler must NOT invent one.
func TestObservedKeepsBatchSurface(t *testing.T) {
	m := obs.NewMetrics()
	wrapped := Observed(NewEpoch(testCosts), m)
	ba, ok := wrapped.(BatchAdmitter)
	if !ok {
		t.Fatal("Observed(EPOCH) lost the BatchAdmitter surface")
	}
	if _, ok := Observed(NewChain(testCosts), m).(BatchAdmitter); ok {
		t.Fatal("Observed(CHAIN) invented a BatchAdmitter surface")
	}
	// Forwarded batches emit one admit decision per member.
	out := ba.AdmitBatch(disjoint(3), 0)
	if out.Admitted != 3 {
		t.Fatalf("admitted %d", out.Admitted)
	}
	sm := m.Sched("EPOCH")
	if sm == nil {
		t.Fatal("no EPOCH metrics")
	}
	if sm.AdmitDecisions()["granted"] != 3 {
		t.Errorf("observed %d granted admits, want 3", sm.AdmitDecisions()["granted"])
	}
}

// TestRegistryLookup covers the default registry: exact names, family
// names, the EPOCH entry, and the self-documenting unknown-name error.
func TestRegistryLookup(t *testing.T) {
	f, err := Lookup("epoch")
	if err != nil {
		t.Fatal(err)
	}
	if f.Label != "EPOCH" {
		t.Fatalf("label %q", f.Label)
	}
	s := f.New(testCosts)
	if s.Name() != "EPOCH" {
		t.Fatalf("name %q", s.Name())
	}
	if _, ok := s.(BatchAdmitter); !ok {
		t.Fatal("registry EPOCH is not a BatchAdmitter")
	}
	if _, err := Lookup("EPOCHX"); err == nil {
		t.Fatal("unknown name did not error")
	} else {
		for _, wantName := range []string{"CHAIN", "EPOCH", "K<k>", "K<k>-C2PL"} {
			if !strings.Contains(err.Error(), wantName) {
				t.Errorf("unknown-name error does not list %s: %v", wantName, err)
			}
		}
	}
}

// TestRegistryRegister covers custom registries: registration order in
// Names, duplicate and invalid registrations, family matching.
func TestRegistryRegister(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("mine", func() Factory { return ChainFactory() }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("MINE", func() Factory { return ChainFactory() }); err == nil {
		t.Fatal("duplicate (case-insensitive) registration did not error")
	}
	if err := r.Register("", func() Factory { return ChainFactory() }); err == nil {
		t.Fatal("empty name registration did not error")
	}
	if err := r.Register("x", nil); err == nil {
		t.Fatal("nil factory registration did not error")
	}
	if _, err := r.Lookup(" mine "); err != nil {
		t.Fatalf("trimmed lookup: %v", err)
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "MINE" {
		t.Fatalf("Names = %v", names)
	}
}

// TestRegistryFamilyStrictness pins the family parsers: K names must be
// exactly K<digits> (with optional -C2PL suffix) — trailing garbage
// that a lenient Sscanf would accept is rejected.
func TestRegistryFamilyStrictness(t *testing.T) {
	for _, bad := range []string{"K2X", "K2-C2PLX", "K2.5", "K-3", "K2-"} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", bad)
		}
	}
	for _, good := range []string{"K0", "K12", "K12-C2PL"} {
		if _, err := Lookup(good); err != nil {
			t.Errorf("Lookup(%q): %v", good, err)
		}
	}
}
