package sched

import (
	"fmt"

	"batsched/internal/core/chainopt"
	"batsched/internal/core/wtpg"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// chain is the Chain-WTPG scheduler CC1 (§3.2, "CHAIN"). It restricts the
// WTPG to chain form so the globally optimal full SR-order W — the one
// whose resolved WTPG has the shortest critical path — is computable in
// polynomial time, and then grants a lock-request only if the resolutions
// it implies are consistent with W.
//
// Per §3.4, W is recomputed only when a transaction has started or
// committed since the last computation or when KeepTime has elapsed;
// otherwise the most recently computed W is reused.
type chain struct {
	wtpgBase
	// plan maps each conflicting pair to the transaction W puts first.
	plan       map[pairKey]txn.ID
	planAt     event.Time
	planDirty  bool
	havePlan   bool
	recomputes int
	// degraded is set when the WTPG's chain form breaks or W becomes
	// uncomputable — a state pure CHAIN operation never produces, but
	// abort recovery and defensive programming must survive. In degraded
	// mode CHAIN admits only transactions that conflict with nothing live
	// (ASL-like: isolated nodes whose every request is trivially
	// grantable) and grants requests under C2PL's cautious cycle test
	// instead of consulting W, until the graph drains and full CHAIN
	// operation is restored. See docs/ROBUSTNESS.md.
	degraded bool
}

type pairKey struct{ a, b txn.ID }

func pairOf(a, b txn.ID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// NewChain returns a Chain-WTPG scheduler.
func NewChain(costs Costs) Scheduler {
	return &chain{wtpgBase: newWTPGBase(costs), plan: make(map[pairKey]txn.ID)}
}

func (c *chain) Name() string { return "CHAIN" }

func (c *chain) Admit(t *txn.T, now event.Time) Outcome {
	if c.degraded {
		// Degraded admission: only transactions that conflict with
		// nothing live may enter, so the broken component drains while
		// isolated work keeps flowing.
		if err := c.register(t); err != nil {
			return Outcome{Decision: Delayed, CPU: c.costs.DDTime}
		}
		if c.graph.ConflictDegree(t.ID) > 0 {
			c.unregister(t)
			return Outcome{Decision: Aborted, CPU: c.costs.DDTime}
		}
		return Outcome{Decision: Granted, CPU: c.costs.DDTime}
	}
	if err := c.register(t); err != nil {
		return Outcome{Decision: Delayed, CPU: c.costs.DDTime}
	}
	// Step 0 of CC1: the WTPG must remain chain-form, tested by graph
	// traversal; otherwise the new transaction is aborted (resubmitted).
	if _, ok := c.graph.Chains(); !ok {
		c.unregister(t)
		return Outcome{Decision: Aborted, CPU: c.costs.DDTime}
	}
	c.planDirty = true
	return Outcome{Decision: Granted, CPU: c.costs.DDTime}
}

// refreshPlan recomputes W when §3.4's conditions demand it. It reports
// whether a recomputation happened (for CPU accounting).
func (c *chain) refreshPlan(now event.Time) (bool, error) {
	if c.havePlan && !c.planDirty && now-c.planAt < c.costs.KeepTime {
		return false, nil
	}
	chains, ok := c.graph.Chains()
	if !ok {
		return false, fmt.Errorf("sched: CHAIN invariant violated: WTPG not chain-form")
	}
	plan := make(map[pairKey]txn.ID, len(c.plan))
	for _, ch := range chains {
		if len(ch) < 2 {
			continue
		}
		in, err := c.chainInput(ch)
		if err != nil {
			return false, err
		}
		sol, err := chainopt.Solve(in)
		if err != nil {
			return false, err
		}
		for k := 0; k+1 < len(ch); k++ {
			if sol.Orient[k] == chainopt.Down {
				plan[pairOf(ch[k], ch[k+1])] = ch[k]
			} else {
				plan[pairOf(ch[k], ch[k+1])] = ch[k+1]
			}
		}
	}
	c.plan = plan
	c.planAt = now
	c.planDirty = false
	c.havePlan = true
	c.recomputes++
	return true, nil
}

// chainInput converts one WTPG chain into the optimizer's input, carrying
// live w(T0→Ti) values, per-direction edge weights, and the orientations
// already fixed by earlier grants.
func (c *chain) chainInput(ch wtpg.Chain) (chainopt.Chain, error) {
	n := len(ch)
	in := chainopt.Chain{
		R:     make([]float64, n),
		Down:  make([]float64, n-1),
		Up:    make([]float64, n-1),
		Fixed: make([]chainopt.Orientation, n-1),
	}
	for k, id := range ch {
		in.R[k] = c.graph.W0(id)
	}
	for k := 0; k+1 < n; k++ {
		e, ok := c.graph.EdgeBetween(ch[k], ch[k+1])
		if !ok {
			return in, fmt.Errorf("sched: chain edge (%v,%v) missing", ch[k], ch[k+1])
		}
		down, up := e.WAB, e.WBA
		if e.A != ch[k] {
			down, up = up, down
		}
		in.Down[k], in.Up[k] = down, up
		if e.Dir != wtpg.Unresolved {
			if e.From() == ch[k] {
				in.Fixed[k] = chainopt.Down
			} else {
				in.Fixed[k] = chainopt.Up
			}
		}
	}
	return in, nil
}

func (c *chain) Request(t *txn.T, step int, now event.Time) Outcome {
	cpu := c.costs.DDTime
	if c.blocked(t, step) {
		return Outcome{Decision: Blocked, CPU: cpu}
	}
	if !c.degraded {
		recomputed, err := c.refreshPlan(now)
		if err != nil {
			// W is uncomputable (chain form broken, optimizer failure):
			// degrade instead of delaying this request forever.
			c.degrade()
		} else {
			if recomputed {
				cpu += c.costs.ChainTime
			}
			targets := c.impliedTargets(t, step)
			// Step 3 of CC1: delay if any implied resolution disagrees
			// with W.
			for _, to := range targets {
				if first, ok := c.plan[pairOf(t.ID, to)]; !ok || first != t.ID {
					return Outcome{Decision: Delayed, CPU: cpu}
				}
			}
			if err := c.grant(t, step, targets); err != nil {
				return Outcome{Decision: Delayed, CPU: cpu}
			}
			return Outcome{Decision: Granted, CPU: cpu}
		}
	}
	// Degraded grants: C2PL's cautious cycle test, safe on any graph.
	targets := c.impliedTargets(t, step)
	if c.graph.WouldCycleFrom(t.ID, targets) {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	if err := c.grant(t, step, targets); err != nil {
		return Outcome{Decision: Delayed, CPU: cpu}
	}
	return Outcome{Decision: Granted, CPU: cpu}
}

func (c *chain) ObjectDone(t *txn.T, objects float64, now event.Time) {
	c.objectDone(t, objects)
}

func (c *chain) Commit(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := c.commit(t)
	c.planDirty = true
	c.maybeRestore()
	return freed, 0
}

// Abort recovers from an external abort of an admitted transaction: the
// base splice repairs the WTPG, the cached W is invalidated, and chain
// form is re-verified — if it no longer holds the scheduler degrades
// rather than wedging on an uncomputable plan.
func (c *chain) Abort(t *txn.T, now event.Time) ([]txn.PartitionID, event.Time) {
	freed := c.abort(t)
	c.planDirty = true
	if !c.degraded {
		if _, ok := c.graph.Chains(); !ok {
			c.degrade()
		}
	}
	c.maybeRestore()
	return freed, c.costs.DDTime
}

// degrade enters the ASL/C2PL fallback mode and drops the stale plan.
func (c *chain) degrade() {
	c.degraded = true
	c.havePlan = false
	c.plan = make(map[pairKey]txn.ID)
}

// maybeRestore returns to full CHAIN operation once the graph has
// drained: an empty WTPG is trivially chain-form again.
func (c *chain) maybeRestore() {
	if c.degraded && len(c.live) == 0 {
		c.degraded = false
		c.planDirty = true
	}
}

// Degraded reports whether the scheduler is running in its fallback
// mode (see Degradable).
func (c *chain) Degraded() bool { return c.degraded }
