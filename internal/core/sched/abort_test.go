package sched

import (
	"testing"

	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

func wstep(p txn.PartitionID, cost float64) txn.Step {
	return txn.Step{Mode: txn.Write, Part: p, Cost: cost}
}

// abortTriangle builds the C2PL scenario A→B→C with a surviving
// unresolved (A,C) conflicting-edge: A = w(P0) w(P2), B = w(P0) w(P1),
// C = w(P1) w(P2).
func abortTriangle(t *testing.T, s Scheduler) (a, b, c *txn.T) {
	t.Helper()
	a = txn.New(1, []txn.Step{wstep(0, 2), wstep(2, 2)})
	b = txn.New(2, []txn.Step{wstep(0, 2), wstep(1, 2)})
	c = txn.New(3, []txn.Step{wstep(1, 2), wstep(2, 2)})
	now := event.Time(0)
	for _, tx := range []*txn.T{a, b, c} {
		now++
		if out := s.Admit(tx, now); out.Decision != Granted {
			t.Fatalf("admit %v: %v", tx.ID, out.Decision)
		}
	}
	if out := s.Request(a, 0, 10); out.Decision != Granted { // resolves A→B on P0
		t.Fatalf("A step 0: %v", out.Decision)
	}
	if out := s.Request(b, 1, 11); out.Decision != Granted { // resolves B→C on P1
		t.Fatalf("B step 1: %v", out.Decision)
	}
	return a, b, c
}

func TestAbortSplicesAndReleases(t *testing.T) {
	s := NewC2PL(Costs{DDTime: 1})
	a, b, c := abortTriangle(t, s)
	_ = a
	g := s.(GraphHolder).Graph()
	if _, _, ok := g.Resolved(a.ID, c.ID); ok {
		t.Fatal("(A,C) must be unresolved before the abort")
	}

	freed, _ := AbortTxn(s, b, 20)
	// B held P0? No — B held P1 (step 1 granted); its P0 access was a
	// pending declaration. Only P1 frees.
	if len(freed) != 1 || freed[0] != txn.PartitionID(1) {
		t.Fatalf("freed = %v, want [P1]", freed)
	}
	if g.Has(b.ID) {
		t.Fatal("B must leave the WTPG")
	}
	from, to, ok := g.Resolved(a.ID, c.ID)
	if !ok || from != a.ID || to != c.ID {
		t.Fatalf("(A,C) = %v→%v ok=%v, want spliced A→C", from, to, ok)
	}
	// C can now take P1 (B's lock is gone) — but A→C is resolved, so C's
	// grants must stay consistent with it; P1 conflicts only with B,
	// which is dead, so the grant goes through.
	if out := s.Request(c, 0, 21); out.Decision != Granted {
		t.Fatalf("C step 0 after abort: %v", out.Decision)
	}
	if err := s.(interface{ CheckInvariants() error }).CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Drain: A then C finish their remaining steps in spliced order.
	if out := s.Request(a, 1, 22); out.Decision != Granted {
		t.Fatalf("A step 1: %v", out.Decision)
	}
	s.Commit(a, 23)
	if out := s.Request(c, 1, 24); out.Decision != Granted {
		t.Fatalf("C step 1: %v", out.Decision)
	}
	s.Commit(c, 25)
	if g.Len() != 0 {
		t.Fatalf("graph not drained: %d nodes", g.Len())
	}
}

func TestAbortedTransactionCanBeResubmitted(t *testing.T) {
	for _, f := range []Factory{ASLFactory(), C2PLFactory(), ChainFactory(), KWTPGFactory(2)} {
		s := f.New(Costs{DDTime: 1, KeepTime: 100})
		tx := txn.New(7, []txn.Step{wstep(0, 1), wstep(1, 1)})
		if out := s.Admit(tx, 1); out.Decision != Granted {
			t.Fatalf("%s: admit: %v", f.Label, out.Decision)
		}
		if out := s.Request(tx, 0, 2); out.Decision != Granted {
			t.Fatalf("%s: step 0: %v", f.Label, out.Decision)
		}
		AbortTxn(s, tx, 3)
		// The same transaction resubmits after the retry delay; all state
		// must have been cleaned so the second life is indistinguishable.
		if out := s.Admit(tx, 10); out.Decision != Granted {
			t.Fatalf("%s: re-admit after abort: %v", f.Label, out.Decision)
		}
		for step := range tx.Steps {
			if out := s.Request(tx, step, event.Time(11+step)); out.Decision != Granted {
				t.Fatalf("%s: step %d second life: %v", f.Label, step, out.Decision)
			}
			s.ObjectDone(tx, tx.Steps[step].Cost, event.Time(11+step))
		}
		s.Commit(tx, 20)
		if ci, ok := s.(interface{ CheckInvariants() error }); ok {
			if err := ci.CheckInvariants(); err != nil {
				t.Fatalf("%s: invariants: %v", f.Label, err)
			}
		}
	}
}

func TestChainDegradeAndRestore(t *testing.T) {
	ring := obs.NewRing(64)
	s := Observed(NewChain(Costs{DDTime: 1, ChainTime: 1, KeepTime: 100}), ring)
	g := s.(GraphHolder).Graph()

	// Admit four isolated transactions, then corrupt the conflict graph
	// behind the scheduler's back so an abort finds degree 3 — the
	// non-chain state pure operation never produces.
	txs := make([]*txn.T, 5)
	for i := range txs {
		txs[i] = txn.New(txn.ID(i+1), []txn.Step{wstep(txn.PartitionID(10+i), 1)})
		if out := s.Admit(txs[i], event.Time(i)); out.Decision != Granted {
			t.Fatalf("admit %d: %v", i, out.Decision)
		}
	}
	for _, other := range []txn.ID{2, 3, 4} {
		if err := g.AddConflict(1, other, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	AbortTxn(s, txs[4], 10) // T5 was isolated; degree of T1 is still 3
	if d, ok := s.(Degradable); !ok || !d.Degraded() {
		t.Fatal("scheduler should be degraded after abort on a non-chain graph")
	}

	// Degraded admission: conflicting transactions are refused, isolated
	// ones still enter.
	conflicting := txn.New(20, []txn.Step{wstep(10, 1)}) // conflicts with T1
	if out := s.Admit(conflicting, 11); out.Decision != Aborted {
		t.Fatalf("conflicting admit while degraded: %v, want aborted", out.Decision)
	}
	isolated := txn.New(21, []txn.Step{wstep(99, 1)})
	if out := s.Admit(isolated, 12); out.Decision != Granted {
		t.Fatalf("isolated admit while degraded: %v, want granted", out.Decision)
	}

	// Degraded grants use the cautious test; the component drains.
	now := event.Time(20)
	for _, tx := range []*txn.T{txs[0], txs[1], txs[2], txs[3], isolated} {
		now++
		if out := s.Request(tx, 0, now); out.Decision != Granted {
			t.Fatalf("%v step 0 while degraded: %v", tx.ID, out.Decision)
		}
		now++
		s.Commit(tx, now)
	}
	if d := s.(Degradable); d.Degraded() {
		t.Fatal("scheduler should restore once the graph drains")
	}
	// Full CHAIN operation is back: a fresh admission passes the
	// chain-form test and runs normally.
	fresh := txn.New(30, []txn.Step{wstep(10, 1)})
	if out := s.Admit(fresh, now+1); out.Decision != Granted {
		t.Fatalf("admit after restore: %v", out.Decision)
	}
	if out := s.Request(fresh, 0, now+2); out.Decision != Granted {
		t.Fatalf("request after restore: %v", out.Decision)
	}
	s.Commit(fresh, now+3)

	var degrades, restores, aborts int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindDegrade:
			degrades++
		case obs.KindRestore:
			restores++
		case obs.KindAbort:
			aborts++
		}
	}
	if degrades != 1 || restores != 1 || aborts != 1 {
		t.Fatalf("events: degrades=%d restores=%d aborts=%d, want 1/1/1", degrades, restores, aborts)
	}
}
