//go:build !wtpgshadow

package wtpg

// shadowEnabled is false in default builds: no Ref shadow is attached and
// the compiler eliminates every mirroring branch.
const shadowEnabled = false
