package wtpg

import (
	"testing"

	"batsched/internal/txn"
)

// buildTriangle returns a graph over {1,2,3} with conflicting-edges
// (1,2), (2,3) and (1,3), all unresolved.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for id := txn.ID(1); id <= 3; id++ {
		if err := g.AddNode(id, 10); err != nil {
			t.Fatalf("AddNode(%v): %v", id, err)
		}
	}
	for _, pair := range [][2]txn.ID{{1, 2}, {2, 3}, {1, 3}} {
		if err := g.AddConflict(pair[0], pair[1], 5, 5); err != nil {
			t.Fatalf("AddConflict(%v): %v", pair, err)
		}
	}
	return g
}

func TestSpliceRepairsPrecedence(t *testing.T) {
	g := buildTriangle(t)
	// Fix 1→2 and 2→3, leave (1,3) unresolved, then abort 2.
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	var observed [][2]txn.ID
	g.OnResolve = func(from, to txn.ID) { observed = append(observed, [2]txn.ID{from, to}) }
	spliced := g.Splice(2)
	if len(spliced) != 1 || spliced[0] != (Resolution{From: 1, To: 3}) {
		t.Fatalf("spliced = %v, want [1→3]", spliced)
	}
	if from, to, ok := g.Resolved(1, 3); !ok || from != 1 || to != 3 {
		t.Fatalf("(1,3) resolved %v→%v ok=%v, want 1→3", from, to, ok)
	}
	if g.Has(2) || g.Len() != 2 {
		t.Fatalf("node 2 should be gone, len=%d", g.Len())
	}
	if len(observed) != 1 || observed[0] != [2]txn.ID{1, 3} {
		t.Fatalf("OnResolve saw %v, want [[1 3]]", observed)
	}
	if _, err := g.CriticalPath(); err != nil {
		t.Fatalf("critical path after splice: %v", err)
	}
}

func TestSpliceSkipsAlreadyResolvedPairs(t *testing.T) {
	g := buildTriangle(t)
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	// (1,3) already carries its own resolution; the splice must not touch it.
	if err := g.Resolve(1, 3); err != nil {
		t.Fatal(err)
	}
	if spliced := g.Splice(2); len(spliced) != 0 {
		t.Fatalf("spliced = %v, want none", spliced)
	}
	if from, to, ok := g.Resolved(1, 3); !ok || from != 1 || to != 3 {
		t.Fatalf("(1,3) = %v→%v ok=%v, want untouched 1→3", from, to, ok)
	}
}

func TestSpliceRetractsUnresolvedEdges(t *testing.T) {
	g := buildTriangle(t)
	// Nothing resolved: aborting 2 must just drop the node and its
	// conflicting-edges, leaving (1,3) unresolved.
	if spliced := g.Splice(2); len(spliced) != 0 {
		t.Fatalf("spliced = %v, want none", spliced)
	}
	if _, ok := g.EdgeBetween(1, 2); ok {
		t.Fatal("edge (1,2) should be retracted")
	}
	if e, ok := g.EdgeBetween(1, 3); !ok || e.Dir != Unresolved {
		t.Fatalf("edge (1,3) = %+v ok=%v, want unresolved survivor", e, ok)
	}
}

func TestSpliceNoDirectConflict(t *testing.T) {
	// 1→2→3 but 1 and 3 do not conflict: the splice has no edge to
	// re-orient and the transitive order simply dissolves.
	g := New()
	for id := txn.ID(1); id <= 3; id++ {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddConflict(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(2, 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	if spliced := g.Splice(2); len(spliced) != 0 {
		t.Fatalf("spliced = %v, want none", spliced)
	}
	if _, _, ok := g.Resolved(1, 3); ok {
		t.Fatal("no precedence should exist between 1 and 3")
	}
}

func TestSpliceUnknownIsNoop(t *testing.T) {
	g := buildTriangle(t)
	if spliced := g.Splice(99); spliced != nil {
		t.Fatalf("spliced = %v, want nil", spliced)
	}
	if g.Len() != 3 {
		t.Fatalf("len = %d, want 3", g.Len())
	}
}

func TestSpliceManyPredsSuccs(t *testing.T) {
	// Star around 5: preds {1,2} and succs {3,4}, with surviving
	// conflicting-edges (1,3), (1,4), (2,3) unresolved and no (2,4) edge.
	g := New()
	for id := txn.ID(1); id <= 5; id++ {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustConflict := func(a, b txn.ID) {
		t.Helper()
		if err := g.AddConflict(a, b, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustConflict(1, 5)
	mustConflict(2, 5)
	mustConflict(5, 3)
	mustConflict(5, 4)
	mustConflict(1, 3)
	mustConflict(1, 4)
	mustConflict(2, 3)
	for _, r := range []Resolution{{1, 5}, {2, 5}, {5, 3}, {5, 4}} {
		if err := g.Resolve(r.From, r.To); err != nil {
			t.Fatal(err)
		}
	}
	spliced := g.Splice(5)
	want := []Resolution{{1, 3}, {1, 4}, {2, 3}}
	if len(spliced) != len(want) {
		t.Fatalf("spliced = %v, want %v", spliced, want)
	}
	for i, r := range want {
		if spliced[i] != r {
			t.Fatalf("spliced[%d] = %v, want %v", i, spliced[i], r)
		}
	}
	if _, err := g.CriticalPath(); err != nil {
		t.Fatalf("critical path: %v", err)
	}
}
