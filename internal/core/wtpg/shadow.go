package wtpg

import "fmt"

// Shadow cross-checking: builds tagged `wtpgshadow` (shadow_enabled.go)
// attach a Ref engine to every Graph, mirror each mutation into it, and
// compare the engines' answers on the load-bearing queries (CriticalPath,
// WouldCycleFrom), panicking on the first divergence. The default build
// (shadow_disabled.go) sets shadowEnabled to false and the compiler
// removes every mirroring branch, so the production hot path pays
// nothing. `make verify` runs the core test suites under the tag.

// ShadowEnabled reports whether this build cross-checks the slot engine
// against the Ref engine (`-tags wtpgshadow`).
func ShadowEnabled() bool { return shadowEnabled }

// shadowCheck panics when the Ref engine disagrees with the slot engine
// about whether a mutation succeeds.
func (g *Graph) shadowCheck(op string, refErr, engineErr error) {
	if (refErr == nil) != (engineErr == nil) {
		panic(fmt.Sprintf("wtpg: shadow divergence in %s: ref err=%v, engine err=%v", op, refErr, engineErr))
	}
}

// shadowDiverged reports a query-result divergence between the engines.
func (g *Graph) shadowDiverged(op string, engine, ref interface{}) {
	panic(fmt.Sprintf("wtpg: shadow divergence in %s: engine=%v, ref=%v", op, engine, ref))
}
