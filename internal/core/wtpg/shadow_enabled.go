//go:build wtpgshadow

package wtpg

// shadowEnabled is true under the wtpgshadow build tag: every Graph
// carries a Ref shadow, mutations are mirrored, and CriticalPath /
// WouldCycleFrom answers are cross-checked, panicking on divergence.
const shadowEnabled = true
