package wtpg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format, mirroring the paper's
// figures: precedence-edges are solid arrows labelled with their weight,
// conflicting-edges are dashed double-headed arrows labelled with both
// candidate weights, and every node shows its live w(T0→Ti).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  T0 [shape=circle];\n")
	b.WriteString("  Tf [shape=doublecircle];\n")
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "  %v [shape=box];\n", id)
		fmt.Fprintf(&b, "  T0 -> %v [label=\"%g\"];\n", id, g.W0(id))
		fmt.Fprintf(&b, "  %v -> Tf [label=\"0\", style=dotted];\n", id)
	}
	for _, e := range g.Edges() {
		if e.Dir == Unresolved {
			fmt.Fprintf(&b, "  %v -> %v [dir=both, style=dashed, label=\"%g/%g\"];\n",
				e.A, e.B, e.WAB, e.WBA)
		} else {
			fmt.Fprintf(&b, "  %v -> %v [label=\"%g\"];\n", e.From(), e.To(), e.Weight())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
