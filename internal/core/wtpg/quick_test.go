package wtpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batsched/internal/txn"
)

// buildRandomGraph decodes a byte string into a WTPG with some resolved
// edges, deterministically.
func buildRandomGraph(data []byte) *Graph {
	g := New()
	n := 2 + int(len(data))%8
	for id := txn.ID(1); id <= txn.ID(n); id++ {
		w0 := float64(id % 7)
		_ = g.AddNode(id, w0)
	}
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b
	}
	for a := txn.ID(1); a <= txn.ID(n); a++ {
		for b := a + 1; b <= txn.ID(n); b++ {
			v := next()
			if v%3 == 0 {
				_ = g.AddConflict(a, b, float64(v%11), float64(v%13))
				if v%2 == 0 {
					from, to := a, b
					if v%4 == 0 {
						from, to = b, a
					}
					if !g.WouldCycle([]Resolution{{From: from, To: to}}) {
						_ = g.Resolve(from, to)
					}
				}
			}
		}
	}
	return g
}

// Property: WouldCycleFrom is equivalent to the general WouldCycle with
// single-source resolutions.
func TestQuickWouldCycleFromEquivalence(t *testing.T) {
	f := func(data []byte, srcRaw uint8, mask uint16) bool {
		g := buildRandomGraph(data)
		nodes := g.Nodes()
		src := nodes[int(srcRaw)%len(nodes)]
		var targets []txn.ID
		var res []Resolution
		for i, id := range nodes {
			if id == src {
				continue
			}
			if mask&(1<<uint(i%16)) != 0 {
				targets = append(targets, id)
				res = append(res, Resolution{From: src, To: id})
			}
		}
		return g.WouldCycleFrom(src, targets) == g.WouldCycle(res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConflictWeights is symmetric under argument swap and agrees
// with a naive max-over-conflicting-pairs computation.
func TestQuickConflictWeightsSymmetry(t *testing.T) {
	mkTxn := func(id txn.ID, data []byte) *txn.T {
		n := 1 + len(data)%4
		steps := make([]txn.Step, n)
		for i := range steps {
			b := byte(0)
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			steps[i] = txn.Step{
				Mode: txn.Mode(b % 2),
				Part: txn.PartitionID(b % 5),
				Cost: float64(b%9) + 0.5,
			}
		}
		return txn.New(id, steps)
	}
	f := func(da, db []byte) bool {
		a := mkTxn(1, da)
		b := mkTxn(2, db)
		wab, wba, ok := ConflictWeights(a, b)
		wba2, wab2, ok2 := ConflictWeights(b, a)
		if ok != ok2 || (ok && (wab != wab2 || wba != wba2)) {
			return false
		}
		// Naive recomputation.
		nab, nba, nok := -1.0, -1.0, false
		for i, sa := range a.Steps {
			for j, sb := range b.Steps {
				if !sa.Conflicts(sb) {
					continue
				}
				nok = true
				if d := b.Due(j); d > nab {
					nab = d
				}
				if d := a.Due(i); d > nba {
					nba = d
				}
			}
		}
		if nok != ok {
			return false
		}
		return !ok || (nab == wab && nba == wba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path is at least every node's w0 and at least
// every resolved edge's source-w0 + weight.
func TestQuickCriticalPathLowerBounds(t *testing.T) {
	f := func(data []byte) bool {
		g := buildRandomGraph(data)
		cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		for _, id := range g.Nodes() {
			if cp < g.W0(id) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if e.Dir == Unresolved {
				continue
			}
			if cp < g.W0(e.From())+e.Weight() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is observationally identical and independent.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(data []byte) bool {
		g := buildRandomGraph(data)
		c := g.Clone()
		cpG, err1 := g.CriticalPath()
		cpC, err2 := c.CriticalPath()
		if err1 != nil || err2 != nil || cpG != cpC {
			return false
		}
		if len(g.Edges()) != len(c.Edges()) {
			return false
		}
		// Mutating the clone leaves the original untouched.
		nodes := c.Nodes()
		c.SetW0(nodes[0], 1e6)
		cpG2, _ := g.CriticalPath()
		return cpG2 == cpG
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// largeStarGraph models the overloaded-C2PL shape: a few lock holders
// with many pending declarers.
func largeStarGraph(nHolders, nWaiters int) (*Graph, []txn.ID) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	id := txn.ID(1)
	var holders, waiters []txn.ID
	for i := 0; i < nHolders; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		holders = append(holders, id)
		id++
	}
	for i := 0; i < nWaiters; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		waiters = append(waiters, id)
		id++
	}
	for _, h := range holders {
		for _, w := range waiters {
			_ = g.AddConflict(h, w, float64(rng.Intn(10)), float64(rng.Intn(10)))
			_ = g.Resolve(h, w)
		}
	}
	return g, waiters
}

func BenchmarkWouldCycleFromStar(b *testing.B) {
	g, waiters := largeStarGraph(16, 500)
	src := waiters[0]
	targets := waiters[1:100]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.WouldCycleFrom(src, targets) {
			b.Fatal("unexpected cycle")
		}
	}
}

func BenchmarkCriticalPathStar(b *testing.B) {
	g, _ := largeStarGraph(16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneStar(b *testing.B) {
	g, _ := largeStarGraph(16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

// ---------------------------------------------------------------------------
// Differential properties: the slot engine (Graph) must agree exactly —
// same values, same errors, same iteration-visible orderings — with the
// map-based reference engine (Ref) under arbitrary mutation sequences.
// ---------------------------------------------------------------------------

// diffPair drives a Graph and a Ref through the identical operation and
// reports whether their observable results matched.
type diffPair struct {
	g    *Graph
	r    *Ref
	live []txn.ID
	next txn.ID
}

func newDiffPair() *diffPair {
	return &diffPair{g: New(), r: NewRef(), next: 1}
}

func (p *diffPair) pick(b byte) txn.ID { return p.live[int(b)%len(p.live)] }

func (p *diffPair) drop(id txn.ID) {
	for i, v := range p.live {
		if v == id {
			p.live = append(p.live[:i], p.live[i+1:]...)
			return
		}
	}
}

func sameErr(a, b error) bool { return (a == nil) == (b == nil) }

func sameIDs(a, b []txn.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b map[txn.ID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func edgeMap(es []Edge) map[pairKey]Edge {
	m := make(map[pairKey]Edge, len(es))
	for _, e := range es {
		m[keyOf(e.A, e.B)] = e
	}
	return m
}

// sameState compares every observable of the two engines.
func (p *diffPair) sameState(t *testing.T) bool {
	t.Helper()
	if p.g.Len() != p.r.Len() {
		t.Logf("Len: engine=%d ref=%d", p.g.Len(), p.r.Len())
		return false
	}
	if !sameIDs(p.g.Nodes(), p.r.Nodes()) {
		t.Logf("Nodes: engine=%v ref=%v", p.g.Nodes(), p.r.Nodes())
		return false
	}
	for _, id := range p.r.Nodes() {
		if !p.g.Has(id) || p.g.W0(id) != p.r.W0(id) {
			t.Logf("W0(%d): engine=%g ref=%g", id, p.g.W0(id), p.r.W0(id))
			return false
		}
		if p.g.ConflictDegree(id) != p.r.ConflictDegree(id) {
			t.Logf("ConflictDegree(%d): engine=%d ref=%d", id, p.g.ConflictDegree(id), p.r.ConflictDegree(id))
			return false
		}
		if !sameSet(p.g.Before(id), p.r.Before(id)) || !sameSet(p.g.After(id), p.r.After(id)) {
			t.Logf("Before/After(%d) diverged", id)
			return false
		}
	}
	ge, re := edgeMap(p.g.Edges()), edgeMap(p.r.Edges())
	if len(ge) != len(re) {
		t.Logf("Edges: engine=%d ref=%d", len(ge), len(re))
		return false
	}
	for k, e := range ge {
		if re[k] != e {
			t.Logf("Edge %v: engine=%+v ref=%+v", k, e, re[k])
			return false
		}
	}
	cpG, errG := p.g.CriticalPath()
	cpR, errR := p.r.CriticalPath()
	if !sameErr(errG, errR) || (errG == nil && cpG != cpR) {
		t.Logf("CriticalPath: engine=(%g,%v) ref=(%g,%v)", cpG, errG, cpR, errR)
		return false
	}
	pathG, lenG, errG2 := p.g.CriticalPathTrace()
	pathR, lenR, errR2 := p.r.CriticalPathTrace()
	if !sameErr(errG2, errR2) || (errG2 == nil && (lenG != lenR || !sameIDs(pathG, pathR))) {
		t.Logf("CriticalPathTrace: engine=(%v,%g,%v) ref=(%v,%g,%v)", pathG, lenG, errG2, pathR, lenR, errR2)
		return false
	}
	chG, okG := p.g.Chains()
	chR, okR := p.r.Chains()
	if okG != okR || len(chG) != len(chR) {
		t.Logf("Chains: engine=(%v,%v) ref=(%v,%v)", chG, okG, chR, okR)
		return false
	}
	for i := range chG {
		if !sameIDs(chG[i], chR[i]) {
			t.Logf("Chain %d: engine=%v ref=%v", i, chG[i], chR[i])
			return false
		}
	}
	return true
}

// TestQuickDifferentialEngine feeds identical random mutation sequences
// (AddNode, AddConflict, Resolve, SetW0, AddW0, Remove, Splice) to the
// slot engine and the reference engine and requires every observable —
// node/edge sets, weights, Before/After, critical path and trace, chains,
// Splice resolutions — to agree exactly after every step.
func TestQuickDifferentialEngine(t *testing.T) {
	f := func(data []byte) bool {
		p := newDiffPair()
		k := 0
		nb := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[k%len(data)]
			k++
			return b + byte(k) // decorrelate repeats of short inputs
		}
		steps := 6 + len(data)%48
		for i := 0; i < steps; i++ {
			op := nb() % 12
			switch {
			case op < 3 || len(p.live) == 0:
				w0 := float64(nb() % 9)
				if !sameErr(p.g.AddNode(p.next, w0), p.r.AddNode(p.next, w0)) {
					return false
				}
				p.live = append(p.live, p.next)
				p.next++
			case op < 6:
				a, b := p.pick(nb()), p.pick(nb())
				wab, wba := float64(nb()%7), float64(nb()%7)
				if !sameErr(p.g.AddConflict(a, b, wab, wba), p.r.AddConflict(a, b, wab, wba)) {
					return false
				}
			case op < 8:
				a, b := p.pick(nb()), p.pick(nb())
				if !sameErr(p.g.Resolve(a, b), p.r.Resolve(a, b)) {
					return false
				}
			case op == 8:
				a, w := p.pick(nb()), float64(nb()%11)
				p.g.SetW0(a, w)
				p.r.SetW0(a, w)
			case op == 9:
				a, d := p.pick(nb()), float64(nb()%5)-2
				p.g.AddW0(a, d)
				p.r.AddW0(a, d)
			case op == 10:
				a := p.pick(nb())
				p.g.Remove(a)
				p.r.Remove(a)
				p.drop(a)
			default:
				a := p.pick(nb())
				rsG, rsR := p.g.Splice(a), p.r.Splice(a)
				if len(rsG) != len(rsR) {
					t.Logf("Splice(%d): engine=%v ref=%v", a, rsG, rsR)
					return false
				}
				for j := range rsG {
					if rsG[j] != rsR[j] {
						t.Logf("Splice(%d): engine=%v ref=%v", a, rsG, rsR)
						return false
					}
				}
				p.drop(a)
			}
			if !p.sameState(t) {
				return false
			}
			// WouldCycle / WouldCycleFrom probes against the live state.
			if len(p.live) >= 2 {
				src, dst := p.pick(nb()), p.pick(nb())
				if src != dst {
					if p.g.WouldCycleFrom(src, []txn.ID{dst}) != p.r.WouldCycleFrom(src, []txn.ID{dst}) {
						t.Logf("WouldCycleFrom(%d,[%d]) diverged", src, dst)
						return false
					}
					res := []Resolution{{From: src, To: dst}}
					if p.g.WouldCycle(res) != p.r.WouldCycle(res) {
						t.Logf("WouldCycle(%v) diverged", res)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkCriticalPath measures the uncached recomputation: each
// iteration bumps a node weight (invalidating the epoch cache) and
// re-reads the critical path. The cached re-read case is
// BenchmarkCriticalPathStar above.
func BenchmarkCriticalPath(b *testing.B) {
	g, waiters := largeStarGraph(16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SetW0(waiters[0], float64(i%17))
		if _, err := g.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphChurn measures the simulator's steady-state graph
// lifecycle: admit a transaction, declare conflicts against live
// holders, resolve them, read the critical path, then commit (Remove)
// the oldest — exercising slot and edge-slab reuse.
func BenchmarkGraphChurn(b *testing.B) {
	g := New()
	const window = 64
	var live []txn.ID
	next := txn.ID(1)
	for len(live) < window {
		_ = g.AddNode(next, float64(next%13))
		live = append(live, next)
		next++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AddNode(next, float64(next%13))
		for j := 1; j <= 4; j++ {
			h := live[(i*5+j*11)%len(live)]
			_ = g.AddConflict(h, next, float64(j), float64(j+1))
			_ = g.Resolve(h, next)
		}
		if _, err := g.CriticalPath(); err != nil {
			b.Fatal(err)
		}
		g.Remove(live[0])
		live = append(live[1:], next)
		next++
	}
}
