package wtpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batsched/internal/txn"
)

// buildRandomGraph decodes a byte string into a WTPG with some resolved
// edges, deterministically.
func buildRandomGraph(data []byte) *Graph {
	g := New()
	n := 2 + int(len(data))%8
	for id := txn.ID(1); id <= txn.ID(n); id++ {
		w0 := float64(id % 7)
		_ = g.AddNode(id, w0)
	}
	k := 0
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[k%len(data)]
		k++
		return b
	}
	for a := txn.ID(1); a <= txn.ID(n); a++ {
		for b := a + 1; b <= txn.ID(n); b++ {
			v := next()
			if v%3 == 0 {
				_ = g.AddConflict(a, b, float64(v%11), float64(v%13))
				if v%2 == 0 {
					from, to := a, b
					if v%4 == 0 {
						from, to = b, a
					}
					if !g.WouldCycle([]Resolution{{From: from, To: to}}) {
						_ = g.Resolve(from, to)
					}
				}
			}
		}
	}
	return g
}

// Property: WouldCycleFrom is equivalent to the general WouldCycle with
// single-source resolutions.
func TestQuickWouldCycleFromEquivalence(t *testing.T) {
	f := func(data []byte, srcRaw uint8, mask uint16) bool {
		g := buildRandomGraph(data)
		nodes := g.Nodes()
		src := nodes[int(srcRaw)%len(nodes)]
		var targets []txn.ID
		var res []Resolution
		for i, id := range nodes {
			if id == src {
				continue
			}
			if mask&(1<<uint(i%16)) != 0 {
				targets = append(targets, id)
				res = append(res, Resolution{From: src, To: id})
			}
		}
		return g.WouldCycleFrom(src, targets) == g.WouldCycle(res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConflictWeights is symmetric under argument swap and agrees
// with a naive max-over-conflicting-pairs computation.
func TestQuickConflictWeightsSymmetry(t *testing.T) {
	mkTxn := func(id txn.ID, data []byte) *txn.T {
		n := 1 + len(data)%4
		steps := make([]txn.Step, n)
		for i := range steps {
			b := byte(0)
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			steps[i] = txn.Step{
				Mode: txn.Mode(b % 2),
				Part: txn.PartitionID(b % 5),
				Cost: float64(b%9) + 0.5,
			}
		}
		return txn.New(id, steps)
	}
	f := func(da, db []byte) bool {
		a := mkTxn(1, da)
		b := mkTxn(2, db)
		wab, wba, ok := ConflictWeights(a, b)
		wba2, wab2, ok2 := ConflictWeights(b, a)
		if ok != ok2 || (ok && (wab != wab2 || wba != wba2)) {
			return false
		}
		// Naive recomputation.
		nab, nba, nok := -1.0, -1.0, false
		for i, sa := range a.Steps {
			for j, sb := range b.Steps {
				if !sa.Conflicts(sb) {
					continue
				}
				nok = true
				if d := b.Due(j); d > nab {
					nab = d
				}
				if d := a.Due(i); d > nba {
					nba = d
				}
			}
		}
		if nok != ok {
			return false
		}
		return !ok || (nab == wab && nba == wba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: the critical path is at least every node's w0 and at least
// every resolved edge's source-w0 + weight.
func TestQuickCriticalPathLowerBounds(t *testing.T) {
	f := func(data []byte) bool {
		g := buildRandomGraph(data)
		cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		for _, id := range g.Nodes() {
			if cp < g.W0(id) {
				return false
			}
		}
		for _, e := range g.Edges() {
			if e.Dir == Unresolved {
				continue
			}
			if cp < g.W0(e.From())+e.Weight() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is observationally identical and independent.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(data []byte) bool {
		g := buildRandomGraph(data)
		c := g.Clone()
		cpG, err1 := g.CriticalPath()
		cpC, err2 := c.CriticalPath()
		if err1 != nil || err2 != nil || cpG != cpC {
			return false
		}
		if len(g.Edges()) != len(c.Edges()) {
			return false
		}
		// Mutating the clone leaves the original untouched.
		nodes := c.Nodes()
		c.SetW0(nodes[0], 1e6)
		cpG2, _ := g.CriticalPath()
		return cpG2 == cpG
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// largeStarGraph models the overloaded-C2PL shape: a few lock holders
// with many pending declarers.
func largeStarGraph(nHolders, nWaiters int) (*Graph, []txn.ID) {
	g := New()
	rng := rand.New(rand.NewSource(1))
	id := txn.ID(1)
	var holders, waiters []txn.ID
	for i := 0; i < nHolders; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		holders = append(holders, id)
		id++
	}
	for i := 0; i < nWaiters; i++ {
		_ = g.AddNode(id, float64(rng.Intn(10)))
		waiters = append(waiters, id)
		id++
	}
	for _, h := range holders {
		for _, w := range waiters {
			_ = g.AddConflict(h, w, float64(rng.Intn(10)), float64(rng.Intn(10)))
			_ = g.Resolve(h, w)
		}
	}
	return g, waiters
}

func BenchmarkWouldCycleFromStar(b *testing.B) {
	g, waiters := largeStarGraph(16, 500)
	src := waiters[0]
	targets := waiters[1:100]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.WouldCycleFrom(src, targets) {
			b.Fatal("unexpected cycle")
		}
	}
}

func BenchmarkCriticalPathStar(b *testing.B) {
	g, _ := largeStarGraph(16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneStar(b *testing.B) {
	g, _ := largeStarGraph(16, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}
