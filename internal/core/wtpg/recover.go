package wtpg

import (
	"sort"

	"batsched/internal/txn"
)

// Splice removes an aborted transaction from the graph while repairing
// the precedence relation around it. Removal alone (as Remove does for a
// commitment) is wrong for an abort: a commit discharges the
// transaction's precedence obligations, but an abort tears a node out of
// the middle of the resolved order, and the orderings that were fixed
// *through* it would silently evaporate.
//
// Splice therefore:
//
//  1. retracts every unresolved conflicting-edge of id together with the
//     node (no order was promised on those, nothing to repair);
//  2. for every resolved pair u→id and id→v, re-resolves the surviving
//     conflicting-edge (u, v) as u→v when one exists and is still
//     unresolved ("splicing the precedence past the dead transaction").
//
// The splice can never create a cycle: a cycle using a spliced edge u→v
// maps, by re-expanding u→v into u→id→v, onto a cycle through id in the
// pre-abort graph, which every scheduler keeps acyclic. Pairs already
// resolved (in either direction) are left untouched — an opposite
// resolution v→u plus u→id→v would likewise have been a pre-abort cycle,
// so in practice only unresolved pairs are ever seen here.
//
// The applied resolutions are returned in deterministic (sorted) order;
// each one also fires OnResolve like any other resolution. Splicing an
// unknown id is a no-op.
func (g *Graph) Splice(id txn.ID) []Resolution {
	s, ok := g.slotOf[id]
	if !ok {
		return nil
	}
	preds := make([]txn.ID, 0, len(g.in[s]))
	for _, idx := range g.in[s] {
		preds = append(preds, g.ids[g.edges[idx].fromSlot()])
	}
	succs := make([]txn.ID, 0, len(g.out[s]))
	for _, idx := range g.out[s] {
		succs = append(succs, g.ids[g.edges[idx].toSlot()])
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
	g.Remove(id)
	var spliced []Resolution
	for _, u := range preds {
		for _, v := range succs {
			if u == v {
				continue
			}
			idx, ok := g.pair[keyOf(u, v)]
			if !ok || g.edges[idx].dir != Unresolved {
				continue
			}
			if err := g.Resolve(u, v); err == nil {
				spliced = append(spliced, Resolution{From: u, To: v})
			}
		}
	}
	return spliced
}
