package wtpg

import (
	"fmt"
	"strings"

	"batsched/internal/txn"
)

// CriticalPathTrace returns the longest T0→Tf path itself: the sequence
// of transactions along it and its length. The first node is entered
// from T0 (contributing its w(T0→Ti)); subsequent hops follow resolved
// precedence-edges. Deterministic: ties prefer smaller transaction ids.
//
// The trace reuses the cached topological order and distance array of
// CriticalPath when they are still valid for the current epoch, so
// tracing after an unchanged-length check costs one predecessor sweep.
func (g *Graph) CriticalPathTrace() ([]txn.ID, float64, error) {
	if !g.cpValid || g.cpEpoch != g.epoch {
		g.recomputeCP()
	}
	if !g.cpOK {
		return nil, 0, errCycle
	}
	n := len(g.ids)
	dist := g.distBuf[:n]
	// Recover each node's best predecessor under the reference engine's
	// tie-break: a predecessor only displaces the implicit T0 entry when
	// it is strictly better, and equal-length predecessors prefer the
	// smaller id. Both rules are independent of edge iteration order.
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -1
	}
	for _, u := range g.topoBuf {
		best := g.w0[u]
		bestPrev := int32(-1)
		for _, idx := range g.in[u] {
			e := &g.edges[idx]
			v := e.fromSlot()
			cand := dist[v] + e.weight()
			if cand > best || (cand == best && bestPrev >= 0 && g.ids[v] < g.ids[bestPrev]) {
				best = cand
				bestPrev = v
			}
		}
		prev[u] = bestPrev
	}
	endSlot := int32(-1)
	bestLen := -1.0
	for _, u := range g.topoBuf {
		if dist[u] > bestLen || (dist[u] == bestLen && g.ids[u] < g.ids[endSlot]) {
			bestLen = dist[u]
			endSlot = u
		}
	}
	if bestLen < 0 {
		return nil, 0, nil // empty graph: the T0→Tf path has length 0
	}
	var path []txn.ID
	for u := endSlot; ; {
		path = append(path, g.ids[u])
		if prev[u] < 0 {
			break
		}
		u = prev[u]
	}
	// Reverse into T0→Tf order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestLen, nil
}

// FormatPath renders a path as "T0 -> T1 -> T2 -> Tf (length 6)".
func FormatPath(path []txn.ID, length float64) string {
	var b strings.Builder
	b.WriteString("T0")
	for _, id := range path {
		fmt.Fprintf(&b, " -> %v", id)
	}
	fmt.Fprintf(&b, " -> Tf (length %g)", length)
	return b.String()
}
