package wtpg

import (
	"fmt"
	"strings"

	"batsched/internal/txn"
)

// CriticalPathTrace returns the longest T0→Tf path itself: the sequence
// of transactions along it and its length. The first node is entered
// from T0 (contributing its w(T0→Ti)); subsequent hops follow resolved
// precedence-edges. Deterministic: ties prefer smaller transaction ids.
func (g *Graph) CriticalPathTrace() ([]txn.ID, float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[txn.ID]float64, len(order))
	prev := make(map[txn.ID]txn.ID, len(order))
	hasPrev := make(map[txn.ID]bool, len(order))
	for _, u := range order {
		best := g.w0[u]
		var bestPrev txn.ID
		found := false
		g.predecessors(u, func(v txn.ID, w float64) {
			cand := dist[v] + w
			if cand > best || (cand == best && found && v < bestPrev) {
				best = cand
				bestPrev = v
				found = true
			}
		})
		dist[u] = best
		if found {
			prev[u] = bestPrev
			hasPrev[u] = true
		}
	}
	var endNode txn.ID
	bestLen := -1.0
	for _, u := range order {
		if dist[u] > bestLen || (dist[u] == bestLen && u < endNode) {
			bestLen = dist[u]
			endNode = u
		}
	}
	if bestLen < 0 {
		return nil, 0, nil // empty graph: the T0→Tf path has length 0
	}
	var path []txn.ID
	for u := endNode; ; {
		path = append(path, u)
		if !hasPrev[u] {
			break
		}
		u = prev[u]
	}
	// Reverse into T0→Tf order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestLen, nil
}

// FormatPath renders a path as "T0 -> T1 -> T2 -> Tf (length 6)".
func FormatPath(path []txn.ID, length float64) string {
	var b strings.Builder
	b.WriteString("T0")
	for _, id := range path {
		fmt.Fprintf(&b, " -> %v", id)
	}
	fmt.Fprintf(&b, " -> Tf (length %g)", length)
	return b.String()
}
