package wtpg

import (
	"sort"

	"batsched/internal/txn"
)

// Chain is a maximal path of the undirected conflict graph, in path order.
// Isolated transactions form single-element chains.
type Chain []txn.ID

// Chains decomposes the conflict graph (all conflicting pairs, resolved or
// not) into chains. ok is false when the graph is not in the paper's chain
// form (Definition 2): some transaction conflicts with more than two
// others, or the conflicts form a cycle. On failure the returned chains
// are nil.
//
// The result is deterministic: each path starts at its smaller-id
// endpoint, and chains are sorted by their first element.
func (g *Graph) Chains() (chains []Chain, ok bool) {
	for id := range g.w0 {
		if len(g.adj[id]) > 2 {
			return nil, false
		}
	}
	visited := make(map[txn.ID]bool, len(g.w0))
	// Nodes() is sorted, so the first unvisited endpoint of each path
	// component is its smaller-id endpoint.
	for _, id := range g.Nodes() {
		if visited[id] || len(g.adj[id]) > 1 {
			continue
		}
		chain := Chain{id}
		visited[id] = true
		var prev txn.ID
		cur, hasPrev := id, false
		for {
			next, found := g.nextNeighbour(cur, prev, hasPrev)
			if !found {
				break
			}
			if visited[next] {
				return nil, false
			}
			chain = append(chain, next)
			visited[next] = true
			prev, cur, hasPrev = cur, next, true
		}
		chains = append(chains, chain)
	}
	// Every node of degree 2 not reached from an endpoint lies on a cycle.
	for id := range g.w0 {
		if !visited[id] {
			return nil, false
		}
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i][0] < chains[j][0] })
	return chains, true
}

// nextNeighbour returns the neighbour of cur other than prev. With degree
// at most 2 there is at most one such neighbour.
func (g *Graph) nextNeighbour(cur, prev txn.ID, hasPrev bool) (txn.ID, bool) {
	for other := range g.adj[cur] {
		if hasPrev && other == prev {
			continue
		}
		return other, true
	}
	return 0, false
}

// ConflictDegree returns the number of transactions id conflicts with.
func (g *Graph) ConflictDegree(id txn.ID) int { return len(g.adj[id]) }
