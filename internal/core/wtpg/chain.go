package wtpg

import (
	"sort"

	"batsched/internal/txn"
)

// Chain is a maximal path of the undirected conflict graph, in path order.
// Isolated transactions form single-element chains.
type Chain []txn.ID

// Chains decomposes the conflict graph (all conflicting pairs, resolved or
// not) into chains. ok is false when the graph is not in the paper's chain
// form (Definition 2): some transaction conflicts with more than two
// others, or the conflicts form a cycle. On failure the returned chains
// are nil.
//
// The result is deterministic: each path starts at its smaller-id
// endpoint, and chains are sorted by their first element.
func (g *Graph) Chains() (chains []Chain, ok bool) {
	for s, id := range g.ids {
		if id != 0 && len(g.adj[s]) > 2 {
			return nil, false
		}
	}
	g.visited.reset(len(g.ids))
	seen := 0
	// Nodes() is sorted, so the first unvisited endpoint of each path
	// component is its smaller-id endpoint.
	for _, id := range g.Nodes() {
		s := g.slotOf[id]
		if g.visited.has(s) || len(g.adj[s]) > 1 {
			continue
		}
		chain := Chain{id}
		g.visited.add(s)
		seen++
		prev, cur := int32(-1), s
		for {
			next, found := g.nextNeighbourSlot(cur, prev)
			if !found {
				break
			}
			if g.visited.has(next) {
				return nil, false
			}
			chain = append(chain, g.ids[next])
			g.visited.add(next)
			seen++
			prev, cur = cur, next
		}
		chains = append(chains, chain)
	}
	// Every node of degree 2 not reached from an endpoint lies on a cycle.
	if seen != g.nLive {
		return nil, false
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i][0] < chains[j][0] })
	return chains, true
}

// nextNeighbourSlot returns the neighbour slot of cur other than prev
// (prev < 0 means no predecessor). With degree at most 2 there is at most
// one such neighbour.
func (g *Graph) nextNeighbourSlot(cur, prev int32) (int32, bool) {
	for _, idx := range g.adj[cur] {
		e := &g.edges[idx]
		other := e.sa
		if other == cur {
			other = e.sb
		}
		if other == prev {
			continue
		}
		return other, true
	}
	return 0, false
}

// ConflictDegree returns the number of transactions id conflicts with.
func (g *Graph) ConflictDegree(id txn.ID) int {
	s, ok := g.slotOf[id]
	if !ok {
		return 0
	}
	return len(g.adj[s])
}
