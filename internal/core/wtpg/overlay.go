package wtpg

import (
	"fmt"

	"batsched/internal/txn"
)

// Overlay evaluates hypothetical resolutions over the live graph without
// copying it. Where the old E(q) path deep-cloned the whole WTPG per
// evaluation, an overlay records the proposed orientations in scratch
// buffers owned by the graph — one Direction per slab edge plus a list of
// zero-weight virtual edges for targets that share no conflicting-edge —
// and every query (reachability, straddling-edge resolution, critical
// path) consults base state and overlay together. End() rolls the
// overlay back by resetting only the touched entries, so steady-state
// evaluations are allocation-free.
//
// An overlay is valid only while the graph is not mutated; the graph owns
// exactly one, so evaluations cannot nest. Like the graph itself it is
// not safe for concurrent use.
type Overlay struct {
	g       *Graph
	dir     []Direction // per slab edge; Unresolved = not overlaid
	touched []int32     // slab indices with a non-Unresolved overlay entry
	// Virtual zero-weight edges virtFrom[i]→virtTo[i] (slots), for
	// hypothetical orderings against transactions the source has no
	// conflicting-edge with.
	virtFrom, virtTo []int32
	active           bool

	beforeM, afterM markset
	stack           []int32
	indeg           []int32
	dist            []float64
	topo            []int32
}

// BeginOverlay starts a hypothetical evaluation over the live graph. The
// caller must End() it before the next graph mutation or evaluation. The
// returned overlay is graph-owned scratch; do not retain it.
func (g *Graph) BeginOverlay() *Overlay {
	o := &g.ovl
	if o.active {
		panic("wtpg: BeginOverlay while an overlay is active")
	}
	o.g = g
	for len(o.dir) < len(g.edges) {
		o.dir = append(o.dir, Unresolved)
	}
	o.active = true
	return o
}

// Resolve hypothetically orients from→to. Orientations already fixed (in
// base or overlay) in the same direction are no-ops; contradictions and
// unknown endpoints are errors. A pair with no conflicting-edge gains a
// virtual zero-weight edge so the ordering still constrains the path
// structure, mirroring the tolerant behaviour of the old clone-based
// evaluation.
func (o *Overlay) Resolve(from, to txn.ID) error {
	g := o.g
	if from == to {
		return fmt.Errorf("wtpg: overlay self-resolution on %v", from)
	}
	sf, okF := g.slotOf[from]
	st, okT := g.slotOf[to]
	if !okF || !okT {
		return fmt.Errorf("wtpg: overlay resolution (%v,%v) with unknown node", from, to)
	}
	if idx, ok := g.pair[keyOf(from, to)]; ok {
		e := &g.edges[idx]
		want := AtoB
		if e.sa == st {
			want = BtoA
		}
		cur := e.dir
		if cur == Unresolved {
			cur = o.dir[idx]
		}
		switch cur {
		case Unresolved:
			o.dir[idx] = want
			o.touched = append(o.touched, idx)
		case want:
			// already ordered this way
		default:
			return fmt.Errorf("wtpg: overlay contradiction on (%v,%v)", from, to)
		}
		return nil
	}
	o.virtFrom = append(o.virtFrom, sf)
	o.virtTo = append(o.virtTo, st)
	return nil
}

// ovlEdge returns the oriented (from, to, weight) of slab edge idx under
// the overlay direction d.
func (o *Overlay) ovlEdge(idx int32, d Direction) (from, to int32, w float64) {
	e := &o.g.edges[idx]
	if d == BtoA {
		return e.sb, e.sa, e.wba
	}
	return e.sa, e.sb, e.wab
}

// ResolveStraddling performs step 2 of the paper's E(q) procedure:
// identify before(t) and after(t) under base + overlay edges, then orient
// every still-unresolved conflicting-edge with one endpoint in before(t)
// and the other in after(t) forward (before → after). Orientation order
// cannot matter: the straddling test uses the sets fixed at entry.
func (o *Overlay) ResolveStraddling(t txn.ID) {
	g := o.g
	st, ok := g.slotOf[t]
	if !ok {
		return // unknown transaction: both sets empty, nothing straddles
	}
	n := len(g.ids)
	o.beforeM.reset(n)
	o.afterM.reset(n)
	// after(t): descendants of t via base out-edges, overlay edges and
	// virtual edges.
	o.stack = o.appendSuccs(o.stack[:0], st)
	for len(o.stack) > 0 {
		u := o.stack[len(o.stack)-1]
		o.stack = o.stack[:len(o.stack)-1]
		if o.afterM.has(u) {
			continue
		}
		o.afterM.add(u)
		o.stack = o.appendSuccs(o.stack, u)
	}
	// before(t): ancestors of t.
	o.stack = o.appendPreds(o.stack[:0], st)
	for len(o.stack) > 0 {
		u := o.stack[len(o.stack)-1]
		o.stack = o.stack[:len(o.stack)-1]
		if o.beforeM.has(u) {
			continue
		}
		o.beforeM.add(u)
		o.stack = o.appendPreds(o.stack, u)
	}
	// Orient the straddling conflicting-edges forward.
	for idx := range g.edges {
		e := &g.edges[idx]
		if !e.live || e.dir != Unresolved || o.dir[idx] != Unresolved {
			continue
		}
		switch {
		case o.beforeM.has(e.sa) && o.afterM.has(e.sb):
			o.dir[idx] = AtoB
			o.touched = append(o.touched, int32(idx))
		case o.beforeM.has(e.sb) && o.afterM.has(e.sa):
			o.dir[idx] = BtoA
			o.touched = append(o.touched, int32(idx))
		}
	}
}

// appendSuccs pushes every successor of slot u under base + overlay +
// virtual edges onto stack.
func (o *Overlay) appendSuccs(stack []int32, u int32) []int32 {
	g := o.g
	for _, idx := range g.out[u] {
		stack = append(stack, g.edges[idx].toSlot())
	}
	for _, idx := range g.adj[u] {
		if d := o.dir[idx]; d != Unresolved {
			if from, to, _ := o.ovlEdge(idx, d); from == u {
				stack = append(stack, to)
			}
		}
	}
	for i, f := range o.virtFrom {
		if f == u {
			stack = append(stack, o.virtTo[i])
		}
	}
	return stack
}

// appendPreds pushes every predecessor of slot u under base + overlay +
// virtual edges onto stack.
func (o *Overlay) appendPreds(stack []int32, u int32) []int32 {
	g := o.g
	for _, idx := range g.in[u] {
		stack = append(stack, g.edges[idx].fromSlot())
	}
	for _, idx := range g.adj[u] {
		if d := o.dir[idx]; d != Unresolved {
			if from, to, _ := o.ovlEdge(idx, d); to == u {
				stack = append(stack, from)
			}
		}
	}
	for i, t := range o.virtTo {
		if t == u {
			stack = append(stack, o.virtFrom[i])
		}
	}
	return stack
}

// CriticalPath returns the longest T0→Tf path length over base resolved
// edges plus the overlay's hypothetical and virtual edges (step 3 of
// E(q): unresolved conflicting-edges are ignored). An error is returned
// if the combined precedence relation contains a cycle.
func (o *Overlay) CriticalPath() (float64, error) {
	g := o.g
	n := len(g.ids)
	if cap(o.indeg) < n {
		o.indeg = make([]int32, n)
		o.dist = make([]float64, n)
	}
	indeg := o.indeg[:n]
	dist := o.dist[:n]
	topo := o.topo[:0]
	for s := 0; s < n; s++ {
		if g.ids[s] == 0 {
			continue
		}
		indeg[s] = int32(len(g.in[s]))
		dist[s] = g.w0[s]
	}
	for _, idx := range o.touched {
		_, to, _ := o.ovlEdge(idx, o.dir[idx])
		indeg[to]++
	}
	for _, to := range o.virtTo {
		indeg[to]++
	}
	for s := 0; s < n; s++ {
		if g.ids[s] != 0 && indeg[s] == 0 {
			topo = append(topo, int32(s))
		}
	}
	relax := func(v int32, cand float64) {
		if cand > dist[v] {
			dist[v] = cand
		}
		indeg[v]--
		if indeg[v] == 0 {
			topo = append(topo, v)
		}
	}
	haveVirt := len(o.virtFrom) > 0
	for i := 0; i < len(topo); i++ {
		u := topo[i]
		du := dist[u]
		for _, idx := range g.out[u] {
			e := &g.edges[idx]
			relax(e.toSlot(), du+e.weight())
		}
		for _, idx := range g.adj[u] {
			if d := o.dir[idx]; d != Unresolved {
				if from, to, w := o.ovlEdge(idx, d); from == u {
					relax(to, du+w)
				}
			}
		}
		if haveVirt {
			for j, f := range o.virtFrom {
				if f == u {
					relax(o.virtTo[j], du)
				}
			}
		}
	}
	o.topo = topo
	if len(topo) != g.nLive {
		return 0, errCycle
	}
	best := 0.0
	for _, s := range topo {
		if dist[s] > best {
			best = dist[s]
		}
	}
	return best, nil
}

// End rolls the overlay back, resetting only the touched entries so the
// scratch can be reused allocation-free by the next evaluation.
func (o *Overlay) End() {
	for _, idx := range o.touched {
		o.dir[idx] = Unresolved
	}
	o.touched = o.touched[:0]
	o.virtFrom = o.virtFrom[:0]
	o.virtTo = o.virtTo[:0]
	o.active = false
}
