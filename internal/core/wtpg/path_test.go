package wtpg

import (
	"math/rand"
	"testing"

	"batsched/internal/txn"
)

func TestCriticalPathTraceFigure2(t *testing.T) {
	g := figure2a(t)
	mustResolve(t, g, 1, 2)
	mustResolve(t, g, 2, 3)
	path, length, err := g.CriticalPathTrace()
	if err != nil {
		t.Fatal(err)
	}
	if length != 10 {
		t.Fatalf("length = %g, want 10", length)
	}
	want := []txn.ID{1, 2, 3}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if got := FormatPath(path, length); got != "T0 -> T1 -> T2 -> T3 -> Tf (length 10)" {
		t.Errorf("FormatPath = %q", got)
	}
}

func TestCriticalPathTraceSingleNodePath(t *testing.T) {
	g := figure2a(t)
	// Unresolved: the longest path is just T0 -> T1 (w0 = 5).
	path, length, err := g.CriticalPathTrace()
	if err != nil {
		t.Fatal(err)
	}
	if length != 5 || len(path) != 1 || path[0] != 1 {
		t.Errorf("path=%v length=%g, want [T1] 5", path, length)
	}
}

func TestCriticalPathTraceEmptyGraph(t *testing.T) {
	g := New()
	path, length, err := g.CriticalPathTrace()
	if err != nil || length != 0 || len(path) != 0 {
		t.Errorf("empty graph: path=%v length=%g err=%v", path, length, err)
	}
}

// Property: the trace's length equals CriticalPath() and the path is a
// valid chain of resolved edges whose weights sum to the length.
func TestCriticalPathTraceConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		g := New()
		n := 2 + rng.Intn(8)
		for id := txn.ID(1); id <= txn.ID(n); id++ {
			if err := g.AddNode(id, float64(rng.Intn(10))); err != nil {
				t.Fatal(err)
			}
		}
		for a := txn.ID(1); a <= txn.ID(n); a++ {
			for b := a + 1; b <= txn.ID(n); b++ {
				if rng.Intn(3) != 0 {
					continue
				}
				if err := g.AddConflict(a, b, float64(rng.Intn(10)), float64(rng.Intn(10))); err != nil {
					t.Fatal(err)
				}
				from, to := a, b
				if rng.Intn(2) == 0 {
					from, to = to, from
				}
				if !g.WouldCycle([]Resolution{{From: from, To: to}}) {
					if err := g.Resolve(from, to); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		cp, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		path, length, err := g.CriticalPathTrace()
		if err != nil {
			t.Fatal(err)
		}
		if length != cp {
			t.Fatalf("trace length %g != CriticalPath %g", length, cp)
		}
		if len(path) == 0 {
			t.Fatal("empty path on non-empty graph")
		}
		// Re-walk the path.
		sum := g.W0(path[0])
		for i := 1; i < len(path); i++ {
			from, to, ok := g.Resolved(path[i-1], path[i])
			if !ok || from != path[i-1] || to != path[i] {
				t.Fatalf("path hop %v→%v is not a resolved edge", path[i-1], path[i])
			}
			e, _ := g.EdgeBetween(path[i-1], path[i])
			sum += e.Weight()
		}
		if sum != length {
			t.Fatalf("path weights sum to %g, reported %g", sum, length)
		}
	}
}
