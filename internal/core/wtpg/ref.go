package wtpg

import (
	"fmt"
	"sort"

	"batsched/internal/txn"
)

// Ref is the original map-based WTPG engine, kept verbatim as the
// reference implementation for the dense slot engine (Graph). It exists
// for two reasons:
//
//   - the differential and property tests in quick_test.go drive both
//     engines with identical operation sequences and require exact
//     agreement on every observable (critical path, traces, before/after
//     sets, chains, splices, cycle tests);
//   - builds tagged `wtpgshadow` (see shadow_enabled.go) attach a Ref
//     shadow to every Graph and cross-check the engines on live
//     workloads, panicking on the first divergence.
//
// Ref trades allocation behaviour for obvious correctness: every
// operation manipulates Go maps directly, mirroring the paper's set
// notation. Do not use it on hot paths.
type Ref struct {
	w0    map[txn.ID]float64
	edges map[pairKey]*Edge
	adj   map[txn.ID]map[txn.ID]*Edge // both endpoints point at the shared Edge
	// out/in index only the resolved precedence-edges so traversals never
	// touch the (much larger) set of unresolved conflicting-edges.
	out map[txn.ID]map[txn.ID]*Edge
	in  map[txn.ID]map[txn.ID]*Edge
	// stackBuf is scratch space for WouldCycleFrom (single-threaded use).
	stackBuf []txn.ID
	// OnResolve, if set, observes every conflicting-edge resolution.
	OnResolve func(from, to txn.ID)
}

// NewRef returns an empty reference WTPG.
func NewRef() *Ref {
	return &Ref{
		w0:    make(map[txn.ID]float64),
		edges: make(map[pairKey]*Edge),
		adj:   make(map[txn.ID]map[txn.ID]*Edge),
		out:   make(map[txn.ID]map[txn.ID]*Edge),
		in:    make(map[txn.ID]map[txn.ID]*Edge),
	}
}

// Len returns the number of live transactions in the graph.
func (g *Ref) Len() int { return len(g.w0) }

// Has reports whether id is in the graph.
func (g *Ref) Has(id txn.ID) bool {
	_, ok := g.w0[id]
	return ok
}

// Nodes returns the live transaction ids, sorted.
func (g *Ref) Nodes() []txn.ID {
	out := make([]txn.ID, 0, len(g.w0))
	for id := range g.w0 {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNode inserts a transaction with its initial w(T0→Ti) weight.
func (g *Ref) AddNode(id txn.ID, w0 float64) error {
	if g.Has(id) {
		return fmt.Errorf("wtpg: node %v already present", id)
	}
	if w0 < 0 {
		return fmt.Errorf("wtpg: negative w0 %g for %v", w0, id)
	}
	g.w0[id] = w0
	g.adj[id] = make(map[txn.ID]*Edge)
	g.out[id] = make(map[txn.ID]*Edge)
	g.in[id] = make(map[txn.ID]*Edge)
	return nil
}

// W0 returns w(T0→Ti).
func (g *Ref) W0(id txn.ID) float64 { return g.w0[id] }

// SetW0 overwrites w(T0→Ti).
func (g *Ref) SetW0(id txn.ID, w float64) {
	if !g.Has(id) {
		panic(fmt.Sprintf("wtpg: SetW0 on unknown %v", id))
	}
	if w < 0 {
		w = 0
	}
	g.w0[id] = w
}

// AddW0 adjusts w(T0→Ti) by delta, clamped at zero.
func (g *Ref) AddW0(id txn.ID, delta float64) {
	g.SetW0(id, g.w0[id]+delta)
}

// AddConflict inserts the conflicting-edge (a,b).
func (g *Ref) AddConflict(a, b txn.ID, wab, wba float64) error {
	if a == b {
		return fmt.Errorf("wtpg: self-conflict on %v", a)
	}
	if !g.Has(a) || !g.Has(b) {
		return fmt.Errorf("wtpg: conflict (%v,%v) with unknown node", a, b)
	}
	k := keyOf(a, b)
	if _, ok := g.edges[k]; ok {
		return fmt.Errorf("wtpg: conflict (%v,%v) already present", a, b)
	}
	e := &Edge{A: k.a, B: k.b}
	if a == k.a {
		e.WAB, e.WBA = wab, wba
	} else {
		e.WAB, e.WBA = wba, wab
	}
	g.edges[k] = e
	g.adj[a][b] = e
	g.adj[b][a] = e
	return nil
}

// EdgeBetween returns the edge between a and b, if any.
func (g *Ref) EdgeBetween(a, b txn.ID) (Edge, bool) {
	e, ok := g.edges[keyOf(a, b)]
	if !ok {
		return Edge{}, false
	}
	return *e, true
}

// Edges returns copies of all edges, sorted by endpoint ids.
func (g *Ref) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Resolve orients the conflicting-edge between from and to as from→to.
func (g *Ref) Resolve(from, to txn.ID) error {
	e, ok := g.edges[keyOf(from, to)]
	if !ok {
		return fmt.Errorf("wtpg: no conflict between %v and %v", from, to)
	}
	want := AtoB
	if from == e.B {
		want = BtoA
	}
	switch e.Dir {
	case Unresolved:
		e.Dir = want
		g.out[e.From()][e.To()] = e
		g.in[e.To()][e.From()] = e
		if g.OnResolve != nil {
			g.OnResolve(e.From(), e.To())
		}
		return nil
	case want:
		return nil
	default:
		return fmt.Errorf("wtpg: (%v,%v) already resolved %v→%v", e.A, e.B, e.From(), e.To())
	}
}

// Resolved reports the orientation between a and b.
func (g *Ref) Resolved(a, b txn.ID) (from, to txn.ID, ok bool) {
	e, found := g.edges[keyOf(a, b)]
	if !found || e.Dir == Unresolved {
		return 0, 0, false
	}
	return e.From(), e.To(), true
}

// Remove deletes a transaction and all its edges.
func (g *Ref) Remove(id txn.ID) {
	for other := range g.adj[id] {
		delete(g.adj[other], id)
		delete(g.out[other], id)
		delete(g.in[other], id)
		delete(g.edges, keyOf(id, other))
	}
	delete(g.adj, id)
	delete(g.out, id)
	delete(g.in, id)
	delete(g.w0, id)
}

// successors iterates over resolved out-edges of id.
func (g *Ref) successors(id txn.ID, fn func(to txn.ID, w float64)) {
	for other, e := range g.out[id] {
		fn(other, e.Weight())
	}
}

// predecessors iterates over resolved in-edges of id.
func (g *Ref) predecessors(id txn.ID, fn func(from txn.ID, w float64)) {
	for other, e := range g.in[id] {
		fn(other, e.Weight())
	}
}

// After returns the set of transactions that id precedes.
func (g *Ref) After(id txn.ID) map[txn.ID]bool {
	out := make(map[txn.ID]bool)
	var visit func(txn.ID)
	visit = func(u txn.ID) {
		g.successors(u, func(v txn.ID, _ float64) {
			if !out[v] {
				out[v] = true
				visit(v)
			}
		})
	}
	visit(id)
	return out
}

// Before returns the set of transactions preceding id.
func (g *Ref) Before(id txn.ID) map[txn.ID]bool {
	out := make(map[txn.ID]bool)
	var visit func(txn.ID)
	visit = func(u txn.ID) {
		g.predecessors(u, func(v txn.ID, _ float64) {
			if !out[v] {
				out[v] = true
				visit(v)
			}
		})
	}
	visit(id)
	return out
}

// WouldCycle reports whether the precedence-edges plus the proposed extra
// resolutions contain a directed cycle.
func (g *Ref) WouldCycle(extra []Resolution) bool {
	overlay := make(map[txn.ID][]txn.ID, 4)
	any := false
	for _, r := range extra {
		if e, ok := g.edges[keyOf(r.From, r.To)]; ok && e.Dir != Unresolved {
			if e.From() == r.To {
				return true // contradicts an existing precedence-edge
			}
			continue // already resolved this way
		}
		overlay[r.From] = append(overlay[r.From], r.To)
		any = true
	}
	if !any {
		return false
	}
	for f, targets := range overlay {
		visited := make(map[txn.ID]bool, 8)
		stack := append([]txn.ID(nil), targets...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == f {
				return true
			}
			if visited[u] {
				continue
			}
			visited[u] = true
			g.successors(u, func(v txn.ID, _ float64) {
				if !visited[v] {
					stack = append(stack, v)
				}
			})
			for _, v := range overlay[u] {
				if !visited[v] {
					stack = append(stack, v)
				}
			}
		}
	}
	return false
}

// WouldCycleFrom is the single-source form of WouldCycle.
func (g *Ref) WouldCycleFrom(from txn.ID, targets []txn.ID) bool {
	outF, inF := g.out[from], g.in[from]
	stack := g.stackBuf[:0]
	for _, to := range targets {
		if _, ok := inF[to]; ok {
			return true // to→from already resolved: contradiction
		}
		if _, ok := outF[to]; ok {
			continue // already resolved this way
		}
		stack = append(stack, to)
	}
	if len(stack) == 0 {
		g.stackBuf = stack
		return false
	}
	visited := make(map[txn.ID]bool, 8)
	found := false
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == from {
			found = true
			break
		}
		if visited[u] {
			continue
		}
		visited[u] = true
		for v := range g.out[u] {
			if !visited[v] {
				stack = append(stack, v)
			}
		}
	}
	g.stackBuf = stack[:0]
	return found
}

// CriticalPath returns the length of the longest T0→Tf path over the
// resolved precedence-edges.
func (g *Ref) CriticalPath() (float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return 0, err
	}
	dist := make(map[txn.ID]float64, len(order))
	best := 0.0
	for _, u := range order {
		d := g.w0[u]
		g.predecessors(u, func(v txn.ID, w float64) {
			if cand := dist[v] + w; cand > d {
				d = cand
			}
		})
		dist[u] = d
		if d > best {
			best = d
		}
	}
	return best, nil
}

// topoOrder returns the nodes in a topological order of the resolved
// precedence-edges (ties broken by id for determinism).
func (g *Ref) topoOrder() ([]txn.ID, error) {
	indeg := make(map[txn.ID]int, len(g.w0))
	for id := range g.w0 {
		indeg[id] = 0
	}
	for _, e := range g.edges {
		if e.Dir != Unresolved {
			indeg[e.To()]++
		}
	}
	var ready []txn.ID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []txn.ID
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var next []txn.ID
		g.successors(u, func(v txn.ID, _ float64) {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		})
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		ready = append(ready, next...)
	}
	if len(order) != len(g.w0) {
		return nil, fmt.Errorf("wtpg: precedence-edges contain a cycle")
	}
	return order, nil
}

// Clone returns a deep copy of the reference graph.
func (g *Ref) Clone() *Ref {
	c := NewRef()
	for id, w := range g.w0 {
		c.w0[id] = w
		c.adj[id] = make(map[txn.ID]*Edge, len(g.adj[id]))
		c.out[id] = make(map[txn.ID]*Edge, len(g.out[id]))
		c.in[id] = make(map[txn.ID]*Edge, len(g.in[id]))
	}
	for k, e := range g.edges {
		ce := *e
		c.edges[k] = &ce
		c.adj[k.a][k.b] = &ce
		c.adj[k.b][k.a] = &ce
		if ce.Dir != Unresolved {
			c.out[ce.From()][ce.To()] = &ce
			c.in[ce.To()][ce.From()] = &ce
		}
	}
	return c
}

// CriticalPathTrace returns the longest T0→Tf path itself.
func (g *Ref) CriticalPathTrace() ([]txn.ID, float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[txn.ID]float64, len(order))
	prev := make(map[txn.ID]txn.ID, len(order))
	hasPrev := make(map[txn.ID]bool, len(order))
	for _, u := range order {
		best := g.w0[u]
		var bestPrev txn.ID
		found := false
		g.predecessors(u, func(v txn.ID, w float64) {
			cand := dist[v] + w
			if cand > best || (cand == best && found && v < bestPrev) {
				best = cand
				bestPrev = v
				found = true
			}
		})
		dist[u] = best
		if found {
			prev[u] = bestPrev
			hasPrev[u] = true
		}
	}
	var endNode txn.ID
	bestLen := -1.0
	for _, u := range order {
		if dist[u] > bestLen || (dist[u] == bestLen && u < endNode) {
			bestLen = dist[u]
			endNode = u
		}
	}
	if bestLen < 0 {
		return nil, 0, nil // empty graph: the T0→Tf path has length 0
	}
	var path []txn.ID
	for u := endNode; ; {
		path = append(path, u)
		if !hasPrev[u] {
			break
		}
		u = prev[u]
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, bestLen, nil
}

// Chains decomposes the conflict graph into chains (see Graph.Chains).
func (g *Ref) Chains() (chains []Chain, ok bool) {
	for id := range g.w0 {
		if len(g.adj[id]) > 2 {
			return nil, false
		}
	}
	visited := make(map[txn.ID]bool, len(g.w0))
	for _, id := range g.Nodes() {
		if visited[id] || len(g.adj[id]) > 1 {
			continue
		}
		chain := Chain{id}
		visited[id] = true
		var prev txn.ID
		cur, hasPrev := id, false
		for {
			next, found := g.nextNeighbour(cur, prev, hasPrev)
			if !found {
				break
			}
			if visited[next] {
				return nil, false
			}
			chain = append(chain, next)
			visited[next] = true
			prev, cur, hasPrev = cur, next, true
		}
		chains = append(chains, chain)
	}
	for id := range g.w0 {
		if !visited[id] {
			return nil, false
		}
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i][0] < chains[j][0] })
	return chains, true
}

// nextNeighbour returns the neighbour of cur other than prev.
func (g *Ref) nextNeighbour(cur, prev txn.ID, hasPrev bool) (txn.ID, bool) {
	for other := range g.adj[cur] {
		if hasPrev && other == prev {
			continue
		}
		return other, true
	}
	return 0, false
}

// ConflictDegree returns the number of transactions id conflicts with.
func (g *Ref) ConflictDegree(id txn.ID) int { return len(g.adj[id]) }

// Splice removes an aborted transaction while repairing the precedence
// relation around it (see Graph.Splice).
func (g *Ref) Splice(id txn.ID) []Resolution {
	if !g.Has(id) {
		return nil
	}
	preds := make([]txn.ID, 0, len(g.in[id]))
	for u := range g.in[id] {
		preds = append(preds, u)
	}
	succs := make([]txn.ID, 0, len(g.out[id]))
	for v := range g.out[id] {
		succs = append(succs, v)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
	g.Remove(id)
	var spliced []Resolution
	for _, u := range preds {
		for _, v := range succs {
			if u == v {
				continue
			}
			e, ok := g.edges[keyOf(u, v)]
			if !ok || e.Dir != Unresolved {
				continue
			}
			if err := g.Resolve(u, v); err == nil {
				spliced = append(spliced, Resolution{From: u, To: v})
			}
		}
	}
	return spliced
}
