// Package wtpg implements the paper's Weighted Transaction Precedence
// Graph (§3.1, Definition 1).
//
// Nodes are live transactions; the initial transaction T0 and the final
// transaction Tf are implicit. Between two transactions that issued
// conflicting lock-declarations there is a *conflicting-edge* — a pair of
// candidate directed edges (Ti→Tj, Tj→Ti), each carrying a weight in
// objects. When the serialization order between the two is determined, the
// conflicting-edge is *resolved* into a single precedence-edge. The weight
// w(T0→Ti) — the number of objects Ti must still access before commit — is
// maintained live as the transaction processes objects. The paper's cost
// model makes all w(Ti→Tf) zero, so Tf edges carry no weight here.
//
// The length of the critical (longest) path from T0 to Tf estimates the
// earliest possible completion time of the schedule and therefore the
// degree of data/resource contention.
package wtpg

import (
	"fmt"
	"math"
	"sort"

	"batsched/internal/txn"
)

// Direction orients a conflicting-edge when it is resolved.
type Direction int8

const (
	// Unresolved means the conflicting-edge has not been oriented yet.
	Unresolved Direction = iota
	// AtoB resolves the pair (A,B) into A→B (A precedes B). A is the
	// smaller transaction id of the pair.
	AtoB
	// BtoA resolves the pair (A,B) into B→A.
	BtoA
)

func (d Direction) String() string {
	switch d {
	case AtoB:
		return "A->B"
	case BtoA:
		return "B->A"
	default:
		return "unresolved"
	}
}

// Edge is a conflicting-edge or, once resolved, a precedence-edge between
// the transaction pair (A, B) with A < B. WAB is the weight of the
// candidate edge A→B ("after A has committed, B must access WAB objects
// before B commits"); WBA likewise for B→A.
type Edge struct {
	A, B     txn.ID
	WAB, WBA float64
	Dir      Direction
}

// Weight returns the weight of the resolved precedence-edge. It panics on
// an unresolved edge.
func (e Edge) Weight() float64 {
	switch e.Dir {
	case AtoB:
		return e.WAB
	case BtoA:
		return e.WBA
	}
	panic("wtpg: Weight of unresolved edge")
}

// From and To return the endpoints of the resolved precedence-edge.
func (e Edge) From() txn.ID {
	if e.Dir == BtoA {
		return e.B
	}
	return e.A
}

// To returns the successor endpoint of the resolved precedence-edge.
func (e Edge) To() txn.ID {
	if e.Dir == BtoA {
		return e.A
	}
	return e.B
}

type pairKey struct{ a, b txn.ID }

func keyOf(a, b txn.ID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Resolution is a proposed orientation "From precedes To" of the
// conflicting-edge between From and To.
type Resolution struct {
	From, To txn.ID
}

// Graph is a WTPG over live transactions. It is not safe for concurrent
// use; the simulation is single-threaded.
type Graph struct {
	w0    map[txn.ID]float64
	edges map[pairKey]*Edge
	adj   map[txn.ID]map[txn.ID]*Edge // both endpoints point at the shared Edge
	// out/in index only the resolved precedence-edges so traversals never
	// touch the (much larger) set of unresolved conflicting-edges.
	out map[txn.ID]map[txn.ID]*Edge
	in  map[txn.ID]map[txn.ID]*Edge
	// stackBuf is scratch space for WouldCycleFrom (single-threaded use).
	stackBuf []txn.ID
	// OnResolve, if set, observes every conflicting-edge resolution
	// from→to at the moment the precedence becomes permanent (used by
	// the observability layer; nil costs one branch per resolution).
	OnResolve func(from, to txn.ID)
}

// New returns an empty WTPG.
func New() *Graph {
	return &Graph{
		w0:    make(map[txn.ID]float64),
		edges: make(map[pairKey]*Edge),
		adj:   make(map[txn.ID]map[txn.ID]*Edge),
		out:   make(map[txn.ID]map[txn.ID]*Edge),
		in:    make(map[txn.ID]map[txn.ID]*Edge),
	}
}

// Len returns the number of live transactions in the graph.
func (g *Graph) Len() int { return len(g.w0) }

// Has reports whether id is in the graph.
func (g *Graph) Has(id txn.ID) bool {
	_, ok := g.w0[id]
	return ok
}

// Nodes returns the live transaction ids, sorted.
func (g *Graph) Nodes() []txn.ID {
	out := make([]txn.ID, 0, len(g.w0))
	for id := range g.w0 {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNode inserts a transaction with its initial w(T0→Ti) weight (the
// declared total demand, due(s0)).
func (g *Graph) AddNode(id txn.ID, w0 float64) error {
	if g.Has(id) {
		return fmt.Errorf("wtpg: node %v already present", id)
	}
	if w0 < 0 {
		return fmt.Errorf("wtpg: negative w0 %g for %v", w0, id)
	}
	g.w0[id] = w0
	g.adj[id] = make(map[txn.ID]*Edge)
	g.out[id] = make(map[txn.ID]*Edge)
	g.in[id] = make(map[txn.ID]*Edge)
	return nil
}

// W0 returns w(T0→Ti).
func (g *Graph) W0(id txn.ID) float64 { return g.w0[id] }

// SetW0 overwrites w(T0→Ti).
func (g *Graph) SetW0(id txn.ID, w float64) {
	if !g.Has(id) {
		panic(fmt.Sprintf("wtpg: SetW0 on unknown %v", id))
	}
	if w < 0 {
		w = 0
	}
	g.w0[id] = w
}

// AddW0 adjusts w(T0→Ti) by delta (the per-object decrement messages use
// delta = -1). The weight is clamped at zero.
func (g *Graph) AddW0(id txn.ID, delta float64) {
	g.SetW0(id, g.w0[id]+delta)
}

// AddConflict inserts the conflicting-edge (a,b) with weights w(a→b)=wab
// and w(b→a)=wba. Both nodes must exist and the pair must be new.
func (g *Graph) AddConflict(a, b txn.ID, wab, wba float64) error {
	if a == b {
		return fmt.Errorf("wtpg: self-conflict on %v", a)
	}
	if !g.Has(a) || !g.Has(b) {
		return fmt.Errorf("wtpg: conflict (%v,%v) with unknown node", a, b)
	}
	k := keyOf(a, b)
	if _, ok := g.edges[k]; ok {
		return fmt.Errorf("wtpg: conflict (%v,%v) already present", a, b)
	}
	e := &Edge{A: k.a, B: k.b}
	if a == k.a {
		e.WAB, e.WBA = wab, wba
	} else {
		e.WAB, e.WBA = wba, wab
	}
	g.edges[k] = e
	g.adj[a][b] = e
	g.adj[b][a] = e
	return nil
}

// EdgeBetween returns the edge between a and b, if any.
func (g *Graph) EdgeBetween(a, b txn.ID) (Edge, bool) {
	e, ok := g.edges[keyOf(a, b)]
	if !ok {
		return Edge{}, false
	}
	return *e, true
}

// Edges returns copies of all edges, sorted by endpoint ids.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Resolve orients the conflicting-edge between from and to as from→to.
// Resolving an edge again in the same direction is a no-op; resolving it
// in the opposite direction is an error, as is resolving a non-edge.
func (g *Graph) Resolve(from, to txn.ID) error {
	e, ok := g.edges[keyOf(from, to)]
	if !ok {
		return fmt.Errorf("wtpg: no conflict between %v and %v", from, to)
	}
	want := AtoB
	if from == e.B {
		want = BtoA
	}
	switch e.Dir {
	case Unresolved:
		e.Dir = want
		g.out[e.From()][e.To()] = e
		g.in[e.To()][e.From()] = e
		if g.OnResolve != nil {
			g.OnResolve(e.From(), e.To())
		}
		return nil
	case want:
		return nil
	default:
		return fmt.Errorf("wtpg: (%v,%v) already resolved %v→%v", e.A, e.B, e.From(), e.To())
	}
}

// Resolved reports the orientation between a and b: from, to and true when
// a precedence-edge exists.
func (g *Graph) Resolved(a, b txn.ID) (from, to txn.ID, ok bool) {
	e, found := g.edges[keyOf(a, b)]
	if !found || e.Dir == Unresolved {
		return 0, 0, false
	}
	return e.From(), e.To(), true
}

// Remove deletes a transaction and all its edges (commitment, or abort of
// an admitted transaction).
func (g *Graph) Remove(id txn.ID) {
	for other := range g.adj[id] {
		delete(g.adj[other], id)
		delete(g.out[other], id)
		delete(g.in[other], id)
		delete(g.edges, keyOf(id, other))
	}
	delete(g.adj, id)
	delete(g.out, id)
	delete(g.in, id)
	delete(g.w0, id)
}

// successors iterates over resolved out-edges of id.
func (g *Graph) successors(id txn.ID, fn func(to txn.ID, w float64)) {
	for other, e := range g.out[id] {
		fn(other, e.Weight())
	}
}

// predecessors iterates over resolved in-edges of id.
func (g *Graph) predecessors(id txn.ID, fn func(from txn.ID, w float64)) {
	for other, e := range g.in[id] {
		fn(other, e.Weight())
	}
}

// After returns the set of transactions that id precedes (the paper's
// after(T)): all descendants of id via precedence-edges.
func (g *Graph) After(id txn.ID) map[txn.ID]bool {
	out := make(map[txn.ID]bool)
	var visit func(txn.ID)
	visit = func(u txn.ID) {
		g.successors(u, func(v txn.ID, _ float64) {
			if !out[v] {
				out[v] = true
				visit(v)
			}
		})
	}
	visit(id)
	return out
}

// Before returns the set of transactions preceding id (the paper's
// before(T)): all ancestors of id via precedence-edges.
func (g *Graph) Before(id txn.ID) map[txn.ID]bool {
	out := make(map[txn.ID]bool)
	var visit func(txn.ID)
	visit = func(u txn.ID) {
		g.predecessors(u, func(v txn.ID, _ float64) {
			if !out[v] {
				out[v] = true
				visit(v)
			}
		})
	}
	visit(id)
	return out
}

// WouldCycle reports whether the precedence-edges plus the proposed extra
// resolutions contain a directed cycle — the cautious schedulers' deadlock
// prediction test. Proposed resolutions over pairs that are already
// resolved in the same direction are harmless; over pairs resolved in the
// opposite direction they are reported as a cycle (the order would
// contradict itself). Extra resolutions need not correspond to existing
// conflicting-edges.
func (g *Graph) WouldCycle(extra []Resolution) bool {
	// The resolved precedence-edges alone are acyclic (an invariant every
	// scheduler maintains), so any cycle must pass through an extra edge.
	// Filter the extras against existing resolutions first.
	overlay := make(map[txn.ID][]txn.ID, 4)
	any := false
	for _, r := range extra {
		if e, ok := g.edges[keyOf(r.From, r.To)]; ok && e.Dir != Unresolved {
			if e.From() == r.To {
				return true // contradicts an existing precedence-edge
			}
			continue // already resolved this way
		}
		overlay[r.From] = append(overlay[r.From], r.To)
		any = true
	}
	if !any {
		return false
	}
	// For each distinct source f, a cycle through one of its extra edges
	// f→u exists iff some u reaches f via resolved edges plus the
	// overlay. One multi-source DFS per source, visiting only the
	// reachable subgraph — most nodes hold no locks and therefore have no
	// outgoing precedence-edges, which keeps this cheap on large graphs.
	for f, targets := range overlay {
		visited := make(map[txn.ID]bool, 8)
		stack := append([]txn.ID(nil), targets...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == f {
				return true
			}
			if visited[u] {
				continue
			}
			visited[u] = true
			g.successors(u, func(v txn.ID, _ float64) {
				if !visited[v] {
					stack = append(stack, v)
				}
			})
			for _, v := range overlay[u] {
				if !visited[v] {
					stack = append(stack, v)
				}
			}
		}
	}
	return false
}

// WouldCycleFrom is the allocation-light form of WouldCycle used on the
// scheduler hot path: it tests whether resolving from→target for every
// target would create a cycle. Semantics match WouldCycle with
// Resolution{from, target} extras.
func (g *Graph) WouldCycleFrom(from txn.ID, targets []txn.ID) bool {
	// Filter against existing resolutions via the resolved-adjacency
	// indexes (int64-keyed, much cheaper than pair-key lookups), keeping
	// only genuinely new edges on the DFS stack.
	outF, inF := g.out[from], g.in[from]
	stack := g.stackBuf[:0]
	for _, to := range targets {
		if _, ok := inF[to]; ok {
			return true // to→from already resolved: contradiction
		}
		if _, ok := outF[to]; ok {
			continue // already resolved this way
		}
		stack = append(stack, to)
	}
	if len(stack) == 0 {
		g.stackBuf = stack
		return false
	}
	// A cycle exists iff some target reaches `from` via resolved edges
	// (the new edges all share the single source, so they cannot chain
	// into each other except through `from` itself).
	visited := make(map[txn.ID]bool, 8)
	found := false
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == from {
			found = true
			break
		}
		if visited[u] {
			continue
		}
		visited[u] = true
		for v := range g.out[u] {
			if !visited[v] {
				stack = append(stack, v)
			}
		}
	}
	g.stackBuf = stack[:0]
	return found
}

// CriticalPath returns the length of the longest path from T0 to Tf using
// only resolved precedence-edges (unresolved conflicting-edges are
// ignored, as in step 3 of the paper's E(q) procedure). Every node Ti has
// the implicit edge T0→Ti of weight w(T0→Ti) and Ti→Tf of weight 0. An
// error is returned if the precedence-edges contain a cycle.
func (g *Graph) CriticalPath() (float64, error) {
	order, err := g.topoOrder()
	if err != nil {
		return 0, err
	}
	dist := make(map[txn.ID]float64, len(order))
	best := 0.0
	for _, u := range order {
		d := g.w0[u]
		g.predecessors(u, func(v txn.ID, w float64) {
			if cand := dist[v] + w; cand > d {
				d = cand
			}
		})
		dist[u] = d
		if d > best {
			best = d
		}
	}
	return best, nil
}

// topoOrder returns the nodes in a topological order of the resolved
// precedence-edges (ties broken by id for determinism).
func (g *Graph) topoOrder() ([]txn.ID, error) {
	indeg := make(map[txn.ID]int, len(g.w0))
	for id := range g.w0 {
		indeg[id] = 0
	}
	for _, e := range g.edges {
		if e.Dir != Unresolved {
			indeg[e.To()]++
		}
	}
	var ready []txn.ID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []txn.ID
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		var next []txn.ID
		g.successors(u, func(v txn.ID, _ float64) {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		})
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		ready = append(ready, next...)
	}
	if len(order) != len(g.w0) {
		return nil, fmt.Errorf("wtpg: precedence-edges contain a cycle")
	}
	return order, nil
}

// Clone returns a deep copy of the graph. Used for hypothetical ("what if
// q were granted") evaluations.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, w := range g.w0 {
		c.w0[id] = w
		c.adj[id] = make(map[txn.ID]*Edge, len(g.adj[id]))
		c.out[id] = make(map[txn.ID]*Edge, len(g.out[id]))
		c.in[id] = make(map[txn.ID]*Edge, len(g.in[id]))
	}
	for k, e := range g.edges {
		ce := *e
		c.edges[k] = &ce
		c.adj[k.a][k.b] = &ce
		c.adj[k.b][k.a] = &ce
		if ce.Dir != Unresolved {
			c.out[ce.From()][ce.To()] = &ce
			c.in[ce.To()][ce.From()] = &ce
		}
	}
	return c
}

// ConflictWeights computes the conflicting-edge weights between two
// declared transactions per §3.1: for every pair of conflicting declared
// steps (si of a, sj of b), w(b→a) ≥ due(si) and w(a→b) ≥ due(sj); the
// weights are the maxima over all such pairs. ok is false when the
// transactions do not conflict at all.
func ConflictWeights(a, b *txn.T) (wab, wba float64, ok bool) {
	wab, wba = math.Inf(-1), math.Inf(-1)
	for i, sa := range a.Steps {
		for j, sb := range b.Steps {
			if !sa.Conflicts(sb) {
				continue
			}
			ok = true
			if d := b.Due(j); d > wab {
				wab = d
			}
			if d := a.Due(i); d > wba {
				wba = d
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return wab, wba, true
}
