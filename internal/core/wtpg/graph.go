// Package wtpg implements the paper's Weighted Transaction Precedence
// Graph (§3.1, Definition 1).
//
// Nodes are live transactions; the initial transaction T0 and the final
// transaction Tf are implicit. Between two transactions that issued
// conflicting lock-declarations there is a *conflicting-edge* — a pair of
// candidate directed edges (Ti→Tj, Tj→Ti), each carrying a weight in
// objects. When the serialization order between the two is determined, the
// conflicting-edge is *resolved* into a single precedence-edge. The weight
// w(T0→Ti) — the number of objects Ti must still access before commit — is
// maintained live as the transaction processes objects. The paper's cost
// model makes all w(Ti→Tf) zero, so Tf edges carry no weight here.
//
// The length of the critical (longest) path from T0 to Tf estimates the
// earliest possible completion time of the schedule and therefore the
// degree of data/resource contention.
//
// Two engines live in this package. Graph is the production engine: live
// transactions occupy dense integer slots (freed on commit/abort, reused),
// edges live in a slab indexed by small ints, adjacency is slice-based,
// traversal scratch (stacks, generation-stamped visited marks, topological
// buffers) is owned by the graph and reused, and the critical-path length
// is cached under an epoch counter so re-reads between mutations are O(1).
// Ref (ref.go) is the original map-based engine, retained as the reference
// implementation: differential tests prove the two agree exactly, and
// builds tagged `wtpgshadow` cross-check them on live workloads. See
// docs/PERFORMANCE.md for the design and its invalidation rules.
package wtpg

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"batsched/internal/txn"
)

// Direction orients a conflicting-edge when it is resolved.
type Direction int8

const (
	// Unresolved means the conflicting-edge has not been oriented yet.
	Unresolved Direction = iota
	// AtoB resolves the pair (A,B) into A→B (A precedes B). A is the
	// smaller transaction id of the pair.
	AtoB
	// BtoA resolves the pair (A,B) into B→A.
	BtoA
)

func (d Direction) String() string {
	switch d {
	case AtoB:
		return "A->B"
	case BtoA:
		return "B->A"
	default:
		return "unresolved"
	}
}

// Edge is a conflicting-edge or, once resolved, a precedence-edge between
// the transaction pair (A, B) with A < B. WAB is the weight of the
// candidate edge A→B ("after A has committed, B must access WAB objects
// before B commits"); WBA likewise for B→A.
type Edge struct {
	A, B     txn.ID
	WAB, WBA float64
	Dir      Direction
}

// Weight returns the weight of the resolved precedence-edge. It panics on
// an unresolved edge.
func (e Edge) Weight() float64 {
	switch e.Dir {
	case AtoB:
		return e.WAB
	case BtoA:
		return e.WBA
	}
	panic("wtpg: Weight of unresolved edge")
}

// From and To return the endpoints of the resolved precedence-edge.
func (e Edge) From() txn.ID {
	if e.Dir == BtoA {
		return e.B
	}
	return e.A
}

// To returns the successor endpoint of the resolved precedence-edge.
func (e Edge) To() txn.ID {
	if e.Dir == BtoA {
		return e.A
	}
	return e.B
}

type pairKey struct{ a, b txn.ID }

func keyOf(a, b txn.ID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Resolution is a proposed orientation "From precedes To" of the
// conflicting-edge between From and To.
type Resolution struct {
	From, To txn.ID
}

// errCycle is the shared cycle error so the cached critical-path fast
// path never allocates.
var errCycle = errors.New("wtpg: precedence-edges contain a cycle")

// edgeRec is a slab-resident conflicting-edge. sa/sb are the slots of the
// endpoints A (smaller id) and B. The pos* fields are the edge's index in
// each endpoint's adjacency list (posA in adj[sa], posB in adj[sb]) and,
// once resolved, in the precedence indices (posOut in out[fromSlot], posIn
// in in[toSlot]) so removal is a swap-delete, never a scan.
type edgeRec struct {
	sa, sb     int32
	wab, wba   float64
	dir        Direction
	live       bool
	posA, posB int32
	posOut     int32
	posIn      int32
}

func (e *edgeRec) fromSlot() int32 {
	if e.dir == BtoA {
		return e.sb
	}
	return e.sa
}

func (e *edgeRec) toSlot() int32 {
	if e.dir == BtoA {
		return e.sa
	}
	return e.sb
}

func (e *edgeRec) weight() float64 {
	if e.dir == BtoA {
		return e.wba
	}
	return e.wab
}

// markset is a generation-stamped visited set over slots: clearing is a
// single counter increment, membership is one slice read, and the backing
// array is reused across traversals.
type markset struct {
	marks []uint32
	gen   uint32
}

// reset clears the set and sizes it for n slots.
func (m *markset) reset(n int) {
	if len(m.marks) < n {
		m.marks = make([]uint32, n+n/2+8)
	}
	m.gen++
	if m.gen == 0 { // wrapped: stamp array is stale, wipe it once
		for i := range m.marks {
			m.marks[i] = 0
		}
		m.gen = 1
	}
}

func (m *markset) has(s int32) bool { return m.marks[s] == m.gen }
func (m *markset) add(s int32)      { m.marks[s] = m.gen }

// Graph is a WTPG over live transactions. It is not safe for concurrent
// use; the simulation is single-threaded.
type Graph struct {
	slotOf map[txn.ID]int32 // id → slot
	ids    []txn.ID         // slot → id; 0 marks a free slot (zero ID reserved)
	w0     []float64        // slot → w(T0→Ti)
	free   []int32          // reusable slots
	nLive  int

	edges     []edgeRec // edge slab
	freeEdges []int32   // reusable slab entries
	pair      map[pairKey]int32

	adj [][]int32 // slot → slab indices of all conflicting-edges
	out [][]int32 // slot → slab indices of resolved out-edges
	in  [][]int32 // slot → slab indices of resolved in-edges

	// epoch counts mutations (AddNode/AddConflict/Resolve/Remove/SetW0);
	// caches stamped with it are valid while it stands still.
	epoch uint64

	// Cached critical path: value, cycle flag, and the topological order
	// and per-slot distances of the pass that produced it (reused by
	// CriticalPathTrace). Valid while cpEpoch == epoch.
	cpEpoch uint64
	cpValid bool
	cpLen   float64
	cpOK    bool
	topoBuf []int32
	distBuf []float64

	// Traversal scratch (single-threaded use).
	indegBuf []int32
	stackBuf []int32
	visited  markset

	ovl Overlay // reusable hypothetical-evaluation state (overlay.go)

	shadow *Ref // cross-checking Ref engine; nil unless built with wtpgshadow

	// OnResolve, if set, observes every conflicting-edge resolution
	// from→to at the moment the precedence becomes permanent (used by
	// the observability layer; nil costs one branch per resolution).
	OnResolve func(from, to txn.ID)
}

// New returns an empty WTPG.
func New() *Graph {
	g := &Graph{
		slotOf: make(map[txn.ID]int32),
		pair:   make(map[pairKey]int32),
	}
	if shadowEnabled {
		g.shadow = NewRef()
	}
	return g
}

// Len returns the number of live transactions in the graph.
func (g *Graph) Len() int { return g.nLive }

// Has reports whether id is in the graph.
func (g *Graph) Has(id txn.ID) bool {
	_, ok := g.slotOf[id]
	return ok
}

// Nodes returns the live transaction ids, sorted.
func (g *Graph) Nodes() []txn.ID {
	out := make([]txn.ID, 0, g.nLive)
	for _, id := range g.ids {
		if id != 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNode inserts a transaction with its initial w(T0→Ti) weight (the
// declared total demand, due(s0)).
func (g *Graph) AddNode(id txn.ID, w0 float64) error {
	if g.Has(id) {
		return fmt.Errorf("wtpg: node %v already present", id)
	}
	if w0 < 0 {
		return fmt.Errorf("wtpg: negative w0 %g for %v", w0, id)
	}
	var s int32
	if n := len(g.free); n > 0 {
		s = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		s = int32(len(g.ids))
		g.ids = append(g.ids, 0)
		g.w0 = append(g.w0, 0)
		g.adj = append(g.adj, nil)
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
	}
	g.ids[s] = id
	g.w0[s] = w0
	g.slotOf[id] = s
	g.nLive++
	g.epoch++
	if shadowEnabled {
		g.shadowCheck("AddNode", g.shadow.AddNode(id, w0), nil)
	}
	return nil
}

// W0 returns w(T0→Ti).
func (g *Graph) W0(id txn.ID) float64 {
	s, ok := g.slotOf[id]
	if !ok {
		return 0
	}
	return g.w0[s]
}

// SetW0 overwrites w(T0→Ti).
func (g *Graph) SetW0(id txn.ID, w float64) {
	s, ok := g.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("wtpg: SetW0 on unknown %v", id))
	}
	if w < 0 {
		w = 0
	}
	g.w0[s] = w
	g.epoch++
	if shadowEnabled {
		g.shadow.SetW0(id, w)
	}
}

// AddW0 adjusts w(T0→Ti) by delta (the per-object decrement messages use
// delta = -1). The weight is clamped at zero.
func (g *Graph) AddW0(id txn.ID, delta float64) {
	g.SetW0(id, g.W0(id)+delta)
}

// AddConflict inserts the conflicting-edge (a,b) with weights w(a→b)=wab
// and w(b→a)=wba. Both nodes must exist and the pair must be new.
func (g *Graph) AddConflict(a, b txn.ID, wab, wba float64) error {
	if a == b {
		return fmt.Errorf("wtpg: self-conflict on %v", a)
	}
	sa, okA := g.slotOf[a]
	sb, okB := g.slotOf[b]
	if !okA || !okB {
		return fmt.Errorf("wtpg: conflict (%v,%v) with unknown node", a, b)
	}
	k := keyOf(a, b)
	if _, ok := g.pair[k]; ok {
		return fmt.Errorf("wtpg: conflict (%v,%v) already present", a, b)
	}
	if shadowEnabled {
		g.shadowCheck("AddConflict", g.shadow.AddConflict(a, b, wab, wba), nil)
	}
	if a != k.a { // normalise to (smaller id, larger id)
		sa, sb = sb, sa
		wab, wba = wba, wab
	}
	var idx int32
	if n := len(g.freeEdges); n > 0 {
		idx = g.freeEdges[n-1]
		g.freeEdges = g.freeEdges[:n-1]
	} else {
		idx = int32(len(g.edges))
		g.edges = append(g.edges, edgeRec{})
	}
	g.edges[idx] = edgeRec{
		sa: sa, sb: sb, wab: wab, wba: wba, live: true,
		posA: int32(len(g.adj[sa])), posB: int32(len(g.adj[sb])),
		posOut: -1, posIn: -1,
	}
	g.adj[sa] = append(g.adj[sa], idx)
	g.adj[sb] = append(g.adj[sb], idx)
	g.pair[k] = idx
	g.epoch++
	return nil
}

// edgeOut converts a slab record to the public Edge form.
func (g *Graph) edgeOut(e *edgeRec) Edge {
	return Edge{A: g.ids[e.sa], B: g.ids[e.sb], WAB: e.wab, WBA: e.wba, Dir: e.dir}
}

// EdgeBetween returns the edge between a and b, if any.
func (g *Graph) EdgeBetween(a, b txn.ID) (Edge, bool) {
	idx, ok := g.pair[keyOf(a, b)]
	if !ok {
		return Edge{}, false
	}
	return g.edgeOut(&g.edges[idx]), true
}

// Edges returns copies of all edges, sorted by endpoint ids.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.pair))
	for _, idx := range g.pair {
		out = append(out, g.edgeOut(&g.edges[idx]))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Resolve orients the conflicting-edge between from and to as from→to.
// Resolving an edge again in the same direction is a no-op; resolving it
// in the opposite direction is an error, as is resolving a non-edge.
func (g *Graph) Resolve(from, to txn.ID) error {
	idx, ok := g.pair[keyOf(from, to)]
	if !ok {
		return fmt.Errorf("wtpg: no conflict between %v and %v", from, to)
	}
	e := &g.edges[idx]
	want := AtoB
	if from == g.ids[e.sb] {
		want = BtoA
	}
	switch e.dir {
	case Unresolved:
		e.dir = want
		fs, ts := e.fromSlot(), e.toSlot()
		e.posOut = int32(len(g.out[fs]))
		e.posIn = int32(len(g.in[ts]))
		g.out[fs] = append(g.out[fs], idx)
		g.in[ts] = append(g.in[ts], idx)
		g.epoch++
		if shadowEnabled {
			g.shadowCheck("Resolve", g.shadow.Resolve(from, to), nil)
		}
		if g.OnResolve != nil {
			g.OnResolve(g.ids[fs], g.ids[ts])
		}
		return nil
	case want:
		return nil
	default:
		pub := g.edgeOut(e)
		return fmt.Errorf("wtpg: (%v,%v) already resolved %v→%v", pub.A, pub.B, pub.From(), pub.To())
	}
}

// Resolved reports the orientation between a and b: from, to and true when
// a precedence-edge exists.
func (g *Graph) Resolved(a, b txn.ID) (from, to txn.ID, ok bool) {
	idx, found := g.pair[keyOf(a, b)]
	if !found {
		return 0, 0, false
	}
	e := &g.edges[idx]
	if e.dir == Unresolved {
		return 0, 0, false
	}
	return g.ids[e.fromSlot()], g.ids[e.toSlot()], true
}

// adjDelete swap-removes edge idx from slot s's adjacency list, fixing
// the moved edge's position field.
func (g *Graph) adjDelete(s, idx int32) {
	e := &g.edges[idx]
	pos := e.posA
	if e.sb == s {
		pos = e.posB
	}
	list := g.adj[s]
	last := int32(len(list) - 1)
	moved := list[last]
	list[pos] = moved
	g.adj[s] = list[:last]
	if moved != idx {
		me := &g.edges[moved]
		if me.sa == s {
			me.posA = pos
		} else {
			me.posB = pos
		}
	}
}

// outDelete swap-removes edge idx from out[s]; inDelete likewise.
func (g *Graph) outDelete(s, idx int32) {
	pos := g.edges[idx].posOut
	list := g.out[s]
	last := int32(len(list) - 1)
	moved := list[last]
	list[pos] = moved
	g.out[s] = list[:last]
	if moved != idx {
		g.edges[moved].posOut = pos
	}
}

func (g *Graph) inDelete(s, idx int32) {
	pos := g.edges[idx].posIn
	list := g.in[s]
	last := int32(len(list) - 1)
	moved := list[last]
	list[pos] = moved
	g.in[s] = list[:last]
	if moved != idx {
		g.edges[moved].posIn = pos
	}
}

// Remove deletes a transaction and all its edges (commitment, or abort of
// an admitted transaction). The slot and the edge slab entries return to
// the free lists for reuse.
func (g *Graph) Remove(id txn.ID) {
	s, ok := g.slotOf[id]
	if !ok {
		return
	}
	for _, idx := range g.adj[s] {
		e := &g.edges[idx]
		other := e.sa
		if other == s {
			other = e.sb
		}
		g.adjDelete(other, idx)
		if e.dir != Unresolved {
			if fs := e.fromSlot(); fs == s {
				g.inDelete(e.toSlot(), idx)
			} else {
				g.outDelete(fs, idx)
			}
		}
		delete(g.pair, keyOf(id, g.ids[other]))
		*e = edgeRec{}
		g.freeEdges = append(g.freeEdges, idx)
	}
	g.adj[s] = g.adj[s][:0]
	g.out[s] = g.out[s][:0]
	g.in[s] = g.in[s][:0]
	g.ids[s] = 0
	g.w0[s] = 0
	delete(g.slotOf, id)
	g.free = append(g.free, s)
	g.nLive--
	g.epoch++
	if shadowEnabled {
		g.shadow.Remove(id)
	}
}

// After returns the set of transactions that id precedes (the paper's
// after(T)): all descendants of id via precedence-edges.
func (g *Graph) After(id txn.ID) map[txn.ID]bool {
	res := make(map[txn.ID]bool)
	s, ok := g.slotOf[id]
	if !ok {
		return res
	}
	g.visited.reset(len(g.ids))
	stack := g.stackBuf[:0]
	for _, idx := range g.out[s] {
		stack = append(stack, g.edges[idx].toSlot())
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.visited.has(u) {
			continue
		}
		g.visited.add(u)
		res[g.ids[u]] = true
		for _, idx := range g.out[u] {
			if v := g.edges[idx].toSlot(); !g.visited.has(v) {
				stack = append(stack, v)
			}
		}
	}
	g.stackBuf = stack[:0]
	return res
}

// Before returns the set of transactions preceding id (the paper's
// before(T)): all ancestors of id via precedence-edges.
func (g *Graph) Before(id txn.ID) map[txn.ID]bool {
	res := make(map[txn.ID]bool)
	s, ok := g.slotOf[id]
	if !ok {
		return res
	}
	g.visited.reset(len(g.ids))
	stack := g.stackBuf[:0]
	for _, idx := range g.in[s] {
		stack = append(stack, g.edges[idx].fromSlot())
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g.visited.has(u) {
			continue
		}
		g.visited.add(u)
		res[g.ids[u]] = true
		for _, idx := range g.in[u] {
			if v := g.edges[idx].fromSlot(); !g.visited.has(v) {
				stack = append(stack, v)
			}
		}
	}
	g.stackBuf = stack[:0]
	return res
}

// Predecessors returns id's direct resolved predecessors — the sources of
// the precedence-edges entering id, sorted by transaction id. Unlike
// Before it does not chase the transitive closure: these are exactly the
// wait-for edges the schedulers resolved against id, which is the set a
// dependency log must record (replay needs only direct edges; transitivity
// is implied). Returns nil when id is not in the graph or has no resolved
// in-edges, and never aliases internal storage.
func (g *Graph) Predecessors(id txn.ID) []txn.ID {
	s, ok := g.slotOf[id]
	if !ok || len(g.in[s]) == 0 {
		return nil
	}
	out := make([]txn.ID, 0, len(g.in[s]))
	for _, idx := range g.in[s] {
		out = append(out, g.ids[g.edges[idx].fromSlot()])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AppendPredecessors appends id's direct resolved predecessors to dst
// and returns the extended slice, without the sort or fresh allocation
// of Predecessors. The sharded live controller uses it to build one
// predecessor union across several per-shard graphs before sorting once
// (sched.PredecessorsUnion).
func (g *Graph) AppendPredecessors(dst []txn.ID, id txn.ID) []txn.ID {
	s, ok := g.slotOf[id]
	if !ok {
		return dst
	}
	for _, idx := range g.in[s] {
		dst = append(dst, g.ids[g.edges[idx].fromSlot()])
	}
	return dst
}

// WouldCycle reports whether the precedence-edges plus the proposed extra
// resolutions contain a directed cycle — the cautious schedulers' deadlock
// prediction test. Proposed resolutions over pairs that are already
// resolved in the same direction are harmless; over pairs resolved in the
// opposite direction they are reported as a cycle (the order would
// contradict itself). Extra resolutions need not correspond to existing
// conflicting-edges, nor to live transactions.
func (g *Graph) WouldCycle(extra []Resolution) bool {
	// The resolved precedence-edges alone are acyclic (an invariant every
	// scheduler maintains), so any cycle must pass through an extra edge.
	// Filter the extras against existing resolutions first. This general
	// form stays map-based (extras may reference ids outside the graph);
	// the hot paths use WouldCycleFrom.
	overlay := make(map[txn.ID][]txn.ID, 4)
	any := false
	for _, r := range extra {
		if idx, ok := g.pair[keyOf(r.From, r.To)]; ok {
			if e := &g.edges[idx]; e.dir != Unresolved {
				if g.ids[e.fromSlot()] == r.To {
					return true // contradicts an existing precedence-edge
				}
				continue // already resolved this way
			}
		}
		overlay[r.From] = append(overlay[r.From], r.To)
		any = true
	}
	if !any {
		return false
	}
	// For each distinct source f, a cycle through one of its extra edges
	// f→u exists iff some u reaches f via resolved edges plus the
	// overlay.
	for f, targets := range overlay {
		visited := make(map[txn.ID]bool, 8)
		stack := append([]txn.ID(nil), targets...)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == f {
				return true
			}
			if visited[u] {
				continue
			}
			visited[u] = true
			if s, ok := g.slotOf[u]; ok {
				for _, idx := range g.out[s] {
					if v := g.ids[g.edges[idx].toSlot()]; !visited[v] {
						stack = append(stack, v)
					}
				}
			}
			for _, v := range overlay[u] {
				if !visited[v] {
					stack = append(stack, v)
				}
			}
		}
	}
	return false
}

// WouldCycleFrom is the allocation-free form of WouldCycle used on the
// scheduler hot path: it tests whether resolving from→target for every
// target would create a cycle. Semantics match WouldCycle with
// Resolution{from, target} extras.
func (g *Graph) WouldCycleFrom(from txn.ID, targets []txn.ID) bool {
	found := g.wouldCycleFromSlots(from, targets)
	if shadowEnabled {
		if ref := g.shadow.WouldCycleFrom(from, targets); ref != found {
			g.shadowDiverged("WouldCycleFrom", found, ref)
		}
	}
	return found
}

func (g *Graph) wouldCycleFromSlots(from txn.ID, targets []txn.ID) bool {
	sFrom, fromLive := g.slotOf[from]
	// Filter against existing resolutions, keeping only genuinely new
	// edges on the DFS stack.
	stack := g.stackBuf[:0]
	for _, to := range targets {
		if to == from {
			return true // self-loop
		}
		sTo, toLive := g.slotOf[to]
		if fromLive && toLive {
			if idx, ok := g.pair[keyOf(from, to)]; ok {
				if e := &g.edges[idx]; e.dir != Unresolved {
					if e.fromSlot() == sTo {
						return true // to→from already resolved: contradiction
					}
					continue // already resolved this way
				}
			}
		}
		if toLive {
			stack = append(stack, sTo)
		}
		// A target outside the graph has no out-edges and cannot reach
		// `from`; it contributes nothing to the search.
	}
	if len(stack) == 0 || !fromLive {
		g.stackBuf = stack[:0]
		return false
	}
	// A cycle exists iff some target reaches `from` via resolved edges
	// (the new edges all share the single source, so they cannot chain
	// into each other except through `from` itself).
	g.visited.reset(len(g.ids))
	found := false
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == sFrom {
			found = true
			break
		}
		if g.visited.has(u) {
			continue
		}
		g.visited.add(u)
		for _, idx := range g.out[u] {
			if v := g.edges[idx].toSlot(); !g.visited.has(v) {
				stack = append(stack, v)
			}
		}
	}
	g.stackBuf = stack[:0]
	return found
}

// CriticalPath returns the length of the longest path from T0 to Tf using
// only resolved precedence-edges (unresolved conflicting-edges are
// ignored, as in step 3 of the paper's E(q) procedure). Every node Ti has
// the implicit edge T0→Ti of weight w(T0→Ti) and Ti→Tf of weight 0. An
// error is returned if the precedence-edges contain a cycle.
//
// The result is cached against the graph's mutation epoch: repeated calls
// with no intervening AddNode/AddConflict/Resolve/Remove/SetW0 are O(1)
// and allocation-free; otherwise one slice-based topological pass runs.
func (g *Graph) CriticalPath() (float64, error) {
	if !g.cpValid || g.cpEpoch != g.epoch {
		g.recomputeCP()
	}
	if shadowEnabled {
		refLen, refErr := g.shadow.CriticalPath()
		if (refErr == nil) != g.cpOK || (g.cpOK && refLen != g.cpLen) {
			g.shadowDiverged("CriticalPath", g.cpLen, refLen)
		}
	}
	if !g.cpOK {
		return 0, errCycle
	}
	return g.cpLen, nil
}

// recomputeCP runs one Kahn topological pass with forward longest-path
// relaxation over the live slots, filling topoBuf/distBuf and the cached
// length. Allocation-free once the scratch buffers have grown to the
// graph's high-water mark.
func (g *Graph) recomputeCP() {
	n := len(g.ids)
	if cap(g.indegBuf) < n {
		g.indegBuf = make([]int32, n)
		g.distBuf = make([]float64, n)
	}
	indeg := g.indegBuf[:n]
	dist := g.distBuf[:n]
	topo := g.topoBuf[:0]
	for s := 0; s < n; s++ {
		if g.ids[s] == 0 {
			continue
		}
		indeg[s] = int32(len(g.in[s]))
		dist[s] = g.w0[s]
		if indeg[s] == 0 {
			topo = append(topo, int32(s))
		}
	}
	for i := 0; i < len(topo); i++ {
		u := topo[i]
		du := dist[u]
		for _, idx := range g.out[u] {
			e := &g.edges[idx]
			v := e.toSlot()
			if cand := du + e.weight(); cand > dist[v] {
				dist[v] = cand
			}
			indeg[v]--
			if indeg[v] == 0 {
				topo = append(topo, v)
			}
		}
	}
	g.topoBuf = topo
	g.cpEpoch = g.epoch
	g.cpValid = true
	if len(topo) != g.nLive {
		g.cpOK = false
		return
	}
	best := 0.0
	for _, s := range topo {
		if dist[s] > best {
			best = dist[s]
		}
	}
	g.cpOK = true
	g.cpLen = best
}

// Clone returns a deep copy of the graph. Used by callers exploring
// hypothetical resolutions destructively; the schedulers' E(q) hot path
// uses the allocation-free Overlay instead (overlay.go).
func (g *Graph) Clone() *Graph {
	c := New()
	for id, s := range g.slotOf {
		if err := c.AddNode(id, g.w0[s]); err != nil {
			panic(err) // unreachable: source graph invariants hold
		}
	}
	for k, idx := range g.pair {
		e := &g.edges[idx]
		if err := c.AddConflict(k.a, k.b, e.wab, e.wba); err != nil {
			panic(err)
		}
		switch e.dir {
		case AtoB:
			_ = c.Resolve(k.a, k.b)
		case BtoA:
			_ = c.Resolve(k.b, k.a)
		}
	}
	return c
}

// ConflictWeights computes the conflicting-edge weights between two
// declared transactions per §3.1: for every pair of conflicting declared
// steps (si of a, sj of b), w(b→a) ≥ due(si) and w(a→b) ≥ due(sj); the
// weights are the maxima over all such pairs. ok is false when the
// transactions do not conflict at all.
func ConflictWeights(a, b *txn.T) (wab, wba float64, ok bool) {
	wab, wba = math.Inf(-1), math.Inf(-1)
	for i, sa := range a.Steps {
		for j, sb := range b.Steps {
			if !sa.Conflicts(sb) {
				continue
			}
			ok = true
			if d := b.Due(j); d > wab {
				wab = d
			}
			if d := a.Due(i); d > wba {
				wba = d
			}
		}
	}
	if !ok {
		return 0, 0, false
	}
	return wab, wba, true
}
