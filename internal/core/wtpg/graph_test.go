package wtpg

import (
	"math/rand"
	"strings"
	"testing"

	"batsched/internal/txn"
)

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

// figure1 builds the paper's Figure 1 transactions:
//
//	T1: r1(A:1) -> r1(B:3) -> w1(A:1)
//	T2: r2(C:1) -> w2(A:1)
//	T3: w3(C:1) -> r3(D:3)
//
// with partitions A=0, B=1, C=2, D=3.
func figure1() (t1, t2, t3 *txn.T) {
	t1 = txn.New(1, []txn.Step{r(0, 1), r(1, 3), w(0, 1)})
	t2 = txn.New(2, []txn.Step{r(2, 1), w(0, 1)})
	t3 = txn.New(3, []txn.Step{w(2, 1), r(3, 3)})
	return
}

// figure2a builds the WTPG of the paper's Figure 2-(a): all three
// transactions have just started.
func figure2a(t *testing.T) *Graph {
	t.Helper()
	t1, t2, t3 := figure1()
	g := New()
	for _, tx := range []*txn.T{t1, t2, t3} {
		if err := g.AddNode(tx.ID, tx.DeclaredTotal()); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]*txn.T{{t1, t2}, {t2, t3}} {
		wab, wba, ok := ConflictWeights(pair[0], pair[1])
		if !ok {
			t.Fatalf("%v and %v do not conflict", pair[0].ID, pair[1].ID)
		}
		if err := g.AddConflict(pair[0].ID, pair[1].ID, wab, wba); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestConflictWeightsFigure2 checks the worked example of §3.1: the
// conflicting-edge (T2,T3) is a pair of edges T2→T3 of weight 4 and T2←T3
// of weight 2, and w(T1→T2) = 1.
func TestConflictWeightsFigure2(t *testing.T) {
	t1, t2, t3 := figure1()
	if w12, w21, ok := ConflictWeights(t1, t2); !ok || w12 != 1 || w21 != 5 {
		t.Errorf("ConflictWeights(T1,T2) = %g,%g,%v; want 1,5,true", w12, w21, ok)
	}
	if w23, w32, ok := ConflictWeights(t2, t3); !ok || w23 != 4 || w32 != 2 {
		t.Errorf("ConflictWeights(T2,T3) = %g,%g,%v; want 4,2,true", w23, w32, ok)
	}
	if _, _, ok := ConflictWeights(t1, t3); ok {
		t.Error("T1 and T3 must not conflict")
	}
}

// TestCriticalPathFigure2 reproduces Example 3.2: resolving by
// W = {T1→T2, T3→T2} yields critical path 6; resolving by {T1→T2→T3}
// yields 10.
func TestCriticalPathFigure2(t *testing.T) {
	g := figure2a(t)
	// Unresolved: only T0 edges count. Longest is w(T0→T1) = 5.
	if cp, err := g.CriticalPath(); err != nil || cp != 5 {
		t.Fatalf("unresolved critical path = %g,%v; want 5", cp, err)
	}
	gb := g.Clone()
	if err := gb.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := gb.Resolve(3, 2); err != nil {
		t.Fatal(err)
	}
	if cp, err := gb.CriticalPath(); err != nil || cp != 6 {
		t.Fatalf("W={T1→T2,T3→T2}: critical path = %g,%v; want 6", cp, err)
	}
	gc := g.Clone()
	if err := gc.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := gc.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	if cp, err := gc.CriticalPath(); err != nil || cp != 10 {
		t.Fatalf("W={T1→T2→T3}: critical path = %g,%v; want 10", cp, err)
	}
	// The original graph is untouched by clone operations.
	if cp, err := g.CriticalPath(); err != nil || cp != 5 {
		t.Fatalf("original mutated: %g,%v", cp, err)
	}
}

func TestResolveRules(t *testing.T) {
	g := figure2a(t)
	if err := g.Resolve(1, 3); err == nil {
		t.Error("resolving a non-conflict succeeded")
	}
	if err := g.Resolve(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(2, 1); err != nil {
		t.Errorf("idempotent resolve failed: %v", err)
	}
	if err := g.Resolve(1, 2); err == nil {
		t.Error("contradictory resolve succeeded")
	}
	from, to, ok := g.Resolved(1, 2)
	if !ok || from != 2 || to != 1 {
		t.Errorf("Resolved = %v→%v,%v; want 2→1", from, to, ok)
	}
	e, _ := g.EdgeBetween(2, 1)
	if e.Weight() != 5 || e.From() != 2 || e.To() != 1 {
		t.Errorf("edge = %+v; want weight 5 from 2 to 1", e)
	}
}

func TestBeforeAfter(t *testing.T) {
	g := figure2a(t)
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	before := g.Before(3)
	if !before[1] || !before[2] || len(before) != 2 {
		t.Errorf("Before(3) = %v, want {1,2}", before)
	}
	after := g.After(1)
	if !after[2] || !after[3] || len(after) != 2 {
		t.Errorf("After(1) = %v, want {2,3}", after)
	}
	if len(g.Before(1)) != 0 || len(g.After(3)) != 0 {
		t.Error("endpoints have unexpected ancestors/descendants")
	}
}

func TestWouldCycle(t *testing.T) {
	g := figure2a(t)
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.WouldCycle(nil) {
		t.Error("acyclic graph reported cyclic")
	}
	if g.WouldCycle([]Resolution{{2, 3}}) {
		t.Error("extending a chain reported cyclic")
	}
	if !g.WouldCycle([]Resolution{{2, 1}}) {
		t.Error("contradiction of existing edge not reported")
	}
	// 2→3 plus 3→... back to 1 through a hypothetical edge.
	if err := g.Resolve(2, 3); err != nil {
		t.Fatal(err)
	}
	if !g.WouldCycle([]Resolution{{3, 1}}) {
		t.Error("cycle via extra resolution not reported")
	}
}

func TestW0Maintenance(t *testing.T) {
	g := figure2a(t)
	g.AddW0(1, -1)
	if g.W0(1) != 4 {
		t.Errorf("W0 after decrement = %g, want 4", g.W0(1))
	}
	g.AddW0(1, -10)
	if g.W0(1) != 0 {
		t.Errorf("W0 clamped = %g, want 0", g.W0(1))
	}
	if cp, _ := g.CriticalPath(); cp != 4 {
		t.Errorf("critical path after decrement = %g, want 4 (T3's w0)", cp)
	}
}

func TestRemove(t *testing.T) {
	g := figure2a(t)
	if err := g.Resolve(1, 2); err != nil {
		t.Fatal(err)
	}
	g.Remove(2)
	if g.Has(2) {
		t.Fatal("node survived Remove")
	}
	if _, ok := g.EdgeBetween(1, 2); ok {
		t.Error("edge (1,2) survived Remove")
	}
	if _, ok := g.EdgeBetween(2, 3); ok {
		t.Error("edge (2,3) survived Remove")
	}
	if g.ConflictDegree(1) != 0 || g.ConflictDegree(3) != 0 {
		t.Error("neighbours keep adjacency to removed node")
	}
	if cp, err := g.CriticalPath(); err != nil || cp != 5 {
		t.Errorf("critical path = %g,%v; want 5", cp, err)
	}
}

func TestChainsFigure2(t *testing.T) {
	g := figure2a(t)
	chains, ok := g.Chains()
	if !ok {
		t.Fatal("Figure 2 WTPG is chain-form")
	}
	if len(chains) != 1 {
		t.Fatalf("chains = %v, want one chain", chains)
	}
	c := chains[0]
	if len(c) != 3 || c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Fatalf("chain = %v, want [1 2 3]", c)
	}
}

func TestChainsIsolatedAndMultiple(t *testing.T) {
	g := New()
	for id := txn.ID(1); id <= 5; id++ {
		if err := g.AddNode(id, float64(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Chain 1-2, isolated 3, chain 4-5.
	if err := g.AddConflict(2, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(4, 5, 1, 1); err != nil {
		t.Fatal(err)
	}
	chains, ok := g.Chains()
	if !ok || len(chains) != 3 {
		t.Fatalf("chains = %v ok=%v, want 3 chains", chains, ok)
	}
	want := []Chain{{1, 2}, {3}, {4, 5}}
	for i := range want {
		if len(chains[i]) != len(want[i]) {
			t.Fatalf("chains = %v, want %v", chains, want)
		}
		for j := range want[i] {
			if chains[i][j] != want[i][j] {
				t.Fatalf("chains = %v, want %v", chains, want)
			}
		}
	}
}

func TestChainsRejectsStar(t *testing.T) {
	g := New()
	for id := txn.ID(1); id <= 4; id++ {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, other := range []txn.ID{2, 3, 4} {
		if err := g.AddConflict(1, other, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := g.Chains(); ok {
		t.Error("star with degree 3 accepted as chain form")
	}
}

func TestChainsRejectsCycle(t *testing.T) {
	g := New()
	for id := txn.ID(1); id <= 3; id++ {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddConflict(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(2, 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(3, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Chains(); ok {
		t.Error("triangle accepted as chain form")
	}
}

func TestCriticalPathCycleError(t *testing.T) {
	g := New()
	if err := g.AddNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(3, 1); err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]txn.ID{{1, 2}, {2, 3}, {1, 3}} {
		if err := g.AddConflict(p[0], p[1], 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	// 1→2→3→1 is a precedence cycle.
	mustResolve(t, g, 1, 2)
	mustResolve(t, g, 2, 3)
	mustResolve(t, g, 3, 1)
	if _, err := g.CriticalPath(); err == nil {
		t.Error("CriticalPath on cyclic precedence graph returned no error")
	}
}

func mustResolve(t *testing.T, g *Graph, from, to txn.ID) {
	t.Helper()
	if err := g.Resolve(from, to); err != nil {
		t.Fatal(err)
	}
}

func TestAddNodeAndConflictValidation(t *testing.T) {
	g := New()
	if err := g.AddNode(1, -1); err == nil {
		t.Error("negative w0 accepted")
	}
	if err := g.AddNode(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(1, 2); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := g.AddConflict(1, 1, 1, 1); err == nil {
		t.Error("self conflict accepted")
	}
	if err := g.AddConflict(1, 9, 1, 1); err == nil {
		t.Error("conflict with unknown node accepted")
	}
	if err := g.AddNode(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(1, 2, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(2, 1, 3, 4); err == nil {
		t.Error("duplicate conflict accepted")
	}
	// Weight orientation is preserved regardless of argument order.
	e, _ := g.EdgeBetween(1, 2)
	if e.WAB != 1 || e.WBA != 2 {
		t.Errorf("edge weights = %g,%g; want 1,2", e.WAB, e.WBA)
	}
}

func TestDOT(t *testing.T) {
	g := figure2a(t)
	mustResolve(t, g, 1, 2)
	dot := g.DOT("fig2")
	for _, want := range []string{"T0 -> T1", "T1 -> T2 [label=\"1\"]", "dir=both", "digraph"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// Randomized: resolving edges one at a time in random legal (acyclic)
// order must keep CriticalPath monotonically nondecreasing (adding
// precedence constraints can only lengthen the longest path) and Chains'
// membership must be stable under resolution state.
func TestRandomResolutionMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := New()
		n := 2 + rng.Intn(8)
		for id := txn.ID(1); id <= txn.ID(n); id++ {
			if err := g.AddNode(id, float64(rng.Intn(10))); err != nil {
				t.Fatal(err)
			}
		}
		// Random chain-ish conflicts.
		for id := txn.ID(1); id < txn.ID(n); id++ {
			if rng.Intn(4) > 0 {
				if err := g.AddConflict(id, id+1, float64(rng.Intn(10)), float64(rng.Intn(10))); err != nil {
					t.Fatal(err)
				}
			}
		}
		prev, err := g.CriticalPath()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			from, to := e.A, e.B
			if rng.Intn(2) == 0 {
				from, to = to, from
			}
			if g.WouldCycle([]Resolution{{from, to}}) {
				from, to = to, from
			}
			if err := g.Resolve(from, to); err != nil {
				t.Fatal(err)
			}
			cp, err := g.CriticalPath()
			if err != nil {
				t.Fatal(err)
			}
			if cp+1e-9 < prev {
				t.Fatalf("critical path decreased: %g -> %g", prev, cp)
			}
			prev = cp
		}
	}
}

// TestPredecessors pins the accessor the WAL's dependency records are
// built from: direct resolved in-edges only (no transitive closure, no
// unresolved conflicts), sorted by ID, never aliasing graph storage.
func TestPredecessors(t *testing.T) {
	g := New()
	for id := txn.ID(1); id <= 5; id++ {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	// 3 <- {2, 1} resolved; 3 <-> 4 unresolved; 5 isolated; 1 -> 2 too,
	// so 1 reaches 3 both directly and transitively through 2.
	for _, e := range [][2]txn.ID{{1, 2}, {2, 3}, {1, 3}, {3, 4}} {
		if err := g.AddConflict(e[0], e[1], 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]txn.ID{{2, 3}, {1, 3}, {1, 2}} {
		if err := g.Resolve(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	check := func(id txn.ID, want []txn.ID) {
		t.Helper()
		got := g.Predecessors(id)
		if len(got) != len(want) {
			t.Fatalf("Predecessors(%v) = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Predecessors(%v) = %v, want %v", id, got, want)
			}
		}
	}
	check(1, nil)                 // no in-edges
	check(2, []txn.ID{1})         // single resolved pred
	check(3, []txn.ID{1, 2})      // direct only, sorted — 4 unresolved, excluded
	check(4, nil)                 // its conflict with 3 is unresolved
	check(5, nil)                 // isolated
	check(99, nil)                // unknown ID
	// The returned slice is a copy: mutating it must not corrupt the graph.
	p := g.Predecessors(3)
	p[0] = 999
	check(3, []txn.ID{1, 2})
	// Removing a predecessor drops it from later reads.
	g.Remove(1)
	check(3, []txn.ID{2})
	check(2, nil)
}
