package chainopt

import (
	"fmt"
	"math"
)

// trip is the appendix's triplet [curr, crit, rev].
//
//   - For L[k] (edge (n[k-1],n[k]) set downwards in G(k-1,N)):
//     crit = shortest critical path of G(k-1,N) under optimal suffix
//     S1(k-1,N); rev = first label whose edge is set upwards; curr =
//     length of the through-path n0→n[k-1]→…→n[rev].
//   - For R[k] (edge set upwards): crit/rev mirrored; curr = critical
//     path from n0 to n[k-1] within G(k-1, rev).
type trip struct {
	curr, crit float64
	rev        int
}

// SolvePaper implements the appendix algorithm (Theorem 1/2, Lcomp and
// Rcomp) literally, with 1-based labels n[1..N], a[k] = w(n[k-1]→n[k])
// and b[k] = w(n[k]→n[k-1]). It supports only fully free chains — the
// paper recomputes W from scratch; the production scheduler uses Solve,
// which also honours already-resolved edges.
//
// Two corrections to the printed pseudocode were required to make the
// algorithm agree with exhaustive search (the paper omits "trivial"
// cases):
//
//  1. Rcomp case 1 sets R1[k].curr = temp, but Definition 3(6) defines
//     curr as the critical path *to* n[k-1], which is max(temp, r[k-1]).
//  2. The flip searches EXPR1/EXPR2 must also consider h = rev itself as
//     "no further flip before rev" — both are included here by iterating
//     h through rev (as printed) and by seeding the search with the
//     straight-through candidate.
func SolvePaper(c Chain) (Solution, error) {
	if err := c.validate(); err != nil {
		return Solution{}, err
	}
	for i := range c.Fixed {
		if c.Fixed[i] != Free {
			return Solution{}, fmt.Errorf("chainopt: SolvePaper does not support fixed edges")
		}
	}
	n := c.N()
	if n == 1 {
		return Solution{Orient: []Orientation{}, Length: c.R[0]}, nil
	}
	// 1-based views. aa[k] = Down[k-2], bb[k] = Up[k-2] for k = 2..N.
	rr := make([]float64, n+1)
	aa := make([]float64, n+1)
	bb := make([]float64, n+1)
	for k := 1; k <= n; k++ {
		rr[k] = c.R[k-1]
	}
	for k := 2; k <= n; k++ {
		aa[k] = c.Down[k-2]
		bb[k] = c.Up[k-2]
	}
	L := make([]trip, n+2)
	R := make([]trip, n+2)
	// Sentinel at N+1: G(N,N) is the single node n[N]; its "solution" has
	// critical path r[N], through-path r[N], and no flip (rev = N).
	L[n+1] = trip{curr: rr[n], crit: rr[n], rev: n}
	R[n+1] = trip{curr: rr[n], crit: rr[n], rev: n}
	for k := n; k >= 2; k-- {
		L[k] = lcomp(k, rr, aa, bb, L, R)
		R[k] = rcomp(k, rr, aa, bb, L, R)
	}
	// Theorem 1 at k = 1: pick S1(1,N) or S2(1,N) and reconstruct the
	// alternating runs via the rev pointers.
	orient := make([]Orientation, n-1)
	dir := Down
	if R[2].crit < L[2].crit {
		dir = Up
	}
	length := math.Min(L[2].crit, R[2].crit)
	k := 1
	for k < n {
		var rev int
		if dir == Down {
			rev = L[k+1].rev
		} else {
			rev = R[k+1].rev
		}
		if rev < k+1 {
			rev = k + 1 // defensive: a run covers at least its first edge
		}
		for e := k; e < rev; e++ {
			orient[e-1] = dir
		}
		k = rev
		dir = opposite(dir)
	}
	return Solution{Orient: orient, Length: length}, nil
}

// lcomp computes L[k] from L[k+1], R[k+1] and the suffix parameters —
// the appendix's Lcomp().
func lcomp(k int, rr, aa, bb []float64, L, R []trip) trip {
	var l1 trip
	temp := L[k+1].curr - rr[k] + rr[k-1] + aa[k]
	if temp <= L[k+1].crit {
		l1 = trip{curr: temp, crit: L[k+1].crit, rev: L[k+1].rev}
	} else {
		// EXPR1: try flipping upwards at (n[h], n[h+1]) for
		// h = k+1 .. L[k+1].rev, i.e. S(h) = {n[k-1]→…→n[h]} ∪ S2(h,N).
		// V(h) is the critical path inside the down-run, C(h) the
		// through-path length; V(k-1) = C(k-1) = r[k-1].
		v := rr[k-1]
		cpath := rr[k-1]
		best := math.Inf(1)
		h0, c0 := -1, 0.0
		for h := k; h <= L[k+1].rev; h++ {
			v = math.Max(rr[h], v+aa[h])
			cpath += aa[h]
			if h < k+1 {
				continue // h = k is the L2 case below
			}
			if cand := math.Max(v, R[h+1].crit); cand < best {
				best, h0, c0 = cand, h, cpath
			}
		}
		if h0 < 0 {
			l1 = trip{curr: 0, crit: math.Inf(1), rev: k}
		} else {
			l1 = trip{curr: c0, crit: best, rev: h0}
		}
	}
	// L2: (n[k], n[k+1]) set upwards right after the new down edge.
	l2curr := rr[k-1] + aa[k]
	l2 := trip{curr: l2curr, crit: math.Max(l2curr, R[k+1].crit), rev: k}
	if l1.crit <= l2.crit {
		return l1
	}
	return l2
}

// rcomp computes R[k] — the appendix's Rcomp().
func rcomp(k int, rr, aa, bb []float64, L, R []trip) trip {
	var r1 trip
	temp := R[k+1].curr + bb[k]
	switch {
	case math.Max(rr[k-1], temp) <= R[k+1].crit:
		// Correction (1): curr is the critical path to n[k-1], which
		// includes the direct edge T0→n[k-1].
		r1 = trip{curr: math.Max(temp, rr[k-1]), crit: R[k+1].crit, rev: R[k+1].rev}
	case math.Max(rr[k-1], temp) == rr[k-1]:
		r1 = trip{curr: rr[k-1], crit: rr[k-1], rev: R[k+1].rev}
	default:
		// EXPR2: try flipping downwards at (n[h], n[h+1]) for
		// h = k+1 .. R[k+1].rev, i.e. S(h) = {n[k-1]←…←n[h]} ∪ S1(h,N).
		v := rr[k-1]
		cpath := rr[k-1]
		best := math.Inf(1)
		h0, v0 := -1, 0.0
		for h := k; h <= R[k+1].rev; h++ {
			cpath = cpath - rr[h-1] + rr[h] + bb[h]
			v = math.Max(cpath, v)
			if h < k+1 {
				continue // h = k is the R2 case below
			}
			if cand := math.Max(v, L[h+1].crit); cand < best {
				best, h0, v0 = cand, h, v
			}
		}
		if h0 < 0 {
			r1 = trip{curr: 0, crit: math.Inf(1), rev: k}
		} else {
			r1 = trip{curr: v0, crit: best, rev: h0}
		}
	}
	// R2: (n[k], n[k+1]) set downwards right after the new up edge.
	r2curr := math.Max(rr[k]+bb[k], rr[k-1])
	r2 := trip{curr: r2curr, crit: math.Max(r2curr, L[k+1].crit), rev: k}
	if r1.crit <= r2.crit {
		return r1
	}
	return r2
}
