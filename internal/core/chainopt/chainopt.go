// Package chainopt computes, for a chain-form WTPG, the full
// serialization order W whose resolved WTPG has the shortest critical
// path (paper §3.2 and appendix).
//
// A chain of N transactions n[0..N-1] (paper labels 1..N) is described by
//
//	R[k]     = w(T0→n[k])               (live remaining demand)
//	Down[k]  = w(n[k]→n[k+1])           (k = 0..N-2)
//	Up[k]    = w(n[k+1]→n[k])
//
// An orientation assigns each conflicting-edge Down (n[k] precedes
// n[k+1]) or Up (n[k+1] precedes n[k]). The critical path of an oriented
// chain decomposes over maximal same-direction runs: within a down-run a
// path enters from T0 at any node t and follows the run to its last node;
// ditto, mirrored, for up-runs. The general problem is NP-hard (the paper
// reduces job-shop scheduling to it), but on chains it is solvable in
// O(N²) — Solve below is an independent, direct dynamic program over run
// decompositions; SolvePaper implements the appendix's Lcomp/Rcomp
// recursion; SolveExhaustive enumerates all 2^(N-1) orientations as a
// test oracle.
//
// Unlike the appendix (which optimizes a fresh chain), Solve and
// SolveExhaustive accept pre-resolved edges via Fixed: the running CHAIN
// scheduler must extend the resolutions already enforced by earlier
// grants.
package chainopt

import (
	"fmt"
	"math"
)

// Orientation of one conflicting-edge of the chain.
type Orientation int8

const (
	// Free means the edge may be oriented either way (still unresolved).
	Free Orientation = iota
	// Down orients the edge (n[k], n[k+1]) as n[k] → n[k+1].
	Down
	// Up orients the edge (n[k], n[k+1]) as n[k+1] → n[k].
	Up
)

func (o Orientation) String() string {
	switch o {
	case Down:
		return "down"
	case Up:
		return "up"
	default:
		return "free"
	}
}

func opposite(o Orientation) Orientation {
	if o == Down {
		return Up
	}
	return Down
}

// Chain is the optimization input. Fixed may be nil (all edges free).
type Chain struct {
	R     []float64
	Down  []float64
	Up    []float64
	Fixed []Orientation
}

// N returns the number of transactions on the chain.
func (c Chain) N() int { return len(c.R) }

// M returns the number of conflicting-edges on the chain.
func (c Chain) M() int { return len(c.R) - 1 }

func (c Chain) validate() error {
	n := len(c.R)
	if n == 0 {
		return fmt.Errorf("chainopt: empty chain")
	}
	if len(c.Down) != n-1 || len(c.Up) != n-1 {
		return fmt.Errorf("chainopt: %d nodes need %d edge weights, got down=%d up=%d",
			n, n-1, len(c.Down), len(c.Up))
	}
	if c.Fixed != nil && len(c.Fixed) != n-1 {
		return fmt.Errorf("chainopt: %d fixed orientations for %d edges", len(c.Fixed), n-1)
	}
	for i, v := range c.R {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("chainopt: bad R[%d] = %g", i, v)
		}
	}
	for i := 0; i < n-1; i++ {
		if c.Down[i] < 0 || math.IsNaN(c.Down[i]) || math.IsInf(c.Down[i], 0) {
			return fmt.Errorf("chainopt: bad Down[%d] = %g", i, c.Down[i])
		}
		if c.Up[i] < 0 || math.IsNaN(c.Up[i]) || math.IsInf(c.Up[i], 0) {
			return fmt.Errorf("chainopt: bad Up[%d] = %g", i, c.Up[i])
		}
	}
	return nil
}

func (c Chain) fixedAt(i int) Orientation {
	if c.Fixed == nil {
		return Free
	}
	return c.Fixed[i]
}

// Solution is an optimal full orientation and its critical-path length.
type Solution struct {
	Orient []Orientation // len N-1, every entry Down or Up
	Length float64
}

// Evaluate returns the critical-path length of the chain under a complete
// orientation: the maximum over maximal same-direction runs of the
// longest T0-entering path through the run (plus each node's own
// w(T0→n[k]), which every run accounts for at its entry points).
func Evaluate(c Chain, orient []Orientation) (float64, error) {
	if err := c.validate(); err != nil {
		return 0, err
	}
	m := c.M()
	if len(orient) != m {
		return 0, fmt.Errorf("chainopt: %d orientations for %d edges", len(orient), m)
	}
	for i, o := range orient {
		if o == Free {
			return 0, fmt.Errorf("chainopt: edge %d unoriented", i)
		}
		if f := c.fixedAt(i); f != Free && f != o {
			return 0, fmt.Errorf("chainopt: edge %d violates fixed orientation %v", i, f)
		}
	}
	if m == 0 {
		return c.R[0], nil
	}
	best := 0.0
	i := 0
	for i < m {
		j := i
		for j+1 < m && orient[j+1] == orient[i] {
			j++
		}
		var cost float64
		if orient[i] == Down {
			cost = segDown(c, i, j)
		} else {
			cost = segUp(c, i, j)
		}
		if cost > best {
			best = cost
		}
		i = j + 1
	}
	return best, nil
}

// segDown is the longest path through the down-run covering edges i..j:
// max over entry nodes t∈[i, j+1] of R[t] + Σ Down[t..j]. This is the
// appendix's V(h) recurrence.
func segDown(c Chain, i, j int) float64 {
	v := c.R[i]
	for e := i; e <= j; e++ {
		v = math.Max(v+c.Down[e], c.R[e+1])
	}
	return v
}

// segUp mirrors segDown for an up-run (paths flow toward node i):
// max over entry nodes t∈[i, j+1] of R[t] + Σ Up[i..t-1].
func segUp(c Chain, i, j int) float64 {
	v := c.R[i]
	pre := 0.0
	for e := i; e <= j; e++ {
		pre += c.Up[e]
		if cand := c.R[e+1] + pre; cand > v {
			v = cand
		}
	}
	return v
}

// Solve computes an optimal orientation in O(N²) by dynamic programming
// over maximal-run decompositions: dp[i][dir] is the minimal critical
// path of the suffix of edges i.. whose first maximal run has direction
// dir; a run covering edges i..j costs seg(i,j,dir) and forces the next
// run to the opposite direction. Fixed edges restrict which runs are
// admissible.
func Solve(c Chain) (Solution, error) {
	if err := c.validate(); err != nil {
		return Solution{}, err
	}
	m := c.M()
	if m == 0 {
		return Solution{Orient: []Orientation{}, Length: c.R[0]}, nil
	}
	inf := math.Inf(1)
	dp := make([][2]float64, m+1)
	choice := make([][2]int, m+1)
	dirs := [2]Orientation{Down, Up}
	for i := m - 1; i >= 0; i-- {
		for di, dir := range dirs {
			best, bestJ := inf, -1
			// Incremental run cost over edges i..j.
			var v, pre float64
			v = c.R[i]
			for j := i; j < m; j++ {
				if f := c.fixedAt(j); f != Free && f != dir {
					break
				}
				if dir == Down {
					v = math.Max(v+c.Down[j], c.R[j+1])
				} else {
					pre += c.Up[j]
					v = math.Max(v, c.R[j+1]+pre)
				}
				rest := 0.0
				if j+1 < m {
					rest = dp[j+1][1-di]
				}
				if cand := math.Max(v, rest); cand < best {
					best, bestJ = cand, j
				}
			}
			dp[i][di] = best
			choice[i][di] = bestJ
		}
	}
	length := math.Min(dp[0][0], dp[0][1])
	if math.IsInf(length, 1) {
		return Solution{}, fmt.Errorf("chainopt: no orientation satisfies fixed edges")
	}
	orient := make([]Orientation, m)
	di := 0
	if dp[0][1] < dp[0][0] {
		di = 1
	}
	for i := 0; i < m; {
		j := choice[i][di]
		if j < i {
			return Solution{}, fmt.Errorf("chainopt: internal reconstruction failure at %d", i)
		}
		for e := i; e <= j; e++ {
			orient[e] = dirs[di]
		}
		i = j + 1
		di = 1 - di
	}
	return Solution{Orient: orient, Length: length}, nil
}

// SolveExhaustive enumerates every orientation compatible with Fixed and
// returns the best; it is the test oracle for Solve and SolvePaper and is
// exponential in the chain length.
func SolveExhaustive(c Chain) (Solution, error) {
	if err := c.validate(); err != nil {
		return Solution{}, err
	}
	m := c.M()
	if m == 0 {
		return Solution{Orient: []Orientation{}, Length: c.R[0]}, nil
	}
	if m > 24 {
		return Solution{}, fmt.Errorf("chainopt: exhaustive solve of %d edges refused", m)
	}
	best := Solution{Length: math.Inf(1)}
	orient := make([]Orientation, m)
	var rec func(i int) error
	rec = func(i int) error {
		if i == m {
			length, err := Evaluate(c, orient)
			if err != nil {
				return err
			}
			if length < best.Length {
				best.Length = length
				best.Orient = append([]Orientation(nil), orient...)
			}
			return nil
		}
		for _, dir := range [2]Orientation{Down, Up} {
			if f := c.fixedAt(i); f != Free && f != dir {
				continue
			}
			orient[i] = dir
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return Solution{}, err
	}
	if math.IsInf(best.Length, 1) {
		return Solution{}, fmt.Errorf("chainopt: no orientation satisfies fixed edges")
	}
	return best, nil
}
