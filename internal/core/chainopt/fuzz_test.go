package chainopt

import "testing"

// FuzzSolveAgainstOracle cross-checks the O(N²) dynamic program and the
// appendix algorithm against exhaustive search on fuzzer-shaped chains.
func FuzzSolveAgainstOracle(f *testing.F) {
	f.Add([]byte{5, 2, 4, 1, 5, 4, 2}, false)
	f.Add([]byte{0, 0, 0}, true)
	f.Add([]byte{15, 1, 15, 1, 15, 1, 15, 1}, true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, data []byte, withFixed bool) {
		c := decodeChain(data, withFixed)
		want, err := SolveExhaustive(c)
		if err != nil {
			t.Fatalf("oracle failed on valid chain: %v", err)
		}
		got, err := Solve(c)
		if err != nil {
			t.Fatalf("Solve failed: %v", err)
		}
		if got.Length != want.Length {
			t.Fatalf("Solve %g != oracle %g on %+v", got.Length, want.Length, c)
		}
		if c.M() > 0 {
			if ev, err := Evaluate(c, got.Orient); err != nil || ev != got.Length {
				t.Fatalf("solution inconsistent: %g/%v vs %g", ev, err, got.Length)
			}
		}
		if !withFixed {
			paper, err := SolvePaper(c)
			if err != nil {
				t.Fatalf("SolvePaper failed: %v", err)
			}
			if paper.Length != want.Length {
				t.Fatalf("SolvePaper %g != oracle %g on %+v", paper.Length, want.Length, c)
			}
		}
	})
}
