package chainopt

import (
	"math"
	"math/rand"
	"testing"
)

// figure2Chain is the paper's Figure 2 chain T1–T2–T3:
// r = [5, 2, 4], w(T1→T2)=1, w(T2→T1)=5, w(T2→T3)=4, w(T3→T2)=2.
func figure2Chain() Chain {
	return Chain{
		R:    []float64{5, 2, 4},
		Down: []float64{1, 4},
		Up:   []float64{5, 2},
	}
}

func TestEvaluateFigure2(t *testing.T) {
	c := figure2Chain()
	// W = {T1→T2, T3→T2}: critical path 6 (Example 3.2).
	if got, err := Evaluate(c, []Orientation{Down, Up}); err != nil || got != 6 {
		t.Errorf("Evaluate(down,up) = %g,%v; want 6", got, err)
	}
	// W = {T1→T2→T3}: critical path 10.
	if got, err := Evaluate(c, []Orientation{Down, Down}); err != nil || got != 10 {
		t.Errorf("Evaluate(down,down) = %g,%v; want 10", got, err)
	}
	// W = {T2→T1, T2→T3}: paths max(r2+5, r1)=7 up-run; down-run max(2+4,4)=6 → 7.
	if got, err := Evaluate(c, []Orientation{Up, Down}); err != nil || got != 7 {
		t.Errorf("Evaluate(up,down) = %g,%v; want 7", got, err)
	}
	// W = {T3→T2→T1}: single up-run: max(r1, r2+5, r3+2+5) = 11.
	if got, err := Evaluate(c, []Orientation{Up, Up}); err != nil || got != 11 {
		t.Errorf("Evaluate(up,up) = %g,%v; want 11", got, err)
	}
}

func TestSolveFigure2(t *testing.T) {
	for name, solver := range map[string]func(Chain) (Solution, error){
		"Solve": Solve, "SolveExhaustive": SolveExhaustive, "SolvePaper": SolvePaper,
	} {
		sol, err := solver(figure2Chain())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Length != 6 {
			t.Errorf("%s length = %g, want 6", name, sol.Length)
		}
		if len(sol.Orient) != 2 || sol.Orient[0] != Down || sol.Orient[1] != Up {
			t.Errorf("%s orientation = %v, want [down up]", name, sol.Orient)
		}
	}
}

func TestSingleNode(t *testing.T) {
	c := Chain{R: []float64{7}, Down: nil, Up: nil}
	for name, solver := range map[string]func(Chain) (Solution, error){
		"Solve": Solve, "SolveExhaustive": SolveExhaustive, "SolvePaper": SolvePaper,
	} {
		sol, err := solver(c)
		if err != nil || sol.Length != 7 || len(sol.Orient) != 0 {
			t.Errorf("%s on single node = %+v, %v; want length 7", name, sol, err)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := []Chain{
		{},
		{R: []float64{1, 2}, Down: []float64{1}, Up: nil},
		{R: []float64{1, 2}, Down: []float64{-1}, Up: []float64{1}},
		{R: []float64{-1}},
		{R: []float64{1, 2}, Down: []float64{1}, Up: []float64{1}, Fixed: []Orientation{Down, Up}},
		{R: []float64{math.NaN()}},
	}
	for i, c := range bad {
		if _, err := Solve(c); err == nil {
			t.Errorf("case %d: Solve accepted invalid chain", i)
		}
	}
}

func TestEvaluateRejectsViolatedFixed(t *testing.T) {
	c := figure2Chain()
	c.Fixed = []Orientation{Up, Free}
	if _, err := Evaluate(c, []Orientation{Down, Up}); err == nil {
		t.Error("Evaluate accepted orientation violating fixed edge")
	}
	if _, err := Evaluate(c, []Orientation{Up, Free}); err == nil {
		t.Error("Evaluate accepted incomplete orientation")
	}
}

func TestSolveHonoursFixedEdges(t *testing.T) {
	c := figure2Chain()
	c.Fixed = []Orientation{Free, Down} // force T2→T3
	sol, err := Solve(c)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Orient[1] != Down {
		t.Fatalf("fixed edge reoriented: %v", sol.Orient)
	}
	// Best with edge 1 down: [up down] gives 7, [down down] gives 10.
	if sol.Length != 7 {
		t.Errorf("length = %g, want 7", sol.Length)
	}
	ex, err := SolveExhaustive(c)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Length != sol.Length {
		t.Errorf("Solve %g != exhaustive %g", sol.Length, ex.Length)
	}
}

func TestSolvePaperRejectsFixed(t *testing.T) {
	c := figure2Chain()
	c.Fixed = []Orientation{Down, Free}
	if _, err := SolvePaper(c); err == nil {
		t.Error("SolvePaper accepted fixed edges")
	}
}

func randomChain(rng *rand.Rand, n int, withFixed bool) Chain {
	c := Chain{
		R:    make([]float64, n),
		Down: make([]float64, n-1),
		Up:   make([]float64, n-1),
	}
	for i := range c.R {
		c.R[i] = float64(rng.Intn(20))
	}
	for i := 0; i < n-1; i++ {
		c.Down[i] = float64(rng.Intn(20))
		c.Up[i] = float64(rng.Intn(20))
	}
	if withFixed {
		c.Fixed = make([]Orientation, n-1)
		for i := range c.Fixed {
			c.Fixed[i] = Orientation(rng.Intn(3)) // Free, Down or Up
		}
	}
	return c
}

// Property: Solve matches exhaustive search, its orientation is feasible,
// and Evaluate(orientation) reproduces the reported length.
func TestSolveMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		c := randomChain(rng, n, trial%2 == 0)
		want, err := SolveExhaustive(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Length != want.Length {
			t.Fatalf("trial %d: Solve %g != exhaustive %g\nchain %+v", trial, got.Length, want.Length, c)
		}
		if n > 1 {
			ev, err := Evaluate(c, got.Orient)
			if err != nil {
				t.Fatalf("trial %d: solution not feasible: %v", trial, err)
			}
			if ev != got.Length {
				t.Fatalf("trial %d: Evaluate %g != reported %g", trial, ev, got.Length)
			}
		}
	}
}

// Property: the appendix algorithm matches exhaustive search on free chains.
func TestSolvePaperMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(10)
		c := randomChain(rng, n, false)
		want, err := SolveExhaustive(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolvePaper(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Length != want.Length {
			t.Fatalf("trial %d: SolvePaper %g != exhaustive %g\nchain %+v", trial, got.Length, want.Length, c)
		}
		if n > 1 {
			ev, err := Evaluate(c, got.Orient)
			if err != nil {
				t.Fatalf("trial %d: paper solution not feasible: %v (orient %v)", trial, err, got.Orient)
			}
			if ev != got.Length {
				t.Fatalf("trial %d: paper orientation evaluates to %g, reported %g\nchain %+v orient %v",
					trial, ev, got.Length, c, got.Orient)
			}
		}
	}
}

// Property: the optimum is a lower bound on every feasible orientation and
// is monotone under relaxation (freeing a fixed edge can only improve it).
func TestOptimumLowerBoundAndRelaxation(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		c := randomChain(rng, n, true)
		sol, err := Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		// Random feasible orientation.
		orient := make([]Orientation, n-1)
		for i := range orient {
			if f := c.fixedAt(i); f != Free {
				orient[i] = f
			} else if rng.Intn(2) == 0 {
				orient[i] = Down
			} else {
				orient[i] = Up
			}
		}
		ev, err := Evaluate(c, orient)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Length > ev {
			t.Fatalf("optimum %g exceeds feasible %g", sol.Length, ev)
		}
		relaxed := c
		relaxed.Fixed = nil
		rsol, err := Solve(relaxed)
		if err != nil {
			t.Fatal(err)
		}
		if rsol.Length > sol.Length {
			t.Fatalf("relaxed optimum %g worse than constrained %g", rsol.Length, sol.Length)
		}
	}
}

func BenchmarkSolve32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randomChain(rng, 32, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePaper32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randomChain(rng, 32, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePaper(c); err != nil {
			b.Fatal(err)
		}
	}
}
