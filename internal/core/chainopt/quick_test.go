package chainopt

import (
	"testing"
	"testing/quick"
)

// decodeChain turns fuzz bytes into a valid chain of 1..9 nodes with
// optional fixed edges.
func decodeChain(data []byte, withFixed bool) Chain {
	n := 1 + len(data)%9
	at := 0
	next := func() byte {
		if len(data) == 0 {
			return 3
		}
		b := data[at%len(data)]
		at++
		return b
	}
	c := Chain{
		R:    make([]float64, n),
		Down: make([]float64, n-1),
		Up:   make([]float64, n-1),
	}
	for i := range c.R {
		c.R[i] = float64(next() % 16)
	}
	for i := 0; i < n-1; i++ {
		c.Down[i] = float64(next() % 16)
		c.Up[i] = float64(next() % 16)
	}
	if withFixed && n > 1 {
		c.Fixed = make([]Orientation, n-1)
		for i := range c.Fixed {
			c.Fixed[i] = Orientation(next() % 3)
		}
	}
	return c
}

// Property (quick): Solve ≡ SolveExhaustive on arbitrary fixed-edge
// chains; the reported orientation evaluates to the reported length.
func TestQuickSolveOptimal(t *testing.T) {
	f := func(data []byte, withFixed bool) bool {
		c := decodeChain(data, withFixed)
		got, err := Solve(c)
		if err != nil {
			return false
		}
		want, err := SolveExhaustive(c)
		if err != nil {
			return false
		}
		if got.Length != want.Length {
			return false
		}
		if c.M() == 0 {
			return true
		}
		ev, err := Evaluate(c, got.Orient)
		return err == nil && ev == got.Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): the appendix algorithm matches the oracle on free
// chains.
func TestQuickSolvePaperOptimal(t *testing.T) {
	f := func(data []byte) bool {
		c := decodeChain(data, false)
		got, err := SolvePaper(c)
		if err != nil {
			return false
		}
		want, err := SolveExhaustive(c)
		if err != nil {
			return false
		}
		if got.Length != want.Length {
			return false
		}
		if c.M() == 0 {
			return true
		}
		ev, err := Evaluate(c, got.Orient)
		return err == nil && ev == got.Length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// Property (quick): flipping any single free edge of an optimal solution
// never improves it (local optimality).
func TestQuickLocalOptimality(t *testing.T) {
	f := func(data []byte) bool {
		c := decodeChain(data, false)
		if c.M() == 0 {
			return true
		}
		sol, err := Solve(c)
		if err != nil {
			return false
		}
		for i := range sol.Orient {
			alt := append([]Orientation(nil), sol.Orient...)
			alt[i] = opposite(alt[i])
			ev, err := Evaluate(c, alt)
			if err != nil {
				return false
			}
			if ev < sol.Length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
