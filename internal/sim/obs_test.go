package sim

import (
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/workload"
)

// TestRunWithTrace runs a short simulation with a structured observer
// and checks the event stream is complete and consistent with the
// aggregate result.
func TestRunWithTrace(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	metrics := obs.NewMetrics()
	cfg := Config{
		Machine:              machine.DefaultConfig(),
		Scheduler:            sched.KWTPGFactory(2),
		Workload:             workload.Experiment1(16),
		ArrivalRate:          0.6,
		Horizon:              120_000,
		Seed:                 7,
		CheckSerializability: true,
	}
	res, err := Run(cfg, WithTrace(obs.Multi(ring, metrics)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed; horizon too short for the test")
	}

	counts := map[obs.Kind]int{}
	for _, e := range ring.Events() {
		counts[e.Kind]++
		if e.Sched != res.Scheduler {
			t.Fatalf("event labeled %q, result scheduler %q", e.Sched, res.Scheduler)
		}
	}
	if ring.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; enlarge the buffer", ring.Dropped())
	}
	if counts[obs.KindAdmit] != res.Arrived {
		t.Errorf("Admit events %d, arrived %d", counts[obs.KindAdmit], res.Arrived)
	}
	if counts[obs.KindCommit] != res.Completed {
		t.Errorf("Commit events %d, completed %d", counts[obs.KindCommit], res.Completed)
	}
	if counts[obs.KindDecision] == 0 || counts[obs.KindObjectDone] == 0 {
		t.Errorf("missing control-plane events: %v", counts)
	}
	if counts[obs.KindResolve] == 0 {
		t.Errorf("no Resolve events at λ=0.6 (conflicts expected): %v", counts)
	}

	sm := metrics.Sched(res.Scheduler)
	if sm == nil {
		t.Fatal("metrics missing scheduler entry")
	}
	if int(sm.Commits) != res.Completed {
		t.Errorf("metrics commits %d, result %d", sm.Commits, res.Completed)
	}
	granted := sm.AdmitDecisions()["granted"]
	if int(granted) != res.Admitted {
		t.Errorf("granted admits %d, result admitted %d", granted, res.Admitted)
	}
	if blocked := sm.RequestDecisions()["blocked"]; int(blocked) != res.RequestBlocks {
		t.Errorf("blocked decisions %d, result blocks %d", blocked, res.RequestBlocks)
	}
}

// TestRunTraceDeterminismUnaffected: attaching an observer must not
// change the simulated outcome.
func TestRunTraceDeterminismUnaffected(t *testing.T) {
	cfg := Config{
		Machine:     machine.DefaultConfig(),
		Scheduler:   sched.ChainFactory(),
		Workload:    workload.Experiment1(16),
		ArrivalRate: 0.4,
		Horizon:     80_000,
		Seed:        11,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(cfg, WithTrace(obs.Nop{}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Completed != traced.Completed || plain.MeanRT != traced.MeanRT ||
		plain.RequestBlocks != traced.RequestBlocks || plain.CNUtilization != traced.CNUtilization {
		t.Errorf("observer changed the run: %+v vs %+v", plain, traced)
	}
}
