package sim

import (
	"fmt"
	"io"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// tracer writes one line per simulation event in a stable, grep-friendly
// format:
//
//	1204 T17 arrive
//	1215 T17 admit
//	1216 T17 grant step=0 part=P3 mode=r
//	2216 T17 object step=0 n=1
//	5300 T17 commit rt=4096ms
//
// Times are clocks (ms). A nil tracer is silent.
type tracer struct {
	w io.Writer
}

func (tr *tracer) emit(now event.Time, id txn.ID, what string, args ...any) {
	if tr == nil || tr.w == nil {
		return
	}
	fmt.Fprintf(tr.w, "%9d %v %s", int64(now), id, what)
	for i := 0; i+1 < len(args); i += 2 {
		fmt.Fprintf(tr.w, " %v=%v", args[i], args[i+1])
	}
	fmt.Fprintln(tr.w)
}
