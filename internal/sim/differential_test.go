package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/txn"
)

// disjointWorkload generates transactions that never share a partition:
// transaction i touches partitions {4i, 4i+1} of an unbounded partition
// space (placement still spreads them over the 8 nodes).
type disjointWorkload struct{}

func (disjointWorkload) Name() string { return "disjoint" }

func (disjointWorkload) Next(id txn.ID, rng *rand.Rand) *txn.T {
	base := txn.PartitionID(4 * int(id))
	// Consume one rng draw like a real workload would, to keep arrival
	// streams aligned with other generators if compared.
	_ = rng.Intn(2)
	return txn.New(id, []txn.Step{
		{Mode: txn.Read, Part: base, Cost: 2},
		{Mode: txn.Write, Part: base + 1, Cost: 1},
	})
}

// TestDifferentialConflictFree: with no conflicts and zeroed control
// costs, every scheduler — including NODC — must produce the identical
// schedule and therefore identical results. This cross-checks the entire
// admission/grant/commit plumbing of all five schedulers at once.
func TestDifferentialConflictFree(t *testing.T) {
	factories := []sched.Factory{
		sched.NODCFactory(), sched.ASLFactory(), sched.C2PLFactory(),
		sched.ChainFactory(), sched.KWTPGFactory(2),
		sched.ChainC2PLFactory(), sched.KC2PLFactory(2),
	}
	var ref *Result
	var refLabel string
	for _, f := range factories {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.Workload = disjointWorkload{}
		cfg.ArrivalRate = 0.8
		cfg.Horizon = 300_000
		cfg.CheckSerializability = false
		cfg.Machine.Control = sched.Costs{KeepTime: 5000}
		cfg.Machine.StartupTime = 0
		cfg.Machine.CommitTime = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.RequestBlocks != 0 || res.RequestDelays != 0 ||
			res.AdmissionAborts != 0 || res.AdmissionDelays != 0 {
			t.Fatalf("%s: contention on disjoint workload: %+v", f.Label, res)
		}
		res.Scheduler = "" // normalize the label before comparison
		res.SerializabilityChecked = false
		if ref == nil {
			ref, refLabel = res, f.Label
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("%s diverges from %s on a conflict-free workload:\n%+v\nvs\n%+v",
				f.Label, refLabel, res, ref)
		}
	}
}

// TestDifferentialCautiousFamily: CHAIN-C2PL and K2-C2PL must behave
// exactly like plain C2PL whenever their admission constraints never
// fire. A two-transaction conflict keeps the WTPG a single chain with
// one conflict per declaration, so neither constraint can reject.
func TestDifferentialCautiousFamily(t *testing.T) {
	mkCfg := func(f sched.Factory) Config {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.ArrivalRate = 0.25 // light load: rarely more than 2 live txns
		cfg.Horizon = 400_000
		return cfg
	}
	base, err := Run(mkCfg(sched.C2PLFactory()))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []sched.Factory{sched.ChainC2PLFactory(), sched.KC2PLFactory(8)} {
		res, err := Run(mkCfg(f))
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.AdmissionAborts > 0 {
			// The constraint fired after all; equality is not expected.
			t.Logf("%s rejected %d admissions; skipping equality", f.Label, res.AdmissionAborts)
			continue
		}
		if res.Completed != base.Completed || res.MeanRT != base.MeanRT {
			t.Errorf("%s diverges from C2PL without its constraint firing: %d/%.4f vs %d/%.4f",
				f.Label, res.Completed, res.MeanRT, base.Completed, base.MeanRT)
		}
	}
}

// TestNoStarvationUnderModerateLoad: at a stable arrival rate every
// scheduler eventually completes nearly everything that arrived long
// before the horizon.
func TestNoStarvationUnderModerateLoad(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.ArrivalRate = 0.3
		cfg.Horizon = 500_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.Arrived == 0 {
			t.Fatal("no arrivals")
		}
		frac := float64(res.Completed) / float64(res.Arrived)
		if frac < 0.9 {
			t.Errorf("%s: only %.0f%% of arrivals completed (possible starvation)", f.Label, 100*frac)
		}
		if res.MaxRT > 200 {
			t.Errorf("%s: max RT %.1fs at stable load", f.Label, res.MaxRT)
		}
	}
}
