package sim

import (
	"math"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

// TestGoldenTwoWriterSchedule is a fully hand-computed contention
// scenario. Machine defaults: ddtime 1, chaintime 5, kwtpgtime 3,
// startuptime 10, committime 10, ObjTime 1000 (all ms).
//
// C2PL timeline (grant decision costs ddtime = 1):
//
//	T1 = w(P0:3) arrives at t=0: admit decided over 1+10 → admitted 11;
//	  request submitted 11, granted 12; objects 1012/2012/3012; commit
//	  picked up 3012, complete 3022 → RT₁ = 3022 ms.
//	T2 = w(P0:1) arrives at t=100: admitted 111; request submitted 111,
//	  decided blocked at 112; woken by T1's commit 3022; granted 3023;
//	  object 4023; complete 4033 → RT₂ = 3933 ms. Mean RT = 3477.5 ms.
//	Lock waits run from submission to grant: T1 1 ms, T2 2912 ms.
//
// CHAIN additionally pays chaintime = 5 on each W recomputation (every
// request here follows a start or commit): grants shift by 5 ms each,
// mean RT = 3485 ms. K2 pays kwtpgtime = 3 for the single fresh E(q) of
// each grant (blocked evaluations compute no E): mean RT = 3482 ms.
func TestGoldenTwoWriterSchedule(t *testing.T) {
	for _, tc := range []struct {
		factory      sched.Factory
		meanRT       float64
		meanLockWait float64
	}{
		{sched.C2PLFactory(), 3.4775, (0.001 + 2.912) / 2},
		{sched.ChainFactory(), 3.4850, (0.006 + 2.922) / 2},
		{sched.KWTPGFactory(2), 3.4820, (0.004 + 2.918) / 2},
	} {
		f := tc.factory
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.Workload = &workload.Fixed{Label: "two", Txns: []*txn.T{
			txn.New(0, []txn.Step{w(0, 3)}),
			txn.New(0, []txn.Step{w(0, 1)}),
		}}
		cfg.ArrivalTimes = []event.Time{0, 100}
		cfg.ArrivalRate = 0
		cfg.Horizon = 100_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.Completed != 2 {
			t.Fatalf("%s: completed %d", f.Label, res.Completed)
		}
		if math.Abs(res.MeanRT-tc.meanRT) > 1e-9 {
			t.Errorf("%s: MeanRT = %.4f s, want %.4f s", f.Label, res.MeanRT, tc.meanRT)
		}
		if res.RequestBlocks != 1 {
			t.Errorf("%s: blocks = %d, want 1", f.Label, res.RequestBlocks)
		}
		if res.RequestDelays != 0 {
			t.Errorf("%s: delays = %d, want 0", f.Label, res.RequestDelays)
		}
		// Decomposition: admit waits are 11 ms each; lock waits run from
		// request submission to grant; DN time is 3000 + 1000 ms.
		if want := 0.011; math.Abs(res.MeanAdmitWait-want) > 1e-9 {
			t.Errorf("%s: MeanAdmitWait = %g", f.Label, res.MeanAdmitWait)
		}
		if math.Abs(res.MeanLockWait-tc.meanLockWait) > 1e-9 {
			t.Errorf("%s: MeanLockWait = %g, want %g", f.Label, res.MeanLockWait, tc.meanLockWait)
		}
		if want := 2.0; math.Abs(res.MeanDNTime-want) > 1e-9 {
			t.Errorf("%s: MeanDNTime = %g, want %g", f.Label, res.MeanDNTime, want)
		}
	}
}

// TestGoldenASLRetryQuantization: under ASL the second writer cannot
// start until T1 commits, and start attempts are quantized by the 500 ms
// retry delay, so T2 finishes strictly later than under the blocking
// schedulers.
func TestGoldenASLRetryQuantization(t *testing.T) {
	cfg := baseConfig()
	cfg.Scheduler = sched.ASLFactory()
	cfg.Workload = &workload.Fixed{Label: "two", Txns: []*txn.T{
		txn.New(0, []txn.Step{w(0, 3)}),
		txn.New(0, []txn.Step{w(0, 1)}),
	}}
	cfg.ArrivalTimes = []event.Time{0, 100}
	cfg.ArrivalRate = 0
	cfg.Horizon = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.AdmissionDelays == 0 {
		t.Error("ASL never refused the second start")
	}
	// ASL grants all locks at admission, so T1 is granted at 11 and
	// completes at 3021. T2's start attempts are decided at 100, 601,
	// 1102, …, 3106 (501 ms apart); the 3106 attempt succeeds, T2 is
	// admitted 3117, its object finishes 4117 and it completes 4127.
	// Mean RT = (3021 + (4127-100))/2 = 3524 ms.
	if want := 3.5240; math.Abs(res.MeanRT-want) > 1e-9 {
		t.Errorf("MeanRT = %.4f s, want %.4f s", res.MeanRT, want)
	}
}

// TestExplicitArrivalsRespectHorizon: arrivals beyond the horizon are
// dropped.
func TestExplicitArrivalsRespectHorizon(t *testing.T) {
	cfg := baseConfig()
	cfg.Workload = &workload.Fixed{Label: "x", Txns: []*txn.T{
		txn.New(0, []txn.Step{r(0, 1)}),
		txn.New(0, []txn.Step{r(0, 1)}),
	}}
	cfg.ArrivalTimes = []event.Time{10, 99_999_999}
	cfg.ArrivalRate = 0
	cfg.Horizon = 50_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 1 {
		t.Errorf("arrived %d, want 1", res.Arrived)
	}
}
