package sim

import (
	"reflect"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/workload"
)

// chaosConfig is a small machine driven hard enough that injected
// faults land while locks are held and precedence edges are resolved.
func chaosConfig(f sched.Factory, seed int64) Config {
	m := machine.DefaultConfig()
	m.NumNodes = 4
	m.NumParts = 8
	m.ObjTime = 100
	m.RetryDelay = 50
	return Config{
		Machine:              m,
		Scheduler:            f,
		Workload:             workload.Experiment1(m.NumParts),
		ArrivalRate:          4,
		Horizon:              10_000_000, // effectively unbounded: MaxTxns ends the run
		Seed:                 seed,
		MaxTxns:              25,
		CheckSerializability: true,
		SelfCheck:            true,
	}
}

// TestChaosMatrix is the seeded fault-injection suite: for each
// scheduler under test, 100 seeds of injected mid-run aborts, slow
// partitions, and admission-refusal bursts. Every run must finish with
// zero invariant violations (SelfCheck panics otherwise), a
// serializable committed schedule, no transactions wedged at the
// horizon, and every arrival accounted for as either committed or
// injected-aborted — faults may slow the machine down but must never
// deadlock it or strand a survivor.
func TestChaosMatrix(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(),
		sched.C2PLFactory(),
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
	}
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	cfgFaults := fault.Config{
		AbortRate:        0.25,
		SlowIORate:       0.25,
		SlowIOFactor:     3,
		AdmitRefusalRate: 0.25,
	}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			aborts, refusals := 0, 0
			for seed := 0; seed < seeds; seed++ {
				inj, err := fault.New(uint64(seed)+1, cfgFaults)
				if err != nil {
					t.Fatal(err)
				}
				metrics := obs.NewMetrics()
				res, err := Run(chaosConfig(f, int64(seed)), WithFaults(inj), WithTrace(metrics))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.LiveAtEnd != 0 {
					t.Fatalf("seed %d: %d transactions wedged at the horizon", seed, res.LiveAtEnd)
				}
				if res.Completed+res.InjectedAborts != res.Arrived {
					t.Fatalf("seed %d: arrived %d != completed %d + injected aborts %d",
						seed, res.Arrived, res.Completed, res.InjectedAborts)
				}
				sm := metrics.Sched(res.Scheduler)
				if sm == nil {
					t.Fatalf("seed %d: no metrics for %s", seed, res.Scheduler)
				}
				if int(sm.Recoveries) != res.InjectedAborts {
					t.Fatalf("seed %d: %d abort-recovery events for %d injected aborts",
						seed, sm.Recoveries, res.InjectedAborts)
				}
				aborts += res.InjectedAborts
				refusals += res.InjectedRefusals
			}
			// The matrix must actually exercise the recovery paths: at the
			// configured rates a fault-free matrix means the injector came
			// unwired.
			if aborts == 0 {
				t.Errorf("%s: no injected aborts across %d seeds", f.Label, seeds)
			}
			if refusals == 0 {
				t.Errorf("%s: no injected admission refusals across %d seeds", f.Label, seeds)
			}
			t.Logf("%s: %d injected aborts, %d refusals over %d seeds", f.Label, aborts, refusals, seeds)
		})
	}
}

// TestFaultsOffIsByteIdentical locks in the zero-cost guarantee: a run
// with a disabled injector produces exactly the same Result as a run
// with no injector at all.
func TestFaultsOffIsByteIdentical(t *testing.T) {
	cfg := chaosConfig(sched.ChainFactory(), 7)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	disabled, err := fault.New(9, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(cfg, WithFaults(disabled))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, faulted) {
		t.Errorf("disabled injector changed the result:\nbase:    %+v\nfaulted: %+v", base, faulted)
	}
}
