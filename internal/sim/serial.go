package sim

import (
	"fmt"
	"sort"

	"batsched/internal/txn"
)

// serialChecker verifies conflict serializability of an executed
// schedule. Since every scheduler holds locks until commit, the grant
// order of conflicting locks is the serialization order; the checker
// records grants per partition and verifies that the induced conflict
// graph over committed transactions is acyclic.
type serialChecker struct {
	byPart    map[txn.PartitionID][]grantRec
	committed map[txn.ID]bool
}

type grantRec struct {
	id   txn.ID
	mode txn.Mode
}

func newSerialChecker() *serialChecker {
	return &serialChecker{
		byPart:    make(map[txn.PartitionID][]grantRec),
		committed: make(map[txn.ID]bool),
	}
}

// RecordGrant notes that id acquired a lock on p in the given mode.
func (c *serialChecker) RecordGrant(id txn.ID, p txn.PartitionID, mode txn.Mode) {
	c.byPart[p] = append(c.byPart[p], grantRec{id, mode})
}

// RecordCommit marks a transaction as committed; only committed
// transactions participate in the final check.
func (c *serialChecker) RecordCommit(id txn.ID) { c.committed[id] = true }

// Verify returns an error if the conflict graph over committed
// transactions has a cycle (the schedule is not conflict serializable).
func (c *serialChecker) Verify() error {
	succ := make(map[txn.ID]map[txn.ID]bool)
	addEdge := func(a, b txn.ID) {
		if succ[a] == nil {
			succ[a] = make(map[txn.ID]bool)
		}
		succ[a][b] = true
	}
	for _, grants := range c.byPart {
		for i := 0; i < len(grants); i++ {
			if !c.committed[grants[i].id] {
				continue
			}
			for j := i + 1; j < len(grants); j++ {
				if grants[j].id == grants[i].id || !c.committed[grants[j].id] {
					continue
				}
				if grants[i].mode.Conflicts(grants[j].mode) {
					addEdge(grants[i].id, grants[j].id)
				}
			}
		}
	}
	// Cycle detection over the conflict graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[txn.ID]int)
	var nodes []txn.ID
	for id := range succ {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var cycleAt txn.ID
	var dfs func(u txn.ID) bool
	dfs = func(u txn.ID) bool {
		color[u] = grey
		var next []txn.ID
		for v := range succ[u] {
			next = append(next, v)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, v := range next {
			switch color[v] {
			case grey:
				cycleAt = v
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			return fmt.Errorf("sim: schedule not conflict serializable (cycle through %v)", cycleAt)
		}
	}
	return nil
}
