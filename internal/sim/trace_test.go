package sim

import (
	"strings"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

func TestTraceOutput(t *testing.T) {
	var b strings.Builder
	cfg := baseConfig()
	cfg.Workload = &workload.Fixed{Label: "two", Txns: []*txn.T{
		txn.New(0, []txn.Step{w(0, 2)}),
		txn.New(0, []txn.Step{w(0, 1)}),
	}}
	cfg.ArrivalTimes = []event.Time{0, 100}
	cfg.ArrivalRate = 0
	cfg.Horizon = 50_000
	cfg.Trace = &b
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Fatalf("completed %d", res.Completed)
	}
	out := b.String()
	for _, want := range []string{
		"T1 arrive", "T1 admit", "T1 grant step=0 part=P0 mode=w",
		"T2 blocked step=0 part=P0", "T2 grant", "T1 commit rt=", "T2 commit rt=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Events appear in nondecreasing time order.
	last := int64(-1)
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var ts int64
		if _, err := fmtSscan(line, &ts); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ts < last {
			t.Fatalf("trace out of order at %q", line)
		}
		last = ts
	}
}

// fmtSscan parses the leading timestamp of a trace line.
func fmtSscan(line string, ts *int64) (int, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, nil
	}
	var v int64
	for _, c := range fields[0] {
		if c < '0' || c > '9' {
			return 0, errBadTS
		}
		v = v*10 + int64(c-'0')
	}
	*ts = v
	return 1, nil
}

var errBadTS = &traceErr{"bad timestamp"}

type traceErr struct{ s string }

func (e *traceErr) Error() string { return e.s }

func TestSelfCheckMode(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.SelfCheck = true
		cfg.ArrivalRate = 0.5
		cfg.Horizon = 100_000
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
	}
}

func TestTailLatencyMetrics(t *testing.T) {
	cfg := baseConfig()
	cfg.ArrivalRate = 0.5
	cfg.Horizon = 200_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	if res.P95RT < res.MeanRT {
		t.Errorf("P95 %g below mean %g", res.P95RT, res.MeanRT)
	}
	if res.MaxRT < res.P95RT {
		t.Errorf("Max %g below P95 %g", res.MaxRT, res.P95RT)
	}
}
