// Package sim runs the paper's simulation model (§4.1, Figure 5): a
// Poisson stream of BATs arrives at the centralized control node, the
// configured scheduler decides admissions and lock grants, granted steps
// execute at the data-processing node holding their partition, and the
// run reports mean response time, throughput, and utilization — the
// metrics of Figures 6–10.
//
// The simulation is a deterministic function of (Config, Seed): all
// randomness flows through a single seeded source and all simultaneous
// events fire in scheduling order.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync/atomic"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/stats"
	"batsched/internal/storage"
	"batsched/internal/txn"
	"batsched/internal/wal"
	"batsched/internal/workload"
)

// Option configures one Run beyond the positional Config — the pattern
// for new knobs (DESIGN.md §9), keeping Config stable for callers that
// build it as a literal.
type Option func(*runOpts)

type runOpts struct {
	observer obs.Observer
	inj      *fault.Injector
	wal      *wal.Log
	store    *storage.Store
}

// WithTrace attaches a structured trace observer to the run: the
// simulator emits timeline events (Admit, Request, ObjectDone, Commit)
// and wraps the scheduler with sched.Observed so every decision, edge
// resolution and critical-path change is reported too. A nil observer
// is ignored; without one the run pays nothing.
func WithTrace(o obs.Observer) Option {
	return func(rc *runOpts) { rc.observer = o }
}

// WithFaults attaches a fault injector: selected transactions abort
// after a deterministic amount of bulk processing (exercising the
// schedulers' abort-recovery path), selected partitions run their I/O
// slow, selected admissions are refused at the control node before
// the scheduler sees them, and selected data nodes crash outright mid-
// run — their partitions re-home to the survivors, recoverable resident
// jobs requeue, and transactions whose partial bulk work died with the
// node abort through the scheduler's recovery path. Every injected
// fault is followed by a scheduler invariant check regardless of
// Config.SelfCheck. A nil injector is ignored; fault decisions are pure
// functions of the injector's seed, so the same (Config, Seed, fault
// seed) triple replays the same faulted run.
func WithFaults(in *fault.Injector) Option {
	return func(rc *runOpts) { rc.inj = in }
}

// Config describes one simulation run.
type Config struct {
	Machine   machine.Config
	Scheduler sched.Factory
	Workload  workload.Generator
	// ArrivalRate is λ in transactions per second (Poisson arrivals).
	ArrivalRate float64
	// Horizon is the simulated duration (paper: 2,000,000 clocks = ms).
	Horizon event.Time
	// Warmup excludes transactions arriving before it from the metrics.
	Warmup event.Time
	// Seed drives all randomness.
	Seed int64
	// MaxTxns optionally caps generated arrivals (0 = unlimited).
	MaxTxns int
	// ArrivalTimes, if non-empty, replaces the Poisson process with an
	// explicit arrival schedule (one transaction per entry, in order).
	// Used for reproducible scenarios and integration tests.
	ArrivalTimes []event.Time
	// CheckSerializability verifies the executed schedule at the end.
	// Must be false for NODC, which ignores conflicts by design.
	CheckSerializability bool
	// Trace, if set, receives one line per simulation event (arrivals,
	// admissions, grants, blocks, delays, object completions, commits).
	Trace io.Writer
	// SelfCheck runs the schedulers' internal invariant checks (no
	// conflicting lock holders) after every commit. For tests and
	// debugging; slows large runs down.
	SelfCheck bool
	// SampleEvery, if positive, records a time-series sample of system
	// state every SampleEvery clocks (live transactions, control-node
	// queue, busy data nodes) — the raw material for watching DC
	// thrashing build up.
	SampleEvery event.Time
	// Classify, if set, assigns each transaction a class label; the
	// result then carries per-class response times and completion counts
	// (used by the mixed-workload experiments).
	Classify func(*txn.T) string
	// Declustered switches the file placement from the paper's default
	// (node = partition mod NumNodes) to full declustering: every
	// partition is spread over all nodes, so one bulk step executes as
	// NumNodes parallel sub-jobs. This is the intra-transaction
	// parallelism alternative the paper discusses in §4.3 — it benefits
	// BATs but, on a real machine, costs short transactions message
	// overhead that this simulator does not model.
	Declustered bool
	// DeclusterWidth enables *partial* declustering ([3]'s placement):
	// each partition is spread over this many nodes, starting at its home
	// node. 0 or 1 means no declustering; values ≥ NumNodes (or the
	// Declustered flag) mean full declustering.
	DeclusterWidth int
	// DeadNodes lists data nodes that are down for the whole run: their
	// partitions are re-homed to the survivors before the first arrival
	// (no node-down events — this is topology, not a fault). Used to
	// replay a crashed run's post-crash placement, e.g. by the
	// differential recovery tests. At least one node must survive.
	DeadNodes []int
	// BatchWindow enables epoch-batch admission: arrivals are collected
	// for windows of this many clocks and admitted as one batch at each
	// window boundary through the scheduler's BatchAdmitter surface
	// (rejected members roll into a later epoch). Requires a batch-
	// capable scheduler (EPOCH); 0 keeps the per-arrival admission path
	// for every scheduler.
	BatchWindow event.Time
}

// Result reports one run's metrics.
type Result struct {
	Scheduler   string
	Workload    string
	ArrivalRate float64
	Horizon     event.Time

	Arrived         int
	Admitted        int
	Completed       int
	Measured        int // completions counted in the metrics window
	AdmissionDelays int // ASL start refusals and similar
	AdmissionAborts int // chain-form / K-conflict rejections
	RequestDelays   int
	RequestBlocks   int

	// MeanRT / StdRT are response times in seconds over measured
	// completions (creation to completion, §4.1); P95RT, P99RT and MaxRT
	// report the tail.
	MeanRT float64
	StdRT  float64
	P95RT  float64
	P99RT  float64
	MaxRT  float64
	// Throughput is completed transactions per second in the window.
	Throughput float64

	// CNUtilization is control-node busy fraction; NodeUtilization is
	// per-DN busy fraction; MeanNodeUtil averages the DNs.
	CNUtilization   float64
	NodeUtilization []float64
	MeanNodeUtil    float64

	// MaxLive is the peak number of concurrently admitted transactions.
	MaxLive int
	// LastCompletion is the commit time of the last completed
	// transaction — the batch makespan when a fixed batch is released
	// via ArrivalTimes.
	LastCompletion event.Time
	// LiveAtEnd counts transactions still admitted-but-uncommitted at the
	// horizon. Arrived = Completed + InjectedAborts + CrashAborts +
	// LiveAtEnd + (not yet admitted).
	LiveAtEnd int

	// InjectedAborts counts transactions killed mid-run by the fault
	// injector (WithFaults); they release their locks through the
	// scheduler's abort-recovery path and do not resubmit (the caller
	// abandoned them). InjectedRefusals counts admission attempts the
	// injector refused before the scheduler saw them (those do retry).
	InjectedAborts   int
	InjectedRefusals int

	// Node-crash recovery counters (zero unless the injector crashes
	// nodes): NodeCrashes is nodes lost mid-run, RehomedParts is
	// partitions moved to survivors, RequeuedJobs is recoverable resident
	// jobs re-enqueued at their partition's new home, and CrashAborts is
	// transactions aborted because their partial bulk results died with
	// the node (unrecoverable; they do not resubmit).
	NodeCrashes  int
	RehomedParts int
	RequeuedJobs int
	CrashAborts  int

	// Epoch-batch counters (zero unless Config.BatchWindow > 0): Epochs
	// is admission windows flushed with at least one arrival, MaxBatch
	// the largest batch, MeanBatch the mean batch size, and MaxClusters
	// the largest number of conflict-free clusters admitted by one flush
	// (the peak parallelism a cluster dispatcher could exploit).
	Epochs      int
	MaxBatch    int
	MeanBatch   float64
	MaxClusters int

	// Response-time decomposition over measured completions (seconds):
	// admission wait (arrival to admission), lock wait (request
	// submission to grant, summed over steps), and data-node time (grant
	// to step completion, queueing included).
	MeanAdmitWait float64
	MeanLockWait  float64
	MeanDNTime    float64

	// SerializabilityChecked / SerializabilityOK report the final check.
	SerializabilityChecked bool

	// Per-class metrics (populated when Config.Classify is set): mean
	// response time in seconds and completions per class.
	ClassMeanRT    map[string]float64
	ClassCompleted map[string]int

	// Samples is the periodic time series (when Config.SampleEvery > 0).
	Samples []Sample
}

// Sample is one periodic observation of system state.
type Sample struct {
	At event.Time
	// Live counts admitted-but-uncommitted transactions.
	Live int
	// CNQueue is the number of control requests waiting at the CN.
	CNQueue int
	// BusyNodes counts data nodes with work queued or running.
	BusyNodes int
}

// txnState tracks one transaction through its lifecycle.
type txnState struct {
	t       *txn.T
	arrived event.Time
	step    int

	// Response-time decomposition bookkeeping.
	admittedAt  event.Time
	requestedAt event.Time // when the current step's request was first submitted
	grantedAt   event.Time
	lockWait    event.Time // accumulated over steps
	dnTime      event.Time // accumulated over steps
	// outstanding counts sub-jobs of the current step still running at
	// data nodes (only >1 under declustered placement).
	outstanding int

	// Fault-injection bookkeeping (zero without WithFaults): abortAt is
	// the processed-object count at which the transaction dies (0 =
	// never), processed accumulates quanta, jobs holds the current
	// step's data-node jobs so an abort can cancel them, aborting
	// latches once the abort is initiated, and admitAttempts numbers
	// admission tries for the injector's refusal bursts.
	abortAt       float64
	processed     float64
	jobs          []*machine.Job
	aborting      bool
	admitAttempts int

	// WAL bookkeeping (zero without WithWAL): the node file the Begin
	// record went to (completions must follow it there — see
	// internal/wal), whether a Begin was logged at all, and the final
	// predecessor set captured just before the scheduler's Commit drops
	// the transaction from the graph.
	walNode   int
	walLogged bool
	walPreds  []txn.ID

	// Storage bookkeeping (zero without WithStorage): the round-robin
	// page cursor storeTouch advances one page per processed quantum.
	pageCursor uint32
}

type simulator struct {
	cfg    Config
	q      *event.Queue
	rng    *rand.Rand
	cn     *machine.ControlNode
	nodes  []*machine.DataNode
	place  *machine.Placement
	sch    sched.Scheduler
	nextID txn.ID

	live    map[txn.ID]*txnState
	waiting map[txn.PartitionID][]*txnState

	res       Result
	rt        stats.Welford
	admitWait stats.Welford
	lockWait  stats.Welford
	dnTime    stats.Welford
	classRT   map[string]*stats.Welford
	rts       []float64
	checker   *serialChecker
	trace     *tracer
	obs       obs.Observer // nil = no structured trace
	obsLabel  string
	inj       *fault.Injector // nil = no fault injection
	slowSeen  map[txn.PartitionID]bool
	wal       *wal.Log       // nil = no dependency logging
	walErr    error          // first WAL failure; reported by Run
	store     *storage.Store // nil = no page I/O
	storeErr  error          // first storage failure; reported by Run
	storeNow  atomic.Int64   // shadow of q.Now() for the store's clock:
	// the store's background goroutines (flusher, prefetcher) stamp
	// their trace events off-thread, and the event queue's own Now is
	// not safe to read concurrently with the sim loop advancing it.

	// Epoch-batch state (BatchWindow > 0): the batch-capable scheduler
	// surface, the arrivals collected in the open window, whether the
	// window's flush event is already scheduled, and the running batch-
	// size sum for MeanBatch.
	batch          sched.BatchAdmitter
	epochBuf       []*txnState
	epochScheduled bool
	batchSum       int
}

// Run executes one simulation and returns its metrics. It returns an
// error on invalid configuration or on a serializability violation.
// Options extend the run without growing Config (e.g. WithTrace).
func Run(cfg Config, opts ...Option) (*Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workload == nil {
		return nil, fmt.Errorf("sim: nil workload")
	}
	if cfg.Scheduler.New == nil {
		return nil, fmt.Errorf("sim: nil scheduler factory")
	}
	if cfg.ArrivalRate <= 0 && len(cfg.ArrivalTimes) == 0 {
		return nil, fmt.Errorf("sim: arrival rate %g and no explicit arrivals", cfg.ArrivalRate)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %v", cfg.Horizon)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Horizon {
		return nil, fmt.Errorf("sim: warmup %v outside horizon %v", cfg.Warmup, cfg.Horizon)
	}
	if cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("sim: negative batch window %v", cfg.BatchWindow)
	}
	if len(cfg.DeadNodes) > 0 {
		dead := make(map[int]bool, len(cfg.DeadNodes))
		for _, d := range cfg.DeadNodes {
			if d < 0 || d >= cfg.Machine.NumNodes {
				return nil, fmt.Errorf("sim: dead node %d outside [0,%d)", d, cfg.Machine.NumNodes)
			}
			dead[d] = true
		}
		if len(dead) >= cfg.Machine.NumNodes {
			return nil, fmt.Errorf("sim: DeadNodes %v leaves no survivor", cfg.DeadNodes)
		}
	}

	s := &simulator{
		cfg:     cfg,
		q:       event.NewQueue(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		live:    make(map[txn.ID]*txnState),
		waiting: make(map[txn.PartitionID][]*txnState),
	}
	var rc runOpts
	for _, opt := range opts {
		opt(&rc)
	}
	s.classRT = make(map[string]*stats.Welford)
	if cfg.Trace != nil {
		s.trace = &tracer{w: cfg.Trace}
	}
	if rc.inj.Enabled() {
		s.inj = rc.inj
		s.slowSeen = make(map[txn.PartitionID]bool)
	}
	s.wal = rc.wal
	s.store = rc.store
	s.cn = machine.NewControlNode(s.q)
	s.sch = cfg.Scheduler.New(cfg.Machine.Control)
	if rc.observer != nil {
		s.obs = rc.observer
		s.sch = sched.Observed(s.sch, rc.observer)
	}
	if cfg.BatchWindow > 0 {
		ba, ok := s.sch.(sched.BatchAdmitter)
		if !ok {
			return nil, fmt.Errorf("sim: batch window %v but scheduler %s cannot batch-admit (want EPOCH)",
				cfg.BatchWindow, s.sch.Name())
		}
		s.batch = ba
	}
	s.res.Scheduler = s.sch.Name()
	s.obsLabel = s.res.Scheduler // matches the sched.Observed label
	s.storeBind()
	s.res.Workload = cfg.Workload.Name()
	s.res.ArrivalRate = cfg.ArrivalRate
	s.res.Horizon = cfg.Horizon
	if cfg.CheckSerializability {
		s.checker = newSerialChecker()
	}
	for i := 0; i < cfg.Machine.NumNodes; i++ {
		n := machine.NewDataNode(i, s.q, cfg.Machine.ObjTime)
		n.OnQuantum = s.onQuantum
		n.OnStepDone = s.onStepDone
		s.nodes = append(s.nodes, n)
	}
	s.place = machine.NewPlacement(cfg.Machine)
	for _, d := range cfg.DeadNodes {
		if !s.place.Alive(d) {
			continue // duplicate entry
		}
		s.place.Kill(d)
		s.nodes[d].Kill()
	}
	if s.inj != nil {
		for node := 0; node < cfg.Machine.NumNodes; node++ {
			node := node
			if at, ok := s.inj.NodeCrash(node, cfg.Machine.NumNodes, cfg.Horizon); ok && at < cfg.Horizon {
				s.q.At(at, func(now event.Time) { s.crashNode(node, now) })
			}
		}
	}
	if cfg.SampleEvery > 0 {
		s.scheduleSample(cfg.SampleEvery)
	}
	if len(cfg.ArrivalTimes) > 0 {
		for _, at := range cfg.ArrivalTimes {
			if at > cfg.Horizon {
				continue
			}
			s.q.At(at, func(now event.Time) {
				s.res.Arrived++
				s.nextID++
				st := &txnState{t: s.cfg.Workload.Next(s.nextID, s.rng), arrived: now}
				s.trace.emit(now, st.t.ID, "arrive")
				s.emitObs(obs.Event{Kind: obs.KindAdmit, At: now, Txn: st.t.ID})
				s.submitAdmit(st)
			})
		}
	} else {
		s.scheduleArrival(0)
	}
	s.q.RunUntil(cfg.Horizon)
	s.finish()
	if s.checker != nil {
		s.res.SerializabilityChecked = true
		if err := s.checker.Verify(); err != nil {
			return &s.res, err
		}
	}
	if s.walErr != nil {
		return &s.res, fmt.Errorf("sim: wal: %w", s.walErr)
	}
	if s.storeErr != nil {
		return &s.res, fmt.Errorf("sim: storage: %w", s.storeErr)
	}
	return &s.res, nil
}

// scheduleSample records periodic system-state samples.
func (s *simulator) scheduleSample(every event.Time) {
	s.q.After(every, func(now event.Time) {
		busy := 0
		for _, n := range s.nodes {
			if n.QueueLen() > 0 {
				busy++
			}
		}
		s.res.Samples = append(s.res.Samples, Sample{
			At:        now,
			Live:      len(s.live),
			CNQueue:   s.cn.QueueLen(),
			BusyNodes: busy,
		})
		if now+every <= s.cfg.Horizon {
			s.scheduleSample(every)
		}
	})
}

// scheduleArrival schedules the next Poisson arrival after `from`.
func (s *simulator) scheduleArrival(from event.Time) {
	if s.cfg.MaxTxns > 0 && s.res.Arrived >= s.cfg.MaxTxns {
		return
	}
	ratePerMS := s.cfg.ArrivalRate / 1000.0
	gap := event.Time(math.Round(s.rng.ExpFloat64() / ratePerMS))
	at := from + gap
	if at > s.cfg.Horizon {
		return
	}
	s.q.At(at, func(now event.Time) {
		s.res.Arrived++
		s.nextID++
		st := &txnState{
			t:       s.cfg.Workload.Next(s.nextID, s.rng),
			arrived: now,
		}
		s.trace.emit(now, st.t.ID, "arrive")
		s.emitObs(obs.Event{Kind: obs.KindAdmit, At: now, Txn: st.t.ID})
		s.submitAdmit(st)
		s.scheduleArrival(now)
	})
}

// submitAdmit asks the scheduler to admit st's transaction. Under
// epoch-batch admission the transaction instead joins the open window's
// batch and is decided at the window boundary. An injected admission
// refusal intercepts the attempt at the control node — the scheduler
// never sees it — and the transaction resubmits after the usual retry
// delay (into a later epoch when batching).
func (s *simulator) submitAdmit(st *txnState) {
	if s.batch != nil {
		s.bufferAdmit(st)
		return
	}
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		attempt := st.admitAttempts
		st.admitAttempts++
		if s.inj.RefuseAdmit(st.t.ID, attempt) {
			return 0, func(now event.Time) {
				s.res.InjectedRefusals++
				s.trace.emit(now, st.t.ID, "admit-refused-fault")
				s.emitObs(obs.Event{Kind: obs.KindFault, At: now, Txn: st.t.ID, Op: "refuse-admit"})
				s.retryLater(func(event.Time) { s.submitAdmit(st) })
			}
		}
		out := s.sch.Admit(st.t, now)
		cpu := out.CPU
		if out.Decision == sched.Granted {
			// Startup coordination is spent only on an actual start.
			cpu += s.cfg.Machine.StartupTime
		}
		return cpu, func(now event.Time) { s.handleAdmit(st, out.Decision, now) }
	})
}

func (s *simulator) handleAdmit(st *txnState, d sched.Decision, now event.Time) {
	switch d {
	case sched.Granted:
		s.res.Admitted++
		s.live[st.t.ID] = st
		if len(s.live) > s.res.MaxLive {
			s.res.MaxLive = len(s.live)
		}
		st.step = 0
		st.admittedAt = now
		if at, ok := s.inj.AbortAt(st.t); ok {
			st.abortAt = at
		}
		if s.wal != nil {
			s.walBegin(st, now)
		}
		s.trace.emit(now, st.t.ID, "admit")
		s.advance(st, now)
	case sched.Delayed:
		s.res.AdmissionDelays++
		s.trace.emit(now, st.t.ID, "admit-delayed")
		s.retryLater(func(event.Time) { s.submitAdmit(st) })
	case sched.Aborted:
		s.res.AdmissionAborts++
		s.trace.emit(now, st.t.ID, "admit-aborted")
		s.retryLater(func(event.Time) { s.submitAdmit(st) })
	default:
		panic(fmt.Sprintf("sim: admit decision %v", d))
	}
}

// bufferAdmit collects st into the open epoch window and schedules the
// window's flush at the next epoch-grid boundary — the smallest
// multiple of BatchWindow strictly after now, so every arrival waits at
// most one window and all runs flush on the same deterministic grid.
func (s *simulator) bufferAdmit(st *txnState) {
	s.epochBuf = append(s.epochBuf, st)
	if s.epochScheduled {
		return
	}
	s.epochScheduled = true
	w := s.cfg.BatchWindow
	boundary := (s.q.Now()/w + 1) * w
	s.q.At(boundary, s.flushEpoch)
}

// flushEpoch closes the open window and admits its batch as one control
// job: injected admission refusals peel off first (the scheduler never
// sees them, as in the per-arrival path), the rest go through one
// AdmitBatch call, and the job's CPU charge is the sum of the per-
// transaction admission tests plus the single batch-level W
// recomputation plus startup coordination per actual start. Rejected
// members retry into a later epoch through the normal retry path.
func (s *simulator) flushEpoch(now event.Time) {
	s.epochScheduled = false
	batch := s.epochBuf
	s.epochBuf = nil
	if len(batch) == 0 {
		return
	}
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		var refused, kept []*txnState
		for _, st := range batch {
			attempt := st.admitAttempts
			st.admitAttempts++
			if s.inj.RefuseAdmit(st.t.ID, attempt) {
				refused = append(refused, st)
			} else {
				kept = append(kept, st)
			}
		}
		ts := make([]*txn.T, len(kept))
		for i, st := range kept {
			ts[i] = st.t
		}
		out := s.batch.AdmitBatch(ts, now)
		cpu := out.CPU
		for _, o := range out.Outcomes {
			cpu += o.CPU
		}
		cpu += event.Time(out.Admitted) * s.cfg.Machine.StartupTime
		return cpu, func(now event.Time) {
			s.res.Epochs++
			s.batchSum += len(batch)
			if len(batch) > s.res.MaxBatch {
				s.res.MaxBatch = len(batch)
			}
			if out.Clusters > s.res.MaxClusters {
				s.res.MaxClusters = out.Clusters
			}
			s.trace.emit(now, 0, "epoch-flush",
				"batch", len(batch), "admitted", out.Admitted, "clusters", out.Clusters)
			s.emitObs(obs.Event{Kind: obs.KindEpochFlush, At: now,
				Batch: len(batch), Objects: float64(out.Admitted), Clusters: out.Clusters, CPU: out.CPU})
			for _, st := range refused {
				st := st
				s.res.InjectedRefusals++
				s.trace.emit(now, st.t.ID, "admit-refused-fault")
				s.emitObs(obs.Event{Kind: obs.KindFault, At: now, Txn: st.t.ID, Op: "refuse-admit"})
				s.retryLater(func(event.Time) { s.submitAdmit(st) })
			}
			for i, st := range kept {
				s.handleAdmit(st, out.Outcomes[i].Decision, now)
			}
		}
	})
}

// emitObs sends one structured trace event (nil observer = one branch).
func (s *simulator) emitObs(e obs.Event) {
	if s.obs == nil {
		return
	}
	e.Sched = s.obsLabel
	s.obs.Observe(e)
}

// advance moves st to its next step or to commitment.
func (s *simulator) advance(st *txnState, now event.Time) {
	if st.step >= len(st.t.Steps) {
		s.submitCommit(st)
		return
	}
	st.requestedAt = now
	if s.obs != nil {
		sp := st.t.Steps[st.step]
		s.emitObs(obs.Event{
			Kind:  obs.KindRequest,
			At:    now,
			Txn:   st.t.ID,
			Step:  st.step,
			Part:  sp.Part,
			Queue: len(s.waiting[sp.Part]),
		})
	}
	s.submitRequest(st)
}

// submitRequest asks for the lock of st's current step.
func (s *simulator) submitRequest(st *txnState) {
	step := st.step
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		out := s.sch.Request(st.t, step, now)
		return out.CPU, func(now event.Time) { s.handleRequest(st, step, out.Decision, now) }
	})
}

func (s *simulator) handleRequest(st *txnState, step int, d sched.Decision, now event.Time) {
	sp := st.t.Steps[step]
	switch d {
	case sched.Granted:
		if s.checker != nil {
			s.checker.RecordGrant(st.t.ID, sp.Part, sp.Mode)
		}
		st.lockWait += now - st.requestedAt
		st.grantedAt = now
		s.trace.emit(now, st.t.ID, "grant", "step", step, "part", sp.Part, "mode", sp.Mode)
		s.dispatch(st, step, sp)
	case sched.Blocked:
		s.res.RequestBlocks++
		s.trace.emit(now, st.t.ID, "blocked", "step", step, "part", sp.Part)
		s.waiting[sp.Part] = append(s.waiting[sp.Part], st)
	case sched.Delayed:
		s.res.RequestDelays++
		s.trace.emit(now, st.t.ID, "delayed", "step", step, "part", sp.Part)
		s.retryLater(func(event.Time) { s.submitRequest(st) })
	default:
		panic(fmt.Sprintf("sim: request decision %v", d))
	}
}

// dispatch sends the granted step to its data node — or, under
// declustered placement, splits it into one sub-job per node that
// complete independently (§4.3's intra-transaction parallelism).
func (s *simulator) dispatch(st *txnState, step int, sp txn.Step) {
	width := s.cfg.DeclusterWidth
	if s.cfg.Declustered || width > len(s.nodes) {
		width = len(s.nodes)
	}
	factor := s.ioFactor(sp.Part, st.t.ID)
	if width <= 1 || len(s.nodes) == 1 {
		st.outstanding = 1
		j := &machine.Job{Txn: st.t, Step: step, Remaining: sp.Cost, TimeFactor: factor}
		st.jobs = []*machine.Job{j}
		s.nodes[s.place.NodeOf(sp.Part)].Enqueue(j)
		return
	}
	// Declustered sub-jobs spread over the *alive* nodes starting at the
	// partition's current home; with every node alive this is the classic
	// (home+i) mod NumNodes placement.
	alive := s.place.AliveIDs()
	if width > len(alive) {
		width = len(alive)
	}
	home := s.place.NodeOf(sp.Part)
	hi := 0
	for i, n := range alive {
		if n == home {
			hi = i
			break
		}
	}
	share := sp.Cost / float64(width)
	st.outstanding = width
	st.jobs = st.jobs[:0]
	for i := 0; i < width; i++ {
		j := &machine.Job{Txn: st.t, Step: step, Remaining: share, TimeFactor: factor}
		st.jobs = append(st.jobs, j)
		s.nodes[alive[(hi+i)%len(alive)]].Enqueue(j)
	}
}

// ioFactor returns the injected slow-I/O multiplier for a partition
// (1 without faults), emitting one Fault event the first time a slow
// partition is touched.
func (s *simulator) ioFactor(p txn.PartitionID, id txn.ID) float64 {
	if s.inj == nil {
		return 0 // Job.TimeFactor zero value: unscaled
	}
	f := s.inj.IOFactor(p)
	if f != 1 && !s.slowSeen[p] {
		s.slowSeen[p] = true
		s.trace.emit(s.q.Now(), id, "fault-slow-io", "part", p, "factor", f)
		s.emitObs(obs.Event{Kind: obs.KindFault, At: s.q.Now(), Txn: id, Part: p, Op: "slow-io"})
	}
	return f
}

// retryLater resubmits work after the fixed retry delay (§3.2).
func (s *simulator) retryLater(fn event.Handler) {
	s.q.After(s.cfg.Machine.RetryDelay, fn)
}

// onQuantum relays a processed quantum to the scheduler (the §3.1 weight
// adjustment message; node-side control overhead is ignored per §4.1)
// and, under fault injection, checks whether the transaction has
// reached its scheduled abort point.
func (s *simulator) onQuantum(j *machine.Job, objects float64, now event.Time) {
	s.sch.ObjectDone(j.Txn, objects, now)
	s.emitObs(obs.Event{Kind: obs.KindObjectDone, At: now, Txn: j.Txn.ID, Step: j.Step, Objects: objects})
	if s.store != nil {
		if st, ok := s.live[j.Txn.ID]; ok {
			s.storeTouch(st, j.Step, now)
		}
	}
	if s.inj == nil {
		return
	}
	st, ok := s.live[j.Txn.ID]
	if !ok {
		return
	}
	st.processed += objects
	if st.abortAt > 0 && !st.aborting && st.processed >= st.abortAt {
		s.injectAbort(st, now)
	}
}

// injectAbort kills st mid-run: its data-node jobs are cancelled (the
// in-flight quantum finishes but is not reported) and the control node
// runs the scheduler's abort-recovery path — release locks, retract
// unresolved conflicting-edges, splice resolved precedence past the
// dead transaction. The transaction does not resubmit.
func (s *simulator) injectAbort(st *txnState, now event.Time) {
	st.aborting = true
	for _, j := range st.jobs {
		j.Cancelled = true
	}
	s.res.InjectedAborts++
	s.trace.emit(now, st.t.ID, "fault-abort", "processed", st.processed)
	s.emitObs(obs.Event{Kind: obs.KindFault, At: now, Txn: st.t.ID, Op: "abort"})
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		freed, cpu := sched.AbortTxn(s.sch, st.t, now)
		return s.cfg.Machine.CommitTime + cpu, func(now event.Time) {
			s.handleAbort(st, freed, now)
		}
	})
}

// handleAbort finishes an injected abort once the control node has run
// the recovery: the transaction leaves the live set, the recovered
// scheduler state is invariant-checked (always under fault injection),
// and waiters on the freed partitions are woken.
func (s *simulator) handleAbort(st *txnState, freed []txn.PartitionID, now event.Time) {
	delete(s.live, st.t.ID)
	if st.walLogged {
		s.walAbort(st, now)
	}
	s.storeAbort(st)
	s.trace.emit(now, st.t.ID, "aborted")
	s.selfCheck()
	s.wakeWaiters(freed)
}

// crashNode kills data node `node` mid-run. Its partitions re-home to
// the survivors under the documented mod-alive policy, and its resident
// jobs are triaged by the recoverability rule: a job that completed no
// object at the dead node lost nothing (the in-flight quantum, if any,
// is simply redone) and requeues at its partition's new home; a job
// with partial bulk results there cannot be resumed elsewhere, so its
// whole transaction aborts through the scheduler's recovery path. The
// crash of the last alive node is ignored (nothing left to recover to).
func (s *simulator) crashNode(node int, now event.Time) {
	if !s.place.Alive(node) || s.place.AliveCount() <= 1 {
		return
	}
	s.res.NodeCrashes++
	s.trace.emit(now, 0, "node-down", "node", node)
	s.emitObs(obs.Event{Kind: obs.KindNodeDown, At: now, Node: node})
	for _, rh := range s.place.Kill(node) {
		s.res.RehomedParts++
		s.trace.emit(now, 0, "rehome", "part", rh.Part, "from", rh.From, "to", rh.To)
		s.emitObs(obs.Event{Kind: obs.KindRehome, At: now, Part: rh.Part, FromNode: rh.From, Node: rh.To})
	}
	for _, j := range s.nodes[node].Kill() {
		if j.Cancelled {
			continue
		}
		st, ok := s.live[j.Txn.ID]
		if !ok || st.aborting {
			continue
		}
		if j.Processed > 0 {
			s.crashAbort(st, now)
			continue
		}
		part := j.Txn.Steps[j.Step].Part
		to := s.place.NodeOf(part)
		s.res.RequeuedJobs++
		s.trace.emit(now, j.Txn.ID, "requeue", "step", j.Step, "part", part, "from", node, "to", to)
		s.emitObs(obs.Event{Kind: obs.KindRequeue, At: now, Txn: j.Txn.ID, Step: j.Step, Part: part, FromNode: node, Node: to})
		s.nodes[to].Enqueue(j)
	}
	s.selfCheck()
}

// crashAbort kills st because its partial bulk results died with a
// crashed node: every sub-job is cancelled (including any just-requeued
// sibling) and the control node runs the same scheduler recovery as an
// injected abort. Counted separately from InjectedAborts.
func (s *simulator) crashAbort(st *txnState, now event.Time) {
	st.aborting = true
	for _, j := range st.jobs {
		j.Cancelled = true
	}
	s.res.CrashAborts++
	s.trace.emit(now, st.t.ID, "fault-node-crash", "processed", st.processed)
	s.emitObs(obs.Event{Kind: obs.KindFault, At: now, Txn: st.t.ID, Op: "node-crash"})
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		freed, cpu := sched.AbortTxn(s.sch, st.t, now)
		return s.cfg.Machine.CommitTime + cpu, func(now event.Time) {
			s.handleAbort(st, freed, now)
		}
	})
}

// selfCheck runs the scheduler's invariant checks and verifies the
// WTPG is still acyclic. Invoked after every commit when
// Config.SelfCheck is set, and after every injected fault
// unconditionally.
func (s *simulator) selfCheck() {
	if c, ok := s.sch.(interface{ CheckInvariants() error }); ok {
		if err := c.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	if gh, ok := s.sch.(sched.GraphHolder); ok && gh.Graph() != nil {
		// CriticalPath is cached per graph epoch, so this acyclicity
		// probe is free when nothing changed since the last read.
		if _, err := gh.Graph().CriticalPath(); err != nil {
			panic(err)
		}
	}
}

// onStepDone sends the transaction back to the control node for its next
// lock request or its commitment. Under declustered placement the step
// completes only when every node's sub-job has finished.
func (s *simulator) onStepDone(j *machine.Job, now event.Time) {
	st, ok := s.live[j.Txn.ID]
	if !ok {
		panic(fmt.Sprintf("sim: step completion of unknown %v", j.Txn.ID))
	}
	st.outstanding--
	if st.outstanding > 0 {
		return
	}
	st.dnTime += now - st.grantedAt
	s.trace.emit(now, st.t.ID, "step-done", "step", j.Step)
	s.storeStageStep(st, j.Step)
	st.step = j.Step + 1
	s.advance(st, now)
}

// submitCommit coordinates two-phase commitment at the control node.
func (s *simulator) submitCommit(st *txnState) {
	s.cn.Submit(func(now event.Time) (event.Time, func(event.Time)) {
		if st.walLogged {
			// Final resolved predecessor set, read while the transaction
			// is still in the graph — Commit drops it on the next line.
			st.walPreds = sched.Predecessors(s.sch, st.t.ID)
		}
		freed, cpu := s.sch.Commit(st.t, now)
		return s.cfg.Machine.CommitTime + cpu, func(now event.Time) {
			s.handleCommit(st, freed, now)
		}
	})
}

func (s *simulator) handleCommit(st *txnState, freed []txn.PartitionID, now event.Time) {
	delete(s.live, st.t.ID)
	if st.walLogged {
		// Synchronous commit: durable before the run counts it, so the
		// recovered committed set equals Result.Completed's population
		// exactly — the chaos battery's replay-equivalence invariant.
		s.walCommit(st, st.walPreds, now)
	}
	// Pages flush after the WAL force just above: the write-ahead
	// contract extended to heap pages.
	s.storeCommit(st)
	s.res.Completed++
	if now > s.res.LastCompletion {
		s.res.LastCompletion = now
	}
	s.trace.emit(now, st.t.ID, "commit", "rt", now-st.arrived)
	s.emitObs(obs.Event{Kind: obs.KindCommit, At: now, Txn: st.t.ID, RT: now - st.arrived})
	if s.checker != nil {
		s.checker.RecordCommit(st.t.ID)
	}
	if s.cfg.SelfCheck {
		s.selfCheck()
	}
	if st.arrived >= s.cfg.Warmup {
		s.res.Measured++
		s.rt.Add((now - st.arrived).Seconds())
		s.rts = append(s.rts, (now - st.arrived).Seconds())
		s.admitWait.Add((st.admittedAt - st.arrived).Seconds())
		s.lockWait.Add(st.lockWait.Seconds())
		s.dnTime.Add(st.dnTime.Seconds())
		if s.cfg.Classify != nil {
			class := s.cfg.Classify(st.t)
			w := s.classRT[class]
			if w == nil {
				w = &stats.Welford{}
				s.classRT[class] = w
			}
			w.Add((now - st.arrived).Seconds())
		}
	}
	s.wakeWaiters(freed)
}

// wakeWaiters resubmits requests blocked on the released partitions,
// FIFO. Shared by the commit and abort completion paths.
func (s *simulator) wakeWaiters(freed []txn.PartitionID) {
	for _, p := range freed {
		waiters := s.waiting[p]
		if len(waiters) == 0 {
			continue
		}
		delete(s.waiting, p)
		for _, w := range waiters {
			s.submitRequest(w)
		}
	}
}

// finish computes the end-of-run metrics.
func (s *simulator) finish() {
	s.storeFinish()
	s.res.LiveAtEnd = len(s.live)
	s.res.MeanRT = s.rt.Mean()
	s.res.StdRT = s.rt.Std()
	if len(s.rts) > 0 {
		if p, err := stats.Percentile(s.rts, 95); err == nil {
			s.res.P95RT = p
		}
		if p, err := stats.Percentile(s.rts, 99); err == nil {
			s.res.P99RT = p
		}
		max := s.rts[0]
		for _, v := range s.rts {
			if v > max {
				max = v
			}
		}
		s.res.MaxRT = max
	}
	if len(s.classRT) > 0 {
		s.res.ClassMeanRT = make(map[string]float64, len(s.classRT))
		s.res.ClassCompleted = make(map[string]int, len(s.classRT))
		for class, w := range s.classRT {
			s.res.ClassMeanRT[class] = w.Mean()
			s.res.ClassCompleted[class] = int(w.Count())
		}
	}
	if s.res.Epochs > 0 {
		s.res.MeanBatch = float64(s.batchSum) / float64(s.res.Epochs)
	}
	s.res.MeanAdmitWait = s.admitWait.Mean()
	s.res.MeanLockWait = s.lockWait.Mean()
	s.res.MeanDNTime = s.dnTime.Mean()
	window := (s.cfg.Horizon - s.cfg.Warmup).Seconds()
	if window > 0 {
		s.res.Throughput = float64(s.res.Measured) / window
	}
	total := float64(s.cfg.Horizon)
	s.res.CNUtilization = float64(s.cn.BusyTime) / total
	var sum float64
	for _, n := range s.nodes {
		u := float64(n.BusyTime) / total
		s.res.NodeUtilization = append(s.res.NodeUtilization, u)
		sum += u
	}
	if len(s.nodes) > 0 {
		s.res.MeanNodeUtil = sum / float64(len(s.nodes))
	}
}
