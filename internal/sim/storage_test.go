package sim

// Storage differential and crash batteries (ISSUE PR 9): the storage
// engine moves real bytes but must never move the model. The
// differential battery pins that — across seeds and schedulers, a
// storage-backed run produces a byte-identical Result, the same
// committed set, and final partition contents exactly equal to the pure
// function of that committed set (internal/storage's effect model). The
// kill-restart battery extends PR 7's replay equivalence to pages:
// SIGKILL mid-flush tears both the WAL tail and un-fsynced heap pages,
// and recovery (page-level truncation + WAL redo) must restore contents
// ≡ the durable committed set, audited by modelcheck.VerifyRecovery.

import (
	"fmt"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/modelcheck"
	"batsched/internal/obs"
	"batsched/internal/storage"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// storageFactories is the differential matrix: every scheduler family.
func storageFactories() []sched.Factory {
	return []sched.Factory{
		sched.ASLFactory(),
		sched.C2PLFactory(),
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
		sched.MustLookup("EPOCH"),
	}
}

// storageConfig is chaosConfig plus the EPOCH batch window the epoch
// scheduler needs to exercise its batch path.
func storageConfig(f sched.Factory, seed int64) Config {
	cfg := chaosConfig(f, seed)
	if f.Label == "EPOCH" {
		cfg.BatchWindow = 1000
	}
	return cfg
}

// expectedContents derives each partition's effect-key set from the
// committed transactions' WAL Begin footprints — the contents the
// effect model says the heap files must hold.
func expectedContents(scans []wal.NodeScan, committed map[txn.ID]bool, parts int) []map[storage.EffectKey]bool {
	want := make([]map[storage.EffectKey]bool, parts)
	for p := range want {
		want[p] = map[storage.EffectKey]bool{}
	}
	for _, ns := range scans {
		for _, r := range ns.Records {
			if r.Kind != wal.Begin || !committed[r.Txn] {
				continue
			}
			for i, s := range r.Steps {
				if s.Mode == txn.Write && int(s.Part) < parts {
					want[s.Part][storage.EffectKey{Txn: r.Txn, Step: i}] = true
				}
			}
		}
	}
	return want
}

// checkContents compares a store's live tuples against the expected
// effect-key sets, partition by partition.
func checkContents(t *testing.T, st *storage.Store, want []map[storage.EffectKey]bool, repro string) {
	t.Helper()
	for p := range want {
		got, err := st.Keys(txn.PartitionID(p))
		if err != nil {
			t.Fatalf("P%d: %v\n%s", p, err, repro)
		}
		if len(got) != len(want[p]) {
			t.Fatalf("P%d holds %d effects, committed set implies %d\n%s", p, len(got), len(want[p]), repro)
		}
		for k := range want[p] {
			if !got[k] {
				t.Fatalf("P%d missing effect txn=%d step=%d\n%s", p, k.Txn, k.Step, repro)
			}
		}
	}
}

// TestStorageDifferentialCommitSet is the differential battery: 50
// seeds per scheduler, each run twice — modelled (no storage) and
// storage-backed. The storage run must (1) return a byte-identical
// Result, (2) commit exactly the same set, and (3) leave every heap
// partition holding exactly the effects of that committed set.
func TestStorageDifferentialCommitSet(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 5
	}
	for _, f := range storageFactories() {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				repro := fmt.Sprintf("repro: go test -run 'TestStorageDifferentialCommitSet/%s' ./internal/sim/ with seed=%d", f.Label, seed)
				cfg := storageConfig(f, int64(seed))
				committedA := map[txn.ID]bool{}
				base, err := Run(cfg, WithTrace(obs.ObserverFunc(func(e obs.Event) {
					if e.Kind == obs.KindCommit {
						committedA[e.Txn] = true
					}
				})))
				if err != nil {
					t.Fatalf("seed %d: modelled run: %v\n%s", seed, err, repro)
				}

				dir := t.TempDir()
				st, err := storage.Open(dir, cfg.Machine.NumParts,
					storage.WithPageSize(1024), storage.WithPoolFrames(8),
					storage.WithNodes(cfg.Machine.NumNodes),
					storage.WithBackgroundFlush(time.Millisecond))
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				wdir := t.TempDir()
				l, err := wal.Open(wdir, cfg.Machine.NumNodes)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				committedB := map[txn.ID]bool{}
				res, err := Run(cfg, WithStorage(st), WithWAL(l), WithTrace(obs.ObserverFunc(func(e obs.Event) {
					if e.Kind == obs.KindCommit {
						committedB[e.Txn] = true
					}
				})))
				if err != nil {
					t.Fatalf("seed %d: storage run: %v\n%s", seed, err, repro)
				}
				if err := l.Close(); err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}

				// (1) The time model is untouched: byte-identical Result.
				if fmt.Sprintf("%+v", base) != fmt.Sprintf("%+v", res) {
					t.Fatalf("seed %d: storage changed the simulated result\nmodelled: %+v\nstorage:  %+v\n%s",
						seed, base, res, repro)
				}
				// (2) Same committed set.
				if len(committedA) != len(committedB) {
					t.Fatalf("seed %d: committed %d modelled vs %d with storage\n%s",
						seed, len(committedA), len(committedB), repro)
				}
				for id := range committedA {
					if !committedB[id] {
						t.Fatalf("seed %d: %v committed modelled but not with storage\n%s", seed, id, repro)
					}
				}
				// (3) Contents ≡ pure function of the committed set.
				scans, err := wal.Scan(wdir)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				checkContents(t, st, expectedContents(scans, committedB, cfg.Machine.NumParts), repro)
				if st.PinnedFrames() != 0 {
					t.Fatalf("seed %d: %d frames still pinned after the run\n%s", seed, st.PinnedFrames(), repro)
				}
				if st.Stats().Hits+st.Stats().Misses == 0 && res.Completed > 0 {
					t.Fatalf("seed %d: run committed %d transactions without touching a page\n%s",
						seed, res.Completed, repro)
				}
				if err := st.Close(); err != nil {
					t.Fatalf("seed %d: close: %v\n%s", seed, err, repro)
				}
			}
		})
	}
}

// TestStorageKillRestartTornPages is the crash-consistency battery:
// SIGKILL mid-flush (fault.KillAt picks the kill point, KillFlushFrac
// the flush fraction) tears both the WAL tail and the un-fsynced heap
// pages, then recovery reopens the store (page-level truncation +
// reinitialization), replays the WAL with Store.Redo as the apply
// callback, passes modelcheck.VerifyRecovery, and must leave partition
// contents exactly ≡ the durable committed set.
func TestStorageKillRestartTornPages(t *testing.T) {
	factories := []sched.Factory{
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
		sched.ASLFactory(),
	}
	seeds := 30
	if testing.Short() {
		seeds = 5
	}
	cfgFaults := fault.Config{KillRestart: true, AbortRate: 0.15}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			tornTotal, redone := 0, 0
			for seed := 0; seed < seeds; seed++ {
				inj, err := fault.New(uint64(seed)+1, cfgFaults)
				if err != nil {
					t.Fatal(err)
				}
				base, err := Run(chaosConfig(f, int64(seed)), WithFaults(inj))
				if err != nil {
					t.Fatalf("seed %d: baseline: %v", seed, err)
				}
				killAt, ok := inj.KillAt(base.LastCompletion)
				if !ok || killAt <= 0 {
					t.Fatalf("seed %d: no kill point in window %v", seed, base.LastCompletion)
				}
				frac := inj.KillFlushFrac()
				repro := fmt.Sprintf("repro: go test -run 'TestStorageKillRestartTornPages/%s' ./internal/sim/ with seed=%d killat=%d flushfrac=%.3f",
					f.Label, seed, int64(killAt), frac)

				cfg := chaosConfig(f, int64(seed))
				cfg.Horizon = killAt // SIGKILL: the timeline just stops
				hdir, wdir := t.TempDir(), t.TempDir()
				sopts := []storage.Option{
					storage.WithPageSize(1024), storage.WithPoolFrames(8),
					storage.WithNodes(cfg.Machine.NumNodes),
					storage.WithBackgroundFlush(time.Millisecond),
				}
				st, err := storage.Open(hdir, cfg.Machine.NumParts, sopts...)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				l, err := wal.Open(wdir, cfg.Machine.NumNodes)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				committed := map[txn.ID]bool{}
				_, err = Run(cfg, WithFaults(inj), WithWAL(l), WithStorage(st),
					WithTrace(obs.ObserverFunc(func(e obs.Event) {
						if e.Kind == obs.KindCommit {
							committed[e.Txn] = true
						}
					})))
				if err != nil {
					t.Fatalf("seed %d: killed run: %v\n%s", seed, err, repro)
				}
				// SIGKILL both halves with the same flush fraction.
				l.Crash(frac)
				if err := st.Crash(frac); err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}

				// Restart: page-level recovery at Open, then WAL replay
				// drives Redo for every durably committed transaction.
				st2, err := storage.Open(hdir, cfg.Machine.NumParts, sopts...)
				if err != nil {
					t.Fatalf("seed %d: reopen: %v\n%s", seed, err, repro)
				}
				tornTotal += st2.TornPages()
				scans, err := wal.Scan(wdir)
				if err != nil {
					t.Fatalf("seed %d: scan: %v\n%s", seed, err, repro)
				}
				rec, err := wal.Replay(scans, 4, func(b wal.Record, wave int) {
					if err := st2.Redo(b); err != nil {
						t.Errorf("seed %d: redo %v: %v\n%s", seed, b.Txn, err, repro)
					}
				})
				if err != nil {
					t.Fatalf("seed %d: replay: %v\n%s", seed, err, repro)
				}
				if err := st2.Flush(); err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				// The durable committed set (what replay recovered) is the
				// authority — the dying run's own count may exceed it only
				// never trail it, and PR 7's battery already pins equality.
				durable := map[txn.ID]bool{}
				for _, id := range rec.Committed {
					if !committed[id] {
						t.Fatalf("seed %d: %v resurrected\n%s", seed, id, repro)
					}
					durable[id] = true
				}
				redone += len(rec.Committed)
				checkContents(t, st2, expectedContents(scans, durable, cfg.Machine.NumParts), repro)
				if err := st2.Close(); err != nil {
					t.Fatalf("seed %d: close: %v\n%s", seed, err, repro)
				}
			}
			if tornTotal == 0 {
				t.Errorf("%s: no page was ever torn across %d crashes — the crash model is vacuous", f.Label, seeds)
			}
			t.Logf("%s: %d seeds: %d committed transactions redone, %d torn pages recovered", f.Label, seeds, redone, tornTotal)
		})
	}
}

// TestStorageOffIsByteIdentical pins the zero-cost guarantee from the
// other side: attaching storage must not change the simulated Result
// (all page work happens at existing event boundaries and costs zero
// simulated time). The differential battery covers this across seeds;
// this is the quick, named pin.
func TestStorageOffIsByteIdentical(t *testing.T) {
	cfg := chaosConfig(sched.KWTPGFactory(2), 17)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open(t.TempDir(), cfg.Machine.NumParts, storage.WithPageSize(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	backed, err := Run(cfg, WithStorage(st))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", base) != fmt.Sprintf("%+v", backed) {
		t.Errorf("attaching storage changed the simulated result:\nbase:    %+v\nstorage: %+v", base, backed)
	}
}
