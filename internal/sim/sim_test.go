package sim

import (
	"math"
	"reflect"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/machine"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

func baseConfig() Config {
	return Config{
		Machine:              machine.DefaultConfig(),
		Scheduler:            sched.C2PLFactory(),
		Workload:             workload.Experiment1(16),
		ArrivalRate:          0.3,
		Horizon:              200_000,
		Seed:                 1,
		CheckSerializability: true,
	}
}

// TestSingleTransactionTiming walks one transaction through the whole
// machine and checks the exact response time against hand computation:
// admit (ddtime 1 + startup 10) + request (1) + 2 objects (2000)
// + request (1) + 1 object (1000) + commit (committime 10) = 3023 ms.
func TestSingleTransactionTiming(t *testing.T) {
	cfg := baseConfig()
	cfg.Workload = &workload.Fixed{Label: "one", Txns: []*txn.T{
		txn.New(0, []txn.Step{r(0, 2), w(1, 1)}),
	}}
	cfg.MaxTxns = 1
	cfg.Horizon = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 1 || res.Arrived != 1 {
		t.Fatalf("completed %d / arrived %d, want 1/1", res.Completed, res.Arrived)
	}
	if want := 3.023; math.Abs(res.MeanRT-want) > 1e-9 {
		t.Errorf("MeanRT = %g s, want %g s", res.MeanRT, want)
	}
	if res.RequestBlocks != 0 || res.RequestDelays != 0 {
		t.Errorf("uncontended run had blocks=%d delays=%d", res.RequestBlocks, res.RequestDelays)
	}
}

func TestDeterminism(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2), sched.ASLFactory(),
	} {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.Horizon = 100_000
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different results:\n%+v\n%+v", f.Label, a, b)
		}
		cfg.Seed = 2
		c, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a, c) && a.Completed > 0 {
			t.Logf("%s: different seeds produced identical results (possible but suspicious)", f.Label)
		}
	}
}

// TestAllSchedulersProgressAndSerialize runs every scheduler on the
// contended Experiment 1 workload and checks progress plus conflict
// serializability of the executed schedule.
func TestAllSchedulersProgressAndSerialize(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(),
		sched.KWTPGFactory(2), sched.ChainC2PLFactory(), sched.KC2PLFactory(2),
	} {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			cfg := baseConfig()
			cfg.Scheduler = f
			cfg.ArrivalRate = 0.5
			cfg.Horizon = 300_000
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("serializability or run error: %v", err)
			}
			if !res.SerializabilityChecked {
				t.Error("check did not run")
			}
			if res.Completed == 0 {
				t.Fatal("no transactions completed")
			}
			if res.Completed > res.Arrived {
				t.Errorf("completed %d > arrived %d", res.Completed, res.Arrived)
			}
			if res.MeanRT <= 0 {
				t.Errorf("MeanRT = %g", res.MeanRT)
			}
			if res.MeanNodeUtil <= 0 || res.MeanNodeUtil > 1 {
				t.Errorf("MeanNodeUtil = %g", res.MeanNodeUtil)
			}
			if res.CNUtilization < 0 || res.CNUtilization > 1 {
				t.Errorf("CNUtilization = %g", res.CNUtilization)
			}
		})
	}
}

func TestNODCUpperBound(t *testing.T) {
	cfg := baseConfig()
	cfg.Scheduler = sched.NODCFactory()
	cfg.CheckSerializability = false
	nodc, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := baseConfig()
	c2pl, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if nodc.Completed < c2pl.Completed {
		t.Errorf("NODC completed %d < C2PL %d; NODC must be an upper bound",
			nodc.Completed, c2pl.Completed)
	}
	if nodc.RequestBlocks != 0 || nodc.RequestDelays != 0 || nodc.AdmissionAborts != 0 {
		t.Errorf("NODC reported contention: %+v", nodc)
	}
}

func TestWarmupWindow(t *testing.T) {
	cfg := baseConfig()
	cfg.Horizon = 200_000
	cfg.Warmup = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured > res.Completed {
		t.Errorf("measured %d > completed %d", res.Measured, res.Completed)
	}
	// Throughput is computed over the measurement window only.
	wantWindow := 100.0 // seconds
	if got := float64(res.Measured) / wantWindow; math.Abs(got-res.Throughput) > 1e-9 {
		t.Errorf("Throughput = %g, want %g", res.Throughput, got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = c.Horizon },
		func(c *Config) { c.Workload = nil },
		func(c *Config) { c.Scheduler = sched.Factory{} },
		func(c *Config) { c.Machine.NumNodes = 0 },
	}
	for i, mut := range bad {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMaxTxnsCap(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxTxns = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 5 {
		t.Errorf("arrived %d, want 5", res.Arrived)
	}
}

// TestHotSetContention drives the Experiment 2 hot-set workload hard and
// verifies serializable completion for the WTPG schedulers.
func TestHotSetContention(t *testing.T) {
	layout := workload.HotSetLayout{NumReadOnly: 8, NumHots: 4}
	for _, f := range []sched.Factory{sched.ChainFactory(), sched.KWTPGFactory(2)} {
		cfg := baseConfig()
		cfg.Machine.NumParts = layout.NumParts()
		cfg.Workload = workload.Experiment2(layout)
		cfg.Scheduler = f
		cfg.ArrivalRate = 0.6
		cfg.Horizon = 300_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s made no progress on hot set", f.Label)
		}
	}
}

func TestSerialCheckerDetectsCycle(t *testing.T) {
	c := newSerialChecker()
	// T1 reads P0 then T2 writes P0 (T1 < T2), but on P1 the conflicting
	// order is reversed.
	c.RecordGrant(1, 0, txn.Read)
	c.RecordGrant(2, 0, txn.Write)
	c.RecordGrant(2, 1, txn.Write)
	c.RecordGrant(1, 1, txn.Write)
	c.RecordCommit(1)
	c.RecordCommit(2)
	if err := c.Verify(); err == nil {
		t.Fatal("cyclic conflict order not detected")
	}
	// Uncommitted transactions are ignored.
	c2 := newSerialChecker()
	c2.RecordGrant(1, 0, txn.Write)
	c2.RecordGrant(2, 0, txn.Write)
	c2.RecordGrant(2, 1, txn.Write)
	c2.RecordGrant(1, 1, txn.Write)
	c2.RecordCommit(1)
	if err := c2.Verify(); err != nil {
		t.Errorf("cycle through uncommitted txn reported: %v", err)
	}
}

// TestConservation: arrivals are exactly partitioned into completed,
// still-live and not-yet-admitted transactions at the horizon.
func TestConservation(t *testing.T) {
	for _, rate := range []float64{0.3, 0.9} {
		cfg := baseConfig()
		cfg.ArrivalRate = rate
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		notAdmitted := res.Arrived - res.Admitted
		if notAdmitted < 0 {
			t.Fatalf("admitted %d > arrived %d", res.Admitted, res.Arrived)
		}
		if res.Admitted != res.Completed+res.LiveAtEnd {
			t.Errorf("λ=%g: admitted %d != completed %d + live %d",
				rate, res.Admitted, res.Completed, res.LiveAtEnd)
		}
	}
}
