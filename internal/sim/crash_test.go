package sim

import (
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/workload"
)

// TestChaosNodeCrashMatrix is the node-crash dimension of the chaos
// suite: for each scheduler, 100 seeds × {0, 1, 2} crashed nodes on the
// 4-node chaos machine. Every run must terminate with nothing wedged,
// every arrival accounted for (committed, injected-aborted or
// crash-aborted), the injected crash count honored exactly, and the
// node-crash observability (node-down / re-home / requeue events and
// the abort-recovery count) consistent with the run's counters.
// SelfCheck panics on any scheduler invariant violation, and the
// serializability check runs on every committed schedule.
func TestChaosNodeCrashMatrix(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(),
		sched.C2PLFactory(),
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
	}
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			requeues, crashAborts := 0, 0
			for _, crashed := range []int{0, 1, 2} {
				for seed := 0; seed < seeds; seed++ {
					inj, err := fault.New(uint64(seed)+1, fault.Config{
						NodeCrashes:     crashed,
						NodeCrashWindow: 30_000,
					})
					if err != nil {
						t.Fatal(err)
					}
					metrics := obs.NewMetrics()
					res, err := Run(chaosConfig(f, int64(seed)), WithFaults(inj), WithTrace(metrics))
					if err != nil {
						t.Fatalf("crashed=%d seed %d: %v", crashed, seed, err)
					}
					if res.LiveAtEnd != 0 {
						t.Fatalf("crashed=%d seed %d: %d transactions wedged", crashed, seed, res.LiveAtEnd)
					}
					if res.Completed+res.InjectedAborts+res.CrashAborts != res.Arrived {
						t.Fatalf("crashed=%d seed %d: arrived %d != completed %d + injected %d + crash aborts %d",
							crashed, seed, res.Arrived, res.Completed, res.InjectedAborts, res.CrashAborts)
					}
					if res.NodeCrashes != crashed {
						t.Fatalf("crashed=%d seed %d: %d node crashes fired", crashed, seed, res.NodeCrashes)
					}
					sm := metrics.Sched(res.Scheduler)
					if sm == nil {
						t.Fatalf("crashed=%d seed %d: no metrics", crashed, seed)
					}
					if int(sm.NodeDowns) != res.NodeCrashes ||
						int(sm.Rehomes) != res.RehomedParts ||
						int(sm.Requeues) != res.RequeuedJobs {
						t.Fatalf("crashed=%d seed %d: obs (%d downs, %d rehomes, %d requeues) vs result (%d, %d, %d)",
							crashed, seed, sm.NodeDowns, sm.Rehomes, sm.Requeues,
							res.NodeCrashes, res.RehomedParts, res.RequeuedJobs)
					}
					// Every abort — injected or crash-induced — runs the
					// scheduler's recovery path exactly once.
					if int(sm.Recoveries) != res.InjectedAborts+res.CrashAborts {
						t.Fatalf("crashed=%d seed %d: %d recoveries for %d+%d aborts",
							crashed, seed, sm.Recoveries, res.InjectedAborts, res.CrashAborts)
					}
					requeues += res.RequeuedJobs
					crashAborts += res.CrashAborts
				}
			}
			// The matrix must exercise both recovery outcomes somewhere.
			if requeues == 0 {
				t.Errorf("%s: no job requeued across the matrix", f.Label)
			}
			if crashAborts == 0 {
				t.Errorf("%s: no crash-abort across the matrix", f.Label)
			}
			t.Logf("%s: %d requeues, %d crash aborts over %d runs", f.Label, requeues, crashAborts, 3*seeds)
		})
	}
}

// TestCrashedCommitsAreSubsetOfCleanRun is the differential recovery
// test: for each injected crash, replay the same (Config, Seed) —
// hence the same arrivals and the same declared transactions — on the
// post-crash topology (DeadNodes) with no faults. The crash-free run
// must commit everything, and the crashed run's committed set must be
// a subset of it: recovery may abort transactions but must never
// commit one the clean machine would not (no phantom commits).
func TestCrashedCommitsAreSubsetOfCleanRun(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(),
		sched.C2PLFactory(),
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
	}
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			diffed := 0
			for seed := 0; seed < seeds; seed++ {
				inj, err := fault.New(uint64(seed)+1, fault.Config{
					NodeCrashes:     1,
					NodeCrashWindow: 20_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				committed, deadNodes := runCollectingCommits(t, chaosConfig(f, int64(seed)), inj)
				if len(deadNodes) != 1 {
					t.Fatalf("seed %d: %d node-down events, want 1", seed, len(deadNodes))
				}
				cleanCfg := chaosConfig(f, int64(seed))
				cleanCfg.DeadNodes = deadNodes
				clean, _ := runCollectingCommits(t, cleanCfg, nil)
				if len(clean) < len(committed) {
					t.Fatalf("seed %d: clean run committed %d < crashed run's %d", seed, len(clean), len(committed))
				}
				for id := range committed {
					if !clean[id] {
						t.Errorf("seed %d: phantom commit %v — crashed run committed it, clean run did not", seed, id)
					}
				}
				if len(committed) < len(clean) {
					diffed++ // the crash actually cost commits somewhere
				}
			}
			if diffed == 0 {
				t.Logf("%s: no seed lost a commit to the crash (all recoverable)", f.Label)
			}
		})
	}
}

// runCollectingCommits runs one simulation, returning the set of
// committed transaction IDs and the nodes reported down. The run must
// terminate with every arrival accounted for.
func runCollectingCommits(t *testing.T, cfg Config, inj *fault.Injector) (map[int64]bool, []int) {
	t.Helper()
	committed := make(map[int64]bool)
	var deadNodes []int
	collect := obs.ObserverFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.KindCommit:
			if e.Decision != "aborted" {
				committed[int64(e.Txn)] = true
			}
		case obs.KindNodeDown:
			deadNodes = append(deadNodes, e.Node)
		}
	})
	opts := []Option{WithTrace(collect)}
	if inj != nil {
		opts = append(opts, WithFaults(inj))
	}
	res, err := Run(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveAtEnd != 0 {
		t.Fatalf("%d transactions wedged at the horizon", res.LiveAtEnd)
	}
	if res.Completed+res.InjectedAborts+res.CrashAborts != res.Arrived {
		t.Fatalf("arrived %d != completed %d + injected %d + crash aborts %d",
			res.Arrived, res.Completed, res.InjectedAborts, res.CrashAborts)
	}
	if len(committed) != res.Completed {
		t.Fatalf("observed %d commit events, result says %d", len(committed), res.Completed)
	}
	return committed, deadNodes
}

// TestNodeCrashRecoverySeeded is the acceptance scenario: the paper's
// 8-node machine loses 1 node mid-run. The run must terminate with
// every recoverable transaction committed, the unrecoverable ones
// aborted through the scheduler's Splice recovery (visible as abort
// events), and the node-down / re-home / requeue trail in the trace.
// The test scans seeds until one exercises both recovery outcomes, so
// the assertions always run against a crash that actually hurt.
func TestNodeCrashRecoverySeeded(t *testing.T) {
	m := machine.DefaultConfig() // 8 nodes, 16 partitions
	m.ObjTime = 100
	m.RetryDelay = 50
	for seed := int64(0); seed < 50; seed++ {
		inj, err := fault.New(uint64(seed)+1, fault.Config{
			NodeCrashes:     1,
			NodeCrashWindow: 20_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		metrics := obs.NewMetrics()
		res, err := Run(Config{
			Machine:              m,
			Scheduler:            sched.KWTPGFactory(2),
			Workload:             workload.Experiment1(m.NumParts),
			ArrivalRate:          6,
			Horizon:              10_000_000,
			Seed:                 seed,
			MaxTxns:              40,
			CheckSerializability: true,
			SelfCheck:            true,
		}, WithFaults(inj), WithTrace(metrics))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.NodeCrashes != 1 {
			t.Fatalf("seed %d: %d crashes fired, want 1", seed, res.NodeCrashes)
		}
		if res.LiveAtEnd != 0 {
			t.Fatalf("seed %d: %d transactions wedged after the crash", seed, res.LiveAtEnd)
		}
		if res.Completed+res.CrashAborts != res.Arrived {
			t.Fatalf("seed %d: arrived %d != completed %d + crash aborts %d",
				seed, res.Arrived, res.Completed, res.CrashAborts)
		}
		if res.CrashAborts == 0 || res.RequeuedJobs == 0 {
			continue // crash landed too soft; try the next seed
		}
		sm := metrics.Sched(res.Scheduler)
		if sm.NodeDowns != 1 {
			t.Fatalf("seed %d: %d node-down events", seed, sm.NodeDowns)
		}
		if int(sm.Rehomes) != res.RehomedParts || res.RehomedParts == 0 {
			t.Fatalf("seed %d: %d re-home events for %d re-homed partitions", seed, sm.Rehomes, res.RehomedParts)
		}
		if int(sm.Requeues) != res.RequeuedJobs {
			t.Fatalf("seed %d: %d requeue events for %d requeued jobs", seed, sm.Requeues, res.RequeuedJobs)
		}
		// Unrecoverable transactions went through the scheduler's abort
		// recovery (Splice), not silent disappearance.
		if int(sm.Recoveries) != res.CrashAborts {
			t.Fatalf("seed %d: %d recovery events for %d crash aborts", seed, sm.Recoveries, res.CrashAborts)
		}
		t.Logf("seed %d: %d committed, %d crash-aborted, %d requeued, %d partitions re-homed",
			seed, res.Completed, res.CrashAborts, res.RequeuedJobs, res.RehomedParts)
		return
	}
	t.Fatal("no seed in [0,50) produced both a requeue and a crash abort")
}
