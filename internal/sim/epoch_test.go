package sim

import (
	"reflect"
	"strings"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/workload"
)

// epochConfig is chaosConfig with the epoch scheduler and a batch
// window; window 0 keeps the per-arrival admission path.
func epochConfig(window event.Time, seed int64) Config {
	cfg := chaosConfig(sched.MustLookup("EPOCH"), seed)
	cfg.BatchWindow = window
	return cfg
}

// TestEpochWindowZeroIsChain is the differential pin: with a zero batch
// window the EPOCH scheduler is driven per-arrival and must reproduce
// CHAIN's runs exactly — every counter, every response time, every
// sample — across seeds, differing only in the scheduler label. This is
// what makes EPOCH an extension of CHAIN rather than a fork of it.
func TestEpochWindowZeroIsChain(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		chainRes, err := Run(chaosConfig(sched.ChainFactory(), seed))
		if err != nil {
			t.Fatalf("seed %d CHAIN: %v", seed, err)
		}
		epochRes, err := Run(epochConfig(0, seed))
		if err != nil {
			t.Fatalf("seed %d EPOCH: %v", seed, err)
		}
		if epochRes.Scheduler != "EPOCH" {
			t.Fatalf("seed %d: scheduler label %q", seed, epochRes.Scheduler)
		}
		epochRes.Scheduler = chainRes.Scheduler
		if !reflect.DeepEqual(chainRes, epochRes) {
			t.Errorf("seed %d: EPOCH@window=0 diverged from CHAIN:\nchain: %+v\nepoch: %+v",
				seed, chainRes, epochRes)
		}
	}
}

// TestEpochBatching drives EPOCH with a real window and checks the
// batching machinery: windows flush, batch sizes are sane, every
// arrival still commits, the schedule stays serializable (checker +
// SelfCheck are on in the base config), and the flush events reach the
// observability pipeline.
func TestEpochBatching(t *testing.T) {
	metrics := obs.NewMetrics()
	res, err := Run(epochConfig(2000, 11), WithTrace(metrics))
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs flushed")
	}
	if res.MaxBatch < 1 || res.MeanBatch < 1 {
		t.Fatalf("batch stats: max %d mean %g", res.MaxBatch, res.MeanBatch)
	}
	if res.MaxBatch < 2 {
		t.Fatalf("window 2000 at λ=4 never batched two arrivals (max batch %d)", res.MaxBatch)
	}
	if res.Completed != res.Arrived {
		t.Fatalf("completed %d of %d arrivals", res.Completed, res.Arrived)
	}
	if res.MaxClusters < 1 {
		t.Fatalf("max clusters %d", res.MaxClusters)
	}
	sm := metrics.Sched("EPOCH")
	if sm == nil {
		t.Fatal("no EPOCH metrics")
	}
	if int(sm.Epochs) != res.Epochs {
		t.Fatalf("metrics saw %d epoch flushes, result %d", sm.Epochs, res.Epochs)
	}
	if sm.BatchSize.Count() == 0 || sm.BatchSize.Max() != float64(res.MaxBatch) {
		t.Fatalf("batch-size histogram n=%d max=%g vs result max %d",
			sm.BatchSize.Count(), sm.BatchSize.Max(), res.MaxBatch)
	}
}

// TestEpochAdmitWaitReflectsWindow sanity-checks the admission delay a
// window introduces: arrivals wait for the boundary, so the mean
// admission wait under a wide window must exceed the per-arrival one.
func TestEpochAdmitWaitReflectsWindow(t *testing.T) {
	narrow, err := Run(epochConfig(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(epochConfig(5000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if wide.MeanAdmitWait <= narrow.MeanAdmitWait {
		t.Errorf("window 5000 admit wait %g ≤ per-arrival %g",
			wide.MeanAdmitWait, narrow.MeanAdmitWait)
	}
}

// TestBatchWindowNeedsBatchAdmitter pins the config validation: a batch
// window only works with a batch-capable scheduler, and the error names
// the offender.
func TestBatchWindowNeedsBatchAdmitter(t *testing.T) {
	cfg := chaosConfig(sched.ChainFactory(), 1)
	cfg.BatchWindow = 1000
	if _, err := Run(cfg); err == nil {
		t.Fatal("CHAIN with a batch window did not error")
	} else if !strings.Contains(err.Error(), "CHAIN") {
		t.Fatalf("error does not name the scheduler: %v", err)
	}
	cfg.BatchWindow = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative batch window did not error")
	}
}

// TestChaosEpoch is the chaos matrix for the epoch path: 100 seeds of
// injected mid-run aborts, slow partitions and admission-refusal bursts
// against EPOCH with a real batch window. Refused and rejected arrivals
// must roll into later epochs and eventually commit: every run ends
// with nothing wedged, every arrival committed or injected-aborted, a
// serializable schedule, and recovery events matching injected aborts.
// (`make chaos` picks this up through its Chaos name pattern.)
func TestChaosEpoch(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	cfgFaults := fault.Config{
		AbortRate:        0.25,
		SlowIORate:       0.25,
		SlowIOFactor:     3,
		AdmitRefusalRate: 0.25,
	}
	aborts, refusals, epochs := 0, 0, 0
	for seed := 0; seed < seeds; seed++ {
		inj, err := fault.New(uint64(seed)+1, cfgFaults)
		if err != nil {
			t.Fatal(err)
		}
		metrics := obs.NewMetrics()
		res, err := Run(epochConfig(1000, int64(seed)), WithFaults(inj), WithTrace(metrics))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.LiveAtEnd != 0 {
			t.Fatalf("seed %d: %d transactions wedged at the horizon", seed, res.LiveAtEnd)
		}
		if res.Completed+res.InjectedAborts != res.Arrived {
			t.Fatalf("seed %d: arrived %d != completed %d + injected aborts %d",
				seed, res.Arrived, res.Completed, res.InjectedAborts)
		}
		sm := metrics.Sched(res.Scheduler)
		if sm == nil {
			t.Fatalf("seed %d: no metrics for %s", seed, res.Scheduler)
		}
		if int(sm.Recoveries) != res.InjectedAborts {
			t.Fatalf("seed %d: %d abort-recovery events for %d injected aborts",
				seed, sm.Recoveries, res.InjectedAborts)
		}
		aborts += res.InjectedAborts
		refusals += res.InjectedRefusals
		epochs += res.Epochs
	}
	if aborts == 0 {
		t.Errorf("no injected aborts across %d seeds", seeds)
	}
	if refusals == 0 {
		t.Errorf("no injected admission refusals across %d seeds", seeds)
	}
	if epochs == 0 {
		t.Errorf("no epochs flushed across %d seeds", seeds)
	}
	t.Logf("EPOCH: %d injected aborts, %d refusals, %d epochs over %d seeds", aborts, refusals, epochs, seeds)
}

// TestEpochDeterminism locks in the determinism contract for the epoch
// path: same (Config, Seed) twice gives identical Results, including
// the new batch counters.
func TestEpochDeterminism(t *testing.T) {
	a, err := Run(epochConfig(1500, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(epochConfig(1500, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("epoch run not deterministic:\na: %+v\nb: %+v", a, b)
	}
}

// TestEpochFixedReleaseBatch releases a fixed batch of simultaneous
// arrivals and checks the whole release lands in the first window: the
// first flush sees all of them (MaxBatch), rejected members roll into
// later epochs until everything commits, and the committed schedule is
// serializable (checker on in the base config).
func TestEpochFixedReleaseBatch(t *testing.T) {
	m := machine.DefaultConfig()
	m.NumNodes = 4
	m.NumParts = 8
	cfg := Config{
		Machine:              m,
		Scheduler:            sched.MustLookup("EPOCH"),
		Workload:             workload.Experiment1(m.NumParts),
		Horizon:              10_000_000,
		Seed:                 5,
		CheckSerializability: true,
		SelfCheck:            true,
		BatchWindow:          1000,
	}
	const release = 16
	for i := 0; i < release; i++ {
		cfg.ArrivalTimes = append(cfg.ArrivalTimes, 1)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBatch != release {
		t.Errorf("first flush batched %d of %d released arrivals", res.MaxBatch, release)
	}
	if res.Completed != release {
		t.Errorf("completed %d of %d", res.Completed, release)
	}
	if res.Epochs < 1 {
		t.Errorf("epochs %d", res.Epochs)
	}
}
