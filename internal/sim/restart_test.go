package sim

// The kill-and-restart chaos battery (docs/ROBUSTNESS.md §9): for each
// scheduler, 100 seeds each pick a deterministic kill point inside the
// run's active span, cut the machine off there mid-flight
// (SIGKILL-equivalent: the event queue simply stops and the WAL is
// crash-closed with a partially-flushed tail), then recover from the
// surviving log prefix and check replay equivalence — the recovered
// committed set must equal the set of transactions the dying run
// counted as committed, exactly: no committed transaction lost, no
// uncommitted transaction resurrected. Every recovery is additionally
// audited by modelcheck.VerifyRecovery (acyclic committed history,
// precedence-respecting waves).

import (
	"fmt"
	"sort"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/modelcheck"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

func TestKillRestartBattery(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(),
		sched.C2PLFactory(),
		sched.ChainFactory(),
		sched.KWTPGFactory(2),
	}
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	cfgFaults := fault.Config{KillRestart: true, AbortRate: 0.15}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			maxPar, incompletes, tornBytes, recovered := 0, 0, int64(0), 0
			for seed := 0; seed < seeds; seed++ {
				inj, err := fault.New(uint64(seed)+1, cfgFaults)
				if err != nil {
					t.Fatal(err)
				}
				// Baseline pass: same seed, full horizon, no WAL — its
				// LastCompletion bounds the active span, so the kill point
				// always lands with work genuinely in flight.
				base, err := Run(chaosConfig(f, int64(seed)), WithFaults(inj))
				if err != nil {
					t.Fatalf("seed %d: baseline: %v", seed, err)
				}
				killAt, ok := inj.KillAt(base.LastCompletion)
				if !ok || killAt <= 0 {
					t.Fatalf("seed %d: no kill point in window %v", seed, base.LastCompletion)
				}
				frac := inj.KillFlushFrac()
				repro := fmt.Sprintf("repro: go test -run 'TestKillRestartBattery/%s' ./internal/sim/ with seed=%d killat=%d flushfrac=%.3f",
					f.Label, seed, int64(killAt), frac)

				cfg := chaosConfig(f, int64(seed))
				cfg.Horizon = killAt // SIGKILL: the timeline just stops here
				dir := t.TempDir()
				l, err := wal.Open(dir, cfg.Machine.NumNodes)
				if err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				committed := map[txn.ID]bool{}
				trace := obs.ObserverFunc(func(e obs.Event) {
					if e.Kind == obs.KindCommit {
						committed[e.Txn] = true
					}
				})
				res, err := Run(cfg, WithFaults(inj), WithWAL(l), WithTrace(trace))
				if err != nil {
					t.Fatalf("seed %d: killed run: %v\n%s", seed, err, repro)
				}
				if res.Completed != len(committed) {
					t.Fatalf("seed %d: %d commits counted, %d observed\n%s", seed, res.Completed, len(committed), repro)
				}
				l.Crash(frac)

				scans, err := wal.Scan(dir)
				if err != nil {
					t.Fatalf("seed %d: scan after crash: %v\n%s", seed, err, repro)
				}
				rec, err := wal.Replay(scans, 4, nil)
				if err != nil {
					t.Fatalf("seed %d: replay: %v\n%s", seed, err, repro)
				}
				for _, id := range rec.Committed {
					if !committed[id] {
						t.Fatalf("seed %d: %v resurrected — recovered as committed but never committed pre-crash\n%s", seed, id, repro)
					}
				}
				if len(rec.Committed) != len(committed) {
					want := make([]txn.ID, 0, len(committed))
					for id := range committed {
						want = append(want, id)
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					t.Fatalf("seed %d: committed transaction lost: recovered %d of %d (%v vs %v)\n%s",
						seed, len(rec.Committed), len(committed), rec.Committed, want, repro)
				}
				for _, id := range rec.Aborted {
					if committed[id] {
						t.Fatalf("seed %d: committed %v recovered as aborted\n%s", seed, id, repro)
					}
				}
				for _, b := range rec.Incomplete {
					if committed[b.Txn] {
						t.Fatalf("seed %d: committed %v re-aborted as incomplete\n%s", seed, b.Txn, repro)
					}
				}
				if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
					t.Fatalf("seed %d: %v\n%s", seed, err, repro)
				}
				if rec.MaxParallel > maxPar {
					maxPar = rec.MaxParallel
				}
				incompletes += len(rec.Incomplete)
				tornBytes += rec.TruncatedBytes
				recovered += len(rec.Committed)
			}
			// The battery must actually exercise what it claims to: kills
			// that land mid-flight leave incomplete transactions behind,
			// and independent committed transactions replay in parallel.
			if incompletes == 0 {
				t.Errorf("%s: no in-flight transactions re-aborted across %d kills — kills landed in drained tails", f.Label, seeds)
			}
			if maxPar <= 1 && recovered > 1 {
				t.Errorf("%s: replay parallelism never exceeded 1 across %d recoveries", f.Label, seeds)
			}
			t.Logf("%s: %d seeds: %d committed replayed, %d re-aborted, %d torn bytes truncated, max replay parallelism %d",
				f.Label, seeds, recovered, incompletes, tornBytes, maxPar)
		})
	}
}

// TestWALOffIsByteIdentical locks in the zero-cost guarantee for the
// recovery subsystem, mirroring TestFaultsOffIsByteIdentical: a run
// with no WAL attached is byte-identical to one that never heard of
// durability, and attaching a WAL changes only durability — the
// simulated Result is identical too (all WAL work happens at existing
// event boundaries and costs zero simulated time).
func TestWALOffIsByteIdentical(t *testing.T) {
	cfg := chaosConfig(sched.KWTPGFactory(2), 11)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(t.TempDir(), cfg.Machine.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	logged, err := Run(cfg, WithWAL(l))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", base) != fmt.Sprintf("%+v", logged) {
		t.Errorf("attaching a WAL changed the simulated result:\nbase:   %+v\nlogged: %+v", base, logged)
	}
}

// TestCleanShutdownRecoversEverything is the no-crash control: a run
// that completes and closes its log cleanly recovers with every
// committed transaction present, nothing incomplete, and no torn bytes.
func TestCleanShutdownRecoversEverything(t *testing.T) {
	cfg := chaosConfig(sched.ChainFactory(), 5)
	dir := t.TempDir()
	l, err := wal.Open(dir, cfg.Machine.NumNodes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, WithWAL(l))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	scans, err := wal.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Replay(scans, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Committed) != res.Completed {
		t.Errorf("recovered %d committed, run counted %d", len(rec.Committed), res.Completed)
	}
	if len(rec.Incomplete) != 0 || rec.TruncatedBytes != 0 {
		t.Errorf("clean shutdown left %d incomplete, %d torn bytes", len(rec.Incomplete), rec.TruncatedBytes)
	}
	if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
		t.Error(err)
	}
	// InjectedAborts is zero here, so aborted records come only from the
	// machinery itself; a CHAIN run without faults aborts nothing.
	if len(rec.Aborted) != 0 {
		t.Errorf("fault-free run logged %d aborts", len(rec.Aborted))
	}
}
