package sim

// Real page I/O under the deterministic simulator: with WithStorage
// attached, every processed quantum reads one heap page of the step's
// partition through the buffer pool, committed write steps insert their
// deterministic effect tuple (internal/storage's effect model), and the
// touched partitions' dirty pages flush at commit strictly after the
// WAL force when WithWAL is also attached — the write-ahead contract
// extended to pages.
//
// The storage engine is driven *by* the simulated timeline but feeds
// nothing back into it: page reads and writes happen as side effects at
// event boundaries and never schedule events or alter durations, so the
// simulation's Result stays a pure function of (Config, Seed) whether
// storage is attached or not — the byte-identity the differential
// battery (TestStorageDifferentialCommitSet) asserts.

import (
	"batsched/internal/event"
	"batsched/internal/storage"
	"batsched/internal/txn"
)

// WithStorage attaches a caller-owned heap-file store: quanta read real
// pages, commits apply real effect tuples and flush them. The caller
// keeps the store's lifecycle (Close for a graceful shutdown, Crash for
// the chaos batteries); the store must have been opened with at least
// the machine's partition count. A nil store is ignored.
func WithStorage(st *storage.Store) Option {
	return func(rc *runOpts) { rc.store = st }
}

// storeFail latches the first storage error; Run reports it after the
// timeline drains, mirroring walFail.
func (s *simulator) storeFail(err error) {
	if err != nil && s.storeErr == nil {
		s.storeErr = err
	}
}

// storeBind points the store's trace events at this run's observer and
// simulated clock. The clock reads the storeNow shadow, not q.Now()
// directly: the store's background flusher and prefetcher stamp events
// from their own goroutines, and the queue's now-field is owned by the
// sim loop. Each storage touchpoint refreshes the shadow, so background
// events carry the timeline position of the last storage activity.
func (s *simulator) storeBind() {
	if s.store == nil {
		return
	}
	s.storeNow.Store(int64(s.q.Now()))
	s.store.Bind(s.obs, s.obsLabel, func() event.Time { return event.Time(s.storeNow.Load()) })
}

// storeTouch turns one processed quantum into one real page read of the
// step's partition, walking the partition's pages round-robin via the
// transaction's cursor.
func (s *simulator) storeTouch(st *txnState, step int, now event.Time) {
	if s.store == nil || s.storeErr != nil {
		return
	}
	if step < 0 || step >= len(st.t.Steps) {
		return
	}
	part := st.t.Steps[step].Part
	if int(part) >= s.store.NumPartitions() {
		return
	}
	s.storeNow.Store(int64(now))
	s.storeFail(s.store.TouchPage(part, st.pageCursor))
	st.pageCursor++
}

// storeStageStep stages the step's effect tuple if it is a write step —
// applied only if the transaction commits (no-steal).
func (s *simulator) storeStageStep(st *txnState, step int) {
	if s.store == nil || s.storeErr != nil {
		return
	}
	if step < 0 || step >= len(st.t.Steps) {
		return
	}
	sp := st.t.Steps[step]
	if sp.Mode != txn.Write || int(sp.Part) >= s.store.NumPartitions() {
		return
	}
	s.store.Stage(st.t.ID, step, sp.Part)
}

// storeCommit applies the transaction's staged effects and flushes the
// touched partitions. Called from handleCommit strictly after
// walCommit's Sync: the commit record is durable before any page
// carrying the effects can reach disk.
func (s *simulator) storeCommit(st *txnState) {
	if s.store == nil || s.storeErr != nil {
		return
	}
	s.storeNow.Store(int64(s.q.Now()))
	s.storeFail(s.store.ApplyCommit(st.t.ID))
}

// storeAbort drops the transaction's staged effects — nothing was ever
// written, so there is nothing to undo.
func (s *simulator) storeAbort(st *txnState) {
	if s.store == nil {
		return
	}
	s.store.Drop(st.t.ID)
}

// storeFinish drops effects staged by transactions still live at the
// horizon and unbinds the observer (the store may outlive the run).
func (s *simulator) storeFinish() {
	if s.store == nil {
		return
	}
	for id := range s.live {
		s.store.Drop(id)
	}
	s.store.Bind(nil, "", nil)
}
