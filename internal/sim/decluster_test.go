package sim

import (
	"math"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

// TestDeclusteredSingleStep: a lone 8-object scan on 8 nodes takes one
// object-time under full declustering (every node processes one object in
// parallel) versus eight object-times under mod placement.
func TestDeclusteredSingleStep(t *testing.T) {
	mk := func(declustered bool) *Result {
		cfg := baseConfig()
		cfg.Workload = &workload.Fixed{Label: "scan", Txns: []*txn.T{
			txn.New(0, []txn.Step{r(0, 8)}),
		}}
		cfg.MaxTxns = 1
		cfg.Declustered = declustered
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != 1 {
			t.Fatalf("completed %d", res.Completed)
		}
		return res
	}
	mod := mk(false)
	dec := mk(true)
	// Mod placement: admit 11 + grant 1 + 8000 processing + commit 10.
	if want := 8.022; math.Abs(mod.MeanRT-want) > 1e-9 {
		t.Errorf("mod RT = %g, want %g", mod.MeanRT, want)
	}
	// Declustered: the 8 sub-jobs of 1 object run in parallel.
	if want := 1.022; math.Abs(dec.MeanRT-want) > 1e-9 {
		t.Errorf("declustered RT = %g, want %g", dec.MeanRT, want)
	}
	// All eight nodes were busy under declustering, one under mod.
	busyMod, busyDec := 0, 0
	for i := range mod.NodeUtilization {
		if mod.NodeUtilization[i] > 0 {
			busyMod++
		}
		if dec.NodeUtilization[i] > 0 {
			busyDec++
		}
	}
	if busyMod != 1 || busyDec != 8 {
		t.Errorf("busy nodes: mod %d (want 1), declustered %d (want 8)", busyMod, busyDec)
	}
}

// TestResponseTimeDecomposition checks that admission wait + lock wait +
// data-node time + commit coordination equals the response time for an
// uncontended transaction.
func TestResponseTimeDecomposition(t *testing.T) {
	cfg := baseConfig()
	cfg.Workload = &workload.Fixed{Label: "one", Txns: []*txn.T{
		txn.New(0, []txn.Step{r(0, 2), w(1, 1)}),
	}}
	cfg.MaxTxns = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// admit 11ms, lock waits 1ms per step, DN 2000+1000ms, commit 10ms.
	if math.Abs(res.MeanAdmitWait-0.011) > 1e-9 {
		t.Errorf("MeanAdmitWait = %g, want 0.011", res.MeanAdmitWait)
	}
	if math.Abs(res.MeanLockWait-0.002) > 1e-9 {
		t.Errorf("MeanLockWait = %g, want 0.002", res.MeanLockWait)
	}
	if math.Abs(res.MeanDNTime-3.0) > 1e-9 {
		t.Errorf("MeanDNTime = %g, want 3.0", res.MeanDNTime)
	}
	sum := res.MeanAdmitWait + res.MeanLockWait + res.MeanDNTime + 0.010
	if math.Abs(sum-res.MeanRT) > 1e-9 {
		t.Errorf("decomposition %g != RT %g", sum, res.MeanRT)
	}
}

// TestDecompositionCoversRT: on a contended workload the decomposition
// parts never exceed the response time and lock wait grows with
// contention.
func TestDecompositionCoversRT(t *testing.T) {
	low := baseConfig()
	low.ArrivalRate = 0.1
	high := baseConfig()
	high.ArrivalRate = 0.8
	rl, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{rl, rh} {
		if r.MeanAdmitWait+r.MeanLockWait+r.MeanDNTime > r.MeanRT+1e-6 {
			t.Errorf("decomposition exceeds RT: %+v", r)
		}
	}
	if rh.MeanLockWait <= rl.MeanLockWait {
		t.Errorf("lock wait did not grow with load: %g vs %g", rl.MeanLockWait, rh.MeanLockWait)
	}
}

// TestDeclusteredSerializable runs a contended declustered workload under
// each WTPG scheduler and checks serializability still holds.
func TestDeclusteredSerializable(t *testing.T) {
	for _, f := range []sched.Factory{sched.ChainFactory(), sched.KWTPGFactory(2), sched.C2PLFactory()} {
		cfg := baseConfig()
		cfg.Scheduler = f
		cfg.Declustered = true
		cfg.ArrivalRate = 0.6
		cfg.Horizon = 200_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", f.Label, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: no completions", f.Label)
		}
	}
}

// TestDeclusteredWeightAccounting: weight messages from parallel
// sub-jobs must decrement w(T0→Ti) by exactly the step cost in total —
// the run completes and the graph never underflows (AddW0 clamps, but a
// mismatch would break CHAIN's optimizer inputs). Exercised via CHAIN,
// which consumes the weights.
func TestDeclusteredWeightAccounting(t *testing.T) {
	cfg := baseConfig()
	cfg.Scheduler = sched.ChainFactory()
	cfg.Declustered = true
	cfg.ArrivalRate = 0.5
	cfg.Horizon = 300_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
}

// TestPartialDeclustering: width-2 declustering splits a step over the
// home node and its successor.
func TestPartialDeclustering(t *testing.T) {
	cfg := baseConfig()
	cfg.Workload = &workload.Fixed{Label: "scan", Txns: []*txn.T{
		txn.New(0, []txn.Step{r(3, 4)}), // home node 3
	}}
	cfg.MaxTxns = 1
	cfg.DeclusterWidth = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 objects split into 2×2: RT = 11 + 1 + 2000 + 10 = 2022 ms.
	if want := 2.022; math.Abs(res.MeanRT-want) > 1e-9 {
		t.Errorf("MeanRT = %g, want %g", res.MeanRT, want)
	}
	busy := 0
	for i, u := range res.NodeUtilization {
		if u > 0 {
			busy++
			if i != 3 && i != 4 {
				t.Errorf("unexpected node %d busy", i)
			}
		}
	}
	if busy != 2 {
		t.Errorf("busy nodes = %d, want 2", busy)
	}
}
