package sim

// Dependency logging for the deterministic simulator: the same records
// the live controller writes (internal/wal, docs/ROBUSTNESS.md §9),
// captured from the simulated timeline so the kill-and-restart chaos
// battery can crash a run mid-window (wal.Log.Crash) and assert replay
// equivalence — the recovered committed set must equal the pre-crash
// committed prefix exactly.
//
// Durability points differ from the live controller in one deliberate
// way: Begin and Abort records are appended but not individually
// forced; every Commit forces a group-commit Sync (synchronous commit).
// Records for one transaction share a per-node file in append order, so
// a commit record can only be durable if its begin already is, and a
// crash's partial flush can strand only begin/abort records — which
// recovery re-aborts or ignores. The committed set is therefore exactly
// the synced commit records, matching what the run counted.

import (
	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// WithWAL attaches a caller-owned dependency log: admissions append
// Begin records (footprint + predecessors resolved at admission),
// commits append-and-force Commit records carrying the final resolved
// predecessor set, aborts append Abort records. The caller keeps the
// log's lifecycle — Close for a graceful shutdown, Crash to simulate
// SIGKILL — and the log must span at least the machine's nodes
// (wal.Open(dir, cfg.Machine.NumNodes)). A nil log is ignored.
func WithWAL(l *wal.Log) Option {
	return func(rc *runOpts) { rc.wal = l }
}

// walFail latches the first WAL error; Run reports it after the
// timeline drains (the simulator has no mid-run error plumbing).
func (s *simulator) walFail(err error) {
	if s.walErr == nil {
		s.walErr = err
	}
}

// walBegin logs the admission of st: routed to the node of its first
// partition (at admission time — completion records follow it there
// even if the partition later re-homes).
func (s *simulator) walBegin(st *txnState, now event.Time) {
	node := 0
	if len(st.t.Steps) > 0 {
		node = s.place.NodeOf(st.t.Steps[0].Part)
	}
	st.walNode, st.walLogged = node, true
	err := s.wal.Append(wal.Record{
		Kind:  wal.Begin,
		Txn:   st.t.ID,
		Node:  node,
		At:    now,
		Steps: wal.Footprint(st.t),
		Preds: sched.Predecessors(s.sch, st.t.ID),
	})
	if err != nil {
		s.walFail(err)
		return
	}
	s.emitObs(obs.Event{Kind: obs.KindWALAppend, At: now, Txn: st.t.ID, Op: "begin", Node: node})
}

// walCommit logs and forces st's commit record. preds is the final
// resolved predecessor set, read before the scheduler dropped st from
// the graph (submitCommit captures it).
func (s *simulator) walCommit(st *txnState, preds []txn.ID, now event.Time) {
	if err := s.wal.Append(wal.Record{Kind: wal.Commit, Txn: st.t.ID, Node: st.walNode, At: now, Preds: preds}); err != nil {
		s.walFail(err)
		return
	}
	s.emitObs(obs.Event{Kind: obs.KindWALAppend, At: now, Txn: st.t.ID, Op: "commit", Node: st.walNode})
	n, err := s.wal.Sync()
	if err != nil {
		s.walFail(err)
		return
	}
	if n > 0 {
		// DurNS stays zero: the fsync is real wall IO, but simulation
		// traces must remain a pure function of (Config, Seed).
		s.emitObs(obs.Event{Kind: obs.KindWALSync, At: now, Batch: n})
	}
}

// walAbort logs st's abort record (unforced — a lost abort record
// re-aborts at recovery anyway).
func (s *simulator) walAbort(st *txnState, now event.Time) {
	if err := s.wal.Append(wal.Record{Kind: wal.Abort, Txn: st.t.ID, Node: st.walNode, At: now}); err != nil {
		s.walFail(err)
		return
	}
	s.emitObs(obs.Event{Kind: obs.KindWALAppend, At: now, Txn: st.t.ID, Op: "abort", Node: st.walNode})
}
