package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// shardedWorkload generates a reproducible mixed workload: n
// transactions of 1–3 distinct-partition steps over parts partitions,
// half writes — small enough footprints that most transactions land in
// one shard while a steady minority spans shards and exercises the
// atomic cross-shard admission path.
func shardedWorkload(seed int64, n, parts int) []*txn.T {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]*txn.T, n)
	for i := range ts {
		nsteps := 1 + rng.Intn(3)
		perm := rng.Perm(parts)
		steps := make([]txn.Step, nsteps)
		for j := range steps {
			mode := txn.Read
			if rng.Float64() < 0.5 {
				mode = txn.Write
			}
			steps[j] = txn.Step{Mode: mode, Part: txn.PartitionID(perm[j]), Cost: 1}
		}
		ts[i] = txn.New(txn.ID(i+1), steps)
	}
	return ts
}

// runCommitSet drives the workload through one controller with real
// goroutines and returns the set of transactions that committed.
func runCommitSet(t *testing.T, ctl *Controller, ts []*txn.T) map[txn.ID]bool {
	t.Helper()
	defer ctl.Close()
	var mu sync.Mutex
	committed := make(map[txn.ID]bool, len(ts))
	var wg sync.WaitGroup
	for _, tx := range ts {
		tx := tx
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			err := ctl.Run(ctx, tx, func(step int, p Progress) error {
				p(1)
				return nil
			})
			if err != nil {
				t.Errorf("txn %v: %v", tx.ID, err)
				return
			}
			mu.Lock()
			committed[tx.ID] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if err := ctl.CheckInvariants(); err != nil {
		t.Error(err)
	}
	st := ctl.Stats()
	if st.Active != 0 {
		t.Errorf("%d transactions leaked", st.Active)
	}
	if st.Committed != uint64(len(committed)) {
		t.Errorf("stats committed %d, observed %d", st.Committed, len(committed))
	}
	return committed
}

// TestShardedDifferentialCommitSet is the tentpole's differential
// proof: for many seeds and every scheduler family, the sharded
// controller's committed set must equal the single-mutex controller's
// on the identical workload. Absent faults both must commit everything
// — so any divergence is a liveness failure (a cross-shard deadlock or
// a lost wakeup) or a safety failure caught by CheckInvariants. Run
// with -race (the Makefile verify line does).
func TestShardedDifferentialCommitSet(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	}
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				ts := shardedWorkload(int64(seed)+1, 24, 24)
				single := runCommitSet(t, New(f, liveCosts,
					WithRetryDelay(time.Millisecond), WithShards(1)), ts)
				sharded := runCommitSet(t, New(f, liveCosts,
					WithRetryDelay(time.Millisecond), WithShards(8)), ts)
				if len(single) != len(sharded) {
					t.Fatalf("seed %d: single-mutex committed %d, sharded committed %d",
						seed, len(single), len(sharded))
				}
				for id := range single {
					if !sharded[id] {
						t.Fatalf("seed %d: %v committed single-mutex but not sharded", seed, id)
					}
				}
				if t.Failed() {
					t.Fatalf("seed %d: divergence", seed)
				}
			}
		})
	}
}

// TestShardedSwarmRace hammers a sharded controller from many
// goroutines while asserting, inside the held locks, the property
// sharding must preserve: writers are exclusive and exclude readers on
// every partition, whichever shard owns it. It also checks that the
// observer pipeline saw events tagged with a non-default shard. Run
// with -race.
func TestShardedSwarmRace(t *testing.T) {
	const parts = 32
	var writers, readers [parts]int32
	ring := obs.NewRing(4096)
	ctl := New(sched.C2PLFactory(), liveCosts,
		WithShards(8),
		WithRetryDelay(time.Millisecond),
		WithBackoff(500*time.Microsecond, 8*time.Millisecond),
		WithObserver(ring))
	defer ctl.Close()
	if got := ctl.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	ts := shardedWorkload(99, 64, parts)
	var wg sync.WaitGroup
	for _, tx := range ts {
		tx := tx
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			err := ctl.Run(ctx, tx, func(step int, p Progress) error {
				part := tx.Steps[step].Part
				if tx.Steps[step].Mode == txn.Write {
					if atomic.AddInt32(&writers[part], 1) != 1 || atomic.LoadInt32(&readers[part]) != 0 {
						t.Errorf("%v: writer on %v not exclusive", tx.ID, part)
					}
					atomic.AddInt32(&writers[part], -1)
				} else {
					atomic.AddInt32(&readers[part], 1)
					if atomic.LoadInt32(&writers[part]) != 0 {
						t.Errorf("%v: reader on %v overlaps a writer", tx.ID, part)
					}
					atomic.AddInt32(&readers[part], -1)
				}
				p(1)
				return nil
			})
			if err != nil {
				t.Errorf("txn %v: %v", tx.ID, err)
			}
		}()
	}
	wg.Wait()
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tagged := false
	for _, e := range ring.Events() {
		if e.Shard > 0 {
			tagged = true
			break
		}
	}
	if !tagged {
		t.Error("no event carried a non-default shard tag")
	}
}

// TestShardedChaosLive joins the `make chaos` battery: the fault
// injector's full mix — injected aborts, crashes (panics), slow I/O,
// admission refusals — against a sharded controller with watchdog and
// backoff, over footprints that routinely span shards. Invariants must
// hold and the books must balance after every storm.
func TestShardedChaosLive(t *testing.T) {
	factories := []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, f := range factories {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				inj, err := fault.New(seed, fault.Config{
					AbortRate:        0.25,
					SlowIORate:       0.25,
					SlowIOFactor:     2,
					AdmitRefusalRate: 0.25,
					CrashRate:        0.15,
				})
				if err != nil {
					t.Fatal(err)
				}
				ctl := New(f, liveCosts,
					WithShards(4),
					WithRetryDelay(time.Millisecond),
					WithBackoff(500*time.Microsecond, 8*time.Millisecond),
					WithWatchdog(50*time.Millisecond),
					WithFaults(inj))
				const workers = 24
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for i := 0; i < workers; i++ {
					i := i
					wg.Add(1)
					go func() {
						defer wg.Done()
						tx := txn.New(txn.ID(seed*1000)+txn.ID(i+1), []txn.Step{
							w(txn.PartitionID(i%8), 2),
							w(txn.PartitionID((i+3)%8), 2),
						})
						ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
						defer cancel()
						err := ctl.Run(ctx, tx, func(step int, p Progress) error {
							p(1)
							p(1)
							return nil
						})
						switch {
						case err == nil:
						case errors.Is(err, fault.ErrInjectedAbort),
							errors.Is(err, fault.ErrInjectedCrash),
							errors.Is(err, ErrWatchdogAborted):
							// expected fault outcomes
						default:
							errs <- fmt.Errorf("worker %d: %w", i, err)
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				if err := ctl.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				st := ctl.Stats()
				if st.Active != 0 {
					t.Fatalf("seed %d: %d transactions leaked", seed, st.Active)
				}
				if st.Committed+st.Aborted != st.Admitted {
					t.Fatalf("seed %d: admitted %d != committed %d + aborted %d",
						seed, st.Admitted, st.Committed, st.Aborted)
				}
				ctl.Close()
			}
		})
	}
}
