package live

import (
	"context"
	"errors"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// TestCrashNodeDoomsPartialWork: a transaction that reported objects
// since its last grant on the crashed node is unrecoverable — its
// Commit runs the abort path and returns ErrNodeCrashed — and the dead
// node's partitions re-home to the survivor. Topology: 2 nodes, 4
// partitions, so node 0 holds partitions 0 and 2.
func TestCrashNodeDoomsPartialWork(t *testing.T) {
	ring := obs.NewRing(256)
	ctl := New(sched.KWTPGFactory(2), liveCosts,
		WithTopology(2, 4), WithObserver(ring))
	defer ctl.Close()
	ctx := context.Background()
	tx := txn.New(1, []txn.Step{w(0, 5)})
	if err := ctl.Admit(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx, 0); err != nil {
		t.Fatal(err)
	}
	ctl.ObjectDone(tx, 3) // partial bulk results now live on node 0
	if err := ctl.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Commit(tx); !errors.Is(err, ErrNodeCrashed) {
		t.Fatalf("Commit of a doomed transaction returned %v, want ErrNodeCrashed", err)
	}
	st := ctl.Stats()
	if st.NodeCrashes != 1 || st.CrashDoomed != 1 {
		t.Fatalf("stats: %+v, want 1 crash / 1 doomed", st)
	}
	if st.Committed != 0 || st.Aborted != 1 || st.Active != 0 {
		t.Fatalf("stats: %+v, want the doomed transaction aborted", st)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var downs, rehomes, faults int
	for _, e := range ring.Events() {
		switch e.Kind {
		case obs.KindNodeDown:
			downs++
			if e.Node != 0 {
				t.Errorf("node-down event for node %d, want 0", e.Node)
			}
		case obs.KindRehome:
			rehomes++
			if e.FromNode != 0 || e.Node != 1 {
				t.Errorf("re-home P%d: %d→%d, want 0→1", e.Part, e.FromNode, e.Node)
			}
		case obs.KindFault:
			if e.Op == "node-crash" {
				faults++
			}
		}
	}
	if downs != 1 || rehomes != 2 || faults != 1 {
		t.Errorf("events: %d downs, %d rehomes, %d node-crash faults; want 1, 2, 1", downs, rehomes, faults)
	}
}

// TestCrashNodeDoomSurfacesAtAcquire: the doomed transaction learns of
// the crash at its next Acquire, not only at Commit.
func TestCrashNodeDoomSurfacesAtAcquire(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithTopology(2, 4))
	defer ctl.Close()
	ctx := context.Background()
	tx := txn.New(1, []txn.Step{w(0, 2), w(1, 2)})
	if err := ctl.Admit(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx, 0); err != nil {
		t.Fatal(err)
	}
	ctl.ObjectDone(tx, 2)
	if err := ctl.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx, 1); !errors.Is(err, ErrNodeCrashed) {
		t.Fatalf("Acquire after the crash returned %v, want ErrNodeCrashed", err)
	}
	if err := ctl.Abort(tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashNodeRequeuesCleanResident: a transaction holding a lock on
// the dead node with no objects reported since the grant lost nothing —
// it is requeued against the re-homed partition and commits normally.
func TestCrashNodeRequeuesCleanResident(t *testing.T) {
	ring := obs.NewRing(256)
	ctl := New(sched.ChainFactory(), liveCosts,
		WithTopology(2, 4), WithObserver(ring))
	defer ctl.Close()
	ctx := context.Background()
	tx := txn.New(1, []txn.Step{w(0, 2)})
	if err := ctl.Admit(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	// The in-flight quantum is redone against the new home; the
	// transaction carries on and commits.
	ctl.ObjectDone(tx, 2)
	if err := ctl.Commit(tx); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.Committed != 1 || st.Aborted != 0 || st.CrashDoomed != 0 {
		t.Fatalf("stats: %+v, want a clean commit", st)
	}
	requeues := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KindRequeue {
			requeues++
			if e.Txn != tx.ID || e.FromNode != 0 || e.Node != 1 {
				t.Errorf("requeue event %+v, want T1 0→1", e)
			}
		}
	}
	if requeues != 1 {
		t.Errorf("%d requeue events, want 1", requeues)
	}
}

// TestRunReturnsErrNodeCrashed drives the crash through the Run path: a
// node dies while the transaction's work function is mid-step with
// reported progress, so Run's commit turns into the abort and the
// caller sees ErrNodeCrashed.
func TestRunReturnsErrNodeCrashed(t *testing.T) {
	ctl := New(sched.KWTPGFactory(2), liveCosts, WithTopology(2, 4))
	defer ctl.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ctl.Run(context.Background(), txn.New(1, []txn.Step{w(0, 3)}),
			func(step int, p Progress) error {
				p(3)
				close(entered)
				<-release
				return nil
			})
	}()
	<-entered
	if err := ctl.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, ErrNodeCrashed) {
			t.Fatalf("Run returned %v, want ErrNodeCrashed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned after the crash")
	}
	if st := ctl.Stats(); st.Aborted != 1 || st.Committed != 0 {
		t.Fatalf("stats: %+v, want the run aborted", st)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashNodeErrors locks in the error contract: no topology, an
// unknown or already-dead node, the last survivor, and a closed
// controller all refuse.
func TestCrashNodeErrors(t *testing.T) {
	bare := New(sched.C2PLFactory(), liveCosts)
	if err := bare.CrashNode(0); err == nil {
		t.Error("CrashNode without WithTopology succeeded")
	}
	bare.Close()

	ctl := New(sched.C2PLFactory(), liveCosts, WithTopology(2, 4))
	if err := ctl.CrashNode(5); err == nil {
		t.Error("CrashNode of an unknown node succeeded")
	}
	if err := ctl.CrashNode(0); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CrashNode(0); err == nil {
		t.Error("CrashNode of a dead node succeeded")
	}
	if err := ctl.CrashNode(1); err == nil {
		t.Error("CrashNode of the last alive node succeeded")
	}
	ctl.Close()
	if err := ctl.CrashNode(1); !errors.Is(err, ErrClosed) {
		t.Errorf("CrashNode on a closed controller returned %v, want ErrClosed", err)
	}
}

// TestWatchdogCountsEpisodesNotTicks is the regression test for the
// Stalled/Recovered asymmetry: one stall spanning many silent watchdog
// deadlines must count as ONE episode, paired with exactly one recovery
// when progress resumes. The stall is built so the watchdog cannot cure
// it itself — ASL refuses T2's *admission* while T1 holds the lock, and
// admission waiters are never abort candidates — and is then cleared
// externally by committing the holder (the same shape as a node-crash
// requeue unblocking a run).
func TestWatchdogCountsEpisodesNotTicks(t *testing.T) {
	const period = 10 * time.Millisecond
	ctl := New(sched.ASLFactory(), liveCosts,
		WithRetryDelay(2*time.Millisecond),
		WithWatchdog(period))
	defer ctl.Close()
	ctx := context.Background()
	holder := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Admit(ctx, holder); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- ctl.Run(ctx, txn.New(2, []txn.Step{w(0, 1)}), nil)
	}()
	// Let the stall span many watchdog deadlines. The per-tick bug this
	// test guards against would push Stalled toward ~10 here.
	time.Sleep(15 * period)
	if st := ctl.Stats(); st.Stalled != 1 {
		t.Fatalf("Stalled = %d during one sustained stall, want 1 episode", st.Stalled)
	}
	// External cure: the holder commits, T2 admits and finishes.
	if err := ctl.Commit(holder); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("T2 never finished after the stall cleared")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := ctl.Stats()
		if st.Recovered > 0 {
			if st.Stalled != 1 || st.Recovered != 1 {
				t.Fatalf("Stalled = %d, Recovered = %d, want exactly 1 and 1", st.Stalled, st.Recovered)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("Recovered never advanced after the stall cleared")
}
