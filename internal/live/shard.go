package live

// This file is the controller's shard map: how partitions hash to
// shards, how a transaction's footprint becomes a shard mask, and the
// cross-shard slow path that admits a spanning transaction atomically.
//
// Sharding invariants (DESIGN.md §13):
//
//  1. Ownership: every partition's locks are managed by exactly one
//     shard (shardOf), so conflicting holders can never coexist across
//     shards — any sharded execution stays conflict serializable
//     because every scheduler is strict (locks held to commit).
//  2. Canonical lock order: shard mutexes are only ever acquired in
//     ascending shard index, and walMu only after shard locks; no code
//     path acquires a lower shard while holding a higher one.
//  3. Spanning admission is atomic: a transaction whose footprint spans
//     shards acquires ALL of its locks at admission, under all of its
//     shard locks, or none (rollback via the scheduler abort path). A
//     spanning transaction therefore never waits while holding locks,
//     so no wait-for cycle can cross a shard boundary and the per-shard
//     cautious schedulers retain deadlock freedom.
//  4. Home shard: a transaction's control state (started, blocked,
//     doomed, resident, walNode) lives on the lowest-indexed shard of
//     its footprint; all other shards hold only scheduler state.

import (
	"context"
	"fmt"
	"math/bits"

	"batsched/internal/core/sched"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// maxShards bounds WithShards so a footprint's shard set fits in one
// uint64 bitmask. 64 shards is far beyond the core counts this
// controller targets.
const maxShards = 64

// WithShards partitions the controller's hot path — lock table, WTPG,
// scheduler state, wake channel, retry-jitter RNG, counters — into n
// shards by partition-ownership hashing. n is rounded up to a power of
// two and capped at 64; values ≤ 1 keep the default single shard,
// which behaves exactly like the historical single-mutex controller.
//
// Sharding trades strictly-global admission policy for parallelism:
// each shard's scheduler makes its decisions from its own partitions'
// state only, so cross-shard policy interactions (e.g. CHAIN's
// batch-wide order W) apply per shard. Correctness is unaffected — see
// the invariants at the top of shard.go — and the differential tests
// pin the sharded committed set against the single-mutex one.
// WithBatchWindow's single-critical-section batch admission requires
// the global view and falls back to per-arrival admission when n > 1.
func WithShards(n int) Option {
	return func(c *Controller) {
		if n <= 1 {
			c.nshards = 1
			return
		}
		if n > maxShards {
			n = maxShards
		}
		p := 1
		for p < n {
			p <<= 1
		}
		c.nshards = p
	}
}

// Shards reports the controller's shard count.
func (c *Controller) Shards() int { return c.nshards }

// shardTagged decorates an observer so every event a shard's scheduler
// emits carries the shard index (Event.Shard). Shard 0's tag is the
// zero value, keeping unsharded traces byte-identical.
type shardTagged struct {
	o     obs.Observer
	shard int
}

func (s shardTagged) Observe(e obs.Event) {
	e.Shard = s.shard
	s.o.Observe(e)
}

// shardOf maps a partition to its owning shard: a Fibonacci hash of the
// partition id masked to the (power-of-two) shard count. With one shard
// this is constant 0 and the compiler-visible fast path.
func (c *Controller) shardOf(p txn.PartitionID) int {
	if c.nshards == 1 {
		return 0
	}
	return int((uint64(uint32(p))*0x9E3779B97F4A7C15)>>32) & (c.nshards - 1)
}

// shardMask returns the set of shards t's footprint touches as a
// bitmask (bit i = shard i). An empty footprint maps to shard 0.
func (c *Controller) shardMask(t *txn.T) uint64 {
	if c.nshards == 1 || len(t.Steps) == 0 {
		return 1
	}
	var m uint64
	for _, s := range t.Steps {
		m |= 1 << uint(c.shardOf(s.Part))
	}
	return m
}

// homeShard is the lowest-indexed shard of a footprint mask — the shard
// holding the transaction's control state.
func homeShard(mask uint64) int { return bits.TrailingZeros64(mask) }

// spanning reports whether the mask covers more than one shard.
func spanning(mask uint64) bool { return mask&(mask-1) != 0 }

// lockAll acquires every shard lock in canonical (ascending) order.
func (c *Controller) lockAll() {
	for _, sh := range c.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases every shard lock (reverse order).
func (c *Controller) unlockAll() {
	for i := len(c.shards) - 1; i >= 0; i-- {
		c.shards[i].mu.Unlock()
	}
}

// lockMask acquires the masked shards' locks in canonical order.
func (c *Controller) lockMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		c.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
}

// unlockMask releases the masked shards' locks.
func (c *Controller) unlockMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		c.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

// eachShard calls fn for every masked shard in ascending order.
func (c *Controller) eachShard(mask uint64, fn func(sh *lshard)) {
	for m := mask; m != 0; m &= m - 1 {
		fn(c.shards[bits.TrailingZeros64(m)])
	}
}

// project returns t's sub-transaction for one shard: the steps (and
// their declared demands) whose partitions the shard owns, under the
// same transaction ID. Each shard's scheduler admits and locks exactly
// the projection; scheduler state is keyed by ID, so later full-footprint
// calls (ObjectDone, Commit, Abort) resolve to the same registration.
func (c *Controller) project(t *txn.T, shard int) *txn.T {
	steps := make([]txn.Step, 0, len(t.Steps))
	decl := make([]float64, 0, len(t.Steps))
	for i, s := range t.Steps {
		if c.shardOf(s.Part) == shard {
			steps = append(steps, s)
			decl = append(decl, t.Declared[i])
		}
	}
	return txn.NewDeclared(t.ID, steps, decl)
}

// admitSpanning is the cross-shard admission slow path: under all of
// the footprint's shard locks (canonical order), each shard admits the
// transaction's projection and grants every projected step — all of
// the transaction's locks, atomically. Any refusal rolls the attempt
// back through the scheduler abort path on every shard it reached,
// releases the locks, and waits for the refusing shard's next commit
// broadcast (or the retry delay) before retrying — the transaction
// never waits while holding locks, which is what keeps the sharded
// controller deadlock-free (invariant 3). After a successful return,
// Acquire calls are pure bookkeeping.
//
// This is ASL-style pessimism applied only to the spanning minority;
// single-shard traffic keeps the scheduler's incremental granting.
func (c *Controller) admitSpanning(ctx context.Context, t *txn.T, mask uint64) error {
	// Projections are stable across attempts; build them once.
	projs := make(map[int]*txn.T, bits.OnesCount64(mask))
	c.eachShard(mask, func(sh *lshard) {
		projs[sh.idx] = c.project(t, sh.idx)
	})
	home := c.shards[homeShard(mask)]
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.closed.Load() {
			return ErrClosed
		}
		now := c.now()
		if attempt == 0 {
			c.emitShard(home.idx, obs.Event{Kind: obs.KindAdmit, At: now, Txn: t.ID})
		}
		if c.inj.RefuseAdmit(t.ID, attempt) {
			c.emitShard(home.idx, obs.Event{Kind: obs.KindFault, At: now, Txn: t.ID, Op: "refuse-admit"})
			home.mu.Lock()
			ch := home.wake
			home.mu.Unlock()
			if err := c.awaitOn(ctx, ch, home, nil, attempt); err != nil {
				return err
			}
			continue
		}
		c.lockMask(mask)
		if c.closed.Load() {
			c.unlockMask(mask)
			return ErrClosed
		}
		if err := c.walBroken(); err != nil {
			c.unlockMask(mask)
			return fmt.Errorf("live: wal: %w", err)
		}
		now = c.now()
		granted := true
		var refused *lshard
		var reached []*lshard // shards whose scheduler registered t this attempt
		c.eachShard(mask, func(sh *lshard) {
			if !granted {
				return
			}
			proj := projs[sh.idx]
			if out := sh.sch.Admit(proj, now); out.Decision != sched.Granted {
				granted, refused = false, sh
				return
			}
			reached = append(reached, sh)
			for step := range proj.Steps {
				if out := sh.sch.Request(proj, step, now); out.Decision != sched.Granted {
					granted, refused = false, sh
					return
				}
			}
		})
		if !granted {
			// Roll back every shard the attempt registered on (including a
			// shard whose Admit succeeded but a Request refused — the abort
			// path releases partial grants and repairs the WTPG).
			for _, sh := range reached {
				sched.AbortTxn(sh.sch, projs[sh.idx], now)
			}
			ch := refused.wake
			c.unlockMask(mask)
			if err := c.awaitOn(ctx, ch, refused, nil, attempt); err != nil {
				return err
			}
			continue
		}
		home.stats.Admitted++
		home.started[t.ID] = now
		c.bumpProgress()
		rec, logIt := c.walBeginLocked(home, t, now, func() []txn.ID {
			schs := make([]sched.Scheduler, 0, len(reached))
			for _, sh := range reached {
				schs = append(schs, sh.sch)
			}
			return sched.PredecessorsUnion(schs, t.ID)
		})
		c.unlockMask(mask)
		if logIt {
			// Write-ahead, as on the single-shard path: the Begin record —
			// full footprint + the union of per-shard predecessors — must
			// be durable before the grants take effect.
			if err := c.walForce(rec); err != nil {
				c.Abort(t)
				return fmt.Errorf("live: wal: %w", err)
			}
		}
		return nil
	}
}
