package live

// This file is epoch-batch admission for the live controller: collect
// submissions for a wall-clock window, admit the whole window through
// the scheduler's BatchAdmitter surface in one critical section, then
// dispatch its conflict-free clusters to a worker pool with work
// stealing. Transactions in one cluster conflict (transitively), so a
// cluster runs sequentially on one worker; distinct clusters never
// contend and run in parallel. Correctness never depends on the
// clustering — every transaction still takes every lock through the
// scheduler — it only shapes the dispatch so CHAIN's batch-computed
// order W is consumed by exactly the parallelism the batch contains.

import (
	"context"
	"runtime"
	"sync"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// WithBatchWindow enables epoch-batch admission: transactions handed to
// Submit are collected for wall-clock windows of d and admitted as one
// batch at each window boundary, then dispatched cluster-by-cluster to
// the epoch workers. Requires a batch-capable scheduler (EPOCH) for the
// single-critical-section admission; with any other scheduler Submit
// still works but every member admits through the per-arrival path.
// Non-positive d disables batching (Submit degenerates to a goroutine
// around Run).
func WithBatchWindow(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.batchWindow = d
		}
	}
}

// WithEpochWorkers bounds the worker pool that executes one epoch's
// clusters (default: GOMAXPROCS). The pool never exceeds the number of
// clusters in the batch — extra workers would have nothing to steal.
func WithEpochWorkers(n int) Option {
	return func(c *Controller) {
		if n > 0 {
			c.epochWorkers = n
		}
	}
}

func defaultEpochWorkers() int { return runtime.GOMAXPROCS(0) }

// submission is one transaction waiting in the open epoch window.
type submission struct {
	ctx  context.Context
	t    *txn.T
	work func(step int, p Progress) error
	done chan error
}

// Submit hands a transaction to the epoch collector and returns a
// channel that delivers its final error (nil on commit), exactly as Run
// would have returned it. The transaction waits for the current window
// to close, admits with the rest of the batch, and executes when its
// cluster is dispatched. Without WithBatchWindow, Submit is a goroutine
// around Run — same contract, no batching. After Close the channel
// delivers ErrClosed.
func (c *Controller) Submit(ctx context.Context, t *txn.T, work func(step int, p Progress) error) <-chan error {
	done := make(chan error, 1)
	if c.batchWindow <= 0 {
		go func() { done <- c.Run(ctx, t, work) }()
		return done
	}
	c.epochMu.Lock()
	if c.stopEpoch == nil || c.epochClosed {
		c.epochMu.Unlock()
		done <- ErrClosed
		return done
	}
	c.epochBuf = append(c.epochBuf, &submission{ctx: ctx, t: t, work: work, done: done})
	c.epochMu.Unlock()
	return done
}

// RunBatch executes a batch synchronously: one batched admission, then
// cluster dispatch over the epoch workers, returning each transaction's
// error in input order (nil on commit). It is the one-shot form of the
// Submit/window pipeline and works without WithBatchWindow.
func (c *Controller) RunBatch(ctx context.Context, ts []*txn.T, work func(t *txn.T, step int, p Progress) error) []error {
	batch := make([]*submission, len(ts))
	for i, t := range ts {
		t := t
		var w func(int, Progress) error
		if work != nil {
			w = func(step int, p Progress) error { return work(t, step, p) }
		}
		batch[i] = &submission{ctx: ctx, t: t, work: w, done: make(chan error, 1)}
	}
	c.runEpoch(batch)
	errs := make([]error, len(batch))
	for i, s := range batch {
		errs[i] = <-s.done
	}
	return errs
}

// epochLoop is the window collector (WithBatchWindow): every window it
// swaps out the buffered submissions and processes them as one epoch,
// concurrently with the next window's collection. On shutdown, pending
// submissions fail with ErrClosed.
func (c *Controller) epochLoop() {
	defer c.epochWG.Done()
	ticker := time.NewTicker(c.batchWindow)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopEpoch:
			c.epochMu.Lock()
			c.epochClosed = true
			batch := c.epochBuf
			c.epochBuf = nil
			c.epochMu.Unlock()
			for _, s := range batch {
				s.done <- ErrClosed
			}
			return
		case <-ticker.C:
			c.epochMu.Lock()
			batch := c.epochBuf
			c.epochBuf = nil
			c.epochMu.Unlock()
			if len(batch) == 0 {
				continue
			}
			c.epochWG.Add(1)
			go func() {
				defer c.epochWG.Done()
				c.runEpoch(batch)
			}()
		}
	}
}

// runEpoch processes one closed window: batch admission in a single
// critical section (when the scheduler supports it), then cluster
// dispatch with work stealing. Members the batch pass did not admit —
// chain-form rejections, injected refusals, non-batch schedulers — go
// through the blocking per-arrival Admit on their worker, so the epoch
// path never strands a transaction the normal path would have served.
func (c *Controller) runEpoch(batch []*submission) {
	ts := make([]*txn.T, len(batch))
	for i, s := range batch {
		ts[i] = s.t
	}
	admitted, walRecs := c.admitBatch(ts)
	if len(walRecs) > 0 {
		// Write-ahead for the whole window in one group commit: every
		// Begin record durable before any member's first grant takes
		// effect (the workers below). On failure the batch admissions
		// roll back; members then retry per-arrival and surface the
		// sticky WAL error through Admit.
		if err := c.walForce(walRecs...); err != nil {
			for _, t := range ts {
				if admitted[t.ID] {
					c.Abort(t)
					delete(admitted, t.ID)
				}
			}
		}
	}
	clusters := sched.ConflictClusters(ts)
	workers := c.epochWorkers
	if workers <= 0 {
		workers = defaultEpochWorkers()
	}
	if workers > len(clusters) {
		workers = len(clusters)
	}
	q := newClusterQueue(workers, len(clusters))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ci, ok := q.next(w)
				if !ok {
					return
				}
				for _, i := range clusters[ci] {
					s := batch[i]
					if admitted[s.t.ID] {
						s.done <- c.runAdmitted(s.ctx, s.t, s.work)
					} else {
						s.done <- c.Run(s.ctx, s.t, s.work)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// admitBatch admits as much of the batch as the scheduler's batch
// surface grants, in one critical section, and reports the flush to the
// observability pipeline. Returns the granted set (nil when the
// scheduler is not batch-capable or the controller closed — callers
// fall back to per-arrival admission). Members the fault injector would
// refuse at attempt 0 are withheld from the batch; their refusal fires
// on the per-arrival path instead, keeping injector decisions
// deterministic across both paths.
// It also returns the WAL Begin records for the granted members (nil
// without a WAL) — built inside the same critical section so each
// carries the predecessors resolved by this batch's admission — for the
// caller to force durable before dispatching.
func (c *Controller) admitBatch(ts []*txn.T) (map[txn.ID]bool, []wal.Record) {
	if c.nshards > 1 {
		// Batch admission needs the global single-critical-section view;
		// with a sharded hot path every member takes the per-arrival
		// admission on its own shard instead (the callers' fallback).
		return nil, nil
	}
	sh := c.shards[0]
	ba, ok := sh.sch.(sched.BatchAdmitter)
	if !ok {
		return nil, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.closed.Load() || c.walBroken() != nil {
		return nil, nil
	}
	now := c.now()
	kept := ts
	if c.inj.Enabled() {
		kept = make([]*txn.T, 0, len(ts))
		for _, t := range ts {
			if !c.inj.RefuseAdmit(t.ID, 0) {
				kept = append(kept, t)
			}
		}
	}
	for _, t := range kept {
		c.emit(obs.Event{Kind: obs.KindAdmit, At: now, Txn: t.ID})
	}
	out := ba.AdmitBatch(kept, now)
	admitted := make(map[txn.ID]bool, out.Admitted)
	var walRecs []wal.Record
	for i, o := range out.Outcomes {
		if o.Decision == sched.Granted {
			id := kept[i].ID
			admitted[id] = true
			sh.stats.Admitted++
			sh.stats.BatchAdmitted++
			sh.started[id] = now
			if rec, logIt := c.walBeginLocked(sh, kept[i], now, func() []txn.ID {
				return sched.Predecessors(sh.sch, id)
			}); logIt {
				walRecs = append(walRecs, rec)
			}
		}
	}
	sh.stats.Epochs++
	if out.Admitted > 0 {
		c.bumpProgress()
	}
	c.emit(obs.Event{Kind: obs.KindEpochFlush, At: now,
		Batch: len(ts), Objects: float64(out.Admitted), Clusters: out.Clusters})
	return admitted, walRecs
}

// clusterQueue distributes cluster indices over per-worker queues with
// work stealing: a worker drains its own queue from the front and, when
// empty, steals from the back of the longest other queue — the classic
// split to keep contention low while no worker idles beside a loaded
// one.
type clusterQueue struct {
	mu     sync.Mutex
	queues [][]int
}

func newClusterQueue(workers, clusters int) *clusterQueue {
	q := &clusterQueue{queues: make([][]int, workers)}
	for ci := 0; ci < clusters; ci++ {
		w := ci % workers
		q.queues[w] = append(q.queues[w], ci)
	}
	return q
}

// next returns the next cluster for worker w, stealing if its own queue
// is empty; ok is false when no work remains anywhere.
func (q *clusterQueue) next(w int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if own := q.queues[w]; len(own) > 0 {
		ci := own[0]
		q.queues[w] = own[1:]
		return ci, true
	}
	victim, best := -1, 0
	for i, qu := range q.queues {
		if i != w && len(qu) > best {
			victim, best = i, len(qu)
		}
	}
	if victim < 0 {
		return 0, false
	}
	qu := q.queues[victim]
	ci := qu[len(qu)-1]
	q.queues[victim] = qu[:len(qu)-1]
	return ci, true
}
