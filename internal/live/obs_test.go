package live

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// TestObserverNoLossOrReorder drives many conflicting single-step
// writers through an observed controller and checks the event stream:
// nothing is lost (every lifecycle event for every transaction arrives)
// and Commit events appear in exactly the order the transactions
// committed. The ground truth for commit order comes from the work
// functions themselves: every transaction writes the same partition, so
// the critical sections are totally ordered and each transaction
// records its turn before releasing the lock.
func TestObserverNoLossOrReorder(t *testing.T) {
	const n = 24
	ring := obs.NewRing(1 << 14)
	ctl := New(sched.KWTPGFactory(2), liveCosts,
		WithRetryDelay(time.Millisecond),
		WithObserver(ring))
	defer ctl.Close()

	var orderMu sync.Mutex
	var trueOrder []txn.ID
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := txn.New(txn.ID(i+1), []txn.Step{w(0, 1)})
			err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
				orderMu.Lock()
				trueOrder = append(trueOrder, tx.ID)
				orderMu.Unlock()
				p(1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if ring.Dropped() > 0 {
		t.Fatalf("ring dropped %d events", ring.Dropped())
	}
	counts := map[obs.Kind]int{}
	last := map[txn.ID]obs.Kind{}
	var commitOrder []txn.ID
	for _, e := range ring.Events() {
		counts[e.Kind]++
		switch e.Kind {
		case obs.KindAdmit:
			if k, seen := last[e.Txn]; seen {
				t.Fatalf("txn %v: Admit after %v", e.Txn, k)
			}
		case obs.KindRequest:
			if last[e.Txn] != obs.KindAdmit {
				t.Fatalf("txn %v: Request after %v", e.Txn, last[e.Txn])
			}
		case obs.KindObjectDone:
			if last[e.Txn] != obs.KindRequest {
				t.Fatalf("txn %v: ObjectDone after %v", e.Txn, last[e.Txn])
			}
		case obs.KindCommit:
			if last[e.Txn] != obs.KindObjectDone {
				t.Fatalf("txn %v: Commit after %v", e.Txn, last[e.Txn])
			}
			if e.Decision == "aborted" {
				t.Fatalf("txn %v reported aborted", e.Txn)
			}
			commitOrder = append(commitOrder, e.Txn)
		}
		if e.Kind != obs.KindDecision && e.Kind != obs.KindResolve && e.Kind != obs.KindCriticalPathChange {
			last[e.Txn] = e.Kind
		}
	}
	for _, k := range []obs.Kind{obs.KindAdmit, obs.KindRequest, obs.KindObjectDone, obs.KindCommit} {
		if counts[k] != n {
			t.Errorf("%v events = %d, want %d (counts %v)", k, counts[k], n, counts)
		}
	}
	if counts[obs.KindDecision] < 2*n {
		t.Errorf("decision events = %d, want at least %d", counts[obs.KindDecision], 2*n)
	}
	if len(commitOrder) != len(trueOrder) {
		t.Fatalf("commit events %d, commits %d", len(commitOrder), len(trueOrder))
	}
	for i := range trueOrder {
		if commitOrder[i] != trueOrder[i] {
			t.Fatalf("commit order diverges at %d: events %v, actual %v", i, commitOrder, trueOrder)
		}
	}
}

// TestStatsSnapshotUnderRace hammers Stats() from a reader goroutine
// while transactions commit and abort, then checks the final snapshot
// splits outcomes correctly. Run with -race this also proves the
// counters are properly synchronized.
func TestStatsSnapshotUnderRace(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	boom := errors.New("boom")

	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				st := ctl.Stats()
				if st.Committed+st.Aborted > st.Admitted {
					t.Error("finished more transactions than were admitted")
					return
				}
			}
		}
	}()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := txn.New(txn.ID(i+1), []txn.Step{w(txn.PartitionID(i%4), 1)})
			err := ctl.Run(context.Background(), tx, func(int, Progress) error {
				if i%2 == 1 {
					return boom
				}
				return nil
			})
			if i%2 == 1 && !errors.Is(err, boom) {
				t.Errorf("txn %d: err = %v, want boom", i+1, err)
			}
		}()
	}
	wg.Wait()
	close(done)

	st := ctl.Stats()
	if st.Admitted != n || st.Committed != n/2 || st.Aborted != n/2 {
		t.Errorf("stats %+v, want %d admitted, %d committed, %d aborted", st, n, n/2, n/2)
	}
	if st.Active != 0 {
		t.Errorf("active %d after all transactions finished", st.Active)
	}
	if st.Granted < n/2 {
		t.Errorf("granted %d, want at least %d", st.Granted, n/2)
	}
}

// TestNewWithOptionsCompat: the deprecated struct constructor still
// works and routes its hooks.
func TestNewWithOptionsCompat(t *testing.T) {
	var commits int
	var mu sync.Mutex
	ctl := NewWithOptions(sched.ChainFactory(), liveCosts, Options{
		RetryDelay: time.Millisecond,
		OnCommit: func(*txn.T) {
			mu.Lock()
			commits++
			mu.Unlock()
		},
	})
	defer ctl.Close()
	tx := txn.New(1, []txn.Step{r(0, 1)})
	if err := ctl.Run(context.Background(), tx, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if commits != 1 {
		t.Errorf("OnCommit fired %d times, want 1", commits)
	}
}

// TestStepLevelAPI exercises the exported Admit/Acquire/ObjectDone/
// Commit/Abort primitives directly, including abort accounting.
func TestStepLevelAPI(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	ctx := context.Background()

	tx := txn.New(1, []txn.Step{w(0, 2), w(1, 1)})
	if err := ctl.Admit(ctx, tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx, 0); err != nil {
		t.Fatal(err)
	}
	ctl.ObjectDone(tx, 2)
	ctl.Abort(tx)

	// The partition must be free again for the next transaction.
	tx2 := txn.New(2, []txn.Step{w(0, 1)})
	if err := ctl.Admit(ctx, tx2); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, tx2, 0); err != nil {
		t.Fatal(err)
	}
	ctl.Commit(tx2)

	st := ctl.Stats()
	if st.Admitted != 2 || st.Committed != 1 || st.Aborted != 1 || st.Active != 0 {
		t.Errorf("stats %+v, want 2 admitted / 1 committed / 1 aborted / 0 active", st)
	}
}
