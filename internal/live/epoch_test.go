package live

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// epochCtl builds an EPOCH-scheduled controller with fast retries.
func epochCtl(opts ...Option) *Controller {
	opts = append([]Option{WithRetryDelay(time.Millisecond)}, opts...)
	return New(sched.MustLookup("EPOCH"), liveCosts, opts...)
}

// TestRunBatchCommitsEverything pushes a mixed batch — conflicting
// writers plus disjoint singletons — through the synchronous batch
// path and checks every member commits exactly once, with mutual
// exclusion intact inside each partition.
func TestRunBatchCommitsEverything(t *testing.T) {
	ctl := epochCtl(WithEpochWorkers(4))
	defer ctl.Close()
	const n = 12
	ts := make([]*txn.T, n)
	for i := range ts {
		// Three writers per partition → 4 clusters of 3.
		ts[i] = txn.New(txn.ID(i+1), []txn.Step{w(txn.PartitionID(i%4), 1)})
	}
	var inside [4]int32
	errs := ctl.RunBatch(context.Background(), ts, func(tx *txn.T, step int, p Progress) error {
		part := tx.Steps[step].Part
		if atomic.AddInt32(&inside[part], 1) != 1 {
			return errors.New("two writers inside one partition")
		}
		time.Sleep(100 * time.Microsecond)
		atomic.AddInt32(&inside[part], -1)
		p(1)
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	st := ctl.Stats()
	if st.Committed != n || st.Active != 0 {
		t.Errorf("stats %+v, want %d committed", st, n)
	}
	if st.Epochs != 1 {
		t.Errorf("epochs %d, want 1", st.Epochs)
	}
	if st.BatchAdmitted == 0 {
		t.Error("no transactions admitted through the batch path")
	}
}

// TestSubmitWindowBatches drives the Submit/window pipeline: a burst of
// submissions inside one window must flush as one epoch (or very few),
// all commit, and the flush must reach the observer.
func TestSubmitWindowBatches(t *testing.T) {
	metrics := obs.NewMetrics()
	ctl := epochCtl(
		WithBatchWindow(50*time.Millisecond),
		WithEpochWorkers(2),
		WithObserver(metrics),
	)
	defer ctl.Close()
	const n = 10
	var chans []<-chan error
	for i := 0; i < n; i++ {
		tx := txn.New(txn.ID(i+1), []txn.Step{w(txn.PartitionID(i), 1)})
		chans = append(chans, ctl.Submit(context.Background(), tx, func(step int, p Progress) error {
			p(1)
			return nil
		}))
	}
	for i, ch := range chans {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("txn %d: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("txn %d: no result", i)
		}
	}
	st := ctl.Stats()
	if st.Committed != n {
		t.Errorf("committed %d of %d", st.Committed, n)
	}
	if st.Epochs == 0 || st.Epochs > 3 {
		t.Errorf("epochs %d, want the burst batched into a few windows", st.Epochs)
	}
	sm := metrics.Sched("EPOCH")
	if sm == nil {
		t.Fatal("no EPOCH metrics")
	}
	if sm.Epochs != st.Epochs {
		t.Errorf("observer saw %d epoch flushes, stats %d", sm.Epochs, st.Epochs)
	}
	if sm.BatchSize.Count() == 0 {
		t.Error("no batch sizes observed")
	}
}

// TestSubmitWithoutWindowDegeneratesToRun pins the no-window contract:
// Submit still executes and commits, with zero epochs flushed.
func TestSubmitWithoutWindowDegeneratesToRun(t *testing.T) {
	ctl := epochCtl()
	defer ctl.Close()
	tx := txn.New(1, []txn.Step{w(0, 1)})
	if err := <-ctl.Submit(context.Background(), tx, nil); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.Committed != 1 || st.Epochs != 0 {
		t.Errorf("stats %+v, want 1 committed and 0 epochs", st)
	}
}

// TestSubmitAfterCloseFails pins shutdown: pending and late submissions
// deliver ErrClosed instead of hanging.
func TestSubmitAfterCloseFails(t *testing.T) {
	ctl := epochCtl(WithBatchWindow(time.Hour)) // window never fires
	for i := 0; i < 3; i++ {
		tx := txn.New(txn.ID(i+1), []txn.Step{w(0, 1)})
		ch := ctl.Submit(context.Background(), tx, nil)
		defer func(i int, ch <-chan error) {
			if err := <-ch; !errors.Is(err, ErrClosed) {
				t.Errorf("pending submission %d: %v, want ErrClosed", i, err)
			}
		}(i, ch)
	}
	ctl.Close()
	late := txn.New(99, []txn.Step{w(0, 1)})
	if err := <-ctl.Submit(context.Background(), late, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("late submission: %v, want ErrClosed", err)
	}
}

// TestRunBatchFallsBackPerArrival runs RunBatch against a non-batch
// scheduler (CHAIN): no epoch admission happens, but every member still
// admits and commits through the per-arrival path.
func TestRunBatchFallsBackPerArrival(t *testing.T) {
	ctl := New(sched.ChainFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	ts := []*txn.T{
		txn.New(1, []txn.Step{w(0, 1)}),
		txn.New(2, []txn.Step{w(0, 1)}),
		txn.New(3, []txn.Step{w(1, 1)}),
	}
	for i, err := range ctl.RunBatch(context.Background(), ts, nil) {
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	st := ctl.Stats()
	if st.Committed != 3 || st.BatchAdmitted != 0 {
		t.Errorf("stats %+v, want 3 committed, none batch-admitted", st)
	}
}

// TestEpochChaosLive is the live chaos run for the epoch path: faulted
// submissions through the window pipeline, with injected aborts,
// refusals, slow I/O and a watchdog. Every submission must resolve —
// commit or a recognized fault error — and the controller must stay
// invariant-clean.
func TestEpochChaosLive(t *testing.T) {
	inj, err := fault.New(7, fault.Config{
		AbortRate:        0.2,
		CrashRate:        0.1,
		SlowIORate:       0.2,
		SlowIOFactor:     2,
		AdmitRefusalRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl := epochCtl(
		WithBatchWindow(20*time.Millisecond),
		WithEpochWorkers(4),
		WithFaults(inj),
		WithWatchdog(100*time.Millisecond),
	)
	defer ctl.Close()
	const n = 40
	chans := make([]<-chan error, n)
	for i := 0; i < n; i++ {
		tx := txn.New(txn.ID(i+1), []txn.Step{
			w(txn.PartitionID(i%8), 1), r(txn.PartitionID((i+3)%8), 1),
		})
		chans[i] = ctl.Submit(context.Background(), tx, func(step int, p Progress) error {
			p(1)
			return nil
		})
	}
	committed, faulted := 0, 0
	for i, ch := range chans {
		select {
		case err := <-ch:
			switch {
			case err == nil:
				committed++
			case errors.Is(err, fault.ErrInjectedAbort),
				errors.Is(err, fault.ErrInjectedCrash),
				errors.Is(err, ErrWatchdogAborted):
				faulted++
			default:
				t.Fatalf("txn %d: unexpected error %v", i, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("txn %d: no result", i)
		}
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if committed+faulted != n {
		t.Errorf("resolved %d+%d of %d", committed, faulted, n)
	}
	if int(st.Committed) != committed {
		t.Errorf("stats committed %d, observed %d", st.Committed, committed)
	}
	if st.Epochs == 0 {
		t.Error("no epochs flushed")
	}
	t.Logf("epoch live chaos: %d committed, %d faulted, %d epochs", committed, faulted, st.Epochs)
}

// TestClusterQueueStealing unit-tests the work-stealing queue: all
// clusters come out exactly once, and a worker with an empty queue
// steals rather than quitting while others hold work.
func TestClusterQueueStealing(t *testing.T) {
	q := newClusterQueue(3, 7)
	seen := make(map[int]bool)
	// Worker 2 drains everything: its own queue first, then steals.
	for {
		ci, ok := q.next(2)
		if !ok {
			break
		}
		if seen[ci] {
			t.Fatalf("cluster %d dispatched twice", ci)
		}
		seen[ci] = true
	}
	if len(seen) != 7 {
		t.Errorf("dispatched %d of 7 clusters", len(seen))
	}
	for w := 0; w < 3; w++ {
		if _, ok := q.next(w); ok {
			t.Errorf("worker %d found work in a drained queue", w)
		}
	}
}
