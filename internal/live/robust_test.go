package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// TestAbortReleasesLocksAndUnblocksWaiters admits a holder on every
// partition, parks one waiter per partition behind it, aborts the
// holder, and requires every waiter to proceed to commit. Run with
// -race; the waiters block and wake concurrently.
func TestAbortReleasesLocksAndUnblocksWaiters(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			ctl := New(f, liveCosts, WithRetryDelay(time.Millisecond))
			defer ctl.Close()
			const parts = 4
			steps := make([]txn.Step, parts)
			for i := range steps {
				steps[i] = w(txn.PartitionID(i), 1)
			}
			holder := txn.New(1, steps)
			ctx := context.Background()
			if err := ctl.Admit(ctx, holder); err != nil {
				t.Fatal(err)
			}
			for step := 0; step < parts; step++ {
				if err := ctl.Acquire(ctx, holder, step); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			errs := make(chan error, parts)
			for i := 0; i < parts; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					tx := txn.New(txn.ID(10+i), []txn.Step{w(txn.PartitionID(i), 1)})
					wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
					defer cancel()
					if err := ctl.Run(wctx, tx, nil); err != nil {
						errs <- fmt.Errorf("waiter %d: %w", i, err)
					}
				}()
			}
			// Let the waiters pile up behind the holder's exclusive locks,
			// then abort it.
			time.Sleep(20 * time.Millisecond)
			if err := ctl.Abort(holder); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := ctl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := ctl.Stats()
			if st.Aborted != 1 || st.Committed != uint64(parts) || st.Active != 0 {
				t.Fatalf("stats after abort: %+v", st)
			}
		})
	}
}

// TestFinishErrors locks in the error contract of Commit/Abort: a
// transaction the controller never admitted (or already finished)
// cannot be finished.
func TestFinishErrors(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts)
	defer ctl.Close()
	tx := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Commit(tx); err == nil {
		t.Error("commit of a never-admitted transaction succeeded")
	}
	if err := ctl.Admit(context.Background(), tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Abort(tx); err == nil {
		t.Error("double finish succeeded")
	}
}

// TestRunReturnsCtxErrPromptly parks a transaction behind a huge retry
// delay (so only the broadcast or ctx can wake it), cancels the
// context, and requires Run to return ctx.Err() well before the delay.
func TestRunReturnsCtxErrPromptly(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Hour))
	defer ctl.Close()
	ctx := context.Background()
	holder := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Admit(ctx, holder); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, holder, 0); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		done <- ctl.Run(cctx, txn.New(2, []txn.Step{w(0, 1)}), nil)
	}()
	time.Sleep(10 * time.Millisecond) // let it block on the held lock
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("Run took %v to notice cancellation", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned after cancellation")
	}
	if err := ctl.Commit(holder); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffStillCompletes exercises the jittered-exponential retry
// path under contention: correctness must not depend on the delay
// schedule.
func TestBackoffStillCompletes(t *testing.T) {
	ctl := New(sched.KWTPGFactory(2), liveCosts,
		WithBackoff(200*time.Microsecond, 5*time.Millisecond))
	defer ctl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := txn.New(txn.ID(i+1), []txn.Step{w(0, 1), w(1, 1)})
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := ctl.Run(ctx, tx, func(step int, p Progress) error {
				p(1)
				return nil
			}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := ctl.Stats(); st.Committed != 12 {
		t.Fatalf("committed %d, want 12", st.Committed)
	}
}

// TestWatchdogBreaksStall wedges T2 behind a lock whose holder never
// commits (a stuck caller) and verifies the watchdog escalates: a
// Stall "kick" event, then a forced abort of the blocked T2 with
// ErrWatchdogAborted. The holder itself — mid-"work" — is never
// touched.
func TestWatchdogBreaksStall(t *testing.T) {
	ring := obs.NewRing(256)
	ctl := New(sched.C2PLFactory(), liveCosts,
		WithRetryDelay(5*time.Millisecond),
		WithWatchdog(15*time.Millisecond),
		WithObserver(ring))
	defer ctl.Close()
	ctx := context.Background()
	holder := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Admit(ctx, holder); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Acquire(ctx, holder, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- ctl.Run(ctx, txn.New(2, []txn.Step{w(0, 1)}), nil)
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWatchdogAborted) {
			t.Fatalf("blocked transaction returned %v, want ErrWatchdogAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never aborted the blocked transaction")
	}
	st := ctl.Stats()
	if st.Stalled == 0 {
		t.Error("Stalled counter did not advance")
	}
	if st.Aborted != 1 {
		t.Errorf("Aborted = %d, want 1 (the watchdog victim)", st.Aborted)
	}
	var kicks, aborts int
	for _, e := range ring.Events() {
		if e.Kind == obs.KindStall {
			switch e.Op {
			case "kick":
				kicks++
			case "abort":
				aborts++
			}
		}
	}
	if kicks == 0 || aborts == 0 {
		t.Errorf("stall events: %d kicks, %d aborts, want ≥1 of each", kicks, aborts)
	}
	// The holder is unaffected and can still finish.
	if err := ctl.Commit(holder); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With the stall cleared and progress resumed, the watchdog records
	// a recovery.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if ctl.Stats().Recovered > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("Recovered counter never advanced after the stall cleared")
}

// TestWatchdogIdleIsQuiet runs an idle controller under a fast
// watchdog: no transactions, no waiters — no stalls.
func TestWatchdogIdleIsQuiet(t *testing.T) {
	ctl := New(sched.ChainFactory(), liveCosts, WithWatchdog(5*time.Millisecond))
	time.Sleep(40 * time.Millisecond)
	st := ctl.Stats()
	ctl.Close()
	if st.Stalled != 0 {
		t.Errorf("idle controller recorded %d stalls", st.Stalled)
	}
}

// TestLiveChaos is the live half of the chaos suite: goroutine swarms
// under every fault kind at once — injected aborts, crashes
// (recovered panics), slow partitions, admission refusals — on each
// scheduler, with the watchdog armed. Every transaction must finish
// (commit or injected fault), the lock table must end clean, and the
// stats must balance. Run with -race via `make chaos`.
func TestLiveChaos(t *testing.T) {
	schedulers := []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, f := range schedulers {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				inj, err := fault.New(seed, fault.Config{
					AbortRate:        0.25,
					SlowIORate:       0.25,
					SlowIOFactor:     2,
					AdmitRefusalRate: 0.25,
					CrashRate:        0.15,
				})
				if err != nil {
					t.Fatal(err)
				}
				ctl := New(f, liveCosts,
					WithRetryDelay(time.Millisecond),
					WithBackoff(500*time.Microsecond, 8*time.Millisecond),
					WithWatchdog(50*time.Millisecond),
					WithFaults(inj))
				const workers = 24
				var wg sync.WaitGroup
				errs := make(chan error, workers)
				for i := 0; i < workers; i++ {
					i := i
					wg.Add(1)
					go func() {
						defer wg.Done()
						tx := txn.New(txn.ID(seed*1000)+txn.ID(i+1), []txn.Step{
							w(txn.PartitionID(i%4), 2),
							w(txn.PartitionID((i+1)%4), 2),
						})
						ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
						defer cancel()
						err := ctl.Run(ctx, tx, func(step int, p Progress) error {
							p(1)
							p(1)
							return nil
						})
						switch {
						case err == nil:
						case errors.Is(err, fault.ErrInjectedAbort),
							errors.Is(err, fault.ErrInjectedCrash),
							errors.Is(err, ErrWatchdogAborted):
							// expected fault outcomes
						default:
							errs <- fmt.Errorf("worker %d: %w", i, err)
						}
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				if err := ctl.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				st := ctl.Stats()
				if st.Active != 0 {
					t.Fatalf("seed %d: %d transactions leaked", seed, st.Active)
				}
				if st.Committed+st.Aborted != st.Admitted {
					t.Fatalf("seed %d: admitted %d != committed %d + aborted %d",
						seed, st.Admitted, st.Committed, st.Aborted)
				}
				if st.Aborted == 0 {
					t.Errorf("seed %d: chaos run injected no aborts", seed)
				}
				ctl.Close()
			}
		})
	}
}

// TestPanicInWorkIsRecovered locks in the panic-recovery contract: a
// panicking step aborts its transaction, returns the panic as an
// error, and leaves the controller fully usable.
func TestPanicInWorkIsRecovered(t *testing.T) {
	ctl := New(sched.ChainFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	ctx := context.Background()
	err := ctl.Run(ctx, txn.New(1, []txn.Step{w(0, 1)}), func(step int, p Progress) error {
		panic("boom")
	})
	if err == nil {
		t.Fatal("panicking work returned nil")
	}
	st := ctl.Stats()
	if st.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", st.Aborted)
	}
	// The partition is free again.
	if err := ctl.Run(ctx, txn.New(2, []txn.Step{w(0, 1)}), nil); err != nil {
		t.Fatal(err)
	}
	if err := ctl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
