package live

// This file wires the per-node dependency log (internal/wal) through
// the live controller. The write-ahead contract:
//
//   - admission: the Begin record — footprint plus the WTPG predecessor
//     set resolved at admission — is forced durable BEFORE Admit
//     returns, i.e. before the first grant takes effect;
//   - commit: the Commit record, carrying the final resolved
//     predecessor set (read before the scheduler drops the transaction
//     from the graph), is forced durable BEFORE the scheduler applies
//     the commit and before Commit reports success;
//   - abort: the Abort record is appended but not forced — a lost abort
//     record re-aborts at recovery anyway (no completion ⇒ re-abort),
//     so aborts never pay an fsync.
//
// Sync points group-commit: concurrent committers piggyback on one
// fsync pass (wal.Log.Sync), and the controller emits KindWALAppend /
// KindWALSync / KindRecover events so the obs pipeline sees appends,
// fsync batching, and recovery behavior.

import (
	"fmt"
	"runtime"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// WithWAL enables durable dependency logging under dir: one append-only
// log per data node (one log total without WithTopology). The logs are
// opened by New — an open failure is sticky and surfaces as an error
// from the first Admit, never as silently-dropped durability — and
// closed (flushed + fsynced) by Close.
func WithWAL(dir string) Option {
	return func(c *Controller) { c.walDir = dir }
}

// WithWALLog attaches an already-open, caller-owned log instead of
// having the controller open one: the caller keeps Close/Crash
// authority, which is what the kill-and-restart chaos battery needs to
// simulate SIGKILL (wal.Log.Crash) underneath the controller.
func WithWALLog(l *wal.Log) Option {
	return func(c *Controller) { c.wal = l }
}

// WALStats returns a snapshot of the attached log's counters; ok is
// false when the controller has no WAL.
func (c *Controller) WALStats() (wal.Stats, bool) {
	if c.wal == nil {
		return wal.Stats{}, false
	}
	return c.wal.Stats(), true
}

// walFail records the first WAL error; once set, durability is broken
// and every subsequent admission fails rather than running unlogged.
func (c *Controller) walFail(err error) {
	c.mu.Lock()
	if c.walErr == nil {
		c.walErr = err
	}
	c.mu.Unlock()
}

// walBeginLocked builds the Begin record for a just-admitted t: its
// declared footprint and the predecessor set the scheduler resolved at
// admission, routed to the node of its first partition. Callers must
// hold mu (the predecessor read must be atomic with the admission).
func (c *Controller) walBeginLocked(t *txn.T, now event.Time) (wal.Record, bool) {
	if c.wal == nil || c.walErr != nil {
		return wal.Record{}, false
	}
	node := 0
	if c.place != nil && len(t.Steps) > 0 {
		node = c.place.NodeOf(t.Steps[0].Part)
	}
	c.walNode[t.ID] = node
	return wal.Record{
		Kind:  wal.Begin,
		Txn:   t.ID,
		Node:  node,
		At:    now,
		Steps: wal.Footprint(t),
		Preds: sched.Predecessors(c.sch, t.ID),
	}, true
}

// walCompletionLocked builds the completion record for a finishing t,
// reading the final predecessor set while the transaction is still in
// the graph. It consumes the walNode entry, so a transaction whose
// Begin was never logged (WAL failed mid-run) gets no completion
// record either — replay would reject a completion without a begin.
// Callers must hold mu.
func (c *Controller) walCompletionLocked(t *txn.T, committed bool, now event.Time) (wal.Record, bool) {
	if c.wal == nil {
		return wal.Record{}, false
	}
	node, ok := c.walNode[t.ID]
	delete(c.walNode, t.ID)
	if !ok || c.walErr != nil {
		return wal.Record{}, false
	}
	rec := wal.Record{Kind: wal.Abort, Txn: t.ID, Node: node, At: now}
	if committed {
		rec.Kind = wal.Commit
		rec.Preds = sched.Predecessors(c.sch, t.ID)
	}
	return rec, true
}

// walForce appends recs and forces them durable in one group-commit
// Sync. Called WITHOUT mu held — the fsync must not stall the
// controller's critical sections.
func (c *Controller) walForce(recs ...wal.Record) error {
	for _, rec := range recs {
		if err := c.wal.Append(rec); err != nil {
			c.walFail(err)
			return err
		}
		c.emit(obs.Event{Kind: obs.KindWALAppend, At: rec.At, Txn: rec.Txn, Op: rec.Kind.String(), Node: rec.Node})
	}
	start := time.Now()
	n, err := c.wal.Sync()
	if err != nil {
		c.walFail(err)
		return err
	}
	if n > 0 {
		c.emit(obs.Event{Kind: obs.KindWALSync, At: c.now(), Batch: n, DurNS: time.Since(start).Nanoseconds()})
	}
	return nil
}

// walAppend appends rec without forcing it (abort records).
func (c *Controller) walAppend(rec wal.Record) {
	if err := c.wal.Append(rec); err != nil {
		c.walFail(err)
		return
	}
	c.emit(obs.Event{Kind: obs.KindWALAppend, At: rec.At, Txn: rec.Txn, Op: rec.Kind.String(), Node: rec.Node})
}

// Recover rebuilds a controller from the per-node logs under dir: the
// logs are scanned in parallel (torn tails truncated to the longest
// valid prefix), the committed history is replayed topologically
// ordered only by the logged predecessor edges (wave-parallel — see
// wal.Replay), transactions with a Begin but no completion record are
// re-aborted (their locks died with the process; the abort records are
// appended and forced so a second recovery agrees with this one), and
// the returned controller — fresh scheduler state, WAL reattached —
// passes its scheduler invariant checks before serving new traffic.
//
// The Recovery report carries what was reconstructed: the committed
// set in replay order, the re-aborted in-flight transactions, and the
// replay schedule's width (MaxParallel). opts are applied as in New;
// do not pass WithWAL/WithWALLog (Recover manages the log itself).
func Recover(dir string, factory sched.Factory, costs sched.Costs, opts ...Option) (*Controller, *wal.Recovery, error) {
	scans, err := wal.Scan(dir)
	if err != nil {
		return nil, nil, err
	}
	rec, err := wal.Replay(scans, runtime.GOMAXPROCS(0), nil)
	if err != nil {
		return nil, nil, err
	}
	c := New(factory, costs, append(append([]Option(nil), opts...), WithWAL(dir))...)
	if c.walErr != nil {
		err := c.walErr
		c.Close()
		return nil, nil, err
	}
	now := c.now()
	if len(rec.Incomplete) > 0 {
		reaborts := make([]wal.Record, len(rec.Incomplete))
		for i, b := range rec.Incomplete {
			reaborts[i] = wal.Record{Kind: wal.Abort, Txn: b.Txn, Node: b.Node, At: now}
		}
		if err := c.walForce(reaborts...); err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("live: recover: %w", err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("live: recover: %w", err)
	}
	c.emit(obs.Event{
		Kind:     obs.KindRecover,
		At:       now,
		Batch:    len(rec.Committed),
		Clusters: rec.MaxParallel,
		Objects:  float64(len(rec.Incomplete)),
		DurNS:    rec.Elapsed.Nanoseconds(),
	})
	return c, rec, nil
}
