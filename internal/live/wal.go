package live

// This file wires the per-node dependency log (internal/wal) through
// the live controller. The write-ahead contract:
//
//   - admission: the Begin record — footprint plus the WTPG predecessor
//     set resolved at admission — is forced durable BEFORE Admit
//     returns, i.e. before the first grant takes effect;
//   - commit: the Commit record, carrying the final resolved
//     predecessor set (read before the scheduler drops the transaction
//     from the graph), is forced durable BEFORE the scheduler applies
//     the commit and before Commit reports success;
//   - abort: the Abort record is appended but not forced — a lost abort
//     record re-aborts at recovery anyway (no completion ⇒ re-abort),
//     so aborts never pay an fsync.
//
// Sync points group-commit: concurrent committers piggyback on one
// fsync pass (wal.Log.Sync), and the controller emits KindWALAppend /
// KindWALSync / KindRecover events so the obs pipeline sees appends,
// fsync batching, and recovery behavior.

import (
	"fmt"
	"runtime"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// WithWAL enables durable dependency logging under dir: one append-only
// log per data node (one log total without WithTopology). The logs are
// opened by New — an open failure is sticky and surfaces as an error
// from the first Admit, never as silently-dropped durability — and
// closed (flushed + fsynced) by Close.
func WithWAL(dir string) Option {
	return func(c *Controller) { c.walDir = dir }
}

// WithWALLog attaches an already-open, caller-owned log instead of
// having the controller open one: the caller keeps Close/Crash
// authority, which is what the kill-and-restart chaos battery needs to
// simulate SIGKILL (wal.Log.Crash) underneath the controller.
func WithWALLog(l *wal.Log) Option {
	return func(c *Controller) { c.wal = l }
}

// WALStats returns a snapshot of the attached log's counters; ok is
// false when the controller has no WAL.
func (c *Controller) WALStats() (wal.Stats, bool) {
	if c.wal == nil {
		return wal.Stats{}, false
	}
	return c.wal.Stats(), true
}

// walFail records the first WAL error; once set, durability is broken
// and every subsequent admission fails rather than running unlogged.
// walErr has its own mutex (walMu) because failures surface from fsync
// paths running outside any shard lock; walBroken reads it from inside
// shard critical sections (lock order: shard locks before walMu).
func (c *Controller) walFail(err error) {
	c.walMu.Lock()
	if c.walErr == nil {
		c.walErr = err
	}
	c.walMu.Unlock()
}

// walBroken returns the sticky WAL error, if any.
func (c *Controller) walBroken() error {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	return c.walErr
}

// walBeginLocked builds the Begin record for a just-admitted t: its
// declared footprint and the predecessor set resolved at admission
// (preds — for a spanning transaction, the union across its shards),
// routed to the node of its first partition. Callers must hold the
// home shard's lock — and, for a spanning transaction, every footprint
// shard's lock, so the predecessor read is atomic with the admission;
// preds is only invoked once the record is known to be wanted.
func (c *Controller) walBeginLocked(home *lshard, t *txn.T, now event.Time, preds func() []txn.ID) (wal.Record, bool) {
	if c.wal == nil || c.walBroken() != nil {
		return wal.Record{}, false
	}
	node := 0
	if c.place != nil && len(t.Steps) > 0 {
		node = c.place.NodeOf(t.Steps[0].Part)
	}
	home.walNode[t.ID] = node
	return wal.Record{
		Kind:  wal.Begin,
		Txn:   t.ID,
		Node:  node,
		At:    now,
		Steps: wal.Footprint(t),
		Preds: preds(),
	}, true
}

// walCompletionLocked builds the completion record for a finishing t,
// reading the final predecessor set (preds) while the transaction is
// still in the graph(s). It consumes the home shard's walNode entry, so
// a transaction whose Begin was never logged (WAL failed mid-run) gets
// no completion record either — replay would reject a completion
// without a begin. Callers must hold the footprint's shard locks.
func (c *Controller) walCompletionLocked(home *lshard, t *txn.T, committed bool, now event.Time, preds func() []txn.ID) (wal.Record, bool) {
	if c.wal == nil {
		return wal.Record{}, false
	}
	node, ok := home.walNode[t.ID]
	delete(home.walNode, t.ID)
	if !ok || c.walBroken() != nil {
		return wal.Record{}, false
	}
	rec := wal.Record{Kind: wal.Abort, Txn: t.ID, Node: node, At: now}
	if committed {
		rec.Kind = wal.Commit
		rec.Preds = preds()
	}
	return rec, true
}

// walForce appends recs and forces them durable in one group-commit
// Sync. Called WITHOUT mu held — the fsync must not stall the
// controller's critical sections.
func (c *Controller) walForce(recs ...wal.Record) error {
	for _, rec := range recs {
		if err := c.wal.Append(rec); err != nil {
			c.walFail(err)
			return err
		}
		c.emit(obs.Event{Kind: obs.KindWALAppend, At: rec.At, Txn: rec.Txn, Op: rec.Kind.String(), Node: rec.Node})
	}
	start := time.Now()
	n, err := c.wal.Sync()
	if err != nil {
		c.walFail(err)
		return err
	}
	if n > 0 {
		c.emit(obs.Event{Kind: obs.KindWALSync, At: c.now(), Batch: n, DurNS: time.Since(start).Nanoseconds()})
	}
	return nil
}

// walAppend appends rec without forcing it (abort records).
func (c *Controller) walAppend(rec wal.Record) {
	if err := c.wal.Append(rec); err != nil {
		c.walFail(err)
		return
	}
	c.emit(obs.Event{Kind: obs.KindWALAppend, At: rec.At, Txn: rec.Txn, Op: rec.Kind.String(), Node: rec.Node})
}

// Recover rebuilds a controller from the per-node logs under dir: the
// logs are scanned in parallel (torn tails truncated to the longest
// valid prefix), the committed history is replayed topologically
// ordered only by the logged predecessor edges (wave-parallel — see
// wal.Replay), transactions with a Begin but no completion record are
// re-aborted (their locks died with the process; the abort records are
// appended and forced so a second recovery agrees with this one), and
// the returned controller — fresh scheduler state, WAL reattached —
// passes its scheduler invariant checks before serving new traffic.
//
// The Recovery report carries what was reconstructed: the committed
// set in replay order, the re-aborted in-flight transactions, and the
// replay schedule's width (MaxParallel). opts are applied as in New;
// do not pass WithWAL/WithWALLog (Recover manages the log itself).
func Recover(dir string, factory sched.Factory, costs sched.Costs, opts ...Option) (*Controller, *wal.Recovery, error) {
	scans, err := wal.Scan(dir)
	if err != nil {
		return nil, nil, err
	}
	rec, err := wal.Replay(scans, runtime.GOMAXPROCS(0), nil)
	if err != nil {
		return nil, nil, err
	}
	c := New(factory, costs, append(append([]Option(nil), opts...), WithWAL(dir))...)
	if c.walErr != nil {
		err := c.walErr
		c.Close()
		return nil, nil, err
	}
	now := c.now()
	if len(rec.Incomplete) > 0 {
		reaborts := make([]wal.Record, len(rec.Incomplete))
		for i, b := range rec.Incomplete {
			reaborts[i] = wal.Record{Kind: wal.Abort, Txn: b.Txn, Node: b.Node, At: now}
		}
		if err := c.walForce(reaborts...); err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("live: recover: %w", err)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		c.Close()
		return nil, nil, fmt.Errorf("live: recover: %w", err)
	}
	c.emit(obs.Event{
		Kind:     obs.KindRecover,
		At:       now,
		Batch:    len(rec.Committed),
		Clusters: rec.MaxParallel,
		Objects:  float64(len(rec.Incomplete)),
		DurNS:    rec.Elapsed.Nanoseconds(),
	})
	return c, rec, nil
}
