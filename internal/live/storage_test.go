package live

// Live storage battery (ISSUE PR 9): the heap-file engine under the
// sharded controller swarm — real goroutines, real page I/O, -race.
// Asserted invariants: pins drain to zero, the buffer-pool hit/miss
// counters agree between the store's own stats and the obs metrics,
// partition contents equal the pure function of the committed set, and
// a SIGKILL mid-flush (WAL + heap torn together) recovers to contents
// ≡ the durable committed set.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/fault"
	"batsched/internal/modelcheck"
	"batsched/internal/obs"
	"batsched/internal/storage"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// liveExpected derives per-partition effect keys from a committed set
// and the transactions' own footprints.
func liveExpected(ts []*txn.T, committed map[txn.ID]bool, parts int) []map[storage.EffectKey]bool {
	want := make([]map[storage.EffectKey]bool, parts)
	for p := range want {
		want[p] = map[storage.EffectKey]bool{}
	}
	for _, tx := range ts {
		if !committed[tx.ID] {
			continue
		}
		for i, s := range tx.Steps {
			if s.Mode == txn.Write && int(s.Part) < parts {
				want[s.Part][storage.EffectKey{Txn: tx.ID, Step: i}] = true
			}
		}
	}
	return want
}

func liveCheckContents(t *testing.T, st *storage.Store, want []map[storage.EffectKey]bool) {
	t.Helper()
	for p := range want {
		got, err := st.Keys(txn.PartitionID(p))
		if err != nil {
			t.Fatalf("P%d: %v", p, err)
		}
		if len(got) != len(want[p]) {
			t.Fatalf("P%d holds %d effects, committed set implies %d", p, len(got), len(want[p]))
		}
		for k := range want[p] {
			if !got[k] {
				t.Fatalf("P%d missing effect txn=%d step=%d", p, k.Txn, k.Step)
			}
		}
	}
}

// TestChaosStorageLiveSwarm is the storage half of the live chaos
// battery: a sharded controller (PR 8's swarm shape) with storage, WAL,
// fault injection and an obs metrics sink, hammered by concurrent
// workers. Run under -race by `make chaos` / the verify race line.
func TestChaosStorageLiveSwarm(t *testing.T) {
	const parts = 16
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			inj, err := fault.New(seed, fault.Config{
				AbortRate:    0.2,
				SlowIORate:   0.1,
				SlowIOFactor: 2,
				CrashRate:    0.1,
			})
			if err != nil {
				t.Fatal(err)
			}
			hdir := t.TempDir()
			st, err := storage.Open(hdir, parts,
				storage.WithPageSize(1024), storage.WithPoolFrames(8), storage.WithNodes(4),
				storage.WithBackgroundFlush(500*time.Microsecond))
			if err != nil {
				t.Fatal(err)
			}
			l, err := wal.Open(t.TempDir(), 1)
			if err != nil {
				t.Fatal(err)
			}
			metrics := obs.NewMetrics()
			ctl := New(sched.C2PLFactory(), liveCosts,
				WithShards(4),
				WithRetryDelay(time.Millisecond),
				WithBackoff(500*time.Microsecond, 8*time.Millisecond),
				WithFaults(inj),
				WithWALLog(l),
				WithStorage(st),
				WithObserver(metrics))

			ts := shardedWorkload(int64(seed), 48, parts)
			var mu sync.Mutex
			committed := map[txn.ID]bool{}
			var wg sync.WaitGroup
			for _, tx := range ts {
				tx := tx
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					err := ctl.Run(ctx, tx, func(step int, p Progress) error {
						p(1)
						return nil
					})
					switch {
					case err == nil:
						mu.Lock()
						committed[tx.ID] = true
						mu.Unlock()
					case errors.Is(err, fault.ErrInjectedAbort), errors.Is(err, fault.ErrInjectedCrash):
						// expected fault outcomes: effects must be dropped
					default:
						t.Errorf("txn %v: %v", tx.ID, err)
					}
				}()
			}
			wg.Wait()
			if err := ctl.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := ctl.StorageErr(); err != nil {
				t.Fatalf("sticky storage error: %v", err)
			}
			ctl.Close()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Pool invariants after the storm: quiesce the background
			// flusher/prefetcher first so neither counter side moves
			// mid-comparison, then: no pin leaked, and the store's
			// counters agree with what the obs pipeline recorded.
			st.Quiesce()
			if n := st.PinnedFrames(); n != 0 {
				t.Fatalf("%d frames still pinned after the swarm drained", n)
			}
			ps := st.Stats()
			sm := metrics.Sched(ctl.Label())
			if sm == nil {
				t.Fatal("no metrics recorded for the controller's label")
			}
			if ps.Hits != sm.PoolHits || ps.Misses != sm.PoolMisses {
				t.Fatalf("pool counters diverge: store %d/%d hits/misses, metrics %d/%d",
					ps.Hits, ps.Misses, sm.PoolHits, sm.PoolMisses)
			}
			if ps.BytesRead != sm.BytesRead || ps.BytesWritten != sm.BytesWritten {
				t.Fatalf("byte counters diverge: store %d/%d read/written, metrics %d/%d",
					ps.BytesRead, ps.BytesWritten, sm.BytesRead, sm.BytesWritten)
			}
			if ps.Hits+ps.Misses == 0 && len(committed) > 0 {
				t.Fatal("swarm committed transactions without touching a page")
			}
			if got, want := sm.PoolHitRate(), ps.HitRate(); got != want {
				t.Fatalf("hit rate diverges: metrics %v, store %v", got, want)
			}

			// Contents ≡ pure function of the committed set — aborted and
			// crashed transactions left no trace (no-steal).
			liveCheckContents(t, st, liveExpected(ts, committed, parts))
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStorageLiveKillRestartRecover is the live half of the torn-page
// battery: SIGKILL both durability streams mid-flush — the WAL loses
// its unsynced tail, the never-fsynced heap pages tear — then reopen,
// replay the WAL with Store.Redo, audit with modelcheck.VerifyRecovery,
// and require contents ≡ the durable committed set.
func TestStorageLiveKillRestartRecover(t *testing.T) {
	const parts = 8
	wdir, hdir := t.TempDir(), t.TempDir()
	l, err := wal.Open(wdir, 1)
	if err != nil {
		t.Fatal(err)
	}
	sopts := []storage.Option{storage.WithPageSize(1024), storage.WithPoolFrames(8),
		storage.WithBackgroundFlush(500 * time.Microsecond)}
	st, err := storage.Open(hdir, parts, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	ctl := New(sched.KWTPGFactory(2), liveCosts,
		WithShards(2), WithRetryDelay(time.Millisecond), WithWALLog(l), WithStorage(st))

	ts := shardedWorkload(7, 32, parts)
	var mu sync.Mutex
	committed := map[txn.ID]bool{}
	var wg sync.WaitGroup
	for _, tx := range ts {
		tx := tx
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := ctl.Run(ctx, tx, func(step int, p Progress) error {
				p(1)
				return nil
			}); err == nil {
				mu.Lock()
				committed[tx.ID] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// SIGKILL mid-flush: both halves die with the same flush fraction.
	l.Crash(0.5)
	if err := st.Crash(0.5); err != nil {
		t.Fatal(err)
	}
	ctl.Close()

	st2, err := storage.Open(hdir, parts, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	scans, err := wal.Scan(wdir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Replay(scans, 2, func(b wal.Record, wave int) {
		if err := st2.Redo(b); err != nil {
			t.Errorf("redo %v: %v", b.Txn, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
		t.Fatal(err)
	}
	durable := map[txn.ID]bool{}
	for _, id := range rec.Committed {
		if !committed[id] {
			t.Fatalf("%v resurrected: recovered as committed but never committed pre-crash", id)
		}
		durable[id] = true
	}
	if len(durable) != len(committed) {
		t.Fatalf("committed transaction lost: %d durable of %d committed", len(durable), len(committed))
	}
	liveCheckContents(t, st2, liveExpected(ts, durable, parts))
}
