package live

// Real page I/O under the live controller: with WithStorage attached,
// every granted step drives a real partition iterator through the
// buffer pool (a full scan of the step's partition — the bulk access
// the paper's transactions model), write steps stage their
// deterministic effect tuple, and commit applies the staged effects and
// flushes the touched partitions' dirty pages strictly AFTER the WAL
// commit force in finish — the write-ahead contract extended to pages.
//
// Failure discipline: once finish has made the commit record durable,
// the commit stands. A storage failure after that point cannot flip the
// outcome (recovery would redo the effects from the WAL anyway), so it
// latches a sticky error instead — later Runs fail fast and a restart's
// WAL replay repairs the heap. Abort drops the staged effects; nothing
// was written, so there is nothing to undo (no-steal at transaction
// granularity).

import (
	"fmt"

	"batsched/internal/event"
	"batsched/internal/storage"
	"batsched/internal/txn"
)

// WithStorage attaches a caller-owned heap-file store to the
// controller: granted steps do real page reads, commits apply real
// effect tuples. The caller keeps the store's lifecycle (Close/Crash);
// it must have been opened with at least as many partitions as the
// transactions touch. A nil store is ignored.
func WithStorage(st *storage.Store) Option {
	return func(c *Controller) { c.store = st }
}

// storeBind points the store's page-traffic events at the controller's
// observer and wall clock. Called from New after the label is known.
func (c *Controller) storeBind() {
	if c.store == nil {
		return
	}
	c.store.Bind(c.observer, c.label, func() event.Time { return c.now() })
}

// StorageErr returns the sticky storage error, if any: a failure to
// apply or flush a durably committed transaction's effects. The commit
// itself stands (the WAL record is durable; restart replay repairs the
// heap), but the controller refuses further storage-backed work.
func (c *Controller) StorageErr() error {
	if c.store == nil {
		return nil
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return c.storeErr
}

func (c *Controller) storeFail(err error) {
	if err == nil {
		return
	}
	c.storeMu.Lock()
	if c.storeErr == nil {
		c.storeErr = err
	}
	c.storeMu.Unlock()
}

// storeStep is the granted step's real work: scan the step's partition
// through the buffer pool (every page of it — a bulk access), and for a
// write step stage the effect tuple that commit will apply. Runs inside
// runAdmitted while the step's lock is held, so the scan is isolated by
// the scheduler's strict 2PL exactly like the modelled I/O.
func (c *Controller) storeStep(t *txn.T, step int) error {
	if c.store == nil {
		return nil
	}
	if err := c.StorageErr(); err != nil {
		return fmt.Errorf("live: %v step %d: storage unavailable: %w", t.ID, step, err)
	}
	s := t.Steps[step]
	if int(s.Part) >= c.store.NumPartitions() {
		return nil
	}
	if _, err := c.store.ScanCount(s.Part); err != nil {
		return fmt.Errorf("live: %v step %d: %w", t.ID, step, err)
	}
	if s.Mode == txn.Write {
		c.store.Stage(t.ID, step, s.Part)
	}
	return nil
}

// storeApplyCommit applies t's staged effects. Called from finish after
// the WAL force succeeded and BEFORE phase 3 releases the scheduler
// locks — the transaction still excludes every reader and writer of its
// partitions while its pages mutate. A failure here latches the sticky
// error but does not flip the committed outcome (see the package
// comment).
func (c *Controller) storeApplyCommit(t *txn.T) {
	if c.store == nil {
		return
	}
	if err := c.store.ApplyCommit(t.ID); err != nil {
		c.storeFail(fmt.Errorf("live: %v: applying committed effects: %w", t.ID, err))
	}
}

// storeDrop discards t's staged effects on any non-commit outcome.
func (c *Controller) storeDrop(t *txn.T) {
	if c.store == nil {
		return
	}
	c.store.Drop(t.ID)
}
