package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/txn"
)

var liveCosts = sched.Costs{KeepTime: 50}

func r(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Read, Part: p, Cost: c} }
func w(p txn.PartitionID, c float64) txn.Step { return txn.Step{Mode: txn.Write, Part: p, Cost: c} }

// TestMutualExclusion runs many goroutines writing the same partition;
// the step work asserts it is never concurrent with another writer.
func TestMutualExclusion(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			ctl := New(f, liveCosts, WithRetryDelay(time.Millisecond))
			defer ctl.Close()
			var inside int32
			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for i := 0; i < 16; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					tx := txn.New(txn.ID(i+1), []txn.Step{w(0, 1)})
					err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
						if atomic.AddInt32(&inside, 1) != 1 {
							return errors.New("two writers inside the critical section")
						}
						time.Sleep(200 * time.Microsecond)
						atomic.AddInt32(&inside, -1)
						p(1)
						return nil
					})
					if err != nil {
						errs <- err
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := ctl.Stats()
			if st.Admitted != 16 || st.Committed != 16 || st.Aborted != 0 || st.Active != 0 {
				t.Errorf("stats %+v, want 16 admitted/committed, none aborted or active", st)
			}
		})
	}
}

// TestReadersShare: concurrent readers of one partition overlap (at
// least sometimes), proving S locks are shared in the live path.
func TestReadersShare(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	var inside, maxInside int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := txn.New(txn.ID(i+1), []txn.Step{r(0, 1)})
			_ = ctl.Run(context.Background(), tx, func(int, Progress) error {
				n := atomic.AddInt32(&inside, 1)
				mu.Lock()
				if n > maxInside {
					maxInside = n
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				atomic.AddInt32(&inside, -1)
				return nil
			})
		}()
	}
	wg.Wait()
	if maxInside < 2 {
		t.Errorf("readers never overlapped (max concurrency %d)", maxInside)
	}
}

// TestConflictSerializability records the grant order of conflicting
// steps under a random mixed workload and verifies acyclicity, for every
// scheduler.
func TestConflictSerializability(t *testing.T) {
	for _, f := range []sched.Factory{
		sched.ASLFactory(), sched.C2PLFactory(), sched.ChainFactory(), sched.KWTPGFactory(2),
	} {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			type grant struct {
				id   txn.ID
				part txn.PartitionID
				mode txn.Mode
			}
			var mu sync.Mutex
			var grants []grant
			var txns sync.Map
			ctl := New(f, liveCosts,
				WithRetryDelay(time.Millisecond),
				WithGrantHook(func(tx *txn.T, step int) {
					mu.Lock()
					grants = append(grants, grant{tx.ID, tx.Steps[step].Part, tx.Steps[step].Mode})
					mu.Unlock()
				}))
			defer ctl.Close()
			var wg sync.WaitGroup
			for i := 0; i < 24; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(i)))
					var steps []txn.Step
					for s := 0; s < 1+rng.Intn(3); s++ {
						steps = append(steps, txn.Step{
							Mode: txn.Mode(rng.Intn(2)),
							Part: txn.PartitionID(rng.Intn(4)),
							Cost: 1,
						})
					}
					tx := txn.New(txn.ID(i+1), steps)
					txns.Store(tx.ID, true)
					if err := ctl.Run(context.Background(), tx, func(int, Progress) error {
						time.Sleep(100 * time.Microsecond)
						return nil
					}); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
			// Conflict graph from grant order must be acyclic.
			succ := map[txn.ID]map[txn.ID]bool{}
			for i := 0; i < len(grants); i++ {
				for j := i + 1; j < len(grants); j++ {
					a, b := grants[i], grants[j]
					if a.id != b.id && a.part == b.part && a.mode.Conflicts(b.mode) {
						if succ[a.id] == nil {
							succ[a.id] = map[txn.ID]bool{}
						}
						succ[a.id][b.id] = true
					}
				}
			}
			color := map[txn.ID]int{}
			var dfs func(u txn.ID) bool
			dfs = func(u txn.ID) bool {
				color[u] = 1
				for v := range succ[u] {
					if color[v] == 1 {
						return true
					}
					if color[v] == 0 && dfs(v) {
						return true
					}
				}
				color[u] = 2
				return false
			}
			for u := range succ {
				if color[u] == 0 && dfs(u) {
					t.Fatal("live schedule not conflict serializable")
				}
			}
		})
	}
}

// TestWorkErrorReleasesLocks: a failing step aborts the transaction and
// frees its locks so others proceed.
func TestWorkErrorReleasesLocks(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	boom := errors.New("boom")
	tx1 := txn.New(1, []txn.Step{w(0, 1), w(1, 1)})
	err := ctl.Run(context.Background(), tx1, func(step int, _ Progress) error {
		if step == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The partitions must be free now.
	done := make(chan error, 1)
	go func() {
		tx2 := txn.New(2, []txn.Step{w(0, 1), w(1, 1)})
		done <- ctl.Run(context.Background(), tx2, nil)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("locks leaked by aborted transaction")
	}
}

// TestContextCancellationWhileBlocked: a blocked transaction honours
// cancellation and releases whatever it held.
func TestContextCancellationWhileBlocked(t *testing.T) {
	ctl := New(sched.C2PLFactory(), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	hold := make(chan struct{})
	holderIn := make(chan struct{})
	go func() {
		tx := txn.New(1, []txn.Step{w(0, 1)})
		_ = ctl.Run(context.Background(), tx, func(int, Progress) error {
			close(holderIn)
			<-hold
			return nil
		})
	}()
	<-holderIn
	ctx, cancel := context.WithCancel(context.Background())
	blockedErr := make(chan error, 1)
	go func() {
		tx := txn.New(2, []txn.Step{w(0, 1)})
		blockedErr <- ctl.Run(ctx, tx, nil)
	}()
	time.Sleep(10 * time.Millisecond) // let it block
	cancel()
	select {
	case err := <-blockedErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation ignored")
	}
	close(hold)
}

// TestClose: Close unblocks waiters with ErrClosed and poisons new work.
func TestClose(t *testing.T) {
	ctl := New(sched.ASLFactory(), liveCosts, WithRetryDelay(time.Hour))
	started := make(chan struct{})
	blocked := make(chan error, 1)
	go func() {
		tx := txn.New(1, []txn.Step{w(0, 1)})
		_ = ctl.Run(context.Background(), tx, func(int, Progress) error {
			close(started)
			time.Sleep(50 * time.Millisecond)
			return nil
		})
	}()
	<-started
	go func() {
		tx := txn.New(2, []txn.Step{w(0, 1)})
		blocked <- ctl.Run(context.Background(), tx, nil)
	}()
	time.Sleep(5 * time.Millisecond)
	ctl.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock waiter")
	}
	if err := ctl.Run(context.Background(), txn.New(3, []txn.Step{r(0, 1)}), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Run = %v", err)
	}
}

// TestThroughputAcrossPartitions sanity-checks parallelism: disjoint
// transactions complete concurrently (wall time well under serial sum).
func TestThroughputAcrossPartitions(t *testing.T) {
	ctl := New(sched.KWTPGFactory(2), liveCosts, WithRetryDelay(time.Millisecond))
	defer ctl.Close()
	const n = 8
	const stepSleep = 20 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := txn.New(txn.ID(i+1), []txn.Step{w(txn.PartitionID(i), 1)})
			if err := ctl.Run(context.Background(), tx, func(int, Progress) error {
				time.Sleep(stepSleep)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > time.Duration(n)*stepSleep {
		t.Errorf("disjoint transactions serialized: %v for %d × %v", el, n, stepSleep)
	}
}

func ExampleController() {
	ctl := New(sched.ChainFactory(), sched.Costs{KeepTime: 100})
	defer ctl.Close()
	tx := txn.New(1, []txn.Step{
		{Mode: txn.Read, Part: 0, Cost: 1},
		{Mode: txn.Write, Part: 1, Cost: 1},
	})
	err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
		// ... do the step's real work here ...
		p(1) // report one processed object
		return nil
	})
	fmt.Println(err)
	// Output:
	// <nil>
}
