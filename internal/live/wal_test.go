package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/modelcheck"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// TestWALKillRecoverRoundTrip is the live controller's half of the
// kill-and-restart story: commit a batch of transactions against a
// caller-owned log, crash the log (SIGKILL-equivalent) with two
// transactions still in flight, recover, and check the committed set
// survived exactly while the in-flight pair was re-aborted — then that
// the recovered controller serves new traffic and a second recovery
// agrees with the first.
func TestWALKillRecoverRoundTrip(t *testing.T) {
	for _, f := range []sched.Factory{sched.C2PLFactory(), sched.KWTPGFactory(2)} {
		f := f
		t.Run(f.Label, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			l, err := wal.Open(dir, 1)
			if err != nil {
				t.Fatal(err)
			}
			ctl := New(f, liveCosts, WithWALLog(l), WithRetryDelay(time.Millisecond))

			var wg sync.WaitGroup
			for i := 1; i <= 8; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					tx := txn.New(txn.ID(i), []txn.Step{w(txn.PartitionID(i%4), 1)})
					if err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
						p(1)
						return nil
					}); err != nil {
						t.Errorf("txn %d: %v", i, err)
					}
				}()
			}
			wg.Wait()

			// Two transactions admitted (Begin forced durable) but parked
			// inside their work when the machine dies.
			started := make(chan struct{}, 2)
			release := make(chan struct{})
			inflight := make(chan error, 2)
			for i := 9; i <= 10; i++ {
				i := i
				go func() {
					tx := txn.New(txn.ID(i), []txn.Step{w(txn.PartitionID(i-5), 1)})
					inflight <- ctl.Run(context.Background(), tx, func(step int, p Progress) error {
						started <- struct{}{}
						<-release
						p(1)
						return nil
					})
				}()
			}
			<-started
			<-started
			l.Crash(0.6)
			close(release)
			for i := 0; i < 2; i++ {
				if err := <-inflight; err == nil {
					t.Fatalf("in-flight transaction committed after the WAL died (stats %+v)", ctl.Stats())
				}
			}
			// Durability is broken; the controller must refuse new work
			// rather than run it unlogged.
			tx := txn.New(11, []txn.Step{w(7, 1)})
			if err := ctl.Run(context.Background(), tx, nil); err == nil {
				t.Fatal("admission succeeded on a dead WAL")
			}
			ctl.Close()

			ctl2, rec, err := Recover(dir, f, liveCosts, WithRetryDelay(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Committed) != 8 {
				t.Fatalf("recovered %d committed, want 8: %v", len(rec.Committed), rec.Committed)
			}
			for _, id := range rec.Committed {
				if id < 1 || id > 8 {
					t.Fatalf("resurrected %v", id)
				}
			}
			if len(rec.Incomplete) != 2 || rec.Incomplete[0].Txn != 9 || rec.Incomplete[1].Txn != 10 {
				t.Fatalf("incomplete %v, want txns 9 and 10 re-aborted", rec.Incomplete)
			}
			scans, err := wal.Scan(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
				t.Fatal(err)
			}

			// The recovered controller is live: commit one more.
			tx12 := txn.New(12, []txn.Step{w(2, 1)})
			if err := ctl2.Run(context.Background(), tx12, func(step int, p Progress) error {
				p(1)
				return nil
			}); err != nil {
				t.Fatalf("post-recovery run: %v", err)
			}
			if st, ok := ctl2.WALStats(); !ok || st.Appends == 0 {
				t.Errorf("recovered controller WAL stats = %+v, %v", st, ok)
			}
			ctl2.Close()

			// A second recovery agrees: the re-abort records appended by
			// the first make 9 and 10 properly aborted, not incomplete.
			ctl3, rec2, err := Recover(dir, f, liveCosts)
			if err != nil {
				t.Fatal(err)
			}
			defer ctl3.Close()
			if len(rec2.Committed) != 9 {
				t.Fatalf("second recovery found %d committed, want 9 (batch + post-recovery txn)", len(rec2.Committed))
			}
			if len(rec2.Incomplete) != 0 {
				t.Fatalf("second recovery still has incomplete %v", rec2.Incomplete)
			}
			aborted := map[txn.ID]bool{}
			for _, id := range rec2.Aborted {
				aborted[id] = true
			}
			if !aborted[9] || !aborted[10] {
				t.Fatalf("re-aborts not durable: aborted set %v", rec2.Aborted)
			}
		})
	}
}

// TestWALOpenFailureIsSticky: a controller whose WAL cannot open must
// refuse admissions with an error rather than silently running without
// durability.
func TestWALOpenFailureIsSticky(t *testing.T) {
	// A file where the directory should be makes MkdirAll fail.
	dir := t.TempDir() + "/blocked"
	l, err := wal.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	ctl := New(sched.C2PLFactory(), liveCosts, WithWAL(dir+"/node-0000.wal/sub"))
	defer ctl.Close()
	tx := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Run(context.Background(), tx, nil); err == nil {
		t.Fatal("admission succeeded with an unopenable WAL")
	}
	if st := ctl.Stats(); st.Committed != 0 {
		t.Errorf("stats %+v after refused admissions", st)
	}
}

// TestWALAbortsAreLogged: work errors produce Abort records that a
// clean-shutdown recovery reports as aborted, not incomplete.
func TestWALAbortsAreLogged(t *testing.T) {
	dir := t.TempDir()
	ctl := New(sched.ChainFactory(), liveCosts, WithWAL(dir), WithRetryDelay(time.Millisecond))
	good := txn.New(1, []txn.Step{w(0, 1)})
	if err := ctl.Run(context.Background(), good, func(step int, p Progress) error {
		p(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bad := txn.New(2, []txn.Step{w(1, 1)})
	if err := ctl.Run(context.Background(), bad, func(step int, p Progress) error {
		return context.Canceled
	}); err == nil {
		t.Fatal("failing work committed")
	}
	ctl.Close()
	scans, err := wal.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Replay(scans, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Committed) != 1 || rec.Committed[0] != 1 {
		t.Errorf("committed %v, want [T1]", rec.Committed)
	}
	if len(rec.Aborted) != 1 || rec.Aborted[0] != 2 {
		t.Errorf("aborted %v, want [T2]", rec.Aborted)
	}
	if len(rec.Incomplete) != 0 {
		t.Errorf("incomplete %v after clean shutdown", rec.Incomplete)
	}
}

// TestShardedWALKillRecoverRoundTrip repeats the kill-and-restart story
// with the sharded hot path on: spanning transactions log Begin records
// carrying the union of their per-shard predecessors, the log dies with
// two transactions in flight, and recovery reconstructs exactly the
// committed set — proving the write-ahead contract holds per shard.
func TestShardedWALKillRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := sched.C2PLFactory()
	ctl := New(f, liveCosts, WithWALLog(l), WithShards(4), WithRetryDelay(time.Millisecond))

	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Two steps far apart in the partition space: most of these
			// span shards and admit through the atomic slow path.
			tx := txn.New(txn.ID(i), []txn.Step{
				w(txn.PartitionID(i%4), 1),
				w(txn.PartitionID(8+i%4), 1),
			})
			if err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
				p(1)
				return nil
			}); err != nil {
				t.Errorf("txn %d: %v", i, err)
			}
		}()
	}
	wg.Wait()

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	inflight := make(chan error, 2)
	for i := 9; i <= 10; i++ {
		i := i
		go func() {
			tx := txn.New(txn.ID(i), []txn.Step{w(txn.PartitionID(16+i), 1)})
			inflight <- ctl.Run(context.Background(), tx, func(step int, p Progress) error {
				started <- struct{}{}
				<-release
				p(1)
				return nil
			})
		}()
	}
	<-started
	<-started
	l.Crash(0.6)
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-inflight; err == nil {
			t.Fatalf("in-flight transaction committed after the WAL died (stats %+v)", ctl.Stats())
		}
	}
	ctl.Close()

	ctl2, rec, err := Recover(dir, f, liveCosts, WithShards(4), WithRetryDelay(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ctl2.Close()
	if len(rec.Committed) != 8 {
		t.Fatalf("recovered %d committed, want 8: %v", len(rec.Committed), rec.Committed)
	}
	for _, id := range rec.Committed {
		if id < 1 || id > 8 {
			t.Fatalf("resurrected %v", id)
		}
	}
	if len(rec.Incomplete) != 2 {
		t.Fatalf("incomplete %v, want txns 9 and 10 re-aborted", rec.Incomplete)
	}
	scans, err := wal.Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := modelcheck.VerifyRecovery(scans, rec); err != nil {
		t.Fatal(err)
	}
	// The recovered controller is live and still sharded.
	if got := ctl2.Shards(); got != 4 {
		t.Fatalf("recovered controller Shards() = %d, want 4", got)
	}
	tx := txn.New(12, []txn.Step{w(2, 1), w(9, 1)})
	if err := ctl2.Run(context.Background(), tx, func(step int, p Progress) error {
		p(1)
		return nil
	}); err != nil {
		t.Fatalf("post-recovery run: %v", err)
	}
}
