package live

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/storage"
	"batsched/internal/txn"
)

// benchShards reads LIVE_SHARDS: the shard count for the throughput
// benchmark. 1 is the single-mutex baseline; unset defaults to 16
// (the sharded configuration recorded in BENCH_PR8.json).
func benchShards() int {
	if s := os.Getenv("LIVE_SHARDS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 16
}

// benchStorage reads LIVE_STORAGE: non-empty attaches a heap-file
// store to the throughput benchmark, so every step does real page I/O
// (scan + effect insert) under the same controller hot path.
// Dirty-page write-back rides the background flusher rather than the
// commit path, and the pool is sized to the benchmark's working set
// (LIVE_POOL overrides; one heap page per partition at steady state —
// the PR 9 recording's 256 frames thrashed, making every scan a
// pread and every eviction a pwrite, which swamped the engine itself).
// This is the configuration `make bench-pr10` records in
// BENCH_PR10.json (`make bench-storage` records the PR 9 comparison).
func benchStorage(b *testing.B, parts int) Option {
	if os.Getenv("LIVE_STORAGE") == "" {
		return func(*Controller) {}
	}
	frames := 2 * parts
	if s := os.Getenv("LIVE_POOL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			frames = v
		}
	}
	st, err := storage.Open(b.TempDir(), parts, storage.WithPoolFrames(frames),
		storage.WithBackgroundFlush(25*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return WithStorage(st)
}

// BenchmarkLiveThroughput measures committed transactions per second
// through the live controller with real goroutines: open-loop arrivals
// (one goroutine per transaction, gated by a bounded in-flight window
// of 8×GOMAXPROCS) over a mostly-single-partition workload — 90%
// single-step, 10% spanning two distant partitions — against 4096
// partitions, so contention is low and the ceiling is the controller's
// own hot path. Sub-benchmarks pin GOMAXPROCS to 1/2/4/8; compare
// LIVE_SHARDS=1 (single global mutex) against the default sharded
// configuration to see the scaling the sharded hot path buys
// (`make bench-live` emits the comparison as BENCH_PR8.json).
func BenchmarkLiveThroughput(b *testing.B) {
	shards := benchShards()
	for _, procs := range []int{1, 2, 4, 8} {
		procs := procs
		b.Run(fmt.Sprintf("p%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			const parts = 4096
			ctl := New(sched.C2PLFactory(), liveCosts,
				WithShards(shards), WithRetryDelay(time.Millisecond),
				benchStorage(b, parts))
			defer ctl.Close()
			rng := rand.New(rand.NewSource(1))
			txns := make([]*txn.T, b.N)
			for i := range txns {
				p := txn.PartitionID(rng.Intn(parts))
				steps := []txn.Step{{Mode: txn.Write, Part: p, Cost: 1}}
				if rng.Float64() < 0.10 {
					steps = append(steps, txn.Step{
						Mode: txn.Write, Part: (p + parts/2) % parts, Cost: 1})
				}
				txns[i] = txn.New(txn.ID(i+1), steps)
			}
			window := make(chan struct{}, 8*procs)
			var failed atomic.Int64
			var firstErr atomic.Value
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				window <- struct{}{}
				wg.Add(1)
				go func(tx *txn.T) {
					defer wg.Done()
					defer func() { <-window }()
					err := ctl.Run(context.Background(), tx, func(step int, p Progress) error {
						p(1)
						return nil
					})
					if err != nil {
						failed.Add(1)
						firstErr.CompareAndSwap(nil, err)
					}
				}(txns[i])
			}
			wg.Wait()
			b.StopTimer()
			if n := failed.Load(); n > 0 {
				b.Fatalf("%d transactions failed (first: %v)", n, firstErr.Load())
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txn/s")
		})
	}
}
