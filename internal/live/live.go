// Package live runs the paper's concurrency-control schedulers against
// real goroutines, turning the simulated control node into an in-process
// lock manager. Where package sim *models* a shared-nothing machine,
// live schedules actual work: each transaction is a goroutine that
// declares its steps up front, acquires each step's partition lock
// through the scheduler (CHAIN, K-WTPG, C2PL, ASL, …), runs caller code
// while holding it, and releases everything at commit.
//
// The controller serializes scheduler decisions under one mutex — the
// moral equivalent of the paper's centralized control node — and blocks
// refused requests on a broadcast channel that commit events close, plus
// a retry-delay fallback (fixed by default, jittered-exponential with
// WithBackoff). All the guarantees of the scheduler carry over:
// conflicting holders never coexist and schedules are conflict
// serializable. Admitted transactions are normally never aborted by the
// controller; the two exceptions are explicit robustness features — a
// panic in caller work is recovered into an abort, and the optional
// no-progress watchdog (WithWatchdog) force-aborts a blocked transaction
// after two silent deadlines (see docs/ROBUSTNESS.md).
//
// Construction uses functional options:
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100},
//		live.WithRetryDelay(time.Millisecond),
//		live.WithObserver(sink))
//
// Every blocking method takes a context.Context first, so callers get
// cancellation and timeouts; Close remains the whole-controller
// shutdown and keeps its ErrClosed semantics. Transactions usually go
// through Run, but the admission/acquire/commit primitives are exported
// for callers that need step-level control.
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// Option configures a Controller at construction.
type Option func(*Controller)

// WithRetryDelay sets the fixed resubmission delay for refused
// admissions and policy-delayed requests (default 20 ms of wall time;
// live workloads want faster retries than the simulated 500 ms because
// ObjTime here is real work, usually far below 1 s). Non-positive
// values keep the default. WithBackoff supersedes the fixed delay.
func WithRetryDelay(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.retryDelay = d
		}
	}
}

// WithBackoff replaces the fixed retry delay with jittered exponential
// backoff: the n-th consecutive refusal of one admission or lock
// request waits a uniformly-jittered delay in [d/2, d] where
// d = min(base·2ⁿ, max). The wake broadcast still short-circuits every
// wait, so backoff only bounds the polling rate under sustained
// contention. A non-positive max defaults to 32·base; a non-positive
// base keeps the fixed delay.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Controller) {
		if base <= 0 {
			return
		}
		if max <= 0 {
			max = 32 * base
		}
		if max < base {
			max = base
		}
		c.backoffBase, c.backoffMax = base, max
	}
}

// WithWatchdog enables the no-progress watchdog: a background goroutine
// that checks every d whether any scheduler progress (admission, grant,
// object completion, commit or abort) happened since the last check
// while transactions were waiting. The first silent deadline emits a
// Stall event (Op "kick") and re-broadcasts the wake channel — curing
// lost-wakeup classes of stall. A second consecutive silent deadline
// force-aborts the youngest blocked transaction (Stall event with Op
// "abort"): its Acquire returns ErrWatchdogAborted and its locks are
// released through the scheduler's abort-recovery path, unblocking the
// rest. Non-positive d disables the watchdog.
func WithWatchdog(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.watchdog = d
		}
	}
}

// WithFaults attaches a fault injector (see internal/fault): selected
// transactions abort after a threshold of reported progress or crash
// (panic) at a chosen step, selected partitions pay a slow-I/O delay on
// every acquired step, and selected admissions are refused before the
// scheduler sees them. Faults exercise exactly the public recovery
// machinery — Abort, panic recovery, retries — so a faulted controller
// must stay correct; the chaos tests assert it. A nil injector is
// ignored.
func WithFaults(in *fault.Injector) Option {
	return func(c *Controller) {
		if in.Enabled() {
			c.inj = in
		}
	}
}

// WithTopology declares the shared-nothing layout behind the lock
// manager: numNodes data nodes holding numParts partitions under the
// paper's home policy (node = partition mod numNodes). The controller
// itself schedules locks, not I/O, so the topology matters only for
// node-crash recovery: CrashNode needs it to know which partitions die
// with a node and where they re-home. Non-positive values disable it.
func WithTopology(numNodes, numParts int) Option {
	return func(c *Controller) {
		if numNodes > 0 && numParts > 0 {
			c.topo = machine.Config{NumNodes: numNodes, NumParts: numParts}
		}
	}
}

// WithObserver attaches a structured trace observer: the controller
// emits timeline events (Admit, Request, ObjectDone, Commit) and wraps
// its scheduler with sched.Observed so every decision, WTPG edge
// resolution and critical-path change is reported too. Observers run
// under the controller mutex — in admission/commit order — and must be
// fast; the obs sinks (Ring, JSONL, Metrics) all qualify.
func WithObserver(o obs.Observer) Option {
	return func(c *Controller) { c.observer = o }
}

// WithGrantHook observes every granted step (after the decision, under
// no lock).
//
// Deprecated: use WithObserver; grant decisions arrive as obs Decision
// events with Op "request" and Decision "granted".
func WithGrantHook(fn func(t *txn.T, step int)) Option {
	return func(c *Controller) { c.onGrant = fn }
}

// WithCommitHook observes commits.
//
// Deprecated: use WithObserver; commits arrive as obs Commit events.
func WithCommitHook(fn func(t *txn.T)) Option {
	return func(c *Controller) { c.onCommit = fn }
}

// Options is the legacy configuration struct.
//
// Deprecated: pass functional options to New (WithRetryDelay,
// WithObserver, …). Retained, with NewWithOptions, so code written
// against the struct API keeps compiling.
type Options struct {
	// RetryDelay is the fixed resubmission delay (see WithRetryDelay).
	RetryDelay time.Duration
	// OnGrant observes every granted step; OnCommit observes commits.
	//
	// Deprecated: use WithObserver.
	OnGrant  func(t *txn.T, step int)
	OnCommit func(t *txn.T)
}

// Stats is a consistent snapshot of the controller's lifetime counters.
type Stats struct {
	// Admitted counts granted admissions; Committed and Aborted split
	// the finished transactions by outcome. An abort is the caller
	// abandoning an admitted transaction (a work error, a cancellation,
	// a recovered panic) — or, with WithWatchdog, the watchdog forcing
	// out a blocked transaction (those are counted here too, and
	// additionally visible as Stall events with Op "abort").
	Admitted  uint64
	Committed uint64
	Aborted   uint64
	// Granted counts granted step locks.
	Granted uint64
	// Retries counts retry waits (refused admissions and requests).
	Retries uint64
	// Stalled counts stall *episodes*: transitions into a no-progress
	// state (a watchdog deadline elapsed with waiters present and no
	// scheduler progress, however many deadlines the episode then
	// spans). Recovered counts episodes that subsequently cleared —
	// progress resumed before the controller closed, whether the
	// watchdog's own kick/abort or an external path (a commit, a
	// node-crash requeue) unblocked it. The two are symmetric: every
	// recovered episode was counted stalled exactly once.
	Stalled   uint64
	Recovered uint64
	// NodeCrashes counts CrashNode calls that killed a node; CrashDoomed
	// counts transactions doomed by one because their partial bulk work
	// died with it (each is also counted in Aborted once it finishes).
	NodeCrashes uint64
	CrashDoomed uint64
	// Epochs counts flushed admission windows (WithBatchWindow) and
	// BatchAdmitted the transactions admitted through a batch flush
	// rather than the per-arrival path (each is also in Admitted).
	Epochs        uint64
	BatchAdmitted uint64
	// Active is the number of currently admitted, unfinished
	// transactions at snapshot time.
	Active int
}

// Controller is a live lock manager driven by one of the paper's
// schedulers. Create with New; safe for concurrent use.
type Controller struct {
	mu     sync.Mutex
	sch    sched.Scheduler
	label  string
	wake   chan struct{}
	epoch  time.Time
	closed bool

	retryDelay  time.Duration
	backoffBase time.Duration // 0 = fixed retryDelay
	backoffMax  time.Duration
	watchdog    time.Duration // 0 = no watchdog
	rng         *rand.Rand    // jitter source; guarded by mu
	inj         *fault.Injector
	observer    obs.Observer
	onGrant     func(t *txn.T, step int)
	onCommit    func(t *txn.T)

	// started maps each admitted transaction to its admission time
	// (drives Stats.Active and commit-event response times). blocked
	// tracks the admitted transactions currently parked in Acquire
	// (candidates for a watchdog abort); doomed carries the error a
	// watchdog- or crash-aborted transaction finds at its next Acquire
	// loop (or, for a crash, at its Commit). progress counts
	// scheduler-state changes for the watchdog; waiters counts
	// goroutines parked in any retry wait.
	started  map[txn.ID]event.Time
	blocked  map[txn.ID]event.Time
	doomed   map[txn.ID]error
	progress uint64
	waiters  int
	stats    Stats

	// topo/place model the data-node layout for CrashNode (zero/nil
	// without WithTopology); resident tracks, per admitted transaction,
	// the last granted step, its partition's node at grant time, and the
	// objects reported since that grant — the state the recoverability
	// rule reads when a node dies.
	topo     machine.Config
	place    *machine.Placement
	resident map[txn.ID]*residency

	// Durable dependency logging (WithWAL/WithWALLog, see wal.go):
	// walDir is the configured directory, wal the open log (owned when
	// walOwned), walErr the sticky first failure — open or IO — that
	// makes later admissions fail instead of running unlogged, and
	// walNode remembers which per-node log each admitted transaction's
	// Begin record went to, so its completion lands in the same file.
	walDir   string
	wal      *wal.Log
	walOwned bool
	walErr   error
	walNode  map[txn.ID]int

	stopWatch chan struct{}
	watchWG   sync.WaitGroup

	// Epoch-batch state (WithBatchWindow, see epoch.go): window length,
	// cluster-dispatch worker count, the open window's submissions, and
	// the collector goroutine's lifecycle.
	batchWindow  time.Duration
	epochWorkers int
	epochMu      sync.Mutex
	epochBuf     []*submission
	epochClosed  bool
	stopEpoch    chan struct{}
	epochWG      sync.WaitGroup
}

// ErrClosed is returned when the controller has been shut down.
var ErrClosed = errors.New("live: controller closed")

// ErrWatchdogAborted is returned from Acquire (and Run) when the
// no-progress watchdog force-aborted the transaction to break a stall.
// The transaction's locks are released; the caller may resubmit it.
var ErrWatchdogAborted = errors.New("live: aborted by no-progress watchdog")

// ErrNodeCrashed is returned from Acquire, Commit or Run when a node
// crash (CrashNode) destroyed the transaction's partial bulk results:
// the objects it reported since its last lock grant lived on the dead
// node, so the transaction cannot commit and aborts instead. The caller
// may resubmit it against the re-homed topology.
var ErrNodeCrashed = errors.New("live: aborted: partial bulk work lost in a node crash")

// residency is the node-crash bookkeeping for one admitted transaction:
// the last granted step, the node its partition was homed on at grant
// time, and the objects reported since the grant. The crash window of a
// step extends until the *next* grant — the controller cannot see the
// caller's work function return, only the next Acquire — so work
// reported between a step's end and the next grant still counts against
// the old step's node (documented in docs/ROBUSTNESS.md §8).
type residency struct {
	step int
	part txn.PartitionID
	node int
	work float64
}

// New builds a controller around a scheduler factory, e.g.
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100})
//
// The CPU-cost fields of Costs are ignored (decisions take however long
// they take); KeepTime still bounds W/E cache staleness, measured in
// wall-clock milliseconds.
func New(factory sched.Factory, costs sched.Costs, opts ...Option) *Controller {
	c := &Controller{
		wake:       make(chan struct{}),
		epoch:      time.Now(),
		retryDelay: 20 * time.Millisecond,
		started:    make(map[txn.ID]event.Time),
		blocked:    make(map[txn.ID]event.Time),
		doomed:     make(map[txn.ID]error),
		resident:   make(map[txn.ID]*residency),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.topo.NumNodes > 0 {
		c.place = machine.NewPlacement(c.topo)
	}
	if c.wal == nil && c.walDir != "" {
		nodes := 1
		if c.topo.NumNodes > 0 {
			nodes = c.topo.NumNodes
		}
		if l, err := wal.Open(c.walDir, nodes); err != nil {
			c.walErr = err // sticky; surfaces from the first Admit
		} else {
			c.wal = l
			c.walOwned = true
		}
	}
	if c.wal != nil {
		c.walNode = make(map[txn.ID]int)
	}
	c.sch = factory.New(costs)
	c.label = c.sch.Name()
	if c.observer != nil {
		c.sch = sched.Observed(c.sch, c.observer)
	}
	if c.watchdog > 0 {
		c.stopWatch = make(chan struct{})
		c.watchWG.Add(1)
		go c.watchdogLoop()
	}
	if c.batchWindow > 0 {
		if c.epochWorkers <= 0 {
			c.epochWorkers = defaultEpochWorkers()
		}
		c.stopEpoch = make(chan struct{})
		c.epochWG.Add(1)
		go c.epochLoop()
	}
	return c
}

// NewWithOptions builds a controller from the legacy Options struct.
//
// Deprecated: use New with functional options.
func NewWithOptions(factory sched.Factory, costs sched.Costs, opts Options) *Controller {
	return New(factory, costs,
		WithRetryDelay(opts.RetryDelay),
		WithGrantHook(opts.OnGrant),
		WithCommitHook(opts.OnCommit))
}

// now maps wall time onto the scheduler's clock (ms since start).
func (c *Controller) now() event.Time {
	return event.Time(time.Since(c.epoch).Milliseconds())
}

// emitLocked sends one trace event. Callers must hold mu, which makes
// event order identical to decision/commit order.
func (c *Controller) emitLocked(e obs.Event) {
	if c.observer == nil {
		return
	}
	e.Sched = c.label
	e.WallNS = time.Now().UnixNano()
	c.observer.Observe(e)
}

// emit sends one trace event, taking the controller mutex itself.
func (c *Controller) emit(e obs.Event) {
	if c.observer == nil {
		return
	}
	c.mu.Lock()
	c.emitLocked(e)
	c.mu.Unlock()
}

// Stats returns a consistent snapshot of the lifetime counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Active = len(c.started)
	return s
}

// CheckInvariants runs the scheduler's internal consistency checks (no
// conflicting lock holders, acyclic WTPG) under the controller mutex.
// The chaos tests call it after every injected fault.
func (c *Controller) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ci, ok := c.sch.(interface{ CheckInvariants() error }); ok {
		return ci.CheckInvariants()
	}
	return nil
}

// Close shuts the controller down; subsequent or blocked operations
// return ErrClosed. The watchdog goroutine, if any, is joined.
func (c *Controller) Close() {
	c.mu.Lock()
	already := c.closed
	if !already {
		c.closed = true
		close(c.wake)
	}
	c.mu.Unlock()
	if !already && c.stopWatch != nil {
		close(c.stopWatch)
		c.watchWG.Wait()
	}
	if !already && c.stopEpoch != nil {
		close(c.stopEpoch)
		c.epochWG.Wait()
	}
	if !already && c.walOwned && c.wal != nil {
		c.wal.Close()
	}
}

// broadcast wakes every waiter. Callers must hold mu.
func (c *Controller) broadcast() {
	if c.closed {
		return
	}
	close(c.wake)
	c.wake = make(chan struct{})
}

// progressLocked records one unit of scheduler progress for the
// watchdog. Callers must hold mu.
func (c *Controller) progressLocked() { c.progress++ }

// retryWait computes the delay before the attempt-th resubmission
// (0-based): the fixed retry delay, or jittered exponential backoff
// when WithBackoff is configured.
func (c *Controller) retryWait(attempt int) time.Duration {
	if c.backoffBase <= 0 {
		return c.retryDelay
	}
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.mu.Unlock()
	return half + j
}

// awaitOn waits on a wake channel captured earlier (atomically with the
// refusal it follows), the retry delay for this attempt, or ctx. When
// t is non-nil the transaction is registered as blocked for the
// duration of the wait, making it a candidate for a watchdog abort.
func (c *Controller) awaitOn(ctx context.Context, ch <-chan struct{}, t *txn.T, attempt int) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.stats.Retries++
	c.waiters++
	if t != nil {
		c.blocked[t.ID] = c.started[t.ID]
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.waiters--
		if t != nil {
			delete(c.blocked, t.ID)
		}
		c.mu.Unlock()
	}()
	timer := time.NewTimer(c.retryWait(attempt))
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports completed work to the scheduler, adjusting the
// transaction's WTPG weight (the §3.1 object messages). Step work
// functions receive one.
type Progress func(objects float64)

// Run executes one declared transaction: admission, then each step under
// its lock, then commit. The work callback runs for every step while the
// step's lock is held; it receives the step index and a Progress
// callback for weight accounting. A non-nil work error aborts the
// transaction: all locks are released (the work already done is the
// caller's to undo) and the error is returned. Context cancellation and
// a watchdog abort behave the same way. A panic in the work callback is
// recovered: the transaction aborts (locks released, other transactions
// unaffected) and Run returns the panic as an error.
func (c *Controller) Run(ctx context.Context, t *txn.T, work func(step int, p Progress) error) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	if err := c.Admit(ctx, t); err != nil {
		return err
	}
	return c.runAdmitted(ctx, t, work)
}

// runAdmitted is Run after admission: the step loop under locks, fault
// hooks, panic recovery, and commit. Split out so the epoch dispatcher
// (see epoch.go) can batch-admit a whole window first and then drive
// each admitted transaction through exactly this path.
func (c *Controller) runAdmitted(ctx context.Context, t *txn.T, work func(step int, p Progress) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c.Abort(t)
			if e, ok := r.(error); ok {
				err = fmt.Errorf("live: %v: recovered panic: %w", t.ID, e)
			} else {
				err = fmt.Errorf("live: %v: recovered panic: %v", t.ID, r)
			}
		}
	}()
	abortAt, hasAbort := c.inj.AbortAt(t)
	crashStep, hasCrash := c.inj.Crash(t)
	processed := 0.0
	for step := range t.Steps {
		if err := c.Acquire(ctx, t, step); err != nil {
			c.Abort(t)
			return err
		}
		c.slowIO(ctx, t, step)
		if hasCrash && step == crashStep {
			c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Op: "crash"})
			panic(fmt.Errorf("%w: txn %v step %d", fault.ErrInjectedCrash, t.ID, step))
		}
		if work != nil {
			progress := func(objects float64) {
				processed += objects
				c.ObjectDone(t, objects)
			}
			if err := work(step, progress); err != nil {
				c.Abort(t)
				return fmt.Errorf("live: %v step %d: %w", t.ID, step, err)
			}
		}
		if hasAbort && processed >= abortAt {
			c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Op: "abort"})
			c.Abort(t)
			return fmt.Errorf("%w: txn %v after %g objects", fault.ErrInjectedAbort, t.ID, processed)
		}
	}
	// Commit can itself refuse: a node crash after the last grant dooms
	// the transaction and the "commit" aborts it (ErrNodeCrashed).
	return c.Commit(t)
}

// slowIO pays the injected slow-partition delay for the acquired step,
// if any: (factor−1)·retryDelay of extra latency, context-aware.
func (c *Controller) slowIO(ctx context.Context, t *txn.T, step int) {
	f := c.inj.IOFactor(t.Steps[step].Part)
	if f <= 1 {
		return
	}
	c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Part: t.Steps[step].Part, Op: "slow-io"})
	timer := time.NewTimer(time.Duration(float64(c.retryDelay) * (f - 1)))
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// Admit blocks until the scheduler admits t (or ctx ends, or the
// controller closes). After a successful Admit the caller owns the
// transaction's lifecycle and must finish it with Commit or Abort.
// Most callers want Run instead.
func (c *Controller) Admit(ctx context.Context, t *txn.T) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		now := c.now()
		if attempt == 0 {
			c.emitLocked(obs.Event{Kind: obs.KindAdmit, At: now, Txn: t.ID})
		}
		if c.inj.RefuseAdmit(t.ID, attempt) {
			c.emitLocked(obs.Event{Kind: obs.KindFault, At: now, Txn: t.ID, Op: "refuse-admit"})
			ch := c.wake
			c.mu.Unlock()
			if err := c.awaitOn(ctx, ch, nil, attempt); err != nil {
				return err
			}
			continue
		}
		if c.walErr != nil {
			// Durability was requested and is broken (open or IO failure):
			// admitting would run the transaction unlogged.
			err := c.walErr
			c.mu.Unlock()
			return fmt.Errorf("live: wal: %w", err)
		}
		out := c.sch.Admit(t, now)
		ch := c.wake
		if out.Decision == sched.Granted {
			c.stats.Admitted++
			c.started[t.ID] = now
			c.progressLocked()
			rec, logIt := c.walBeginLocked(t, now)
			c.mu.Unlock()
			if logIt {
				// Write-ahead: the Begin record — footprint + resolved
				// predecessors — must be durable before the grant takes
				// effect. On failure the admission is rolled back.
				if err := c.walForce(rec); err != nil {
					c.Abort(t)
					return fmt.Errorf("live: wal: %w", err)
				}
			}
			return nil
		}
		c.mu.Unlock()
		if err := c.awaitOn(ctx, ch, nil, attempt); err != nil {
			return err
		}
	}
}

// Acquire blocks until the lock needed by step of t is granted (or ctx
// ends, the controller closes, or the watchdog force-aborts t — then
// ErrWatchdogAborted). Valid only between Admit and Commit/Abort.
func (c *Controller) Acquire(ctx context.Context, t *txn.T, step int) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		if err := c.doomed[t.ID]; err != nil {
			delete(c.doomed, t.ID)
			c.mu.Unlock()
			return err
		}
		now := c.now()
		if attempt == 0 {
			c.emitLocked(obs.Event{Kind: obs.KindRequest, At: now, Txn: t.ID, Step: step, Part: t.Steps[step].Part})
		}
		out := c.sch.Request(t, step, now)
		// Capture the wake channel under the same critical section as the
		// refused decision: a commit between the decision and the wait
		// would otherwise be missed, costing a full retry delay.
		ch := c.wake
		if out.Decision == sched.Granted {
			c.stats.Granted++
			c.progressLocked()
			if c.place != nil {
				part := t.Steps[step].Part
				c.resident[t.ID] = &residency{step: step, part: part, node: c.place.NodeOf(part)}
			}
		}
		c.mu.Unlock()
		if out.Decision == sched.Granted {
			if c.onGrant != nil {
				c.onGrant(t, step)
			}
			return nil
		}
		// Blocked and Delayed both wait for the next commit broadcast or
		// the retry delay; the scheduler re-decides on resubmission. The
		// wait registers t as blocked — a watchdog-abort candidate.
		if err := c.awaitOn(ctx, ch, t, attempt); err != nil {
			return err
		}
	}
}

// ObjectDone reports completed work for an admitted transaction — the
// §3.1 weight-adjustment message behind the Progress callback.
func (c *Controller) ObjectDone(t *txn.T, objects float64) {
	c.mu.Lock()
	now := c.now()
	c.sch.ObjectDone(t, objects, now)
	c.progressLocked()
	if r := c.resident[t.ID]; r != nil {
		r.work += objects
	}
	c.emitLocked(obs.Event{Kind: obs.KindObjectDone, At: now, Txn: t.ID, Objects: objects})
	c.mu.Unlock()
}

// Commit finishes an admitted transaction: all its locks drop and
// waiters wake. It returns an error for a transaction the controller
// does not consider admitted (double finish, never admitted) — and,
// wrapped as ErrNodeCrashed, for a transaction doomed by a node crash
// after its last lock grant: its partial bulk results are gone, so the
// "commit" runs the abort-recovery path instead and the caller must
// treat the transaction as aborted.
func (c *Controller) Commit(t *txn.T) error {
	if err := c.finish(t, true); err != nil {
		return err
	}
	if c.onCommit != nil {
		c.onCommit(t)
	}
	return nil
}

// Abort abandons an admitted transaction (work error, cancellation,
// recovered panic, watchdog): its locks are released through the
// scheduler's abort-recovery path — unresolved conflicting-edges
// retracted, resolved precedence spliced past it — and waiters wake.
// Undoing completed work is the caller's responsibility. It returns an
// error only for a transaction the controller does not consider
// admitted.
func (c *Controller) Abort(t *txn.T) error {
	return c.finish(t, false)
}

// finish runs in three phases so the commit record's fsync never stalls
// the controller's critical sections: (1) under mu, claim the finish —
// validate, apply the doom check, remove t from the tracking maps so no
// concurrent finish/crash-doom can touch it, and build the completion
// record while t is still in the WTPG; (2) outside mu, make a commit
// record durable (group-committed — aborts are appended unforced, a
// lost abort record re-aborts at recovery anyway); (3) under mu, apply
// the completion to the scheduler and wake waiters. Without a WAL,
// phase 2 is empty and the behavior is the old single-section finish.
func (c *Controller) finish(t *txn.T, committed bool) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	c.mu.Lock()
	start, ok := c.started[t.ID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("live: %v is not an admitted transaction", t.ID)
	}
	now := c.now()
	var doomErr error
	if committed {
		if err := c.doomed[t.ID]; err != nil {
			// Doomed after its last Acquire (node crash): committing would
			// publish bulk results that died with the node. Abort instead.
			committed = false
			doomErr = fmt.Errorf("live: %v: %w", t.ID, err)
		}
	}
	delete(c.started, t.ID)
	delete(c.doomed, t.ID)
	delete(c.resident, t.ID)
	rec, logIt := c.walCompletionLocked(t, committed, now)
	c.mu.Unlock()

	if c.wal != nil && committed && !logIt {
		// The WAL is attached but unusable (sticky walErr) or t's begin
		// was never logged: committing would succeed in memory with no
		// durable record behind it — recovery would silently drop it. A
		// commit that cannot be logged is an abort.
		committed = false
		doomErr = fmt.Errorf("live: %v: wal unavailable, commit aborted", t.ID)
	}
	if logIt {
		if committed {
			// Write-ahead: the commit is not a commit until its record is
			// durable. On failure the transaction aborts instead — its
			// begin record stays completion-less and recovery re-aborts it.
			if err := c.walForce(rec); err != nil {
				committed = false
				doomErr = fmt.Errorf("live: %v: commit record not durable: %w", t.ID, err)
			}
		} else {
			c.walAppend(rec)
		}
	}

	c.mu.Lock()
	now = c.now()
	if committed {
		c.sch.Commit(t, now)
		c.stats.Committed++
	} else {
		sched.AbortTxn(c.sch, t, now)
		c.stats.Aborted++
	}
	e := obs.Event{Kind: obs.KindCommit, At: now, Txn: t.ID, RT: now - start}
	if !committed {
		e.Decision = "aborted"
	}
	c.progressLocked()
	c.emitLocked(e)
	c.broadcast()
	c.mu.Unlock()
	return doomErr
}

// CrashNode kills one data node of the WithTopology layout: its
// partitions re-home to the survivors (mod-alive policy, Rehome events)
// and every admitted transaction whose last granted step lived there is
// triaged by the recoverability rule — no objects reported since the
// grant means nothing was lost (the transaction continues against the
// re-homed partition; a Requeue event records it), while reported
// objects mean partial bulk results died with the node, so the
// transaction is doomed: its next Acquire (or its Commit) returns
// ErrNodeCrashed and it aborts through the scheduler's recovery path.
// Errors: no WithTopology, an unknown/already-dead node, or the last
// alive node.
func (c *Controller) CrashNode(node int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.place == nil {
		return fmt.Errorf("live: CrashNode requires WithTopology")
	}
	if !c.place.Alive(node) {
		return fmt.Errorf("live: node %d is unknown or already dead", node)
	}
	if c.place.AliveCount() <= 1 {
		return fmt.Errorf("live: refusing to crash the last alive node %d", node)
	}
	now := c.now()
	c.stats.NodeCrashes++
	c.emitLocked(obs.Event{Kind: obs.KindNodeDown, At: now, Node: node})
	for _, rh := range c.place.Kill(node) {
		c.emitLocked(obs.Event{Kind: obs.KindRehome, At: now, Part: rh.Part, FromNode: rh.From, Node: rh.To})
	}
	for id, r := range c.resident {
		if r.node != node {
			continue
		}
		if r.work > 0 {
			c.doomed[id] = ErrNodeCrashed
			c.stats.CrashDoomed++
			c.emitLocked(obs.Event{Kind: obs.KindFault, At: now, Txn: id, Step: r.step, Part: r.part, Op: "node-crash"})
			continue
		}
		to := c.place.NodeOf(r.part)
		r.node = to
		c.emitLocked(obs.Event{Kind: obs.KindRequeue, At: now, Txn: id, Step: r.step, Part: r.part, FromNode: node, Node: to})
	}
	// The triage itself is scheduler progress: parked waiters re-check
	// their doom on wake, and a stall the crash caused (or cured) must be
	// visible to the watchdog as movement, keeping Stalled/Recovered
	// symmetric when the requeue path — not the watchdog — unblocks a run.
	c.progressLocked()
	c.broadcast()
	return nil
}

// watchdogLoop is the no-progress watchdog (WithWatchdog): every period
// it compares the progress counter against the previous tick. A silent
// period with waiters present is a stall — first kick, then abort.
func (c *Controller) watchdogLoop() {
	defer c.watchWG.Done()
	ticker := time.NewTicker(c.watchdog)
	defer ticker.Stop()
	var lastProgress uint64
	kicked := false
	stalled := false
	for {
		select {
		case <-c.stopWatch:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if c.progress != lastProgress {
			lastProgress = c.progress
			kicked = false
			if stalled {
				stalled = false
				c.stats.Recovered++
			}
			c.mu.Unlock()
			continue
		}
		if len(c.started) == 0 && c.waiters == 0 {
			// Idle, not stalled: nothing is waiting for progress.
			c.mu.Unlock()
			continue
		}
		if !stalled {
			// Count the *episode*, not every silent deadline it spans:
			// Stats.Recovered counts episodes that clear, and the pair must
			// stay symmetric however long the stall lasts and whoever cures
			// it (watchdog kick/abort or an external requeue).
			stalled = true
			c.stats.Stalled++
		}
		if !kicked {
			// First silent deadline: re-broadcast. If the stall was a lost
			// wakeup (or everyone is sitting out a long backoff), this
			// alone cures it.
			kicked = true
			c.emitLocked(obs.Event{Kind: obs.KindStall, At: c.now(), Op: "kick"})
			c.broadcast()
			c.mu.Unlock()
			continue
		}
		// Second consecutive silent deadline: force-abort the youngest
		// blocked transaction. Blocked means parked in Acquire — no caller
		// work is running, so releasing its locks is safe; youngest means
		// the least completed work is thrown away.
		if victim, ok := c.youngestBlockedLocked(); ok {
			c.doomed[victim] = ErrWatchdogAborted
			c.emitLocked(obs.Event{Kind: obs.KindStall, At: c.now(), Txn: victim, Op: "abort"})
		} else {
			c.emitLocked(obs.Event{Kind: obs.KindStall, At: c.now(), Op: "kick"})
		}
		c.broadcast()
		c.mu.Unlock()
	}
}

// youngestBlockedLocked picks the blocked transaction with the latest
// admission time (ties broken by higher ID for determinism). Callers
// must hold mu.
func (c *Controller) youngestBlockedLocked() (txn.ID, bool) {
	var best txn.ID
	var bestAt event.Time
	found := false
	for id, at := range c.blocked {
		if c.doomed[id] != nil {
			continue // already sentenced, give it a tick to act
		}
		if !found || at > bestAt || (at == bestAt && id > best) {
			best, bestAt, found = id, at, true
		}
	}
	return best, found
}
