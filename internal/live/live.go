// Package live runs the paper's concurrency-control schedulers against
// real goroutines, turning the simulated control node into an in-process
// lock manager. Where package sim *models* a shared-nothing machine,
// live schedules actual work: each transaction is a goroutine that
// declares its steps up front, acquires each step's partition lock
// through the scheduler (CHAIN, K-WTPG, C2PL, ASL, …), runs caller code
// while holding it, and releases everything at commit.
//
// The controller serializes scheduler decisions under one mutex — the
// moral equivalent of the paper's centralized control node — and blocks
// refused requests on a broadcast channel that commit events close, plus
// the paper's fixed retry delay as a fallback. All the guarantees of the
// scheduler carry over: conflicting holders never coexist, schedules are
// conflict serializable, and no admitted transaction is ever aborted by
// the controller (cancellation is the caller's choice).
//
// Construction uses functional options:
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100},
//		live.WithRetryDelay(time.Millisecond),
//		live.WithObserver(sink))
//
// Every blocking method takes a context.Context first, so callers get
// cancellation and timeouts; Close remains the whole-controller
// shutdown and keeps its ErrClosed semantics. Transactions usually go
// through Run, but the admission/acquire/commit primitives are exported
// for callers that need step-level control.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// Option configures a Controller at construction.
type Option func(*Controller)

// WithRetryDelay sets the paper's fixed resubmission delay for refused
// admissions and policy-delayed requests (default 20 ms of wall time;
// live workloads want faster retries than the simulated 500 ms because
// ObjTime here is real work, usually far below 1 s). Non-positive
// values keep the default.
func WithRetryDelay(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.retryDelay = d
		}
	}
}

// WithObserver attaches a structured trace observer: the controller
// emits timeline events (Admit, Request, ObjectDone, Commit) and wraps
// its scheduler with sched.Observed so every decision, WTPG edge
// resolution and critical-path change is reported too. Observers run
// under the controller mutex — in admission/commit order — and must be
// fast; the obs sinks (Ring, JSONL, Metrics) all qualify.
func WithObserver(o obs.Observer) Option {
	return func(c *Controller) { c.observer = o }
}

// WithGrantHook observes every granted step (after the decision, under
// no lock).
//
// Deprecated: use WithObserver; grant decisions arrive as obs Decision
// events with Op "request" and Decision "granted".
func WithGrantHook(fn func(t *txn.T, step int)) Option {
	return func(c *Controller) { c.onGrant = fn }
}

// WithCommitHook observes commits.
//
// Deprecated: use WithObserver; commits arrive as obs Commit events.
func WithCommitHook(fn func(t *txn.T)) Option {
	return func(c *Controller) { c.onCommit = fn }
}

// Options is the legacy configuration struct.
//
// Deprecated: pass functional options to New (WithRetryDelay,
// WithObserver, …). Retained, with NewWithOptions, so code written
// against the struct API keeps compiling.
type Options struct {
	// RetryDelay is the fixed resubmission delay (see WithRetryDelay).
	RetryDelay time.Duration
	// OnGrant observes every granted step; OnCommit observes commits.
	//
	// Deprecated: use WithObserver.
	OnGrant  func(t *txn.T, step int)
	OnCommit func(t *txn.T)
}

// Stats is a consistent snapshot of the controller's lifetime counters.
type Stats struct {
	// Admitted counts granted admissions; Committed and Aborted split
	// the finished transactions by outcome (an abort here is the
	// *caller* abandoning an admitted transaction — a work error or
	// cancellation — never a scheduler decision).
	Admitted  uint64
	Committed uint64
	Aborted   uint64
	// Granted counts granted step locks.
	Granted uint64
	// Retries counts retry waits (refused admissions and requests).
	Retries uint64
	// Active is the number of currently admitted, unfinished
	// transactions at snapshot time.
	Active int
}

// Controller is a live lock manager driven by one of the paper's
// schedulers. Create with New; safe for concurrent use.
type Controller struct {
	mu     sync.Mutex
	sch    sched.Scheduler
	label  string
	wake   chan struct{}
	epoch  time.Time
	closed bool

	retryDelay time.Duration
	observer   obs.Observer
	onGrant    func(t *txn.T, step int)
	onCommit   func(t *txn.T)

	// started maps each admitted transaction to its admission time
	// (drives Stats.Active and commit-event response times).
	started map[txn.ID]event.Time
	stats   Stats
}

// ErrClosed is returned when the controller has been shut down.
var ErrClosed = errors.New("live: controller closed")

// New builds a controller around a scheduler factory, e.g.
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100})
//
// The CPU-cost fields of Costs are ignored (decisions take however long
// they take); KeepTime still bounds W/E cache staleness, measured in
// wall-clock milliseconds.
func New(factory sched.Factory, costs sched.Costs, opts ...Option) *Controller {
	c := &Controller{
		wake:       make(chan struct{}),
		epoch:      time.Now(),
		retryDelay: 20 * time.Millisecond,
		started:    make(map[txn.ID]event.Time),
	}
	for _, opt := range opts {
		opt(c)
	}
	c.sch = factory.New(costs)
	c.label = c.sch.Name()
	if c.observer != nil {
		c.sch = sched.Observed(c.sch, c.observer)
	}
	return c
}

// NewWithOptions builds a controller from the legacy Options struct.
//
// Deprecated: use New with functional options.
func NewWithOptions(factory sched.Factory, costs sched.Costs, opts Options) *Controller {
	return New(factory, costs,
		WithRetryDelay(opts.RetryDelay),
		WithGrantHook(opts.OnGrant),
		WithCommitHook(opts.OnCommit))
}

// now maps wall time onto the scheduler's clock (ms since start).
func (c *Controller) now() event.Time {
	return event.Time(time.Since(c.epoch).Milliseconds())
}

// emitLocked sends one trace event. Callers must hold mu, which makes
// event order identical to decision/commit order.
func (c *Controller) emitLocked(e obs.Event) {
	if c.observer == nil {
		return
	}
	e.Sched = c.label
	e.WallNS = time.Now().UnixNano()
	c.observer.Observe(e)
}

// Stats returns a consistent snapshot of the lifetime counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Active = len(c.started)
	return s
}

// Close shuts the controller down; subsequent or blocked operations
// return ErrClosed.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.wake)
	}
}

// broadcast wakes every waiter. Callers must hold mu.
func (c *Controller) broadcast() {
	if c.closed {
		return
	}
	close(c.wake)
	c.wake = make(chan struct{})
}

// awaitOn waits on a wake channel captured earlier (atomically with the
// refusal it follows), the retry delay, or ctx.
func (c *Controller) awaitOn(ctx context.Context, ch <-chan struct{}) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.stats.Retries++
	c.mu.Unlock()
	timer := time.NewTimer(c.retryDelay)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports completed work to the scheduler, adjusting the
// transaction's WTPG weight (the §3.1 object messages). Step work
// functions receive one.
type Progress func(objects float64)

// Run executes one declared transaction: admission, then each step under
// its lock, then commit. The work callback runs for every step while the
// step's lock is held; it receives the step index and a Progress
// callback for weight accounting. A non-nil work error aborts the
// transaction: all locks are released (the work already done is the
// caller's to undo) and the error is returned. Context cancellation
// behaves the same way.
func (c *Controller) Run(ctx context.Context, t *txn.T, work func(step int, p Progress) error) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	if err := c.Admit(ctx, t); err != nil {
		return err
	}
	for step := range t.Steps {
		if err := c.Acquire(ctx, t, step); err != nil {
			c.Abort(t)
			return err
		}
		if work != nil {
			progress := func(objects float64) { c.ObjectDone(t, objects) }
			if err := work(step, progress); err != nil {
				c.Abort(t)
				return fmt.Errorf("live: %v step %d: %w", t.ID, step, err)
			}
		}
	}
	c.Commit(t)
	return nil
}

// Admit blocks until the scheduler admits t (or ctx ends, or the
// controller closes). After a successful Admit the caller owns the
// transaction's lifecycle and must finish it with Commit or Abort.
// Most callers want Run instead.
func (c *Controller) Admit(ctx context.Context, t *txn.T) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		now := c.now()
		if first {
			first = false
			c.emitLocked(obs.Event{Kind: obs.KindAdmit, At: now, Txn: t.ID})
		}
		out := c.sch.Admit(t, now)
		ch := c.wake
		if out.Decision == sched.Granted {
			c.stats.Admitted++
			c.started[t.ID] = now
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		if err := c.awaitOn(ctx, ch); err != nil {
			return err
		}
	}
}

// Acquire blocks until the lock needed by step of t is granted (or ctx
// ends, or the controller closes). Valid only between Admit and
// Commit/Abort.
func (c *Controller) Acquire(ctx context.Context, t *txn.T, step int) error {
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		now := c.now()
		if first {
			first = false
			c.emitLocked(obs.Event{Kind: obs.KindRequest, At: now, Txn: t.ID, Step: step, Part: t.Steps[step].Part})
		}
		out := c.sch.Request(t, step, now)
		// Capture the wake channel under the same critical section as the
		// refused decision: a commit between the decision and the wait
		// would otherwise be missed, costing a full retry delay.
		ch := c.wake
		if out.Decision == sched.Granted {
			c.stats.Granted++
		}
		c.mu.Unlock()
		if out.Decision == sched.Granted {
			if c.onGrant != nil {
				c.onGrant(t, step)
			}
			return nil
		}
		// Blocked and Delayed both wait for the next commit broadcast or
		// the retry delay; the scheduler re-decides on resubmission.
		if err := c.awaitOn(ctx, ch); err != nil {
			return err
		}
	}
}

// ObjectDone reports completed work for an admitted transaction — the
// §3.1 weight-adjustment message behind the Progress callback.
func (c *Controller) ObjectDone(t *txn.T, objects float64) {
	c.mu.Lock()
	now := c.now()
	c.sch.ObjectDone(t, objects, now)
	c.emitLocked(obs.Event{Kind: obs.KindObjectDone, At: now, Txn: t.ID, Objects: objects})
	c.mu.Unlock()
}

// Commit finishes an admitted transaction: all its locks drop and
// waiters wake.
func (c *Controller) Commit(t *txn.T) {
	c.finish(t, true)
	if c.onCommit != nil {
		c.onCommit(t)
	}
}

// Abort abandons an admitted transaction (work error, cancellation):
// all its locks drop and waiters wake. Undoing completed work is the
// caller's responsibility.
func (c *Controller) Abort(t *txn.T) {
	c.finish(t, false)
}

func (c *Controller) finish(t *txn.T, committed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.sch.Commit(t, now)
	e := obs.Event{Kind: obs.KindCommit, At: now, Txn: t.ID}
	if start, ok := c.started[t.ID]; ok {
		e.RT = now - start
		delete(c.started, t.ID)
	}
	if committed {
		c.stats.Committed++
	} else {
		c.stats.Aborted++
		e.Decision = "aborted"
	}
	c.emitLocked(e)
	c.broadcast()
}
