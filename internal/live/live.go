// Package live runs the paper's concurrency-control schedulers against
// real goroutines, turning the simulated control node into an in-process
// lock manager. Where package sim *models* a shared-nothing machine,
// live schedules actual work: each transaction is a goroutine that
// declares its steps up front, acquires each step's partition lock
// through the scheduler (CHAIN, K-WTPG, C2PL, ASL, …), runs caller code
// while holding it, and releases everything at commit.
//
// The controller partitions its hot path into shards (WithShards): each
// shard owns a slice of the partition space — ownership hashing, see
// shard.go — with its own mutex, scheduler instance, lock table, WTPG,
// wake channel and retry-jitter RNG. A transaction whose footprint lies
// in one shard (the common case under CHAIN/K-WTPG) schedules entirely
// under that shard's lock and never touches another shard; a
// transaction spanning shards takes the shard locks in canonical
// ascending order and acquires all of its locks atomically at admission
// (ASL-style, see admitSpanning). The default is one shard — the moral
// equivalent of the paper's centralized control node, byte-for-byte the
// old single-mutex behavior. Refused requests block on the owning
// shard's broadcast channel, which commit events close, plus a
// retry-delay fallback (fixed by default, jittered-exponential with
// WithBackoff). All the guarantees of the scheduler carry over:
// conflicting holders never coexist and schedules are conflict
// serializable (every scheduler is strict — locks are held to commit —
// and each partition's locks are managed by exactly one shard).
// Admitted transactions are normally never aborted by the controller;
// the two exceptions are explicit robustness features — a panic in
// caller work is recovered into an abort, and the optional no-progress
// watchdog (WithWatchdog) force-aborts a blocked transaction after two
// silent deadlines (see docs/ROBUSTNESS.md).
//
// Construction uses functional options:
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100},
//		live.WithRetryDelay(time.Millisecond),
//		live.WithObserver(sink))
//
// Every blocking method takes a context.Context first, so callers get
// cancellation and timeouts; Close remains the whole-controller
// shutdown and keeps its ErrClosed semantics. Transactions usually go
// through Run, but the admission/acquire/commit primitives are exported
// for callers that need step-level control.
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/fault"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/storage"
	"batsched/internal/txn"
	"batsched/internal/wal"
)

// Option configures a Controller at construction.
type Option func(*Controller)

// WithRetryDelay sets the fixed resubmission delay for refused
// admissions and policy-delayed requests (default 20 ms of wall time;
// live workloads want faster retries than the simulated 500 ms because
// ObjTime here is real work, usually far below 1 s). Non-positive
// values keep the default. WithBackoff supersedes the fixed delay.
func WithRetryDelay(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.retryDelay = d
		}
	}
}

// WithBackoff replaces the fixed retry delay with jittered exponential
// backoff: the n-th consecutive refusal of one admission or lock
// request waits a uniformly-jittered delay in [d/2, d] where
// d = min(base·2ⁿ, max). The wake broadcast still short-circuits every
// wait, so backoff only bounds the polling rate under sustained
// contention. A non-positive max defaults to 32·base; a non-positive
// base keeps the fixed delay.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Controller) {
		if base <= 0 {
			return
		}
		if max <= 0 {
			max = 32 * base
		}
		if max < base {
			max = base
		}
		c.backoffBase, c.backoffMax = base, max
	}
}

// WithWatchdog enables the no-progress watchdog: a background goroutine
// that checks every d whether any scheduler progress (admission, grant,
// object completion, commit or abort) happened since the last check
// while transactions were waiting. The first silent deadline emits a
// Stall event (Op "kick") and re-broadcasts the wake channels — curing
// lost-wakeup classes of stall. A second consecutive silent deadline
// force-aborts the youngest blocked transaction (Stall event with Op
// "abort"): its Acquire returns ErrWatchdogAborted and its locks are
// released through the scheduler's abort-recovery path, unblocking the
// rest. Non-positive d disables the watchdog.
func WithWatchdog(d time.Duration) Option {
	return func(c *Controller) {
		if d > 0 {
			c.watchdog = d
		}
	}
}

// WithFaults attaches a fault injector (see internal/fault): selected
// transactions abort after a threshold of reported progress or crash
// (panic) at a chosen step, selected partitions pay a slow-I/O delay on
// every acquired step, and selected admissions are refused before the
// scheduler sees them. Faults exercise exactly the public recovery
// machinery — Abort, panic recovery, retries — so a faulted controller
// must stay correct; the chaos tests assert it. A nil injector is
// ignored.
func WithFaults(in *fault.Injector) Option {
	return func(c *Controller) {
		if in.Enabled() {
			c.inj = in
		}
	}
}

// WithTopology declares the shared-nothing layout behind the lock
// manager: numNodes data nodes holding numParts partitions under the
// paper's home policy (node = partition mod numNodes). The controller
// itself schedules locks, not I/O, so the topology matters only for
// node-crash recovery: CrashNode needs it to know which partitions die
// with a node and where they re-home. Non-positive values disable it.
func WithTopology(numNodes, numParts int) Option {
	return func(c *Controller) {
		if numNodes > 0 && numParts > 0 {
			c.topo = machine.Config{NumNodes: numNodes, NumParts: numParts}
		}
	}
}

// WithObserver attaches a structured trace observer: the controller
// emits timeline events (Admit, Request, ObjectDone, Commit) and wraps
// each shard's scheduler with sched.Observed so every decision, WTPG
// edge resolution and critical-path change is reported too, tagged with
// the emitting shard (Event.Shard). With more than one shard, events
// from different shards are emitted concurrently — observers must be
// safe for concurrent use; the obs sinks (Ring, JSONL, Metrics) all
// qualify. Within one shard, event order still matches decision order.
func WithObserver(o obs.Observer) Option {
	return func(c *Controller) { c.observer = o }
}

// WithGrantHook observes every granted step (after the decision, under
// no lock).
//
// Deprecated: use WithObserver; grant decisions arrive as obs Decision
// events with Op "request" and Decision "granted".
func WithGrantHook(fn func(t *txn.T, step int)) Option {
	return func(c *Controller) { c.onGrant = fn }
}

// WithCommitHook observes commits.
//
// Deprecated: use WithObserver; commits arrive as obs Commit events.
func WithCommitHook(fn func(t *txn.T)) Option {
	return func(c *Controller) { c.onCommit = fn }
}

// Options is the legacy configuration struct.
//
// Deprecated: pass functional options to New (WithRetryDelay,
// WithObserver, …). Retained, with NewWithOptions, so code written
// against the struct API keeps compiling.
type Options struct {
	// RetryDelay is the fixed resubmission delay (see WithRetryDelay).
	RetryDelay time.Duration
	// OnGrant observes every granted step; OnCommit observes commits.
	//
	// Deprecated: use WithObserver.
	OnGrant  func(t *txn.T, step int)
	OnCommit func(t *txn.T)
}

// Stats is a consistent snapshot of the controller's lifetime counters,
// summed over all shards.
type Stats struct {
	// Admitted counts granted admissions; Committed and Aborted split
	// the finished transactions by outcome. An abort is the caller
	// abandoning an admitted transaction (a work error, a cancellation,
	// a recovered panic) — or, with WithWatchdog, the watchdog forcing
	// out a blocked transaction (those are counted here too, and
	// additionally visible as Stall events with Op "abort").
	Admitted  uint64
	Committed uint64
	Aborted   uint64
	// Granted counts granted step locks.
	Granted uint64
	// Retries counts retry waits (refused admissions and requests).
	Retries uint64
	// Stalled counts stall *episodes*: transitions into a no-progress
	// state (a watchdog deadline elapsed with waiters present and no
	// scheduler progress, however many deadlines the episode then
	// spans). Recovered counts episodes that subsequently cleared —
	// progress resumed before the controller closed, whether the
	// watchdog's own kick/abort or an external path (a commit, a
	// node-crash requeue) unblocked it. The two are symmetric: every
	// recovered episode was counted stalled exactly once.
	Stalled   uint64
	Recovered uint64
	// NodeCrashes counts CrashNode calls that killed a node; CrashDoomed
	// counts transactions doomed by one because their partial bulk work
	// died with it (each is also counted in Aborted once it finishes).
	NodeCrashes uint64
	CrashDoomed uint64
	// Epochs counts flushed admission windows (WithBatchWindow) and
	// BatchAdmitted the transactions admitted through a batch flush
	// rather than the per-arrival path (each is also in Admitted).
	Epochs        uint64
	BatchAdmitted uint64
	// Active is the number of currently admitted, unfinished
	// transactions at snapshot time.
	Active int
}

// add folds another partial Stats (one shard's counters) into s.
func (s *Stats) add(o Stats) {
	s.Admitted += o.Admitted
	s.Committed += o.Committed
	s.Aborted += o.Aborted
	s.Granted += o.Granted
	s.Retries += o.Retries
	s.Stalled += o.Stalled
	s.Recovered += o.Recovered
	s.NodeCrashes += o.NodeCrashes
	s.CrashDoomed += o.CrashDoomed
	s.Epochs += o.Epochs
	s.BatchAdmitted += o.BatchAdmitted
}

// Controller is a live lock manager driven by one of the paper's
// schedulers. Create with New; safe for concurrent use.
type Controller struct {
	nshards int
	shards  []*lshard
	label   string
	epoch   time.Time
	closed  atomic.Bool

	retryDelay  time.Duration
	backoffBase time.Duration // 0 = fixed retryDelay
	backoffMax  time.Duration
	watchdog    time.Duration // 0 = no watchdog
	inj         *fault.Injector
	observer    obs.Observer
	onGrant     func(t *txn.T, step int)
	onCommit    func(t *txn.T)

	// progress counts scheduler-state changes for the watchdog. It is
	// atomic — every shard bumps it lock-free — so watchdog liveness
	// accounting never funnels the shards through a shared lock.
	progress atomic.Uint64

	// topo/place model the data-node layout for CrashNode (zero/nil
	// without WithTopology). place is mutated only by CrashNode, which
	// holds every shard lock, and read under at least one shard lock —
	// so per-shard readers always see a consistent placement.
	topo  machine.Config
	place *machine.Placement

	// Durable dependency logging (WithWAL/WithWALLog, see wal.go):
	// walDir is the configured directory, wal the open log (owned when
	// walOwned), walErr the sticky first failure — open or IO — that
	// makes later admissions fail instead of running unlogged. walErr
	// has its own mutex: WAL failures surface from fsync paths that run
	// outside any shard lock. Lock order: shard locks before walMu.
	walDir   string
	wal      *wal.Log
	walOwned bool
	walMu    sync.Mutex
	walErr   error

	// Heap-file storage (WithStorage, see storage.go): granted steps
	// scan real pages, commits apply staged effect tuples after the WAL
	// force. storeErr is the sticky first failure on a durably committed
	// transaction's apply path — the commit stands, later storage-backed
	// work fails fast. Lock order: shard locks before storeMu.
	store    *storage.Store
	storeMu  sync.Mutex
	storeErr error

	stopWatch chan struct{}
	watchWG   sync.WaitGroup

	// Epoch-batch state (WithBatchWindow, see epoch.go): window length,
	// cluster-dispatch worker count, the open window's submissions, and
	// the collector goroutine's lifecycle.
	batchWindow  time.Duration
	epochWorkers int
	epochMu      sync.Mutex
	epochBuf     []*submission
	epochClosed  bool
	stopEpoch    chan struct{}
	epochWG      sync.WaitGroup
}

// lshard is one shard of the controller's hot path: a slice of the
// partition space (ownership hashing, see shardOf) with its own mutex,
// scheduler instance — lock table, WTPG, admission policy — wake
// channel, retry-jitter RNG and counters. A transaction's control state
// (started/blocked/doomed/resident/walNode) lives on its *home* shard,
// the lowest-indexed shard its footprint touches; for the single-shard
// common case that is also the only shard that ever schedules it.
type lshard struct {
	idx  int
	mu   sync.Mutex
	sch  sched.Scheduler
	wake chan struct{}
	rng  *rand.Rand // jitter source; guarded by mu

	// started maps each admitted transaction homed here to its admission
	// time (drives Stats.Active and commit-event response times).
	// blocked tracks the admitted transactions currently parked in
	// Acquire (candidates for a watchdog abort); doomed carries the
	// error a watchdog- or crash-aborted transaction finds at its next
	// Acquire loop (or, for a crash, at its Commit); resident is the
	// node-crash bookkeeping; walNode remembers which per-node log the
	// transaction's Begin record went to. waiters counts goroutines
	// parked in a retry wait against this shard; stats holds this
	// shard's partial counters (summed by Controller.Stats).
	started  map[txn.ID]event.Time
	blocked  map[txn.ID]event.Time
	doomed   map[txn.ID]error
	resident map[txn.ID]*residency
	walNode  map[txn.ID]int
	waiters  int
	stats    Stats
}

// ErrClosed is returned when the controller has been shut down.
var ErrClosed = errors.New("live: controller closed")

// ErrWatchdogAborted is returned from Acquire (and Run) when the
// no-progress watchdog force-aborted the transaction to break a stall.
// The transaction's locks are released; the caller may resubmit it.
var ErrWatchdogAborted = errors.New("live: aborted by no-progress watchdog")

// ErrNodeCrashed is returned from Acquire, Commit or Run when a node
// crash (CrashNode) destroyed the transaction's partial bulk results:
// the objects it reported since its last lock grant lived on the dead
// node, so the transaction cannot commit and aborts instead. The caller
// may resubmit it against the re-homed topology.
var ErrNodeCrashed = errors.New("live: aborted: partial bulk work lost in a node crash")

// residency is the node-crash bookkeeping for one admitted transaction:
// the last granted step, the node its partition was homed on at grant
// time, and the objects reported since the grant. The crash window of a
// step extends until the *next* grant — the controller cannot see the
// caller's work function return, only the next Acquire — so work
// reported between a step's end and the next grant still counts against
// the old step's node (documented in docs/ROBUSTNESS.md §8).
type residency struct {
	step int
	part txn.PartitionID
	node int
	work float64
}

// New builds a controller around a scheduler factory, e.g.
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100})
//
// The CPU-cost fields of Costs are ignored (decisions take however long
// they take); KeepTime still bounds W/E cache staleness, measured in
// wall-clock milliseconds.
func New(factory sched.Factory, costs sched.Costs, opts ...Option) *Controller {
	c := &Controller{
		nshards:    1,
		epoch:      time.Now(),
		retryDelay: 20 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.topo.NumNodes > 0 {
		c.place = machine.NewPlacement(c.topo)
	}
	if c.wal == nil && c.walDir != "" {
		nodes := 1
		if c.topo.NumNodes > 0 {
			nodes = c.topo.NumNodes
		}
		if l, err := wal.Open(c.walDir, nodes); err != nil {
			c.walErr = err // sticky; surfaces from the first Admit
		} else {
			c.wal = l
			c.walOwned = true
		}
	}
	seed := time.Now().UnixNano()
	c.shards = make([]*lshard, c.nshards)
	for i := range c.shards {
		sh := &lshard{
			idx:      i,
			wake:     make(chan struct{}),
			rng:      rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9)),
			started:  make(map[txn.ID]event.Time),
			blocked:  make(map[txn.ID]event.Time),
			doomed:   make(map[txn.ID]error),
			resident: make(map[txn.ID]*residency),
		}
		if c.wal != nil {
			sh.walNode = make(map[txn.ID]int)
		}
		s := factory.New(costs)
		if i == 0 {
			c.label = s.Name()
		}
		if c.observer != nil {
			s = sched.Observed(s, shardTagged{o: c.observer, shard: i})
		}
		sh.sch = s
		c.shards[i] = sh
	}
	c.storeBind()
	if c.watchdog > 0 {
		c.stopWatch = make(chan struct{})
		c.watchWG.Add(1)
		go c.watchdogLoop()
	}
	if c.batchWindow > 0 {
		if c.epochWorkers <= 0 {
			c.epochWorkers = defaultEpochWorkers()
		}
		c.stopEpoch = make(chan struct{})
		c.epochWG.Add(1)
		go c.epochLoop()
	}
	return c
}

// NewWithOptions builds a controller from the legacy Options struct.
//
// Deprecated: use New with functional options.
func NewWithOptions(factory sched.Factory, costs sched.Costs, opts Options) *Controller {
	return New(factory, costs,
		WithRetryDelay(opts.RetryDelay),
		WithGrantHook(opts.OnGrant),
		WithCommitHook(opts.OnCommit))
}

// Label returns the scheduler name stamped on the controller's trace
// events (the obs.Metrics lookup key).
func (c *Controller) Label() string { return c.label }

// now maps wall time onto the scheduler's clock (ms since start).
func (c *Controller) now() event.Time {
	return event.Time(time.Since(c.epoch).Milliseconds())
}

// emit sends one trace event. The obs sinks are safe for concurrent
// use, so no controller lock is needed; shard locks held by callers
// keep per-shard event order aligned with decision order.
func (c *Controller) emit(e obs.Event) {
	if c.observer == nil {
		return
	}
	e.Sched = c.label
	e.WallNS = time.Now().UnixNano()
	c.observer.Observe(e)
}

// emitShard sends one trace event tagged with the emitting shard.
func (c *Controller) emitShard(shard int, e obs.Event) {
	e.Shard = shard
	c.emit(e)
}

// Stats returns a consistent snapshot of the lifetime counters: all
// shard locks are held while the partials are summed.
func (c *Controller) Stats() Stats {
	c.lockAll()
	defer c.unlockAll()
	var s Stats
	for _, sh := range c.shards {
		s.add(sh.stats)
		s.Active += len(sh.started)
	}
	return s
}

// CheckInvariants runs every shard scheduler's internal consistency
// checks (no conflicting lock holders, acyclic WTPG) under all shard
// locks. The chaos tests call it after every injected fault.
func (c *Controller) CheckInvariants() error {
	c.lockAll()
	defer c.unlockAll()
	for _, sh := range c.shards {
		if ci, ok := sh.sch.(interface{ CheckInvariants() error }); ok {
			if err := ci.CheckInvariants(); err != nil {
				if c.nshards > 1 {
					return fmt.Errorf("live: shard %d: %w", sh.idx, err)
				}
				return err
			}
		}
	}
	return nil
}

// Close shuts the controller down; subsequent or blocked operations
// return ErrClosed. The watchdog goroutine, if any, is joined.
func (c *Controller) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		close(sh.wake)
		sh.mu.Unlock()
	}
	if c.stopWatch != nil {
		close(c.stopWatch)
		c.watchWG.Wait()
	}
	if c.stopEpoch != nil {
		close(c.stopEpoch)
		c.epochWG.Wait()
	}
	if c.walOwned && c.wal != nil {
		c.wal.Close()
	}
}

// broadcastLocked wakes every waiter parked on sh. Callers must hold
// sh.mu. After Close the (already closed) channel is left alone.
func (c *Controller) broadcastLocked(sh *lshard) {
	if c.closed.Load() {
		return
	}
	close(sh.wake)
	sh.wake = make(chan struct{})
}

// bumpProgress records one unit of scheduler progress for the watchdog.
func (c *Controller) bumpProgress() { c.progress.Add(1) }

// retryBase computes the pre-jitter delay for the attempt-th
// resubmission (0-based): the fixed retry delay, or the exponential
// term of WithBackoff. The uniform jitter is applied in awaitOn, under
// the shard lock, from the shard's own RNG.
func (c *Controller) retryBase(attempt int) time.Duration {
	if c.backoffBase <= 0 {
		return c.retryDelay
	}
	d := c.backoffBase
	for i := 0; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	return d
}

// awaitOn waits on a wake channel captured earlier (atomically with the
// refusal it follows), the retry delay for this attempt, or ctx. The
// waiter is registered on sh — the shard whose commit broadcast it
// waits for — and the backoff jitter draws from sh's RNG inside the
// same critical section, so jitter costs no extra lock acquisition and
// never contends across shards. When t is non-nil the transaction is
// registered as blocked for the duration of the wait, making it a
// candidate for a watchdog abort.
func (c *Controller) awaitOn(ctx context.Context, ch <-chan struct{}, sh *lshard, t *txn.T, attempt int) error {
	d := c.retryBase(attempt)
	sh.mu.Lock()
	if c.closed.Load() {
		sh.mu.Unlock()
		return ErrClosed
	}
	sh.stats.Retries++
	sh.waiters++
	if t != nil {
		sh.blocked[t.ID] = sh.started[t.ID]
	}
	if c.backoffBase > 0 {
		if half := d / 2; half > 0 {
			d = half + time.Duration(sh.rng.Int63n(int64(half)+1))
		}
	}
	sh.mu.Unlock()
	defer func() {
		sh.mu.Lock()
		sh.waiters--
		if t != nil {
			delete(sh.blocked, t.ID)
		}
		sh.mu.Unlock()
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports completed work to the scheduler, adjusting the
// transaction's WTPG weight (the §3.1 object messages). Step work
// functions receive one.
type Progress func(objects float64)

// Run executes one declared transaction: admission, then each step under
// its lock, then commit. The work callback runs for every step while the
// step's lock is held; it receives the step index and a Progress
// callback for weight accounting. A non-nil work error aborts the
// transaction: all locks are released (the work already done is the
// caller's to undo) and the error is returned. Context cancellation and
// a watchdog abort behave the same way. A panic in the work callback is
// recovered: the transaction aborts (locks released, other transactions
// unaffected) and Run returns the panic as an error.
func (c *Controller) Run(ctx context.Context, t *txn.T, work func(step int, p Progress) error) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	if err := c.Admit(ctx, t); err != nil {
		return err
	}
	return c.runAdmitted(ctx, t, work)
}

// runAdmitted is Run after admission: the step loop under locks, fault
// hooks, panic recovery, and commit. Split out so the epoch dispatcher
// (see epoch.go) can batch-admit a whole window first and then drive
// each admitted transaction through exactly this path.
func (c *Controller) runAdmitted(ctx context.Context, t *txn.T, work func(step int, p Progress) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c.Abort(t)
			if e, ok := r.(error); ok {
				err = fmt.Errorf("live: %v: recovered panic: %w", t.ID, e)
			} else {
				err = fmt.Errorf("live: %v: recovered panic: %v", t.ID, r)
			}
		}
	}()
	abortAt, hasAbort := c.inj.AbortAt(t)
	crashStep, hasCrash := c.inj.Crash(t)
	processed := 0.0
	for step := range t.Steps {
		if err := c.Acquire(ctx, t, step); err != nil {
			c.Abort(t)
			return err
		}
		c.slowIO(ctx, t, step)
		if err := c.storeStep(t, step); err != nil {
			c.Abort(t)
			return err
		}
		if hasCrash && step == crashStep {
			c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Op: "crash"})
			panic(fmt.Errorf("%w: txn %v step %d", fault.ErrInjectedCrash, t.ID, step))
		}
		if work != nil {
			progress := func(objects float64) {
				processed += objects
				c.ObjectDone(t, objects)
			}
			if err := work(step, progress); err != nil {
				c.Abort(t)
				return fmt.Errorf("live: %v step %d: %w", t.ID, step, err)
			}
		}
		if hasAbort && processed >= abortAt {
			c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Op: "abort"})
			c.Abort(t)
			return fmt.Errorf("%w: txn %v after %g objects", fault.ErrInjectedAbort, t.ID, processed)
		}
	}
	// Commit can itself refuse: a node crash after the last grant dooms
	// the transaction and the "commit" aborts it (ErrNodeCrashed).
	return c.Commit(t)
}

// slowIO pays the injected slow-partition delay for the acquired step,
// if any: (factor−1)·retryDelay of extra latency, context-aware.
func (c *Controller) slowIO(ctx context.Context, t *txn.T, step int) {
	f := c.inj.IOFactor(t.Steps[step].Part)
	if f <= 1 {
		return
	}
	c.emit(obs.Event{Kind: obs.KindFault, At: c.now(), Txn: t.ID, Step: step, Part: t.Steps[step].Part, Op: "slow-io"})
	timer := time.NewTimer(time.Duration(float64(c.retryDelay) * (f - 1)))
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// Admit blocks until the scheduler admits t (or ctx ends, or the
// controller closes). After a successful Admit the caller owns the
// transaction's lifecycle and must finish it with Commit or Abort.
// Most callers want Run instead. A transaction whose footprint spans
// shards routes through the spanning slow path, which acquires all of
// its locks atomically at admission (see admitSpanning).
func (c *Controller) Admit(ctx context.Context, t *txn.T) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	mask := c.shardMask(t)
	if spanning(mask) {
		return c.admitSpanning(ctx, t, mask)
	}
	sh := c.shards[homeShard(mask)]
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sh.mu.Lock()
		if c.closed.Load() {
			sh.mu.Unlock()
			return ErrClosed
		}
		now := c.now()
		if attempt == 0 {
			c.emitShard(sh.idx, obs.Event{Kind: obs.KindAdmit, At: now, Txn: t.ID})
		}
		if c.inj.RefuseAdmit(t.ID, attempt) {
			c.emitShard(sh.idx, obs.Event{Kind: obs.KindFault, At: now, Txn: t.ID, Op: "refuse-admit"})
			ch := sh.wake
			sh.mu.Unlock()
			if err := c.awaitOn(ctx, ch, sh, nil, attempt); err != nil {
				return err
			}
			continue
		}
		if err := c.walBroken(); err != nil {
			// Durability was requested and is broken (open or IO failure):
			// admitting would run the transaction unlogged.
			sh.mu.Unlock()
			return fmt.Errorf("live: wal: %w", err)
		}
		out := sh.sch.Admit(t, now)
		ch := sh.wake
		if out.Decision == sched.Granted {
			sh.stats.Admitted++
			sh.started[t.ID] = now
			c.bumpProgress()
			rec, logIt := c.walBeginLocked(sh, t, now, func() []txn.ID {
				return sched.Predecessors(sh.sch, t.ID)
			})
			sh.mu.Unlock()
			if logIt {
				// Write-ahead: the Begin record — footprint + resolved
				// predecessors — must be durable before the grant takes
				// effect. On failure the admission is rolled back.
				if err := c.walForce(rec); err != nil {
					c.Abort(t)
					return fmt.Errorf("live: wal: %w", err)
				}
			}
			return nil
		}
		sh.mu.Unlock()
		if err := c.awaitOn(ctx, ch, sh, nil, attempt); err != nil {
			return err
		}
	}
}

// Acquire blocks until the lock needed by step of t is granted (or ctx
// ends, the controller closes, or the watchdog force-aborts t — then
// ErrWatchdogAborted). Valid only between Admit and Commit/Abort. For
// a spanning transaction every lock was already granted at admission,
// so Acquire only performs the per-step bookkeeping and never blocks.
func (c *Controller) Acquire(ctx context.Context, t *txn.T, step int) error {
	mask := c.shardMask(t)
	home := c.shards[homeShard(mask)]
	span := spanning(mask)
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		home.mu.Lock()
		if c.closed.Load() {
			home.mu.Unlock()
			return ErrClosed
		}
		if err := home.doomed[t.ID]; err != nil {
			delete(home.doomed, t.ID)
			home.mu.Unlock()
			return err
		}
		now := c.now()
		part := t.Steps[step].Part
		stepShard := c.shardOf(part)
		if attempt == 0 {
			c.emitShard(stepShard, obs.Event{Kind: obs.KindRequest, At: now, Txn: t.ID, Step: step, Part: part})
		}
		if span {
			// The lock was granted at admission; record the step's
			// residency (the node-crash window moves to this step) and
			// count the grant.
			home.stats.Granted++
			c.bumpProgress()
			if c.place != nil {
				home.resident[t.ID] = &residency{step: step, part: part, node: c.place.NodeOf(part)}
			}
			home.mu.Unlock()
			if c.onGrant != nil {
				c.onGrant(t, step)
			}
			return nil
		}
		out := home.sch.Request(t, step, now)
		// Capture the wake channel under the same critical section as the
		// refused decision: a commit between the decision and the wait
		// would otherwise be missed, costing a full retry delay.
		ch := home.wake
		if out.Decision == sched.Granted {
			home.stats.Granted++
			c.bumpProgress()
			if c.place != nil {
				home.resident[t.ID] = &residency{step: step, part: part, node: c.place.NodeOf(part)}
			}
		}
		home.mu.Unlock()
		if out.Decision == sched.Granted {
			if c.onGrant != nil {
				c.onGrant(t, step)
			}
			return nil
		}
		// Blocked and Delayed both wait for the next commit broadcast or
		// the retry delay; the scheduler re-decides on resubmission. The
		// wait registers t as blocked — a watchdog-abort candidate.
		if err := c.awaitOn(ctx, ch, home, t, attempt); err != nil {
			return err
		}
	}
}

// ObjectDone reports completed work for an admitted transaction — the
// §3.1 weight-adjustment message behind the Progress callback. The
// weight adjustment lands on the shard owning the partition of the
// transaction's current step (for a spanning transaction, that shard's
// WTPG holds the corresponding projected declaration).
func (c *Controller) ObjectDone(t *txn.T, objects float64) {
	mask := c.shardMask(t)
	home := c.shards[homeShard(mask)]
	home.mu.Lock()
	now := c.now()
	target := home
	r := home.resident[t.ID]
	if r != nil {
		r.work += objects
		if sh := c.shardOf(r.part); sh != home.idx {
			target = c.shards[sh]
		}
	}
	if target == home {
		home.sch.ObjectDone(t, objects, now)
	} else {
		// target.idx > home.idx always: home is the lowest shard of the
		// footprint, so this nesting respects the canonical lock order.
		target.mu.Lock()
		target.sch.ObjectDone(t, objects, now)
		target.mu.Unlock()
	}
	c.bumpProgress()
	c.emitShard(target.idx, obs.Event{Kind: obs.KindObjectDone, At: now, Txn: t.ID, Objects: objects})
	home.mu.Unlock()
}

// Commit finishes an admitted transaction: all its locks drop and
// waiters wake. It returns an error for a transaction the controller
// does not consider admitted (double finish, never admitted) — and,
// wrapped as ErrNodeCrashed, for a transaction doomed by a node crash
// after its last lock grant: its partial bulk results are gone, so the
// "commit" runs the abort-recovery path instead and the caller must
// treat the transaction as aborted.
func (c *Controller) Commit(t *txn.T) error {
	if err := c.finish(t, true); err != nil {
		return err
	}
	if c.onCommit != nil {
		c.onCommit(t)
	}
	return nil
}

// Abort abandons an admitted transaction (work error, cancellation,
// recovered panic, watchdog): its locks are released through the
// scheduler's abort-recovery path — unresolved conflicting-edges
// retracted, resolved precedence spliced past it — and waiters wake.
// Undoing completed work is the caller's responsibility. It returns an
// error only for a transaction the controller does not consider
// admitted.
func (c *Controller) Abort(t *txn.T) error {
	return c.finish(t, false)
}

// finish runs in three phases so the commit record's fsync never stalls
// the shards' critical sections: (1) under the footprint's shard locks,
// claim the finish — validate, apply the doom check, remove t from the
// tracking maps so no concurrent finish/crash-doom can touch it, and
// build the completion record while t is still in the WTPG(s); (2)
// outside the locks, make a commit record durable (group-committed —
// aborts are appended unforced, a lost abort record re-aborts at
// recovery anyway); (3) under each shard's lock in canonical order,
// apply the completion to that shard's scheduler and wake its waiters.
// Without a WAL, phase 2 is empty.
func (c *Controller) finish(t *txn.T, committed bool) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	mask := c.shardMask(t)
	home := c.shards[homeShard(mask)]

	c.lockMask(mask)
	start, ok := home.started[t.ID]
	if !ok {
		c.unlockMask(mask)
		return fmt.Errorf("live: %v is not an admitted transaction", t.ID)
	}
	now := c.now()
	var doomErr error
	if committed {
		if err := home.doomed[t.ID]; err != nil {
			// Doomed after its last Acquire (node crash): committing would
			// publish bulk results that died with the node. Abort instead.
			committed = false
			doomErr = fmt.Errorf("live: %v: %w", t.ID, err)
		}
	}
	delete(home.started, t.ID)
	delete(home.doomed, t.ID)
	delete(home.resident, t.ID)
	rec, logIt := c.walCompletionLocked(home, t, committed, now, func() []txn.ID {
		if !spanning(mask) {
			return sched.Predecessors(home.sch, t.ID)
		}
		schs := make([]sched.Scheduler, 0, 2)
		c.eachShard(mask, func(sh *lshard) { schs = append(schs, sh.sch) })
		return sched.PredecessorsUnion(schs, t.ID)
	})
	c.unlockMask(mask)

	if c.wal != nil && committed && !logIt {
		// The WAL is attached but unusable (sticky walErr) or t's begin
		// was never logged: committing would succeed in memory with no
		// durable record behind it — recovery would silently drop it. A
		// commit that cannot be logged is an abort.
		committed = false
		doomErr = fmt.Errorf("live: %v: wal unavailable, commit aborted", t.ID)
	}
	if logIt {
		if committed {
			// Write-ahead: the commit is not a commit until its record is
			// durable. On failure the transaction aborts instead — its
			// begin record stays completion-less and recovery re-aborts it.
			if err := c.walForce(rec); err != nil {
				committed = false
				doomErr = fmt.Errorf("live: %v: commit record not durable: %w", t.ID, err)
			}
		} else {
			c.walAppend(rec)
		}
	}
	// Storage follows the same write-ahead order: effects reach pages
	// only after the commit record is durable, and before phase 3 drops
	// the scheduler locks — the transaction still excludes every reader
	// of its partitions while its pages mutate. An abort (original or
	// flipped above) just discards the staged effects.
	if committed {
		c.storeApplyCommit(t)
	} else {
		c.storeDrop(t)
	}

	now = c.now()
	c.eachShard(mask, func(sh *lshard) {
		sh.mu.Lock()
		if committed {
			sh.sch.Commit(t, now)
		} else {
			sched.AbortTxn(sh.sch, t, now)
		}
		if sh == home {
			if committed {
				sh.stats.Committed++
			} else {
				sh.stats.Aborted++
			}
			e := obs.Event{Kind: obs.KindCommit, At: now, Txn: t.ID, RT: now - start}
			if !committed {
				e.Decision = "aborted"
			}
			c.emitShard(sh.idx, e)
		}
		c.broadcastLocked(sh)
		sh.mu.Unlock()
	})
	c.bumpProgress()
	return doomErr
}

// CrashNode kills one data node of the WithTopology layout: its
// partitions re-home to the survivors (mod-alive policy, Rehome events)
// and every admitted transaction whose last granted step lived there is
// triaged by the recoverability rule — no objects reported since the
// grant means nothing was lost (the transaction continues against the
// re-homed partition; a Requeue event records it), while reported
// objects mean partial bulk results died with the node, so the
// transaction is doomed: its next Acquire (or its Commit) returns
// ErrNodeCrashed and it aborts through the scheduler's recovery path.
// The triage runs under every shard lock — residency and doom live on
// each transaction's home shard — so it is atomic against all shards.
// Errors: no WithTopology, an unknown/already-dead node, or the last
// alive node.
func (c *Controller) CrashNode(node int) error {
	c.lockAll()
	defer c.unlockAll()
	if c.closed.Load() {
		return ErrClosed
	}
	if c.place == nil {
		return fmt.Errorf("live: CrashNode requires WithTopology")
	}
	if !c.place.Alive(node) {
		return fmt.Errorf("live: node %d is unknown or already dead", node)
	}
	if c.place.AliveCount() <= 1 {
		return fmt.Errorf("live: refusing to crash the last alive node %d", node)
	}
	now := c.now()
	c.shards[0].stats.NodeCrashes++
	c.emit(obs.Event{Kind: obs.KindNodeDown, At: now, Node: node})
	for _, rh := range c.place.Kill(node) {
		c.emit(obs.Event{Kind: obs.KindRehome, At: now, Part: rh.Part, FromNode: rh.From, Node: rh.To})
	}
	for _, sh := range c.shards {
		for id, r := range sh.resident {
			if r.node != node {
				continue
			}
			if r.work > 0 {
				sh.doomed[id] = ErrNodeCrashed
				c.shards[0].stats.CrashDoomed++
				c.emitShard(sh.idx, obs.Event{Kind: obs.KindFault, At: now, Txn: id, Step: r.step, Part: r.part, Op: "node-crash"})
				continue
			}
			to := c.place.NodeOf(r.part)
			r.node = to
			c.emitShard(sh.idx, obs.Event{Kind: obs.KindRequeue, At: now, Txn: id, Step: r.step, Part: r.part, FromNode: node, Node: to})
		}
	}
	// The triage itself is scheduler progress: parked waiters re-check
	// their doom on wake, and a stall the crash caused (or cured) must be
	// visible to the watchdog as movement, keeping Stalled/Recovered
	// symmetric when the requeue path — not the watchdog — unblocks a run.
	c.bumpProgress()
	for _, sh := range c.shards {
		c.broadcastLocked(sh)
	}
	return nil
}

// watchdogLoop is the no-progress watchdog (WithWatchdog): every period
// it compares the progress counter against the previous tick. A silent
// period with waiters present is a stall — first kick, then abort. The
// progress read is lock-free; only a silent deadline pays for the shard
// locks (victim selection must be atomic against every shard so a
// transaction that just unblocked is never doomed).
func (c *Controller) watchdogLoop() {
	defer c.watchWG.Done()
	ticker := time.NewTicker(c.watchdog)
	defer ticker.Stop()
	var lastProgress uint64
	kicked := false
	stalled := false
	for {
		select {
		case <-c.stopWatch:
			return
		case <-ticker.C:
		}
		if c.closed.Load() {
			return
		}
		if p := c.progress.Load(); p != lastProgress {
			lastProgress = p
			kicked = false
			if stalled {
				stalled = false
				sh := c.shards[0]
				sh.mu.Lock()
				sh.stats.Recovered++
				sh.mu.Unlock()
			}
			continue
		}
		c.lockAll()
		if c.closed.Load() {
			c.unlockAll()
			return
		}
		if p := c.progress.Load(); p != lastProgress {
			// Progress raced the lock acquisition; treat as a live tick.
			c.unlockAll()
			continue
		}
		active, waiters := 0, 0
		for _, sh := range c.shards {
			active += len(sh.started)
			waiters += sh.waiters
		}
		if active == 0 && waiters == 0 {
			// Idle, not stalled: nothing is waiting for progress.
			c.unlockAll()
			continue
		}
		if !stalled {
			// Count the *episode*, not every silent deadline it spans:
			// Stats.Recovered counts episodes that clear, and the pair must
			// stay symmetric however long the stall lasts and whoever cures
			// it (watchdog kick/abort or an external requeue).
			stalled = true
			c.shards[0].stats.Stalled++
		}
		if !kicked {
			// First silent deadline: re-broadcast. If the stall was a lost
			// wakeup (or everyone is sitting out a long backoff), this
			// alone cures it.
			kicked = true
			c.emit(obs.Event{Kind: obs.KindStall, At: c.now(), Op: "kick"})
		} else if victim, vsh, ok := c.youngestBlockedLocked(); ok {
			// Second consecutive silent deadline: force-abort the youngest
			// blocked transaction. Blocked means parked in Acquire — no
			// caller work is running, so releasing its locks is safe;
			// youngest means the least completed work is thrown away.
			vsh.doomed[victim] = ErrWatchdogAborted
			c.emitShard(vsh.idx, obs.Event{Kind: obs.KindStall, At: c.now(), Txn: victim, Op: "abort"})
		} else {
			c.emit(obs.Event{Kind: obs.KindStall, At: c.now(), Op: "kick"})
		}
		for _, sh := range c.shards {
			c.broadcastLocked(sh)
		}
		c.unlockAll()
	}
}

// youngestBlockedLocked picks the blocked transaction with the latest
// admission time across all shards (ties broken by higher ID for
// determinism) and the home shard it is blocked on. Callers must hold
// every shard lock.
func (c *Controller) youngestBlockedLocked() (txn.ID, *lshard, bool) {
	var best txn.ID
	var bestSh *lshard
	var bestAt event.Time
	found := false
	for _, sh := range c.shards {
		for id, at := range sh.blocked {
			if sh.doomed[id] != nil {
				continue // already sentenced, give it a tick to act
			}
			if !found || at > bestAt || (at == bestAt && id > best) {
				best, bestAt, bestSh, found = id, at, sh, true
			}
		}
	}
	return best, bestSh, found
}
