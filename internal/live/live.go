// Package live runs the paper's concurrency-control schedulers against
// real goroutines, turning the simulated control node into an in-process
// lock manager. Where package sim *models* a shared-nothing machine,
// live schedules actual work: each transaction is a goroutine that
// declares its steps up front, acquires each step's partition lock
// through the scheduler (CHAIN, K-WTPG, C2PL, ASL, …), runs caller code
// while holding it, and releases everything at commit.
//
// The controller serializes scheduler decisions under one mutex — the
// moral equivalent of the paper's centralized control node — and blocks
// refused requests on a broadcast channel that commit events close, plus
// the paper's fixed retry delay as a fallback. All the guarantees of the
// scheduler carry over: conflicting holders never coexist, schedules are
// conflict serializable, and no admitted transaction is ever aborted by
// the controller (cancellation is the caller's choice).
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/txn"
)

// Options tunes a Controller.
type Options struct {
	// RetryDelay is the paper's fixed resubmission delay for refused
	// admissions and policy-delayed requests (default 20 ms of wall
	// time; live workloads want faster retries than the simulated 500 ms
	// because ObjTime here is real work, usually far below 1 s).
	RetryDelay time.Duration
	// OnGrant, if set, observes every granted step (after the decision,
	// under no lock). OnCommit observes commits.
	OnGrant  func(t *txn.T, step int)
	OnCommit func(t *txn.T)
}

// Controller is a live lock manager driven by one of the paper's
// schedulers. Create with New; safe for concurrent use.
type Controller struct {
	mu     sync.Mutex
	sch    sched.Scheduler
	wake   chan struct{}
	epoch  time.Time
	opts   Options
	closed bool

	// Stats counters (atomic under mu).
	admitted, committed, retries uint64
}

// ErrClosed is returned when the controller has been shut down.
var ErrClosed = errors.New("live: controller closed")

// New builds a controller around a scheduler factory, e.g.
//
//	ctl := live.New(sched.KWTPGFactory(2), sched.Costs{KeepTime: 100}, live.Options{})
//
// The CPU-cost fields of Costs are ignored (decisions take however long
// they take); KeepTime still bounds W/E cache staleness, measured in
// wall-clock milliseconds.
func New(factory sched.Factory, costs sched.Costs, opts Options) *Controller {
	if opts.RetryDelay <= 0 {
		opts.RetryDelay = 20 * time.Millisecond
	}
	return &Controller{
		sch:   factory.New(costs),
		wake:  make(chan struct{}),
		epoch: time.Now(),
		opts:  opts,
	}
}

// now maps wall time onto the scheduler's clock (ms since start).
func (c *Controller) now() event.Time {
	return event.Time(time.Since(c.epoch).Milliseconds())
}

// Stats reports lifetime counters: admitted and committed transactions
// and the number of retry waits.
func (c *Controller) Stats() (admitted, committed, retries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted, c.committed, c.retries
}

// Close shuts the controller down; subsequent or blocked operations
// return ErrClosed.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.wake)
	}
}

// broadcast wakes every waiter. Callers must hold mu.
func (c *Controller) broadcast() {
	if c.closed {
		return
	}
	close(c.wake)
	c.wake = make(chan struct{})
}

// await blocks until a wake broadcast, the retry delay, or ctx ends.
func (c *Controller) await(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	ch := c.wake
	c.mu.Unlock()
	return c.awaitOn(ctx, ch)
}

// awaitOn waits on a wake channel captured earlier (atomically with the
// refusal it follows), the retry delay, or ctx.
func (c *Controller) awaitOn(ctx context.Context, ch <-chan struct{}) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.retries++
	c.mu.Unlock()
	timer := time.NewTimer(c.opts.RetryDelay)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Progress reports completed work to the scheduler, adjusting the
// transaction's WTPG weight (the §3.1 object messages). Step work
// functions receive one.
type Progress func(objects float64)

// Run executes one declared transaction: admission, then each step under
// its lock, then commit. The work callback runs for every step while the
// step's lock is held; it receives the step index and a Progress
// callback for weight accounting. A non-nil work error aborts the
// transaction: all locks are released (the work already done is the
// caller's to undo) and the error is returned. Context cancellation
// behaves the same way.
func (c *Controller) Run(ctx context.Context, t *txn.T, work func(step int, p Progress) error) error {
	if t == nil {
		return fmt.Errorf("live: nil transaction")
	}
	// Admission loop.
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		out := c.sch.Admit(t, c.now())
		if out.Decision == sched.Granted {
			c.admitted++
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		if err := c.await(ctx); err != nil {
			return err
		}
	}
	// Steps.
	for step := range t.Steps {
		if err := c.acquire(ctx, t, step); err != nil {
			c.release(t)
			return err
		}
		if c.opts.OnGrant != nil {
			c.opts.OnGrant(t, step)
		}
		progress := func(objects float64) {
			c.mu.Lock()
			c.sch.ObjectDone(t, objects, c.now())
			c.mu.Unlock()
		}
		if work != nil {
			if err := work(step, progress); err != nil {
				c.release(t)
				return fmt.Errorf("live: %v step %d: %w", t.ID, step, err)
			}
		}
	}
	c.release(t)
	if c.opts.OnCommit != nil {
		c.opts.OnCommit(t)
	}
	return nil
}

// acquire loops until the step's lock is granted.
func (c *Controller) acquire(ctx context.Context, t *txn.T, step int) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return ErrClosed
		}
		out := c.sch.Request(t, step, c.now())
		// Capture the wake channel under the same critical section as the
		// refused decision: a commit between the decision and the wait
		// would otherwise be missed, costing a full retry delay.
		ch := c.wake
		c.mu.Unlock()
		if out.Decision == sched.Granted {
			return nil
		}
		// Blocked and Delayed both wait for the next commit broadcast or
		// the retry delay; the scheduler re-decides on resubmission.
		if err := c.awaitOn(ctx, ch); err != nil {
			return err
		}
	}
}

// release commits/aborts t: all locks drop and waiters wake.
func (c *Controller) release(t *txn.T) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sch.Commit(t, c.now())
	c.committed++
	c.broadcast()
}
