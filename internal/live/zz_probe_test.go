package live

import (
	"context"
	"fmt"
	"testing"
	"time"

	"batsched/internal/txn"
)

func TestProbeEpochOrderInversion(t *testing.T) {
	shapes := map[string][]float64{
		"big-small":      {50, 1},
		"small-big":      {1, 50},
		"mid-big-small":  {10, 50, 1},
		"asc":            {1, 10, 50},
		"desc":           {50, 10, 1},
		"equal":          {5, 5, 5},
		"vee":            {50, 1, 50},
	}
	for name, costs := range shapes {
		name, costs := name, costs
		t.Run(name, func(t *testing.T) {
			ctl := epochCtl(WithEpochWorkers(1))
			defer ctl.Close()
			ts := make([]*txn.T, len(costs))
			for i, c := range costs {
				ts[i] = txn.New(txn.ID(i+1), []txn.Step{w(0, c)})
			}
			done := make(chan []error, 1)
			go func() {
				done <- ctl.RunBatch(context.Background(), ts, func(tx *txn.T, step int, p Progress) error {
					p(tx.Steps[step].Cost)
					return nil
				})
			}()
			select {
			case errs := <-done:
				for i, err := range errs {
					if err != nil {
						t.Logf("txn %d err: %v", i, err)
					}
				}
			case <-time.After(3 * time.Second):
				t.Fatal(fmt.Sprintf("RunBatch hung for shape %s", name))
			}
		})
	}
}
