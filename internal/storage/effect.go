package storage

import (
	"encoding/binary"
	"sync"

	"batsched/internal/txn"
	"batsched/internal/wal"
)

// The deterministic effect model (docs/STORAGE.md): every committed
// write step s_i of transaction T inserts exactly one tuple into s_i's
// partition, and the tuple is a pure function of (T, i). The final
// content of every partition is therefore a pure function of the
// committed set — the property the differential and crash batteries
// check — and re-applying an effect is detectable (the key is already
// present), which makes WAL redo idempotent.

// EffectKey identifies one committed write effect.
type EffectKey struct {
	Txn  txn.ID
	Step int
}

const effectHeaderLen = 16

// EncodeEffect builds the effect tuple for (id, step) on part, padded
// to size bytes with a deterministic filler.
func EncodeEffect(id txn.ID, step int, part txn.PartitionID, size int) []byte {
	if size < effectHeaderLen {
		size = effectHeaderLen
	}
	b := make([]byte, size)
	putEffect(b, id, step, part)
	return b
}

// putEffect writes the effect tuple into b, overwriting every byte (so
// a reused scratch buffer never leaks stale filler).
func putEffect(b []byte, id txn.ID, step int, part txn.PartitionID) {
	binary.LittleEndian.PutUint64(b, uint64(id))
	binary.LittleEndian.PutUint32(b[8:], uint32(step))
	binary.LittleEndian.PutUint32(b[12:], uint32(part))
	for i := effectHeaderLen; i < len(b); i++ {
		b[i] = byte(uint64(id)*2654435761 + uint64(step)*40503 + uint64(i))
	}
}

// DecodeEffect parses an effect tuple's key and partition.
func DecodeEffect(b []byte) (EffectKey, txn.PartitionID, bool) {
	if len(b) < effectHeaderLen {
		return EffectKey{}, 0, false
	}
	return EffectKey{
			Txn:  txn.ID(binary.LittleEndian.Uint64(b)),
			Step: int(binary.LittleEndian.Uint32(b[8:])),
		},
		txn.PartitionID(binary.LittleEndian.Uint32(b[12:])),
		true
}

// stagedPool recycles staged-effect slices so the stage/commit cycle of
// the live hot path allocates nothing in steady state.
var stagedPool = sync.Pool{New: func() any { return new([]stagedEffect) }}

// Stage records that (id, step) will insert its effect tuple into part
// if — and only if — the transaction commits. Nothing touches a page
// until ApplyCommit: uncommitted effects are never written, so aborts
// need no undo (a no-steal policy at transaction granularity).
func (st *Store) Stage(id txn.ID, step int, part txn.PartitionID) {
	st.stageMu.Lock()
	lp := st.staged[id]
	if lp == nil {
		lp = stagedPool.Get().(*[]stagedEffect)
		*lp = (*lp)[:0]
		st.staged[id] = lp
	}
	*lp = append(*lp, stagedEffect{step: step, part: part})
	st.stageMu.Unlock()
}

// StagedCount returns the number of effects currently staged for id.
func (st *Store) StagedCount(id txn.ID) int {
	st.stageMu.Lock()
	defer st.stageMu.Unlock()
	if lp := st.staged[id]; lp != nil {
		return len(*lp)
	}
	return 0
}

// ApplyCommit applies id's staged effects to their partitions. Without
// a background flusher the touched partitions' dirty pages are written
// back synchronously (the PR 9 contract); with WithBackgroundFlush the
// write-back is the flusher's job and commit only mutates cached pages.
// Either way the caller MUST have forced the transaction's WAL commit
// record first (the write-ahead contract: pages carrying an effect
// never reach disk before the record that makes the effect redoable —
// with the flusher this holds because pages are only dirtied here,
// after that force), and must still hold the transaction's partition
// locks (the apply mutates pages other transactions may otherwise be
// scanning).
func (st *Store) ApplyCommit(id txn.ID) error {
	st.stageMu.Lock()
	lp := st.staged[id]
	delete(st.staged, id)
	st.stageMu.Unlock()
	if lp == nil {
		return nil
	}
	effs := *lp
	var scratch [64]byte
	buf := scratch[:]
	if st.effectBytes > len(buf) {
		buf = make([]byte, st.effectBytes)
	}
	buf = buf[:st.effectBytes]
	for _, e := range effs {
		putEffect(buf, id, e.step, e.part)
		if _, err := st.Insert(e.part, buf); err != nil {
			stagedPool.Put(lp)
			return err
		}
	}
	if st.flushEvery <= 0 {
		for i, e := range effs {
			dup := false
			for _, prev := range effs[:i] {
				if prev.part == e.part {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if err := st.FlushPartition(e.part); err != nil {
				stagedPool.Put(lp)
				return err
			}
		}
	}
	stagedPool.Put(lp)
	return nil
}

// Drop discards id's staged effects (abort, or end-of-run cleanup for
// transactions still in flight).
func (st *Store) Drop(id txn.ID) {
	st.stageMu.Lock()
	if lp := st.staged[id]; lp != nil {
		delete(st.staged, id)
		stagedPool.Put(lp)
	}
	st.stageMu.Unlock()
}

// Keys scans a partition and returns the set of effect keys present
// (tuples that do not decode as effects are ignored).
func (st *Store) Keys(part txn.PartitionID) (map[EffectKey]bool, error) {
	keys := make(map[EffectKey]bool)
	it := st.Scan(part)
	for {
		tup, _, ok := it.Next()
		if !ok {
			break
		}
		if k, _, ok := DecodeEffect(tup); ok {
			keys[k] = true
		}
	}
	err := it.Err()
	it.recycle()
	return keys, err
}

// Redo re-applies one committed transaction's missing write effects
// from its WAL Begin record (wal.Replay's apply callback shape, wave
// parameter dropped). Effects already present — the page survived the
// crash — are skipped: redo is idempotent. Safe for the concurrent
// calls a replay wave makes; the caller flushes once afterwards.
func (st *Store) Redo(begin wal.Record) error {
	for i, s := range begin.Steps {
		if s.Mode != txn.Write {
			continue
		}
		key := EffectKey{Txn: begin.Txn, Step: i}
		st.redoMu.Lock()
		present := st.redoKeys[s.Part]
		if present == nil {
			var err error
			if present, err = st.Keys(s.Part); err != nil {
				st.redoMu.Unlock()
				return err
			}
			st.redoKeys[s.Part] = present
		}
		if !present[key] {
			present[key] = true
			if _, err := st.Insert(s.Part, EncodeEffect(begin.Txn, i, s.Part, st.effectBytes)); err != nil {
				st.redoMu.Unlock()
				return err
			}
		}
		st.redoMu.Unlock()
	}
	return nil
}
