package storage

import (
	"encoding/binary"

	"batsched/internal/txn"
	"batsched/internal/wal"
)

// The deterministic effect model (docs/STORAGE.md): every committed
// write step s_i of transaction T inserts exactly one tuple into s_i's
// partition, and the tuple is a pure function of (T, i). The final
// content of every partition is therefore a pure function of the
// committed set — the property the differential and crash batteries
// check — and re-applying an effect is detectable (the key is already
// present), which makes WAL redo idempotent.

// EffectKey identifies one committed write effect.
type EffectKey struct {
	Txn  txn.ID
	Step int
}

const effectHeaderLen = 16

// EncodeEffect builds the effect tuple for (id, step) on part, padded
// to size bytes with a deterministic filler.
func EncodeEffect(id txn.ID, step int, part txn.PartitionID, size int) []byte {
	if size < effectHeaderLen {
		size = effectHeaderLen
	}
	b := make([]byte, size)
	binary.LittleEndian.PutUint64(b, uint64(id))
	binary.LittleEndian.PutUint32(b[8:], uint32(step))
	binary.LittleEndian.PutUint32(b[12:], uint32(part))
	for i := effectHeaderLen; i < size; i++ {
		b[i] = byte(uint64(id)*2654435761 + uint64(step)*40503 + uint64(i))
	}
	return b
}

// DecodeEffect parses an effect tuple's key and partition.
func DecodeEffect(b []byte) (EffectKey, txn.PartitionID, bool) {
	if len(b) < effectHeaderLen {
		return EffectKey{}, 0, false
	}
	return EffectKey{
			Txn:  txn.ID(binary.LittleEndian.Uint64(b)),
			Step: int(binary.LittleEndian.Uint32(b[8:])),
		},
		txn.PartitionID(binary.LittleEndian.Uint32(b[12:])),
		true
}

// Stage records that (id, step) will insert its effect tuple into part
// if — and only if — the transaction commits. Nothing touches a page
// until ApplyCommit: uncommitted effects are never written, so aborts
// need no undo (a no-steal policy at transaction granularity).
func (st *Store) Stage(id txn.ID, step int, part txn.PartitionID) {
	st.stageMu.Lock()
	st.staged[id] = append(st.staged[id], stagedEffect{step: step, part: part})
	st.stageMu.Unlock()
}

// StagedCount returns the number of effects currently staged for id.
func (st *Store) StagedCount(id txn.ID) int {
	st.stageMu.Lock()
	defer st.stageMu.Unlock()
	return len(st.staged[id])
}

// ApplyCommit applies id's staged effects to their partitions and
// flushes the touched partitions' dirty pages. The caller MUST have
// forced the transaction's WAL commit record first (the write-ahead
// contract: pages carrying an effect never reach disk before the
// record that makes the effect redoable), and must still hold the
// transaction's partition locks (the apply mutates pages other
// transactions may otherwise be scanning).
func (st *Store) ApplyCommit(id txn.ID) error {
	st.stageMu.Lock()
	effs := st.staged[id]
	delete(st.staged, id)
	st.stageMu.Unlock()
	touched := make(map[txn.PartitionID]bool, len(effs))
	for _, e := range effs {
		if _, err := st.Insert(e.part, EncodeEffect(id, e.step, e.part, st.effectBytes)); err != nil {
			return err
		}
		touched[e.part] = true
	}
	for part := range touched {
		if err := st.FlushPartition(part); err != nil {
			return err
		}
	}
	return nil
}

// Drop discards id's staged effects (abort, or end-of-run cleanup for
// transactions still in flight).
func (st *Store) Drop(id txn.ID) {
	st.stageMu.Lock()
	delete(st.staged, id)
	st.stageMu.Unlock()
}

// Keys scans a partition and returns the set of effect keys present
// (tuples that do not decode as effects are ignored).
func (st *Store) Keys(part txn.PartitionID) (map[EffectKey]bool, error) {
	keys := make(map[EffectKey]bool)
	it := st.Scan(part)
	for {
		tup, _, ok := it.Next()
		if !ok {
			break
		}
		if k, _, ok := DecodeEffect(tup); ok {
			keys[k] = true
		}
	}
	it.Close()
	return keys, it.Err()
}

// Redo re-applies one committed transaction's missing write effects
// from its WAL Begin record (wal.Replay's apply callback shape, wave
// parameter dropped). Effects already present — the page survived the
// crash — are skipped: redo is idempotent. Safe for the concurrent
// calls a replay wave makes; the caller flushes once afterwards.
func (st *Store) Redo(begin wal.Record) error {
	for i, s := range begin.Steps {
		if s.Mode != txn.Write {
			continue
		}
		key := EffectKey{Txn: begin.Txn, Step: i}
		st.redoMu.Lock()
		present := st.redoKeys[s.Part]
		if present == nil {
			var err error
			if present, err = st.Keys(s.Part); err != nil {
				st.redoMu.Unlock()
				return err
			}
			st.redoKeys[s.Part] = present
		}
		if !present[key] {
			present[key] = true
			if _, err := st.Insert(s.Part, EncodeEffect(begin.Txn, i, s.Part, st.effectBytes)); err != nil {
				st.redoMu.Unlock()
				return err
			}
		}
		st.redoMu.Unlock()
	}
	return nil
}
