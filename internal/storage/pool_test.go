package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"batsched/internal/txn"
)

// memIO is an in-memory pageIO backend for pool-only tests.
type memIO struct {
	mu       sync.Mutex
	pages    map[pageKey][]byte
	reads    int
	writes   int
	pageSize int
}

func newMemIO(pageSize int) *memIO {
	return &memIO{pages: map[pageKey][]byte{}, pageSize: pageSize}
}

func (m *memIO) readPage(k pageKey, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reads++
	src, ok := m.pages[k]
	if !ok {
		return fmt.Errorf("memIO: no page %v", k)
	}
	copy(buf, src)
	return nil
}

func (m *memIO) writePage(k pageKey, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes++
	m.pages[k] = append([]byte(nil), buf...)
	return nil
}

func (m *memIO) seed(k pageKey) {
	buf := make([]byte, m.pageSize)
	p := InitPage(buf, k.page)
	p.Insert(EncodeEffect(txn.ID(k.page), int(k.part), k.part, 32))
	p.Seal()
	m.mu.Lock()
	m.pages[k] = buf
	m.mu.Unlock()
}

// TestPoolPinAccounting checks that pins never go negative (Unpin of an
// unpinned frame panics) and that pinned counts track Get/Unpin pairs.
func TestPoolPinAccounting(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 4, 512)
	k := pageKey{0, 0}
	io.seed(k)
	f1, err := pool.Get(k, false)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := pool.Get(k, false)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("same key resolved to two frames")
	}
	if st := pool.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned=%d after double Get, want 1 frame", st.Pinned)
	}
	pool.Unpin(f1, false)
	pool.Unpin(f2, false)
	if st := pool.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned=%d after matching Unpins, want 0", st.Pinned)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned frame did not panic")
		}
	}()
	pool.Unpin(f1, false)
}

// TestPoolNoEvictionOfPinned pins every frame, then asks for one more
// page: the pool must refuse (exhausted) rather than evict a pinned
// frame.
func TestPoolNoEvictionOfPinned(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 4, 512)
	var held []*Frame
	for i := 0; i < 4; i++ {
		k := pageKey{0, uint32(i)}
		io.seed(k)
		f, err := pool.Get(k, false)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, f)
	}
	k := pageKey{0, 99}
	io.seed(k)
	if _, err := pool.Get(k, false); err == nil {
		t.Fatal("Get succeeded with every frame pinned — a pinned page was evicted")
	}
	// Every originally pinned frame must still hold its page.
	for i, f := range held {
		if !f.valid || f.key != (pageKey{0, uint32(i)}) || f.pins != 1 {
			t.Fatalf("frame %d was disturbed: %+v", i, f.key)
		}
	}
	pool.Unpin(held[0], false)
	if _, err := pool.Get(k, false); err != nil {
		t.Fatalf("Get still failing after an Unpin freed a frame: %v", err)
	}
}

// TestPoolDirtyWriteBack checks that evicting a dirty frame writes the
// page back through the IO layer, and that a clean eviction does not.
func TestPoolDirtyWriteBack(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 2, 512)
	ka, kb, kc := pageKey{0, 0}, pageKey{0, 1}, pageKey{0, 2}
	io.seed(ka)
	io.seed(kb)
	io.seed(kc)
	fa, _ := pool.Get(ka, false)
	pg := fa.Page()
	pg.Insert([]byte("dirtied"))
	pool.Unpin(fa, true)
	fb, _ := pool.Get(kb, false)
	pool.Unpin(fb, false)
	w0 := io.writes
	fc, _ := pool.Get(kc, false) // evicts one of a/b
	pool.Unpin(fc, false)
	_, _ = pool.Get(ka, false) // touch a again — forces the other out too
	if io.writes != w0+1 {
		t.Fatalf("expected exactly 1 write-back for the dirty page, got %d", io.writes-w0)
	}
	// The written-back image must contain the dirtied tuple.
	io.mu.Lock()
	img := io.pages[ka]
	io.mu.Unlock()
	p, err := LoadPage(img)
	if err != nil {
		t.Fatalf("written-back page invalid: %v", err)
	}
	found := false
	for i := 0; i < p.NumSlots(); i++ {
		if tup, ok := p.Get(i); ok && string(tup) == "dirtied" {
			found = true
		}
	}
	if !found {
		t.Fatal("write-back lost the dirty tuple")
	}
}

// TestPoolHitRateConsistency checks the pool's own counters: hits +
// misses == total Gets, misses == backend reads, and Stats().HitRate()
// agrees with the raw counts.
func TestPoolHitRateConsistency(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 8, 512)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		io.seed(pageKey{0, uint32(i)})
	}
	gets := 0
	for i := 0; i < 2000; i++ {
		k := pageKey{0, uint32(rng.Intn(16))}
		f, err := pool.Get(k, false)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f, false)
		gets++
	}
	st := pool.Stats()
	if st.Hits+st.Misses != uint64(gets) {
		t.Fatalf("hits(%d)+misses(%d) != gets(%d)", st.Hits, st.Misses, gets)
	}
	if int(st.Misses) != io.reads {
		t.Fatalf("misses=%d but backend reads=%d", st.Misses, io.reads)
	}
	if st.BytesRead != st.Misses*512 {
		t.Fatalf("BytesRead=%d, want misses*pageSize=%d", st.BytesRead, st.Misses*512)
	}
	want := float64(st.Hits) / float64(st.Hits+st.Misses)
	if got := st.HitRate(); got != want {
		t.Fatalf("HitRate()=%v, want %v", got, want)
	}
	if st.HitRate() <= 0.3 { // 8 frames over 16 hot pages: hits must happen
		t.Fatalf("suspiciously low hit rate %v for 8-frame pool over 16 pages", st.HitRate())
	}
}

// TestPoolConcurrentChurn hammers one pool from many goroutines under
// -race: concurrent Get/Unpin with random dirtying, then asserts pins
// drained to zero and the counters are coherent.
func TestPoolConcurrentChurn(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 8, 512)
	const npages = 32
	for i := 0; i < npages; i++ {
		io.seed(pageKey{txn.PartitionID(i % 4), uint32(i / 4)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 800; i++ {
				n := rng.Intn(npages)
				k := pageKey{txn.PartitionID(n % 4), uint32(n / 4)}
				f, err := pool.Get(k, false)
				if err != nil {
					continue // pool momentarily exhausted by peers' pins
				}
				dirty := rng.Intn(4) == 0
				if dirty {
					f.Page().Seal() // benign mutation under the frame pin
				}
				pool.Unpin(f, dirty)
			}
		}(int64(g))
	}
	wg.Wait()
	st := pool.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pins leaked: %d frames still pinned", st.Pinned)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no pool activity recorded")
	}
	if int(st.Misses) != io.reads {
		t.Fatalf("misses=%d, backend reads=%d", st.Misses, io.reads)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
}
