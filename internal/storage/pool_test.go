package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"batsched/internal/txn"
)

// memIO is an in-memory pageIO backend for pool-only tests.
type memIO struct {
	mu       sync.Mutex
	pages    map[pageKey][]byte
	reads    int
	writes   int
	pageSize int
}

func newMemIO(pageSize int) *memIO {
	return &memIO{pages: map[pageKey][]byte{}, pageSize: pageSize}
}

func (m *memIO) readPage(k pageKey, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reads++
	src, ok := m.pages[k]
	if !ok {
		return fmt.Errorf("memIO: no page %v", k)
	}
	copy(buf, src)
	return nil
}

func (m *memIO) writePage(k pageKey, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes++
	m.pages[k] = append([]byte(nil), buf...)
	return nil
}

func (m *memIO) seed(k pageKey) {
	buf := make([]byte, m.pageSize)
	p := InitPage(buf, k.page)
	p.Insert(EncodeEffect(txn.ID(k.page), int(k.part), k.part, 32))
	p.Seal()
	m.mu.Lock()
	m.pages[k] = buf
	m.mu.Unlock()
}

// TestPoolPinAccounting checks that pins never go negative (Unpin of an
// unpinned frame panics) and that pinned counts track Get/Unpin pairs.
func TestPoolPinAccounting(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 4, 512)
	k := pageKey{0, 0}
	io.seed(k)
	f1, err := pool.Get(k, false)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := pool.Get(k, false)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("same key resolved to two frames")
	}
	if st := pool.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned=%d after double Get, want 1 frame", st.Pinned)
	}
	pool.Unpin(f1, false)
	pool.Unpin(f2, false)
	if st := pool.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned=%d after matching Unpins, want 0", st.Pinned)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned frame did not panic")
		}
	}()
	pool.Unpin(f1, false)
}

// TestPoolNoEvictionOfPinned pins every frame, then asks for one more
// page: the pool must serve it from a transient overflow frame —
// never by evicting a pinned frame.
func TestPoolNoEvictionOfPinned(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 4, 512)
	var held []*Frame
	for i := 0; i < 4; i++ {
		k := pageKey{0, uint32(i)}
		io.seed(k)
		f, err := pool.Get(k, false)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, f)
	}
	k := pageKey{0, 99}
	io.seed(k)
	ov, err := pool.Get(k, false)
	if err != nil {
		t.Fatalf("Get with every frame pinned: %v", err)
	}
	if !ov.transient {
		t.Fatal("expected a transient overflow frame with every pooled frame pinned")
	}
	// Every originally pinned frame must still hold its page.
	for i, f := range held {
		if !f.valid || f.key != (pageKey{0, uint32(i)}) || f.pins != 1 {
			t.Fatalf("frame %d was disturbed: %+v", i, f.key)
		}
	}
	pool.Unpin(ov, false)
	if got := pool.Stats().Overflows; got != 1 {
		t.Fatalf("Overflows = %d, want 1", got)
	}
	pool.Unpin(held[0], false)
	f2, err := pool.Get(k, false)
	if err != nil {
		t.Fatalf("Get still failing after an Unpin freed a frame: %v", err)
	}
	if f2.transient {
		t.Fatal("expected a pooled frame once a pin was released")
	}
}

// TestPoolOverflowDirtyWriteBack mutates a page through a transient
// overflow frame: the final Unpin must write the image back so the
// mutation is never lost, and a stale cached copy of the page must not
// survive to shadow it.
func TestPoolOverflowDirtyWriteBack(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 2, 512)
	ka, kb, kc := pageKey{0, 0}, pageKey{0, 1}, pageKey{0, 2}
	io.seed(ka)
	io.seed(kb)
	io.seed(kc)
	fa, _ := pool.Get(ka, false)
	fb, _ := pool.Get(kb, false)
	ov, err := pool.Get(kc, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.transient {
		t.Fatal("expected a transient frame with both pooled frames pinned")
	}
	pg := ov.Page()
	if _, ok := pg.Insert([]byte("spilled")); !ok {
		t.Fatal("insert into overflow frame failed")
	}
	w0 := io.writes
	pool.Unpin(ov, true)
	if io.writes != w0+1 {
		t.Fatalf("expected the dirty overflow frame written back on Unpin, writes %d→%d", w0, io.writes)
	}
	pool.Unpin(fa, false)
	pool.Unpin(fb, false)
	fc, err := pool.Get(kc, false)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Unpin(fc, false)
	found := false
	cp := fc.Page()
	for i := 0; i < cp.NumSlots(); i++ {
		if tup, ok := cp.Get(i); ok && string(tup) == "spilled" {
			found = true
		}
	}
	if !found {
		t.Fatal("overflow-frame mutation lost: re-read page lacks the inserted tuple")
	}
}

// TestPoolDirtyWriteBack checks that evicting a dirty frame writes the
// page back through the IO layer, and that a clean eviction does not.
func TestPoolDirtyWriteBack(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 2, 512)
	ka, kb, kc := pageKey{0, 0}, pageKey{0, 1}, pageKey{0, 2}
	io.seed(ka)
	io.seed(kb)
	io.seed(kc)
	fa, _ := pool.Get(ka, false)
	pg := fa.Page()
	pg.Insert([]byte("dirtied"))
	pool.Unpin(fa, true)
	fb, _ := pool.Get(kb, false)
	pool.Unpin(fb, false)
	w0 := io.writes
	fc, _ := pool.Get(kc, false) // evicts one of a/b
	pool.Unpin(fc, false)
	_, _ = pool.Get(ka, false) // touch a again — forces the other out too
	if io.writes != w0+1 {
		t.Fatalf("expected exactly 1 write-back for the dirty page, got %d", io.writes-w0)
	}
	// The written-back image must contain the dirtied tuple.
	io.mu.Lock()
	img := io.pages[ka]
	io.mu.Unlock()
	p, err := LoadPage(img)
	if err != nil {
		t.Fatalf("written-back page invalid: %v", err)
	}
	found := false
	for i := 0; i < p.NumSlots(); i++ {
		if tup, ok := p.Get(i); ok && string(tup) == "dirtied" {
			found = true
		}
	}
	if !found {
		t.Fatal("write-back lost the dirty tuple")
	}
}

// TestPoolHitRateConsistency checks the pool's own counters: hits +
// misses == total Gets, misses == backend reads, and Stats().HitRate()
// agrees with the raw counts.
func TestPoolHitRateConsistency(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 8, 512)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		io.seed(pageKey{0, uint32(i)})
	}
	gets := 0
	for i := 0; i < 2000; i++ {
		k := pageKey{0, uint32(rng.Intn(16))}
		f, err := pool.Get(k, false)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(f, false)
		gets++
	}
	st := pool.Stats()
	if st.Hits+st.Misses != uint64(gets) {
		t.Fatalf("hits(%d)+misses(%d) != gets(%d)", st.Hits, st.Misses, gets)
	}
	if int(st.Misses) != io.reads {
		t.Fatalf("misses=%d but backend reads=%d", st.Misses, io.reads)
	}
	if st.BytesRead != st.Misses*512 {
		t.Fatalf("BytesRead=%d, want misses*pageSize=%d", st.BytesRead, st.Misses*512)
	}
	want := float64(st.Hits) / float64(st.Hits+st.Misses)
	if got := st.HitRate(); got != want {
		t.Fatalf("HitRate()=%v, want %v", got, want)
	}
	if st.HitRate() <= 0.3 { // 8 frames over 16 hot pages: hits must happen
		t.Fatalf("suspiciously low hit rate %v for 8-frame pool over 16 pages", st.HitRate())
	}
}

// TestPoolConcurrentChurn hammers one pool from many goroutines under
// -race: concurrent Get/Unpin with random dirtying, then asserts pins
// drained to zero and the counters are coherent.
func TestPoolConcurrentChurn(t *testing.T) {
	io := newMemIO(512)
	pool := newPool(io, 8, 512)
	const npages = 32
	for i := 0; i < npages; i++ {
		io.seed(pageKey{txn.PartitionID(i % 4), uint32(i / 4)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 800; i++ {
				n := rng.Intn(npages)
				k := pageKey{txn.PartitionID(n % 4), uint32(n / 4)}
				f, err := pool.Get(k, false)
				if err != nil {
					continue // pool momentarily exhausted by peers' pins
				}
				dirty := rng.Intn(4) == 0
				if dirty {
					f.Page().Seal() // benign mutation under the frame pin
				}
				pool.Unpin(f, dirty)
			}
		}(int64(g))
	}
	wg.Wait()
	st := pool.Stats()
	if st.Pinned != 0 {
		t.Fatalf("pins leaked: %d frames still pinned", st.Pinned)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no pool activity recorded")
	}
	if int(st.Misses) != io.reads {
		t.Fatalf("misses=%d, backend reads=%d", st.Misses, io.reads)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
}

// TestPoolAutoStripes pins down the stripe-count heuristic: tiny pools
// collapse to a single latch (the eviction tests above depend on that),
// production-sized pools spread to the cap.
func TestPoolAutoStripes(t *testing.T) {
	for _, c := range []struct{ frames, want int }{
		{2, 1}, {4, 1}, {8, 1}, {15, 1}, {16, 2}, {32, 4}, {64, 8}, {128, 16}, {256, 16}, {1024, 16},
	} {
		if got := autoStripes(c.frames); got != c.want {
			t.Errorf("autoStripes(%d)=%d, want %d", c.frames, got, c.want)
		}
	}
	// Explicit stripe counts round down to a power of two and never
	// leave a stripe with fewer than two frames.
	if p := newPoolStriped(newMemIO(512), 8, 512, 7); len(p.stripes) != 4 {
		t.Errorf("7 stripes over 8 frames → %d, want 4 (pow2, ≥2 frames each)", len(p.stripes))
	}
	if p := newPoolStriped(newMemIO(512), 8, 512, 64); len(p.stripes) != 4 {
		t.Errorf("64 stripes over 8 frames → %d, want 4", len(p.stripes))
	}
	if p := newPoolStriped(newMemIO(512), 64, 512, 0); len(p.stripes) != 1 {
		t.Errorf("0 stripes → %d, want 1", len(p.stripes))
	}
}

// TestPoolStripeContention runs N goroutines scanning disjoint
// partitions through a striped pool under -race, with a concurrent
// Stats reader: traffic must spread across stripes (per-stripe
// counters), the lock-free Stats aggregation must agree with the
// per-stripe sum, and no pin may leak. Scanners of different partitions
// must not serialize on a single latch — the per-stripe counters are
// the witness that they ran on separate latch domains.
func TestPoolStripeContention(t *testing.T) {
	io := newMemIO(512)
	pool := newPoolStriped(io, 64, 512, 8)
	if got := pool.Stats().Stripes; got != 8 {
		t.Fatalf("Stripes=%d, want 8", got)
	}
	const workers = 8
	const pagesPerPart = 16
	for w := 0; w < workers; w++ {
		for pg := 0; pg < pagesPerPart; pg++ {
			io.seed(pageKey{txn.PartitionID(w), uint32(pg)})
		}
	}
	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() { // Stats must be race-clean mid-churn: no latch taken
		defer statsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := pool.Stats()
				if s.Pinned < 0 || s.Pinned > 64 {
					panic(fmt.Sprintf("impossible pinned count %d", s.Pinned))
				}
				_ = pool.StripeStats()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part txn.PartitionID) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for pg := 0; pg < pagesPerPart; pg++ {
					f, err := pool.Get(pageKey{part, uint32(pg)}, false)
					if err != nil {
						continue // stripe momentarily exhausted by peers
					}
					pool.Unpin(f, false)
				}
			}
		}(txn.PartitionID(w))
	}
	wg.Wait()
	close(stop)
	statsWG.Wait()

	per := pool.StripeStats()
	active := 0
	var sum PoolStats
	for _, s := range per {
		if s.Hits+s.Misses > 0 {
			active++
		}
		sum.add(s)
	}
	if active < 2 {
		t.Fatalf("traffic landed on %d of %d stripes — scans of disjoint partitions serialized on one latch", active, len(per))
	}
	total := pool.Stats()
	if total.Hits != sum.Hits || total.Misses != sum.Misses || total.Evictions != sum.Evictions {
		t.Fatalf("Stats() aggregate %d/%d/%d diverges from per-stripe sum %d/%d/%d",
			total.Hits, total.Misses, total.Evictions, sum.Hits, sum.Misses, sum.Evictions)
	}
	if total.Pinned != 0 {
		t.Fatalf("pins leaked: %d", total.Pinned)
	}
	if int(total.Misses) != io.reads {
		t.Fatalf("misses=%d, backend reads=%d", total.Misses, io.reads)
	}
}
