package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/txn"
)

// Option configures Open.
type Option func(*config)

type config struct {
	pageSize    int
	poolFrames  int
	poolStripes int
	nodes       int
	effectBytes int
	flushEvery  time.Duration
}

// WithPageSize sets the page size (default DefaultPageSize). Must lie
// in [MinPageSize, MaxPageSize]; all heap files of one store share it.
func WithPageSize(n int) Option { return func(c *config) { c.pageSize = n } }

// WithPoolFrames sets each per-node buffer pool's frame count
// (default 64).
func WithPoolFrames(n int) Option { return func(c *config) { c.poolFrames = n } }

// WithPoolStripes sets each pool's latch-stripe count explicitly
// (rounded down to a power of two, capped so every stripe keeps at
// least two frames). Default 0 = auto: the largest power of two ≤ 16
// leaving every stripe ≥ 8 frames, which degrades tiny pools to the
// single-latch behavior the eviction tests assume.
func WithPoolStripes(n int) Option { return func(c *config) { c.poolStripes = n } }

// WithBackgroundFlush moves dirty-page write-back off the commit path:
// ApplyCommit only stages and applies effects in memory, and a per-node
// flusher goroutine writes dirty pages back every interval. Safe under
// the no-steal contract — pages are only dirtied after the owning
// transaction's WAL commit record is forced, so any dirty page is
// already redo-covered and may reach disk at any time (WAL-first holds
// structurally, not by flush ordering). Default 0 = synchronous
// write-back at commit, the PR 9 behavior.
func WithBackgroundFlush(every time.Duration) Option {
	return func(c *config) { c.flushEvery = every }
}

// WithNodes splits the buffer pool per data node: partition p is served
// by pool p mod n. The mapping is static — correctness never depends on
// it, so re-homed partitions simply warm a different pool.
func WithNodes(n int) Option { return func(c *config) { c.nodes = n } }

// WithEffectBytes sets the size of the deterministic effect tuples
// committed write steps insert (default 64, minimum effectHeaderLen).
func WithEffectBytes(n int) Option { return func(c *config) { c.effectBytes = n } }

// RecordID locates one tuple: its page and slot within the partition's
// heap file.
type RecordID struct {
	Page uint32
	Slot int
}

// partFile is one partition's heap file. mu guards the descriptor and
// the page count; opMu serializes structural mutations (insert, update,
// delete, redo) so the store's own commit-apply and recovery paths can
// run concurrently. Readers take neither — partition-level concurrency
// control is the scheduler's contract (strict 2PL: a writer excludes
// every reader).
type partFile struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
	opMu  sync.Mutex
}

// Store is a directory of per-partition heap files behind per-node
// buffer pools. It also carries the transactional glue the schedulers
// drive: per-transaction staged effects applied at commit (after the
// WAL force — the write-ahead contract extended to pages), crash
// simulation for the chaos batteries, and WAL-replay redo.
type Store struct {
	dir         string
	pageSize    int
	effectBytes int
	parts       []*partFile
	pools       []*Pool
	torn        int // pages discarded by open-time recovery

	// Observer wiring (Bind): the sink, the scheduler label stamped on
	// events, and the clock supplying Event.At — the simulator binds its
	// deterministic timeline, the live controller wall milliseconds.
	obsMu    sync.Mutex
	observer obs.Observer
	label    string
	clock    func() event.Time

	// Staged effects: write steps stage one deterministic tuple each;
	// commit applies (and, without a background flusher, flushes) them,
	// abort drops them. Slices are pooled — see effect.go.
	stageMu sync.Mutex
	staged  map[txn.ID]*[]stagedEffect

	// Background flusher wiring (WithBackgroundFlush): one goroutine
	// per pool, stopped by Quiesce/Close/Crash.
	flushEvery time.Duration
	bgMu       sync.Mutex
	bgStop     chan struct{}
	bgWG       sync.WaitGroup

	// Un-fsynced write history for Crash: heap pages are never synced,
	// so a kill may tear any of them; the sequence numbers make the tear
	// deterministic (oldest writes are the ones the kernel most likely
	// completed).
	writeMu  sync.Mutex
	writeSeq map[pageKey]int
	writeN   int

	// Redo bookkeeping: per-partition present-key index built lazily on
	// the first Redo against that partition.
	redoMu   sync.Mutex
	redoKeys map[txn.PartitionID]map[EffectKey]bool

	closed bool
}

type stagedEffect struct {
	step int
	part txn.PartitionID
}

// Open opens (or creates) a store of numParts partition heap files
// under dir, running page-level recovery on existing files: a trailing
// run of torn/corrupt pages is truncated and an interior torn page is
// reinitialized empty (TornPages counts both). Lost committed tuples
// are the WAL's to restore — see Redo.
func Open(dir string, numParts int, opts ...Option) (*Store, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("storage: %d partitions", numParts)
	}
	c := config{pageSize: DefaultPageSize, poolFrames: 64, nodes: 1, effectBytes: 64}
	for _, o := range opts {
		o(&c)
	}
	if c.pageSize < MinPageSize || c.pageSize > MaxPageSize {
		return nil, fmt.Errorf("storage: page size %d outside [%d,%d]", c.pageSize, MinPageSize, MaxPageSize)
	}
	if c.poolFrames < 4 {
		return nil, fmt.Errorf("storage: pool of %d frames (min 4)", c.poolFrames)
	}
	if c.nodes < 1 {
		c.nodes = 1
	}
	if c.effectBytes < effectHeaderLen {
		c.effectBytes = effectHeaderLen
	}
	if c.effectBytes > c.pageSize-pageHeaderLen-slotLen {
		return nil, fmt.Errorf("storage: effect tuple %d bytes exceeds page capacity", c.effectBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	st := &Store{
		dir:         dir,
		pageSize:    c.pageSize,
		effectBytes: c.effectBytes,
		flushEvery:  c.flushEvery,
		staged:      make(map[txn.ID]*[]stagedEffect),
		writeSeq:    make(map[pageKey]int),
		redoKeys:    make(map[txn.PartitionID]map[EffectKey]bool),
	}
	st.pools = make([]*Pool, c.nodes)
	for i := range st.pools {
		stripes := c.poolStripes
		if stripes <= 0 {
			stripes = autoStripes(c.poolFrames)
		}
		st.pools[i] = newPoolStriped(st, c.poolFrames, c.pageSize, stripes)
	}
	st.parts = make([]*partFile, numParts)
	for p := range st.parts {
		f, err := os.OpenFile(st.partPath(p), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			st.closeFiles()
			return nil, fmt.Errorf("storage: %w", err)
		}
		pf := &partFile{f: f}
		torn, pages, err := st.recoverFile(f)
		if err != nil {
			st.closeFiles()
			return nil, err
		}
		st.torn += torn
		pf.pages = pages
		st.parts[p] = pf
	}
	if st.flushEvery > 0 {
		st.startFlushers()
	}
	return st, nil
}

// startFlushers launches one background write-back goroutine per pool.
func (st *Store) startFlushers() {
	st.bgMu.Lock()
	defer st.bgMu.Unlock()
	st.bgStop = make(chan struct{})
	// Capture the channel: Quiesce nils the field before closing, so a
	// goroutine re-reading st.bgStop would block on a nil channel forever.
	stop := st.bgStop
	for _, p := range st.pools {
		p := p
		st.bgWG.Add(1)
		go func() {
			defer st.bgWG.Done()
			t := time.NewTicker(st.flushEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					p.flushDirty() // errors resurface on Flush/Close
				}
			}
		}()
	}
}

// Quiesce stops the store's background work — the per-node flusher
// goroutines and every pool's prefetcher — and waits for them. Nothing
// is flushed or closed; dirty pages stay cached until Flush or Close.
// Idempotent; Close and Crash imply it. Callers comparing pool counters
// against an observer's (the chaos batteries) quiesce first so neither
// side moves mid-comparison.
func (st *Store) Quiesce() {
	st.bgMu.Lock()
	stop := st.bgStop
	st.bgStop = nil
	st.bgMu.Unlock()
	if stop != nil {
		close(stop)
		st.bgWG.Wait()
	}
	for _, p := range st.pools {
		p.stop()
	}
}

func (st *Store) partPath(p int) string {
	return filepath.Join(st.dir, fmt.Sprintf("part-%04d.heap", p))
}

// recoverFile verifies every page of one heap file: a partial trailing
// page and trailing pages failing verification are truncated away, and
// interior failures are reinitialized as empty pages. Returns the
// number of pages discarded either way, and the surviving page count.
func (st *Store) recoverFile(f *os.File) (torn int, pages uint32, err error) {
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("storage: %w", err)
	}
	size := info.Size()
	ps := int64(st.pageSize)
	if rem := size % ps; rem != 0 {
		// A partial page can only be the tail (files grow by whole
		// pages); it is by definition torn.
		size -= rem
		torn++
		if err := f.Truncate(size); err != nil {
			return 0, 0, fmt.Errorf("storage: %w", err)
		}
	}
	n := size / ps
	buf := make([]byte, st.pageSize)
	valid := make([]bool, n)
	for i := int64(0); i < n; i++ {
		if _, err := f.ReadAt(buf, i*ps); err != nil {
			return 0, 0, fmt.Errorf("storage: %w", err)
		}
		if _, err := LoadPage(buf); err == nil {
			valid[i] = true
		}
	}
	newN := n
	for newN > 0 && !valid[newN-1] {
		newN--
		torn++
	}
	if newN != n {
		if err := f.Truncate(newN * ps); err != nil {
			return 0, 0, fmt.Errorf("storage: %w", err)
		}
	}
	for i := int64(0); i < newN; i++ {
		if valid[i] {
			continue
		}
		torn++
		pg := InitPage(buf, uint32(i))
		pg.Seal()
		if _, err := f.WriteAt(buf, i*ps); err != nil {
			return 0, 0, fmt.Errorf("storage: %w", err)
		}
	}
	return torn, uint32(newN), nil
}

// TornPages returns the number of pages open-time recovery discarded
// (truncated or reinitialized).
func (st *Store) TornPages() int { return st.torn }

// NumPartitions returns the partition count the store was opened with.
func (st *Store) NumPartitions() int { return len(st.parts) }

// PageSize returns the store's page size in bytes.
func (st *Store) PageSize() int { return st.pageSize }

func (st *Store) poolOf(part txn.PartitionID) *Pool {
	return st.pools[int(part)%len(st.pools)]
}

func (st *Store) pf(part txn.PartitionID) (*partFile, error) {
	if int(part) < 0 || int(part) >= len(st.parts) {
		return nil, fmt.Errorf("storage: partition %v outside [0,%d)", part, len(st.parts))
	}
	return st.parts[part], nil
}

// Bind attaches an observer for page-traffic events (KindPageRead,
// KindPageWrite, KindPageEvict): label stamps Event.Sched and clock
// supplies Event.At. A nil observer unbinds. One binding per running
// simulation/controller — the same single-producer ownership rule as
// obs.Metrics.
func (st *Store) Bind(o obs.Observer, label string, clock func() event.Time) {
	st.obsMu.Lock()
	st.observer, st.label, st.clock = o, label, clock
	st.obsMu.Unlock()
	for _, p := range st.pools {
		if o == nil {
			p.onEvent.Store(nil)
		} else {
			fn := poolEventFn(st.poolEvent)
			p.onEvent.Store(&fn)
		}
	}
}

// poolEvent translates a pool callback into a structured trace event.
func (st *Store) poolEvent(op string, k pageKey, bytes int) {
	st.obsMu.Lock()
	o, label, clock := st.observer, st.label, st.clock
	st.obsMu.Unlock()
	if o == nil {
		return
	}
	e := obs.Event{
		Sched: label,
		Txn:   0,
		Part:  k.part,
		Node:  int(k.part) % len(st.pools),
		Batch: bytes,
	}
	if clock != nil {
		e.At = clock()
	}
	switch op {
	case "hit":
		e.Kind, e.Op = obs.KindPageRead, "hit"
	case "miss":
		e.Kind, e.Op = obs.KindPageRead, "miss"
	case "prefetch":
		e.Kind, e.Op = obs.KindPageRead, "prefetch"
	case "write":
		e.Kind = obs.KindPageWrite
	case "flush":
		e.Kind, e.Op = obs.KindPageWrite, "flush"
	case "evict-clean":
		e.Kind, e.Op = obs.KindPageEvict, "clean"
	case "evict-dirty":
		e.Kind, e.Op = obs.KindPageEvict, "dirty"
	default:
		return
	}
	o.Observe(e)
}

// readPage / writePage implement pageIO for the pools.
func (st *Store) readPage(k pageKey, buf []byte) error {
	pf := st.parts[k.part]
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if _, err := pf.f.ReadAt(buf, int64(k.page)*int64(st.pageSize)); err != nil {
		return fmt.Errorf("storage: read %v page %d: %w", k.part, k.page, err)
	}
	if _, err := LoadPage(buf); err != nil {
		return fmt.Errorf("storage: read %v page %d: %w", k.part, k.page, err)
	}
	return nil
}

func (st *Store) writePage(k pageKey, buf []byte) error {
	pf := st.parts[k.part]
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if _, err := pf.f.WriteAt(buf, int64(k.page)*int64(st.pageSize)); err != nil {
		return fmt.Errorf("storage: write %v page %d: %w", k.part, k.page, err)
	}
	st.writeMu.Lock()
	st.writeN++
	st.writeSeq[k] = st.writeN
	st.writeMu.Unlock()
	return nil
}

// NumPages returns the partition's current page count (cached pages
// included — a created page counts before it first reaches disk).
func (st *Store) NumPages(part txn.PartitionID) uint32 {
	pf, err := st.pf(part)
	if err != nil {
		return 0
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.pages
}

// TouchPage reads one page of a partition through the pool — the
// simulator's per-object quantum turned into a real page read. Reading
// past the current page count is a no-op (an empty partition has
// nothing to read).
func (st *Store) TouchPage(part txn.PartitionID, page uint32) error {
	pf, err := st.pf(part)
	if err != nil {
		return err
	}
	pf.mu.Lock()
	n := pf.pages
	pf.mu.Unlock()
	if n == 0 {
		return nil
	}
	fr, err := st.poolOf(part).Get(pageKey{part, page % n}, false)
	if err != nil {
		return err
	}
	st.poolOf(part).Unpin(fr, false)
	return nil
}

// maxTuple is the largest tuple a fresh page can hold.
func (st *Store) maxTuple() int { return st.pageSize - pageHeaderLen - slotLen }

// Insert appends a tuple to the partition's heap: the last page if it
// fits, a freshly allocated page otherwise. Callers mutating one
// partition concurrently must hold its scheduler lock; the store's own
// commit/redo paths additionally serialize on the partition op lock.
func (st *Store) Insert(part txn.PartitionID, tuple []byte) (RecordID, error) {
	pf, err := st.pf(part)
	if err != nil {
		return RecordID{}, err
	}
	pf.opMu.Lock()
	defer pf.opMu.Unlock()
	return st.insertLocked(pf, part, tuple)
}

func (st *Store) insertLocked(pf *partFile, part txn.PartitionID, tuple []byte) (RecordID, error) {
	if len(tuple) > st.maxTuple() {
		return RecordID{}, fmt.Errorf("storage: tuple %d bytes exceeds page capacity %d", len(tuple), st.maxTuple())
	}
	pool := st.poolOf(part)
	pf.mu.Lock()
	n := pf.pages
	pf.mu.Unlock()
	if n > 0 {
		fr, err := pool.Get(pageKey{part, n - 1}, false)
		if err != nil {
			return RecordID{}, err
		}
		if slot, ok := fr.Page().Insert(tuple); ok {
			pool.Unpin(fr, true)
			return RecordID{Page: n - 1, Slot: slot}, nil
		}
		pool.Unpin(fr, false)
	}
	pf.mu.Lock()
	pageNo := pf.pages
	pf.pages++
	pf.mu.Unlock()
	fr, err := pool.Get(pageKey{part, pageNo}, true)
	if err != nil {
		return RecordID{}, err
	}
	slot, ok := fr.Page().Insert(tuple)
	pool.Unpin(fr, true)
	if !ok {
		return RecordID{}, fmt.Errorf("storage: tuple %d bytes does not fit an empty page", len(tuple))
	}
	return RecordID{Page: pageNo, Slot: slot}, nil
}

// Get returns a copy of the tuple at rid, or false for a dead slot.
func (st *Store) Get(part txn.PartitionID, rid RecordID) ([]byte, bool, error) {
	pf, err := st.pf(part)
	if err != nil {
		return nil, false, err
	}
	pf.mu.Lock()
	n := pf.pages
	pf.mu.Unlock()
	if rid.Page >= n {
		return nil, false, nil
	}
	pool := st.poolOf(part)
	fr, err := pool.Get(pageKey{part, rid.Page}, false)
	if err != nil {
		return nil, false, err
	}
	defer pool.Unpin(fr, false)
	tup, ok := fr.Page().Get(rid.Slot)
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), tup...), true, nil
}

// Delete removes the tuple at rid; false when the slot is already dead.
func (st *Store) Delete(part txn.PartitionID, rid RecordID) (bool, error) {
	pf, err := st.pf(part)
	if err != nil {
		return false, err
	}
	pf.opMu.Lock()
	defer pf.opMu.Unlock()
	pf.mu.Lock()
	n := pf.pages
	pf.mu.Unlock()
	if rid.Page >= n {
		return false, nil
	}
	pool := st.poolOf(part)
	fr, err := pool.Get(pageKey{part, rid.Page}, false)
	if err != nil {
		return false, err
	}
	ok := fr.Page().Delete(rid.Slot)
	pool.Unpin(fr, ok)
	return ok, nil
}

// Update replaces the tuple at rid, in place when it fits (the returned
// RecordID equals rid) and by delete-and-reinsert when the page cannot
// hold the new length (fresh RecordID). False when rid is dead.
func (st *Store) Update(part txn.PartitionID, rid RecordID, tuple []byte) (RecordID, bool, error) {
	pf, err := st.pf(part)
	if err != nil {
		return RecordID{}, false, err
	}
	pf.opMu.Lock()
	defer pf.opMu.Unlock()
	pf.mu.Lock()
	n := pf.pages
	pf.mu.Unlock()
	if rid.Page >= n {
		return RecordID{}, false, nil
	}
	pool := st.poolOf(part)
	fr, err := pool.Get(pageKey{part, rid.Page}, false)
	if err != nil {
		return RecordID{}, false, err
	}
	pg := fr.Page()
	if pg.Update(rid.Slot, tuple) {
		pool.Unpin(fr, true)
		return rid, true, nil
	}
	ok := pg.Delete(rid.Slot)
	pool.Unpin(fr, ok)
	if !ok {
		return RecordID{}, false, nil
	}
	nrid, err := st.insertLocked(pf, part, tuple)
	if err != nil {
		return RecordID{}, false, err
	}
	return nrid, true, nil
}

// Flush writes back every dirty page of every pool (no fsync — heap
// durability is the WAL's job, see the package comment).
func (st *Store) Flush() error {
	for _, p := range st.pools {
		if err := p.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}

// FlushPartition writes back the partition's dirty pages.
func (st *Store) FlushPartition(part txn.PartitionID) error {
	if _, err := st.pf(part); err != nil {
		return err
	}
	return st.poolOf(part).FlushPart(part)
}

// Stats sums the per-node pool counters.
func (st *Store) Stats() PoolStats {
	var s PoolStats
	for _, p := range st.pools {
		s.add(p.Stats())
	}
	return s
}

// PinnedFrames returns the number of currently pinned frames across all
// pools (zero whenever no scan or mutation is in flight — the pool
// accounting invariant the race tests assert).
func (st *Store) PinnedFrames() int {
	n := 0
	for _, p := range st.pools {
		n += p.Stats().Pinned
	}
	return n
}

// Close stops background work, flushes every pool, and closes the heap
// files.
func (st *Store) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	st.Quiesce()
	err := st.Flush()
	st.closeFiles()
	return err
}

func (st *Store) closeFiles() {
	for _, pf := range st.parts {
		if pf != nil && pf.f != nil {
			pf.f.Close()
		}
	}
}

// Crash simulates a SIGKILL mid-flush, the storage half of
// fault.KillFlushFrac: dirty pool pages simply vanish (they were never
// written), and because heap pages are never fsynced, the kernel is
// assumed to have completed only the oldest `frac` of the session's
// page writes — every younger written page is torn: its on-disk suffix
// beyond frac of the page is zeroed, as if the write reached the disk
// only partially. The files are then closed without any flush. The
// store is unusable afterwards; reopen with Open to recover.
func (st *Store) Crash(frac float64) error {
	if st.closed {
		return fmt.Errorf("storage: already closed")
	}
	st.closed = true
	st.Quiesce()
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	st.writeMu.Lock()
	type wp struct {
		k   pageKey
		seq int
	}
	writes := make([]wp, 0, len(st.writeSeq))
	for k, seq := range st.writeSeq {
		writes = append(writes, wp{k, seq})
	}
	st.writeMu.Unlock()
	sort.Slice(writes, func(i, j int) bool { return writes[i].seq < writes[j].seq })
	keep := int(frac * float64(len(writes)))
	prefix := int(frac * float64(st.pageSize))
	if max := st.pageSize - 64; prefix > max {
		prefix = max
	}
	zeros := make([]byte, st.pageSize)
	for _, w := range writes[keep:] {
		pf := st.parts[w.k.part]
		pf.mu.Lock()
		_, err := pf.f.WriteAt(zeros[:st.pageSize-prefix],
			int64(w.k.page)*int64(st.pageSize)+int64(prefix))
		pf.mu.Unlock()
		if err != nil {
			return fmt.Errorf("storage: crash tear: %w", err)
		}
	}
	st.closeFiles()
	return nil
}
