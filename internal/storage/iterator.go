package storage

import (
	"batsched/internal/txn"
)

// Iterator walks one partition's live tuples page by page, pinning the
// current page for the duration of its tuples and copying each tuple
// out (the copy stays valid after Close). The page count is snapshotted
// at Scan time; tuples inserted after that may or may not be seen —
// partition-level isolation is the scheduler's contract, not the
// iterator's.
type Iterator struct {
	st     *Store
	part   txn.PartitionID
	pool   *Pool
	npages uint32
	page   uint32
	slot   int
	fr     *Frame
	err    error
	done   bool
}

// Scan opens an iterator over part. Always Close it — an open iterator
// holds a pin on its current page.
func (st *Store) Scan(part txn.PartitionID) *Iterator {
	it := &Iterator{st: st, part: part}
	pf, err := st.pf(part)
	if err != nil {
		it.err, it.done = err, true
		return it
	}
	pf.mu.Lock()
	it.npages = pf.pages
	pf.mu.Unlock()
	it.pool = st.poolOf(part)
	return it
}

// Next returns the next live tuple (copied) and its RecordID, or false
// when the scan is exhausted or failed (check Err).
func (it *Iterator) Next() ([]byte, RecordID, bool) {
	if it.done {
		return nil, RecordID{}, false
	}
	for {
		if it.fr == nil {
			if it.page >= it.npages {
				it.done = true
				return nil, RecordID{}, false
			}
			fr, err := it.pool.Get(pageKey{it.part, it.page}, false)
			if err != nil {
				it.err, it.done = err, true
				return nil, RecordID{}, false
			}
			it.fr = fr
			it.slot = 0
		}
		pg := it.fr.Page()
		for it.slot < pg.NumSlots() {
			s := it.slot
			it.slot++
			if tup, ok := pg.Get(s); ok {
				return append([]byte(nil), tup...), RecordID{Page: it.page, Slot: s}, true
			}
		}
		it.pool.Unpin(it.fr, false)
		it.fr = nil
		it.page++
	}
}

// Err returns the error that stopped the scan, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's pin. Safe to call twice.
func (it *Iterator) Close() {
	if it.fr != nil {
		it.pool.Unpin(it.fr, false)
		it.fr = nil
	}
	it.done = true
}

// ScanCount scans the whole partition and returns its live tuple count
// — the convenience form the execution layers use to drive a real
// read of every page under a granted read step.
func (st *Store) ScanCount(part txn.PartitionID) (int, error) {
	it := st.Scan(part)
	n := 0
	for {
		if _, _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	it.Close()
	return n, it.Err()
}
