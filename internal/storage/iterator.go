package storage

import (
	"sync"

	"batsched/internal/txn"
)

// Iterator walks one partition's live tuples page by page, pinning the
// current page for the duration of its tuples. Tuples are yielded
// zero-copy: the returned slice aliases the pinned frame and is valid
// only until the next Next or Close — callers retaining a tuple must
// copy it. The pin accounting enforces the contract: any path that
// would recycle the frame while records still alias it panics in
// Unpin. The page count is snapshotted at Scan time; tuples inserted
// after that may or may not be seen — partition-level isolation is the
// scheduler's contract, not the iterator's.
type Iterator struct {
	st     *Store
	part   txn.PartitionID
	pool   *Pool
	npages uint32
	page   uint32
	slot   int
	nslots int
	fr     *Frame
	err    error
	done   bool
}

// iterPool recycles iterators for the store's internal scan paths
// (ScanCount, Keys) so a scan allocates nothing. Public Scan draws from
// it too, but Close does not recycle — Err stays readable after Close.
var iterPool = sync.Pool{New: func() any { return new(Iterator) }}

// Scan opens an iterator over part. Always Close it — an open iterator
// holds a pin on its current page.
func (st *Store) Scan(part txn.PartitionID) *Iterator {
	it := iterPool.Get().(*Iterator)
	*it = Iterator{st: st, part: part}
	pf, err := st.pf(part)
	if err != nil {
		it.err, it.done = err, true
		return it
	}
	pf.mu.Lock()
	it.npages = pf.pages
	pf.mu.Unlock()
	it.pool = st.poolOf(part)
	return it
}

// Next returns the next live tuple and its RecordID, or false when the
// scan is exhausted or failed (check Err). The tuple aliases the pinned
// page frame: it is invalidated by the next Next call and by Close.
func (it *Iterator) Next() ([]byte, RecordID, bool) {
	if it.done {
		return nil, RecordID{}, false
	}
	for {
		if it.fr == nil {
			if it.page >= it.npages {
				it.done = true
				return nil, RecordID{}, false
			}
			fr, err := it.pool.Get(pageKey{it.part, it.page}, false)
			if err != nil {
				it.err, it.done = err, true
				return nil, RecordID{}, false
			}
			it.fr = fr
			it.slot = 0
			it.nslots = fr.Page().NumSlots()
			if next := it.page + 1; next < it.npages {
				it.pool.Prefetch(pageKey{it.part, next})
			}
		}
		pg := it.fr.Page()
		for it.slot < it.nslots {
			s := it.slot
			it.slot++
			if tup, ok := pg.Get(s); ok {
				return tup, RecordID{Page: it.page, Slot: s}, true
			}
		}
		it.pool.Unpin(it.fr, false)
		it.fr = nil
		it.page++
	}
}

// Err returns the error that stopped the scan, if any.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's pin. Safe to call twice. Tuples yielded
// by Next must not be used after Close.
func (it *Iterator) Close() {
	if it.fr != nil {
		it.pool.Unpin(it.fr, false)
		it.fr = nil
	}
	it.done = true
}

// recycle returns a closed iterator to the free pool. Internal only:
// the caller must be done with Err and every yielded tuple.
func (it *Iterator) recycle() {
	it.Close()
	*it = Iterator{}
	iterPool.Put(it)
}

// ScanCount returns the partition's live tuple count — the batched form
// of the full read the execution layers drive on a granted read step.
// Each heap page is pinned exactly once through the buffer pool (a cold
// page still costs a real disk read and CRC verify) and counted from
// its header's live count; the next page is prefetched while the
// current one is consumed. No per-record work, no allocation.
func (st *Store) ScanCount(part txn.PartitionID) (int, error) {
	pf, err := st.pf(part)
	if err != nil {
		return 0, err
	}
	pf.mu.Lock()
	npages := pf.pages
	pf.mu.Unlock()
	pool := st.poolOf(part)
	n := 0
	for pg := uint32(0); pg < npages; pg++ {
		fr, err := pool.Get(pageKey{part, pg}, false)
		if err != nil {
			return n, err
		}
		if next := pg + 1; next < npages {
			pool.Prefetch(pageKey{part, next})
		}
		n += fr.Page().Live()
		pool.Unpin(fr, false)
	}
	return n, nil
}
