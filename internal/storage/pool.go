package storage

import (
	"fmt"
	"sync"

	"batsched/internal/txn"
)

// pageKey names one page: its partition heap file and page number.
type pageKey struct {
	part txn.PartitionID
	page uint32
}

// Frame is one buffer-pool slot: a page-sized buffer plus the pin/dirty
// bookkeeping. All fields are guarded by the owning pool's mutex.
type Frame struct {
	key   pageKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock second-chance bit
	valid bool
}

// Page returns the frame's content as a slotted page. Only valid while
// the caller holds a pin.
func (f *Frame) Page() Page { return Page{b: f.buf} }

// pageIO is the pool's backend: reading a page image from its heap file
// and writing one back. Implemented by Store.
type pageIO interface {
	readPage(k pageKey, buf []byte) error
	writePage(k pageKey, buf []byte) error
}

// PoolStats is a snapshot of one pool's counters (or, via Store.Stats,
// the sum over every per-node pool).
type PoolStats struct {
	Frames       int
	Pinned       int
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	BytesRead    uint64
	BytesWritten uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any access.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s *PoolStats) add(o PoolStats) {
	s.Frames += o.Frames
	s.Pinned += o.Pinned
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
}

// Pool is a fixed-capacity buffer pool with clock (second-chance)
// eviction. One pool serves one data node's partitions; all state is
// guarded by mu. Disk I/O — the miss read, the dirty-victim write-back
// — happens under the mutex: the pool serializes its node's I/O exactly
// like the single disk arm the paper's machine model assumes.
type Pool struct {
	mu     sync.Mutex
	io     pageIO
	frames []*Frame
	idx    map[pageKey]*Frame
	hand   int

	hits, misses, evictions, bytesRead, bytesWritten uint64

	// onEvent reports page traffic to the store's observer wiring
	// (nil = unobserved). Called with the pool lock held.
	onEvent func(op string, k pageKey, bytes int)
}

func newPool(io pageIO, frames, pageSize int) *Pool {
	p := &Pool{io: io, idx: make(map[pageKey]*Frame, frames)}
	p.frames = make([]*Frame, frames)
	for i := range p.frames {
		p.frames[i] = &Frame{buf: make([]byte, pageSize)}
	}
	return p
}

// Get pins the frame holding page k, reading it from disk on a miss.
// When create is set the page is expected not to exist on disk and the
// frame is initialized empty instead of read. The caller must Unpin.
func (p *Pool) Get(k pageKey, create bool) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.idx[k]; ok {
		f.pins++
		f.ref = true
		p.hits++
		if p.onEvent != nil {
			p.onEvent("hit", k, 0)
		}
		return f, nil
	}
	f, err := p.victimLocked()
	if err != nil {
		return nil, err
	}
	if f.valid {
		delete(p.idx, f.key)
		p.evictions++
		if p.onEvent != nil {
			op := "evict-clean"
			if f.dirty {
				op = "evict-dirty"
			}
			p.onEvent(op, f.key, 0)
		}
	}
	if f.dirty {
		if err := p.writeBackLocked(f); err != nil {
			f.valid = false
			return nil, err
		}
	}
	p.misses++
	if create {
		InitPage(f.buf, k.page)
	} else {
		if err := p.io.readPage(k, f.buf); err != nil {
			f.valid = false
			return nil, err
		}
		p.bytesRead += uint64(len(f.buf))
	}
	if p.onEvent != nil {
		bytes := 0
		if !create {
			bytes = len(f.buf)
		}
		p.onEvent("miss", k, bytes)
	}
	f.key = k
	f.valid = true
	f.dirty = create // a created page must reach disk even if untouched
	f.pins = 1
	f.ref = true
	p.idx[k] = f
	return f, nil
}

// victimLocked runs the clock hand: skip pinned frames, clear one
// second-chance bit per lap, take the first unpinned frame without one.
func (p *Pool) victimLocked() (*Frame, error) {
	for sweep := 0; sweep < 2*len(p.frames); sweep++ {
		f := p.frames[p.hand]
		p.hand = (p.hand + 1) % len(p.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f, nil
	}
	return nil, fmt.Errorf("storage: buffer pool exhausted (%d frames, all pinned)", len(p.frames))
}

func (p *Pool) writeBackLocked(f *Frame) error {
	f.Page().Seal()
	if err := p.io.writePage(f.key, f.buf); err != nil {
		return err
	}
	p.bytesWritten += uint64(len(f.buf))
	f.dirty = false
	if p.onEvent != nil {
		p.onEvent("write", f.key, len(f.buf))
	}
	return nil
}

// Unpin releases one pin, marking the frame dirty when the caller
// mutated the page. Unpinning an unpinned frame is a programming error
// and panics — the invariant the pool tests assert under -race.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned frame (part %v page %d)", f.key.part, f.key.page))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// FlushPart writes back every dirty frame of one partition (pinned
// frames included: their current image is consistent — mutators hold
// the partition's op lock and the scheduler's partition lock).
func (p *Pool) FlushPart(part txn.PartitionID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.valid && f.dirty && f.key.part == part {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// FlushAll writes back every dirty frame.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.valid && f.dirty {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// invalidate drops every cached frame of one partition without writing
// it back (used by crash simulation: dirty pages die with the process).
func (p *Pool) invalidate(part txn.PartitionID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.valid && f.key.part == part {
			delete(p.idx, f.key)
			f.valid = false
			f.dirty = false
			f.pins = 0
		}
	}
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{
		Frames:       len(p.frames),
		Hits:         p.hits,
		Misses:       p.misses,
		Evictions:    p.evictions,
		BytesRead:    p.bytesRead,
		BytesWritten: p.bytesWritten,
	}
	for _, f := range p.frames {
		if f.pins > 0 {
			s.Pinned++
		}
	}
	return s
}
