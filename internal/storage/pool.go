package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"batsched/internal/txn"
)

// pageKey names one page: its partition heap file and page number.
type pageKey struct {
	part txn.PartitionID
	page uint32
}

// Frame is one buffer-pool slot: a page-sized buffer plus the pin/dirty
// bookkeeping. All fields are guarded by the owning stripe's latch.
type Frame struct {
	key   pageKey
	buf   []byte
	pins  int
	dirty bool
	ref   bool // clock second-chance bit
	valid bool

	// transient marks an overflow frame served while every frame of the
	// page's stripe was pinned: it lives outside the frame array and the
	// index, and is written back (when dirty) and discarded on its final
	// Unpin.
	transient bool
}

// Page returns the frame's content as a slotted page. Only valid while
// the caller holds a pin.
func (f *Frame) Page() Page { return Page{b: f.buf} }

// pageIO is the pool's backend: reading a page image from its heap file
// and writing one back. Implemented by Store.
type pageIO interface {
	readPage(k pageKey, buf []byte) error
	writePage(k pageKey, buf []byte) error
}

// PoolStats is a snapshot of one pool's counters (or, via Store.Stats,
// the sum over every per-node pool). Prefetch loads count as Misses too
// — Misses stays exactly the number of backend page reads.
type PoolStats struct {
	Frames       int
	Stripes      int
	Pinned       int
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	BytesRead    uint64
	BytesWritten uint64
	Prefetches   uint64 // pages loaded ahead of demand by the prefetcher
	Flushes      uint64 // dirty pages written back by the background flusher
	Overflows    uint64 // transient frames served while a stripe was fully pinned
}

// HitRate returns Hits/(Hits+Misses), or 0 before any access.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s *PoolStats) add(o PoolStats) {
	s.Frames += o.Frames
	s.Stripes += o.Stripes
	s.Pinned += o.Pinned
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.BytesRead += o.BytesRead
	s.BytesWritten += o.BytesWritten
	s.Prefetches += o.Prefetches
	s.Flushes += o.Flushes
	s.Overflows += o.Overflows
}

// poolEventFn reports page traffic to the store's observer wiring.
// Called with the owning stripe's latch held.
type poolEventFn func(op string, k pageKey, bytes int)

// stripe is one latch domain of the pool: a private set of frames with
// its own clock hand, page index, and dirty list. A page maps to exactly
// one stripe (by pageKey hash), so two accesses contend only when their
// pages share a stripe — concurrent scans of different partitions run on
// different latches and different disk arms, the per-partition I/O
// independence of a shared-nothing node array.
type stripe struct {
	mu     sync.Mutex
	frames []*Frame
	idx    map[pageKey]*Frame
	hand   int
	dirty  []pageKey // keys that transitioned clean→dirty; may hold stale entries

	// Counters are atomics so Stats can aggregate without taking any
	// stripe latch. pinned tracks 0→1 / 1→0 pin transitions (transient
	// overflow pins included).
	hits, misses, evictions, bytesRead, bytesWritten, prefetches, flushes, overflows uint64
	pinned                                                                           int64

	// ioErr latches a write-back failure from a transient frame's final
	// Unpin (which cannot return an error); the next FlushPart/FlushAll/
	// flushDirty on this stripe surfaces it.
	ioErr error
}

const (
	maxStripes         = 16
	minFramesPerStripe = 8
	prefetchQueue      = 64
	flushMinBatch      = 32 // smallest per-stripe write budget per flusher pass
)

// autoStripes picks the largest power-of-two stripe count (≤ maxStripes)
// that still leaves every stripe at least minFramesPerStripe frames, so
// tiny pools (the eviction-pressure tests, STORAGE_POOL=4 starvation
// runs) degrade to a single latch with the old pool's exact behavior.
func autoStripes(frames int) int {
	s := 1
	for s*2 <= maxStripes && frames/(s*2) >= minFramesPerStripe {
		s *= 2
	}
	return s
}

// Pool is a fixed-capacity buffer pool with clock (second-chance)
// eviction, latch-striped by pageKey hash: each stripe owns an equal
// share of the frames and serializes only its own pages' I/O. One pool
// serves one data node's partitions. An optional prefetcher goroutine
// (started lazily on the first Prefetch) pulls scan read-ahead off the
// caller's latch hold.
type Pool struct {
	io      pageIO
	stripes []*stripe
	mask    uint32

	// onEvent reports page traffic to the store's observer wiring
	// (nil = unobserved); swapped atomically so Bind never stops the
	// pool.
	onEvent atomic.Pointer[poolEventFn]

	// Prefetcher: lazily started, advisory (a full queue drops).
	pfRunning  atomic.Bool
	pfMu       sync.Mutex
	pfStarted  bool
	pfStopped  bool
	prefetchCh chan pageKey
	pfDone     chan struct{}
	pfWG       sync.WaitGroup
}

func newPool(io pageIO, frames, pageSize int) *Pool {
	return newPoolStriped(io, frames, pageSize, autoStripes(frames))
}

func newPoolStriped(io pageIO, frames, pageSize, stripes int) *Pool {
	if stripes < 1 {
		stripes = 1
	}
	// Round down to a power of two and never let a stripe drop below
	// two frames (one pinned, one victim candidate).
	pow := 1
	for pow*2 <= stripes {
		pow *= 2
	}
	stripes = pow
	for stripes > 1 && frames/stripes < 2 {
		stripes /= 2
	}
	p := &Pool{io: io, mask: uint32(stripes - 1)}
	p.stripes = make([]*stripe, stripes)
	per, rem := frames/stripes, frames%stripes
	for i := range p.stripes {
		n := per
		if i < rem {
			n++
		}
		s := &stripe{idx: make(map[pageKey]*Frame, n)}
		s.frames = make([]*Frame, n)
		for j := range s.frames {
			s.frames[j] = &Frame{buf: make([]byte, pageSize)}
		}
		p.stripes[i] = s
	}
	return p
}

func (p *Pool) stripeOf(k pageKey) *stripe {
	h := (uint64(uint32(k.part))+1)*0x9E3779B97F4A7C15 ^ (uint64(k.page)+1)*0xA24BAED4963EE407
	h ^= h >> 32
	return p.stripes[uint32(h)&p.mask]
}

func (p *Pool) event(op string, k pageKey, bytes int) {
	if fn := p.onEvent.Load(); fn != nil {
		(*fn)(op, k, bytes)
	}
}

// Get pins the frame holding page k, reading it from disk on a miss.
// When create is set the page is expected not to exist on disk and the
// frame is initialized empty instead of read. The caller must Unpin.
func (p *Pool) Get(k pageKey, create bool) (*Frame, error) {
	s := p.stripeOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.getLocked(s, k, create, false)
}

// getLocked resolves k within its stripe. With prefetch set the frame is
// loaded resident but left unpinned (and a resident page is a silent
// no-op — prefetch hits never inflate the demand hit counter).
func (p *Pool) getLocked(s *stripe, k pageKey, create, prefetch bool) (*Frame, error) {
	if f, ok := s.idx[k]; ok {
		f.ref = true
		if prefetch {
			return f, nil
		}
		if f.pins == 0 {
			atomic.AddInt64(&s.pinned, 1)
		}
		f.pins++
		atomic.AddUint64(&s.hits, 1)
		p.event("hit", k, 0)
		return f, nil
	}
	f, err := s.victimLocked()
	if err != nil {
		if prefetch {
			return nil, err // advisory: read-ahead never spills
		}
		// Every frame of this stripe is pinned. Striping must not shrink
		// the pool's effective capacity below the PR 9 single-latch
		// semantics (exhaustion only when *all* frames are pinned), so
		// spill to a transient frame instead of failing the access.
		return p.overflowLocked(s, k, create)
	}
	if f.valid {
		delete(s.idx, f.key)
		atomic.AddUint64(&s.evictions, 1)
		op := "evict-clean"
		if f.dirty {
			op = "evict-dirty"
		}
		p.event(op, f.key, 0)
	}
	if f.dirty {
		if err := p.writeBackLocked(s, f, "write"); err != nil {
			f.valid = false
			return nil, err
		}
	}
	if create {
		InitPage(f.buf, k.page)
	} else {
		if err := p.io.readPage(k, f.buf); err != nil {
			f.valid = false
			return nil, err
		}
		atomic.AddUint64(&s.bytesRead, uint64(len(f.buf)))
	}
	atomic.AddUint64(&s.misses, 1)
	op, bytes := "miss", 0
	if prefetch {
		atomic.AddUint64(&s.prefetches, 1)
		op = "prefetch"
	}
	if !create {
		bytes = len(f.buf)
	}
	p.event(op, k, bytes)
	f.key = k
	f.valid = true
	f.dirty = create // a created page must reach disk even if untouched
	f.ref = true
	if prefetch {
		f.pins = 0
	} else {
		f.pins = 1
		atomic.AddInt64(&s.pinned, 1)
	}
	s.idx[k] = f
	if create {
		s.dirty = append(s.dirty, k)
	}
	return f, nil
}

// overflowLocked serves page k from a freshly allocated transient frame
// when the stripe's clock found every frame pinned. The frame is never
// indexed — it exists only for its pinner and dies on the final Unpin
// (written back first when dirty). Sound for the same reason FlushPart
// may write pinned frames: the scheduler's partition locks exclude
// concurrent same-partition mutators, so a transient copy can never
// diverge from a cached one that matters.
func (p *Pool) overflowLocked(s *stripe, k pageKey, create bool) (*Frame, error) {
	f := &Frame{buf: make([]byte, len(s.frames[0].buf)), transient: true}
	if create {
		InitPage(f.buf, k.page)
	} else {
		if err := p.io.readPage(k, f.buf); err != nil {
			return nil, err
		}
		atomic.AddUint64(&s.bytesRead, uint64(len(f.buf)))
	}
	atomic.AddUint64(&s.misses, 1)
	atomic.AddUint64(&s.overflows, 1)
	bytes := 0
	if !create {
		bytes = len(f.buf)
	}
	p.event("miss", k, bytes)
	f.key = k
	f.valid = true
	f.dirty = create
	f.pins = 1
	atomic.AddInt64(&s.pinned, 1)
	return f, nil
}

// victimLocked runs the stripe's clock hand: skip pinned frames, clear
// one second-chance bit per lap, take the first unpinned frame without
// one.
func (s *stripe) victimLocked() (*Frame, error) {
	for sweep := 0; sweep < 2*len(s.frames); sweep++ {
		f := s.frames[s.hand]
		s.hand = (s.hand + 1) % len(s.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return f, nil
	}
	return nil, fmt.Errorf("storage: buffer pool stripe exhausted (%d frames, all pinned)", len(s.frames))
}

func (p *Pool) writeBackLocked(s *stripe, f *Frame, op string) error {
	f.Page().Seal()
	if err := p.io.writePage(f.key, f.buf); err != nil {
		return err
	}
	atomic.AddUint64(&s.bytesWritten, uint64(len(f.buf)))
	if op == "flush" {
		atomic.AddUint64(&s.flushes, 1)
	}
	f.dirty = false
	p.event(op, f.key, len(f.buf))
	return nil
}

// Unpin releases one pin, marking the frame dirty when the caller
// mutated the page. Unpinning an unpinned frame is a programming error
// and panics — the invariant the pool tests assert under -race, and the
// guard that makes zero-copy scans safe: a frame can never be recycled
// while records still alias it without tripping this accounting.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	s := p.stripeOf(f.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned frame (part %v page %d)", f.key.part, f.key.page))
	}
	f.pins--
	if f.pins == 0 {
		atomic.AddInt64(&s.pinned, -1)
	}
	if dirty && !f.dirty {
		f.dirty = true
		if !f.transient {
			s.dirty = append(s.dirty, f.key)
		}
	}
	if f.transient && f.pins == 0 {
		if f.dirty {
			if err := p.writeBackLocked(s, f, "write"); err != nil {
				if s.ioErr == nil {
					s.ioErr = err
				}
			} else if f2, ok := s.idx[f.key]; ok && f2.pins == 0 {
				// The disk image just moved past any cached copy loaded
				// meanwhile (only the prefetcher can race a mutator's
				// partition exclusion); drop it so no reader sees the
				// stale page.
				delete(s.idx, f.key)
				f2.valid = false
				f2.dirty = false
			}
		}
		f.valid = false
	}
}

// Prefetch asks the pool's prefetcher to make page k resident. Advisory:
// a full queue drops the request, a read error is swallowed (it will
// resurface on the demand read), and a stopped pool ignores it.
func (p *Pool) Prefetch(k pageKey) {
	if !p.pfRunning.Load() {
		p.startPrefetcher()
		if !p.pfRunning.Load() {
			return
		}
	}
	select {
	case p.prefetchCh <- k:
	default:
	}
}

func (p *Pool) startPrefetcher() {
	p.pfMu.Lock()
	defer p.pfMu.Unlock()
	if p.pfStarted || p.pfStopped {
		return
	}
	p.pfStarted = true
	p.prefetchCh = make(chan pageKey, prefetchQueue)
	p.pfDone = make(chan struct{})
	p.pfWG.Add(1)
	go func() {
		defer p.pfWG.Done()
		for {
			select {
			case <-p.pfDone:
				return
			case k := <-p.prefetchCh:
				s := p.stripeOf(k)
				s.mu.Lock()
				_, _ = p.getLocked(s, k, false, true)
				s.mu.Unlock()
			}
		}
	}()
	p.pfRunning.Store(true)
}

// stop shuts the prefetcher down and waits for it. Idempotent.
func (p *Pool) stop() {
	p.pfMu.Lock()
	already := p.pfStopped
	p.pfStopped = true
	started := p.pfStarted
	p.pfMu.Unlock()
	if already || !started {
		return
	}
	p.pfRunning.Store(false)
	close(p.pfDone)
	p.pfWG.Wait()
}

// flushDirty writes back the pool's dirty, unpinned frames — the
// background flusher's unit of work. Pinned frames are left on the
// dirty list for the next pass (a mutator is mid-update under its pin;
// FlushPart/FlushAll keep the old may-write-pinned contract for the
// synchronous checkpoint paths). The dirty list is oldest-first, and
// each pass writes at most a fraction of the backlog (never fewer than
// flushMinBatch): recently dirtied pages linger a few passes, so
// repeated commits to a hot page coalesce into one write, and no
// single pass stalls the stripe latches on a huge backlog. Returns
// the number of pages written.
func (p *Pool) flushDirty() (int, error) {
	n := 0
	var firstErr error
	for _, s := range p.stripes {
		s.mu.Lock()
		if s.ioErr != nil && firstErr == nil {
			firstErr, s.ioErr = s.ioErr, nil
		}
		pending := s.dirty
		budget := len(pending) / 8
		if budget < flushMinBatch {
			budget = flushMinBatch
		}
		keep := pending[:0]
		wrote := 0
		for i, k := range pending {
			if wrote >= budget {
				keep = append(keep, pending[i:]...)
				break
			}
			f, ok := s.idx[k]
			if !ok || !f.valid || !f.dirty {
				continue // stale entry: evicted or already written back
			}
			if f.pins > 0 {
				keep = append(keep, k)
				continue
			}
			if err := p.writeBackLocked(s, f, "flush"); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				keep = append(keep, k)
				continue
			}
			wrote++
		}
		n += wrote
		s.dirty = keep
		s.mu.Unlock()
	}
	return n, firstErr
}

// FlushPart writes back every dirty frame of one partition (pinned
// frames included: their current image is consistent — mutators hold
// the partition's op lock and the scheduler's partition lock).
func (p *Pool) FlushPart(part txn.PartitionID) error {
	for _, s := range p.stripes {
		s.mu.Lock()
		if err := s.ioErr; err != nil {
			s.ioErr = nil
			s.mu.Unlock()
			return err
		}
		for _, f := range s.frames {
			if f.valid && f.dirty && f.key.part == part {
				if err := p.writeBackLocked(s, f, "write"); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// FlushAll writes back every dirty frame.
func (p *Pool) FlushAll() error {
	for _, s := range p.stripes {
		s.mu.Lock()
		if err := s.ioErr; err != nil {
			s.ioErr = nil
			s.mu.Unlock()
			return err
		}
		for _, f := range s.frames {
			if f.valid && f.dirty {
				if err := p.writeBackLocked(s, f, "write"); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// invalidate drops every cached frame of one partition without writing
// it back (used by crash simulation: dirty pages die with the process).
func (p *Pool) invalidate(part txn.PartitionID) {
	for _, s := range p.stripes {
		s.mu.Lock()
		for _, f := range s.frames {
			if f.valid && f.key.part == part {
				delete(s.idx, f.key)
				f.valid = false
				f.dirty = false
				if f.pins > 0 {
					atomic.AddInt64(&s.pinned, -1)
				}
				f.pins = 0
			}
		}
		s.mu.Unlock()
	}
}

// Stats snapshots the pool's counters by summing per-stripe atomics —
// no latch is taken, so a snapshot never stops concurrent page traffic
// (and is safe to call from any goroutine, including mid-churn).
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Stripes: len(p.stripes)}
	for _, s := range p.stripes {
		st.add(s.stats())
	}
	return st
}

// StripeStats snapshots each stripe's counters separately (test hook
// for asserting traffic actually spreads across latches).
func (p *Pool) StripeStats() []PoolStats {
	out := make([]PoolStats, len(p.stripes))
	for i, s := range p.stripes {
		out[i] = s.stats()
	}
	return out
}

func (s *stripe) stats() PoolStats {
	return PoolStats{
		Frames:       len(s.frames),
		Pinned:       int(atomic.LoadInt64(&s.pinned)),
		Hits:         atomic.LoadUint64(&s.hits),
		Misses:       atomic.LoadUint64(&s.misses),
		Evictions:    atomic.LoadUint64(&s.evictions),
		BytesRead:    atomic.LoadUint64(&s.bytesRead),
		BytesWritten: atomic.LoadUint64(&s.bytesWritten),
		Prefetches:   atomic.LoadUint64(&s.prefetches),
		Flushes:      atomic.LoadUint64(&s.flushes),
		Overflows:    atomic.LoadUint64(&s.overflows),
	}
}
