package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTuples turns raw quick-check bytes into a bounded tuple workload.
func randTuples(data []byte, maxLen int) [][]byte {
	var tuples [][]byte
	for i := 0; i < len(data); {
		n := 1 + int(data[i])%maxLen
		i++
		end := i + n
		if end > len(data) {
			end = len(data)
		}
		if end == i {
			break
		}
		tuples = append(tuples, data[i:end])
		i = end
	}
	return tuples
}

// TestPageRoundTrip is the testing/quick property: any sequence of
// tuples inserted into a page comes back byte-identical through
// Seal → LoadPage → Get, in slot order.
func TestPageRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		buf := make([]byte, 2048)
		p := InitPage(buf, 7)
		var want [][]byte
		for _, tup := range randTuples(data, 128) {
			if slot, ok := p.Insert(tup); ok {
				if slot != len(want) {
					t.Logf("insert returned slot %d, want %d", slot, len(want))
					return false
				}
				want = append(want, append([]byte(nil), tup...))
			}
		}
		p.Seal()
		q, err := LoadPage(buf)
		if err != nil {
			t.Logf("LoadPage: %v", err)
			return false
		}
		if q.PageNo() != 7 || q.Live() != len(want) {
			return false
		}
		for i, w := range want {
			got, ok := q.Get(i)
			if !ok || !bytes.Equal(got, w) {
				t.Logf("slot %d mismatch", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPageInsertDeleteChurn mixes inserts and deletes and checks the
// surviving tuples against a shadow map after every compaction-inducing
// operation. This is the slot-directory invariant check: live slot ids
// are stable across Compact, dead slots read as absent, and free space
// accounting never goes negative.
func TestPageInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, 4096)
	p := InitPage(buf, 3)
	shadow := map[int][]byte{} // slot -> tuple
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 { // insert-biased churn
			tup := make([]byte, 1+rng.Intn(200))
			rng.Read(tup)
			if slot, ok := p.Insert(tup); ok {
				if _, taken := shadow[slot]; taken {
					t.Fatalf("op %d: Insert reused live slot %d", op, slot)
				}
				shadow[slot] = append([]byte(nil), tup...)
			}
		} else if len(shadow) > 0 {
			// delete a random live slot
			var slots []int
			for s := range shadow {
				slots = append(slots, s)
			}
			s := slots[rng.Intn(len(slots))]
			if !p.Delete(s) {
				t.Fatalf("op %d: Delete(%d) failed on live slot", op, s)
			}
			delete(shadow, s)
		}
		if p.Live() != len(shadow) {
			t.Fatalf("op %d: Live()=%d, shadow has %d", op, p.Live(), len(shadow))
		}
		if p.FreeSpace() < 0 {
			t.Fatalf("op %d: negative free space", op)
		}
	}
	// Force a compaction and re-verify everything survives in place.
	p.Compact()
	for s, want := range shadow {
		got, ok := p.Get(s)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after Compact: slot %d lost or corrupted", s)
		}
	}
	if p.Live() != len(shadow) {
		t.Fatalf("after Compact: Live()=%d, want %d", p.Live(), len(shadow))
	}
	// Sealed image must reload cleanly.
	p.Seal()
	if _, err := LoadPage(buf); err != nil {
		t.Fatalf("LoadPage after churn: %v", err)
	}
}

// TestPageCompactionCanonical checks that compaction produces canonical
// sealed images: two pages holding the same live tuples in the same
// slots serialize identically regardless of the delete history that got
// them there (the free gap is zeroed, trailing dead slots trimmed).
func TestPageCompactionCanonical(t *testing.T) {
	mk := func(deleteOrder []int) []byte {
		buf := make([]byte, 1024)
		p := InitPage(buf, 1)
		for i := 0; i < 6; i++ {
			if _, ok := p.Insert(bytes.Repeat([]byte{byte(i + 1)}, 20+i)); !ok {
				t.Fatalf("setup insert %d failed", i)
			}
		}
		for _, s := range deleteOrder {
			p.Delete(s)
		}
		p.Compact()
		p.Seal()
		return buf
	}
	a := mk([]int{1, 4, 5})
	b := mk([]int{5, 4, 1})
	if !bytes.Equal(a, b) {
		t.Fatal("compacted sealed images differ for identical live content")
	}
}

// TestPageUpdate covers in-place updates, relocating updates, and the
// no-room failure leaving the page untouched.
func TestPageUpdate(t *testing.T) {
	buf := make([]byte, 512)
	p := InitPage(buf, 0)
	s0, _ := p.Insert([]byte("aaaa"))
	s1, _ := p.Insert([]byte("bbbb"))
	if !p.Update(s0, []byte("AAAA")) { // same length: in place
		t.Fatal("in-place update failed")
	}
	if !p.Update(s1, bytes.Repeat([]byte("c"), 100)) { // grow: relocate
		t.Fatal("relocating update failed")
	}
	got, _ := p.Get(s1)
	if !bytes.Equal(got, bytes.Repeat([]byte("c"), 100)) {
		t.Fatal("relocated tuple wrong")
	}
	// Fill the page, then try an update that cannot fit.
	for {
		if _, ok := p.Insert(bytes.Repeat([]byte("x"), 40)); !ok {
			break
		}
	}
	before := append([]byte(nil), buf...)
	if p.Update(s0, bytes.Repeat([]byte("z"), 400)) {
		t.Fatal("update succeeded with no room")
	}
	got0, ok := p.Get(s0)
	if !ok || !bytes.Equal(got0, []byte("AAAA")) {
		t.Fatal("failed update corrupted the original tuple")
	}
	if !bytes.Equal(buf, before) {
		t.Fatal("failed update mutated the page image")
	}
}

// TestPageCorruptionBitFlip flips every bit of a sealed page, one at a
// time, and requires LoadPage to reject each corrupted image. This is
// the checksum satellite: no single-bit flip goes undetected.
func TestPageCorruptionBitFlip(t *testing.T) {
	buf := make([]byte, 512)
	p := InitPage(buf, 9)
	p.Insert([]byte("the quick brown fox"))
	p.Insert([]byte("jumps over the lazy dog"))
	p.Seal()
	if _, err := LoadPage(buf); err != nil {
		t.Fatalf("clean page rejected: %v", err)
	}
	for byteOff := 0; byteOff < len(buf); byteOff++ {
		for bit := 0; bit < 8; bit++ {
			buf[byteOff] ^= 1 << bit
			if _, err := LoadPage(buf); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", byteOff, bit)
			}
			buf[byteOff] ^= 1 << bit
		}
	}
	if _, err := LoadPage(buf); err != nil {
		t.Fatalf("page damaged by the flip loop itself: %v", err)
	}
}

// FuzzPageCodec drives the page codec with arbitrary operation tapes:
// inserts, deletes, updates, and compactions against a shadow model,
// then checks the sealed image reloads to the same content.
func FuzzPageCodec(f *testing.F) {
	f.Add([]byte{0, 5, 1, 2, 3, 4, 5, 2, 0})
	f.Add([]byte{1, 0, 0, 10, 3})
	f.Add(bytes.Repeat([]byte{0, 30, 7}, 40))
	f.Fuzz(func(t *testing.T, tape []byte) {
		buf := make([]byte, 1024)
		p := InitPage(buf, 2)
		shadow := map[int][]byte{}
		i := 0
		next := func() (byte, bool) {
			if i >= len(tape) {
				return 0, false
			}
			b := tape[i]
			i++
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			switch op % 4 {
			case 0: // insert
				n, ok := next()
				if !ok {
					break
				}
				ln := 1 + int(n)%160
				end := i + ln
				if end > len(tape) {
					end = len(tape)
				}
				tup := append([]byte(nil), tape[i:end]...)
				i = end
				if len(tup) == 0 {
					tup = []byte{0}
				}
				if slot, ok := p.Insert(tup); ok {
					if _, live := shadow[slot]; live {
						t.Fatalf("Insert clobbered live slot %d", slot)
					}
					shadow[slot] = tup
				}
			case 1: // delete
				n, ok := next()
				if !ok {
					break
				}
				s := int(n) % (p.NumSlots() + 1)
				_, live := shadow[s]
				if p.Delete(s) != live {
					t.Fatalf("Delete(%d)=%v, shadow live=%v", s, !live, live)
				}
				delete(shadow, s)
			case 2: // update
				n, ok := next()
				if !ok {
					break
				}
				s := int(n) % (p.NumSlots() + 1)
				ln, ok := next()
				if !ok {
					break
				}
				tup := bytes.Repeat([]byte{n}, 1+int(ln)%160)
				_, live := shadow[s]
				if p.Update(s, tup) {
					if !live {
						t.Fatalf("Update(%d) succeeded on dead slot", s)
					}
					shadow[s] = tup
				}
			case 3:
				p.Compact()
			}
			if p.Live() != len(shadow) {
				t.Fatalf("Live()=%d, shadow=%d", p.Live(), len(shadow))
			}
		}
		for s, want := range shadow {
			got, ok := p.Get(s)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("slot %d diverged from shadow", s)
			}
		}
		p.Seal()
		q, err := LoadPage(buf)
		if err != nil {
			t.Fatalf("sealed image rejected: %v", err)
		}
		if q.Live() != len(shadow) {
			t.Fatalf("reloaded Live()=%d, want %d", q.Live(), len(shadow))
		}
	})
}
