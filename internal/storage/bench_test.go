package storage

import (
	"os"
	"strconv"
	"testing"

	"batsched/internal/txn"
)

// benchFrames reads STORAGE_POOL: the buffer-pool frame count for the
// scan benchmark. The default 64 caches the whole benchmark partition
// (pool-hit path); set it low (e.g. STORAGE_POOL=4) to starve the pool
// and measure the disk-read path — `make bench-storage` records both.
func benchFrames() int {
	if s := os.Getenv("STORAGE_POOL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 4 {
			return v
		}
	}
	return 64
}

// BenchmarkStorageScan measures full-partition scan throughput through
// the buffer pool: one partition pre-loaded with effect tuples, scanned
// end to end per iteration. b.SetBytes reports real MB/s (page bytes
// held by the partition, every one inspected per scan).
func BenchmarkStorageScan(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, 1, WithPoolFrames(benchFrames()))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	const tuples = 4096
	for i := 0; i < tuples; i++ {
		if _, err := st.Insert(0, EncodeEffect(txn.ID(i+1), 0, 0, 64)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(st.NumPages(0)) * int64(st.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := st.ScanCount(0)
		if err != nil {
			b.Fatal(err)
		}
		if n != tuples {
			b.Fatalf("scan found %d tuples, want %d", n, tuples)
		}
	}
	b.StopTimer()
	ps := st.Stats()
	b.ReportMetric(100*ps.HitRate(), "hit%")
}

// BenchmarkStorageInsert measures the insert path: effect-sized tuples
// appended to one partition through the pool, with the page-allocation
// and dirty write-back costs included via a periodic flush.
func BenchmarkStorageInsert(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir, 1, WithPoolFrames(benchFrames()))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Insert(0, EncodeEffect(txn.ID(i+1), 0, 0, 64)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}
