package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"batsched/internal/txn"
	"batsched/internal/wal"
)

func mustOpen(t *testing.T, dir string, parts int, opts ...Option) *Store {
	t.Helper()
	st, err := Open(dir, parts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRoundTrip inserts across page boundaries, updates, deletes,
// then closes and reopens: the surviving tuples must scan back intact
// from disk with a cold pool.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 2, WithPageSize(512), WithPoolFrames(4))
	type rec struct {
		rid RecordID
		val []byte
	}
	live := map[string]rec{}
	for i := 0; i < 200; i++ {
		val := []byte(fmt.Sprintf("tuple-%03d-%s", i, string(bytes.Repeat([]byte{'x'}, i%40))))
		rid, err := st.Insert(0, val)
		if err != nil {
			t.Fatal(err)
		}
		live[fmt.Sprintf("%d/%d", rid.Page, rid.Slot)] = rec{rid, val}
	}
	if st.NumPages(0) < 2 {
		t.Fatalf("expected multiple pages, got %d", st.NumPages(0))
	}
	// Update a few (forcing some relocations), delete a few.
	i := 0
	for k, r := range live {
		switch i % 3 {
		case 0:
			nv := append([]byte("updated-"), r.val...)
			nrid, ok, err := st.Update(0, r.rid, nv)
			if err != nil || !ok {
				t.Fatalf("update %v: ok=%v err=%v", r.rid, ok, err)
			}
			delete(live, k)
			live[fmt.Sprintf("%d/%d", nrid.Page, nrid.Slot)] = rec{nrid, nv}
		case 1:
			if ok, err := st.Delete(0, r.rid); err != nil || !ok {
				t.Fatalf("delete %v: ok=%v err=%v", r.rid, ok, err)
			}
			delete(live, k)
		}
		i++
	}
	check := func(s *Store) {
		t.Helper()
		got := map[string][]byte{}
		it := s.Scan(0)
		for {
			tup, rid, ok := it.Next()
			if !ok {
				break
			}
			// Next yields zero-copy slices aliasing the pinned frame;
			// retention requires a copy.
			got[fmt.Sprintf("%d/%d", rid.Page, rid.Slot)] = append([]byte(nil), tup...)
		}
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(live) {
			t.Fatalf("scan found %d tuples, want %d", len(got), len(live))
		}
		for k, r := range live {
			if !bytes.Equal(got[k], r.val) {
				t.Fatalf("tuple at %s diverged", k)
			}
		}
		if n, err := s.ScanCount(1); err != nil || n != 0 {
			t.Fatalf("untouched partition: n=%d err=%v", n, err)
		}
	}
	check(st)
	if st.PinnedFrames() != 0 {
		t.Fatalf("%d frames still pinned after scans", st.PinnedFrames())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, 2, WithPageSize(512), WithPoolFrames(4))
	defer st2.Close()
	if st2.TornPages() != 0 {
		t.Fatalf("clean shutdown reported %d torn pages", st2.TornPages())
	}
	check(st2)
}

// TestTornPageRecoverRestart corrupts heap files by hand — a partial
// trailing page, a bit-flipped tail page, and a bit-flipped interior
// page — and checks Open's recovery: tail damage truncated, interior
// damage reinitialized empty, valid pages untouched.
func TestTornPageRecoverRestart(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 1, WithPageSize(512))
	var want [][]byte
	for i := 0; i < 40; i++ {
		v := bytes.Repeat([]byte{byte(i + 1)}, 100)
		if _, err := st.Insert(0, v); err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	npages := st.NumPages(0)
	if npages < 4 {
		t.Fatalf("need >=4 pages for this test, got %d", npages)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "part-0000.heap")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Interior page 1: flip one bit.
	one := []byte{0}
	if _, err := f.ReadAt(one, 512+100); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x10
	if _, err := f.WriteAt(one, 512+100); err != nil {
		t.Fatal(err)
	}
	// Last full page: zero its header (checksum gone).
	if _, err := f.WriteAt(make([]byte, 32), int64(npages-1)*512); err != nil {
		t.Fatal(err)
	}
	// Append a partial page — a write cut off mid-flight.
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xAB}, 137), int64(npages)*512); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := mustOpen(t, dir, 1, WithPageSize(512))
	defer st2.Close()
	// Three casualties: the partial tail, the invalid last page
	// (truncated), the interior page (reinitialized).
	if st2.TornPages() != 3 {
		t.Fatalf("TornPages=%d, want 3", st2.TornPages())
	}
	if got := st2.NumPages(0); got != npages-1 {
		t.Fatalf("pages after recovery=%d, want %d", got, npages-1)
	}
	// Interior page must read as a valid, empty page; other survivors keep
	// their tuples.
	seen := map[string]bool{}
	it := st2.Scan(0)
	for {
		tup, rid, ok := it.Next()
		if !ok {
			break
		}
		if rid.Page == 1 {
			t.Fatalf("reinitialized page 1 still holds tuples")
		}
		seen[string(tup)] = true
	}
	it.Close()
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("recovery destroyed every page")
	}
	for _, v := range want {
		_ = v // survivors checked structurally above; content spot-check:
	}
	if !seen[string(want[0])] {
		t.Fatal("page-0 tuple lost though page 0 was undamaged")
	}
}

// mkBegin builds a WAL Begin record with the given write footprint.
func mkBegin(id txn.ID, parts ...txn.PartitionID) wal.Record {
	r := wal.Record{Txn: id}
	for _, p := range parts {
		r.Steps = append(r.Steps, wal.StepRef{Part: p, Mode: txn.Write, Declared: 1})
	}
	return r
}

// expectedKeys derives the partition contents implied by a committed
// set — the pure function the effect model promises.
func expectedKeys(begins []wal.Record, part txn.PartitionID) map[EffectKey]bool {
	want := map[EffectKey]bool{}
	for _, b := range begins {
		for i, s := range b.Steps {
			if s.Mode == txn.Write && s.Part == part {
				want[EffectKey{Txn: b.Txn, Step: i}] = true
			}
		}
	}
	return want
}

// TestStoreCrashRedoRoundTrip commits transactions through the staging
// path, crashes with a mid-flush tear, reopens, replays redo from the
// committed set, and requires the final contents to equal the pure
// function of that committed set.
func TestStoreCrashRedoRoundTrip(t *testing.T) {
	for _, frac := range []float64{0, 0.3, 0.7, 1} {
		t.Run(fmt.Sprintf("frac=%v", frac), func(t *testing.T) {
			dir := t.TempDir()
			st := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8))
			var committed []wal.Record
			for i := 0; i < 30; i++ {
				id := txn.ID(i + 1)
				parts := []txn.PartitionID{txn.PartitionID(i % 4), txn.PartitionID((i + 1) % 4)}
				for step, p := range parts {
					st.Stage(id, step, p)
				}
				if i%5 == 4 { // every fifth transaction aborts
					st.Drop(id)
					continue
				}
				if err := st.ApplyCommit(id); err != nil {
					t.Fatal(err)
				}
				committed = append(committed, mkBegin(id, parts...))
			}
			if err := st.Crash(frac); err != nil {
				t.Fatal(err)
			}

			st2 := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8))
			defer st2.Close()
			if frac < 1 && st2.TornPages() == 0 {
				t.Fatalf("frac=%v tore nothing — crash model is vacuous", frac)
			}
			for _, b := range committed {
				if err := st2.Redo(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := st2.Flush(); err != nil {
				t.Fatal(err)
			}
			for p := 0; p < 4; p++ {
				part := txn.PartitionID(p)
				got, err := st2.Keys(part)
				if err != nil {
					t.Fatal(err)
				}
				want := expectedKeys(committed, part)
				if len(got) != len(want) {
					t.Fatalf("P%d: %d effects, want %d", p, len(got), len(want))
				}
				for k := range want {
					if !got[k] {
						t.Fatalf("P%d: missing effect %+v after redo", p, k)
					}
				}
			}
			// Redo must be idempotent: a second full replay changes nothing.
			before, _ := st2.ScanCount(0)
			st3 := st2
			for _, b := range committed {
				if err := st3.Redo(b); err != nil {
					t.Fatal(err)
				}
			}
			after, _ := st3.ScanCount(0)
			if before != after {
				t.Fatalf("second redo pass grew P0 from %d to %d tuples", before, after)
			}
		})
	}
}

// TestStoreWALReplayRedo drives Redo through the real wal.Replay
// machinery: committed records forced to a WAL, crash both, scan the
// WAL, replay with Store.Redo as the apply callback.
func TestStoreWALReplayRedo(t *testing.T) {
	dir := t.TempDir()
	wdir := filepath.Join(dir, "wal")
	l, err := wal.Open(wdir, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, filepath.Join(dir, "heap"), 4, WithPageSize(512))
	var begins []wal.Record
	for i := 0; i < 20; i++ {
		id := txn.ID(i + 1)
		part := txn.PartitionID(i % 4)
		b := mkBegin(id, part)
		b.Kind, b.Node = wal.Begin, i%2
		begins = append(begins, b)
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		st.Stage(id, 0, part)
		if err := l.Append(wal.Record{Kind: wal.Commit, Txn: id, Node: b.Node}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Sync(); err != nil { // WAL force precedes the page apply
			t.Fatal(err)
		}
		if err := st.ApplyCommit(id); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash(0.4)
	if err := st.Crash(0.4); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, filepath.Join(dir, "heap"), 4, WithPageSize(512))
	defer st2.Close()
	scans, err := wal.Scan(wdir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Replay(scans, 2, func(b wal.Record, wave int) {
		if err := st2.Redo(b); err != nil {
			t.Errorf("redo txn %d: %v", b.Txn, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Committed) != len(begins) {
		t.Fatalf("recovered %d committed, want %d", len(rec.Committed), len(begins))
	}
	if err := st2.Flush(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		part := txn.PartitionID(p)
		got, err := st2.Keys(part)
		if err != nil {
			t.Fatal(err)
		}
		want := expectedKeys(begins, part)
		if len(got) != len(want) {
			t.Fatalf("P%d: %d effects after WAL replay, want %d", p, len(got), len(want))
		}
	}
}

// TestStoreOpenValidation covers the option guard rails.
func TestStoreOpenValidation(t *testing.T) {
	if _, err := Open(t.TempDir(), 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := Open(t.TempDir(), 1, WithPageSize(64)); err == nil {
		t.Fatal("tiny page size accepted")
	}
	if _, err := Open(t.TempDir(), 1, WithPoolFrames(1)); err == nil {
		t.Fatal("1-frame pool accepted")
	}
	if _, err := Open(t.TempDir(), 1, WithPageSize(512), WithEffectBytes(1024)); err == nil {
		t.Fatal("effect tuple larger than a page accepted")
	}
	st := mustOpen(t, t.TempDir(), 1)
	defer st.Close()
	if _, err := st.Insert(5, []byte("x")); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

// TestStoreCrashRedoFlusherLag extends the crash battery to the
// background-flusher window the write-ahead contract leaves open: the
// WAL commit record is forced (modelled here by the caller's committed
// list), ApplyCommit has mutated cached pages, but the flusher has not
// written them back yet when the process dies. Reopen + Redo must
// converge to the committed set from the WAL alone.
func TestStoreCrashRedoFlusherLag(t *testing.T) {
	commitLoad := func(t *testing.T, st *Store) []wal.Record {
		t.Helper()
		var committed []wal.Record
		for i := 0; i < 30; i++ {
			id := txn.ID(i + 1)
			parts := []txn.PartitionID{txn.PartitionID(i % 4), txn.PartitionID((i + 1) % 4)}
			for step, p := range parts {
				st.Stage(id, step, p)
			}
			if i%5 == 4 {
				st.Drop(id)
				continue
			}
			if err := st.ApplyCommit(id); err != nil {
				t.Fatal(err)
			}
			committed = append(committed, mkBegin(id, parts...))
		}
		return committed
	}
	verify := func(t *testing.T, st2 *Store, committed []wal.Record) {
		t.Helper()
		for _, b := range committed {
			if err := st2.Redo(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := st2.Flush(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			part := txn.PartitionID(p)
			got, err := st2.Keys(part)
			if err != nil {
				t.Fatal(err)
			}
			want := expectedKeys(committed, part)
			if len(got) != len(want) {
				t.Fatalf("P%d: %d effects, want %d", p, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("P%d: missing effect %+v after redo", p, k)
				}
			}
		}
	}

	t.Run("flusher-never-ran", func(t *testing.T) {
		// An hour-long interval: the kill lands strictly between the
		// commit apply and the first flusher pass. Only eviction
		// write-backs can have reached disk, and frac=0 tears them all.
		dir := t.TempDir()
		st := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8),
			WithBackgroundFlush(time.Hour))
		committed := commitLoad(t, st)
		if f := st.Stats().Flushes; f != 0 {
			t.Fatalf("flusher ran %d times despite the hour interval", f)
		}
		if err := st.Crash(0); err != nil {
			t.Fatal(err)
		}
		st2 := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8))
		defer st2.Close()
		verify(t, st2, committed)
	})

	t.Run("flusher-racing", func(t *testing.T) {
		// A microsecond-scale interval with a grace sleep: some pages
		// reach disk via the flusher, the kill tears half of what was
		// written. Redo must still converge.
		dir := t.TempDir()
		st := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8),
			WithBackgroundFlush(200*time.Microsecond))
		committed := commitLoad(t, st)
		time.Sleep(5 * time.Millisecond) // let the flusher catch some dirty pages
		if err := st.Crash(0.5); err != nil {
			t.Fatal(err)
		}
		st2 := mustOpen(t, dir, 4, WithPageSize(512), WithPoolFrames(8))
		defer st2.Close()
		verify(t, st2, committed)
	})
}

// TestScanZeroCopyAliasing pins down the zero-copy contract: tuples
// returned by Next alias the pinned frame (no per-record copy), and the
// pin accounting turns frame-recycling misuse into a panic instead of
// silent corruption of aliased records.
func TestScanZeroCopyAliasing(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, 1, WithPageSize(512))
	defer st.Close()
	want := []byte("aliased-tuple-content")
	if _, err := st.Insert(0, want); err != nil {
		t.Fatal(err)
	}

	t.Run("alias-not-copy", func(t *testing.T) {
		it := st.Scan(0)
		defer it.Close()
		tup, _, ok := it.Next()
		if !ok {
			t.Fatal("scan yielded nothing")
		}
		if !bytes.Equal(tup, want) {
			t.Fatalf("tuple diverged: %q", tup)
		}
		off := bytes.Index(it.fr.buf, want)
		if off < 0 {
			t.Fatal("tuple bytes not found in the pinned frame — Next copied")
		}
		it.fr.buf[off] ^= 0xFF // mutate the frame under the pin…
		if bytes.Equal(tup, want) {
			t.Fatal("yielded tuple did not alias the frame")
		}
		it.fr.buf[off] ^= 0xFF
	})

	t.Run("copy-survives-close", func(t *testing.T) {
		it := st.Scan(0)
		tup, _, ok := it.Next()
		if !ok {
			t.Fatal("scan yielded nothing")
		}
		kept := append([]byte(nil), tup...)
		it.Close()
		if !bytes.Equal(kept, want) {
			t.Fatal("copied tuple did not survive Close")
		}
	})

	t.Run("unpin-misuse-panics", func(t *testing.T) {
		it := st.Scan(0)
		if _, _, ok := it.Next(); !ok {
			t.Fatal("scan yielded nothing")
		}
		// Misuse: release the iterator's pin out from under it. The
		// aliased record is now one eviction away from dangling — the
		// iterator's own Close must trip the pin accounting.
		st.poolOf(0).Unpin(it.fr, false)
		defer func() {
			if recover() == nil {
				t.Fatal("Close after external Unpin did not panic — misuse would dangle aliased records silently")
			}
		}()
		it.Close()
	})
}
