// Package storage is the heap-file storage engine under the bulk
// transactions (ROADMAP: "A real storage engine under the bulk
// transactions"): slotted pages with checksummed headers, per-node
// buffer pools with clock eviction, and partition-level heap files with
// Scan/Insert/Update/Delete access keyed by the existing partition IDs.
//
// The engine is deliberately subordinate to the schedulers: it moves
// real bytes but never makes a concurrency-control decision. Partition
// exclusivity is the scheduler's job (strict 2PL on partitions), so the
// page layer takes no latches of its own for reads; mutations go
// through a per-partition operation lock only so the engine's own
// commit-apply and WAL-redo paths may run concurrently (see store.go).
//
// Durability contract (docs/STORAGE.md): heap pages are never fsynced.
// The PR-7 dependency WAL is the only forced stream; dirty pages flush
// (write, no sync) at commit strictly *after* the commit record's fsync
// — the write-ahead contract extended to pages. A crash may therefore
// tear any heap page, and recovery handles it: Open discards every page
// whose checksum fails (torn-tail truncation, interior reinitialize)
// and WAL replay re-applies the missing committed effects (Redo).
package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// DefaultPageSize is the fixed page size unless WithPageSize says
	// otherwise: 8 KiB, the classic heap-file unit.
	DefaultPageSize = 8192
	// MinPageSize and MaxPageSize bound configurable page sizes: the
	// slot directory uses 16-bit offsets, so a page may not exceed
	// 32 KiB, and below 512 bytes the header+slot overhead dominates.
	MinPageSize = 512
	MaxPageSize = 32768

	pageHeaderLen = 16
	slotLen       = 4
	pageMagic     = 0x5042 // "PB"
)

// Page header layout (little-endian):
//
//	0:4   checksum   crc32c(buf[4:pageSize])
//	4:6   magic      0x5042
//	6:8   nslots     slot-directory entries (live + dead)
//	8:10  dataStart  lowest tuple byte; free space ends here
//	10:12 live       live (non-deleted) tuple count
//	12:16 pageNo     page number within its heap file
//
// Slot directory entries (u16 offset, u16 length) grow upward from the
// header; tuple bytes grow downward from the end of the page. A dead
// slot has offset 0 — tuple data can never start inside the header, so
// zero is unambiguous.

var pageCRC = crc32.MakeTable(crc32.Castagnoli)

// Page is a slotted page over a caller-owned buffer of exactly the
// store's page size. The zero value is invalid; use InitPage or
// LoadPage.
type Page struct {
	b []byte
}

// InitPage formats buf as an empty page numbered pageNo and returns it.
// The buffer is zeroed first so freshly allocated frames never leak
// stale tuple bytes into checksums.
func InitPage(buf []byte, pageNo uint32) Page {
	for i := range buf {
		buf[i] = 0
	}
	p := Page{b: buf}
	binary.LittleEndian.PutUint16(buf[4:], pageMagic)
	p.setDataStart(uint16(len(buf)))
	binary.LittleEndian.PutUint32(buf[12:], pageNo)
	return p
}

// LoadPage wraps buf as a page, verifying the checksum, the magic and
// the structural invariants (slot directory inside bounds, tuples
// non-overlapping with the directory). A failure means the page is torn
// or corrupt and must be discarded by the caller.
func LoadPage(buf []byte) (Page, error) {
	p := Page{b: buf}
	if len(buf) < MinPageSize {
		return Page{}, fmt.Errorf("storage: page buffer %d bytes", len(buf))
	}
	if !p.Verify() {
		return Page{}, fmt.Errorf("storage: page checksum mismatch")
	}
	if err := p.check(); err != nil {
		return Page{}, err
	}
	return p, nil
}

// Seal computes and stores the page checksum; call before writing the
// page to disk.
func (p Page) Seal() {
	binary.LittleEndian.PutUint32(p.b, crc32.Checksum(p.b[4:], pageCRC))
}

// Verify reports whether the stored checksum matches the page content
// and the magic is intact. A sealed page that verifies is exactly the
// image that was sealed; a torn write (prefix of a new image over an
// old one) fails unless the images agree byte-for-byte over the torn
// region — in which case nothing was lost.
func (p Page) Verify() bool {
	if len(p.b) < pageHeaderLen {
		return false
	}
	if binary.LittleEndian.Uint16(p.b[4:]) != pageMagic {
		return false
	}
	return binary.LittleEndian.Uint32(p.b) == crc32.Checksum(p.b[4:], pageCRC)
}

func (p Page) nslots() int     { return int(binary.LittleEndian.Uint16(p.b[6:])) }
func (p Page) setNslots(n int) { binary.LittleEndian.PutUint16(p.b[6:], uint16(n)) }
func (p Page) dataStart() int  { return int(binary.LittleEndian.Uint16(p.b[8:])) }
func (p Page) setDataStart(v uint16) {
	binary.LittleEndian.PutUint16(p.b[8:], v)
}

// Live returns the number of live (non-deleted) tuples.
func (p Page) Live() int     { return int(binary.LittleEndian.Uint16(p.b[10:])) }
func (p Page) setLive(n int) { binary.LittleEndian.PutUint16(p.b[10:], uint16(n)) }

// PageNo returns the page's number within its heap file.
func (p Page) PageNo() uint32 { return binary.LittleEndian.Uint32(p.b[12:]) }

// NumSlots returns the slot-directory size, dead slots included.
func (p Page) NumSlots() int { return p.nslots() }

func (p Page) slot(i int) (off, length int) {
	base := pageHeaderLen + i*slotLen
	return int(binary.LittleEndian.Uint16(p.b[base:])),
		int(binary.LittleEndian.Uint16(p.b[base+2:]))
}

func (p Page) setSlot(i, off, length int) {
	base := pageHeaderLen + i*slotLen
	binary.LittleEndian.PutUint16(p.b[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.b[base+2:], uint16(length))
}

// Get returns the tuple in slot i, or false for a dead or out-of-range
// slot. The returned slice aliases the page buffer; callers that keep
// it past the pin must copy.
func (p Page) Get(i int) ([]byte, bool) {
	if i < 0 || i >= p.nslots() {
		return nil, false
	}
	off, length := p.slot(i)
	if off == 0 {
		return nil, false
	}
	return p.b[off : off+length], true
}

// FreeSpace returns the contiguous free bytes between the slot
// directory and the tuple data.
func (p Page) FreeSpace() int {
	return p.dataStart() - pageHeaderLen - p.nslots()*slotLen
}

// totalFree is the free space a compaction could expose: the page minus
// the header, the slot directory and the live tuple bytes. Trailing
// dead slots are reclaimed by compaction too, so their directory bytes
// count as free.
func (p Page) totalFree() int {
	used := 0
	n := p.nslots()
	lastLive := -1
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off != 0 {
			used += length
			lastLive = i
		}
	}
	return len(p.b) - pageHeaderLen - (lastLive+1)*slotLen - used
}

// Insert places tuple into the page, reusing the lowest dead slot if
// any, compacting when the contiguous free space is fragmented. It
// returns the slot index, or false when even compaction cannot make
// room.
func (p Page) Insert(tuple []byte) (int, bool) {
	slot, fresh := -1, false
	n := p.nslots()
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot, fresh = n, true
	}
	extra := 0
	if fresh {
		extra = slotLen
	}
	if p.FreeSpace() < len(tuple)+extra {
		if p.totalFree() < len(tuple)+extra {
			return -1, false
		}
		p.Compact()
		// Compaction may have trimmed trailing dead slots, invalidating a
		// reused index; re-pick.
		slot, fresh = -1, false
		n = p.nslots()
		for i := 0; i < n; i++ {
			if off, _ := p.slot(i); off == 0 {
				slot = i
				break
			}
		}
		if slot < 0 {
			slot, fresh = n, true
		}
		if fresh {
			extra = slotLen
		} else {
			extra = 0
		}
		// The reusable slot may have been trailing-dead and trimmed away,
		// turning the insert into a fresh-slot one the totalFree estimate
		// did not price; re-check against the compacted image.
		if p.FreeSpace() < len(tuple)+extra {
			return -1, false
		}
	}
	ds := p.dataStart() - len(tuple)
	copy(p.b[ds:], tuple)
	p.setDataStart(uint16(ds))
	p.setSlot(slot, ds, len(tuple))
	if fresh {
		p.setNslots(n + 1)
	}
	p.setLive(p.Live() + 1)
	return slot, true
}

// Delete kills slot i. The tuple bytes become garbage until the next
// compaction; the slot index stays allocated (stable RecordIDs) unless
// a later compaction trims a trailing run of dead slots.
func (p Page) Delete(i int) bool {
	if i < 0 || i >= p.nslots() {
		return false
	}
	if off, _ := p.slot(i); off == 0 {
		return false
	}
	p.setSlot(i, 0, 0)
	p.setLive(p.Live() - 1)
	return true
}

// Update replaces slot i's tuple in place when the length matches, and
// otherwise relocates it within the page (compacting if needed). It
// returns false for a dead slot or when the page cannot hold the new
// tuple; the old tuple is untouched on failure.
func (p Page) Update(i int, tuple []byte) bool {
	if i < 0 || i >= p.nslots() {
		return false
	}
	off, length := p.slot(i)
	if off == 0 {
		return false
	}
	if length == len(tuple) {
		copy(p.b[off:], tuple)
		return true
	}
	// Room check against the post-delete image before mutating anything:
	// the old tuple's bytes and this slot's directory entry are both
	// reusable.
	if p.totalFree()+length < len(tuple) {
		return false
	}
	p.setSlot(i, 0, 0)
	p.setLive(p.Live() - 1)
	if p.FreeSpace() < len(tuple) {
		p.Compact()
		// Slot i went dead just above; if it was the trailing live slot,
		// compaction trimmed it. Regrow the directory to keep i valid —
		// the trimmed entries were zeroed (dead) by the compaction, and
		// the pre-mutation room check priced a directory of at least i+1
		// slots, so the regrowth always fits.
		if p.nslots() < i+1 {
			p.setNslots(i + 1)
		}
	}
	ds := p.dataStart() - len(tuple)
	copy(p.b[ds:], tuple)
	p.setDataStart(uint16(ds))
	p.setSlot(i, ds, len(tuple))
	p.setLive(p.Live() + 1)
	return true
}

// Compact rewrites the tuple region tightly against the end of the
// page, preserving every live slot index, and trims trailing dead
// slots from the directory. Afterwards FreeSpace == totalFree.
func (p Page) Compact() {
	n := p.nslots()
	type ent struct{ slot, off, length int }
	live := make([]ent, 0, n)
	lastLive := -1
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off != 0 {
			live = append(live, ent{i, off, length})
			lastLive = i
		}
	}
	// Copy tuples out (they may overlap their destinations), then lay
	// them back down from the end of the page in slot order.
	saved := make([][]byte, len(live))
	for i, e := range live {
		saved[i] = append([]byte(nil), p.b[e.off:e.off+e.length]...)
	}
	ds := len(p.b)
	for i, e := range live {
		ds -= e.length
		copy(p.b[ds:], saved[i])
		p.setSlot(e.slot, ds, e.length)
	}
	p.setDataStart(uint16(ds))
	if lastLive+1 < n {
		for i := lastLive + 1; i < n; i++ {
			p.setSlot(i, 0, 0)
		}
		p.setNslots(lastLive + 1)
	}
	// Zero the now-free gap so sealed images are canonical functions of
	// the live content (and torn-write tests see deterministic bytes).
	for i := pageHeaderLen + p.nslots()*slotLen; i < ds; i++ {
		p.b[i] = 0
	}
}

// check validates the structural invariants LoadPage relies on.
func (p Page) check() error {
	size := len(p.b)
	n := p.nslots()
	dirEnd := pageHeaderLen + n*slotLen
	ds := p.dataStart()
	if dirEnd > ds || ds > size {
		return fmt.Errorf("storage: page %d: slot directory %d overlaps data start %d (size %d)",
			p.PageNo(), dirEnd, ds, size)
	}
	live := 0
	for i := 0; i < n; i++ {
		off, length := p.slot(i)
		if off == 0 {
			continue
		}
		live++
		if off < ds || off+length > size {
			return fmt.Errorf("storage: page %d slot %d: tuple [%d,%d) outside data region [%d,%d)",
				p.PageNo(), i, off, off+length, ds, size)
		}
	}
	if live != p.Live() {
		return fmt.Errorf("storage: page %d: live count %d but %d live slots", p.PageNo(), p.Live(), live)
	}
	return nil
}
