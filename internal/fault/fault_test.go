package fault

import (
	"testing"

	"batsched/internal/event"
	"batsched/internal/txn"
)

func testTxn(id txn.ID) *txn.T {
	return txn.New(id, []txn.Step{
		{Mode: txn.Write, Part: 0, Cost: 10},
		{Mode: txn.Write, Part: 1, Cost: 10},
	})
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if _, ok := in.AbortAt(testTxn(1)); ok {
		t.Error("nil injector aborted")
	}
	if f := in.IOFactor(3); f != 1 {
		t.Errorf("nil IOFactor = %v, want 1", f)
	}
	if in.RefuseAdmit(1, 0) {
		t.Error("nil injector refused admission")
	}
	if _, ok := in.Crash(testTxn(1)); ok {
		t.Error("nil injector crashed")
	}
	if _, ok := in.NodeCrash(0, 8, 1000); ok {
		t.Error("nil injector crashed a node")
	}
	if in.Enabled() {
		t.Error("nil injector enabled")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(42, Config{AbortRate: 0.5, SlowIORate: 0.5, AdmitRefusalRate: 0.5, CrashRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(42, Config{AbortRate: 0.5, SlowIORate: 0.5, AdmitRefusalRate: 0.5, CrashRate: 0.5})
	for id := txn.ID(1); id <= 200; id++ {
		tx := testTxn(id)
		ao, aok := a.AbortAt(tx)
		bo, bok := b.AbortAt(tx)
		if ao != bo || aok != bok {
			t.Fatalf("AbortAt(%v) differs across identically-seeded injectors", id)
		}
		if a.IOFactor(txn.PartitionID(id)) != b.IOFactor(txn.PartitionID(id)) {
			t.Fatalf("IOFactor(%v) differs", id)
		}
		if a.RefuseAdmit(id, 0) != b.RefuseAdmit(id, 0) {
			t.Fatalf("RefuseAdmit(%v) differs", id)
		}
		as, aok2 := a.Crash(tx)
		bs, bok2 := b.Crash(tx)
		if as != bs || aok2 != bok2 {
			t.Fatalf("Crash(%v) differs", id)
		}
	}
}

func TestSeedsProduceDifferentSchedules(t *testing.T) {
	a, _ := New(1, Config{AbortRate: 0.5})
	b, _ := New(2, Config{AbortRate: 0.5})
	same := 0
	for id := txn.ID(1); id <= 200; id++ {
		_, aok := a.AbortAt(testTxn(id))
		_, bok := b.AbortAt(testTxn(id))
		if aok == bok {
			same++
		}
	}
	if same == 200 {
		t.Error("seeds 1 and 2 produced identical abort schedules")
	}
}

func TestRatesApproximatelyRespected(t *testing.T) {
	in, _ := New(7, Config{AbortRate: 0.3})
	hit := 0
	const n = 2000
	for id := txn.ID(1); id <= n; id++ {
		if _, ok := in.AbortAt(testTxn(id)); ok {
			hit++
		}
	}
	got := float64(hit) / n
	if got < 0.25 || got > 0.35 {
		t.Errorf("abort rate %.3f, want ≈0.30", got)
	}
}

func TestAbortAtLandsMidRun(t *testing.T) {
	in, _ := New(3, Config{AbortRate: 1})
	for id := txn.ID(1); id <= 100; id++ {
		tx := testTxn(id)
		at, ok := in.AbortAt(tx)
		if !ok {
			t.Fatalf("AbortRate 1 skipped txn %v", id)
		}
		total := tx.DeclaredTotal()
		if at < 0.15*total || at > 0.95*total {
			t.Errorf("abort point %v outside [0.15, 0.95] of total %v", at, total)
		}
	}
}

func TestRefusalBurstEnds(t *testing.T) {
	in, _ := New(11, Config{AdmitRefusalRate: 1, AdmitRefusalBurst: 3})
	id := txn.ID(5)
	for attempt := 0; attempt < 3; attempt++ {
		if !in.RefuseAdmit(id, attempt) {
			t.Fatalf("attempt %d should be refused", attempt)
		}
	}
	if in.RefuseAdmit(id, 3) {
		t.Error("attempt past the burst should be admitted")
	}
}

func TestCrashStepInRange(t *testing.T) {
	in, _ := New(13, Config{CrashRate: 1})
	for id := txn.ID(1); id <= 100; id++ {
		tx := testTxn(id)
		step, ok := in.Crash(tx)
		if !ok {
			t.Fatalf("CrashRate 1 skipped txn %v", id)
		}
		if step < 0 || step >= len(tx.Steps) {
			t.Errorf("crash step %d out of range", step)
		}
	}
}

func TestNodeCrashExactCountAndDeterminism(t *testing.T) {
	const numNodes = 8
	for _, want := range []int{0, 1, 2, 3} {
		a, err := New(77, Config{NodeCrashes: want, NodeCrashWindow: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := New(77, Config{NodeCrashes: want, NodeCrashWindow: 10_000})
		died := 0
		for n := 0; n < numNodes; n++ {
			at, ok := a.NodeCrash(n, numNodes, 0)
			bt, bok := b.NodeCrash(n, numNodes, 0)
			if at != bt || ok != bok {
				t.Fatalf("NodeCrashes=%d: node %d differs across identically-seeded injectors", want, n)
			}
			if ok {
				died++
				if at < 1 || at > 10_000 {
					t.Errorf("NodeCrashes=%d: node %d crash time %v outside (0, window]", want, n, at)
				}
			}
		}
		if died != want {
			t.Errorf("NodeCrashes=%d: %d nodes died", want, died)
		}
	}
}

func TestNodeCrashClampsToLeaveASurvivor(t *testing.T) {
	in, err := New(5, Config{NodeCrashes: 10, NodeCrashWindow: 1000})
	if err != nil {
		t.Fatal(err)
	}
	const numNodes = 4
	died := 0
	for n := 0; n < numNodes; n++ {
		if _, ok := in.NodeCrash(n, numNodes, 0); ok {
			died++
		}
	}
	if died != numNodes-1 {
		t.Errorf("%d of %d nodes died, want clamp to %d", died, numNodes, numNodes-1)
	}
	// A single-node machine never crashes at all.
	if _, ok := in.NodeCrash(0, 1, 0); ok {
		t.Error("single-node machine crashed its only node")
	}
}

func TestNodeCrashUsesCallerWindowWhenConfigLeavesItZero(t *testing.T) {
	in, err := New(21, Config{NodeCrashes: 4})
	if err != nil {
		t.Fatal(err)
	}
	const window = 100_000
	seen := false
	for n := 0; n < 8; n++ {
		at, ok := in.NodeCrash(n, 8, window)
		if !ok {
			continue
		}
		seen = true
		lo := event.Time(0.15 * window)
		hi := event.Time(0.85 * window)
		if at < lo || at > hi {
			t.Errorf("node %d crash time %v outside [%v, %v]", n, at, lo, hi)
		}
	}
	if !seen {
		t.Fatal("no node crashed")
	}
	// No window at all: the decision is off.
	if _, ok := in.NodeCrash(0, 8, 0); ok {
		t.Error("crash scheduled with no window")
	}
}

func TestValidate(t *testing.T) {
	if _, err := New(0, Config{AbortRate: 1.5}); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := New(0, Config{SlowIOFactor: -1}); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := New(0, Config{NodeCrashes: -1}); err == nil {
		t.Error("negative NodeCrashes accepted")
	}
	if _, err := New(0, Config{NodeCrashWindow: -1}); err == nil {
		t.Error("negative NodeCrashWindow accepted")
	}
	in, err := New(0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if in.Enabled() {
		t.Error("zero config should be disabled")
	}
	if in.Config().SlowIOFactor != 4 || in.Config().AdmitRefusalBurst != 2 {
		t.Errorf("defaults not applied: %+v", in.Config())
	}
}

func TestKillAtDeterministicAndMidWindow(t *testing.T) {
	if _, ok := (*Injector)(nil).KillAt(1000); ok {
		t.Error("nil injector scheduled a kill")
	}
	if f := (*Injector)(nil).KillFlushFrac(); f != 0 {
		t.Errorf("nil KillFlushFrac = %v, want 0", f)
	}
	off, _ := New(7, Config{})
	if _, ok := off.KillAt(1000); ok {
		t.Error("KillRestart=false scheduled a kill")
	}
	seen := map[event.Time]bool{}
	for seed := uint64(1); seed <= 50; seed++ {
		a, err := New(seed, Config{KillRestart: true})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Enabled() {
			t.Fatal("KillRestart injector not Enabled")
		}
		const window = event.Time(100000)
		at, ok := a.KillAt(window)
		if !ok {
			t.Fatalf("seed %d: no kill scheduled", seed)
		}
		lo, hi := event.Time(0.15*float64(window)), event.Time(0.85*float64(window))
		if at < lo || at > hi {
			t.Fatalf("seed %d: kill at %v outside mid-window [%v,%v]", seed, at, lo, hi)
		}
		if f := a.KillFlushFrac(); f < 0 || f >= 1 {
			t.Fatalf("seed %d: KillFlushFrac %v outside [0,1)", seed, f)
		}
		b, _ := New(seed, Config{KillRestart: true})
		if bt, _ := b.KillAt(window); bt != at {
			t.Fatalf("seed %d: KillAt differs across identically-seeded injectors", seed)
		}
		if a.KillFlushFrac() != b.KillFlushFrac() {
			t.Fatalf("seed %d: KillFlushFrac differs", seed)
		}
		seen[at] = true
	}
	if len(seen) < 25 {
		t.Errorf("only %d distinct kill points across 50 seeds", len(seen))
	}
	// Config window wins over the caller's.
	c, _ := New(3, Config{KillRestart: true, KillWindow: 500})
	at1, _ := c.KillAt(0)
	at2, _ := c.KillAt(999999)
	if at1 != at2 || at1 > 425 {
		t.Errorf("KillWindow not honored: %v vs %v", at1, at2)
	}
	if _, err := New(1, Config{KillRestart: true, KillWindow: -1}); err == nil {
		t.Error("negative KillWindow validated")
	}
}
