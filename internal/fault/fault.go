// Package fault injects deterministic, seedable faults into the BAT
// simulator and the live controller.
//
// Bulk access transactions run for minutes; the schedulers are proved
// deadlock-free but the proofs assume nothing ever dies. This package
// supplies the deaths: transaction aborts mid-bulk-processing, slow I/O
// on a partition, refused admission bursts, controller-goroutine
// crashes, and whole-data-node crashes (partitions re-homed to the
// survivors). Every decision is a pure function of (seed, identifier), so
// a fault schedule is reproducible from its seed alone and — crucially
// for the simulator's golden tests — independent of the order in which
// questions are asked. An Injector never consults a stateful RNG
// stream.
//
// All methods are nil-safe: a nil *Injector injects nothing, so call
// sites need no guards. See docs/ROBUSTNESS.md for the fault model and
// the recovery semantics each fault exercises.
package fault

import (
	"errors"
	"fmt"

	"batsched/internal/event"
	"batsched/internal/txn"
)

// Sentinel errors reported by fault-aware components when an injected
// fault, rather than a real condition, caused a failure.
var (
	// ErrInjectedAbort marks a transaction killed by an injected abort.
	ErrInjectedAbort = errors.New("fault: injected abort")
	// ErrInjectedCrash marks a worker goroutine killed by an injected
	// crash (a recovered panic in the live controller).
	ErrInjectedCrash = errors.New("fault: injected crash")
)

// Config sets the per-kind fault rates. All rates are probabilities in
// [0,1] evaluated independently per transaction (or per partition for
// SlowIORate); zero disables the kind.
type Config struct {
	// AbortRate is the fraction of transactions that die mid-run: the
	// victim aborts after processing a deterministic fraction of its
	// declared demand (between 15% and 95%).
	AbortRate float64
	// SlowIORate is the fraction of partitions whose bulk I/O runs slow;
	// SlowIOFactor is the multiplier applied there (default 4).
	SlowIORate   float64
	SlowIOFactor float64
	// AdmitRefusalRate is the fraction of transactions whose admission
	// is refused at the control node before the scheduler even sees
	// them (a control-node overload / message-loss stand-in); refusals
	// repeat for AdmitRefusalBurst consecutive attempts (default 2).
	AdmitRefusalRate  float64
	AdmitRefusalBurst int
	// CrashRate is the fraction of transactions whose worker goroutine
	// crashes (panics) at a deterministic step. Only meaningful in the
	// live controller; the simulator has no goroutine to kill.
	CrashRate float64
	// NodeCrashes is the exact number of data-processing nodes that die
	// mid-run (an exact count, not a rate, so chaos matrices can pin the
	// dimension). Which nodes die and when is a pure function of the
	// seed: see NodeCrash. The count is clamped so at least one node
	// survives. NodeCrashWindow bounds the interval in which the crash
	// times land; the consumer (package sim) substitutes its horizon
	// when zero.
	NodeCrashes     int
	NodeCrashWindow event.Time
	// KillRestart schedules a whole-machine kill (SIGKILL-equivalent):
	// the run is cut off at a deterministic point inside KillWindow (the
	// consumer substitutes its horizon when the window is zero), its
	// write-ahead log crash-closed with a torn tail, and recovery
	// replayed from the surviving log prefix. See KillAt.
	KillRestart bool
	KillWindow  event.Time
}

// Validate rejects rates outside [0,1] and negative tuning knobs.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"AbortRate", c.AbortRate},
		{"SlowIORate", c.SlowIORate},
		{"AdmitRefusalRate", c.AdmitRefusalRate},
		{"CrashRate", c.CrashRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0,1]", r.name, r.v)
		}
	}
	if c.SlowIOFactor < 0 || c.AdmitRefusalBurst < 0 {
		return errors.New("fault: negative tuning parameter")
	}
	if c.NodeCrashes < 0 || c.NodeCrashWindow < 0 {
		return errors.New("fault: negative node-crash parameter")
	}
	if c.KillWindow < 0 {
		return errors.New("fault: negative kill window")
	}
	return nil
}

// Injector makes deterministic fault decisions from a seed. The zero
// value (and nil) injects nothing.
type Injector struct {
	seed uint64
	cfg  Config
}

// New builds an injector for the given seed and config, applying
// defaults: SlowIOFactor 4, AdmitRefusalBurst 2.
func New(seed uint64, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SlowIOFactor == 0 {
		cfg.SlowIOFactor = 4
	}
	if cfg.AdmitRefusalBurst == 0 {
		cfg.AdmitRefusalBurst = 2
	}
	return &Injector{seed: seed, cfg: cfg}, nil
}

// Seed returns the injector's seed (0 for nil).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Config returns the effective configuration (zero for nil).
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// mix is a splitmix64 finalizer: a high-quality 64-bit mixing function
// turning (seed, domain, id) into an independent uniform draw.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Per-fault-kind domain separators so the same id draws independently
// for each fault kind.
const (
	domAbort uint64 = 0xA110C8ED << 1
	domSlow  uint64 = 0x51070D ^ 0xFFFF0000
	domAdmit uint64 = 0xAD317000
	domCrash uint64 = 0xC4A54000
	domNode  uint64 = 0xD0DEAD00
	domKill  uint64 = 0x6E55A110
)

// unit maps (seed, domain, id) to a uniform float64 in [0,1).
func (in *Injector) unit(domain, id uint64) float64 {
	h := mix(in.seed ^ mix(domain+id))
	return float64(h>>11) / (1 << 53)
}

// AbortAt reports whether t is scheduled to die, and if so after how
// many processed objects: a deterministic fraction in [0.15, 0.95] of
// its declared total demand, so the abort always lands mid-run with
// real work (locks held, weights partially adjusted) to unwind.
func (in *Injector) AbortAt(t *txn.T) (objects float64, ok bool) {
	if in == nil || in.cfg.AbortRate == 0 {
		return 0, false
	}
	if in.unit(domAbort, uint64(t.ID)) >= in.cfg.AbortRate {
		return 0, false
	}
	frac := 0.15 + 0.80*in.unit(domAbort+1, uint64(t.ID))
	return frac * t.DeclaredTotal(), true
}

// IOFactor returns the bulk-I/O time multiplier for partition p:
// SlowIOFactor for partitions drawn slow, 1 otherwise.
func (in *Injector) IOFactor(p txn.PartitionID) float64 {
	if in == nil || in.cfg.SlowIORate == 0 {
		return 1
	}
	if in.unit(domSlow, uint64(p)) < in.cfg.SlowIORate {
		return in.cfg.SlowIOFactor
	}
	return 1
}

// RefuseAdmit reports whether admission attempt number `attempt`
// (0-based) of transaction id should be refused before reaching the
// scheduler. Selected transactions are refused for the first
// AdmitRefusalBurst attempts and then admitted normally, modelling a
// transient control-node overload.
func (in *Injector) RefuseAdmit(id txn.ID, attempt int) bool {
	if in == nil || in.cfg.AdmitRefusalRate == 0 {
		return false
	}
	if attempt >= in.cfg.AdmitRefusalBurst {
		return false
	}
	return in.unit(domAdmit, uint64(id)) < in.cfg.AdmitRefusalRate
}

// Crash reports whether t's worker goroutine should crash, and if so
// at which step (always a valid step index). Meaningful only for the
// live controller.
func (in *Injector) Crash(t *txn.T) (step int, ok bool) {
	if in == nil || in.cfg.CrashRate == 0 {
		return 0, false
	}
	if in.unit(domCrash, uint64(t.ID)) >= in.cfg.CrashRate {
		return 0, false
	}
	n := len(t.Steps)
	if n == 0 {
		return 0, false
	}
	return int(mix(in.seed^mix(domCrash+2+uint64(t.ID))) % uint64(n)), true
}

// NodeCrash reports whether data node `node` (of numNodes total) dies
// mid-run, and if so at what time. The NodeCrashes nodes with the
// smallest hash keys die (ties broken by lower node ID), clamped so at
// least one node always survives; each victim's crash time is a
// deterministic fraction in [0.15, 0.85] of NodeCrashWindow (or of
// `window` when the config leaves it zero — package sim passes its
// horizon). Like every decision in this package it is a pure function
// of (seed, node), so a crash schedule replays identically regardless
// of the order nodes are asked in.
func (in *Injector) NodeCrash(node, numNodes int, window event.Time) (at event.Time, ok bool) {
	if in == nil || in.cfg.NodeCrashes <= 0 || numNodes <= 1 || node < 0 || node >= numNodes {
		return 0, false
	}
	if in.cfg.NodeCrashWindow > 0 {
		window = in.cfg.NodeCrashWindow
	}
	if window <= 0 {
		return 0, false
	}
	crashes := in.cfg.NodeCrashes
	if crashes > numNodes-1 {
		crashes = numNodes - 1
	}
	// Rank node's key among all nodes' keys; the `crashes` smallest die.
	key := func(n int) uint64 { return mix(in.seed ^ mix(domNode+uint64(n))) }
	mine := key(node)
	rank := 0
	for n := 0; n < numNodes; n++ {
		if n == node {
			continue
		}
		if k := key(n); k < mine || (k == mine && n < node) {
			rank++
		}
	}
	if rank >= crashes {
		return 0, false
	}
	frac := 0.15 + 0.70*in.unit(domNode+1, uint64(node))
	at = event.Time(frac * float64(window))
	if at < 1 {
		at = 1
	}
	return at, true
}

// KillAt reports whether a whole-machine kill is scheduled, and if so
// when: a deterministic point in [0.15, 0.85] of KillWindow (or of
// `window` when the config leaves it zero), so the kill always lands
// with transactions genuinely in flight — never in the empty warm-up
// prefix or the drained tail. Alongside the time the caller needs a
// second draw for how much of the log's unsynced tail survives the
// kill (the kernel may have flushed part of a dying process's buffers):
// KillFlushFrac supplies it, uniform in [0,1).
func (in *Injector) KillAt(window event.Time) (at event.Time, ok bool) {
	if in == nil || !in.cfg.KillRestart {
		return 0, false
	}
	if in.cfg.KillWindow > 0 {
		window = in.cfg.KillWindow
	}
	if window <= 0 {
		return 0, false
	}
	frac := 0.15 + 0.70*in.unit(domKill, 0)
	at = event.Time(frac * float64(window))
	if at < 1 {
		at = 1
	}
	return at, true
}

// KillFlushFrac is the fraction of buffered-but-unsynced log bytes that
// survive the kill (see KillAt). Zero for nil or non-kill injectors.
func (in *Injector) KillFlushFrac() float64 {
	if in == nil || !in.cfg.KillRestart {
		return 0
	}
	return in.unit(domKill+1, 0)
}

// Enabled reports whether the injector can produce any fault at all.
func (in *Injector) Enabled() bool {
	if in == nil {
		return false
	}
	c := in.cfg
	return c.AbortRate > 0 || c.SlowIORate > 0 || c.AdmitRefusalRate > 0 || c.CrashRate > 0 ||
		c.NodeCrashes > 0 || c.KillRestart
}
