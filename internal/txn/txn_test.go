package txn

import (
	"math"
	"testing"
	"testing/quick"
)

func steps(ss ...Step) []Step { return ss }

func TestModeConflicts(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{Read, Read, false},
		{Read, Write, true},
		{Write, Read, true},
		{Write, Write, true},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("%v.Conflicts(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStepConflicts(t *testing.T) {
	r0 := Step{Read, 0, 1}
	w0 := Step{Write, 0, 1}
	r1 := Step{Read, 1, 1}
	w1 := Step{Write, 1, 1}
	if r0.Conflicts(r1) || w0.Conflicts(w1) || w0.Conflicts(r1) {
		t.Error("steps on different partitions must not conflict")
	}
	if r0.Conflicts(r0) {
		t.Error("read-read on same partition must not conflict")
	}
	if !r0.Conflicts(w0) || !w0.Conflicts(r0) || !w0.Conflicts(w0) {
		t.Error("any pair involving a write on the same partition must conflict")
	}
}

// TestDueFigure1 reproduces the paper's Example 3.1: T1 has steps
// r1(A:1) -> r1(B:3) -> w1(A:1), so due(s0)=5, due(s1)=4, due(s2)=1.
func TestDueFigure1(t *testing.T) {
	t1 := New(1, steps(Step{Read, 0, 1}, Step{Read, 1, 3}, Step{Write, 0, 1}))
	for i, want := range []float64{5, 4, 1} {
		if got := t1.Due(i); got != want {
			t.Errorf("Due(%d) = %g, want %g", i, got, want)
		}
	}
	if t1.DeclaredTotal() != 5 {
		t.Errorf("DeclaredTotal = %g, want 5", t1.DeclaredTotal())
	}
	if t1.TrueTotal() != 5 {
		t.Errorf("TrueTotal = %g, want 5", t1.TrueTotal())
	}
}

func TestDueWithDeclaredErrors(t *testing.T) {
	s := steps(Step{Read, 0, 2}, Step{Write, 1, 4})
	tx := NewDeclared(7, s, []float64{3, 5})
	if got := tx.Due(0); got != 8 {
		t.Errorf("declared Due(0) = %g, want 8", got)
	}
	if got := tx.TrueTotal(); got != 6 {
		t.Errorf("TrueTotal = %g, want 6 (true costs)", got)
	}
}

func TestDuePanics(t *testing.T) {
	tx := New(1, steps(Step{Read, 0, 1}))
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Due(%d) did not panic", i)
				}
			}()
			tx.Due(i)
		}()
	}
}

func TestNewDeclaredValidates(t *testing.T) {
	s := steps(Step{Read, 0, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		NewDeclared(1, s, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative declaration did not panic")
			}
		}()
		NewDeclared(1, s, []float64{-1})
	}()
}

func TestPartitions(t *testing.T) {
	tx := New(1, steps(Step{Read, 3, 1}, Step{Read, 1, 1}, Step{Write, 3, 1}, Step{Write, 2, 1}))
	got := tx.Partitions()
	want := []PartitionID{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Partitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Partitions = %v, want %v", got, want)
		}
	}
}

func TestLockMode(t *testing.T) {
	tx := New(1, steps(Step{Read, 0, 1}, Step{Write, 0, 1}, Step{Read, 1, 2}))
	if m, ok := tx.LockMode(0); !ok || m != Write {
		t.Errorf("LockMode(0) = %v,%v want Write,true", m, ok)
	}
	if m, ok := tx.LockMode(1); !ok || m != Read {
		t.Errorf("LockMode(1) = %v,%v want Read,true", m, ok)
	}
	if _, ok := tx.LockMode(9); ok {
		t.Error("LockMode(9) found a partition the txn never touches")
	}
}

func TestStringNotation(t *testing.T) {
	tx := New(1, steps(Step{Read, 0, 1}, Step{Read, 1, 3}, Step{Write, 0, 0.2}))
	want := "T1: r(P0:1) -> r(P1:3) -> w(P0:0.2)"
	if got := tx.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: due is nonincreasing along the step sequence and
// due(i) - due(i+1) equals the declared cost of step i.
func TestQuickDueTelescopes(t *testing.T) {
	f := func(costs []float64) bool {
		var ss []Step
		var dec []float64
		for i, c := range costs {
			c = math.Abs(c)
			if math.IsNaN(c) || math.IsInf(c, 0) || c > 1e9 {
				c = 1
			}
			ss = append(ss, Step{Mode: Mode(i % 2), Part: PartitionID(i % 5), Cost: c})
			dec = append(dec, c)
		}
		if len(ss) == 0 {
			return true
		}
		tx := NewDeclared(1, ss, dec)
		for i := 0; i < len(ss)-1; i++ {
			d0, d1 := tx.Due(i), tx.Due(i+1)
			if d0 < d1 {
				return false
			}
			if math.Abs((d0-d1)-dec[i]) > 1e-6*(1+math.Abs(dec[i])) {
				return false
			}
		}
		return tx.Due(len(ss)-1) == dec[len(ss)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
