// Package txn implements the paper's transaction model (§2.2).
//
// A Bulk Access Transaction (BAT) is a sequential execution of steps; each
// step reads or writes exactly one partition and carries an I/O demand
// ("cost") measured in objects — the paper's unit of bulk data processing
// (e.g. 50 disk tracks). A read of fraction a of partition P costs a·|P|
// objects; a bulk update of fraction a costs 2a·|P| (read before write).
// Costs may therefore be fractional.
//
// Every transaction pre-declares its full step sequence and per-step I/O
// demands at start; schedulers build the WTPG from these declarations. The
// declared demand may differ from the true demand (Experiment 4's error
// model), so a Transaction carries both.
package txn

import (
	"fmt"
	"strings"
)

// ID identifies a transaction. IDs are assigned by the simulator and are
// unique within a run. The zero ID is reserved.
type ID int64

func (id ID) String() string { return fmt.Sprintf("T%d", int64(id)) }

// PartitionID identifies a partition locking-granule.
type PartitionID int

func (p PartitionID) String() string { return fmt.Sprintf("P%d", int(p)) }

// Mode is a lock/access mode: shared for reads, exclusive for writes.
type Mode int

const (
	// Read acquires a shared (S) lock.
	Read Mode = iota
	// Write acquires an exclusive (X) lock.
	Write
)

// String returns "r" or "w", mirroring the paper's notation.
func (m Mode) String() string {
	if m == Write {
		return "w"
	}
	return "r"
}

// Conflicts reports whether two access modes conflict on the same granule:
// an X lock conflicts with either an S or an X lock.
func (m Mode) Conflicts(other Mode) bool { return m == Write || other == Write }

// Step is one read or write access to a partition.
type Step struct {
	Mode Mode
	Part PartitionID
	// Cost is the true I/O demand of the step in objects (costof(s)).
	Cost float64
}

// String renders the step in the paper's "r(P3:1.5)" notation.
func (s Step) String() string {
	return fmt.Sprintf("%s(%s:%s)", s.Mode, s.Part, trimFloat(s.Cost))
}

// Conflicts reports whether this step's lock conflicts with another step's
// lock, i.e. they touch the same partition and at least one writes.
func (s Step) Conflicts(o Step) bool {
	return s.Part == o.Part && s.Mode.Conflicts(o.Mode)
}

// T is a transaction: an identifier plus a declared sequence of steps.
//
// Declared holds the I/O demands the transaction announced at start — the
// values the schedulers see. Steps[i].Cost holds the true demand that the
// simulation actually executes. They coincide unless an error model
// perturbed the declarations.
type T struct {
	ID       ID
	Steps    []Step
	Declared []float64
}

// New builds a transaction whose declared demands equal its true demands.
func New(id ID, steps []Step) *T {
	d := make([]float64, len(steps))
	for i, s := range steps {
		d[i] = s.Cost
	}
	return &T{ID: id, Steps: steps, Declared: d}
}

// NewDeclared builds a transaction with explicitly declared demands, one
// per step. It panics if the lengths disagree or a declaration is negative.
func NewDeclared(id ID, steps []Step, declared []float64) *T {
	if len(declared) != len(steps) {
		panic(fmt.Sprintf("txn: %d declarations for %d steps", len(declared), len(steps)))
	}
	for i, c := range declared {
		if c < 0 {
			panic(fmt.Sprintf("txn: negative declared cost %g at step %d", c, i))
		}
	}
	return &T{ID: id, Steps: steps, Declared: declared}
}

// Due returns due(s_i) computed from the declared demands:
//
//	due(s_N) = costof(s_N)
//	due(s_i) = costof(s_i) + due(s_{i+1})
//
// i.e. the number of objects the transaction must still access from the
// start of step i until its commitment. Due(0) is the initial w(T0→Ti).
func (t *T) Due(i int) float64 {
	if i < 0 || i >= len(t.Steps) {
		panic(fmt.Sprintf("txn: Due(%d) of %d-step transaction", i, len(t.Steps)))
	}
	sum := 0.0
	for j := len(t.Steps) - 1; j >= i; j-- {
		sum += t.Declared[j]
	}
	return sum
}

// DeclaredTotal is the declared end-to-end demand, due(s_0).
func (t *T) DeclaredTotal() float64 {
	if len(t.Steps) == 0 {
		return 0
	}
	return t.Due(0)
}

// TrueTotal is the true end-to-end demand in objects.
func (t *T) TrueTotal() float64 {
	sum := 0.0
	for _, s := range t.Steps {
		sum += s.Cost
	}
	return sum
}

// Partitions returns the distinct partitions the transaction touches, in
// first-access order.
func (t *T) Partitions() []PartitionID {
	seen := make(map[PartitionID]bool, len(t.Steps))
	var out []PartitionID
	for _, s := range t.Steps {
		if !seen[s.Part] {
			seen[s.Part] = true
			out = append(out, s.Part)
		}
	}
	return out
}

// LockMode returns the strongest mode the transaction declares on part:
// Write if any declared step writes it, else Read. The second result is
// false when the transaction never touches the partition. The paper's
// lock-declarations are per-granule: a transaction reading then writing a
// partition needs the X lock for the whole span it holds locks.
func (t *T) LockMode(part PartitionID) (Mode, bool) {
	mode, found := Read, false
	for _, s := range t.Steps {
		if s.Part != part {
			continue
		}
		found = true
		if s.Mode == Write {
			mode = Write
		}
	}
	return mode, found
}

// String renders the transaction in the paper's Figure-1 style:
// "T1: r(P0:1) -> r(P1:3) -> w(P0:1)".
func (t *T) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", t.ID)
	for i, s := range t.Steps {
		if i > 0 {
			b.WriteString(" ->")
		}
		b.WriteString(" ")
		b.WriteString(s.String())
	}
	return b.String()
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}
