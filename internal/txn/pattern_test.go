package txn

import (
	"strings"
	"testing"
)

func TestParsePattern1(t *testing.T) {
	p, err := ParsePattern("Pattern1", "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(p.Steps))
	}
	want := []StepTemplate{
		{Read, "F1", 1}, {Read, "F2", 5}, {Write, "F1", 0.2}, {Write, "F2", 1},
	}
	for i, w := range want {
		if p.Steps[i] != w {
			t.Errorf("step %d = %+v, want %+v", i, p.Steps[i], w)
		}
	}
	vars := p.Vars()
	if len(vars) != 2 || vars[0] != "F1" || vars[1] != "F2" {
		t.Errorf("Vars = %v, want [F1 F2]", vars)
	}
}

func TestParsePatternWhitespaceTolerant(t *testing.T) {
	p, err := ParsePattern("p", "  r( B : 5 )->w(F1:1)  ->  w(F2:1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 || p.Steps[0].Var != "B" || p.Steps[0].Cost != 5 {
		t.Errorf("unexpected parse: %+v", p.Steps)
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		"",
		"x(F1:1)",
		"r(F1)",
		"rF1:1",
		"r(F1:1) -> ",
		"r(:1)",
		"r(1F:1)",
		"r(F-1:1)",
		"r(F1:-2)",
		"r(F1:abc)",
		"r(F1:1) => w(F1:1)",
	}
	for _, src := range bad {
		if _, err := ParsePattern("bad", src); err == nil {
			t.Errorf("ParsePattern(%q) succeeded, want error", src)
		}
	}
}

func TestBind(t *testing.T) {
	p := MustParsePattern("Pattern2", "r(B:5) -> w(F1:1) -> w(F2:1)")
	tx, err := p.Bind(42, map[string]PartitionID{"B": 3, "F1": 9, "F2": 12})
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID != 42 {
		t.Errorf("ID = %v, want 42", tx.ID)
	}
	want := []Step{{Read, 3, 5}, {Write, 9, 1}, {Write, 12, 1}}
	for i, w := range want {
		if tx.Steps[i] != w {
			t.Errorf("step %d = %+v, want %+v", i, tx.Steps[i], w)
		}
	}
	if tx.Due(0) != 7 {
		t.Errorf("Due(0) = %g, want 7", tx.Due(0))
	}
}

func TestBindUnboundVariable(t *testing.T) {
	p := MustParsePattern("p", "r(B:5) -> w(F1:1)")
	if _, err := p.Bind(1, map[string]PartitionID{"B": 0}); err == nil {
		t.Fatal("Bind with unbound variable succeeded")
	} else if !strings.Contains(err.Error(), "F1") {
		t.Errorf("error %q does not name the unbound variable", err)
	}
}

func TestPatternRoundTrip(t *testing.T) {
	src := "r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)"
	p := MustParsePattern("Pattern1", src)
	if got := p.String(); got != src {
		t.Errorf("String() = %q, want %q", got, src)
	}
	p2, err := ParsePattern("again", p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != src {
		t.Errorf("round trip changed pattern: %q", p2.String())
	}
}

func TestMustParsePatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePattern on invalid input did not panic")
		}
	}()
	MustParsePattern("bad", "nope")
}
