package txn

import (
	"strings"
	"testing"
)

// FuzzParsePattern: arbitrary input must never panic; successful parses
// must round-trip through String().
func FuzzParsePattern(f *testing.F) {
	seeds := []string{
		"r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)",
		"r(B:5) -> w(F1:1) -> w(F2:1)",
		"w(A:0)",
		"r(_x9:12.75)",
		"",
		"x(F:1)",
		"r(F1:1) ->",
		"r((:1)",
		"r(F1:1e3)",
		strings.Repeat("r(A:1) -> ", 50) + "w(B:1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePattern("fuzz", src)
		if err != nil {
			return
		}
		out := p.String()
		p2, err := ParsePattern("fuzz2", out)
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", out, err)
		}
		if p2.String() != out {
			t.Fatalf("round-trip changed: %q vs %q", p2.String(), out)
		}
		if len(p2.Steps) != len(p.Steps) {
			t.Fatalf("step count changed: %d vs %d", len(p2.Steps), len(p.Steps))
		}
	})
}
