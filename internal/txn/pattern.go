package txn

import (
	"fmt"
	"strconv"
	"strings"
)

// StepTemplate is one step of a workload pattern: an access mode, a
// symbolic partition variable (e.g. "F1" or "B"), and an I/O demand in
// objects. The paper writes Pattern1 as
//
//	r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)
//
// where F1, F2 are bound to concrete partitions per transaction instance.
type StepTemplate struct {
	Mode Mode
	Var  string
	Cost float64
}

// String renders the template step in the paper's notation.
func (s StepTemplate) String() string {
	return fmt.Sprintf("%s(%s:%g)", s.Mode, s.Var, s.Cost)
}

// Pattern is a transaction template: a named sequence of step templates
// over symbolic partition variables.
type Pattern struct {
	Name  string
	Steps []StepTemplate
}

// ParsePattern parses the paper's arrow notation, e.g.
//
//	"r(F1:1) -> r(F2:5) -> w(F1:0.2) -> w(F2:1)"
//
// Variables are arbitrary identifiers (letters, digits, underscore,
// starting with a letter or underscore). Costs are nonnegative decimals.
func ParsePattern(name, src string) (*Pattern, error) {
	p := &Pattern{Name: name}
	src = strings.TrimSpace(src)
	if src == "" {
		return nil, fmt.Errorf("txn: empty pattern %q", name)
	}
	for i, tok := range strings.Split(src, "->") {
		st, err := parseStepTemplate(strings.TrimSpace(tok))
		if err != nil {
			return nil, fmt.Errorf("txn: pattern %q step %d: %w", name, i, err)
		}
		p.Steps = append(p.Steps, st)
	}
	return p, nil
}

// MustParsePattern is ParsePattern that panics on error; intended for
// package-level pattern constants.
func MustParsePattern(name, src string) *Pattern {
	p, err := ParsePattern(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseStepTemplate(tok string) (StepTemplate, error) {
	var st StepTemplate
	if tok == "" {
		return st, fmt.Errorf("empty step")
	}
	switch tok[0] {
	case 'r':
		st.Mode = Read
	case 'w':
		st.Mode = Write
	default:
		return st, fmt.Errorf("step %q must begin with 'r' or 'w'", tok)
	}
	rest := tok[1:]
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return st, fmt.Errorf("step %q: want %c(VAR:COST)", tok, tok[0])
	}
	body := rest[1 : len(rest)-1]
	colon := strings.LastIndex(body, ":")
	if colon < 0 {
		return st, fmt.Errorf("step %q: missing ':' separator", tok)
	}
	name := strings.TrimSpace(body[:colon])
	costStr := strings.TrimSpace(body[colon+1:])
	if !validVar(name) {
		return st, fmt.Errorf("step %q: invalid variable %q", tok, name)
	}
	cost, err := strconv.ParseFloat(costStr, 64)
	if err != nil {
		return st, fmt.Errorf("step %q: bad cost %q: %v", tok, costStr, err)
	}
	if cost < 0 {
		return st, fmt.Errorf("step %q: negative cost", tok)
	}
	st.Var = name
	st.Cost = cost
	return st, nil
}

func validVar(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Vars returns the distinct variables of the pattern in first-use order.
func (p *Pattern) Vars() []string {
	seen := make(map[string]bool, len(p.Steps))
	var out []string
	for _, s := range p.Steps {
		if !seen[s.Var] {
			seen[s.Var] = true
			out = append(out, s.Var)
		}
	}
	return out
}

// Bind instantiates the pattern into a concrete transaction by mapping
// every variable to a partition. Unbound variables are an error; extra
// bindings are ignored.
func (p *Pattern) Bind(id ID, binding map[string]PartitionID) (*T, error) {
	ss := make([]Step, len(p.Steps))
	for i, st := range p.Steps {
		part, ok := binding[st.Var]
		if !ok {
			return nil, fmt.Errorf("txn: pattern %q: unbound variable %q", p.Name, st.Var)
		}
		ss[i] = Step{Mode: st.Mode, Part: part, Cost: st.Cost}
	}
	return New(id, ss), nil
}

// String renders the pattern in the paper's arrow notation.
func (p *Pattern) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, " -> ")
}
