package experiments

import (
	"fmt"
	"sort"
	"strings"

	"batsched/internal/obs"
	"batsched/internal/sim"
	"batsched/internal/txn"
	"batsched/internal/workload"
)

// MixedResult reports the mixed-workload experiment: short on-line
// transactions sharing the machine with BATs, per scheduler.
type MixedResult struct {
	Lambda     float64
	ShortShare float64
	Rows       []MixedRow
}

// MixedRow is one scheduler's outcome in the mixed workload.
type MixedRow struct {
	Scheduler      string
	ShortMeanRT    float64 // seconds
	BATMeanRT      float64 // seconds
	ShortCompleted int
	BATCompleted   int
	Throughput     float64
	// Metrics holds this run's trace aggregates when the experiment was
	// given WithMetrics.
	Metrics *obs.Metrics
}

// RunMixedWorkload runs the paper's conclusion scenario: a mixture of
// short transactions (share shortShare of arrivals, tiny per-step
// demands but full partition locks) and Pattern1 BATs, at total arrival
// rate lambda. It reports per-class response times for each scheduler —
// quantifying "different schedulers are necessary for different classes
// of jobs".
func RunMixedWorkload(o Options, lambda, shortShare float64, opts ...Option) (*MixedResult, error) {
	o = o.withDefaults()
	rc := buildRunConfig(opts)
	o.Machine.NumParts = 16
	if lambda <= 0 {
		lambda = 1.0
	}
	if shortShare <= 0 || shortShare >= 1 {
		shortShare = 0.8
	}
	res := &MixedResult{Lambda: lambda, ShortShare: shortShare}
	factories := factoriesByName("NODC", "ASL", "CHAIN", "K2", "C2PL")
	// One grid cell per scheduler, fanned onto the same worker pool as
	// the figure/ablation grids (runJobs): per-run sinks, pre-indexed
	// result slots, deterministic sink merge order.
	cfgs := make([]sim.Config, len(factories))
	for i, f := range factories {
		mix, err := workload.NewMixture("mixed",
			workload.Component{Class: "short", Weight: shortShare,
				Gen: workload.ShortTransactions(16, 0.02)},
			workload.Component{Class: "bat", Weight: 1 - shortShare,
				Gen: workload.Experiment1(16)},
		)
		if err != nil {
			return nil, err
		}
		cfgs[i] = sim.Config{
			Machine:              o.Machine,
			Scheduler:            f,
			Workload:             mix,
			ArrivalRate:          lambda,
			Horizon:              o.Horizon,
			Seed:                 o.Seed,
			CheckSerializability: f.Label != "NODC",
			Classify:             func(t *txn.T) string { return mix.ClassOf(t.ID) },
		}
	}
	results, jobMetrics, errs := runJobs(rc, rc.workers(o), cfgs, o.Progress)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mixed %s: %w", factories[i].Label, err)
		}
		r := results[i]
		res.Rows = append(res.Rows, MixedRow{
			Scheduler:      r.Scheduler,
			ShortMeanRT:    r.ClassMeanRT["short"],
			BATMeanRT:      r.ClassMeanRT["bat"],
			ShortCompleted: r.ClassCompleted["short"],
			BATCompleted:   r.ClassCompleted["bat"],
			Throughput:     r.Throughput,
			Metrics:        jobMetrics[i],
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Scheduler < res.Rows[j].Scheduler })
	return res, nil
}

// Render formats the mixed-workload table.
func (r *MixedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed workload: %.0f%% short transactions + %.0f%% Pattern1 BATs at λ = %g TPS\n",
		100*r.ShortShare, 100*(1-r.ShortShare), r.Lambda)
	fmt.Fprintf(&b, "  %-12s %14s %12s %10s %8s %10s\n",
		"scheduler", "short RT (s)", "BAT RT (s)", "shorts", "BATs", "total TPS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %14.2f %12.2f %10d %8d %10.3f\n",
			row.Scheduler, row.ShortMeanRT, row.BATMeanRT,
			row.ShortCompleted, row.BATCompleted, row.Throughput)
	}
	return b.String()
}
