package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"batsched/internal/event"
	"batsched/internal/obs"
)

// epochSweepOpts bounds the sweep for test speed: a short stream at a
// load where the windows still batch arrivals.
func epochSweepOpts() (Options, []event.Time) {
	o := quickOpts()
	o.Horizon = 2_000_000 // the stream is bounded by maxTxns, not time
	return o, []event.Time{0, 500, 2000, 5000}
}

// TestRunEpochSweep exercises the sweep end to end: one row per window
// in axis order, a batching-free baseline at window 0, real batching at
// the wide windows, and JSON/CSV renderings that carry the same rows.
func TestRunEpochSweep(t *testing.T) {
	o, windows := epochSweepOpts()
	r, err := RunEpochSweep(o, windows, 2.0, 30, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(windows) {
		t.Fatalf("rows %d, want %d", len(r.Rows), len(windows))
	}
	for i, row := range r.Rows {
		if row.Window != windows[i] {
			t.Fatalf("row %d window %v, want %v", i, row.Window, windows[i])
		}
		if row.Completed != 30 {
			t.Errorf("window %v completed %d of 30", row.Window, row.Completed)
		}
		if row.Makespan <= 0 || row.P99RT <= 0 || row.P99RT < row.MeanRT/2 {
			t.Errorf("window %v: implausible makespan %v / p99 %g / mean %g",
				row.Window, row.Makespan, row.P99RT, row.MeanRT)
		}
		if row.Metrics == nil {
			t.Errorf("window %v: no metrics", row.Window)
		}
	}
	if base := r.Rows[0]; base.Epochs != 0 || base.MaxBatch != 0 {
		t.Errorf("window-0 baseline batched: %+v", base)
	}
	wide := r.Rows[len(r.Rows)-1]
	if wide.Epochs == 0 || wide.MaxBatch < 2 {
		t.Errorf("window %v never batched two arrivals: %+v", wide.Window, wide)
	}

	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back EpochSweepResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Rows) != len(windows) || back.Scheduler != "EPOCH" {
		t.Errorf("JSON document: scheduler %q, %d rows", back.Scheduler, len(back.Rows))
	}
	csv := r.CSV()
	if got := strings.Count(csv, "\n"); got != len(windows)+1 {
		t.Errorf("CSV has %d lines, want header + %d rows", got, len(windows))
	}
}

// TestEpochSweepParallelDeterminism extends the PR-5 guarantee to the
// new sweep axis: the same sweep at -parallel 1 and -parallel 8 must
// render byte-identical tables, JSON documents and JSONL traces.
func TestEpochSweepParallelDeterminism(t *testing.T) {
	run := func(parallel int) (string, []byte, []byte) {
		o, windows := epochSweepOpts()
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		r, err := RunEpochSweep(o, windows, 2.0, 30,
			WithParallelism(parallel), WithTrace(sink))
		if err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return r.Render() + r.CSV(), data, buf.Bytes()
	}
	tables1, json1, trace1 := run(1)
	tables8, json8, trace8 := run(8)
	if tables1 != tables8 {
		t.Errorf("rendered sweep differs:\n--- 1:\n%s\n--- 8:\n%s", tables1, tables8)
	}
	if !bytes.Equal(json1, json8) {
		t.Errorf("JSON documents differ between -parallel 1 and -parallel 8")
	}
	if n1, n8 := stripDurNS(trace1), stripDurNS(trace8); !bytes.Equal(n1, n8) {
		t.Errorf("JSONL traces differ beyond dur_ns: %d vs %d bytes", len(n1), len(n8))
	}
	if len(trace1) == 0 {
		t.Error("empty trace — the shared sink saw no events")
	}
}

// TestEpochSweepDefaults pins the zero-value contract: nil windows and
// non-positive lambda/maxTxns select the documented defaults.
func TestEpochSweepDefaults(t *testing.T) {
	if ws := DefaultEpochWindows(); len(ws) < 5 || ws[0] != 0 {
		t.Fatalf("default windows %v", ws)
	}
	o := quickOpts()
	o.Horizon = 4_000_000
	r, err := RunEpochSweep(o, []event.Time{0, 1000}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lambda != 0.8 || r.MaxTxns != 20 {
		t.Errorf("defaults: lambda %g, maxTxns %d", r.Lambda, r.MaxTxns)
	}
	if _, err := RunEpochSweep(o, []event.Time{-1}, 0, 10); err == nil {
		t.Error("negative window did not error")
	}
}
