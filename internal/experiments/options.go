package experiments

import (
	"batsched/internal/obs"
	"batsched/internal/sim"
)

// Option attaches observability to an experiment run. The Options struct
// keeps the simulation parameters (machine, horizon, sweep); Options
// values stay plain data while cross-cutting concerns arrive as
// functional options:
//
//	res, err := experiments.RunExperiment1(o,
//		experiments.WithMetrics(),
//		experiments.WithTrace(sink))
type Option func(*runConfig)

type runConfig struct {
	trace   obs.Observer
	metrics bool
}

func buildRunConfig(opts []Option) runConfig {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	return rc
}

// WithTrace streams every simulation's structured events to o. One
// observer is shared by all runs of the grid, which execute in parallel —
// the obs sinks are goroutine-safe, and each event's Sched label tells
// the runs apart.
func WithTrace(o obs.Observer) Option {
	return func(rc *runConfig) { rc.trace = o }
}

// WithMetrics aggregates per-sweep-point metrics: every resulting Point
// carries an obs.Metrics with decision counts, latency histograms and
// graph-size distributions, merged across replicates of the same cell.
func WithMetrics() Option {
	return func(rc *runConfig) { rc.metrics = true }
}

// forJob builds the sim.Run options for one grid job. The returned
// Metrics (nil unless WithMetrics) is private to the job, so the
// per-point aggregates never mix schedulers or sweep points.
func (rc runConfig) forJob() (*obs.Metrics, []sim.Option) {
	var observers []obs.Observer
	if rc.trace != nil {
		observers = append(observers, rc.trace)
	}
	var m *obs.Metrics
	if rc.metrics {
		m = obs.NewMetrics()
		observers = append(observers, m)
	}
	if len(observers) == 0 {
		return nil, nil
	}
	return m, []sim.Option{sim.WithTrace(obs.Multi(observers...))}
}
