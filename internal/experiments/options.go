package experiments

import (
	"sync"

	"batsched/internal/fault"
	"batsched/internal/obs"
	"batsched/internal/sim"
)

// Option attaches observability or tuning to an experiment run. The
// Options struct keeps the simulation parameters (machine, horizon,
// sweep); Options values stay plain data while cross-cutting concerns
// arrive as functional options:
//
//	res, err := experiments.RunExperiment1(o,
//		experiments.WithMetrics(),
//		experiments.WithTrace(sink),
//		experiments.WithParallelism(4))
type Option func(*runConfig)

type runConfig struct {
	trace    obs.Observer
	metrics  bool
	parallel int
	inj      *fault.Injector
}

func buildRunConfig(opts []Option) runConfig {
	var rc runConfig
	for _, opt := range opts {
		opt(&rc)
	}
	return rc
}

// WithTrace streams every simulation's structured events to o.
//
// Sink ownership rule: the shared observer is never handed to a running
// simulation. Each grid cell emits into a private per-run buffer, and
// completed buffers are replayed into o in deterministic grid order
// (scheduler-major, then λ, then replicate) — so the byte stream an
// attached obs.JSONL sink produces is identical whether the grid ran on
// one worker or on runtime.NumCPU() workers, and o only ever sees
// events from the single goroutine that owns the replay cursor at that
// moment.
func WithTrace(o obs.Observer) Option {
	return func(rc *runConfig) { rc.trace = o }
}

// WithMetrics aggregates per-sweep-point metrics: every resulting Point
// carries an obs.Metrics with decision counts, latency histograms and
// graph-size distributions, merged across replicates of the same cell.
// Each run owns its own obs.Metrics while it executes; the per-cell
// aggregates are folded together with obs.(*Metrics).Merge after the
// runs complete, in grid order.
func WithMetrics() Option {
	return func(rc *runConfig) { rc.metrics = true }
}

// WithFaults runs every grid cell under the fault injector: injected
// aborts, slow partitions, admission refusals, node crashes — whatever
// the injector's Config enables. The same injector is shared by every
// cell; that is safe and deterministic because fault decisions are pure
// functions of (seed, identifier), never of call order, so each cell
// sees exactly the schedule its own transaction IDs draw. A nil
// injector is ignored.
func WithFaults(in *fault.Injector) Option {
	return func(rc *runConfig) { rc.inj = in }
}

// WithParallelism bounds the harness worker pool to n concurrent
// simulations. n <= 0 (or omitting the option) falls back to
// Options.Workers, whose default is runtime.NumCPU(). Results are
// written into pre-indexed slots and sinks are merged in grid order, so
// every parallelism level produces byte-identical output.
func WithParallelism(n int) Option {
	return func(rc *runConfig) {
		if n > 0 {
			rc.parallel = n
		}
	}
}

// workers resolves the effective pool size: the WithParallelism
// override wins, then Options.Workers (defaulted to runtime.NumCPU()
// by withDefaults).
func (rc runConfig) workers(o Options) int {
	if rc.parallel > 0 {
		return rc.parallel
	}
	return o.Workers
}

// capture is a per-run trace buffer. A simulation is single-threaded
// and the buffer is owned by exactly one run, so Observe needs no lock;
// the buffered events are replayed into the shared observer — by
// orderedFlush, under its mutex — only after the run has completed.
type capture struct {
	events []obs.Event
}

// Observe appends the event to the run-private buffer.
func (c *capture) Observe(e obs.Event) { c.events = append(c.events, e) }

// cellSinks are the sinks private to one grid cell's run.
type cellSinks struct {
	metrics *obs.Metrics // nil unless WithMetrics
	trace   *capture     // nil unless WithTrace
}

// forJob builds one grid job's private sinks and the sim.Run options
// wiring them up. Nothing here is shared with any other run: the
// Metrics is merged per cell after completion, the capture buffer is
// replayed into the shared observer in grid order.
func (rc runConfig) forJob() (cellSinks, []sim.Option) {
	var s cellSinks
	var simOpts []sim.Option
	if rc.inj.Enabled() {
		simOpts = append(simOpts, sim.WithFaults(rc.inj))
	}
	var observers []obs.Observer
	if rc.trace != nil {
		s.trace = &capture{}
		observers = append(observers, s.trace)
	}
	if rc.metrics {
		s.metrics = obs.NewMetrics()
		observers = append(observers, s.metrics)
	}
	if len(observers) > 0 {
		simOpts = append(simOpts, sim.WithTrace(obs.Multi(observers...)))
	}
	return s, simOpts
}

// orderedFlush replays per-run trace buffers into the shared observer
// in job-index order, regardless of the order in which parallel runs
// complete. Job i's events are delivered only once jobs 0..i-1 have
// been delivered, which makes the shared sink's event stream — and
// hence a JSONL trace file — a pure function of the grid, independent
// of worker count and scheduling.
type orderedFlush struct {
	shared obs.Observer
	mu     sync.Mutex
	next   int
	ready  []*capture
	done   []bool
}

func newOrderedFlush(shared obs.Observer, n int) *orderedFlush {
	if shared == nil {
		return nil
	}
	return &orderedFlush{shared: shared, ready: make([]*capture, n), done: make([]bool, n)}
}

// complete records job i's buffer and flushes every maximal prefix of
// completed jobs. A nil flusher (no shared observer) is a no-op.
func (f *orderedFlush) complete(i int, c *capture) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ready[i] = c
	f.done[i] = true
	for f.next < len(f.done) && f.done[f.next] {
		if buf := f.ready[f.next]; buf != nil {
			for _, e := range buf.events {
				f.shared.Observe(e)
			}
			f.ready[f.next] = nil // release the buffer
		}
		f.next++
	}
}
