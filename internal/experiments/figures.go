package experiments

import (
	"fmt"

	"batsched/internal/core/sched"
	"batsched/internal/workload"
)

// factoriesByName resolves scheduler names through the registry — the
// single place that constructs schedulers by name. Experiment scheduler
// line-ups are spelled as the names the paper (and the CLIs) use.
func factoriesByName(names ...string) []sched.Factory {
	out := make([]sched.Factory, len(names))
	for i, name := range names {
		out[i] = sched.MustLookup(name)
	}
	return out
}

// experiment1Factories are the schedulers of Figures 6 and 7.
func experiment1Factories() []sched.Factory {
	return factoriesByName("NODC", "ASL", "CHAIN", "K2", "C2PL")
}

// Experiment1Result carries the Experiment 1 sweep, which renders both
// Figure 6 (mean response time vs. λ) and Figure 7 (throughput vs. λ,
// with NODC's throughput as the useful-utilization reference).
type Experiment1Result struct {
	Sweeps   []Sweep
	RTTarget float64
}

// RunExperiment1 runs Experiment 1 (§4.2): Pattern1 over NumParts = 16
// partitions, schedulers NODC/ASL/CHAIN/K2/C2PL, arrival-rate sweep.
func RunExperiment1(o Options, opts ...Option) (*Experiment1Result, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	sweeps, err := runGrid(o, experiment1Factories(), lambdas, func() workload.Generator {
		return workload.Experiment1(16)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &Experiment1Result{Sweeps: sweeps, RTTarget: o.RTTargetSeconds}, nil
}

// ThroughputTable returns, per scheduler, the throughput at the target
// response time — the comparison the paper reads off Figure 6.
func (r *Experiment1Result) ThroughputTable() map[string]float64 {
	out := make(map[string]float64, len(r.Sweeps))
	for _, s := range r.Sweeps {
		tps, _ := s.ThroughputAt(r.RTTarget)
		out[s.Label] = tps
	}
	return out
}

// Experiment2Result carries Figure 8: for each NumHots, each scheduler's
// throughput at the target response time.
type Experiment2Result struct {
	NumHots  []int
	RTTarget float64
	// TPS[label][i] is the throughput at NumHots[i].
	TPS map[string][]float64
	// Sweeps[i] holds the underlying sweeps at NumHots[i].
	Sweeps [][]Sweep
}

// experiment2Factories are the schedulers of Figures 8 and 9.
func experiment2Factories() []sched.Factory {
	return factoriesByName("ASL", "CHAIN", "K2", "C2PL")
}

// RunExperiment2 runs Experiment 2 (§4.3): Pattern2 over 8 read-only
// partitions plus a hot set of NumHots ∈ {4, 8, 16, 32} partitions;
// reported is each scheduler's throughput at RT = 70 s.
func RunExperiment2(o Options, opts ...Option) (*Experiment2Result, error) {
	o = o.withDefaults()
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	hots := []int{4, 8, 16, 32}
	res := &Experiment2Result{
		NumHots:  hots,
		RTTarget: o.RTTargetSeconds,
		TPS:      make(map[string][]float64),
	}
	for _, nh := range hots {
		layout := workload.HotSetLayout{NumReadOnly: 8, NumHots: nh}
		oo := o
		oo.Machine.NumParts = layout.NumParts()
		sweeps, err := runGrid(oo, experiment2Factories(), lambdas, func() workload.Generator {
			return workload.Experiment2(layout)
		}, opts...)
		if err != nil {
			return nil, fmt.Errorf("NumHots=%d: %w", nh, err)
		}
		res.Sweeps = append(res.Sweeps, sweeps)
		for _, s := range sweeps {
			tps, _ := s.ThroughputAt(o.RTTargetSeconds)
			res.TPS[s.Label] = append(res.TPS[s.Label], tps)
		}
	}
	return res, nil
}

// Experiment3Result carries Figure 9: the Pattern3 response-time sweep at
// NumHots = 8.
type Experiment3Result struct {
	Sweeps   []Sweep
	RTTarget float64
}

// RunExperiment3 runs Experiment 3 (§4.3): Pattern3 (longer blocking
// time) over a hot set of 8 partitions.
func RunExperiment3(o Options, opts ...Option) (*Experiment3Result, error) {
	o = o.withDefaults()
	layout := workload.HotSetLayout{NumReadOnly: 8, NumHots: 8}
	o.Machine.NumParts = layout.NumParts()
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	sweeps, err := runGrid(o, experiment2Factories(), lambdas, func() workload.Generator {
		return workload.Experiment3(layout)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return &Experiment3Result{Sweeps: sweeps, RTTarget: o.RTTargetSeconds}, nil
}

// ThroughputTable returns throughput at the target RT per scheduler.
func (r *Experiment3Result) ThroughputTable() map[string]float64 {
	out := make(map[string]float64, len(r.Sweeps))
	for _, s := range r.Sweeps {
		tps, _ := s.ThroughputAt(r.RTTarget)
		out[s.Label] = tps
	}
	return out
}

// Experiment4Result carries Figure 10: throughput at the target RT as a
// function of the declaration error σ, for CHAIN, K2, C2PL and the
// CHAIN-C2PL / K2-C2PL lower bounds.
type Experiment4Result struct {
	Sigmas   []float64
	RTTarget float64
	// TPS[label][i] is the throughput at Sigmas[i].
	TPS map[string][]float64
	// Sweeps[i] holds the underlying sweeps at Sigmas[i].
	Sweeps [][]Sweep
}

// experiment4Factories are the schedulers of Figure 10. The hybrids and
// C2PL ignore declared demands, so their results are flat in σ; the
// paper plots them as reference lines.
func experiment4Factories() []sched.Factory {
	return factoriesByName("CHAIN", "K2", "C2PL", "CHAIN-C2PL", "K2-C2PL")
}

// RunExperiment4 runs Experiment 4 (§4.4): Pattern1 with erroneous
// declared I/O demands, C = C0(1+x), x ~ N(0, σ²).
func RunExperiment4(o Options, sigmas []float64, opts ...Option) (*Experiment4Result, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	if sigmas == nil {
		sigmas = []float64{0, 0.25, 0.5, 0.75, 1.0}
	}
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &Experiment4Result{
		Sigmas:   sigmas,
		RTTarget: o.RTTargetSeconds,
		TPS:      make(map[string][]float64),
	}
	for _, sig := range sigmas {
		sig := sig
		sweeps, err := runGrid(o, experiment4Factories(), lambdas, func() workload.Generator {
			return workload.WithDeclarationError(workload.Experiment1(16), sig)
		}, opts...)
		if err != nil {
			return nil, fmt.Errorf("sigma=%g: %w", sig, err)
		}
		res.Sweeps = append(res.Sweeps, sweeps)
		for _, s := range sweeps {
			tps, _ := s.ThroughputAt(o.RTTargetSeconds)
			res.TPS[s.Label] = append(res.TPS[s.Label], tps)
		}
	}
	return res, nil
}
