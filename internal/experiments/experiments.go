// Package experiments defines and runs the paper's four evaluation
// experiments (§4) and regenerates every figure of the evaluation
// section:
//
//	Figure 6  — Experiment 1: arrival rate vs. mean response time
//	Figure 7  — Experiment 1: arrival rate vs. throughput
//	Figure 8  — Experiment 2: NumHots vs. throughput at RT = 70 s
//	Figure 9  — Experiment 3: arrival rate vs. mean response time
//	Figure 10 — Experiment 4: declaration error σ vs. throughput at RT = 70 s
//
// Individual simulation runs are deterministic; the harness fans the
// (scheduler × λ × replicate) grid onto a fixed worker pool (Workers /
// WithParallelism, default runtime.NumCPU()), using the same seed for
// every scheduler at the same sweep point so comparisons are paired.
// Every run is a pure function of (config, seed) with fully private
// state — its own sim instance, RNG, fault injector and obs sinks —
// and results land in pre-indexed slots, with shared-sink delivery
// serialized in grid order, so output is byte-identical at every
// parallelism level (see docs/PERFORMANCE.md §6).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/machine"
	"batsched/internal/obs"
	"batsched/internal/sim"
	"batsched/internal/stats"
	"batsched/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Machine is the Table 1 machine configuration.
	Machine machine.Config
	// Horizon is the simulated duration (paper: 2,000,000 ms).
	Horizon event.Time
	// Seed is the base random seed.
	Seed int64
	// Workers bounds the concurrently running simulations
	// (0 = runtime.NumCPU()). The WithParallelism option, when given,
	// takes precedence. Output is byte-identical at every setting.
	Workers int
	// Lambdas overrides the default arrival-rate sweep (TPS).
	Lambdas []float64
	// RTTargetSeconds is the comparison response time (paper: 70 s).
	RTTargetSeconds float64
	// Replications runs each grid cell with this many seeds and averages
	// the metrics (0 or 1 = single run, as in the paper). Seeds stay
	// paired across schedulers.
	Replications int
	// Progress, if set, receives (completedRuns, totalRuns) updates.
	Progress func(done, total int)
}

func (o Options) withDefaults() Options {
	if o.Machine.NumNodes == 0 {
		o.Machine = machine.DefaultConfig()
	}
	if o.Horizon == 0 {
		o.Horizon = 2_000_000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.RTTargetSeconds == 0 {
		o.RTTargetSeconds = 70
	}
	if o.Seed == 0 {
		o.Seed = 1990
	}
	if o.Replications < 1 {
		o.Replications = 1
	}
	return o
}

// Point is one measured sweep point. With Replications > 1, Result holds
// the cross-seed average (see aggregate) and Replicates the individual
// runs.
type Point struct {
	Lambda     float64
	Result     *sim.Result
	Replicates []*sim.Result
	// TPSStd is the cross-seed standard deviation of the throughput
	// (0 for single runs).
	TPSStd float64
	// Metrics aggregates this cell's trace events (decision counts,
	// latency histograms, graph sizes) across replicates. Only set when
	// the run was given WithMetrics.
	Metrics *obs.Metrics
}

// Sweep is one scheduler's arrival-rate sweep.
type Sweep struct {
	Label  string
	Points []Point
}

// SweepPoints converts to the stats package's interpolation input.
func (s Sweep) SweepPoints() []stats.SweepPoint {
	out := make([]stats.SweepPoint, len(s.Points))
	for i, p := range s.Points {
		out[i] = stats.SweepPoint{Lambda: p.Lambda, RT: p.Result.MeanRT, TPS: p.Result.Throughput}
	}
	return out
}

// ThroughputAt interpolates the sweep's throughput at the given mean
// response time (seconds).
func (s Sweep) ThroughputAt(rtSeconds float64) (float64, bool) {
	return stats.ThroughputAtRT(s.SweepPoints(), rtSeconds)
}

type job struct {
	schedIdx, lambdaIdx, rep int
	cfg                      sim.Config
}

// runJobs executes the given simulation configs on a fixed pool of
// `workers` goroutines pulling job indices from a channel. Every run is
// fully isolated — its own sim instance, seed-derived RNG and fault
// injector (sim.Run builds all three from the config), plus the private
// obs sinks from runConfig.forJob — and its result lands in the
// pre-indexed slot results[i], so downstream assembly never depends on
// completion order. Per-run trace buffers are replayed into the shared
// observer in job order by orderedFlush; per-run Metrics come back for
// the caller to merge, again in job order. Progress (if non-nil) is
// called with monotonically increasing completion counts under a lock.
func runJobs(rc runConfig, workers int, cfgs []sim.Config,
	progress func(done, total int)) ([]*sim.Result, []*obs.Metrics, []error) {

	n := len(cfgs)
	results := make([]*sim.Result, n)
	errs := make([]error, n)
	jobMetrics := make([]*obs.Metrics, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	flush := newOrderedFlush(rc.trace, n)
	var mu sync.Mutex
	done := 0
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				sinks, simOpts := rc.forJob()
				jobMetrics[i] = sinks.metrics
				results[i], errs[i] = sim.Run(cfgs[i], simOpts...)
				flush.complete(i, sinks.trace)
				if progress != nil {
					mu.Lock()
					done++
					progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, jobMetrics, errs
}

// runGrid executes the (factory × lambda) grid on the worker pool. The
// workload constructor is called once per run so stateful generators are
// never shared. Serializability checking is enabled for every scheduler
// except NODC (which is intentionally non-serializable).
func runGrid(o Options, factories []sched.Factory, lambdas []float64,
	newWorkload func() workload.Generator, opts ...Option) ([]Sweep, error) {
	return runGridMutate(o, factories, lambdas, newWorkload, nil, opts...)
}

// runGridMutate is runGrid with a per-run config hook (used by the
// ablation experiments to flip placement, costs, etc.). The grid is
// flattened scheduler-major into a job list, fanned onto the pool, and
// reassembled from the indexed result slots — identical output at every
// parallelism level.
func runGridMutate(o Options, factories []sched.Factory, lambdas []float64,
	newWorkload func() workload.Generator, mutate func(*sim.Config), opts ...Option) ([]Sweep, error) {

	rc := buildRunConfig(opts)
	reps := o.Replications
	if reps < 1 {
		reps = 1
	}
	var jobs []job
	var cfgs []sim.Config
	for si, f := range factories {
		for li, l := range lambdas {
			for rep := 0; rep < reps; rep++ {
				cfg := sim.Config{
					Machine:     o.Machine,
					Scheduler:   f,
					Workload:    newWorkload(),
					ArrivalRate: l,
					Horizon:     o.Horizon,
					// Paired across schedulers: the seed depends only on
					// the sweep point and the replicate index.
					Seed:                 o.Seed + int64(li*1000+rep),
					CheckSerializability: f.Label != "NODC",
				}
				if mutate != nil {
					mutate(&cfg)
				}
				jobs = append(jobs, job{schedIdx: si, lambdaIdx: li, rep: rep, cfg: cfg})
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, jobMetrics, errs := runJobs(rc, rc.workers(o), cfgs, o.Progress)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s @ λ=%g: %w",
				factories[jobs[i].schedIdx].Label, jobs[i].cfg.ArrivalRate, err)
		}
	}
	// Group replicates per (scheduler, lambda) cell and aggregate.
	cells := make(map[[2]int][]*sim.Result)
	cellMetrics := make(map[[2]int][]*obs.Metrics)
	for i, j := range jobs {
		key := [2]int{j.schedIdx, j.lambdaIdx}
		cells[key] = append(cells[key], results[i])
		if jobMetrics[i] != nil {
			cellMetrics[key] = append(cellMetrics[key], jobMetrics[i])
		}
	}
	sweeps := make([]Sweep, len(factories))
	for si, f := range factories {
		sweeps[si].Label = f.Label
		for li, l := range lambdas {
			key := [2]int{si, li}
			reps := cells[key]
			p := Point{Lambda: l, Result: aggregate(reps)}
			if len(reps) > 1 {
				p.Replicates = reps
				p.TPSStd = tpsStd(reps)
			}
			if ms := cellMetrics[key]; len(ms) > 0 {
				p.Metrics = ms[0]
				for _, m := range ms[1:] {
					p.Metrics.Merge(m)
				}
			}
			sweeps[si].Points = append(sweeps[si].Points, p)
		}
	}
	for si := range sweeps {
		sort.Slice(sweeps[si].Points, func(a, b int) bool {
			return sweeps[si].Points[a].Lambda < sweeps[si].Points[b].Lambda
		})
	}
	return sweeps, nil
}

// aggregate averages replicate runs into one representative result:
// counts are summed, response-time statistics are weighted by measured
// completions, rate and utilization metrics are averaged.
func aggregate(reps []*sim.Result) *sim.Result {
	if len(reps) == 1 {
		return reps[0]
	}
	out := *reps[0]
	out.NodeUtilization = append([]float64(nil), reps[0].NodeUtilization...)
	// Per-class metrics and time series are per-run artifacts; the
	// aggregate must not alias replicate 0's. Read them from Replicates.
	out.ClassMeanRT = nil
	out.ClassCompleted = nil
	out.Samples = nil
	var rtW, admitW, lockW, dnW float64
	totalMeasured := 0
	out.Arrived, out.Admitted, out.Completed, out.Measured = 0, 0, 0, 0
	out.AdmissionDelays, out.AdmissionAborts = 0, 0
	out.RequestDelays, out.RequestBlocks, out.LiveAtEnd = 0, 0, 0
	out.Throughput, out.CNUtilization, out.MeanNodeUtil = 0, 0, 0
	out.MaxLive, out.P95RT, out.MaxRT = 0, 0, 0
	for i := range out.NodeUtilization {
		out.NodeUtilization[i] = 0
	}
	for _, r := range reps {
		out.Arrived += r.Arrived
		out.Admitted += r.Admitted
		out.Completed += r.Completed
		out.Measured += r.Measured
		out.AdmissionDelays += r.AdmissionDelays
		out.AdmissionAborts += r.AdmissionAborts
		out.RequestDelays += r.RequestDelays
		out.RequestBlocks += r.RequestBlocks
		out.LiveAtEnd += r.LiveAtEnd
		w := float64(r.Measured)
		rtW += w * r.MeanRT
		admitW += w * r.MeanAdmitWait
		lockW += w * r.MeanLockWait
		dnW += w * r.MeanDNTime
		totalMeasured += r.Measured
		out.Throughput += r.Throughput / float64(len(reps))
		out.CNUtilization += r.CNUtilization / float64(len(reps))
		out.MeanNodeUtil += r.MeanNodeUtil / float64(len(reps))
		for i := range r.NodeUtilization {
			out.NodeUtilization[i] += r.NodeUtilization[i] / float64(len(reps))
		}
		if r.MaxLive > out.MaxLive {
			out.MaxLive = r.MaxLive
		}
		if r.P95RT > out.P95RT {
			out.P95RT = r.P95RT
		}
		if r.MaxRT > out.MaxRT {
			out.MaxRT = r.MaxRT
		}
		if r.LastCompletion > out.LastCompletion {
			out.LastCompletion = r.LastCompletion
		}
	}
	if totalMeasured > 0 {
		tm := float64(totalMeasured)
		out.MeanRT = rtW / tm
		out.MeanAdmitWait = admitW / tm
		out.MeanLockWait = lockW / tm
		out.MeanDNTime = dnW / tm
	}
	return &out
}

// tpsStd is the cross-seed standard deviation of throughput.
func tpsStd(reps []*sim.Result) float64 {
	var w stats.Welford
	for _, r := range reps {
		w.Add(r.Throughput)
	}
	return w.Std()
}

// defaultLambdas returns the default arrival-rate sweep for Experiment 1
// and 3 style figures (TPS). The paper plots λ up to just past resource
// saturation (λ_S ≈ 1.08 TPS in Experiment 1).
func defaultLambdas() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1}
}
