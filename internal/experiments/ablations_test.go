package experiments

import (
	"strings"
	"testing"

	"batsched/internal/event"
)

func TestRunKSweepQuick(t *testing.T) {
	o := quickOpts()
	r, err := RunKSweep(o, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 || r.Variants[0] != "K=1" {
		t.Fatalf("variants = %v", r.Variants)
	}
	tps := r.TPS["K-WTPG"]
	if len(tps) != 2 {
		t.Fatalf("tps = %v", tps)
	}
	if out := r.Render(); !strings.Contains(out, "K sweep") || !strings.Contains(out, "K-WTPG") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRunPlacementAblationQuick(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunPlacementAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 {
		t.Fatalf("variants = %v", r.Variants)
	}
	for label, tps := range r.TPS {
		if len(tps) != 2 {
			t.Errorf("%s: %v", label, tps)
		}
	}
	if _, ok := r.TPS["NODC"]; !ok {
		t.Error("NODC missing")
	}
	if r.Extra["NODC"] == nil {
		t.Error("utilization metric missing")
	}
	if out := r.Render(); !strings.Contains(out, "declustered") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRunControlCostAblationQuick(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunControlCostAblation(o, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 || r.Variants[1] != "x10" {
		t.Fatalf("variants = %v", r.Variants)
	}
	for _, want := range []string{"CHAIN", "K2", "C2PL"} {
		if _, ok := r.TPS[want]; !ok {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunKeepTimeAblationQuick(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunKeepTimeAblation(o, []event.Time{0, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 {
		t.Fatalf("variants = %v", r.Variants)
	}
	if r.Extra["CHAIN"] == nil {
		t.Error("CN utilization metric missing")
	}
}

func TestRunRetryDelayAblationQuick(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunRetryDelayAblation(o, []event.Time{250, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 || r.Variants[0] != "250ms" {
		t.Fatalf("variants = %v", r.Variants)
	}
	for _, want := range []string{"ASL", "CHAIN", "K2", "C2PL"} {
		if _, ok := r.TPS[want]; !ok {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRunMixedWorkloadQuick(t *testing.T) {
	o := quickOpts()
	r, err := RunMixedWorkload(o, 1.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ShortCompleted == 0 {
			t.Errorf("%s: no short transactions completed", row.Scheduler)
		}
		if row.BATCompleted == 0 {
			t.Errorf("%s: no BATs completed", row.Scheduler)
		}
	}
	if out := r.Render(); !strings.Contains(out, "short RT") {
		t.Errorf("render:\n%s", out)
	}
}
