package experiments

import (
	"fmt"
	"sort"
	"strings"

	"batsched/internal/textplot"
)

var figureMarkers = map[string]byte{
	"NODC":       'n',
	"ASL":        'a',
	"CHAIN":      'C',
	"K2":         'K',
	"C2PL":       '2',
	"CHAIN-C2PL": 'c',
	"K2-C2PL":    'k',
}

func markerFor(label string) byte {
	if m, ok := figureMarkers[label]; ok {
		return m
	}
	return '*'
}

// sweepSeries converts sweeps into chart series with y = f(point).
func sweepSeries(sweeps []Sweep, f func(Point) float64) []textplot.Series {
	out := make([]textplot.Series, 0, len(sweeps))
	for _, s := range sweeps {
		se := textplot.Series{Label: s.Label, Marker: markerFor(s.Label)}
		for _, p := range s.Points {
			se.X = append(se.X, p.Lambda)
			se.Y = append(se.Y, f(p))
		}
		out = append(out, se)
	}
	return out
}

// RenderFigure6 draws Experiment 1's arrival rate vs. mean response time.
func (r *Experiment1Result) RenderFigure6() string {
	return renderRTFigure("Figure 6. Experiment1: Arrival Rate vs. Response Time", r.Sweeps, r.RTTarget)
}

// RenderFigure7 draws Experiment 1's arrival rate vs. throughput and the
// useful-utilization ratios relative to NODC.
func (r *Experiment1Result) RenderFigure7() string {
	var b strings.Builder
	chart := textplot.Chart{
		Title:  "Figure 7. Experiment1: Arrival Rate vs. Throughput",
		XLabel: "arrival rate (TPS)",
		YLabel: "throughput (TPS)",
	}
	s, err := chart.Render(sweepSeries(r.Sweeps, func(p Point) float64 { return p.Result.Throughput }))
	if err == nil {
		b.WriteString(s)
	}
	b.WriteString("\n")
	b.WriteString(r.renderThroughputTable())
	return b.String()
}

func (r *Experiment1Result) renderThroughputTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Throughput at mean RT = %.0f s (interpolated):\n", r.RTTarget)
	var nodcTPS float64
	for _, s := range r.Sweeps {
		if s.Label == "NODC" {
			nodcTPS, _ = s.ThroughputAt(r.RTTarget)
		}
	}
	fmt.Fprintf(&b, "  %-12s %10s %18s\n", "scheduler", "TPS@RT", "useful util (vs NODC)")
	for _, s := range r.Sweeps {
		tps, exact := s.ThroughputAt(r.RTTarget)
		note := ""
		if !exact {
			note = "~"
		}
		ratio := "-"
		if nodcTPS > 0 {
			ratio = fmt.Sprintf("%.0f%%", 100*tps/nodcTPS)
		}
		fmt.Fprintf(&b, "  %-12s %9.3f%s %18s\n", s.Label, tps, note, ratio)
	}
	return b.String()
}

// RenderFigure9 draws Experiment 3's arrival rate vs. mean response time.
func (r *Experiment3Result) RenderFigure9() string {
	out := renderRTFigure("Figure 9. Experiment3: Arrival Rate vs. Response Time", r.Sweeps, r.RTTarget)
	var b strings.Builder
	b.WriteString(out)
	fmt.Fprintf(&b, "\nThroughput at mean RT = %.0f s:\n", r.RTTarget)
	for _, s := range r.Sweeps {
		tps, exact := s.ThroughputAt(r.RTTarget)
		note := ""
		if !exact {
			note = " (no crossing; last point)"
		}
		fmt.Fprintf(&b, "  %-12s %.3f TPS%s\n", s.Label, tps, note)
	}
	return b.String()
}

func renderRTFigure(title string, sweeps []Sweep, rtTarget float64) string {
	chart := textplot.Chart{
		Title:  title,
		XLabel: "arrival rate (TPS)",
		YLabel: "mean response time (s)",
		YMax:   4 * rtTarget, // keep the thrashing tails from flattening the plot
	}
	s, err := chart.Render(sweepSeries(sweeps, func(p Point) float64 { return p.Result.MeanRT }))
	if err != nil {
		return fmt.Sprintf("%s: %v\n", title, err)
	}
	return s
}

// RenderFigure8 draws Experiment 2's NumHots vs. throughput at the RT
// target.
func (r *Experiment2Result) RenderFigure8() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8. Experiment2: Num. of Hot Partitions vs. Throughput at RT = %.0f s\n", r.RTTarget)
	labels := sortedLabels(r.TPS)
	var series []textplot.Series
	for _, l := range labels {
		se := textplot.Series{Label: l, Marker: markerFor(l)}
		for i, nh := range r.NumHots {
			se.X = append(se.X, float64(nh))
			se.Y = append(se.Y, r.TPS[l][i])
		}
		series = append(series, se)
	}
	chart := textplot.Chart{XLabel: "NumHots", YLabel: "TPS at RT target"}
	if s, err := chart.Render(series); err == nil {
		b.WriteString(s)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-12s", "scheduler")
	for _, nh := range r.NumHots {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("hots=%d", nh))
	}
	b.WriteString("\n")
	for _, l := range labels {
		fmt.Fprintf(&b, "  %-12s", l)
		for i := range r.NumHots {
			fmt.Fprintf(&b, " %8.3f", r.TPS[l][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFigure10 draws Experiment 4's error ratio vs. throughput at the
// RT target.
func (r *Experiment4Result) RenderFigure10() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10. Experiment4: Error Ratio vs. Throughput at RT = %.0f s\n", r.RTTarget)
	labels := sortedLabels(r.TPS)
	var series []textplot.Series
	for _, l := range labels {
		se := textplot.Series{Label: l, Marker: markerFor(l)}
		for i, sg := range r.Sigmas {
			se.X = append(se.X, sg)
			se.Y = append(se.Y, r.TPS[l][i])
		}
		series = append(series, se)
	}
	chart := textplot.Chart{XLabel: "error std-dev sigma", YLabel: "TPS at RT target"}
	if s, err := chart.Render(series); err == nil {
		b.WriteString(s)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  %-12s", "scheduler")
	for _, sg := range r.Sigmas {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("σ=%.2g", sg))
	}
	b.WriteString("\n")
	for _, l := range labels {
		fmt.Fprintf(&b, "  %-12s", l)
		for i := range r.Sigmas {
			fmt.Fprintf(&b, " %8.3f", r.TPS[l][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sortedLabels(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// CSV renders a sweep grid as comma-separated values for offline
// plotting: scheduler,lambda,meanRT,tps,cnUtil,dnUtil.
func CSV(sweeps []Sweep) string {
	return CSVWithVariant("", sweeps)
}

// CSVWithVariant prefixes every row with a variant column (NumHots or σ
// value for the grouped figures); an empty variant omits the column.
func CSVWithVariant(variant string, sweeps []Sweep) string {
	var b strings.Builder
	if variant != "" {
		b.WriteString("variant,")
	}
	b.WriteString("scheduler,lambda,mean_rt_s,tps,cn_util,dn_util,completed,aborts,delays,blocks\n")
	for _, s := range sweeps {
		for _, p := range s.Points {
			r := p.Result
			if variant != "" {
				fmt.Fprintf(&b, "%s,", variant)
			}
			fmt.Fprintf(&b, "%s,%g,%g,%g,%g,%g,%d,%d,%d,%d\n",
				s.Label, p.Lambda, r.MeanRT, r.Throughput, r.CNUtilization,
				r.MeanNodeUtil, r.Completed, r.AdmissionAborts, r.RequestDelays, r.RequestBlocks)
		}
	}
	return b.String()
}

// GroupedCSV concatenates variant-labelled sweep grids (Figures 8/10),
// keeping one header.
func GroupedCSV(variants []string, groups [][]Sweep) string {
	var b strings.Builder
	for i, g := range groups {
		block := CSVWithVariant(variants[i], g)
		if i > 0 {
			// Drop the repeated header line.
			if nl := strings.IndexByte(block, '\n'); nl >= 0 {
				block = block[nl+1:]
			}
		}
		b.WriteString(block)
	}
	return b.String()
}
