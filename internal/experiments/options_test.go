package experiments

import (
	"testing"

	"batsched/internal/obs"
)

// TestRunGridWithMetricsAndTrace runs a tiny Experiment 1 grid with both
// observability options and checks every point carries consistent
// per-scheduler aggregates while a shared sink sees all runs.
func TestRunGridWithMetricsAndTrace(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	o := Options{Horizon: 60_000, Lambdas: []float64{0.4}, Replications: 2}
	res, err := RunExperiment1(o, WithMetrics(), WithTrace(ring))
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, sw := range res.Sweeps {
		labels[sw.Label] = true
		for _, p := range sw.Points {
			if p.Metrics == nil {
				t.Fatalf("%s λ=%g: no metrics attached", sw.Label, p.Lambda)
			}
			sm := p.Metrics.Sched(sw.Label)
			if sm == nil {
				t.Fatalf("%s λ=%g: metrics keyed %v, want own label",
					sw.Label, p.Lambda, p.Metrics.Schedulers())
			}
			// Replicates were merged into the point: completions in the
			// aggregate result are summed the same way.
			if int(sm.Commits) != p.Result.Completed {
				t.Errorf("%s λ=%g: metrics commits %d, result completed %d",
					sw.Label, p.Lambda, sm.Commits, p.Result.Completed)
			}
			if others := p.Metrics.Schedulers(); len(others) != 1 {
				t.Errorf("%s: point metrics mixes schedulers %v", sw.Label, others)
			}
		}
	}
	// The shared trace observer saw every scheduler of the grid.
	seen := map[string]bool{}
	for _, e := range ring.Events() {
		seen[e.Sched] = true
	}
	for l := range labels {
		if !seen[l] {
			t.Errorf("shared trace sink has no events from %s (saw %v)", l, seen)
		}
	}
}

// TestRunGridWithoutOptionsUnchanged: the default path attaches nothing.
func TestRunGridWithoutOptionsUnchanged(t *testing.T) {
	o := Options{Horizon: 40_000, Lambdas: []float64{0.3}}
	res, err := RunExperiment1(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range res.Sweeps {
		for _, p := range sw.Points {
			if p.Metrics != nil {
				t.Fatalf("%s: metrics attached without WithMetrics", sw.Label)
			}
		}
	}
}
