package experiments

import (
	"strings"
	"testing"

	"batsched/internal/machine"
)

// quickOpts keeps harness tests fast: short horizon, sparse sweep.
func quickOpts() Options {
	return Options{
		Machine:         machine.DefaultConfig(),
		Horizon:         120_000,
		Seed:            7,
		Workers:         2,
		Lambdas:         []float64{0.2, 0.6},
		RTTargetSeconds: 70,
	}
}

func TestRunExperiment1Quick(t *testing.T) {
	var gotProgress bool
	o := quickOpts()
	o.Progress = func(done, total int) {
		gotProgress = true
		if done > total {
			t.Errorf("progress %d/%d", done, total)
		}
	}
	r, err := RunExperiment1(o)
	if err != nil {
		t.Fatal(err)
	}
	if !gotProgress {
		t.Error("no progress callbacks")
	}
	if len(r.Sweeps) != 5 {
		t.Fatalf("want 5 schedulers, got %d", len(r.Sweeps))
	}
	labels := map[string]bool{}
	for _, s := range r.Sweeps {
		labels[s.Label] = true
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", s.Label, len(s.Points))
		}
		if s.Points[0].Lambda >= s.Points[1].Lambda {
			t.Errorf("%s: points not sorted by lambda", s.Label)
		}
		for _, p := range s.Points {
			if p.Result.Completed == 0 {
				t.Errorf("%s @ %g: no completions", s.Label, p.Lambda)
			}
		}
	}
	for _, want := range []string{"NODC", "ASL", "CHAIN", "K2", "C2PL"} {
		if !labels[want] {
			t.Errorf("missing scheduler %s", want)
		}
	}
	tt := r.ThroughputTable()
	if len(tt) != 5 {
		t.Errorf("throughput table has %d entries", len(tt))
	}
	// Rendering should mention each scheduler and the figure titles.
	f6 := r.RenderFigure6()
	f7 := r.RenderFigure7()
	if !strings.Contains(f6, "Figure 6") || !strings.Contains(f7, "Figure 7") {
		t.Error("figure titles missing")
	}
	if !strings.Contains(f7, "useful util") {
		t.Error("utilization table missing from Figure 7")
	}
}

func TestPairedSeeds(t *testing.T) {
	// The same seed is used for every scheduler at the same lambda, so
	// the arrival counts must be identical across schedulers.
	o := quickOpts()
	r, err := RunExperiment1(o)
	if err != nil {
		t.Fatal(err)
	}
	for li := range o.Lambdas {
		arrived := r.Sweeps[0].Points[li].Result.Arrived
		for _, s := range r.Sweeps[1:] {
			if s.Points[li].Result.Arrived != arrived {
				t.Errorf("λ=%g: %s saw %d arrivals, %s saw %d — seeds not paired",
					o.Lambdas[li], r.Sweeps[0].Label, arrived,
					s.Label, s.Points[li].Result.Arrived)
			}
		}
	}
}

func TestRunExperiment2Quick(t *testing.T) {
	o := quickOpts()
	r, err := RunExperiment2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NumHots) != 4 {
		t.Fatalf("NumHots = %v", r.NumHots)
	}
	for label, tps := range r.TPS {
		if len(tps) != 4 {
			t.Errorf("%s has %d points", label, len(tps))
		}
		for i, v := range tps {
			if v < 0 {
				t.Errorf("%s @ hots=%d: negative TPS %g", label, r.NumHots[i], v)
			}
		}
	}
	out := r.RenderFigure8()
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "hots=32") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestRunExperiment3Quick(t *testing.T) {
	o := quickOpts()
	r, err := RunExperiment3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweeps) != 4 {
		t.Fatalf("want 4 schedulers, got %d", len(r.Sweeps))
	}
	if out := r.RenderFigure9(); !strings.Contains(out, "Figure 9") {
		t.Error("figure title missing")
	}
}

func TestRunExperiment4Quick(t *testing.T) {
	o := quickOpts()
	r, err := RunExperiment4(o, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sigmas) != 2 {
		t.Fatalf("sigmas = %v", r.Sigmas)
	}
	for _, want := range []string{"CHAIN", "K2", "C2PL", "CHAIN-C2PL", "K2-C2PL"} {
		if _, ok := r.TPS[want]; !ok {
			t.Errorf("missing scheduler %s", want)
		}
	}
	if out := r.RenderFigure10(); !strings.Contains(out, "Figure 10") {
		t.Error("figure title missing")
	}
}

func TestCSV(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunExperiment3(o)
	if err != nil {
		t.Fatal(err)
	}
	csv := CSV(r.Sweeps)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+4 { // header + 4 schedulers × 1 lambda
		t.Fatalf("csv has %d lines:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "scheduler,lambda,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Machine.NumNodes != 8 || o.Horizon != 2_000_000 || o.RTTargetSeconds != 70 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Workers <= 0 {
		t.Errorf("workers = %d", o.Workers)
	}
}

func TestReplications(t *testing.T) {
	o := quickOpts()
	o.Replications = 3
	o.Lambdas = []float64{0.4}
	r, err := RunExperiment3(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Sweeps {
		p := s.Points[0]
		if len(p.Replicates) != 3 {
			t.Fatalf("%s: %d replicates, want 3", s.Label, len(p.Replicates))
		}
		if p.TPSStd < 0 {
			t.Errorf("%s: negative TPS std", s.Label)
		}
		// The aggregate throughput is the mean of the replicates'.
		var sum float64
		for _, rep := range p.Replicates {
			sum += rep.Throughput
		}
		if got, want := p.Result.Throughput, sum/3; mathAbs(got-want) > 1e-9 {
			t.Errorf("%s: aggregate TPS %g, want %g", s.Label, got, want)
		}
		if p.Result.Completed == 0 {
			t.Errorf("%s: no completions", s.Label)
		}
		// Weighted mean RT lies within the replicates' range.
		lo, hi := p.Replicates[0].MeanRT, p.Replicates[0].MeanRT
		for _, rep := range p.Replicates {
			if rep.MeanRT < lo {
				lo = rep.MeanRT
			}
			if rep.MeanRT > hi {
				hi = rep.MeanRT
			}
		}
		if p.Result.MeanRT < lo-1e-9 || p.Result.MeanRT > hi+1e-9 {
			t.Errorf("%s: aggregate RT %g outside [%g,%g]", s.Label, p.Result.MeanRT, lo, hi)
		}
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestGroupedCSV(t *testing.T) {
	o := quickOpts()
	o.Lambdas = []float64{0.3}
	r, err := RunExperiment4(o, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{"sigma=0", "sigma=1"}
	csv := GroupedCSV(variants, r.Sweeps)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// one header + 5 schedulers × 1 lambda × 2 variants
	if len(lines) != 1+10 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "variant,scheduler,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "sigma=0,") {
		t.Errorf("first row = %q", lines[1])
	}
	if strings.Count(csv, "variant,scheduler") != 1 {
		t.Error("repeated header")
	}
}
