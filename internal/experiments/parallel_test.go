package experiments

import (
	"bytes"
	"reflect"
	"regexp"
	"testing"

	"batsched/internal/obs"
	"batsched/internal/txn"
)

// runSmokeGrid runs the Experiment-1 smoke grid at the given
// parallelism with a JSONL trace and metrics attached, returning the
// result, the rendered figure tables, and the raw trace bytes.
func runSmokeGrid(t *testing.T, parallel int) (*Experiment1Result, string, []byte) {
	t.Helper()
	o := quickOpts()
	o.Replications = 2
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	r, err := RunExperiment1(o,
		WithParallelism(parallel), WithTrace(sink), WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return r, r.RenderFigure6() + r.RenderFigure7(), buf.Bytes()
}

// TestParallelDeterminism is the differential determinism test: the
// same grid at -parallel 1 and -parallel 8 must produce deeply equal
// Result structs, byte-identical rendered sweep tables, and a
// byte-identical JSONL trace. Wired into `make verify` (plain and
// -race runs of this package).
func TestParallelDeterminism(t *testing.T) {
	r1, tables1, trace1 := runSmokeGrid(t, 1)
	r8, tables8, trace8 := runSmokeGrid(t, 8)

	if tables1 != tables8 {
		t.Errorf("rendered tables differ between -parallel 1 and -parallel 8:\n--- 1:\n%s\n--- 8:\n%s",
			tables1, tables8)
	}
	// dur_ns is the one wall-clock field in a simulation trace (the
	// sched.Observed decision timer); it differs between any two runs,
	// parallel or not. Everything else — event order included — must be
	// byte-identical.
	if n1, n8 := stripDurNS(trace1), stripDurNS(trace8); !bytes.Equal(n1, n8) {
		t.Errorf("JSONL traces differ beyond dur_ns: %d bytes at -parallel 1 vs %d at -parallel 8",
			len(n1), len(n8))
	}
	if len(trace1) == 0 {
		t.Error("empty trace — the shared sink saw no events")
	}
	if len(r1.Sweeps) != len(r8.Sweeps) {
		t.Fatalf("sweep counts differ: %d vs %d", len(r1.Sweeps), len(r8.Sweeps))
	}
	for i := range r1.Sweeps {
		s1, s8 := r1.Sweeps[i], r8.Sweeps[i]
		if s1.Label != s8.Label {
			t.Fatalf("sweep %d label %q vs %q", i, s1.Label, s8.Label)
		}
		for j := range s1.Points {
			p1, p8 := s1.Points[j], s8.Points[j]
			if !reflect.DeepEqual(p1.Result, p8.Result) {
				t.Errorf("%s λ=%g: aggregate Result differs across parallelism",
					s1.Label, p1.Lambda)
			}
			if !reflect.DeepEqual(p1.Replicates, p8.Replicates) {
				t.Errorf("%s λ=%g: replicate Results differ across parallelism",
					s1.Label, p1.Lambda)
			}
			if p1.TPSStd != p8.TPSStd {
				t.Errorf("%s λ=%g: TPSStd %g vs %g", s1.Label, p1.Lambda, p1.TPSStd, p8.TPSStd)
			}
		}
	}
}

var durNSField = regexp.MustCompile(`,"dur_ns":\d+`)

// stripDurNS removes the wall-clock dur_ns field from a JSONL trace.
func stripDurNS(trace []byte) []byte {
	return durNSField.ReplaceAll(trace, nil)
}

// TestMixedParallelDeterminism pins the mixed-workload table, which
// goes through the same pool, to the same guarantee.
func TestMixedParallelDeterminism(t *testing.T) {
	run := func(parallel int) string {
		o := quickOpts()
		r, err := RunMixedWorkload(o, 2.0, 0.8, WithParallelism(parallel))
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	if r1, r8 := run(1), run(8); r1 != r8 {
		t.Errorf("mixed tables differ:\n--- 1:\n%s\n--- 8:\n%s", r1, r8)
	}
}

// TestOrderedFlushOutOfOrder exercises the flusher directly: buffers
// completing in reverse order must still be delivered in job order.
func TestOrderedFlushOutOfOrder(t *testing.T) {
	ring := obs.NewRing(16)
	f := newOrderedFlush(ring, 3)
	mk := func(job int) *capture {
		c := &capture{}
		c.Observe(obs.Event{Kind: obs.KindAdmit, Txn: txn.ID(1000 + job)})
		return c
	}
	f.complete(2, mk(2))
	if got := len(ring.Events()); got != 0 {
		t.Fatalf("job 2 flushed before jobs 0-1: %d events", got)
	}
	f.complete(0, mk(0))
	if got := len(ring.Events()); got != 1 {
		t.Fatalf("after job 0: %d events, want 1", got)
	}
	f.complete(1, nil) // a job without a trace buffer still advances the cursor
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("after all jobs: %d events, want 2", len(evs))
	}
	if evs[0].Txn != 1000 || evs[1].Txn != 1002 {
		t.Errorf("events out of order: %v then %v", evs[0].Txn, evs[1].Txn)
	}
	// Completing with no shared observer must be a safe no-op.
	var nilFlush *orderedFlush
	nilFlush.complete(0, mk(0))
}
