package experiments

import (
	"runtime"
	"testing"

	"batsched/internal/core/sched"
	"batsched/internal/machine"
	"batsched/internal/workload"
)

// benchSweep runs the 8-way smoke grid (2 schedulers × 4 arrival rates,
// reduced horizon) through the worker pool at the given parallelism.
// BenchmarkSweepParallel1 vs BenchmarkSweepParallelN is the committed
// scaling measurement of BENCH_PR5.json (`make bench-harness`).
func benchSweep(b *testing.B, workers int) {
	o := Options{
		Machine:         machine.DefaultConfig(),
		Horizon:         60_000,
		Seed:            1990,
		RTTargetSeconds: 70,
	}
	o.Machine.NumParts = 16
	lambdas := []float64{0.2, 0.5, 0.8, 1.1}
	factories := []sched.Factory{sched.ASLFactory(), sched.KWTPGFactory(2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweeps, err := runGrid(o, factories, lambdas, func() workload.Generator {
			return workload.Experiment1(16)
		}, WithParallelism(workers))
		if err != nil {
			b.Fatal(err)
		}
		if len(sweeps) != len(factories) {
			b.Fatalf("got %d sweeps", len(sweeps))
		}
	}
}

func BenchmarkSweepParallel1(b *testing.B) { benchSweep(b, 1) }

func BenchmarkSweepParallelN(b *testing.B) { benchSweep(b, runtime.NumCPU()) }
