package experiments

import (
	"fmt"
	"strings"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/sim"
	"batsched/internal/workload"
)

// This file holds experiments beyond the paper's figures: ablations of
// the design choices DESIGN.md calls out, and the extensions the paper
// itself suggests (a K sweep for K-WTPG, §4.3's declustered placement).

// AblationResult is a generic (variant × scheduler) table of throughput
// at the RT target.
type AblationResult struct {
	Title    string
	Variants []string
	RTTarget float64
	// TPS[label][i] is the throughput of scheduler label at Variants[i].
	TPS map[string][]float64
	// Extra[label][i] is an optional secondary metric (named by ExtraName).
	Extra     map[string][]float64
	ExtraName string
}

// Render formats the ablation as a fixed-width table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (TPS at RT = %.0f s", r.Title, r.RTTarget)
	if r.ExtraName != "" {
		fmt.Fprintf(&b, "; bracketed: %s", r.ExtraName)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  %-12s", "scheduler")
	for _, v := range r.Variants {
		fmt.Fprintf(&b, " %16s", v)
	}
	b.WriteString("\n")
	for _, l := range sortedLabels(r.TPS) {
		fmt.Fprintf(&b, "  %-12s", l)
		for i := range r.Variants {
			cell := fmt.Sprintf("%.3f", r.TPS[l][i])
			if r.Extra != nil && r.Extra[l] != nil {
				cell += fmt.Sprintf(" [%.2f]", r.Extra[l][i])
			}
			fmt.Fprintf(&b, " %16s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ablationCell runs one sweep for one (variant, factory) pair with a
// config mutator and returns TPS at the RT target plus the mean DN
// utilization at the sweep point nearest the crossing. Each sweep goes
// through the same runJobs worker pool as the figure grids, so ablation
// output is likewise independent of parallelism.
func ablationCell(o Options, f sched.Factory, lambdas []float64,
	newWorkload func() workload.Generator, mutate func(*sim.Config), opts ...Option) (Sweep, error) {

	sweeps, err := runGridMutate(o, []sched.Factory{f}, lambdas, newWorkload, mutate, opts...)
	if err != nil {
		return Sweep{}, err
	}
	return sweeps[0], nil
}

// RunKSweep extends the paper: it sweeps the K-conflict bound of K-WTPG
// (the paper evaluates only K = 2) on the Experiment 2 hot-set workload,
// where the admission constraint binds hardest.
func RunKSweep(o Options, ks []int, opts ...Option) (*AblationResult, error) {
	o = o.withDefaults()
	if ks == nil {
		ks = []int{0, 1, 2, 4, 8}
	}
	layout := workload.HotSetLayout{NumReadOnly: 8, NumHots: 8}
	o.Machine.NumParts = layout.NumParts()
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &AblationResult{
		Title:    "K sweep (K-WTPG admission bound), Pattern2 hot set = 8",
		RTTarget: o.RTTargetSeconds,
		TPS:      make(map[string][]float64),
	}
	for _, k := range ks {
		res.Variants = append(res.Variants, fmt.Sprintf("K=%d", k))
	}
	for _, k := range ks {
		sw, err := ablationCell(o, sched.MustLookup(fmt.Sprintf("K%d", k)), lambdas, func() workload.Generator {
			return workload.Experiment2(layout)
		}, nil, opts...)
		if err != nil {
			return nil, err
		}
		tps, _ := sw.ThroughputAt(o.RTTargetSeconds)
		res.TPS["K-WTPG"] = append(res.TPS["K-WTPG"], tps)
	}
	return res, nil
}

// RunPlacementAblation compares the paper's mod placement against full
// declustering (§4.3): declustering buys intra-transaction parallelism —
// the paper's suggested route past the inter-transaction parallelism
// limit — at the (unmodelled) cost of message overhead for short
// transactions. The secondary metric is mean data-node utilization at
// the highest stable arrival rate.
func RunPlacementAblation(o Options, opts ...Option) (*AblationResult, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &AblationResult{
		Title:     "Placement ablation, Pattern1 (Experiment 1 workload)",
		Variants:  []string{"mod (paper)", "declustered"},
		RTTarget:  o.RTTargetSeconds,
		TPS:       make(map[string][]float64),
		Extra:     make(map[string][]float64),
		ExtraName: "mean DN utilization at that throughput",
	}
	for _, f := range factoriesByName("NODC", "ASL", "CHAIN", "K2", "C2PL") {
		for _, declustered := range []bool{false, true} {
			declustered := declustered
			sw, err := ablationCell(o, f, lambdas, func() workload.Generator {
				return workload.Experiment1(16)
			}, func(c *sim.Config) { c.Declustered = declustered }, opts...)
			if err != nil {
				return nil, err
			}
			tps, _ := sw.ThroughputAt(o.RTTargetSeconds)
			res.TPS[f.Label] = append(res.TPS[f.Label], tps)
			res.Extra[f.Label] = append(res.Extra[f.Label], utilNear(sw, o.RTTargetSeconds))
		}
	}
	return res, nil
}

// utilNear returns the mean DN utilization at the last sweep point whose
// response time is below the target (the highest stable load).
func utilNear(s Sweep, rtTarget float64) float64 {
	util := 0.0
	for _, p := range s.Points {
		if p.Result.MeanRT < rtTarget {
			util = p.Result.MeanNodeUtil
		}
	}
	return util
}

// RunControlCostAblation scales the concurrency-control CPU costs
// (ddtime, chaintime, kwtpgtime) to verify the paper's claim that with
// ObjTime = 1 s the control overhead is overestimated yet harmless.
func RunControlCostAblation(o Options, multipliers []int, opts ...Option) (*AblationResult, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	if multipliers == nil {
		multipliers = []int{1, 10, 100}
	}
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &AblationResult{
		Title:    "Control-cost ablation (ddtime/chaintime/kwtpgtime scaled), Pattern1",
		RTTarget: o.RTTargetSeconds,
		TPS:      make(map[string][]float64),
	}
	for _, m := range multipliers {
		res.Variants = append(res.Variants, fmt.Sprintf("x%d", m))
	}
	for _, f := range factoriesByName("CHAIN", "K2", "C2PL") {
		for _, m := range multipliers {
			oo := o
			oo.Machine.Control.DDTime *= event.Time(m)
			oo.Machine.Control.ChainTime *= event.Time(m)
			oo.Machine.Control.KWTPGTime *= event.Time(m)
			sw, err := ablationCell(oo, f, lambdas, func() workload.Generator {
				return workload.Experiment1(16)
			}, nil, opts...)
			if err != nil {
				return nil, err
			}
			tps, _ := sw.ThroughputAt(o.RTTargetSeconds)
			res.TPS[f.Label] = append(res.TPS[f.Label], tps)
		}
	}
	return res, nil
}

// RunKeepTimeAblation varies §3.4's control-saving period: 0 disables
// caching entirely (recompute W / E on every request), larger values
// reuse stale estimates longer. The secondary metric is control-node
// utilization at the highest stable load.
func RunKeepTimeAblation(o Options, keeptimes []event.Time, opts ...Option) (*AblationResult, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	if keeptimes == nil {
		keeptimes = []event.Time{0, 1000, 5000, 60000}
	}
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &AblationResult{
		Title:     "Control-saving (keeptime) ablation, Pattern1",
		RTTarget:  o.RTTargetSeconds,
		TPS:       make(map[string][]float64),
		Extra:     make(map[string][]float64),
		ExtraName: "CN utilization at that throughput",
	}
	for _, kt := range keeptimes {
		res.Variants = append(res.Variants, kt.String())
	}
	for _, f := range factoriesByName("CHAIN", "K2") {
		for _, kt := range keeptimes {
			oo := o
			oo.Machine.Control.KeepTime = kt
			sw, err := ablationCell(oo, f, lambdas, func() workload.Generator {
				return workload.Experiment1(16)
			}, nil, opts...)
			if err != nil {
				return nil, err
			}
			tps, _ := sw.ThroughputAt(o.RTTargetSeconds)
			res.TPS[f.Label] = append(res.TPS[f.Label], tps)
			res.Extra[f.Label] = append(res.Extra[f.Label], cnUtilNear(sw, o.RTTargetSeconds))
		}
	}
	return res, nil
}

func cnUtilNear(s Sweep, rtTarget float64) float64 {
	util := 0.0
	for _, p := range s.Points {
		if p.Result.MeanRT < rtTarget {
			util = p.Result.CNUtilization
		}
	}
	return util
}

// RunRetryDelayAblation varies the fixed resubmission delay of §3.2,
// which the paper leaves unspecified (DESIGN.md assumes 500 ms).
func RunRetryDelayAblation(o Options, delays []event.Time, opts ...Option) (*AblationResult, error) {
	o = o.withDefaults()
	o.Machine.NumParts = 16
	if delays == nil {
		delays = []event.Time{100, 250, 500, 1000, 2000}
	}
	lambdas := o.Lambdas
	if lambdas == nil {
		lambdas = defaultLambdas()
	}
	res := &AblationResult{
		Title:    "Retry-delay ablation, Pattern1",
		RTTarget: o.RTTargetSeconds,
		TPS:      make(map[string][]float64),
	}
	for _, d := range delays {
		res.Variants = append(res.Variants, d.String())
	}
	for _, f := range factoriesByName("ASL", "CHAIN", "K2", "C2PL") {
		for _, d := range delays {
			oo := o
			oo.Machine.RetryDelay = d
			sw, err := ablationCell(oo, f, lambdas, func() workload.Generator {
				return workload.Experiment1(16)
			}, nil, opts...)
			if err != nil {
				return nil, err
			}
			tps, _ := sw.ThroughputAt(o.RTTargetSeconds)
			res.TPS[f.Label] = append(res.TPS[f.Label], tps)
		}
	}
	return res, nil
}
