package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"batsched/internal/core/sched"
	"batsched/internal/event"
	"batsched/internal/obs"
	"batsched/internal/sim"
	"batsched/internal/workload"
)

// This file is the batch-window sweep: a fixed Pattern1 arrival stream
// scheduled by EPOCH at increasing admission windows, against the
// per-arrival baseline (window 0, which is exactly CHAIN — pinned by
// TestEpochWindowZeroIsChain). It quantifies the epoch trade the paper's
// off-line batch framing (§1) implies: wider windows amortize the O(N²)
// W computation over more admissions and expose more conflict-free
// clusters per flush, while every arrival pays up to one window of
// admission latency.

// EpochSweepRow is one window size's outcome.
type EpochSweepRow struct {
	// Window is the admission window in clocks (0 = per-arrival CHAIN
	// baseline).
	Window event.Time `json:"window_ms"`
	// Makespan is the commit time of the last completed transaction.
	Makespan event.Time `json:"makespan_ms"`
	MeanRT   float64    `json:"mean_rt_s"`
	P99RT    float64    `json:"p99_rt_s"`
	// Throughput is completed transactions per second.
	Throughput float64 `json:"throughput_tps"`
	Completed  int     `json:"completed"`
	// Epochs, MaxBatch, MeanBatch and MaxClusters are the sim's
	// epoch-flush counters (all zero on the window-0 baseline row).
	Epochs      int     `json:"epochs"`
	MaxBatch    int     `json:"max_batch"`
	MeanBatch   float64 `json:"mean_batch"`
	MaxClusters int     `json:"max_clusters"`
	// Metrics holds this row's trace aggregates when the sweep was given
	// WithMetrics.
	Metrics *obs.Metrics `json:"-"`
}

// EpochSweepResult is the full batch-window sweep.
type EpochSweepResult struct {
	Scheduler string          `json:"scheduler"`
	Lambda    float64         `json:"lambda_tps"`
	MaxTxns   int             `json:"max_txns"`
	Seed      int64           `json:"seed"`
	Note      string          `json:"note"`
	Rows      []EpochSweepRow `json:"rows"`
}

// DefaultEpochWindows is the default sweep axis: the per-arrival
// baseline plus five window sizes spanning two decades around the mean
// Pattern1 inter-arrival time.
func DefaultEpochWindows() []event.Time {
	return []event.Time{0, 500, 1000, 2000, 5000, 10000}
}

// RunEpochSweep releases a fixed Pattern1 stream (maxTxns Poisson
// arrivals at rate lambda) against the EPOCH scheduler at each window
// size and reports makespan, latency and batching statistics per
// window. Every cell runs the same seed, so rows differ only in the
// window; cells fan onto the same runJobs worker pool as the figure
// grids, so output is byte-identical at every parallelism level.
func RunEpochSweep(o Options, windows []event.Time, lambda float64, maxTxns int, opts ...Option) (*EpochSweepResult, error) {
	o = o.withDefaults()
	rc := buildRunConfig(opts)
	if len(windows) == 0 {
		windows = DefaultEpochWindows()
	}
	if lambda <= 0 {
		lambda = 0.8
	}
	if maxTxns <= 0 {
		maxTxns = 300
	}
	factory, err := sched.Lookup("EPOCH")
	if err != nil {
		return nil, err
	}
	for _, w := range windows {
		if w < 0 {
			return nil, fmt.Errorf("experiments: negative batch window %v", w)
		}
	}
	cfgs := make([]sim.Config, len(windows))
	for i, w := range windows {
		cfgs[i] = sim.Config{
			Machine:              o.Machine,
			Scheduler:            factory,
			Workload:             workload.Experiment1(o.Machine.NumParts),
			ArrivalRate:          lambda,
			Horizon:              o.Horizon,
			Seed:                 o.Seed,
			MaxTxns:              maxTxns,
			CheckSerializability: true,
			BatchWindow:          w,
		}
	}
	results, jobMetrics, errs := runJobs(rc, rc.workers(o), cfgs, o.Progress)
	res := &EpochSweepResult{
		Scheduler: factory.Label,
		Lambda:    lambda,
		MaxTxns:   maxTxns,
		Seed:      o.Seed,
		Note: "window 0 is the per-arrival baseline (identical to CHAIN); " +
			"all rows share one seed, so they schedule the same arrival stream",
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("epoch sweep @ window=%v: %w", windows[i], err)
		}
		r := results[i]
		res.Rows = append(res.Rows, EpochSweepRow{
			Window:      windows[i],
			Makespan:    r.LastCompletion,
			MeanRT:      r.MeanRT,
			P99RT:       r.P99RT,
			Throughput:  r.Throughput,
			Completed:   r.Completed,
			Epochs:      r.Epochs,
			MaxBatch:    r.MaxBatch,
			MeanBatch:   r.MeanBatch,
			MaxClusters: r.MaxClusters,
			Metrics:     jobMetrics[i],
		})
	}
	return res, nil
}

// Render formats the sweep as a fixed-width table.
func (r *EpochSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Epoch batch-window sweep: %d Pattern1 arrivals at λ = %g TPS, scheduler %s\n",
		r.MaxTxns, r.Lambda, r.Scheduler)
	fmt.Fprintf(&b, "  %-12s %13s %12s %11s %8s %8s %10s %10s %9s\n",
		"window (ms)", "makespan (s)", "mean RT (s)", "p99 RT (s)", "TPS",
		"epochs", "max batch", "mean batch", "clusters")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%d", row.Window)
		if row.Window == 0 {
			label = "0 (CHAIN)"
		}
		fmt.Fprintf(&b, "  %-12s %13.1f %12.2f %11.2f %8.3f %8d %10d %10.2f %9d\n",
			label, float64(row.Makespan)/1000, row.MeanRT, row.P99RT,
			row.Throughput, row.Epochs, row.MaxBatch, row.MeanBatch, row.MaxClusters)
	}
	return b.String()
}

// CSV renders the sweep as a flat CSV table.
func (r *EpochSweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("window_ms,makespan_ms,mean_rt_s,p99_rt_s,throughput_tps,completed,epochs,max_batch,mean_batch,max_clusters\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%d,%d,%g,%g,%g,%d,%d,%d,%g,%d\n",
			row.Window, row.Makespan, row.MeanRT, row.P99RT, row.Throughput,
			row.Completed, row.Epochs, row.MaxBatch, row.MeanBatch, row.MaxClusters)
	}
	return b.String()
}

// JSON renders the sweep as the committed BENCH_PR6.json document: the
// sweep parameters plus one row per window. The document is a pure
// function of the sweep result — no timestamps or host data — so
// regenerating on an unchanged tree is byte-identical.
func (r *EpochSweepResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
