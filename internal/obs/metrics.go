package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Histogram is a bucketed histogram over fixed upper bounds (ascending,
// with an implicit +Inf bucket at the end). It is not goroutine-safe on
// its own; Metrics serializes access.
type Histogram struct {
	bounds []float64
	counts []uint64
	n      uint64
	sum    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (plus an implicit +Inf overflow bucket).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// decadeBounds is the 1-2-5 series used by the default histograms.
func decadeBounds(lo, hi float64) []float64 {
	var out []float64
	for d := lo; d <= hi; d *= 10 {
		out = append(out, d, 2*d, 5*d)
	}
	return out
}

// Add observes one value.
func (h *Histogram) Add(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of the observed values.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets: the
// upper bound of the bucket holding the q-th observation (Max for the
// overflow bucket). Coarse by design — it answers "which decade", not
// "which millisecond".
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.counts) != len(h.counts) {
		// Mismatched shapes should not happen inside this package; fold
		// what we can (totals) so nothing is silently lost.
		h.n += o.n
		h.sum += o.sum
		if o.max > h.max {
			h.max = o.max
		}
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// format renders the histogram's headline statistics with a unit.
func (h *Histogram) format(unit string) string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3g p50≤%.3g p95≤%.3g max=%.3g %s",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.max, unit)
}

// SchedMetrics aggregates one scheduler's events.
type SchedMetrics struct {
	Sched string

	// Submission counters (timeline events).
	Admits   uint64
	Requests uint64
	Commits  uint64
	Aborts   uint64 // Commit events carrying decision "aborted"
	Objects  float64

	// Decision counters by outcome, split by operation.
	AdmitDecisions   map[string]uint64
	RequestDecisions map[string]uint64

	// Control-plane counters.
	Resolves        uint64
	CritPathChanges uint64
	CritPathMax     float64

	// Robustness counters: scheduler abort-recovery runs, live-controller
	// stall-watchdog firings, degraded-mode transitions, injected
	// faults, and node-crash recovery (nodes lost, partitions re-homed,
	// resident jobs requeued on survivors).
	Recoveries uint64
	Stalls     uint64
	Degrades   uint64
	Restores   uint64
	Faults     uint64
	NodeDowns  uint64
	Rehomes    uint64
	Requeues   uint64

	// Epoch-batch counters: admission windows flushed, and the largest
	// number of conflict-free clusters seen in one batch.
	Epochs         uint64
	EpochMaxChunks float64

	// Durable-recovery counters: dependency-log appends, group-commit
	// fsync passes, WAL replays, the widest replay wave observed
	// (replay parallelism), and the total replay wall time in ns.
	WALAppends   uint64
	WALSyncs     uint64
	Recovers     uint64
	ReplayMaxPar float64
	RecoverNS    int64

	// Histograms: decision control-CPU cost (clocks), decision wall
	// duration (µs), lock-queue depth at request submission, WTPG size
	// at decision time, commit response times (seconds), epoch batch
	// sizes (transactions per flushed window), and WAL group-commit
	// batch sizes (records per fsync pass).
	DecisionCPU  *Histogram
	DecisionWall *Histogram
	QueueDepth   *Histogram
	GraphSize    *Histogram
	ResponseTime *Histogram
	BatchSize    *Histogram
	WALBatch     *Histogram
}

func newSchedMetrics(label string) *SchedMetrics {
	return &SchedMetrics{
		Sched:            label,
		AdmitDecisions:   make(map[string]uint64),
		RequestDecisions: make(map[string]uint64),
		DecisionCPU:      NewHistogram(decadeBounds(1, 1e4)...),
		DecisionWall:     NewHistogram(decadeBounds(1, 1e5)...),
		QueueDepth:       NewHistogram(decadeBounds(1, 1e3)...),
		GraphSize:        NewHistogram(decadeBounds(1, 1e3)...),
		ResponseTime:     NewHistogram(decadeBounds(0.1, 1e3)...),
		BatchSize:        NewHistogram(decadeBounds(1, 1e3)...),
		WALBatch:         NewHistogram(decadeBounds(1, 1e3)...),
	}
}

// Metrics is a Sink accumulating counters and histograms per scheduler
// label. Safe for concurrent use; the zero value is not ready — use
// NewMetrics.
//
// Per-run sink ownership rule: a parallel harness (the experiments
// worker pool) must not hand one Metrics to many concurrently running
// simulations — not because Observe would race (it locks), but because
// interleaved runs would corrupt per-run aggregates and make readback
// order nondeterministic. Instead, each run owns a private Metrics for
// its lifetime, and the owner folds finished runs together with Merge
// in a deterministic order. Accessors (Sched, Schedulers, Summary) are
// only meaningful once the producing run has completed.
type Metrics struct {
	mu  sync.Mutex
	per map[string]*SchedMetrics
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{per: make(map[string]*SchedMetrics)}
}

func (m *Metrics) sched(label string) *SchedMetrics {
	if label == "" {
		label = "(unlabeled)"
	}
	sm := m.per[label]
	if sm == nil {
		sm = newSchedMetrics(label)
		m.per[label] = sm
	}
	return sm
}

// Observe dispatches one event into the counters.
func (m *Metrics) Observe(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm := m.sched(e.Sched)
	switch e.Kind {
	case KindAdmit:
		sm.Admits++
	case KindRequest:
		sm.Requests++
		sm.QueueDepth.Add(float64(e.Queue))
	case KindDecision:
		if e.Op == "admit" {
			sm.AdmitDecisions[e.Decision]++
		} else {
			sm.RequestDecisions[e.Decision]++
		}
		sm.DecisionCPU.Add(float64(e.CPU))
		if e.DurNS > 0 {
			sm.DecisionWall.Add(float64(e.DurNS) / 1e3)
		}
		sm.GraphSize.Add(float64(e.Graph))
	case KindObjectDone:
		sm.Objects += e.Objects
	case KindCommit:
		if e.Decision == "aborted" {
			sm.Aborts++
		} else {
			sm.Commits++
			sm.ResponseTime.Add(e.RT.Seconds())
		}
	case KindResolve:
		sm.Resolves++
	case KindCriticalPathChange:
		sm.CritPathChanges++
		if e.CritPath > sm.CritPathMax {
			sm.CritPathMax = e.CritPath
		}
	case KindAbort:
		sm.Recoveries++
	case KindStall:
		sm.Stalls++
	case KindDegrade:
		sm.Degrades++
	case KindRestore:
		sm.Restores++
	case KindFault:
		sm.Faults++
	case KindNodeDown:
		sm.NodeDowns++
	case KindRehome:
		sm.Rehomes++
	case KindRequeue:
		sm.Requeues++
	case KindEpochFlush:
		sm.Epochs++
		sm.BatchSize.Add(float64(e.Batch))
		if c := float64(e.Clusters); c > sm.EpochMaxChunks {
			sm.EpochMaxChunks = c
		}
	case KindWALAppend:
		sm.WALAppends++
	case KindWALSync:
		sm.WALSyncs++
		sm.WALBatch.Add(float64(e.Batch))
	case KindRecover:
		sm.Recovers++
		sm.RecoverNS += e.DurNS
		if p := float64(e.Clusters); p > sm.ReplayMaxPar {
			sm.ReplayMaxPar = p
		}
	}
}

// Close does nothing; the accumulated metrics stay readable.
func (m *Metrics) Close() error { return nil }

// Schedulers returns the observed scheduler labels, sorted.
func (m *Metrics) Schedulers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.per))
	for label := range m.per {
		out = append(out, label)
	}
	sortStrings(out)
	return out
}

// Sched returns a snapshot-by-reference of one scheduler's metrics
// (nil if the label was never observed). The caller must not mutate it
// while events are still being observed.
func (m *Metrics) Sched(label string) *SchedMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.per[label]
}

// Merge folds another Metrics (e.g. a replicate run's) into m: counters
// sum, histograms fold bucket-wise, maxima take the larger value.
// Merging nil or m itself is a no-op. Both sides are locked, so a
// finished run's aggregate can be folded while other sinks are live —
// but see the ownership rule above: o's producing run must be done.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil || o == m {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for label, osm := range o.per {
		sm := m.sched(label)
		sm.Admits += osm.Admits
		sm.Requests += osm.Requests
		sm.Commits += osm.Commits
		sm.Aborts += osm.Aborts
		sm.Objects += osm.Objects
		sm.Resolves += osm.Resolves
		sm.Recoveries += osm.Recoveries
		sm.Stalls += osm.Stalls
		sm.Degrades += osm.Degrades
		sm.Restores += osm.Restores
		sm.Faults += osm.Faults
		sm.NodeDowns += osm.NodeDowns
		sm.Rehomes += osm.Rehomes
		sm.Requeues += osm.Requeues
		sm.CritPathChanges += osm.CritPathChanges
		if osm.CritPathMax > sm.CritPathMax {
			sm.CritPathMax = osm.CritPathMax
		}
		sm.Epochs += osm.Epochs
		if osm.EpochMaxChunks > sm.EpochMaxChunks {
			sm.EpochMaxChunks = osm.EpochMaxChunks
		}
		sm.WALAppends += osm.WALAppends
		sm.WALSyncs += osm.WALSyncs
		sm.Recovers += osm.Recovers
		sm.RecoverNS += osm.RecoverNS
		if osm.ReplayMaxPar > sm.ReplayMaxPar {
			sm.ReplayMaxPar = osm.ReplayMaxPar
		}
		for k, v := range osm.AdmitDecisions {
			sm.AdmitDecisions[k] += v
		}
		for k, v := range osm.RequestDecisions {
			sm.RequestDecisions[k] += v
		}
		sm.DecisionCPU.Merge(osm.DecisionCPU)
		sm.DecisionWall.Merge(osm.DecisionWall)
		sm.QueueDepth.Merge(osm.QueueDepth)
		sm.GraphSize.Merge(osm.GraphSize)
		sm.ResponseTime.Merge(osm.ResponseTime)
		sm.BatchSize.Merge(osm.BatchSize)
		sm.WALBatch.Merge(osm.WALBatch)
	}
}

// sortStrings is sort.Strings without importing sort twice across
// files; kept tiny and allocation-free.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// decisionLine renders a decision-count map as "1234 granted, 5 delayed".
func decisionLine(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		if k == "" {
			k = "?"
		}
		keys = append(keys, k)
	}
	sortStrings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	return strings.Join(parts, ", ")
}
