package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicAddFloat folds v into the float64 stored as bits behind addr.
func atomicAddFloat(addr *uint64, v float64) {
	for {
		old := atomic.LoadUint64(addr)
		new := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(addr, old, new) {
			return
		}
	}
}

// atomicMaxFloat raises the float64 stored as bits behind addr to v if
// v is larger. Only valid for non-negative observations (the zero bits
// pattern is 0.0).
func atomicMaxFloat(addr *uint64, v float64) {
	for {
		old := atomic.LoadUint64(addr)
		if v <= math.Float64frombits(old) {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, math.Float64bits(v)) {
			return
		}
	}
}

func loadFloat(addr *uint64) float64 {
	return math.Float64frombits(atomic.LoadUint64(addr))
}

// Histogram is a bucketed histogram over fixed upper bounds (ascending,
// with an implicit +Inf bucket at the end). Add is lock-free (atomic
// per-bucket counters), so concurrent observers — the sharded live
// controller's per-shard dispatch — never contend on a histogram lock.
// Readers (Mean, Quantile, …) see a monotone, possibly mid-update view;
// they are exact once the producing run has completed (the same
// ownership rule Metrics documents). Observed values must be ≥ 0.
type Histogram struct {
	bounds  []float64
	counts  []uint64 // atomic
	n       uint64   // atomic
	sumBits uint64   // atomic float64 bits
	maxBits uint64   // atomic float64 bits
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (plus an implicit +Inf overflow bucket).
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// decadeBounds is the 1-2-5 series used by the default histograms.
func decadeBounds(lo, hi float64) []float64 {
	var out []float64
	for d := lo; d <= hi; d *= 10 {
		out = append(out, d, 2*d, 5*d)
	}
	return out
}

// Add observes one value.
func (h *Histogram) Add(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddUint64(&h.counts[i], 1)
	atomic.AddUint64(&h.n, 1)
	atomicAddFloat(&h.sumBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.n) }

// Mean returns the exact mean of the observed values.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return loadFloat(&h.sumBits) / float64(n)
}

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return loadFloat(&h.maxBits) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets: the
// upper bound of the bucket holding the q-th observation (Max for the
// overflow bucket). Coarse by design — it answers "which decade", not
// "which millisecond".
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.Max()
		}
	}
	return h.Max()
}

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count() == 0 {
		return
	}
	if len(o.counts) != len(h.counts) {
		// Mismatched shapes should not happen inside this package; fold
		// what we can (totals) so nothing is silently lost.
		atomic.AddUint64(&h.n, atomic.LoadUint64(&o.n))
		atomicAddFloat(&h.sumBits, loadFloat(&o.sumBits))
		atomicMaxFloat(&h.maxBits, loadFloat(&o.maxBits))
		return
	}
	for i := range o.counts {
		if c := atomic.LoadUint64(&o.counts[i]); c > 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
	atomic.AddUint64(&h.n, atomic.LoadUint64(&o.n))
	atomicAddFloat(&h.sumBits, loadFloat(&o.sumBits))
	atomicMaxFloat(&h.maxBits, loadFloat(&o.maxBits))
}

// format renders the histogram's headline statistics with a unit.
func (h *Histogram) format(unit string) string {
	if h.Count() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3g p50≤%.3g p95≤%.3g max=%.3g %s",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Max(), unit)
}

// decisionCounts tallies scheduler decisions by outcome. The four
// outcomes every scheduler produces get dedicated atomic slots — the
// hot path of every admit/request decision — and anything else falls
// into a mutex-guarded overflow map (never hit in practice).
type decisionCounts struct {
	granted uint64 // atomic
	blocked uint64
	delayed uint64
	aborted uint64

	mu    sync.Mutex
	other map[string]uint64
}

func (d *decisionCounts) add(k string) {
	switch k {
	case "granted":
		atomic.AddUint64(&d.granted, 1)
	case "blocked":
		atomic.AddUint64(&d.blocked, 1)
	case "delayed":
		atomic.AddUint64(&d.delayed, 1)
	case "aborted":
		atomic.AddUint64(&d.aborted, 1)
	default:
		d.mu.Lock()
		if d.other == nil {
			d.other = make(map[string]uint64)
		}
		d.other[k]++
		d.mu.Unlock()
	}
}

// counts materializes the tallies as the map shape readers expect.
func (d *decisionCounts) counts() map[string]uint64 {
	out := make(map[string]uint64, 4)
	if v := atomic.LoadUint64(&d.granted); v > 0 {
		out["granted"] = v
	}
	if v := atomic.LoadUint64(&d.blocked); v > 0 {
		out["blocked"] = v
	}
	if v := atomic.LoadUint64(&d.delayed); v > 0 {
		out["delayed"] = v
	}
	if v := atomic.LoadUint64(&d.aborted); v > 0 {
		out["aborted"] = v
	}
	d.mu.Lock()
	for k, v := range d.other {
		out[k] += v
	}
	d.mu.Unlock()
	return out
}

func (d *decisionCounts) merge(o *decisionCounts) {
	atomic.AddUint64(&d.granted, atomic.LoadUint64(&o.granted))
	atomic.AddUint64(&d.blocked, atomic.LoadUint64(&o.blocked))
	atomic.AddUint64(&d.delayed, atomic.LoadUint64(&o.delayed))
	atomic.AddUint64(&d.aborted, atomic.LoadUint64(&o.aborted))
	o.mu.Lock()
	rest := make(map[string]uint64, len(o.other))
	for k, v := range o.other {
		rest[k] = v
	}
	o.mu.Unlock()
	if len(rest) == 0 {
		return
	}
	d.mu.Lock()
	if d.other == nil {
		d.other = make(map[string]uint64, len(rest))
	}
	for k, v := range rest {
		d.other[k] += v
	}
	d.mu.Unlock()
}

// SchedMetrics aggregates one scheduler's events. Every counter is
// updated with atomic operations — Observe takes no per-event lock —
// so the observer never serializes the shards (or worker goroutines)
// it is measuring. Plain field reads are exact once the producing run
// has completed; float-valued aggregates are behind accessor methods
// because Go has no atomic float fields.
type SchedMetrics struct {
	Sched string

	// Submission counters (timeline events); all updated atomically.
	Admits   uint64
	Requests uint64
	Commits  uint64
	Aborts   uint64 // Commit events carrying decision "aborted"

	objectsBits uint64 // processed objects, float64 bits

	// Decision counters by outcome, split by operation.
	admitDec   decisionCounts
	requestDec decisionCounts

	// Control-plane counters.
	Resolves        uint64
	CritPathChanges uint64
	critPathMaxBits uint64

	// Robustness counters: scheduler abort-recovery runs, live-controller
	// stall-watchdog firings, degraded-mode transitions, injected
	// faults, and node-crash recovery (nodes lost, partitions re-homed,
	// resident jobs requeued on survivors).
	Recoveries uint64
	Stalls     uint64
	Degrades   uint64
	Restores   uint64
	Faults     uint64
	NodeDowns  uint64
	Rehomes    uint64
	Requeues   uint64

	// Epoch-batch counters: admission windows flushed, and the largest
	// number of conflict-free clusters seen in one batch.
	Epochs             uint64
	epochMaxChunksBits uint64

	// Durable-recovery counters: dependency-log appends, group-commit
	// fsync passes, WAL replays, the widest replay wave observed
	// (replay parallelism), and the total replay wall time in ns.
	WALAppends       uint64
	WALSyncs         uint64
	Recovers         uint64
	replayMaxParBits uint64
	RecoverNS        int64

	// Storage counters: buffer-pool page reads split hit/miss, page
	// write-backs, clock evictions, and the disk bytes moved either way.
	// Prefetched pages (read-ahead loads, Op "prefetch") also count as
	// misses — PoolMisses stays exactly the backend read count — and
	// background-flusher write-backs (Op "flush") also count as
	// PageWrites.
	PageReads      uint64
	PoolHits       uint64
	PoolMisses     uint64
	PagePrefetches uint64
	PageWrites     uint64
	PageFlushes    uint64
	PageEvicts     uint64
	BytesRead      uint64
	BytesWritten   uint64

	// Histograms: decision control-CPU cost (clocks), decision wall
	// duration (µs), lock-queue depth at request submission, WTPG size
	// at decision time, commit response times (seconds), epoch batch
	// sizes (transactions per flushed window), and WAL group-commit
	// batch sizes (records per fsync pass).
	DecisionCPU  *Histogram
	DecisionWall *Histogram
	QueueDepth   *Histogram
	GraphSize    *Histogram
	ResponseTime *Histogram
	BatchSize    *Histogram
	WALBatch     *Histogram
}

func newSchedMetrics(label string) *SchedMetrics {
	return &SchedMetrics{
		Sched:        label,
		DecisionCPU:  NewHistogram(decadeBounds(1, 1e4)...),
		DecisionWall: NewHistogram(decadeBounds(1, 1e5)...),
		QueueDepth:   NewHistogram(decadeBounds(1, 1e3)...),
		GraphSize:    NewHistogram(decadeBounds(1, 1e3)...),
		ResponseTime: NewHistogram(decadeBounds(0.1, 1e3)...),
		BatchSize:    NewHistogram(decadeBounds(1, 1e3)...),
		WALBatch:     NewHistogram(decadeBounds(1, 1e3)...),
	}
}

// Objects returns the total processed-object count (KindObjectDone).
func (sm *SchedMetrics) Objects() float64 { return loadFloat(&sm.objectsBits) }

// CritPathMax returns the longest critical path observed, in objects.
func (sm *SchedMetrics) CritPathMax() float64 { return loadFloat(&sm.critPathMaxBits) }

// EpochMaxChunks returns the most conflict-free clusters in one batch.
func (sm *SchedMetrics) EpochMaxChunks() float64 { return loadFloat(&sm.epochMaxChunksBits) }

// ReplayMaxPar returns the widest WAL replay wave observed.
func (sm *SchedMetrics) ReplayMaxPar() float64 { return loadFloat(&sm.replayMaxParBits) }

// PoolHitRate returns the buffer-pool hit rate, hits/(hits+misses),
// or 0 before any page was read.
func (sm *SchedMetrics) PoolHitRate() float64 {
	h := atomic.LoadUint64(&sm.PoolHits)
	m := atomic.LoadUint64(&sm.PoolMisses)
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// AdmitDecisions returns the admit-decision counts by outcome
// ("granted", "delayed", …) as a freshly built map.
func (sm *SchedMetrics) AdmitDecisions() map[string]uint64 { return sm.admitDec.counts() }

// RequestDecisions returns the request-decision counts by outcome.
func (sm *SchedMetrics) RequestDecisions() map[string]uint64 { return sm.requestDec.counts() }

// Metrics is a Sink accumulating counters and histograms per scheduler
// label. Safe for concurrent use; the zero value is not ready — use
// NewMetrics. The hot path — every counter and histogram update — is
// atomic; the only lock is a read-mostly RWMutex resolving the
// scheduler label to its aggregate (write-locked once per new label).
//
// Per-run sink ownership rule: a parallel harness (the experiments
// worker pool) must not hand one Metrics to many concurrently running
// simulations — not because Observe would race (it is atomic), but
// because interleaved runs would corrupt per-run aggregates and make
// readback order nondeterministic. Instead, each run owns a private
// Metrics for its lifetime, and the owner folds finished runs together
// with Merge in a deterministic order. Accessors (Sched, Schedulers,
// Summary) are only meaningful once the producing run has completed.
type Metrics struct {
	mu  sync.RWMutex
	per map[string]*SchedMetrics
}

// NewMetrics returns an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{per: make(map[string]*SchedMetrics)}
}

func (m *Metrics) sched(label string) *SchedMetrics {
	if label == "" {
		label = "(unlabeled)"
	}
	m.mu.RLock()
	sm := m.per[label]
	m.mu.RUnlock()
	if sm != nil {
		return sm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if sm = m.per[label]; sm == nil {
		sm = newSchedMetrics(label)
		m.per[label] = sm
	}
	return sm
}

// Observe dispatches one event into the counters.
func (m *Metrics) Observe(e Event) {
	sm := m.sched(e.Sched)
	switch e.Kind {
	case KindAdmit:
		atomic.AddUint64(&sm.Admits, 1)
	case KindRequest:
		atomic.AddUint64(&sm.Requests, 1)
		sm.QueueDepth.Add(float64(e.Queue))
	case KindDecision:
		if e.Op == "admit" {
			sm.admitDec.add(e.Decision)
		} else {
			sm.requestDec.add(e.Decision)
		}
		sm.DecisionCPU.Add(float64(e.CPU))
		if e.DurNS > 0 {
			sm.DecisionWall.Add(float64(e.DurNS) / 1e3)
		}
		sm.GraphSize.Add(float64(e.Graph))
	case KindObjectDone:
		atomicAddFloat(&sm.objectsBits, e.Objects)
	case KindCommit:
		if e.Decision == "aborted" {
			atomic.AddUint64(&sm.Aborts, 1)
		} else {
			atomic.AddUint64(&sm.Commits, 1)
			sm.ResponseTime.Add(e.RT.Seconds())
		}
	case KindResolve:
		atomic.AddUint64(&sm.Resolves, 1)
	case KindCriticalPathChange:
		atomic.AddUint64(&sm.CritPathChanges, 1)
		atomicMaxFloat(&sm.critPathMaxBits, e.CritPath)
	case KindAbort:
		atomic.AddUint64(&sm.Recoveries, 1)
	case KindStall:
		atomic.AddUint64(&sm.Stalls, 1)
	case KindDegrade:
		atomic.AddUint64(&sm.Degrades, 1)
	case KindRestore:
		atomic.AddUint64(&sm.Restores, 1)
	case KindFault:
		atomic.AddUint64(&sm.Faults, 1)
	case KindNodeDown:
		atomic.AddUint64(&sm.NodeDowns, 1)
	case KindRehome:
		atomic.AddUint64(&sm.Rehomes, 1)
	case KindRequeue:
		atomic.AddUint64(&sm.Requeues, 1)
	case KindEpochFlush:
		atomic.AddUint64(&sm.Epochs, 1)
		sm.BatchSize.Add(float64(e.Batch))
		atomicMaxFloat(&sm.epochMaxChunksBits, float64(e.Clusters))
	case KindWALAppend:
		atomic.AddUint64(&sm.WALAppends, 1)
	case KindWALSync:
		atomic.AddUint64(&sm.WALSyncs, 1)
		sm.WALBatch.Add(float64(e.Batch))
	case KindRecover:
		atomic.AddUint64(&sm.Recovers, 1)
		atomic.AddInt64(&sm.RecoverNS, e.DurNS)
		atomicMaxFloat(&sm.replayMaxParBits, float64(e.Clusters))
	case KindPageRead:
		atomic.AddUint64(&sm.PageReads, 1)
		if e.Op == "hit" {
			atomic.AddUint64(&sm.PoolHits, 1)
		} else {
			atomic.AddUint64(&sm.PoolMisses, 1)
			if e.Op == "prefetch" {
				atomic.AddUint64(&sm.PagePrefetches, 1)
			}
		}
		atomic.AddUint64(&sm.BytesRead, uint64(e.Batch))
	case KindPageWrite:
		atomic.AddUint64(&sm.PageWrites, 1)
		if e.Op == "flush" {
			atomic.AddUint64(&sm.PageFlushes, 1)
		}
		atomic.AddUint64(&sm.BytesWritten, uint64(e.Batch))
	case KindPageEvict:
		atomic.AddUint64(&sm.PageEvicts, 1)
	}
}

// Close does nothing; the accumulated metrics stay readable.
func (m *Metrics) Close() error { return nil }

// Schedulers returns the observed scheduler labels, sorted.
func (m *Metrics) Schedulers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.per))
	for label := range m.per {
		out = append(out, label)
	}
	sortStrings(out)
	return out
}

// Sched returns a snapshot-by-reference of one scheduler's metrics
// (nil if the label was never observed). The caller must not mutate it
// while events are still being observed.
func (m *Metrics) Sched(label string) *SchedMetrics {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.per[label]
}

// Merge folds another Metrics (e.g. a replicate run's) into m: counters
// sum, histograms fold bucket-wise, maxima take the larger value.
// Merging nil or m itself is a no-op. All folds are atomic, so a
// finished run's aggregate can be folded while other sinks are live —
// but see the ownership rule above: o's producing run must be done.
func (m *Metrics) Merge(o *Metrics) {
	if o == nil || o == m {
		return
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	for label, osm := range o.per {
		sm := m.sched(label)
		addCounter := func(dst, src *uint64) {
			if v := atomic.LoadUint64(src); v > 0 {
				atomic.AddUint64(dst, v)
			}
		}
		addCounter(&sm.Admits, &osm.Admits)
		addCounter(&sm.Requests, &osm.Requests)
		addCounter(&sm.Commits, &osm.Commits)
		addCounter(&sm.Aborts, &osm.Aborts)
		atomicAddFloat(&sm.objectsBits, osm.Objects())
		addCounter(&sm.Resolves, &osm.Resolves)
		addCounter(&sm.Recoveries, &osm.Recoveries)
		addCounter(&sm.Stalls, &osm.Stalls)
		addCounter(&sm.Degrades, &osm.Degrades)
		addCounter(&sm.Restores, &osm.Restores)
		addCounter(&sm.Faults, &osm.Faults)
		addCounter(&sm.NodeDowns, &osm.NodeDowns)
		addCounter(&sm.Rehomes, &osm.Rehomes)
		addCounter(&sm.Requeues, &osm.Requeues)
		addCounter(&sm.CritPathChanges, &osm.CritPathChanges)
		atomicMaxFloat(&sm.critPathMaxBits, osm.CritPathMax())
		addCounter(&sm.Epochs, &osm.Epochs)
		atomicMaxFloat(&sm.epochMaxChunksBits, osm.EpochMaxChunks())
		addCounter(&sm.WALAppends, &osm.WALAppends)
		addCounter(&sm.WALSyncs, &osm.WALSyncs)
		addCounter(&sm.Recovers, &osm.Recovers)
		atomic.AddInt64(&sm.RecoverNS, atomic.LoadInt64(&osm.RecoverNS))
		atomicMaxFloat(&sm.replayMaxParBits, osm.ReplayMaxPar())
		addCounter(&sm.PageReads, &osm.PageReads)
		addCounter(&sm.PoolHits, &osm.PoolHits)
		addCounter(&sm.PoolMisses, &osm.PoolMisses)
		addCounter(&sm.PagePrefetches, &osm.PagePrefetches)
		addCounter(&sm.PageWrites, &osm.PageWrites)
		addCounter(&sm.PageFlushes, &osm.PageFlushes)
		addCounter(&sm.PageEvicts, &osm.PageEvicts)
		addCounter(&sm.BytesRead, &osm.BytesRead)
		addCounter(&sm.BytesWritten, &osm.BytesWritten)
		sm.admitDec.merge(&osm.admitDec)
		sm.requestDec.merge(&osm.requestDec)
		sm.DecisionCPU.Merge(osm.DecisionCPU)
		sm.DecisionWall.Merge(osm.DecisionWall)
		sm.QueueDepth.Merge(osm.QueueDepth)
		sm.GraphSize.Merge(osm.GraphSize)
		sm.ResponseTime.Merge(osm.ResponseTime)
		sm.BatchSize.Merge(osm.BatchSize)
		sm.WALBatch.Merge(osm.WALBatch)
	}
}

// sortStrings is sort.Strings without importing sort twice across
// files; kept tiny and allocation-free.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// decisionLine renders a decision-count map as "1234 granted, 5 delayed".
func decisionLine(counts map[string]uint64) string {
	if len(counts) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		if k == "" {
			k = "?"
		}
		keys = append(keys, k)
	}
	sortStrings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	return strings.Join(parts, ", ")
}
