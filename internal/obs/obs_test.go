package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindAdmit; k <= KindCriticalPathChange; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("round trip %v -> %s -> %v", k, data, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Observe(Event{Kind: KindCommit, Txn: 0, Step: i})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e.Step != i+3 {
			t.Errorf("event %d has step %d, want %d (oldest-first order)", i, e.Step, i+3)
		}
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Errorf("total %d dropped %d, want 5/2", r.Total(), r.Dropped())
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(10)
	r.Observe(Event{Step: 1})
	r.Observe(Event{Step: 2})
	if got := r.Events(); len(got) != 2 || got[0].Step != 1 {
		t.Errorf("partial ring events = %+v", got)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped %d, want 0", r.Dropped())
	}
}

func TestJSONLValidLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Observe(Event{Kind: KindDecision, At: 12, Sched: "CHAIN", Txn: 7, Op: "request", Decision: "granted", CPU: 3, Graph: 4})
	s.Observe(Event{Kind: KindCommit, At: 99, Sched: "CHAIN", Txn: 7, RT: 87})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if e.Kind != KindDecision || e.Sched != "CHAIN" || e.Decision != "granted" || e.CPU != 3 {
		t.Errorf("decoded %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil || e.Kind != KindCommit || e.RT != 87 {
		t.Errorf("line 1: %+v err %v", e, err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 5, 10)
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if got := h.Mean(); got != 22.3 {
		t.Errorf("mean %g, want 22.3", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max %g", got)
	}
	// Ranks: bucket uppers are 1,1,5,10,overflow(max).
	if q := h.Quantile(0.5); q != 5 {
		t.Errorf("p50 %g, want 5", q)
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100 %g, want 100", q)
	}
	h2 := NewHistogram(1, 2, 5, 10)
	h2.Add(200)
	h.Merge(h2)
	if h.Count() != 6 || h.Max() != 200 {
		t.Errorf("after merge count %d max %g", h.Count(), h.Max())
	}
}

func TestMetricsAndSummary(t *testing.T) {
	m := NewMetrics()
	events := []Event{
		{Kind: KindAdmit, Sched: "K2", Txn: 1},
		{Kind: KindDecision, Sched: "K2", Txn: 1, Op: "admit", Decision: "granted", CPU: 2, Graph: 1},
		{Kind: KindRequest, Sched: "K2", Txn: 1, Step: 0, Queue: 2},
		{Kind: KindDecision, Sched: "K2", Txn: 1, Op: "request", Decision: "blocked", CPU: 1, Graph: 1},
		{Kind: KindDecision, Sched: "K2", Txn: 1, Op: "request", Decision: "granted", CPU: 1, Graph: 1},
		{Kind: KindObjectDone, Sched: "K2", Txn: 1, Objects: 2.5},
		{Kind: KindResolve, Sched: "K2", From: 1, To: 2},
		{Kind: KindCriticalPathChange, Sched: "K2", CritPath: 12.5, Graph: 2},
		{Kind: KindCommit, Sched: "K2", Txn: 1, RT: 42_000},
		{Kind: KindCommit, Sched: "K2", Txn: 2, Decision: "aborted"},
	}
	for _, e := range events {
		m.Observe(e)
	}
	sm := m.Sched("K2")
	if sm == nil {
		t.Fatal("no K2 metrics")
	}
	if sm.Admits != 1 || sm.Requests != 1 || sm.Commits != 1 || sm.Aborts != 1 {
		t.Errorf("counters %+v", sm)
	}
	if sm.AdmitDecisions()["granted"] != 1 || sm.RequestDecisions()["blocked"] != 1 || sm.RequestDecisions()["granted"] != 1 {
		t.Errorf("decision counts %v %v", sm.AdmitDecisions(), sm.RequestDecisions())
	}
	if sm.Objects() != 2.5 || sm.Resolves != 1 || sm.CritPathChanges != 1 || sm.CritPathMax() != 12.5 {
		t.Errorf("control-plane counters %+v", sm)
	}
	if sm.DecisionCPU.Count() != 3 {
		t.Errorf("decision cpu n=%d", sm.DecisionCPU.Count())
	}
	if sm.ResponseTime.Count() != 1 || sm.ResponseTime.Mean() != 42 {
		t.Errorf("rt n=%d mean=%g", sm.ResponseTime.Count(), sm.ResponseTime.Mean())
	}

	// Merge doubles everything.
	m2 := NewMetrics()
	for _, e := range events {
		m2.Observe(e)
	}
	m.Merge(m2)
	if sm := m.Sched("K2"); sm.Commits != 2 || sm.DecisionCPU.Count() != 6 {
		t.Errorf("after merge %+v", sm)
	}

	out := m.Summary()
	for _, want := range []string{"== K2 ==", "admissions", "lock requests", "decision cpu", "response time", "blocked 50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMultiAndNop(t *testing.T) {
	if _, ok := Multi().(Nop); !ok {
		t.Error("Multi() should collapse to Nop")
	}
	r := NewRing(4)
	if Multi(nil, r) != Observer(r) {
		t.Error("Multi(nil, r) should collapse to r")
	}
	r2 := NewRing(4)
	m := Multi(r, r2)
	m.Observe(Event{Kind: KindAdmit, Txn: 9})
	if r.Total() != 1 || r2.Total() != 1 {
		t.Error("multi did not fan out")
	}
	if s, ok := m.(Sink); !ok {
		t.Error("multi of sinks should be a Sink")
	} else if err := s.Close(); err != nil {
		t.Error(err)
	}
	Nop{}.Observe(Event{})
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(Event{Kind: KindDecision, Sched: "X", Op: "request", Decision: "granted", CPU: 1})
			}
		}()
	}
	wg.Wait()
	if n := m.Sched("X").RequestDecisions()["granted"]; n != 8000 {
		t.Errorf("lost events: %d/8000", n)
	}
}
