package obs

import (
	"reflect"
	"testing"
)

// feedMetrics pushes a small, fully-known event mix into m under the
// given scheduler label.
func feedMetrics(m *Metrics, label string, commits int) {
	for i := 0; i < commits; i++ {
		m.Observe(Event{Kind: KindAdmit, Sched: label})
		m.Observe(Event{Kind: KindRequest, Sched: label, Queue: i})
		m.Observe(Event{Kind: KindDecision, Sched: label, Op: "admit",
			Decision: "granted", CPU: 5, Graph: i + 1})
		m.Observe(Event{Kind: KindDecision, Sched: label, Op: "request",
			Decision: "blocked", CPU: 7, DurNS: 1500, Graph: i + 1})
		m.Observe(Event{Kind: KindObjectDone, Sched: label, Objects: 2.5})
		m.Observe(Event{Kind: KindCommit, Sched: label, RT: 30_000})
	}
	m.Observe(Event{Kind: KindCommit, Sched: label, Decision: "aborted"})
	m.Observe(Event{Kind: KindResolve, Sched: label})
	m.Observe(Event{Kind: KindCriticalPathChange, Sched: label,
		CritPath: float64(10 * commits)})
	m.Observe(Event{Kind: KindAbort, Sched: label})
	m.Observe(Event{Kind: KindStall, Sched: label})
	m.Observe(Event{Kind: KindFault, Sched: label})
	m.Observe(Event{Kind: KindNodeDown, Sched: label})
	m.Observe(Event{Kind: KindRehome, Sched: label})
	m.Observe(Event{Kind: KindRequeue, Sched: label})
}

// TestMetricsMerge pins the Merge contract: counters sum, decision maps
// fold key-wise, histograms fold bucket-wise, maxima take the larger
// side — and the merged aggregate equals one Metrics that observed both
// event streams directly.
func TestMetricsMerge(t *testing.T) {
	a, b, want := NewMetrics(), NewMetrics(), NewMetrics()
	feedMetrics(a, "CHAIN", 3)
	feedMetrics(b, "CHAIN", 5)
	feedMetrics(b, "K2", 2)
	feedMetrics(want, "CHAIN", 3)
	feedMetrics(want, "CHAIN", 5)
	feedMetrics(want, "K2", 2)

	a.Merge(b)

	if got, w := a.Schedulers(), want.Schedulers(); !reflect.DeepEqual(got, w) {
		t.Fatalf("schedulers = %v, want %v", got, w)
	}
	for _, label := range want.Schedulers() {
		got, w := a.Sched(label), want.Sched(label)
		if got.Admits != w.Admits || got.Requests != w.Requests ||
			got.Commits != w.Commits || got.Aborts != w.Aborts {
			t.Errorf("%s: counters %+v, want %+v", label, got, w)
		}
		if got.Objects() != w.Objects() {
			t.Errorf("%s: objects %g, want %g", label, got.Objects(), w.Objects())
		}
		if !reflect.DeepEqual(got.AdmitDecisions(), w.AdmitDecisions()) ||
			!reflect.DeepEqual(got.RequestDecisions(), w.RequestDecisions()) {
			t.Errorf("%s: decision maps differ", label)
		}
		if got.Resolves != w.Resolves || got.Recoveries != w.Recoveries ||
			got.Stalls != w.Stalls || got.Faults != w.Faults ||
			got.NodeDowns != w.NodeDowns || got.Rehomes != w.Rehomes ||
			got.Requeues != w.Requeues {
			t.Errorf("%s: robustness counters differ", label)
		}
		if got.CritPathChanges != w.CritPathChanges || got.CritPathMax() != w.CritPathMax() {
			t.Errorf("%s: crit path %d/%g, want %d/%g", label,
				got.CritPathChanges, got.CritPathMax(), w.CritPathChanges, w.CritPathMax())
		}
		for name, pair := range map[string][2]*Histogram{
			"DecisionCPU":  {got.DecisionCPU, w.DecisionCPU},
			"DecisionWall": {got.DecisionWall, w.DecisionWall},
			"QueueDepth":   {got.QueueDepth, w.QueueDepth},
			"GraphSize":    {got.GraphSize, w.GraphSize},
			"ResponseTime": {got.ResponseTime, w.ResponseTime},
		} {
			g, ww := pair[0], pair[1]
			if g.Count() != ww.Count() || g.Mean() != ww.Mean() || g.Max() != ww.Max() {
				t.Errorf("%s %s: n=%d mean=%g max=%g, want n=%d mean=%g max=%g",
					label, name, g.Count(), g.Mean(), g.Max(),
					ww.Count(), ww.Mean(), ww.Max())
			}
		}
	}
	// b itself must be untouched by the merge.
	if b.Sched("K2").Commits != 2 {
		t.Error("merge mutated the source")
	}
}

// TestMetricsMergeEdgeCases: nil, self and empty merges are no-ops.
func TestMetricsMergeEdgeCases(t *testing.T) {
	m := NewMetrics()
	feedMetrics(m, "ASL", 2)
	before := m.Sched("ASL").Commits

	m.Merge(nil)
	m.Merge(m)
	m.Merge(NewMetrics())
	if got := m.Sched("ASL").Commits; got != before {
		t.Errorf("commits after no-op merges = %d, want %d", got, before)
	}

	// Merging into an empty aggregate copies everything.
	empty := NewMetrics()
	empty.Merge(m)
	if empty.Sched("ASL") == nil || empty.Sched("ASL").Commits != before {
		t.Error("merge into empty aggregate lost data")
	}
}
