package obs

import "sync"

// Ring is a fixed-capacity in-memory event buffer: a flight recorder
// that always holds the most recent events. Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	full  bool
}

// NewRing returns a ring buffer holding the last `capacity` events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Observe appends the event, evicting the oldest once full.
func (r *Ring) Observe(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Close does nothing; the buffer stays readable.
func (r *Ring) Close() error { return nil }

// Events returns the buffered events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many events were ever observed (including evicted
// ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many events were evicted by capacity.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return 0
	}
	return r.total - uint64(len(r.buf))
}
