package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Summary renders the accumulated metrics as a human-readable report:
// one block per scheduler with decision counts, rates, and the headline
// statistics of each histogram.
func (m *Metrics) Summary() string {
	labels := m.Schedulers()
	var b strings.Builder
	b.WriteString("Observability summary\n")
	if len(labels) == 0 {
		b.WriteString("  (no events observed)\n")
		return b.String()
	}
	for _, label := range labels {
		sm := m.Sched(label)
		reqDec := sm.RequestDecisions()
		fmt.Fprintf(&b, "\n== %s ==\n", sm.Sched)
		fmt.Fprintf(&b, "  %-16s %d submitted; decisions: %s\n", "admissions", atomic.LoadUint64(&sm.Admits), decisionLine(sm.AdmitDecisions()))
		fmt.Fprintf(&b, "  %-16s %d submitted; decisions: %s\n", "lock requests", atomic.LoadUint64(&sm.Requests), decisionLine(reqDec))
		fmt.Fprintf(&b, "  %-16s %d commits, %d aborts, %.0f objects processed\n", "completions",
			atomic.LoadUint64(&sm.Commits), atomic.LoadUint64(&sm.Aborts), sm.Objects())
		if total := decisionTotal(reqDec); total > 0 {
			fmt.Fprintf(&b, "  %-16s blocked %.1f%%, delayed %.1f%% of %d request decisions\n", "contention",
				100*float64(reqDec["blocked"])/float64(total),
				100*float64(reqDec["delayed"])/float64(total), total)
		}
		if n := atomic.LoadUint64(&sm.NodeDowns); n > 0 {
			fmt.Fprintf(&b, "  %-16s %d nodes lost, %d partitions re-homed, %d jobs requeued\n",
				"node crashes", n, atomic.LoadUint64(&sm.Rehomes), atomic.LoadUint64(&sm.Requeues))
		}
		if n := atomic.LoadUint64(&sm.Epochs); n > 0 {
			fmt.Fprintf(&b, "  %-16s %d windows flushed, batch %s, max %.0f clusters\n",
				"epochs", n, sm.BatchSize.format("txns"), sm.EpochMaxChunks())
		}
		if atomic.LoadUint64(&sm.WALAppends) > 0 || atomic.LoadUint64(&sm.Recovers) > 0 {
			fmt.Fprintf(&b, "  %-16s %d appends, %d fsync passes (batch %s); %d recoveries, replay max-par %.0f, %.2fms replaying\n",
				"wal", atomic.LoadUint64(&sm.WALAppends), atomic.LoadUint64(&sm.WALSyncs), sm.WALBatch.format("recs"),
				atomic.LoadUint64(&sm.Recovers), sm.ReplayMaxPar(), float64(atomic.LoadInt64(&sm.RecoverNS))/1e6)
		}
		if atomic.LoadUint64(&sm.PageReads) > 0 || atomic.LoadUint64(&sm.PageWrites) > 0 {
			fmt.Fprintf(&b, "  %-16s %d page reads (%.1f%% pool hits, %d prefetched), %d writes (%d background), %d evictions, %d B read / %d B written\n",
				"storage", atomic.LoadUint64(&sm.PageReads), 100*sm.PoolHitRate(),
				atomic.LoadUint64(&sm.PagePrefetches),
				atomic.LoadUint64(&sm.PageWrites), atomic.LoadUint64(&sm.PageFlushes),
				atomic.LoadUint64(&sm.PageEvicts),
				atomic.LoadUint64(&sm.BytesRead), atomic.LoadUint64(&sm.BytesWritten))
		}
		if atomic.LoadUint64(&sm.Resolves) > 0 || atomic.LoadUint64(&sm.CritPathChanges) > 0 {
			fmt.Fprintf(&b, "  %-16s %d edge resolutions, %d critical-path changes (max %.4g objects)\n",
				"wtpg", atomic.LoadUint64(&sm.Resolves), atomic.LoadUint64(&sm.CritPathChanges), sm.CritPathMax())
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "decision cpu", sm.DecisionCPU.format("clocks"))
		if sm.DecisionWall.Count() > 0 {
			fmt.Fprintf(&b, "  %-16s %s\n", "decision wall", sm.DecisionWall.format("µs"))
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "queue depth", sm.QueueDepth.format("waiters"))
		if sm.GraphSize.Count() > 0 {
			fmt.Fprintf(&b, "  %-16s %s\n", "wtpg size", sm.GraphSize.format("txns"))
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "response time", sm.ResponseTime.format("s"))
	}
	return b.String()
}

func decisionTotal(counts map[string]uint64) uint64 {
	var total uint64
	for _, v := range counts {
		total += v
	}
	return total
}
