package obs

import (
	"fmt"
	"strings"
)

// Summary renders the accumulated metrics as a human-readable report:
// one block per scheduler with decision counts, rates, and the headline
// statistics of each histogram.
func (m *Metrics) Summary() string {
	labels := m.Schedulers()
	var b strings.Builder
	b.WriteString("Observability summary\n")
	if len(labels) == 0 {
		b.WriteString("  (no events observed)\n")
		return b.String()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, label := range labels {
		sm := m.per[label]
		fmt.Fprintf(&b, "\n== %s ==\n", sm.Sched)
		fmt.Fprintf(&b, "  %-16s %d submitted; decisions: %s\n", "admissions", sm.Admits, decisionLine(sm.AdmitDecisions))
		fmt.Fprintf(&b, "  %-16s %d submitted; decisions: %s\n", "lock requests", sm.Requests, decisionLine(sm.RequestDecisions))
		fmt.Fprintf(&b, "  %-16s %d commits, %d aborts, %.0f objects processed\n", "completions", sm.Commits, sm.Aborts, sm.Objects)
		if total := decisionTotal(sm.RequestDecisions); total > 0 {
			fmt.Fprintf(&b, "  %-16s blocked %.1f%%, delayed %.1f%% of %d request decisions\n", "contention",
				100*float64(sm.RequestDecisions["blocked"])/float64(total),
				100*float64(sm.RequestDecisions["delayed"])/float64(total), total)
		}
		if sm.NodeDowns > 0 {
			fmt.Fprintf(&b, "  %-16s %d nodes lost, %d partitions re-homed, %d jobs requeued\n",
				"node crashes", sm.NodeDowns, sm.Rehomes, sm.Requeues)
		}
		if sm.Epochs > 0 {
			fmt.Fprintf(&b, "  %-16s %d windows flushed, batch %s, max %.0f clusters\n",
				"epochs", sm.Epochs, sm.BatchSize.format("txns"), sm.EpochMaxChunks)
		}
		if sm.WALAppends > 0 || sm.Recovers > 0 {
			fmt.Fprintf(&b, "  %-16s %d appends, %d fsync passes (batch %s); %d recoveries, replay max-par %.0f, %.2fms replaying\n",
				"wal", sm.WALAppends, sm.WALSyncs, sm.WALBatch.format("recs"),
				sm.Recovers, sm.ReplayMaxPar, float64(sm.RecoverNS)/1e6)
		}
		if sm.Resolves > 0 || sm.CritPathChanges > 0 {
			fmt.Fprintf(&b, "  %-16s %d edge resolutions, %d critical-path changes (max %.4g objects)\n",
				"wtpg", sm.Resolves, sm.CritPathChanges, sm.CritPathMax)
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "decision cpu", sm.DecisionCPU.format("clocks"))
		if sm.DecisionWall.Count() > 0 {
			fmt.Fprintf(&b, "  %-16s %s\n", "decision wall", sm.DecisionWall.format("µs"))
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "queue depth", sm.QueueDepth.format("waiters"))
		if sm.GraphSize.Count() > 0 {
			fmt.Fprintf(&b, "  %-16s %s\n", "wtpg size", sm.GraphSize.format("txns"))
		}
		fmt.Fprintf(&b, "  %-16s %s\n", "response time", sm.ResponseTime.format("s"))
	}
	return b.String()
}

func decisionTotal(counts map[string]uint64) uint64 {
	var total uint64
	for _, v := range counts {
		total += v
	}
	return total
}
