package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// JSONL writes one JSON object per event, one per line — the common
// interchange format for trace tooling (jq, DuckDB, pandas). Safe for
// concurrent use; output is buffered until Close (or an explicit
// Flush).
type JSONL struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	owned io.Closer // closed by Close when the sink opened the file itself
	err   error     // first write error, reported by Close
}

// NewJSONL returns a JSONL sink writing to w. The caller keeps
// ownership of w; Close flushes but does not close it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// CreateJSONL creates (truncating) the named file and returns a sink
// that owns it: Close flushes and closes the file.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewJSONL(f)
	s.owned = f
	return s, nil
}

// Observe encodes the event as one JSON line. Write errors are sticky
// and surface from Close.
func (s *JSONL) Observe(e Event) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Flush forces buffered lines out to the underlying writer.
func (s *JSONL) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// Close flushes, closes the file if the sink owns one, and reports the
// first error encountered over the sink's lifetime.
func (s *JSONL) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.owned != nil {
		if cerr := s.owned.Close(); s.err == nil {
			s.err = cerr
		}
		s.owned = nil
	}
	return s.err
}
